package mrvd

import (
	"context"
	"testing"
)

func shardTestService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	base := []Option{
		WithCity(NewCity(CityConfig{OrdersPerDay: 1500, Seed: 17})),
		WithFleet(40),
		WithHorizon(4 * 3600),
		WithPrediction(PredictNone, nil),
	}
	svc, err := NewService(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestWithShardsOneShardParity: the public API contract — WithShards(1)
// produces the same deterministic metrics as the unsharded service.
func TestWithShardsOneShardParity(t *testing.T) {
	base, err := shardTestService(t).Run(context.Background(), "LS")
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shardTestService(t, WithShards(1)).Run(context.Background(), "LS")
	if err != nil {
		t.Fatal(err)
	}
	if base.Summary() != sharded.Summary() {
		t.Fatalf("WithShards(1) diverges from unsharded:\n  unsharded: %+v\n  sharded:   %+v",
			base.Summary(), sharded.Summary())
	}
}

// TestWithShardsRunDeterministic: a 4-shard service run reproduces
// exactly.
func TestWithShardsRunDeterministic(t *testing.T) {
	run := func() Summary {
		m, err := shardTestService(t, WithShards(4)).Run(context.Background(), "IRG")
		if err != nil {
			t.Fatal(err)
		}
		return m.Summary()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("4-shard service runs differ: %+v vs %+v", a, b)
	}
}

func TestWithShardsValidation(t *testing.T) {
	if _, err := NewService(WithShards(0)); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := NewService(WithShards(-2)); err == nil {
		t.Fatal("WithShards(-2) accepted")
	}
	if _, err := NewService(WithBoundaryPolicy(BoundaryPolicy(99))); err == nil {
		t.Fatal("unknown boundary policy accepted")
	}
	if _, err := NewService(WithShardCosters(nil)); err == nil {
		t.Fatal("nil shard-coster factory accepted")
	}
	if _, err := NewService(WithCandidateCap(-1)); err == nil {
		t.Fatal("negative candidate cap accepted")
	}
}

// TestSweepSharded: a sharded sweep runs every cell on the partitioned
// runtime with deterministic results.
func TestSweepSharded(t *testing.T) {
	svc := shardTestService(t, WithShards(2))
	spec := SweepSpec{Algorithms: []string{"NEAR", "IRG"}, Workers: 2}
	a, err := svc.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("want 2 cells, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("cell %d errored: %v / %v", i, a[i].Err, b[i].Err)
		}
		if a[i].Metrics.Summary() != b[i].Metrics.Summary() {
			t.Fatalf("cell %d not deterministic across sharded sweeps", i)
		}
	}
}

// TestStartShardedSession: a sharded serve session accepts live orders
// through the router, resolves outcomes, and exposes per-shard stats.
func TestStartShardedSession(t *testing.T) {
	svc := shardTestService(t, WithShards(4), WithBoundaryPolicy(CandidateBorrow))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		now := h.Clock()
		_, outcome, err := h.Submit(Order{
			PostTime: now,
			Deadline: now + 1800,
			Pickup:   Point{Lng: -73.98, Lat: 40.70 + float64(i)*0.01},
			Dropoff:  Point{Lng: -73.95, Lat: 40.75},
		})
		if err != nil {
			t.Fatal(err)
		}
		out := <-outcome
		if out.Status != OutcomeAssigned && out.Status != OutcomeExpired {
			t.Fatalf("order %d: unexpected outcome %v", i, out.Status)
		}
	}
	stats := h.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats returned %d entries, want 4", len(stats))
	}
	admitted, drivers := 0, 0
	for _, s := range stats {
		admitted += s.Admitted
		drivers += s.Drivers
	}
	if admitted != 8 {
		t.Fatalf("shards admitted %d orders, want 8", admitted)
	}
	if drivers != 40 {
		t.Fatalf("shards hold %d drivers, want the full fleet of 40", drivers)
	}
	h.Close()
	if _, err := h.Result(); err != nil {
		t.Fatal(err)
	}

	// Unsharded sessions report no shard stats.
	h2, err := shardTestService(t).Start(ctx, "NEAR", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.ShardStats(); got != nil {
		t.Fatalf("unsharded session reports shard stats: %v", got)
	}
	h2.Stop()
	_, _ = h2.Result()
}
