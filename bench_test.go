package mrvd

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"mrvd/internal/dispatch"
	"mrvd/internal/experiments"
	"mrvd/internal/matching"
	"mrvd/internal/obs"
	"mrvd/internal/pool"
	"mrvd/internal/queueing"
	"mrvd/internal/roadnet"
	"mrvd/internal/shard"
	"mrvd/internal/sim"
	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

// benchConfig is the scale used by the per-table/figure benchmarks: 5%
// of the paper's volume with a single problem instance, so the full
// bench suite completes on a laptop. cmd/mrvd-bench regenerates the same
// artifacts at the committed 0.25 (or full 1.0) scale.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.05, Seeds: 1}
}

// benchExperiment runs one registered paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(context.Background(), benchConfig(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table ---

func BenchmarkTable3IdleTimeEstimation(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4PredictionEffects(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable6PredictorAccuracy(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable7OrderPoissonTests(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8DriverPoissonTests(b *testing.B) { benchExperiment(b, "table8") }

// --- One benchmark per paper figure ---

func BenchmarkFig5PickupDensity(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6IdleTimeMap(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7NumDrivers(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8BatchInterval(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9TimeWindow(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10BaseWaitingTime(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11OrderHistogram(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12DriverHistogram(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13ServedOrders(b *testing.B)    { benchExperiment(b, "fig13") }

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

func BenchmarkAblationReneging(b *testing.B) { benchExperiment(b, "ablation-reneging") }
func BenchmarkAblationLSSeed(b *testing.B)   { benchExperiment(b, "ablation-lsseed") }
func BenchmarkAblationCoster(b *testing.B)   { benchExperiment(b, "ablation-coster") }
func BenchmarkAblationMuUpdate(b *testing.B) { benchExperiment(b, "ablation-muupdate") }

// --- Microbenchmarks of the hot substrates ---

func BenchmarkQueueingExpectedIdleTime(b *testing.B) {
	m := queueing.NewDefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// One call per regime.
		_ = m.ExpectedIdleTime(0.5, 0.3, 100)
		_ = m.ExpectedIdleTime(0.2, 0.5, 40)
		_ = m.ExpectedIdleTime(0.3, 0.3, 25)
	}
}

func BenchmarkHungarian64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([][]float64, 64)
	for i := range w {
		w[i] = make([]float64, 64)
		for j := range w[i] {
			w[i][j] = rng.Float64() * 1000
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MaxWeight(w)
	}
}

func BenchmarkDijkstraGridNetwork(b *testing.B) {
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		g.ShortestPath(src, dst)
	}
}

func BenchmarkWorkloadGenerateDay(b *testing.B) {
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: 28000, Seed: 31})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		city.GenerateDay(0, rng)
	}
}

// BenchmarkBatchIRG measures a single realistic batch decision: ~200
// waiting riders, ~80 available drivers, valid pairs precomputed.
func BenchmarkBatchIRG(b *testing.B) {
	ctx := syntheticBatch(200, 80, 12)
	g := &dispatch.IRG{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Assign(ctx)
	}
}

func BenchmarkBatchLS(b *testing.B) {
	ctx := syntheticBatch(200, 80, 12)
	l := &dispatch.LS{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Assign(ctx)
	}
}

// syntheticBatch fabricates a dispatch context with the given rider and
// driver counts and candidate fan-out.
func syntheticBatch(riders, drivers, fanout int) *sim.Context {
	rng := rand.New(rand.NewSource(7))
	grid := NewNYCGrid()
	n := grid.NumRegions()
	ctx := &sim.Context{
		Now: 8 * 3600, TC: 1200, Grid: grid,
		WaitingPerRegion:   make([]int, n),
		AvailablePerRegion: make([]int, n),
		PredictedRiders:    make([]int, n),
		PredictedDrivers:   make([]int, n),
	}
	for k := 0; k < n; k++ {
		ctx.PredictedRiders[k] = rng.Intn(30)
		ctx.PredictedDrivers[k] = rng.Intn(12)
	}
	for r := 0; r < riders; r++ {
		region := RegionID(rng.Intn(n))
		ctx.Riders = append(ctx.Riders, &sim.Rider{
			TripCost:   120 + rng.Float64()*1800,
			DestRegion: RegionID(rng.Intn(n)),
		})
		ctx.RiderRegion = append(ctx.RiderRegion, region)
		ctx.WaitingPerRegion[region]++
	}
	for d := 0; d < drivers; d++ {
		region := RegionID(rng.Intn(n))
		ctx.Drivers = append(ctx.Drivers, &sim.Driver{ID: sim.DriverID(d)})
		ctx.DriverRegion = append(ctx.DriverRegion, region)
		ctx.AvailablePerRegion[region]++
	}
	for r := 0; r < riders; r++ {
		for f := 0; f < fanout; f++ {
			ctx.Pairs = append(ctx.Pairs, sim.Pair{
				R: int32(r), D: int32(rng.Intn(drivers)),
				PickupCost: rng.Float64() * 110,
				TripCost:   ctx.Riders[r].TripCost,
				DestRegion: ctx.Riders[r].DestRegion,
			})
		}
	}
	return ctx
}

func BenchmarkAblationReposition(b *testing.B) { benchExperiment(b, "ablation-reposition") }

// BenchmarkBatchCosts prices one 200-driver x 200-order batch on the
// road network through both query paths. Each iteration uses a fresh
// coster so the comparison is a cold batch for both; the extra
// "settled/op" metric counts Dijkstra-settled nodes — the
// shortest-path work the batch path saves by deduplicating snapped
// sources and truncating each tree at the batch's targets (the
// committed BENCH_dispatch.json baseline shows the ratio).
func BenchmarkBatchCosts(b *testing.B) {
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Seed: 1})
	box := NYCBBox
	cx, cy := (box.MinLng+box.MaxLng)/2, (box.MinLat+box.MaxLat)/2
	w, h := (box.MaxLng-box.MinLng)/8, (box.MaxLat-box.MinLat)/8
	rng := rand.New(rand.NewSource(13))
	randPoint := func() Point {
		return Point{Lng: cx - w + rng.Float64()*2*w, Lat: cy - h + rng.Float64()*2*h}
	}
	drivers := make([]Point, 200)
	orders := make([]Point, 200)
	for i := range drivers {
		drivers[i] = randPoint()
	}
	for i := range orders {
		orders[i] = randPoint()
	}

	b.Run("Batch", func(b *testing.B) {
		b.ReportAllocs()
		var settled int64
		for i := 0; i < b.N; i++ {
			c := roadnet.NewGraphCoster(g)
			c.Costs(drivers, orders)
			settled += c.Stats().SettledNodes
		}
		b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
	})
	b.Run("PerPair", func(b *testing.B) {
		b.ReportAllocs()
		var settled int64
		for i := 0; i < b.N; i++ {
			c := roadnet.NewGraphCoster(g)
			for _, d := range drivers {
				for _, o := range orders {
					c.Cost(d, o)
				}
			}
			settled += c.Stats().SettledNodes
		}
		b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
	})
}

// BenchmarkServeSubmit measures the in-process serving hot path: one
// ServeHandle.Submit plus the await of its terminal outcome against a
// live free-running engine — the submit-to-assignment round trip the
// HTTP gateway adds its network edge on top of (see
// internal/server.BenchmarkGatewayThroughput and BENCH_serve.json).
func BenchmarkServeSubmit(b *testing.B) {
	svc, err := NewService(
		WithCity(NewCity(CityConfig{OrdersPerDay: 2000, Seed: 17})),
		WithFleet(256),
		WithBatchInterval(3),
		WithHorizon(1e12), // never reached: the deferred cancel ends the session
		WithPrediction(PredictNone, nil),
	)
	if err != nil {
		b.Fatal(err)
	}
	starts := make([]Point, 256)
	for i := range starts {
		starts[i] = Point{Lng: -73.98 + float64(i%16)*1e-3, Lat: 40.74 + float64(i/16)*1e-3}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", starts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := h.Clock()
		_, ch, err := h.Submit(Order{
			PostTime: now,
			Pickup:   Point{Lng: -73.97, Lat: 40.75},
			Dropoff:  Point{Lng: -73.95, Lat: 40.77},
			Deadline: now + 1e9,
		})
		if err != nil {
			b.Fatal(err)
		}
		<-ch
	}
}

// BenchmarkShardedDispatch measures city-scale dispatch throughput on
// the partitioned multi-engine runtime at 1/2/4/8 shards: the 7-8am
// peak hour of a heavy day (150K orders/day, 4000 drivers, 20s
// batches, 16-nearest candidate cap) replayed end to end. Two
// throughput metrics per shard count: orders/sec is wall-clock (flat
// on a single core, where the engines interleave); dispatch-orders/sec
// divides by the dispatch critical path — each round's slowest shard,
// i.e. what parallel hardware realizes, since shards dispatch
// concurrently and each scans only its own fleet slice for its own
// riders. The committed BENCH_shard.json baseline tracks the 4-shard
// speedup (the load harness reproduces the same scaling over HTTP:
// mrvd-serve -shards N + mrvd-load).
func BenchmarkShardedDispatch(b *testing.B) {
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: 150000, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	day := city.GenerateDay(0, rng)
	// Rebase the 7-8am peak to t=0: the interesting load is the morning
	// rush, not the midnight lull a [0, 1h) horizon would replay.
	const peakStart, horizon = 25200.0, 3600.0
	var orders []trace.Order
	for _, o := range day {
		if o.PostTime >= peakStart && o.PostTime < peakStart+horizon {
			o.PostTime -= peakStart
			o.Deadline -= peakStart
			orders = append(orders, o)
		}
	}
	starts := city.InitialDrivers(4000, day, rng)
	admitted := len(orders)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Shards%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			dispatchSec := 0.0
			for i := 0; i < b.N; i++ {
				cfg := shard.Config{
					Sim: sim.Config{
						Grid: city.Grid(), Delta: 20, TC: 1200, Horizon: horizon,
						CandidateCap: 16,
					},
					Shards:  shards,
					Weights: shard.OrderWeights(city.Grid(), orders),
				}
				rt, err := shard.New(cfg, sim.NewSliceSource(orders), starts)
				if err != nil {
					b.Fatal(err)
				}
				m, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
					return &dispatch.IRG{}, nil
				})
				if err != nil {
					b.Fatal(err)
				}
				// Aggregated BatchSeconds holds each round's slowest
				// shard — summed, the dispatch layer's critical path.
				for _, s := range m.BatchSeconds {
					dispatchSec += s
				}
			}
			n := float64(b.N)
			b.ReportMetric(float64(admitted)*n/b.Elapsed().Seconds(), "orders/sec")
			// The dispatch-layer ceiling: orders the critical path can
			// decide per second. Shards dispatch concurrently, so this
			// is the throughput parallel hardware realizes; the wall
			// metric above is what one core realizes.
			b.ReportMetric(float64(admitted)*n/dispatchSec, "dispatch-orders/sec")
		})
	}
}

// BenchmarkScenarioDispatch measures the disruption layer's cost: one
// peak hour of a 28K-order day at 200 drivers, dispatched with the
// scenario off (zero ScenarioConfig) and on (cancellations + declines
// + travel noise). The Off case asserts the zero-overhead contract
// behaviorally — its Summary must be byte-identical to a run built
// without any scenario plumbing at all — and the committed
// BENCH_scenario.json baseline tracks the On/Off timing ratio (~1x:
// the disruption layer is a nil check on the scenario-free path and a
// few RNG draws per order on the enabled one).
func BenchmarkScenarioDispatch(b *testing.B) {
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: 28000, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	day := city.GenerateDay(0, rng)
	const peakStart, horizon = 25200.0, 3600.0
	var orders []trace.Order
	for _, o := range day {
		if o.PostTime >= peakStart && o.PostTime < peakStart+horizon {
			o.PostTime -= peakStart
			o.Deadline -= peakStart
			orders = append(orders, o)
		}
	}
	starts := city.InitialDrivers(200, day, rng)
	admitted := len(orders)

	run := func(b *testing.B, scenario sim.ScenarioConfig) sim.Summary {
		cfg := sim.Config{
			Grid: city.Grid(), Delta: 20, TC: 1200, Horizon: horizon,
			CandidateCap: 16, Scenario: scenario,
		}
		m, err := sim.New(cfg, orders, starts).Run(context.Background(), &dispatch.IRG{})
		if err != nil {
			b.Fatal(err)
		}
		return m.Summary()
	}

	// The reference run the Off case must reproduce byte-for-byte.
	baseline := run(b, sim.ScenarioConfig{})

	b.Run("Off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got := run(b, sim.ScenarioConfig{Seed: 42}) // zero knobs, seed set
			if got != baseline {
				b.Fatalf("scenario-off run diverged from the scenario-free engine:\n  off:  %+v\n  base: %+v",
					got, baseline)
			}
		}
		b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
	})
	b.Run("On", func(b *testing.B) {
		b.ReportAllocs()
		var got sim.Summary
		for i := 0; i < b.N; i++ {
			got = run(b, sim.ScenarioConfig{
				CancelRate: 0.1, DeclineProb: 0.05, TravelNoise: 0.2, Seed: 42,
			})
		}
		if got.Canceled == 0 || got.Declines == 0 || got.TravelSamples == 0 {
			b.Fatalf("scenario inactive under load: %+v", got)
		}
		b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
	})
}

// BenchmarkDispatchCycle runs one hour of full engine batch cycles —
// order admission, candidate pruning, batched pickup costing, IRG
// assignment, commitment — over a 28K-order day at 200 drivers, under
// both the closed-form and the road-network coster.
func BenchmarkDispatchCycle(b *testing.B) {
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: 28000, Seed: 31})
	rng := rand.New(rand.NewSource(3))
	orders := city.GenerateDay(0, rng)
	starts := city.InitialDrivers(200, orders, rng)

	run := func(b *testing.B, coster roadnet.Coster) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{Grid: city.Grid(), Coster: coster, Delta: 3, TC: 1200, Horizon: 3600}
			e := sim.New(cfg, orders, starts)
			if _, err := e.Run(context.Background(), &dispatch.IRG{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("GreatCircle", func(b *testing.B) { run(b, nil) })
	b.Run("RoadNetwork", func(b *testing.B) {
		g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Seed: 1})
		run(b, roadnet.NewGraphCoster(g))
	})
}

// BenchmarkPooledDispatch measures what the pooling subsystem costs and
// buys at dispatch time: the same peak hour of a 28K-order day at 200
// drivers under the POOL dispatcher, with pooling off, at capacity 2,
// and at capacity 4. The Off case asserts the zero-overhead contract
// behaviorally — a zero pool.Config must reproduce the pooling-free
// engine byte-for-byte — and the committed BENCH_pool.json baseline
// tracks the capacity-2/-4 timing ratios (insertion candidates are
// priced per busy driver on top of the solo pairing, so enabled runs
// pay for the extra route-plan evaluations and serve more orders for
// it).
func BenchmarkPooledDispatch(b *testing.B) {
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: 28000, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	day := city.GenerateDay(0, rng)
	const peakStart, horizon = 25200.0, 3600.0
	var orders []trace.Order
	for _, o := range day {
		if o.PostTime >= peakStart && o.PostTime < peakStart+horizon {
			o.PostTime -= peakStart
			o.Deadline -= peakStart
			orders = append(orders, o)
		}
	}
	starts := city.InitialDrivers(200, day, rng)
	admitted := len(orders)

	run := func(b *testing.B, pc pool.Config) sim.Summary {
		cfg := sim.Config{
			Grid: city.Grid(), Delta: 20, TC: 1200, Horizon: horizon,
			CandidateCap: 16, Pooling: pc,
		}
		m, err := sim.New(cfg, orders, starts).Run(context.Background(), dispatch.POOL{})
		if err != nil {
			b.Fatal(err)
		}
		return m.Summary()
	}

	// The reference run the Off case must reproduce byte-for-byte.
	baseline := run(b, pool.Config{})

	b.Run("Off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got := run(b, pool.Config{Capacity: 1, MaxDetourSeconds: 300})
			if got != baseline {
				b.Fatalf("pooling-off run diverged from the pooling-free engine:\n  off:  %+v\n  base: %+v",
					got, baseline)
			}
		}
		b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
	})
	for _, capacity := range []int{2, 4} {
		b.Run(fmt.Sprintf("Capacity%d", capacity), func(b *testing.B) {
			b.ReportAllocs()
			var got sim.Summary
			for i := 0; i < b.N; i++ {
				got = run(b, pool.Config{Capacity: capacity, MaxDetourSeconds: 300})
			}
			if got.SharedServed == 0 {
				b.Fatalf("pooling inactive under load: %+v", got)
			}
			if got.Served <= baseline.Served {
				b.Fatalf("pooled peak served %d <= solo %d", got.Served, baseline.Served)
			}
			b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
		})
	}
}

// BenchmarkObsDispatch measures the observability layer's cost: one
// peak hour of a 28K-order day at 200 drivers, dispatched with the obs
// layer off (zero ObsConfig — the nil-gated path pays one pointer
// check per hook), with the metrics registry alone (lock-free atomics
// on pre-resolved instruments; noise-level, target <= ~1.03x), and
// with the full span tracer added (one hand-encoded JSONL span per
// terminal order to io.Discard; ~1.14x here, amortizing below 1%
// under road-network costing). Every case asserts the Summary is
// byte-identical to the uninstrumented baseline: metrics and spans
// record only wall-clock data that never feeds a Summary, so
// instrumentation cannot perturb dispatch outcomes. BENCH_obs.json
// commits the baseline.
func BenchmarkObsDispatch(b *testing.B) {
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: 28000, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	day := city.GenerateDay(0, rng)
	const peakStart, horizon = 25200.0, 3600.0
	var orders []trace.Order
	for _, o := range day {
		if o.PostTime >= peakStart && o.PostTime < peakStart+horizon {
			o.PostTime -= peakStart
			o.Deadline -= peakStart
			orders = append(orders, o)
		}
	}
	starts := city.InitialDrivers(200, day, rng)
	admitted := len(orders)

	run := func(b *testing.B, oc sim.ObsConfig) sim.Summary {
		cfg := sim.Config{
			Grid: city.Grid(), Delta: 20, TC: 1200, Horizon: horizon,
			CandidateCap: 16, Obs: oc,
		}
		m, err := sim.New(cfg, orders, starts).Run(context.Background(), &dispatch.IRG{})
		if err != nil {
			b.Fatal(err)
		}
		return m.Summary()
	}

	// The reference run both cases must reproduce byte-for-byte.
	baseline := run(b, sim.ObsConfig{})

	b.Run("Off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got := run(b, sim.ObsConfig{})
			if got != baseline {
				b.Fatalf("uninstrumented run diverged across repeats:\n  got:  %+v\n  base: %+v",
					got, baseline)
			}
		}
		b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
	})
	b.Run("Metrics", func(b *testing.B) {
		b.ReportAllocs()
		var reg *obs.Registry
		for i := 0; i < b.N; i++ {
			reg = obs.NewRegistry()
			got := run(b, sim.ObsConfig{Registry: reg})
			if got != baseline {
				b.Fatalf("metrics-instrumented run perturbed the summary:\n  got:  %+v\n  base: %+v",
					got, baseline)
			}
		}
		terminal := int64(baseline.Served + baseline.Reneged + baseline.Canceled)
		if n := reg.Counter("mrvd_orders_admitted_total", "").Value(); n < terminal || n > int64(baseline.TotalOrders) {
			b.Fatalf("admitted counter = %d, want within [%d, %d]", n, terminal, baseline.TotalOrders)
		}
		b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
	})
	b.Run("Full", func(b *testing.B) {
		b.ReportAllocs()
		var reg *obs.Registry
		var tr *obs.Tracer
		for i := 0; i < b.N; i++ {
			reg = obs.NewRegistry()
			tr = obs.NewTracer(io.Discard)
			got := run(b, sim.ObsConfig{Registry: reg, Tracer: tr})
			if got != baseline {
				b.Fatalf("instrumented run perturbed the summary:\n  got:  %+v\n  base: %+v",
					got, baseline)
			}
		}
		// Orders posted after the final batch are never admitted, so the
		// counter can trail the input size but must cover every order
		// that reached a terminal state.
		terminal := int64(baseline.Served + baseline.Reneged + baseline.Canceled)
		if n := reg.Counter("mrvd_orders_admitted_total", "").Value(); n < terminal || n > int64(baseline.TotalOrders) {
			b.Fatalf("admitted counter = %d, want within [%d, %d]", n, terminal, baseline.TotalOrders)
		}
		if tr.Count() != terminal {
			b.Fatalf("tracer wrote %d spans, want %d", tr.Count(), terminal)
		}
		b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
	})
}

// BenchmarkTimeseriesDispatch measures the windowed collector's cost on
// top of the metrics registry: the same peak hour of a 28K-order day at
// 200 drivers as BenchmarkObsDispatch, dispatched with collection off,
// with a collector at the production 1s interval, and with a 1ms
// "hot" interval. At dispatch speed a run fits in a handful of 1s
// windows, so Collect pays the registry's atomics plus at most a few
// full Gather+ingest passes — the <= ~1.03x target BENCH_timeseries.json
// pins. Hot is a stress case, not a production setting: ~1000 snapshots
// per second racing the dispatch loop, proving concurrent collection
// cannot perturb outcomes. Every case asserts the Summary byte-identical
// to the uninstrumented baseline — the collector only reads atomics on
// a ticker goroutine and never feeds anything back into dispatch — and
// each instrumented case validates its end state with one manual Tick:
// windows advanced, the admitted-rate series materialized, and the
// default SLO rule set was evaluated.
func BenchmarkTimeseriesDispatch(b *testing.B) {
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: 28000, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	day := city.GenerateDay(0, rng)
	const peakStart, horizon = 25200.0, 3600.0
	var orders []trace.Order
	for _, o := range day {
		if o.PostTime >= peakStart && o.PostTime < peakStart+horizon {
			o.PostTime -= peakStart
			o.Deadline -= peakStart
			orders = append(orders, o)
		}
	}
	starts := city.InitialDrivers(200, day, rng)
	admitted := len(orders)

	run := func(b *testing.B, oc sim.ObsConfig) sim.Summary {
		cfg := sim.Config{
			Grid: city.Grid(), Delta: 20, TC: 1200, Horizon: horizon,
			CandidateCap: 16, Obs: oc,
		}
		m, err := sim.New(cfg, orders, starts).Run(context.Background(), &dispatch.IRG{})
		if err != nil {
			b.Fatal(err)
		}
		return m.Summary()
	}

	// The reference run every case must reproduce byte-for-byte.
	baseline := run(b, sim.ObsConfig{})

	b.Run("Off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got := run(b, sim.ObsConfig{})
			if got != baseline {
				b.Fatalf("uninstrumented run diverged across repeats:\n  got:  %+v\n  base: %+v",
					got, baseline)
			}
		}
		b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
	})
	collect := func(name string, interval time.Duration) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var col *obs.Collector
			for i := 0; i < b.N; i++ {
				reg := obs.NewRegistry()
				col = obs.NewCollector(obs.CollectorConfig{
					Registry: reg, Interval: interval, Rules: obs.DefaultDispatchRules(),
				})
				col.Start()
				got := run(b, sim.ObsConfig{Registry: reg})
				col.Stop()
				if got != baseline {
					b.Fatalf("collector-instrumented run perturbed the summary:\n  got:  %+v\n  base: %+v",
						got, baseline)
				}
			}
			b.StopTimer()
			// End-state validation on the last iteration's collector: one
			// manual tick guarantees a final window even when the run
			// finished inside the first interval, then the dump must show
			// the run happened.
			col.Tick(time.Now())
			dump := col.Dump()
			if dump.Windows == 0 {
				b.Fatal("collector recorded no windows")
			}
			found := false
			for _, s := range dump.Series {
				if s.Family == "mrvd_orders_admitted_total" && s.Stat == obs.StatRate {
					found = true
					break
				}
			}
			if !found {
				b.Fatalf("admitted-rate series missing from dump (%d series)", len(dump.Series))
			}
			if want := len(obs.DefaultDispatchRules()); len(dump.Health.Rules) != want {
				b.Fatalf("health evaluated %d rules, want %d", len(dump.Health.Rules), want)
			}
			b.ReportMetric(float64(admitted)*float64(b.N)/b.Elapsed().Seconds(), "orders/sec")
		})
	}
	collect("Collect", time.Second)
	collect("Hot", time.Millisecond)
}
