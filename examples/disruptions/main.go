// Disruption scenarios: the same simulated morning is dispatched twice —
// once under the paper's clean assumptions, once with the disruption
// layer on: riders abandon while waiting (a constant-hazard patience
// model over each order's deadline slack), drivers decline committed
// assignments and cool down before rejoining, and realized travel times
// wander around the planner's estimates (dispatch still plans on the
// estimates; the estimate-vs-realized gap lands in the travel-error
// ledger). An Observer counts the new CanceledEvent/DeclinedEvent
// stream live, and the final summaries show what the disruptions cost.
package main

import (
	"context"
	"fmt"
	"log"

	"mrvd"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 12000, Seed: 11})

	run := func(opts ...mrvd.Option) (*mrvd.Metrics, int, int) {
		var canceled, declined int
		base := []mrvd.Option{
			mrvd.WithCity(city),
			mrvd.WithFleet(80),
			mrvd.WithHorizon(4 * 3600), // one morning
			mrvd.WithPrediction(mrvd.PredictNone, nil),
			mrvd.WithObserver(mrvd.ObserverFuncs{
				Canceled: func(e mrvd.CanceledEvent) { canceled++ },
				Declined: func(e mrvd.DeclinedEvent) { declined++ },
			}),
		}
		svc, err := mrvd.NewService(append(base, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		m, err := svc.Run(context.Background(), "LS")
		if err != nil {
			log.Fatal(err)
		}
		return m, canceled, declined
	}

	clean, _, _ := run()

	disrupted, canceled, declined := run(mrvd.WithScenario(mrvd.ScenarioConfig{
		CancelRate:      0.15, // 15% of waiting riders abandon early
		DeclineProb:     0.10, // 10% of commitments are declined
		DeclineCooldown: 90,   // declining drivers sit out 90s
		TravelNoise:     0.20, // realized times: ±20% around the estimate
		Seed:            7,
	}))

	c, d := clean.Summary(), disrupted.Summary()
	fmt.Printf("%-22s %12s %12s\n", "", "clean", "disrupted")
	fmt.Printf("%-22s %12d %12d\n", "orders", c.TotalOrders, d.TotalOrders)
	fmt.Printf("%-22s %12d %12d\n", "served", c.Served, d.Served)
	fmt.Printf("%-22s %12d %12d\n", "expired", c.Reneged, d.Reneged)
	fmt.Printf("%-22s %12d %12d\n", "canceled by rider", c.Canceled, d.Canceled)
	fmt.Printf("%-22s %12d %12d\n", "driver declines", c.Declines, d.Declines)
	fmt.Printf("%-22s %12.0f %12.0f\n", "revenue (paid s)", c.Revenue, d.Revenue)

	// The event stream and the metrics agree — observers saw every
	// disruption as it happened.
	fmt.Printf("\nlive events: %d cancels, %d declines\n", canceled, declined)

	// The travel-error ledger pairs each noisy trip's planned durations
	// with the realized ones — the data a platform's ETA model trains on.
	fmt.Printf("travel-error ledger: %d trips, mean |estimate-realized| = %.1fs\n",
		d.TravelSamples, d.MeanAbsTravelErrorSeconds())
	if len(disrupted.TravelRecords) > 0 {
		r := disrupted.TravelRecords[0]
		fmt.Printf("  e.g. order %d: pickup %.0fs planned / %.0fs realized, trip %.0fs planned / %.0fs realized\n",
			r.Order, r.PickupEstimate, r.PickupRealized, r.TripEstimate, r.TripRealized)
	}
}
