// Live dispatch: orders stream into a running engine through a
// ChannelSource instead of being materialized upfront — the shape of a
// production ingestion path. A first wave of ride requests is submitted
// before the run and a second wave lands mid-run while the engine
// dispatches in 3-second batches; an Observer streams assignments and
// expiries as they happen, so nothing needs to be scraped from Metrics
// afterwards.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mrvd"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 28000, Seed: 11})
	grid := city.Grid()

	// The live edge: producers Submit, the engine Polls. Submit is safe
	// from any goroutine; the source buffers orders posted in the future
	// and releases each once the engine's clock reaches its PostTime.
	src := mrvd.NewChannelSource()

	rng := rand.New(rand.NewSource(42))
	box := grid.Bounds()
	point := func(cLng, cLat, spread float64) mrvd.Point {
		return box.Clamp(mrvd.Point{
			Lng: cLng + rng.NormFloat64()*spread,
			Lat: cLat + rng.NormFloat64()*spread,
		})
	}
	center := box.Center()
	nextID := 0
	submitWave := func(n int, from, span float64) {
		for i := 0; i < n; i++ {
			post := from + rng.Float64()*span
			o := mrvd.Order{
				ID:       mrvd.OrderID(nextID),
				PostTime: post,
				Pickup:   point(center.Lng-0.01, center.Lat+0.005, 0.008),
				Dropoff:  point(center.Lng+0.015, center.Lat-0.01, 0.012),
				Deadline: post + 120 + rng.Float64()*240,
			}
			nextID++
			if err := src.Submit(o); err != nil {
				log.Fatal(err)
			}
		}
	}

	// First wave before the engine starts; the second arrives mid-run,
	// triggered off the engine's own clock (below) so the demo is
	// deterministic — a wall-clock producer goroutine would race the
	// simulation, which runs thousands of times faster than real time.
	submitWave(300, 0, 900)

	// Stream events instead of scraping metrics: count outcomes live,
	// print a progress line every simulated five minutes, and feed the
	// second wave once the engine's clock reaches the 15-minute mark.
	var assigned, expired int
	lastMinute := -1
	waveSent := false
	observer := mrvd.ObserverFuncs{
		Assigned: func(e mrvd.AssignedEvent) { assigned++ },
		Expired:  func(e mrvd.ExpiredEvent) { expired++ },
		BatchStart: func(e mrvd.BatchStartEvent) {
			if !waveSent && e.Now >= 900 {
				waveSent = true
				submitWave(300, e.Now, 900)
				src.Close() // stream ends after this wave
			}
			if min := int(e.Now) / 60; min > lastMinute && min%5 == 0 {
				lastMinute = min
				fmt.Printf("t=%4.0fs  waiting=%-4d available=%-4d assigned=%-5d expired=%d\n",
					e.Now, e.Waiting, e.Available, assigned, expired)
			}
		},
	}

	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(120),
		mrvd.WithBatchInterval(3),
		mrvd.WithHorizon(2*3600), // upper bound; Serve exits when drained
		mrvd.WithPrediction(mrvd.PredictNone, nil),
		mrvd.WithObserver(observer),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Position the fleet where the burst will happen — a live platform
	// knows its demand geography. Serve also accepts nil to sample
	// citywide starts.
	startRng := rand.New(rand.NewSource(7))
	starts := make([]mrvd.Point, 120)
	for i := range starts {
		starts[i] = box.Clamp(mrvd.Point{
			Lng: center.Lng + (startRng.Float64()-0.6)*0.03,
			Lat: center.Lat + (startRng.Float64()-0.4)*0.03,
		})
	}

	// A deadline guards the whole run; Ctrl-C-style cancellation works
	// the same way.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	m, err := svc.Serve(ctx, "IRG", src, starts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("streamed orders: %d\n", m.TotalOrders)
	fmt.Printf("served:          %d (%.1f%%)\n", m.Served, 100*m.ServiceRate())
	fmt.Printf("expired:         %d\n", m.Reneged)
	fmt.Printf("revenue:         %.0f paid seconds\n", m.Revenue)
	fmt.Printf("batches:         %d (engine exited once the stream drained)\n", m.Batches)
}
