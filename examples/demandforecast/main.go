// Demand forecast: train all four prediction models of the paper's
// Appendix A on a synthetic multi-month history and compare their
// held-out accuracy (the protocol behind Table 6), then show how one
// region's 8 AM forecast tracks reality across a week.
package main

import (
	"fmt"
	"log"

	"mrvd"
	"mrvd/internal/predict"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 70000, Seed: 31})
	days := predict.MinLookbackDays + 28
	evalDays := 7

	fmt.Printf("generating %d days of 30-minute demand history...\n", days)
	h := predict.GenerateHistory(city, days, 1800, 5)

	fmt.Printf("%-16s %10s %10s %10s\n", "model", "RMSE(%)", "RealRMSE", "MAE")
	var best predict.Predictor
	bestRMSE := 1e18
	for _, m := range predict.All(1) {
		if err := m.Train(h, days-evalDays); err != nil {
			log.Fatal(err)
		}
		res, err := predict.Evaluate(m, h, days-evalDays, days)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10.2f %10.2f %10.2f\n",
			res.Model, res.RelativeRMSE, res.RealRMSE, res.MAE)
		if res.RelativeRMSE < bestRMSE {
			bestRMSE = res.RelativeRMSE
			best = m
		}
	}

	// Pick the busiest region and compare forecast vs realized at 8 AM
	// (slot 16 of 48) across the held-out week.
	grid := city.Grid()
	busiest := 0
	bv := -1.0
	for r := 0; r < grid.NumRegions(); r++ {
		if v := city.Intensity(0, 8*60, r); v > bv {
			bv, busiest = v, r
		}
	}
	fmt.Printf("\nbusiest region, 8:00 slot, held-out week (%s):\n", best.Name())
	fmt.Printf("%-6s %10s %10s\n", "day", "forecast", "realized")
	for day := days - evalDays; day < days; day++ {
		fc := best.Predict(h, day, 16, busiest)
		fmt.Printf("%-6d %10.1f %10.0f\n", day, fc, h.At(day, 16, busiest))
	}
}
