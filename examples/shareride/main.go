// Share the ride: the same saturated morning peak dispatched solo and
// pooled. One peak hour of a 28K-order day lands on a fleet far too
// small to serve it one rider per car; enabling pooling lets the POOL
// dispatcher splice a second rider's pickup and dropoff into an active
// route plan whenever the detour fits the bound, so the same drivers
// serve strictly more orders at a small, bounded detour cost to the
// riders who share.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mrvd"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 28000, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	day := city.GenerateDay(0, rng)

	// One rebased peak hour: 7-8 AM of the synthetic day.
	const peakStart, horizon = 25200.0, 3600.0
	var orders []mrvd.Order
	for _, o := range day {
		if o.PostTime >= peakStart && o.PostTime < peakStart+horizon {
			o.PostTime -= peakStart
			o.Deadline -= peakStart
			orders = append(orders, o)
		}
	}
	starts := city.InitialDrivers(60, day, rng)
	fmt.Printf("morning peak: %d orders in one hour, %d drivers\n\n", len(orders), len(starts))

	const maxDetour = 300.0
	run := func(extra ...mrvd.Option) mrvd.Summary {
		opts := append([]mrvd.Option{
			mrvd.WithCity(city),
			mrvd.WithOrders(orders, starts),
			mrvd.WithFleet(len(starts)),
			mrvd.WithHorizon(horizon),
			mrvd.WithPrediction(mrvd.PredictNone, nil),
		}, extra...)
		svc, err := mrvd.NewService(opts...)
		if err != nil {
			log.Fatal(err)
		}
		m, err := svc.Run(context.Background(), "POOL")
		if err != nil {
			log.Fatal(err)
		}
		return m.Summary()
	}

	fmt.Printf("%-12s %8s %8s %8s %12s\n", "mode", "served", "shared", "perDrv", "meanDetour")
	solo := run()
	fmt.Printf("%-12s %8d %8d %8.2f %12s\n",
		"solo", solo.Served, solo.SharedServed, float64(solo.Served)/float64(len(starts)), "-")
	for _, capacity := range []int{2, 3} {
		s := run(mrvd.WithPooling(capacity, maxDetour))
		detour := 0.0
		if s.SharedServed > 0 {
			detour = s.DetourSeconds / float64(s.SharedServed)
		}
		fmt.Printf("%-12s %8d %8d %8.2f %11.0fs\n",
			fmt.Sprintf("capacity=%d", capacity), s.Served, s.SharedServed,
			float64(s.Served)/float64(len(starts)), detour)
	}

	fmt.Printf("\nEvery shared rider's realized detour is bounded by %0.0fs; with\n", maxDetour)
	fmt.Println("pooling off (or capacity 1) the run is byte-identical to the")
	fmt.Println("plain engine — the subsystem costs nothing until enabled.")
}
