// HTTP serving end to end: boot the dispatch gateway on a loopback
// port, drive it with the YCSB-style load harness over real HTTP, and
// read the live state back through the API — the in-process version of
// running cmd/mrvd-serve and cmd/mrvd-load side by side.
//
// The engine free-runs (pace 0) so the demo compresses a city's worth
// of dispatching into a couple of wall seconds; a production deployment
// would use mrvd-serve's default real-time pacing instead.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"mrvd"
	"mrvd/internal/load"
	"mrvd/internal/server"
	"mrvd/internal/workload"
)

func main() {
	const fleet = 48
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 2000, Seed: 17})
	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(fleet),
		mrvd.WithBatchInterval(3),
		mrvd.WithHorizon(365*24*3600), // the demo ends by cancel, not horizon
		mrvd.WithPrediction(mrvd.PredictNone, nil),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The serving side: gateway + HTTP listener on a loopback port.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gw, err := server.New(ctx, svc, server.Config{
		Algorithm:  "LS",
		Fleet:      fleet,
		MaxPending: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: gw}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("gateway up on %s\n\n", base)

	// The client side: 160 orders from 8 concurrent clients, each
	// long-polling its order's assignment.
	rep, err := load.Run(ctx, load.Config{
		BaseURL:     base,
		Orders:      160,
		Concurrency: 8,
		Patience:    1800,
		City:        workload.NewCity(workload.CityConfig{OrdersPerDay: 2000, Seed: 17}),
		Seed:        9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load: %d orders in %.2fs (%.0f/s), %d assigned, %d expired\n",
		rep.Orders, rep.ElapsedSeconds, rep.Throughput, rep.Assigned, rep.Expired)
	l := rep.Latency
	fmt.Printf("submit-to-assignment latency: p50=%.1fms p95=%.1fms p99=%.1fms\n\n",
		l.P50MS, l.P95MS, l.P99MS)

	// Read the platform state back through the API, like a dashboard
	// would.
	var stats struct {
		Engine struct {
			Clock    float64 `json:"clock"`
			Batch    int     `json:"batch"`
			Assigned int     `json:"assigned"`
			Expired  int     `json:"expired"`
			Revenue  float64 `json:"revenue"`
		} `json:"engine"`
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("/v1/stats: engine at t=%.0fs after %d batches; %d assigned, %d expired, revenue %.0f\n",
		stats.Engine.Clock, stats.Engine.Batch, stats.Engine.Assigned,
		stats.Engine.Expired, stats.Engine.Revenue)

	var drivers []struct {
		Served int `json:"served"`
	}
	resp, err = http.Get(base + "/v1/drivers")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&drivers); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	busiest := 0
	for _, d := range drivers {
		if d.Served > busiest {
			busiest = d.Served
		}
	}
	fmt.Printf("/v1/drivers: %d drivers, busiest served %d orders\n", len(drivers), busiest)

	// Shut the stack down: cancel the session, close the listener.
	cancel()
	<-gw.Handle().Done()
	hs.Close()
	fmt.Println("\nsession canceled, gateway drained cleanly")
}
