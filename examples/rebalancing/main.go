// Rebalancing: the framework's natural extension from passive
// destination steering to active supply repositioning. Long-idle drivers
// cruise toward the neighbouring region with the smallest expected idle
// time (the same ET(lambda, mu) the dispatcher minimizes). The example
// counts the cruises live through an event observer and prints the
// region-level rider-side analytics — renege probability and mean queue
// length — that explain where rebalancing pays off.
package main

import (
	"context"
	"fmt"
	"log"

	"mrvd"
	"mrvd/internal/dispatch"
	"mrvd/internal/queueing"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 28000, Seed: 5})

	run := func(reposition bool) (*mrvd.Metrics, int) {
		cruises := 0
		opts := []mrvd.Option{
			mrvd.WithCity(city),
			mrvd.WithFleet(150),
			mrvd.WithBatchInterval(5),
			mrvd.WithObserver(mrvd.ObserverFuncs{
				Repositioned: func(mrvd.RepositionedEvent) { cruises++ },
			}),
		}
		if reposition {
			opts = append(opts, mrvd.WithRepositioner(&dispatch.QueueReposition{}, 240))
		}
		svc, err := mrvd.NewService(opts...)
		if err != nil {
			log.Fatal(err)
		}
		m, err := svc.Run(context.Background(), "IRG")
		if err != nil {
			log.Fatal(err)
		}
		return m, cruises
	}

	base, _ := run(false)
	rebal, cruises := run(true)
	fmt.Println("IRG, 28K orders, 150 drivers:")
	fmt.Printf("%-24s %14s %8s %10s %9s\n", "", "revenue", "served", "reneged", "cruises")
	fmt.Printf("%-24s %14.0f %8d %10d %9d\n", "stay at dropoff (paper)", base.Revenue, base.Served, base.Reneged, 0)
	fmt.Printf("%-24s %14.0f %8d %10d %9d\n", "queue-guided rebalancing", rebal.Revenue, rebal.Served, rebal.Reneged, cruises)
	fmt.Printf("revenue change: %+.2f%%\n\n", 100*(rebal.Revenue/base.Revenue-1))

	// Rider-side analytics for three demand/supply mixes: why some
	// regions shed riders and others hoard drivers.
	model := queueing.NewDefault()
	fmt.Println("region analytics at t_c-window rates (per second):")
	fmt.Printf("%-28s %10s %12s %14s %14s\n",
		"scenario", "ET (s)", "P(renege)", "E[wait riders]", "E[idle drivers]")
	for _, s := range []struct {
		name       string
		lambda, mu float64
		k          int
	}{
		{"hot: 2x demand surplus", 0.06, 0.03, 40},
		{"balanced", 0.04, 0.04, 40},
		{"cold: 2x driver surplus", 0.02, 0.04, 40},
	} {
		fmt.Printf("%-28s %10.1f %12.3f %14.2f %14.2f\n",
			s.name,
			model.ExpectedIdleTime(s.lambda, s.mu, s.k),
			model.RenegeProb(s.lambda, s.mu, s.k),
			model.MeanWaitingRiders(s.lambda, s.mu, s.k),
			model.MeanCongestedDrivers(s.lambda, s.mu, s.k))
	}
}
