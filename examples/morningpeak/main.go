// Morning peak: the motivating scenario of the paper's introduction —
// an 8 AM shortage where riders outnumber drivers. Compares the
// queueing-aware dispatchers (IRG, LS) against the myopic baselines
// (NEAR, LTG, RAND) on the same instance and shows the revenue gap and
// idle-time difference the destination steering buys.
package main

import (
	"fmt"
	"log"

	"mrvd"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{
		OrdersPerDay:    42000,
		BaseWaitSeconds: 120,
		Seed:            7,
	})
	fmt.Println("morning-peak shortage: 42K daily orders, 120 drivers")
	fmt.Printf("%-6s %14s %9s %10s %12s\n", "alg", "revenue", "served", "meanIdle", "% of UPPER")

	type result struct {
		name    string
		revenue float64
	}
	var upper float64
	var rows []result
	for _, name := range []string{"UPPER", "LS", "IRG", "LTG", "NEAR", "RAND"} {
		runner := mrvd.NewRunner(mrvd.Options{
			City:       city,
			NumDrivers: 120,
			Delta:      3,
		})
		d, err := mrvd.NewDispatcher(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := runner.Run(d, mrvd.PredictOracle, nil)
		if err != nil {
			log.Fatal(err)
		}
		if name == "UPPER" {
			upper = m.Revenue
		}
		idle, n := 0.0, 0
		for _, rec := range m.IdleRecords {
			idle += rec.Realized
			n++
		}
		mean := 0.0
		if n > 0 {
			mean = idle / float64(n)
		}
		fmt.Printf("%-6s %14.0f %9d %9.0fs %11.1f%%\n",
			name, m.Revenue, m.Served, mean, 100*m.Revenue/upper)
		rows = append(rows, result{name, m.Revenue})
	}

	// Revenue lift of the queueing-aware methods over the baselines.
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.name] = r.revenue
	}
	fmt.Printf("\nLS over RAND: %+.2f%%   LS over NEAR: %+.2f%%\n",
		100*(byName["LS"]/byName["RAND"]-1), 100*(byName["LS"]/byName["NEAR"]-1))
}
