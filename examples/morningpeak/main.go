// Morning peak: the motivating scenario of the paper's introduction —
// an 8 AM shortage where riders outnumber drivers. Compares the
// queueing-aware dispatchers (IRG, LS) against the myopic baselines
// (NEAR, LTG, RAND) on the same instance and shows the revenue gap and
// idle-time difference the destination steering buys.
package main

import (
	"context"
	"fmt"
	"log"

	"mrvd"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{
		OrdersPerDay:    42000,
		BaseWaitSeconds: 120,
		Seed:            7,
	})
	fmt.Println("morning-peak shortage: 42K daily orders, 120 drivers")
	fmt.Printf("%-6s %14s %9s %10s %12s\n", "alg", "revenue", "served", "meanIdle", "% of UPPER")

	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(120),
		mrvd.WithBatchInterval(3),
		mrvd.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	var upper float64
	byName := map[string]float64{}
	for _, name := range []string{"UPPER", "LS", "IRG", "LTG", "NEAR", "RAND"} {
		m, err := svc.Run(context.Background(), name)
		if err != nil {
			log.Fatal(err)
		}
		if name == "UPPER" {
			upper = m.Revenue
		}
		s := m.Summary()
		fmt.Printf("%-6s %14.0f %9d %9.0fs %11.1f%%\n",
			name, s.Revenue, s.Served, s.MeanIdleSeconds(), 100*s.Revenue/upper)
		byName[name] = m.Revenue
	}

	// Revenue lift of the queueing-aware methods over the baselines.
	fmt.Printf("\nLS over RAND: %+.2f%%   LS over NEAR: %+.2f%%\n",
		100*(byName["LS"]/byName["RAND"]-1), 100*(byName["LS"]/byName["NEAR"]-1))
}
