// Quickstart: simulate one day of car-hailing in a scaled NYC-like city
// and dispatch with the paper's local search (LS), printing the headline
// platform metrics.
package main

import (
	"context"
	"fmt"
	"log"

	"mrvd"
)

func main() {
	// A synthetic city with NYC-like demand marginals: 16x16 grid,
	// morning/evening peaks, hotspot concentration.
	city := mrvd.NewCity(mrvd.CityConfig{
		OrdersPerDay:    28000, // 0.1x the paper's NYC test day
		BaseWaitSeconds: 120,   // riders renege ~2 minutes after posting
		Seed:            1,
	})

	// A dispatch service over one generated day plus a 100-vehicle fleet
	// starting at sampled pickup locations, fed real (oracle) demand
	// forecasts — the paper's best configuration.
	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(100),
		mrvd.WithBatchInterval(3),       // batch every 3 seconds
		mrvd.WithSchedulingWindow(1200), // 20-minute queueing-analysis window
	)
	if err != nil {
		log.Fatal(err)
	}

	// Run the paper's best algorithm: idle-ratio greedy refined by local
	// search. The context cancels mid-run if needed (Ctrl-C, deadlines).
	m, err := svc.Run(context.Background(), "LS")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("orders:        %d\n", m.TotalOrders)
	fmt.Printf("served:        %d (%.1f%%)\n", m.Served, 100*m.ServiceRate())
	fmt.Printf("reneged:       %d\n", m.Reneged)
	fmt.Printf("total revenue: %.0f (seconds of paid travel, alpha=1)\n", m.Revenue)
	fmt.Printf("batch time:    %.2f ms average over %d batches\n",
		1000*m.AvgBatchSeconds(), m.Batches)
}
