// Fleet sizing: sweep the fleet from scarcity to saturation and watch
// every algorithm's revenue approach the UPPER bound — the dynamics of
// the paper's Figure 7. A platform operator can read off the smallest
// fleet that captures a target fraction of the attainable revenue.
//
// The whole (algorithm × fleet) grid runs through Service.Sweep on a
// parallel worker pool; results are deterministic and come back in grid
// order, so the table below is identical to a sequential run.
package main

import (
	"context"
	"fmt"
	"log"

	"mrvd"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{
		OrdersPerDay:    28000,
		BaseWaitSeconds: 120,
		Seed:            3,
	})
	fleets := []int{50, 100, 200, 350, 500}
	algs := []string{"LS", "NEAR", "RAND", "UPPER"}

	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithBatchInterval(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	results, err := svc.Sweep(context.Background(), mrvd.SweepSpec{
		Algorithms: algs,
		Fleets:     fleets,
		Seeds:      []int64{0},
		Mode:       mrvd.PredictOracle,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Index revenue by (fleet, algorithm) from the grid-ordered results.
	revenue := map[int]map[string]float64{}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s fleet %d: %v", r.Algorithm, r.Fleet, r.Err)
		}
		if revenue[r.Fleet] == nil {
			revenue[r.Fleet] = map[string]float64{}
		}
		revenue[r.Fleet][r.Algorithm] = r.Metrics.Revenue
	}

	fmt.Println("revenue vs fleet size (28K daily orders)")
	fmt.Printf("%-8s", "fleet")
	for _, a := range algs {
		fmt.Printf("%14s", a)
	}
	fmt.Printf("%14s\n", "LS %of UPPER")
	for _, n := range fleets {
		fmt.Printf("%-8d", n)
		for _, a := range algs {
			fmt.Printf("%14.0f", revenue[n][a])
		}
		fmt.Printf("%13.1f%%\n", 100*revenue[n]["LS"]/revenue[n]["UPPER"])
	}
}
