// Fleet sizing: sweep the fleet from scarcity to saturation and watch
// every algorithm's revenue approach the UPPER bound — the dynamics of
// the paper's Figure 7. A platform operator can read off the smallest
// fleet that captures a target fraction of the attainable revenue.
package main

import (
	"fmt"
	"log"

	"mrvd"
)

func main() {
	city := mrvd.NewCity(mrvd.CityConfig{
		OrdersPerDay:    28000,
		BaseWaitSeconds: 120,
		Seed:            3,
	})
	fleets := []int{50, 100, 200, 350, 500}
	algs := []string{"LS", "NEAR", "RAND", "UPPER"}

	fmt.Println("revenue vs fleet size (28K daily orders)")
	fmt.Printf("%-8s", "fleet")
	for _, a := range algs {
		fmt.Printf("%14s", a)
	}
	fmt.Printf("%14s\n", "LS %of UPPER")

	for _, n := range fleets {
		fmt.Printf("%-8d", n)
		revenues := map[string]float64{}
		for _, a := range algs {
			runner := mrvd.NewRunner(mrvd.Options{
				City:       city,
				NumDrivers: n,
				Delta:      5,
			})
			d, err := mrvd.NewDispatcher(a, 1)
			if err != nil {
				log.Fatal(err)
			}
			m, err := runner.Run(d, mrvd.PredictOracle, nil)
			if err != nil {
				log.Fatal(err)
			}
			revenues[a] = m.Revenue
			fmt.Printf("%14.0f", m.Revenue)
		}
		fmt.Printf("%13.1f%%\n", 100*revenues["LS"]/revenues["UPPER"])
	}
}
