// Sharded dispatch: the same simulated day replayed on the partitioned
// multi-engine runtime at 1, 2, 4 and 8 shards. Each shard owns a
// contiguous band of the city's regions and the slice of the fleet
// that starts there; a router admits every order to the shard owning
// its pickup region, and per-shard events and metrics aggregate back
// into one city-wide stream. The table shows how dispatch throughput
// scales while the served/revenue quality stays close to the unsharded
// engine — and the live session at the end submits orders through a
// sharded ServeHandle, the same path the HTTP gateway uses.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mrvd"
)

func main() {
	// A heavy serving day: 100K orders, a 2000-strong fleet, 20-second
	// dispatch batches capped at the 16 nearest candidate drivers per
	// rider — the scale where batch dispatch is the bottleneck and
	// partitioning pays.
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 100000, Seed: 11})

	// --- Part 1: replay scaling, 1 -> 8 shards ---------------------
	// Two throughput views: wall time (what one core realizes — the
	// engines interleave when GOMAXPROCS=1) and the dispatch critical
	// path (the slowest shard per round, summed — what parallel
	// hardware realizes, since shards dispatch concurrently).
	fmt.Println("replaying one simulated day (100K orders, 2000 drivers, IRG):")
	fmt.Println("shards  wall       dispatch   served  reneged  revenue   dispatch-speedup")
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		svc, err := mrvd.NewService(
			mrvd.WithCity(city),
			mrvd.WithFleet(2000),
			mrvd.WithBatchInterval(20),
			mrvd.WithCandidateCap(16),
			mrvd.WithShards(shards),
			mrvd.WithPrediction(mrvd.PredictNone, nil),
		)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		m, err := svc.Run(context.Background(), "IRG")
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		dispatch := 0.0
		for _, s := range m.BatchSeconds {
			dispatch += s
		}
		if shards == 1 {
			base = dispatch
		}
		fmt.Printf("%6d  %-9s  %7.2fs  %6d  %7d  %8.0f   %.2fx\n",
			shards, wall.Round(time.Millisecond), dispatch,
			m.Served, m.Reneged, m.Revenue, base/dispatch)
	}

	// --- Part 2: a live sharded session ----------------------------
	// Orders submitted through the handle route to the shard owning
	// their pickup region; outcomes come back per order, exactly as in
	// an unsharded session. CandidateBorrow lets frontier riders use a
	// neighbouring shard's idle drivers.
	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(64),
		mrvd.WithShards(4),
		mrvd.WithBoundaryPolicy(mrvd.CandidateBorrow),
		mrvd.WithHorizon(7200),
		mrvd.WithPrediction(mrvd.PredictNone, nil),
	)
	if err != nil {
		log.Fatal(err)
	}
	h, err := svc.Start(context.Background(), "NEAR", nil)
	if err != nil {
		log.Fatal(err)
	}

	box := city.Grid().Bounds()
	fmt.Println("\nlive sharded session (4 shards, candidate-borrow):")
	for i := 0; i < 6; i++ {
		// Spread pickups south to north so different shards serve them.
		frac := float64(i) / 5
		now := h.Clock()
		_, outcome, err := h.Submit(mrvd.Order{
			PostTime: now,
			Deadline: now + 900,
			Pickup:   mrvd.Point{Lng: box.MinLng + 0.4*(box.MaxLng-box.MinLng), Lat: box.MinLat + frac*(box.MaxLat-box.MinLat)},
			Dropoff:  box.Center(),
		})
		if err != nil {
			log.Fatal(err)
		}
		out := <-outcome
		fmt.Printf("  order %d: %s (driver %d, pickup %.0fs)\n",
			out.Order, out.Status, out.Driver, out.PickupCost)
	}
	for i, s := range h.ShardStats() {
		fmt.Printf("  shard %d: regions=%d drivers=%d admitted=%d borrowed=%d served=%d\n",
			i, s.Regions, s.Drivers, s.Admitted, s.BorrowedIn, s.Served)
	}
	h.Close()
	if _, err := h.Result(); err != nil {
		log.Fatal(err)
	}
}
