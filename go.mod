module mrvd

go 1.24
