// Command mrvd-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mrvd-bench -exp fig7 [-scale 0.25] [-seeds 3]
//	mrvd-bench -exp all
//	mrvd-bench -list
//
// Each experiment prints a plain-text table with the same rows/series
// the paper reports; see EXPERIMENTS.md for the committed results and
// their interpretation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mrvd/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (e.g. table3, fig7) or 'all'")
		scale = flag.Float64("scale", 0.25, "fraction of the paper's order volume and fleet sizes")
		seeds = flag.Int("seeds", 3, "problem instances averaged per data point (paper uses 10)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("%-18s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mrvd-bench: -exp required (or -list); e.g. -exp fig7")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := experiments.Config{Scale: *scale, Seeds: *seeds}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		e, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "mrvd-bench: unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		fmt.Printf("== %s: %s (scale=%.2f, seeds=%d) ==\n", e.ID, e.Title, *scale, *seeds)
		start := time.Now()
		if err := e.Run(ctx, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %s --\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
