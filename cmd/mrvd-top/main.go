// Command mrvd-top is a terminal dashboard over a collecting
// mrvd-serve gateway: it polls GET /v1/timeseries and renders live
// sparklines for dispatch throughput, latency quantiles, queue and
// fleet gauges, shard balance and process health, plus the SLO rule
// states the gateway's /healthz reports — top(1) for a dispatch
// session.
//
// Usage:
//
//	mrvd-top [-url http://127.0.0.1:8080] [-interval 1s] [-width 60]
//	         [-once] [-no-color]
//
// The gateway must run with collection enabled (mrvd-serve -metrics
// -collect). -once renders a single frame without clearing the screen
// and exits — usable in scripts and tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"mrvd/internal/obs"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "gateway base URL")
		interval = flag.Duration("interval", time.Second, "poll period")
		width    = flag.Int("width", 60, "sparkline width in windows")
		once     = flag.Bool("once", false, "render one frame and exit")
		noColor  = flag.Bool("no-color", false, "disable ANSI colors")
	)
	flag.Parse()
	if *width < 8 {
		*width = 8
	}

	d := &dash{url: *url, width: *width, color: !*noColor}
	if *once {
		if err := d.frame(os.Stdout, false); err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-top: %v\n", err)
			os.Exit(1)
		}
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	t := time.NewTicker(*interval)
	defer t.Stop()
	fmt.Print("\x1b[2J") // clear once; frames repaint from home
	for {
		if err := d.frame(os.Stdout, true); err != nil {
			fmt.Printf("\x1b[H\x1b[2Kmrvd-top: %v (retrying)\n", err)
		}
		select {
		case <-stop:
			fmt.Print("\x1b[0m\n")
			return
		case <-t.C:
		}
	}
}

// dash holds the render configuration and HTTP client.
type dash struct {
	url    string
	width  int
	color  bool
	client http.Client
}

func (d *dash) fetch() (obs.TimeSeries, error) {
	var ts obs.TimeSeries
	resp, err := d.client.Get(d.url + "/v1/timeseries")
	if err != nil {
		return ts, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ts, fmt.Errorf("GET /v1/timeseries: status %d (is the gateway running with -collect?)", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
		return ts, fmt.Errorf("decode timeseries: %w", err)
	}
	return ts, nil
}

func (d *dash) frame(w io.Writer, repaint bool) error {
	ts, err := d.fetch()
	if err != nil {
		return err
	}
	var b strings.Builder
	if repaint {
		b.WriteString("\x1b[H")
	}
	renderFrame(&b, ts, d.url, d.width, d.color, repaint)
	_, err = io.WriteString(w, b.String())
	return err
}

// --- rendering ---

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders up to width points, oldest first, scaled to the
// series' own [min,max]; missing points render as spaces.
func sparkline(points []*float64, width int) string {
	if len(points) > width {
		points = points[len(points)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		if p == nil {
			continue
		}
		lo = math.Min(lo, *p)
		hi = math.Max(hi, *p)
	}
	var sb strings.Builder
	for _, p := range points {
		if p == nil {
			sb.WriteByte(' ')
			continue
		}
		if hi <= lo {
			sb.WriteRune(sparkRunes[0])
			continue
		}
		i := int((*p - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

// last returns the newest non-null point.
func last(points []*float64) (float64, bool) {
	for i := len(points) - 1; i >= 0; i-- {
		if points[i] != nil {
			return *points[i], true
		}
	}
	return 0, false
}

func peak(points []*float64) float64 {
	m := math.Inf(-1)
	for _, p := range points {
		if p != nil {
			m = math.Max(m, *p)
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

const (
	cReset  = "\x1b[0m"
	cDim    = "\x1b[2m"
	cBold   = "\x1b[1m"
	cGreen  = "\x1b[32m"
	cYellow = "\x1b[33m"
	cRed    = "\x1b[31m"
)

func paint(color bool, code, s string) string {
	if !color {
		return s
	}
	return code + s + cReset
}

func stateColor(s obs.State) string {
	switch s {
	case obs.StateUnhealthy:
		return cRed
	case obs.StateDegraded:
		return cYellow
	}
	return cGreen
}

// row is one curated dashboard line.
type row struct {
	label  string
	series *obs.SeriesDump
	unit   string
}

// find locates a series by family and stat, optionally requiring a
// label pair (pass "", "" for none).
func find(ts *obs.TimeSeries, family, stat, labelKey, labelVal string) *obs.SeriesDump {
	for i := range ts.Series {
		s := &ts.Series[i]
		if s.Family != family || s.Stat != stat {
			continue
		}
		if labelKey != "" && s.Labels[labelKey] != labelVal {
			continue
		}
		return s
	}
	return nil
}

// fmtVal renders a value compactly with its unit.
func fmtVal(v float64, unit string) string {
	switch unit {
	case "s":
		switch {
		case v >= 100:
			return fmt.Sprintf("%.0fs", v)
		case v >= 1:
			return fmt.Sprintf("%.1fs", v)
		default:
			return fmt.Sprintf("%.0fms", v*1000)
		}
	case "B":
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.1fGiB", v/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.1fMiB", v/(1<<20))
		default:
			return fmt.Sprintf("%.0fKiB", v/(1<<10))
		}
	default:
		switch {
		case v != math.Trunc(v) && math.Abs(v) < 100:
			return fmt.Sprintf("%.2f%s", v, unit)
		default:
			return fmt.Sprintf("%.0f%s", v, unit)
		}
	}
}

// renderFrame paints one dashboard frame from a timeseries dump.
// Split from the fetch so tests can drive it with synthetic data.
func renderFrame(b *strings.Builder, ts obs.TimeSeries, url string, width int, color, repaint bool) {
	eol := "\n"
	if repaint {
		eol = "\x1b[K\n" // clear to end of line so shorter lines overwrite
	}
	st := ts.Health.Status
	if st == "" {
		st = obs.StateOK
	}
	fmt.Fprintf(b, "%s  %s  interval %gs  windows %d  %s%s",
		paint(color, cBold, "mrvd-top"), url, ts.IntervalSeconds, ts.Windows,
		paint(color, stateColor(st)+cBold, strings.ToUpper(string(st))), eol)
	b.WriteString(eol)

	rows := []row{
		{"admitted/s", find(&ts, "mrvd_orders_admitted_total", obs.StatRate, "", ""), "/s"},
		{"served/s", find(&ts, "mrvd_orders_terminal_total", obs.StatRate, "outcome", "served"), "/s"},
		{"reneged/s", find(&ts, "mrvd_orders_terminal_total", obs.StatRate, "outcome", "reneged"), "/s"},
		{"canceled/s", find(&ts, "mrvd_orders_terminal_total", obs.StatRate, "outcome", "canceled"), "/s"},
		{"latency p50", find(&ts, "mrvd_submit_terminal_seconds", obs.StatP50, "", ""), "s"},
		{"latency p95", find(&ts, "mrvd_submit_terminal_seconds", obs.StatP95, "", ""), "s"},
		{"dispatch p95", find(&ts, "mrvd_dispatch_phase_seconds", obs.StatP95, "phase", "dispatch"), "s"},
		{"goroutines", find(&ts, "process_goroutines", obs.StatValue, "", ""), ""},
		{"heap inuse", find(&ts, "process_heap_inuse_bytes", obs.StatValue, "", ""), "B"},
	}
	// Per-shard gauges, every shard present, sorted for a stable frame.
	var shardRows []row
	for i := range ts.Series {
		s := &ts.Series[i]
		switch {
		case s.Family == "mrvd_queue_depth" && s.Stat == obs.StatValue:
			shardRows = append(shardRows, row{"queue depth s" + s.Labels["shard"], s, ""})
		case s.Family == "mrvd_drivers_available" && s.Stat == obs.StatValue:
			shardRows = append(shardRows, row{"drivers s" + s.Labels["shard"], s, ""})
		case s.Family == "mrvd_shard_round_seconds" && s.Stat == obs.StatMean:
			shardRows = append(shardRows, row{"round mean s" + s.Labels["shard"], s, "s"})
		}
	}
	sort.Slice(shardRows, func(i, j int) bool { return shardRows[i].label < shardRows[j].label })
	rows = append(rows, shardRows...)

	for _, r := range rows {
		if r.series == nil {
			continue
		}
		cur, ok := last(r.series.Points)
		curs := "-"
		if ok {
			curs = fmtVal(cur, r.unit)
		}
		fmt.Fprintf(b, "  %-16s %s%-*s%s %8s %s%s",
			r.label,
			paint(color, cDim, "|"), width, sparkline(r.series.Points, width), paint(color, cDim, "|"),
			curs,
			paint(color, cDim, "peak "+fmtVal(peak(r.series.Points), r.unit)), eol)
	}
	b.WriteString(eol)

	if len(ts.Health.Rules) > 0 {
		fmt.Fprintf(b, "%s%s", paint(color, cBold, "rules"), eol)
		for _, r := range ts.Health.Rules {
			dot := paint(color, stateColor(r.State), "●")
			val := "-"
			if r.Value != nil {
				val = fmtVal(*r.Value, "")
			}
			fmt.Fprintf(b, "  %s %-24s %-9s %8s %s %v   %s%s",
				dot, r.Name, string(r.State), val, r.Op, r.Threshold,
				paint(color, cDim, r.Metric), eol)
		}
	}
	if n := len(ts.Health.Events); n > 0 {
		fmt.Fprintf(b, "%s%s", paint(color, cBold, "recent transitions"), eol)
		lo := n - 5
		if lo < 0 {
			lo = 0
		}
		for _, ev := range ts.Health.Events[lo:] {
			at := time.Unix(int64(ev.At), 0).Format("15:04:05")
			fmt.Fprintf(b, "  %s  %-24s %s -> %s  (value %s)%s",
				paint(color, cDim, at), ev.Rule,
				paint(color, stateColor(ev.From), string(ev.From)),
				paint(color, stateColor(ev.To), string(ev.To)),
				fmtVal(ev.Value, ""), eol)
		}
	}
	if repaint {
		b.WriteString("\x1b[J") // clear anything below the frame
	}
}
