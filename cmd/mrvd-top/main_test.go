package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mrvd/internal/obs"
)

func fp(v float64) *float64 { return &v }

func testDump() obs.TimeSeries {
	val := 0.42
	return obs.TimeSeries{
		IntervalSeconds: 1, Capacity: 8, Windows: 4,
		Times: []float64{100, 101, 102, 103},
		Series: []obs.SeriesDump{
			{Family: "mrvd_orders_admitted_total", Kind: "counter", Stat: obs.StatRate,
				Points: []*float64{nil, fp(2), fp(4), fp(3)}},
			{Family: "mrvd_orders_terminal_total", Labels: map[string]string{"outcome": "served"},
				Kind: "counter", Stat: obs.StatRate, Points: []*float64{nil, fp(1), fp(3), fp(2)}},
			{Family: "mrvd_submit_terminal_seconds", Kind: "histogram", Stat: obs.StatP95,
				Points: []*float64{nil, fp(0.8), fp(1.2), fp(0.9)}},
			{Family: "mrvd_queue_depth", Labels: map[string]string{"shard": "0"},
				Kind: "gauge", Stat: obs.StatValue, Points: []*float64{fp(5), fp(9), fp(7), fp(6)}},
		},
		Health: obs.Health{
			Status: obs.StateDegraded,
			Rules: []obs.RuleStatus{
				{Name: "latency-p95-ceiling", State: obs.StateDegraded, Severity: obs.StateDegraded,
					Value: &val, Threshold: 30, Op: ">", Metric: "p95(mrvd_submit_terminal_seconds)"},
			},
			Events: []obs.HealthEvent{
				{Rule: "latency-p95-ceiling", From: obs.StateOK, To: obs.StateDegraded, At: 102, Value: 31},
			},
		},
	}
}

func TestSparkline(t *testing.T) {
	got := sparkline([]*float64{nil, fp(0), fp(50), fp(100)}, 10)
	if want := " ▁▄█"; got != want {
		t.Errorf("sparkline = %q, want %q", got, want)
	}
	// Flat series renders the lowest rune, not a divide-by-zero.
	if got := sparkline([]*float64{fp(7), fp(7)}, 10); got != "▁▁" {
		t.Errorf("flat sparkline = %q", got)
	}
	// Truncated to width, keeping the newest points.
	if got := sparkline([]*float64{fp(0), fp(1), fp(2)}, 2); len([]rune(got)) != 2 {
		t.Errorf("width cap: %q", got)
	}
}

func TestRenderFrame(t *testing.T) {
	var b strings.Builder
	renderFrame(&b, testDump(), "http://x", 20, false, false)
	out := b.String()
	for _, want := range []string{
		"DEGRADED", "admitted/s", "served/s", "latency p95",
		"queue depth s0", "latency-p95-ceiling", "ok -> degraded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[32m") {
		t.Error("colors rendered with color off")
	}
	// Colored + repaint mode emits ANSI control sequences.
	b.Reset()
	renderFrame(&b, testDump(), "http://x", 20, true, true)
	if !strings.Contains(b.String(), "\x1b[") {
		t.Error("no ANSI sequences in repaint mode")
	}
}

func TestDashFrameOverHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/timeseries" {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(testDump())
	}))
	defer srv.Close()

	d := &dash{url: srv.URL, width: 24, color: false}
	var b strings.Builder
	if err := d.frame(&b, false); err != nil {
		t.Fatalf("frame: %v", err)
	}
	if !strings.Contains(b.String(), "admitted/s") {
		t.Errorf("frame output:\n%s", b.String())
	}

	// A gateway without -collect 404s; the dashboard explains itself.
	plain := httptest.NewServer(http.NotFoundHandler())
	defer plain.Close()
	d2 := &dash{url: plain.URL, width: 24}
	if err := d2.frame(&b, false); err == nil || !strings.Contains(err.Error(), "-collect") {
		t.Errorf("want a hint about -collect, got %v", err)
	}
}
