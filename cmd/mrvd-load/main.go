// Command mrvd-load drives an mrvd-serve gateway with a YCSB-style
// workload: concurrent clients submit spatially realistic orders over
// HTTP — closed-loop or Poisson open-loop — long-poll each order's
// outcome, and report throughput plus p50/p95/p99 submit-to-assignment
// wall latencies.
//
// Usage:
//
//	mrvd-load [-url http://127.0.0.1:8080] [-n 200] [-c 8] [-rate 0]
//	          [-patience 600] [-orders-per-day 2000] [-seed 1]
//	          [-timeout 120s] [-json report.json]
//	          [-cancel 0] [-cancel-after 50ms]
//
// -cancel selects that fraction of orders for a rider-cancellation mix:
// each is submitted without waiting, DELETEd after -cancel-after, and
// polled to its terminal state; assignments that beat the DELETE still
// count as assigned.
//
// -rate 0 is closed-loop (each client submits as soon as its previous
// order resolves); a positive -rate is the aggregate Poisson arrival
// intensity in submissions/sec. Patience is engine seconds: against a
// real-time gateway (mrvd-serve -pace 1) it is wall seconds too.
// Against a sharded gateway (mrvd-serve -shards N) the report ends
// with the server's per-shard breakdown from GET /v1/stats.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"mrvd"
	"mrvd/internal/load"
	"mrvd/internal/obs"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "gateway base URL")
		n        = flag.Int("n", 200, "total orders to submit")
		c        = flag.Int("c", 8, "concurrent clients")
		rate     = flag.Float64("rate", 0, "aggregate Poisson arrival rate per second (0 = closed loop)")
		patience = flag.Float64("patience", 600, "pickup patience per order (engine seconds)")
		perDay   = flag.Int("orders-per-day", 2000, "synthetic city scale for the spatial distribution")
		seed     = flag.Int64("seed", 1, "workload seed")
		timeout  = flag.Duration("timeout", 120*time.Second, "per-order wait bound")
		jsonPath = flag.String("json", "", "also write the full report as JSON to this file")

		cancelFrac  = flag.Float64("cancel", 0, "fraction of orders to cancel via DELETE /v1/orders/{id}")
		cancelAfter = flag.Duration("cancel-after", 50*time.Millisecond, "delay before a cancel-marked order's DELETE")
	)
	flag.Parse()

	// Fail fast on nonsensical flags, joined, matching the
	// mrvd.NewService validation convention.
	var flagErrs []error
	if *n <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-n must be positive, got %d", *n))
	}
	if *c <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-c must be positive, got %d", *c))
	}
	if *rate < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-rate must be >= 0, got %v", *rate))
	}
	if *patience <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-patience must be positive, got %v", *patience))
	}
	if *perDay <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-orders-per-day must be positive, got %d", *perDay))
	}
	if *cancelFrac < 0 || *cancelFrac > 1 {
		flagErrs = append(flagErrs, fmt.Errorf("-cancel must be in [0,1], got %v", *cancelFrac))
	}
	if err := errors.Join(flagErrs...); err != nil {
		fmt.Fprintf(os.Stderr, "mrvd-load: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := load.Run(ctx, load.Config{
		BaseURL:        *url,
		Orders:         *n,
		Concurrency:    *c,
		Rate:           *rate,
		Patience:       *patience,
		City:           mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: *perDay, Seed: 17}),
		Seed:           *seed,
		Timeout:        *timeout,
		CancelFraction: *cancelFrac,
		CancelAfter:    *cancelAfter,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrvd-load: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("orders:      %d in %.2fs (%.1f/s)\n", rep.Orders, rep.ElapsedSeconds, rep.Throughput)
	fmt.Printf("assigned:    %d\n", rep.Assigned)
	if rep.AssignedShared > 0 {
		fmt.Printf("  shared:    %d (mean detour %.1fs)\n", rep.AssignedShared, rep.MeanDetourSeconds)
		fmt.Printf("  solo:      %d\n", rep.AssignedSolo)
	}
	fmt.Printf("expired:     %d\n", rep.Expired)
	fmt.Printf("canceled:    %d (rider-initiated DELETE mix)\n", rep.Canceled)
	fmt.Printf("pending:     %d (wait timed out)\n", rep.Pending)
	fmt.Printf("rejected:    %d (429 backpressure)\n", rep.Rejected)
	fmt.Printf("errors:      %d\n", rep.Errors)
	l := rep.Latency
	fmt.Printf("latency ms:  p50=%.2f  p95=%.2f  p99=%.2f  mean=%.2f  max=%.2f  (n=%d)\n",
		l.P50MS, l.P95MS, l.P99MS, l.MeanMS, l.MaxMS, l.Count)
	printShardStats(*url)
	printPhaseBreakdown(*url)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-load: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-load: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("report:      %s\n", *jsonPath)
	}
}

// printShardStats shows the gateway's per-shard breakdown when the
// target session runs sharded (mrvd-serve -shards N); silent otherwise.
func printShardStats(baseURL string) {
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var stats struct {
		Shards []mrvd.ShardStats `json:"shards"`
	}
	if json.NewDecoder(resp.Body).Decode(&stats) != nil || len(stats.Shards) == 0 {
		return
	}
	fmt.Printf("shards:      %d\n", len(stats.Shards))
	for _, s := range stats.Shards {
		fmt.Printf("  shard %d: regions=%d drivers=%d admitted=%d borrowed=%d served=%d reneged=%d canceled=%d declined=%d batch(avg=%.2fms max=%.2fms)\n",
			s.Shard, s.Regions, s.Drivers, s.Admitted, s.BorrowedIn, s.Served, s.Reneged, s.Canceled, s.Declined, s.AvgBatchMS, s.MaxBatchMS)
	}
}

// printPhaseBreakdown scrapes the gateway's /metrics endpoint and shows
// where dispatch wall time went per batch phase, plus the gateway's own
// submit→terminal latency histogram; silent when the gateway runs
// without -metrics.
func printPhaseBreakdown(baseURL string) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		return
	}
	if phases := fams["mrvd_dispatch_phase_seconds"]; phases != nil {
		// The text form carries cumulative buckets plus _sum/_count per
		// phase; the per-phase totals are the <phase>_sum samples.
		sums := map[string]float64{}
		counts := map[string]float64{}
		for _, s := range phases.Samples {
			switch s.Name {
			case "mrvd_dispatch_phase_seconds_sum":
				sums[s.Labels["phase"]] = s.Value
			case "mrvd_dispatch_phase_seconds_count":
				counts[s.Labels["phase"]] = s.Value
			}
		}
		if len(sums) > 0 {
			fmt.Printf("phases:      (engine dispatch wall time)\n")
			for _, phase := range []string{"admit", "build", "dispatch", "apply"} {
				if n := counts[phase]; n > 0 {
					fmt.Printf("  %-9s rounds=%-8.0f total=%.3fs mean=%.6fs\n",
						phase, n, sums[phase], sums[phase]/n)
				}
			}
		}
	}
	if lat := fams["mrvd_submit_terminal_seconds"]; lat != nil {
		var sum, count float64
		for _, s := range lat.Samples {
			switch s.Name {
			case "mrvd_submit_terminal_seconds_sum":
				sum = s.Value
			case "mrvd_submit_terminal_seconds_count":
				count = s.Value
			}
		}
		if count > 0 {
			fmt.Printf("gateway:     submit→terminal mean=%.3fs (n=%.0f, server-side)\n", sum/count, count)
		}
	}
}
