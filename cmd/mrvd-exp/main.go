// Command mrvd-exp runs preset experiment matrices — (algorithm ×
// scenario × fleet × seed) grids with trial statistics — and emits a
// markdown summary on stdout plus CSV and machine-readable JSON
// reports (EXP_<preset>.{csv,json}) next to the BENCH baselines.
// Reports are deterministic: rerunning with the same flags reproduces
// them byte-identically at any -workers value.
//
// Usage:
//
//	mrvd-exp -preset disruptions [-scale 0.05] [-seeds 5] [-workers 0] [-out .]
//	mrvd-exp -list
//	mrvd-exp -verify EXP_disruptions.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"mrvd/internal/experiments/matrix"
)

func main() {
	var (
		preset  = flag.String("preset", "", "preset matrix to run (see -list)")
		scale   = flag.Float64("scale", 0.05, "fraction of the paper's order volume and fleet sizes")
		seeds   = flag.Int("seeds", 5, "problem instances per cell (paper uses 10)")
		workers = flag.Int("workers", 0, "parallel cells (0 = GOMAXPROCS, 1 = sequential)")
		out     = flag.String("out", ".", "directory for EXP_<preset>.{csv,json}")
		list    = flag.Bool("list", false, "list preset names and exit")
		verify  = flag.String("verify", "", "parse an EXP_*.json report, check it is well-formed and non-empty, and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range matrix.PresetNames() {
			fmt.Printf("%-14s %s\n", name, matrix.PresetTitle(name))
		}
		return
	}
	if *verify != "" {
		f, err := os.Open(*verify)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := matrix.ReadReport(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mrvd-exp: %s OK: %d cells, %d comparisons, %d seeds\n",
			*verify, len(r.Cells), len(r.Comparisons), len(r.Seeds))
		return
	}
	if *preset == "" {
		fmt.Fprintln(os.Stderr, "mrvd-exp: -preset required (or -list / -verify); e.g. -preset disruptions")
		os.Exit(2)
	}

	cfg, err := matrix.Preset(*preset, matrix.Params{Scale: *scale, Seeds: *seeds, Workers: *workers})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := matrix.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Markdown(os.Stdout); err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, render func(*os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := render(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrvd-exp: wrote %s\n", path)
	}
	write("EXP_"+res.Name+".csv", func(f *os.File) error { return res.CSV(f) })
	write("EXP_"+res.Name+".json", func(f *os.File) error { return res.JSON(f) })
	fmt.Fprintf(os.Stderr, "mrvd-exp: %d cells × %d seeds in %s\n",
		len(res.Cells), len(res.Seeds), time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrvd-exp: %v\n", err)
	os.Exit(1)
}
