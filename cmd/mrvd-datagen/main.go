// Command mrvd-datagen emits a synthetic NYC-like order trace as CSV in
// the library's trace format (the stand-in for a TLC trip extract).
//
// Usage:
//
//	mrvd-datagen -orders 70000 -tau 120 -seed 1 -o day.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

func main() {
	var (
		orders = flag.Int("orders", 70000, "expected orders in the generated day")
		tau    = flag.Float64("tau", 120, "base pickup waiting time (s)")
		seed   = flag.Int64("seed", 1, "generation seed")
		day    = flag.Int("day", 0, "day index (sets day-of-week and weather)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	city := workload.NewCity(workload.CityConfig{
		OrdersPerDay: *orders, BaseWaitSeconds: *tau, Seed: 31,
	})
	trace1 := city.GenerateDay(*day, rand.New(rand.NewSource(*seed)))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, trace1); err != nil {
		fatal(err)
	}
	meta := city.DayMeta(*day)
	fmt.Fprintf(os.Stderr, "mrvd-datagen: %d orders (day %d, dow %d, weather %d, factor %.2f)\n",
		len(trace1), *day, meta.DOW, meta.Weather, meta.Factor)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrvd-datagen: %v\n", err)
	os.Exit(1)
}
