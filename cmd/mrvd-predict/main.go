// Command mrvd-predict trains the paper's demand-prediction models on a
// synthetic history and reports their held-out accuracy (Table 6's
// protocol: RMSE%, real RMSE, MAE).
//
// Usage:
//
//	mrvd-predict [-orders 70000] [-days 49] [-eval 7] [-slot 1800]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mrvd/internal/predict"
	"mrvd/internal/workload"
)

func main() {
	var (
		orders = flag.Int("orders", 70000, "orders per day of the synthetic history")
		days   = flag.Int("days", predict.MinLookbackDays+28, "total history days")
		eval   = flag.Int("eval", 7, "held-out evaluation days at the end")
		slot   = flag.Float64("slot", 1800, "slot width in seconds (paper: 30 minutes)")
		seed   = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	if *days-*eval < predict.MinLookbackDays+1 {
		fmt.Fprintf(os.Stderr, "mrvd-predict: need at least %d training days\n", predict.MinLookbackDays+1)
		os.Exit(2)
	}
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: *orders, Seed: 31})
	fmt.Fprintf(os.Stderr, "generating %d days of history...\n", *days)
	h := predict.GenerateHistory(city, *days, *slot, *seed)

	fmt.Printf("%-16s %10s %10s %10s %10s\n", "model", "RMSE(%)", "RealRMSE", "MAE", "train")
	models := append(predict.All(*seed), predict.NewSTNetGCFromGrid(city.Grid()))
	for _, m := range models {
		start := time.Now()
		if err := m.Train(h, *days-*eval); err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-predict: train %s: %v\n", m.Name(), err)
			os.Exit(1)
		}
		trainTime := time.Since(start)
		res, err := predict.Evaluate(m, h, *days-*eval, *days)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-predict: evaluate %s: %v\n", m.Name(), err)
			os.Exit(1)
		}
		fmt.Printf("%-16s %10.2f %10.2f %10.2f %10s\n",
			res.Model, res.RelativeRMSE, res.RealRMSE, res.MAE, trainTime.Round(time.Millisecond))
	}
}
