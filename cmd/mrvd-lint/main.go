// Command mrvd-lint runs the repo's determinism & hot-path
// static-analysis suite (internal/lint) over module packages.
//
//	mrvd-lint [-json] [-list] [-enable a,b] [-disable a,b] [packages]
//
// packages defaults to ./... resolved against the enclosing module
// root. Exit status: 0 clean, 1 findings, 2 the module could not be
// loaded or type-checked (or the flags were invalid).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mrvd/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	enable := flag.String("enable", "", "comma-list of analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-list of analyzers to skip")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mrvd-lint [-json] [-list] [-enable a,b] [-disable a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-11s %s\n", lint.WaiverCheck,
			"(always on) audits //mrvdlint:ignore directives: bare, unknown-analyzer, and stale waivers are findings")
		return
	}

	analyzers, err := lint.Select(splitList(*enable), splitList(*disable))
	if err != nil {
		fatal(err)
	}
	if len(analyzers) == 0 {
		fatal(fmt.Errorf("mrvd-lint: -enable/-disable selected no analyzers"))
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(root, patterns, analyzers)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Printf("mrvd-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so mrvd-lint works from any subdirectory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mrvd-lint: no go.mod above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
