package main

import (
	"os"
	"path/filepath"
	"testing"
)

const baselineJSON = `{
  "benchmarks": [
    {"name": "BenchmarkA/Off", "ns_per_op": 1000000, "allocs_per_op": 500},
    {"name": "BenchmarkA/On", "ns_per_op": 1100000, "allocs_per_op": 520}
  ]
}`

const benchText = `goos: linux
goarch: amd64
BenchmarkA/Off-4   60   1020000 ns/op   13968095 B/op   510 allocs/op
BenchmarkA/On-4    60   2900000 ns/op   14157670 B/op   530 allocs/op
PASS
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseJSONBaseline(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "BENCH_x.json", baselineJSON)
	got, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2", len(got))
	}
	r := got["BenchmarkA/Off"]
	if r.NsPerOp != 1e6 || r.AllocsPerOp != 500 || !r.hasAllocs {
		t.Errorf("result = %+v", r)
	}
}

func TestParseBenchTextStripsGOMAXPROCS(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "bench.txt", benchText)
	got, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkA/Off"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if r.NsPerOp != 1020000 || r.AllocsPerOp != 510 {
		t.Errorf("result = %+v", r)
	}
}

func TestDirectoryPairMode(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_x.json", baselineJSON)
	got, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("dir mode parsed %d results, want 2", len(got))
	}
	if _, err := load(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}

func TestDiffVerdicts(t *testing.T) {
	old := map[string]result{
		"A": {NsPerOp: 1e6, AllocsPerOp: 100, hasAllocs: true},
		"B": {NsPerOp: 1e6},
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	// Within threshold: ok.
	ok := map[string]result{
		"A": {NsPerOp: 1.1e6, AllocsPerOp: 105, hasAllocs: true},
		"B": {NsPerOp: 0.9e6},
	}
	if code := diff(devnull, old, ok, 1.25, 1.3); code != 0 {
		t.Errorf("within-threshold exit = %d, want 0", code)
	}
	// ns regression past threshold: fail.
	slow := map[string]result{
		"A": {NsPerOp: 2e6, AllocsPerOp: 100, hasAllocs: true},
		"B": {NsPerOp: 1e6},
	}
	if code := diff(devnull, old, slow, 1.25, 1.3); code != 1 {
		t.Errorf("regression exit = %d, want 1", code)
	}
	// alloc regression alone: fail.
	leaky := map[string]result{
		"A": {NsPerOp: 1e6, AllocsPerOp: 200, hasAllocs: true},
		"B": {NsPerOp: 1e6},
	}
	if code := diff(devnull, old, leaky, 1.25, 1.3); code != 1 {
		t.Errorf("alloc regression exit = %d, want 1", code)
	}
	// No shared benchmarks: fail loudly rather than vacuously pass.
	if code := diff(devnull, old, map[string]result{"C": {NsPerOp: 1}}, 1.25, 1.3); code != 1 {
		t.Error("disjoint sets should fail")
	}
}
