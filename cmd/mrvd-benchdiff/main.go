// Command mrvd-benchdiff compares benchmark results against committed
// baselines and fails past a regression threshold — the CI gate that
// turns the repo's BENCH_*.json files from documentation into an
// enforced perf trajectory.
//
// Usage:
//
//	mrvd-benchdiff [-threshold 1.25] [-allocs 1.30] old new
//
// old and new are each either a BENCH_*.json file, a directory of them
// (matched pairwise by file name), or a `go test -bench` text output
// file (detected by content). Benchmarks present on only one side are
// reported and skipped. Exit status: 0 when every shared benchmark's
// new/old ns_per_op ratio is under -threshold (and its allocs ratio
// under -allocs), 1 when any regresses, 2 on usage or parse errors.
//
// Wall timings in CI containers are noisy; the default thresholds are
// deliberately generous and catch step-change regressions, not drift.
// Allocation counts are near-deterministic, so their bound is tighter
// in spirit: a crossed allocs bound means a real code change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's comparable numbers.
type result struct {
	NsPerOp     float64
	AllocsPerOp float64
	hasAllocs   bool
}

// benchFile is the committed BENCH_*.json shape (extra fields ignored).
type benchFile struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func main() {
	var (
		threshold = flag.Float64("threshold", 1.25, "fail when new/old ns_per_op exceeds this ratio")
		allocs    = flag.Float64("allocs", 1.30, "fail when new/old allocs_per_op exceeds this ratio (0 disables)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: mrvd-benchdiff [-threshold R] [-allocs R] old new")
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "mrvd-benchdiff: -threshold must be positive")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrvd-benchdiff: %v\n", err)
		os.Exit(2)
	}
	new_, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrvd-benchdiff: %v\n", err)
		os.Exit(2)
	}
	os.Exit(diff(os.Stdout, old, new_, *threshold, *allocs))
}

// diff prints the comparison table and returns the exit code.
func diff(w *os.File, old, new_ map[string]result, threshold, allocBound float64) int {
	names := make([]string, 0, len(old))
	for n := range old {
		names = append(names, n)
	}
	sort.Strings(names)

	regressions := 0
	shared := 0
	fmt.Fprintf(w, "%-52s %14s %14s %7s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, n := range names {
		o := old[n]
		nw, ok := new_[n]
		if !ok {
			fmt.Fprintf(w, "%-52s %14.0f %14s %7s\n", n, o.NsPerOp, "-", "gone")
			continue
		}
		shared++
		ratio := nw.NsPerOp / o.NsPerOp
		verdict := ""
		if ratio > threshold {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %6.2fx%s\n", n, o.NsPerOp, nw.NsPerOp, ratio, verdict)
		if allocBound > 0 && o.hasAllocs && nw.hasAllocs && o.AllocsPerOp > 0 {
			if ar := nw.AllocsPerOp / o.AllocsPerOp; ar > allocBound {
				fmt.Fprintf(w, "%-52s %14.0f %14.0f %6.2fx  ALLOC REGRESSION\n",
					n+" (allocs)", o.AllocsPerOp, nw.AllocsPerOp, ar)
				regressions++
			}
		}
	}
	for n := range new_ {
		if _, ok := old[n]; !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %7s\n", n, "-", new_[n].NsPerOp, "new")
		}
	}
	if shared == 0 {
		fmt.Fprintln(w, "no shared benchmarks to compare")
		return 1
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d regression(s) past %.2fx\n", regressions, threshold)
		return 1
	}
	fmt.Fprintf(w, "\nok: %d benchmark(s) within %.2fx\n", shared, threshold)
	return 0
}

// load reads one side of the comparison: a file (JSON baseline or
// bench text, sniffed) or a directory of BENCH_*.json files.
func load(path string) (map[string]result, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]result)
	if st.IsDir() {
		files, err := filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("%s: no BENCH_*.json files", path)
		}
		for _, f := range files {
			if err := loadFile(f, out); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := loadFile(path, out); err != nil {
		return nil, err
	}
	return out, nil
}

func loadFile(path string, out map[string]result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		return parseJSON(path, data, out)
	}
	return parseBenchText(path, trimmed, out)
}

func parseJSON(path string, data []byte, out map[string]result) error {
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks array", path)
	}
	for _, b := range bf.Benchmarks {
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s has no ns_per_op", path, b.Name)
		}
		out[b.Name] = result{NsPerOp: b.NsPerOp, AllocsPerOp: b.AllocsPerOp, hasAllocs: b.AllocsPerOp > 0}
	}
	return nil
}

// parseBenchText reads `go test -bench` output lines:
//
//	BenchmarkObsDispatch/Off-4   60   10173183 ns/op   109406 orders/sec   13968095 B/op   29715 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so text results match the
// committed JSON names.
func parseBenchText(path, text string, out map[string]result) error {
	found := false
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := result{}
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
				r.hasAllocs = true
			}
		}
		if r.NsPerOp > 0 {
			out[name] = r
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%s: neither a BENCH json file nor go test -bench output", path)
	}
	return nil
}
