// Command mrvd-sweep runs an (algorithm × seed × fleet-size) grid on a
// parallel worker pool and prints one row per cell — the Service.Sweep
// API as a CLI. Results are deterministic: -workers 1 produces the same
// table as the default parallel execution. Ctrl-C cancels in-flight
// runs between batches.
//
// Usage:
//
//	mrvd-sweep [-orders 28000] [-algs LS,NEAR,UPPER] [-fleets 100,200]
//	           [-seeds 3] [-workers 0] [-pred oracle|none]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"mrvd"
)

func main() {
	var (
		orders  = flag.Int("orders", 28000, "synthetic orders per day")
		tau     = flag.Float64("tau", 120, "base pickup waiting time (s)")
		delta   = flag.Float64("delta", 3, "batch interval (s)")
		algs    = flag.String("algs", "LS,NEAR,UPPER", "comma-separated algorithms")
		fleets  = flag.String("fleets", "100,200", "comma-separated fleet sizes")
		seeds   = flag.Int("seeds", 3, "instance seeds 1..N per cell")
		workers = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS, 1 = sequential)")
		pred    = flag.String("pred", "oracle", "demand forecasts: oracle or none")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mode := mrvd.PredictOracle
	if strings.EqualFold(*pred, "none") {
		mode = mrvd.PredictNone
	}
	svc, err := mrvd.NewService(
		mrvd.WithCity(mrvd.NewCity(mrvd.CityConfig{
			OrdersPerDay: *orders, BaseWaitSeconds: *tau, Seed: 31,
		})),
		mrvd.WithBatchInterval(*delta),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrvd-sweep: %v\n", err)
		os.Exit(1)
	}

	spec := mrvd.SweepSpec{
		Algorithms: splitList(*algs),
		Fleets:     parseInts(*fleets),
		Workers:    *workers,
		Mode:       mode,
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		spec.Seeds = append(spec.Seeds, s)
	}

	start := time.Now()
	results, err := svc.Sweep(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrvd-sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-8s %6s %7s %14s %8s %8s %10s\n",
		"alg", "seed", "fleet", "revenue", "served", "reneged", "svc rate")
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-8s %6d %7d  error: %v\n", r.Algorithm, r.Seed, r.Fleet, r.Err)
			continue
		}
		s := r.Metrics.Summary()
		fmt.Printf("%-8s %6d %7d %14.0f %8d %8d %9.1f%%\n",
			r.Algorithm, r.Seed, r.Fleet, s.Revenue, s.Served, s.Reneged,
			100*r.Metrics.ServiceRate())
	}
	fmt.Fprintf(os.Stderr, "mrvd-sweep: %d cells in %s\n",
		len(results), time.Since(start).Round(time.Millisecond))
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-sweep: bad number %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
