// Command mrvd-sim runs one simulated day of dispatching and prints the
// headline metrics for each requested algorithm. Ctrl-C cancels the run
// cleanly between batches.
//
// Usage:
//
//	mrvd-sim [-orders 70000] [-drivers 250] [-tau 120] [-delta 3]
//	         [-tc 1200] [-algs IRG,LS,NEAR] [-pred oracle|stnet|none]
//	         [-trace file.csv] [-seed 1]
//	         [-cancel-rate 0] [-decline-prob 0] [-decline-cooldown 0]
//	         [-travel-noise 0] [-scenario-seed 0]
//	         [-pool-capacity 0] [-pool-detour 0]
//	         [-obs] [-trace-out spans.jsonl]
//
// -obs instruments each run and appends a dispatch phase breakdown
// (admit/build/dispatch/apply wall time per batch round) under the
// algorithm's row; -trace-out streams one JSON span per terminal order.
// Both off by default — an uninstrumented run executes the exact
// baseline code path.
//
// The scenario flags run the day under disruptions: stochastic rider
// cancellations, driver declines with cooldown, and noisy realized
// travel times (all off by default; see mrvd.WithScenario).
//
// -pool-capacity >= 2 enables shared rides (see mrvd.WithPooling):
// busy drivers carry route plans and each batch prices detour-bounded
// insertions; pair it with the POOL algorithm (e.g. -algs NEAR,POOL)
// to commit them. -pool-detour bounds each rider's detour in seconds
// (0 keeps the 300s default).
//
// With -trace, orders are read from a CSV in the library's trace format
// (e.g., a converted TLC extract) instead of the synthetic city.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"mrvd"
	"mrvd/internal/predict"
)

func main() {
	var (
		orders    = flag.Int("orders", 70000, "synthetic orders per day")
		drivers   = flag.Int("drivers", 250, "fleet size")
		tau       = flag.Float64("tau", 120, "base pickup waiting time (s)")
		delta     = flag.Float64("delta", 3, "batch interval (s)")
		tc        = flag.Float64("tc", 1200, "scheduling window t_c (s)")
		algsFlag  = flag.String("algs", "IRG,LS,LTG,NEAR,RAND,POLAR,UPPER", "comma-separated algorithms")
		pred      = flag.String("pred", "oracle", "demand forecasts: oracle, stnet, ha, lr, gbrt, none")
		traceFile = flag.String("trace", "", "replay this trace CSV instead of generating orders")
		seed      = flag.Int64("seed", 1, "instance seed")

		cancelRate   = flag.Float64("cancel-rate", 0, "scenario: probability a waiting rider abandons before its deadline")
		declineProb  = flag.Float64("decline-prob", 0, "scenario: probability a driver declines a committed assignment")
		declineCD    = flag.Float64("decline-cooldown", 0, "scenario: declining driver's cooldown in engine seconds (0 = default 60)")
		travelNoise  = flag.Float64("travel-noise", 0, "scenario: relative stddev of realized travel times around the estimate")
		scenarioSeed = flag.Int64("scenario-seed", 0, "scenario: RNG seed for cancels/declines/noise")

		poolCap    = flag.Int("pool-capacity", 0, "pooling: onboard rider capacity per driver (0 or 1 = off, >= 2 = shared rides)")
		poolDetour = flag.Float64("pool-detour", 0, "pooling: max per-rider detour in seconds (0 = default 300)")

		obsOn    = flag.Bool("obs", false, "instrument each run and print a dispatch phase breakdown per algorithm")
		traceOut = flag.String("trace-out", "", "append one JSON span per terminal order to this file (\"-\" = stdout; multiple -algs concatenate)")
	)
	flag.Parse()

	// Fail fast on nonsensical flags, joined, matching the
	// mrvd.NewService validation convention.
	var flagErrs []error
	if *orders <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-orders must be positive, got %d", *orders))
	}
	if *drivers <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-drivers must be positive, got %d", *drivers))
	}
	if *tau <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-tau must be positive, got %v", *tau))
	}
	if *poolCap < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-pool-capacity must be >= 0, got %d", *poolCap))
	}
	if *poolDetour < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-pool-detour must be >= 0, got %v", *poolDetour))
	}
	if err := errors.Join(flagErrs...); err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	city := mrvd.NewCity(mrvd.CityConfig{
		OrdersPerDay: *orders, BaseWaitSeconds: *tau, Seed: 31,
	})

	mode := mrvd.PredictOracle
	var model mrvd.Predictor
	switch strings.ToLower(*pred) {
	case "oracle":
	case "none":
		mode = mrvd.PredictNone
	case "stnet":
		mode, model = mrvd.PredictModel, &predict.STNet{}
	case "ha":
		mode, model = mrvd.PredictModel, predict.HA{}
	case "lr":
		mode, model = mrvd.PredictModel, &predict.LR{}
	case "gbrt":
		mode, model = mrvd.PredictModel, &predict.GBRT{Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "mrvd-sim: unknown -pred %q\n", *pred)
		os.Exit(2)
	}

	// mode/model are passed to each runner.Run below, not WithPrediction:
	// this command drives the lower-level Runner API to share history
	// across algorithms.
	svcOpts := []mrvd.Option{
		mrvd.WithCity(city),
		mrvd.WithFleet(*drivers),
		mrvd.WithBatchInterval(*delta),
		mrvd.WithSchedulingWindow(*tc),
		mrvd.WithSeed(*seed),
	}
	scenario := mrvd.ScenarioConfig{
		CancelRate:      *cancelRate,
		DeclineProb:     *declineProb,
		DeclineCooldown: *declineCD,
		TravelNoise:     *travelNoise,
		Seed:            *scenarioSeed,
	}
	if scenario.Enabled() {
		svcOpts = append(svcOpts, mrvd.WithScenario(scenario))
	}
	if *poolCap >= 2 {
		svcOpts = append(svcOpts, mrvd.WithPooling(*poolCap, *poolDetour))
	}
	if *traceFile != "" {
		// Replay the external trace: orders come from the file; drivers
		// start at sampled pickups.
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		external, err := mrvd.ReadOrdersCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		svcOpts = append(svcOpts, mrvd.WithOrders(external, nil))
	}
	var tracer *mrvd.SpanTracer
	if *traceOut != "" {
		w := os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			w = f
		}
		tracer = mrvd.NewSpanTracer(w)
	}

	// History and trained predictors are built by the first algorithm's
	// runner and shared with the rest. The service is rebuilt per
	// algorithm so each run gets its own metrics registry (the phase
	// table below is per-algorithm); without -obs or -trace-out the loop
	// reuses one uninstrumented service.
	var svc *mrvd.Service
	var base *mrvd.Runner
	fmt.Printf("%-6s %14s %8s %8s %9s %9s %10s %12s %10s %10s %10s\n",
		"alg", "revenue", "served", "reneged", "canceled", "declines", "meanIdle", "pickupSec", "avgBatch", "p95Batch", "p99Batch")
	for _, alg := range strings.Split(*algsFlag, ",") {
		alg = strings.TrimSpace(alg)
		var reg *mrvd.MetricsRegistry
		if *obsOn {
			reg = mrvd.NewMetricsRegistry()
		}
		if svc == nil || reg != nil {
			opts := svcOpts
			if reg != nil || tracer != nil {
				opts = append(opts[:len(opts):len(opts)], mrvd.WithObservability(reg, tracer))
			}
			var err error
			if svc, err = mrvd.NewService(opts...); err != nil {
				fatal(err)
			}
		}
		runner := svc.Runner()
		if base != nil {
			runner.ShareFrom(base)
		}
		d, err := mrvd.NewDispatcher(alg, *seed)
		if err != nil {
			fatal(err)
		}
		m, err := runner.Run(ctx, d, mode, model)
		if err != nil {
			// The run is dying anyway — flush the tracer first so a
			// retained span write error is reported alongside, not lost.
			if terr := closeTracer(tracer, *traceOut); terr != nil {
				fmt.Fprintf(os.Stderr, "mrvd-sim: %v\n", terr)
			}
			fatal(err)
		}
		base = runner
		s := m.Summary()
		fmt.Printf("%-6s %14.0f %8d %8d %9d %9d %9.1fs %12.0f %9.4fs %9.4fs %9.4fs\n",
			alg, s.Revenue, s.Served, s.Reneged, s.Canceled, s.Declines,
			s.MeanIdleSeconds(), s.PickupSeconds, m.AvgBatchSeconds(),
			m.BatchSecondsQuantile(0.95), m.BatchSecondsQuantile(0.99))
		if s.TravelSamples > 0 {
			fmt.Printf("       travel noise: %d trips, mean |est-real| %.1fs\n",
				s.TravelSamples, s.MeanAbsTravelErrorSeconds())
		}
		if s.SharedServed > 0 {
			fmt.Printf("       pooled: %d shared rides, mean detour %.1fs\n",
				s.SharedServed, s.DetourSeconds/float64(s.SharedServed))
		}
		if reg != nil {
			printPhaseBreakdown(reg)
		}
	}
	if err := closeTracer(tracer, *traceOut); err != nil {
		fatal(err)
	}
	if tracer != nil {
		fmt.Printf("wrote %d spans to %s\n", tracer.Count(), *traceOut)
	}
}

// closeTracer flushes the span tracer and surfaces its retained first
// write error — a full disk must fail the run with a non-zero exit,
// not drop spans silently.
func closeTracer(tracer *mrvd.SpanTracer, dest string) error {
	if tracer == nil {
		return nil
	}
	if err := tracer.Close(); err != nil {
		return fmt.Errorf("trace: %d spans written to %s, first write error: %w", tracer.Count(), dest, err)
	}
	return nil
}

// printPhaseBreakdown renders the run's mrvd_dispatch_phase_seconds
// histogram family as an indented per-phase table: where each batch
// round's wall time went (admit, build, dispatch, apply).
func printPhaseBreakdown(reg *mrvd.MetricsRegistry) {
	for _, fam := range reg.Gather() {
		if fam.Name != "mrvd_dispatch_phase_seconds" {
			continue
		}
		fmt.Printf("       %-10s %10s %12s %12s %12s\n", "phase", "rounds", "total", "mean", "p95")
		for _, sample := range fam.Samples {
			if sample.Count == 0 {
				continue
			}
			fmt.Printf("       %-10s %10d %11.3fs %11.6fs %11.6fs\n",
				sample.Labels[0], sample.Count, sample.Sum,
				sample.Sum/float64(sample.Count), sample.Quantile(fam.Bounds, 0.95))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrvd-sim: %v\n", err)
	os.Exit(1)
}
