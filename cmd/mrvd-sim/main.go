// Command mrvd-sim runs one simulated day of dispatching and prints the
// headline metrics for each requested algorithm.
//
// Usage:
//
//	mrvd-sim [-orders 70000] [-drivers 250] [-tau 120] [-delta 3]
//	         [-tc 1200] [-algs IRG,LS,NEAR] [-pred oracle|stnet|none]
//	         [-trace file.csv] [-seed 1]
//
// With -trace, orders are read from a CSV in the library's trace format
// (e.g., a converted TLC extract) instead of the synthetic city.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"mrvd/internal/core"
	"mrvd/internal/predict"
	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

func main() {
	var (
		orders    = flag.Int("orders", 70000, "synthetic orders per day")
		drivers   = flag.Int("drivers", 250, "fleet size")
		tau       = flag.Float64("tau", 120, "base pickup waiting time (s)")
		delta     = flag.Float64("delta", 3, "batch interval (s)")
		tc        = flag.Float64("tc", 1200, "scheduling window t_c (s)")
		algsFlag  = flag.String("algs", "IRG,LS,LTG,NEAR,RAND,POLAR,UPPER", "comma-separated algorithms")
		pred      = flag.String("pred", "oracle", "demand forecasts: oracle, stnet, ha, lr, gbrt, none")
		traceFile = flag.String("trace", "", "replay this trace CSV instead of generating orders")
		seed      = flag.Int64("seed", 1, "instance seed")
	)
	flag.Parse()

	city := workload.NewCity(workload.CityConfig{
		OrdersPerDay: *orders, BaseWaitSeconds: *tau, Seed: 31,
	})
	opts := core.Options{
		City: city, NumDrivers: *drivers,
		Delta: *delta, TC: *tc, Seed: *seed,
	}

	mode := core.PredictOracle
	var model predict.Predictor
	switch strings.ToLower(*pred) {
	case "oracle":
	case "none":
		mode = core.PredictNone
	case "stnet":
		mode, model = core.PredictModel, &predict.STNet{}
	case "ha":
		mode, model = core.PredictModel, predict.HA{}
	case "lr":
		mode, model = core.PredictModel, &predict.LR{}
	case "gbrt":
		mode, model = core.PredictModel, &predict.GBRT{Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "mrvd-sim: unknown -pred %q\n", *pred)
		os.Exit(2)
	}

	var base *core.Runner
	fmt.Printf("%-6s %14s %8s %8s %10s %12s %10s\n",
		"alg", "revenue", "served", "reneged", "meanIdle", "pickupSec", "avgBatch")
	for _, alg := range strings.Split(*algsFlag, ",") {
		alg = strings.TrimSpace(alg)
		runner := core.NewRunner(opts)
		if *traceFile != "" {
			// Rebuild the runner around the external trace: orders come
			// from the file; drivers start at sampled pickups.
			f, err := os.Open(*traceFile)
			if err != nil {
				fatal(err)
			}
			external, err := trace.ReadCSV(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			runner = core.NewRunnerWithOrders(opts, external,
				city.InitialDrivers(*drivers, external, rand.New(rand.NewSource(*seed))))
		}
		if base != nil {
			runner.ShareFrom(base)
		}
		d, err := core.NewDispatcher(alg, *seed)
		if err != nil {
			fatal(err)
		}
		m, err := runner.Run(d, mode, model)
		if err != nil {
			fatal(err)
		}
		base = runner
		idle, n := 0.0, 0
		for _, rec := range m.IdleRecords {
			idle += rec.Realized
			n++
		}
		mean := 0.0
		if n > 0 {
			mean = idle / float64(n)
		}
		fmt.Printf("%-6s %14.0f %8d %8d %9.1fs %12.0f %9.4fs\n",
			alg, m.Revenue, m.Served, m.Reneged, mean, m.PickupSeconds, m.AvgBatchSeconds())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrvd-sim: %v\n", err)
	os.Exit(1)
}
