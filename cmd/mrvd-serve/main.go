// Command mrvd-serve exposes the dispatch engine as an HTTP service: a
// live Serve session behind the internal/server gateway. Riders submit
// orders with POST /v1/orders (add ?wait=true to long-poll the
// assignment), observability comes from GET /v1/orders/{id},
// /v1/drivers, /v1/stats and the /v1/events SSE stream, and a full
// pending queue answers 429.
//
// Usage:
//
//	mrvd-serve [-addr :8080] [-alg LS] [-drivers 100] [-orders 28000]
//	           [-delta 3] [-pace 1] [-horizon 86400] [-max-pending 1024]
//	           [-patience 300] [-road] [-seed 1] [-shards 0] [-borrow]
//	           [-cancel-rate 0] [-decline-prob 0] [-decline-cooldown 0]
//	           [-travel-noise 0] [-scenario-seed 0]
//	           [-pool-capacity 0] [-pool-detour 0]
//	           [-metrics] [-pprof] [-trace-out spans.jsonl]
//	           [-collect] [-collect-interval 1s] [-collect-windows 120]
//
// -metrics instruments the engine and serves GET /metrics in Prometheus
// text format (dispatch phase timings, coster cache counters, pool
// search counters, per-shard round timings, submit→terminal latency,
// process runtime health); -pprof mounts net/http/pprof under
// /debug/pprof/; -trace-out streams one JSON span per terminal order
// (submit → admit → commit → pickup → dropoff/cancel/renege with
// per-phase durations) to a file. All off by default — an
// uninstrumented session runs the exact baseline code path.
//
// -collect (implies -metrics) runs the windowed time-series collector
// over the registry: GET /v1/timeseries serves the ring-buffer dump
// (watch it live with mrvd-top), GET /healthz reports the default
// dispatch SLO rule states with a degraded=429/unhealthy=503 status
// code, and each collected window streams to /v1/events subscribers
// as a "window" SSE event.
//
// The scenario flags enable the disruption layer: -cancel-rate makes
// waiting riders abandon stochastically (riders can always cancel
// explicitly with DELETE /v1/orders/{id}), -decline-prob makes drivers
// decline committed assignments and cool down, -travel-noise perturbs
// realized travel times around the planner's estimates. All off by
// default.
//
// -pool-capacity >= 2 enables shared rides (pair it with -alg POOL to
// commit insertions): assignments and the SSE stream then carry
// shared/detour fields, /v1/drivers shows onboard riders and remaining
// stops, and pickup/dropoff events stream as they complete.
// -pool-detour bounds each rider's detour in seconds (0 = 300s).
//
// -shards N serves the session on the partitioned multi-engine runtime
// (N lockstep engines, each owning a contiguous band of the city and
// the drivers starting there); GET /v1/stats then carries a per-shard
// breakdown. -borrow admits frontier orders to a neighbouring shard
// when the owner has no driver in reach (default: strict ownership).
//
// By default the engine is paced to real time (-pace 1), so engine
// seconds are wall seconds and order patience behaves like a wall
// clock. -pace 0 free-runs (useful with the load harness, see
// cmd/mrvd-load); larger factors compress time. Ctrl-C drains and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"mrvd"
	"mrvd/internal/obs"
	"mrvd/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		alg        = flag.String("alg", "LS", "dispatch algorithm")
		drivers    = flag.Int("drivers", 100, "fleet size")
		orders     = flag.Int("orders", 28000, "synthetic city demand (orders/day), shapes prediction")
		delta      = flag.Float64("delta", 3, "batch interval (engine seconds)")
		pace       = flag.Float64("pace", 1, "engine seconds per wall second (0 = free-run)")
		horizon    = flag.Float64("horizon", 24*3600, "serve session length (engine seconds)")
		maxPending = flag.Int("max-pending", 1024, "in-flight order bound before 429")
		patience   = flag.Float64("patience", 300, "default pickup patience (engine seconds)")
		road       = flag.Bool("road", false, "price travel on the synthetic road network instead of closed-form")
		seed       = flag.Int64("seed", 1, "instance seed")
		shards     = flag.Int("shards", 0, "partitioned engines (0 = single unsharded engine)")
		borrow     = flag.Bool("borrow", false, "candidate-borrow frontier policy for sharded sessions")

		cancelRate   = flag.Float64("cancel-rate", 0, "scenario: probability a waiting rider abandons before its deadline")
		declineProb  = flag.Float64("decline-prob", 0, "scenario: probability a driver declines a committed assignment")
		declineCD    = flag.Float64("decline-cooldown", 0, "scenario: declining driver's cooldown in engine seconds (0 = default 60)")
		travelNoise  = flag.Float64("travel-noise", 0, "scenario: relative stddev of realized travel times around the estimate")
		scenarioSeed = flag.Int64("scenario-seed", 0, "scenario: RNG seed for cancels/declines/noise")

		poolCap    = flag.Int("pool-capacity", 0, "pooling: onboard rider capacity per driver (0 or 1 = off, >= 2 = shared rides)")
		poolDetour = flag.Float64("pool-detour", 0, "pooling: max per-rider detour in seconds (0 = default 300)")

		metricsOn = flag.Bool("metrics", false, "instrument the engine and expose GET /metrics (Prometheus text)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under GET /debug/pprof/")
		traceOut  = flag.String("trace-out", "", "append one JSON span per terminal order to this file (\"-\" = stdout)")

		collectOn       = flag.Bool("collect", false, "run the time-series collector: GET /v1/timeseries, SLO-enriched /healthz, window SSE (implies -metrics)")
		collectInterval = flag.Duration("collect-interval", time.Second, "collection window period")
		collectWindows  = flag.Int("collect-windows", 120, "retained collection windows (ring capacity)")
	)
	flag.Parse()
	if *collectOn {
		*metricsOn = true
	}

	// Fail fast on nonsensical flags, joined, matching the
	// mrvd.NewService validation convention.
	var flagErrs []error
	if *orders <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-orders must be positive, got %d", *orders))
	}
	if *drivers <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-drivers must be positive, got %d", *drivers))
	}
	if *maxPending <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-max-pending must be positive, got %d", *maxPending))
	}
	if *patience <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-patience must be positive, got %v", *patience))
	}
	if *shards < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-shards must be >= 0, got %d", *shards))
	}
	if *poolCap < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-pool-capacity must be >= 0, got %d", *poolCap))
	}
	if *poolDetour < 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-pool-detour must be >= 0, got %v", *poolDetour))
	}
	if *collectInterval <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-collect-interval must be positive, got %v", *collectInterval))
	}
	if *collectWindows <= 0 {
		flagErrs = append(flagErrs, fmt.Errorf("-collect-windows must be positive, got %d", *collectWindows))
	}
	if err := errors.Join(flagErrs...); err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []mrvd.Option{
		mrvd.WithCity(mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: *orders, Seed: 31})),
		mrvd.WithFleet(*drivers),
		mrvd.WithBatchInterval(*delta),
		mrvd.WithHorizon(*horizon),
		mrvd.WithSeed(*seed),
		mrvd.WithPrediction(mrvd.PredictNone, nil),
	}
	if *pace > 0 {
		opts = append(opts, mrvd.WithPace(*pace))
	}
	scenario := mrvd.ScenarioConfig{
		CancelRate:      *cancelRate,
		DeclineProb:     *declineProb,
		DeclineCooldown: *declineCD,
		TravelNoise:     *travelNoise,
		Seed:            *scenarioSeed,
	}
	if scenario.Enabled() {
		opts = append(opts, mrvd.WithScenario(scenario))
	}
	if *poolCap >= 2 {
		opts = append(opts, mrvd.WithPooling(*poolCap, *poolDetour))
	}
	if *shards > 0 {
		opts = append(opts, mrvd.WithShards(*shards))
		if *borrow {
			opts = append(opts, mrvd.WithBoundaryPolicy(mrvd.CandidateBorrow))
		}
	}
	if *road {
		if *shards > 0 {
			// One coster per shard over a shared network: identical
			// prices, uncontended caches, per-shard cache counters.
			opts = append(opts, mrvd.WithShardCosters(mrvd.GraphCosters(*seed)))
		} else {
			opts = append(opts, mrvd.WithCoster(mrvd.GraphCoster(*seed)))
		}
	}
	var reg *mrvd.MetricsRegistry
	if *metricsOn {
		reg = mrvd.NewMetricsRegistry()
		// Process-runtime health (goroutines, heap, GC pauses, uptime)
		// rides on the same registry, so /metrics, the collector and
		// mrvd-top see it for free.
		obs.RegisterProcessMetrics(reg)
	}
	var tracer *mrvd.SpanTracer
	if *traceOut != "" {
		w := os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			w = f
		}
		tracer = mrvd.NewSpanTracer(w)
	}
	if reg != nil || tracer != nil {
		opts = append(opts, mrvd.WithObservability(reg, tracer))
	}
	svc, err := mrvd.NewService(opts...)
	if err != nil {
		fatal(err)
	}

	srv, err := server.New(ctx, svc, server.Config{
		Algorithm:       *alg,
		Fleet:           *drivers,
		MaxPending:      *maxPending,
		DefaultPatience: *patience,
		Metrics:         reg,
		Pprof:           *pprofOn,
		Collect:         *collectOn,
		CollectInterval: *collectInterval,
		CollectWindows:  *collectWindows,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	go func() {
		// Ctrl-C or the session ending on its own (horizon reached,
		// drain) stops accepting; the gateway result below then
		// reports how the session went.
		select {
		case <-ctx.Done():
		case <-srv.Handle().Done():
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	runtime := "single engine"
	if *shards > 0 {
		policy := "strict"
		if *borrow {
			policy = "borrow"
		}
		runtime = fmt.Sprintf("%d shards/%s", *shards, policy)
	}
	fmt.Printf("mrvd-serve: %s dispatch on %s (fleet %d, delta %.1fs, pace %.1fx, max-pending %d, %s)\n",
		*alg, *addr, *drivers, *delta, *pace, *maxPending, runtime)
	if scenario.Enabled() {
		fmt.Printf("  disruptions: cancel-rate %.2f, decline-prob %.2f, travel-noise %.2f (seed %d)\n",
			scenario.CancelRate, scenario.DeclineProb, scenario.TravelNoise, scenario.Seed)
	}
	if *poolCap >= 2 {
		detour := *poolDetour
		if detour == 0 {
			detour = 300
		}
		fmt.Printf("  pooling: capacity %d, max detour %.0fs\n", *poolCap, detour)
	}
	fmt.Printf("  POST %s/v1/orders  {\"pickup\":{\"lng\":..,\"lat\":..},\"dropoff\":{..}}  (?wait=true to long-poll)\n", *addr)
	fmt.Printf("  DELETE %s/v1/orders/{id}  (rider-initiated cancel)\n", *addr)
	if *metricsOn {
		fmt.Printf("  GET %s/metrics  (Prometheus text)\n", *addr)
	}
	if *collectOn {
		// A bare ":8080" listen address needs a host for the copy-paste
		// mrvd-top hint.
		hint := *addr
		if strings.HasPrefix(hint, ":") {
			hint = "localhost" + hint
		}
		fmt.Printf("  GET %s/v1/timeseries  (windowed time series; watch with mrvd-top -url http://%s)\n", *addr, hint)
		fmt.Printf("  GET %s/healthz  (SLO rule states; 429 degraded, 503 unhealthy)\n", *addr)
	}
	if *pprofOn {
		fmt.Printf("  GET %s/debug/pprof/  (profiling)\n", *addr)
	}
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}

	m, err := srv.Result()
	// Close the tracer before interpreting the session result: every
	// result path must surface a retained span write error (a full disk
	// silently dropping spans is exactly what this reports), and Close
	// is safe regardless of how the session ended.
	var traceErr error
	if tracer != nil {
		traceErr = tracer.Close()
		if traceErr != nil {
			fmt.Fprintf(os.Stderr, "mrvd-serve: trace: %d spans written to %s, first write error: %v\n",
				tracer.Count(), *traceOut, traceErr)
		} else {
			fmt.Printf("mrvd-serve: wrote %d spans to %s\n", tracer.Count(), *traceOut)
		}
	}
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		fmt.Println("mrvd-serve: session canceled, shut down cleanly")
	case err != nil:
		fatal(err)
	default:
		fmt.Printf("mrvd-serve: session over: %d submitted, %d served, %d expired, %d canceled, %d declines, revenue %.0f\n",
			m.TotalOrders, m.Served, m.Reneged, m.Canceled, m.Declines, m.Revenue)
	}
	if traceErr != nil {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrvd-serve: %v\n", err)
	os.Exit(1)
}
