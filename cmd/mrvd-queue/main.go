// Command mrvd-queue explores the paper's double-sided queueing model
// (Section 4): it prints the expected driver idle time ET(lambda, mu)
// across a grid of demand/supply rates, plus the steady-state
// probability mass in each regime — a quick way to see how the idle
// ratio will rank destination regions.
//
// Usage:
//
//	mrvd-queue [-beta 0.05] [-k 50] [-lambda 0.05] [-mus 0.01,0.02,...]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"mrvd/internal/queueing"
)

func main() {
	var (
		beta   = flag.Float64("beta", 0.05, "reneging exponent of pi(n) = e^(beta*n)/mu")
		k      = flag.Int("k", 50, "max congested drivers K in the window")
		lambda = flag.Float64("lambda", 0.05, "rider arrival rate (per second)")
		mus    = flag.String("mus", "0.01,0.02,0.03,0.05,0.05,0.08,0.1", "driver arrival rates to tabulate")
		cost   = flag.Float64("cost", 600, "trip cost (s) for the idle-ratio column")
	)
	flag.Parse()

	model := queueing.New(queueing.Config{Beta: *beta})
	fmt.Printf("lambda = %g /s, K = %d, beta = %g\n", *lambda, *k, *beta)
	fmt.Printf("%10s %8s %12s %12s %14s\n",
		"mu", "regime", "p0", "ET (s)", fmt.Sprintf("IR(cost=%.0fs)", *cost))
	for _, f := range strings.Split(*mus, ",") {
		mu, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrvd-queue: bad mu %q: %v\n", f, err)
			os.Exit(2)
		}
		regime := "λ>μ"
		switch {
		case math.Abs(mu-*lambda) < 1e-12:
			regime = "λ=μ"
		case mu > *lambda:
			regime = "λ<μ"
		}
		p0 := model.P0(*lambda, mu, *k)
		et := model.ExpectedIdleTime(*lambda, mu, *k)
		ir := queueing.IdleRatio(*cost, et)
		fmt.Printf("%10.4f %8s %12.6g %12.2f %14.4f\n", mu, regime, p0, et, ir)
	}
}
