// Package mrvd is a queueing-theoretic vehicle dispatching framework for
// dynamic car-hailing, reproducing Cheng et al., "A Queueing-Theoretic
// Framework for Vehicle Dispatching in Dynamic Car-Hailing" (ICDE 2019).
//
// The library solves the Maximum Revenue Vehicle Dispatching (MRVD)
// problem: riders arrive online with pickup deadlines, and the platform
// assigns available drivers in short batches so that total revenue
// (alpha times the summed travel cost of served orders) is maximized.
// Its core is a double-sided birth-death queueing model per city region
// that yields a closed-form expected driver idle time, which the IRG and
// LS batch dispatchers use to prioritize (rider, driver) pairs.
//
// Quick start — one simulated day under the paper's local search:
//
//	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 28000, Seed: 1})
//	svc, err := mrvd.NewService(mrvd.WithCity(city), mrvd.WithFleet(100))
//	metrics, err := svc.Run(context.Background(), "LS")
//
// The Service API is streaming and context-aware: orders can arrive
// live through a ChannelSource (svc.Serve), runs cancel through their
// context, per-event observers subscribe with WithObserver, and
// svc.Sweep executes (algorithm × seed × fleet) grids on a parallel
// worker pool with deterministic results. Service.Start runs a live
// serve session in the background and returns a ServeHandle whose
// Submit routes each order's terminal Outcome back to the caller — the
// seam the HTTP gateway (internal/server, cmd/mrvd-serve) builds on.
// WithShards(n) scales the runtime out: the city's regions partition
// across n lockstep dispatch engines (internal/shard) with a router
// admitting each order to the shard owning its pickup region, a
// configurable frontier policy (WithBoundaryPolicy), and per-shard
// stats on the gateway's /v1/stats; WithShards(1) is contractually
// identical to the unsharded engine. WithScenario(cfg) turns on the
// disruption layer — stochastic rider cancellations, driver declines
// with cooldown, and noisy realized travel times with an
// estimate-vs-realized error ledger — while riders can always cancel
// explicitly through ServeHandle.Cancel or the gateway's DELETE
// /v1/orders/{id}; a zero-valued ScenarioConfig keeps the engine
// byte-identical to a scenario-free run. WithPooling(capacity, detour)
// turns on shared rides: busy drivers carry an ordered route plan of
// stops, every batch prices detour-bounded insertions of waiting
// riders into active plans through the same batched cost matrices as
// solo pairs, and the POOL dispatcher weighs both; capacity 1 (or
// omitting the option) keeps the engine byte-identical to a
// pooling-free run.
//
// See examples/ for runnable scenarios (examples/livedispatch streams
// orders into a running engine, examples/httpserve drives the HTTP
// gateway end to end) and cmd/mrvd-bench for the harness regenerating
// every table and figure of the paper.
package mrvd

import (
	"io"

	"mrvd/internal/core"
	"mrvd/internal/dispatch"
	"mrvd/internal/geo"
	"mrvd/internal/obs"
	"mrvd/internal/pool"
	"mrvd/internal/predict"
	"mrvd/internal/queueing"
	"mrvd/internal/roadnet"
	"mrvd/internal/shard"
	"mrvd/internal/sim"
	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

// Geospatial types.
type (
	// Point is a WGS-84 coordinate (Lng east, Lat north).
	Point = geo.Point
	// BBox is a lng/lat bounding box.
	BBox = geo.BBox
	// Grid partitions a bounding box into equal rectangular regions.
	Grid = geo.Grid
	// RegionID names one grid cell.
	RegionID = geo.RegionID
)

// Workload types.
type (
	// City is a synthetic demand model with NYC-like marginals.
	City = workload.City
	// CityConfig parameterizes a City.
	CityConfig = workload.CityConfig
	// Hotspot is one activity center of a City.
	Hotspot = workload.Hotspot
	// Order is one ride request (rider r_i with deadline tau_i).
	Order = trace.Order
	// OrderID names one order.
	OrderID = trace.OrderID
)

// Simulation and dispatch types.
type (
	// Dispatcher decides each batch's assignments (Algorithm 1 line 7).
	Dispatcher = sim.Dispatcher
	// DriverID indexes a driver in the fleet.
	DriverID = sim.DriverID
	// Metrics aggregates one simulated day.
	Metrics = sim.Metrics
	// Summary is the deterministic projection of Metrics (no wall-clock
	// fields) — the unit of Sweep's reproducibility contract.
	Summary = sim.Summary
	// SimConfig parameterizes a raw simulation (most callers use Service).
	SimConfig = sim.Config
	// Coster prices travel between two points in seconds.
	Coster = roadnet.Coster
	// BatchCoster is a Coster with many-to-many matrix pricing; custom
	// costers that implement it are priced in one Costs call per batch
	// instead of per-pair Cost queries, unless they opt out through
	// PerSourceAmortized (the closed-form built-in does — its per-cell
	// cost is too cheap to batch; the graph-backed one batches).
	BatchCoster = roadnet.BatchCoster
	// PerSourceAmortized lets a BatchCoster state whether dense batch
	// pricing pays off: return false from AmortizesPerSource to have
	// the engine price only the cells it reads, true (or omit the
	// interface) to receive the full dense Costs call.
	PerSourceAmortized = roadnet.PerSourceAmortized
	// Repositioner proposes cruise targets for long-idle drivers.
	Repositioner = sim.Repositioner
)

// Disruption-scenario types (see WithScenario).
type (
	// ScenarioConfig gates the engine's disruption layer: stochastic
	// rider cancellations, driver declines with cooldown, and seeded
	// travel-time noise. The zero value disables all three and keeps
	// runs byte-identical to a scenario-free engine.
	ScenarioConfig = sim.ScenarioConfig
	// CancelModel maps a uniform draw to a rider's abandonment time;
	// the default is the workload package's constant-hazard Patience.
	CancelModel = sim.CancelModel
	// RiderPatience is the default constant-hazard abandonment model:
	// P(cancel before deadline) is exact per order, with the hazard
	// drawn from the order's deadline slack.
	RiderPatience = workload.Patience
	// TravelRecord is one estimate-vs-realized travel-time observation
	// of the noise scenario (Metrics.TravelRecords).
	TravelRecord = sim.TravelRecord
)

// Streaming order sources (see Service.Serve).
type (
	// OrderSource feeds orders to the engine incrementally.
	OrderSource = sim.OrderSource
	// SliceSource replays a fixed trace.
	SliceSource = sim.SliceSource
	// ChannelSource accepts live Submit-driven orders from concurrent
	// producers.
	ChannelSource = sim.ChannelSource
)

// Event observation (see WithObserver).
type (
	// Observer receives engine lifecycle events during a run.
	Observer = sim.Observer
	// Observers fans events out to several observers.
	Observers = sim.Observers
	// ObserverFuncs adapts free functions to Observer.
	ObserverFuncs = sim.ObserverFuncs
	// BatchStartEvent, AssignedEvent, ExpiredEvent, CanceledEvent,
	// DeclinedEvent and RepositionedEvent are the event payloads.
	BatchStartEvent   = sim.BatchStartEvent
	AssignedEvent     = sim.AssignedEvent
	ExpiredEvent      = sim.ExpiredEvent
	CanceledEvent     = sim.CanceledEvent
	DeclinedEvent     = sim.DeclinedEvent
	RepositionedEvent = sim.RepositionedEvent
	// PickedUpEvent and DroppedOffEvent are the pooled stop completions
	// (emitted only with WithPooling enabled).
	PickedUpEvent   = sim.PickedUpEvent
	DroppedOffEvent = sim.DroppedOffEvent
)

// Ride pooling types (see WithPooling).
type (
	// PoolingConfig gates shared rides: Capacity >= 2 lets busy drivers
	// carry a route plan of stops and the batch price detour-bounded
	// insertions. The zero value (and Capacity 1) keeps the engine
	// byte-identical to a pooling-free run.
	PoolingConfig = pool.Config
	// RoutePlan is a pooled driver's ordered stop sequence.
	RoutePlan = pool.Plan
	// RouteStop is one pickup or dropoff on a RoutePlan.
	RouteStop = pool.Stop
	// Insertion is one feasible placement of an order into a RoutePlan.
	Insertion = pool.Insertion
)

// Observability types (see WithObservability).
type (
	// MetricsRegistry collects counters, gauges and histograms from every
	// instrumented layer and renders them in Prometheus text format
	// (WriteText) — dependency-free and safe for concurrent use.
	MetricsRegistry = obs.Registry
	// MetricFamily is one gathered metric family snapshot.
	MetricFamily = obs.Family
	// Span is one order's lifecycle record: submit → admit → commit →
	// pickup → terminal, with per-phase durations and attribution.
	Span = obs.Span
	// SpanTracer streams order-lifecycle spans as JSON lines.
	SpanTracer = obs.Tracer
	// ObsConfig wires a registry and/or tracer into a raw sim.Config;
	// Service callers use WithObservability instead.
	ObsConfig = sim.ObsConfig
	// MetricsCollector snapshots a MetricsRegistry on a fixed interval
	// into ring buffers of per-window deltas — counter rates, gauge
	// values, interpolated histogram quantiles — and evaluates an SLO
	// rule set per window (the gateway's /v1/timeseries and enriched
	// /healthz feed, and mrvd-top's data source).
	MetricsCollector = obs.Collector
	// CollectorConfig configures a MetricsCollector: source registry,
	// interval, ring capacity, rules, and an optional per-window hook.
	CollectorConfig = obs.CollectorConfig
	// TimeSeriesDump is a collector's full ring-buffer dump — the
	// GET /v1/timeseries payload.
	TimeSeriesDump = obs.TimeSeries
	// HealthRule is one declarative SLO bound over collected windows,
	// with breach ("for") and clear streaks for hysteresis.
	HealthRule = obs.Rule
	// HealthSelector names the metric a HealthRule watches and how to
	// reduce it (rate, value, delta, mean, p50/p95/p99; sum, max or
	// imbalance across label sets).
	HealthSelector = obs.Selector
	// HealthState is ok, degraded or unhealthy.
	HealthState = obs.State
	// HealthReport is the evaluated rule states plus recent transitions
	// — the enriched /healthz body.
	HealthReport = obs.Health
)

// Health states reported by a MetricsCollector's rule engine.
const (
	HealthOK        = obs.StateOK
	HealthDegraded  = obs.StateDegraded
	HealthUnhealthy = obs.StateUnhealthy
)

// NewMetricsRegistry returns an empty metrics registry to pass to
// WithObservability (and the gateway's Config.Metrics).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpanTracer returns a tracer writing one JSON span per line to w.
// Close it after the run to flush and release w.
func NewSpanTracer(w io.Writer) *SpanTracer { return obs.NewTracer(w) }

// NewMetricsCollector returns an unstarted collector over cfg.Registry.
// Call Start to begin interval collection and Stop to end it; the
// gateway starts one itself when its Config.Collect is set.
func NewMetricsCollector(cfg CollectorConfig) *MetricsCollector { return obs.NewCollector(cfg) }

// DefaultDispatchRules returns the stock SLO rule set for a dispatch
// session: a served-fraction floor, a submit-to-terminal p95 latency
// ceiling, a queue-depth growth bound, and a shard round-time
// imbalance bound.
func DefaultDispatchRules() []HealthRule { return obs.DefaultDispatchRules() }

// RegisterProcessMetrics adds process-runtime gauges (goroutines, heap
// in use, cumulative GC pause, uptime) to reg, as mrvd-serve does when
// metrics are enabled.
func RegisterProcessMetrics(reg *MetricsRegistry) { obs.RegisterProcessMetrics(reg) }

// Sharded runtime types (see WithShards).
type (
	// BoundaryPolicy decides where orders whose patience radius crosses
	// a shard frontier are admitted (see WithBoundaryPolicy).
	BoundaryPolicy = shard.BoundaryPolicy
	// ShardStats is one shard's live counter snapshot, served per shard
	// by the HTTP gateway's /v1/stats.
	ShardStats = shard.Stats
)

// Boundary policies for sharded runs.
const (
	// StrictOwnership always admits an order to the shard owning its
	// pickup region.
	StrictOwnership = shard.StrictOwnership
	// CandidateBorrow admits a frontier order to a neighbouring shard
	// with available supply in reach when the owner shard has none.
	CandidateBorrow = shard.CandidateBorrow
)

// Framework types.
type (
	// Options configures a Runner (and, via WithOptions, a Service).
	Options = core.Options
	// Runner owns one problem instance and executes algorithms on it.
	//
	// Deprecated: new code should use Service, which adds streaming
	// sources, cancellation and parallel sweeps; Runner remains for the
	// lower-level history-sharing workflow.
	Runner = core.Runner
	// PredictionMode selects the demand-forecast source.
	PredictionMode = core.PredictionMode
	// Predictor forecasts per-region, per-slot order counts.
	Predictor = predict.Predictor
	// QueueModel evaluates the double-sided region queue (Section 4).
	QueueModel = queueing.Model
	// QueueConfig parameterizes a QueueModel.
	QueueConfig = queueing.Config
)

// Prediction modes, mirroring the paper's -P/-R algorithm variants.
const (
	PredictNone   = core.PredictNone
	PredictOracle = core.PredictOracle
	PredictModel  = core.PredictModel
)

// NYCBBox is the paper's experimental extent of New York City.
var NYCBBox = geo.NYCBBox

// NewCity builds a synthetic city; zero-value config gives the scaled
// NYC-like default.
func NewCity(cfg CityConfig) *City { return workload.NewCity(cfg) }

// NewNYCGrid returns the paper's 16x16 grid over NYC.
func NewNYCGrid() *Grid { return geo.NewNYCGrid() }

// NewGrid builds a rows x cols grid over a bounding box.
func NewGrid(box BBox, rows, cols int) *Grid { return geo.NewGrid(box, rows, cols) }

// NewRunner materializes a problem instance from options.
//
// Deprecated: use NewService with functional options; Service.Runner
// exposes the underlying instance when the lower-level API is needed.
func NewRunner(opts Options) *Runner { return core.NewRunner(opts) }

// NewSliceSource wraps a fixed trace in the OrderSource interface,
// validated and sorted by post time.
func NewSliceSource(orders []Order) *SliceSource { return sim.NewSliceSource(orders) }

// NewChannelSource returns an open source for live, Submit-driven
// dispatch (see Service.Serve).
func NewChannelSource() *ChannelSource { return sim.NewChannelSource() }

// AlgorithmNames lists the built-in dispatchers: IRG, LS, SHORT, LTG,
// NEAR, RAND, POLAR, UPPER, POOL.
func AlgorithmNames() []string { return core.AlgorithmNames() }

// NewDispatcher builds a fresh dispatcher by name; seed feeds stochastic
// baselines (RAND).
func NewDispatcher(name string, seed int64) (Dispatcher, error) {
	return core.NewDispatcher(name, seed)
}

// NewQueueModel builds the double-sided queueing model of Section 4.
func NewQueueModel(cfg QueueConfig) *QueueModel { return queueing.New(cfg) }

// ExpectedIdleTime evaluates ET(lambda, mu) with the default reneging
// model: the expected wait of a driver rejoining a region with rider
// arrival rate lambda and driver arrival rate mu (per second), where at
// most k drivers can congest.
func ExpectedIdleTime(lambda, mu float64, k int) float64 {
	return queueing.NewDefault().ExpectedIdleTime(lambda, mu, k)
}

// Predictors returns fresh instances of the paper's demand models:
// STNet (the DeepST substitute), HA, LR and GBRT.
func Predictors(seed int64) []Predictor { return predict.All(seed) }

// NewIRG returns the idle-ratio oriented greedy dispatcher (Algorithm 2).
func NewIRG() Dispatcher { return &dispatch.IRG{} }

// NewLS returns the local search dispatcher (Algorithm 3), seeded by IRG.
func NewLS() Dispatcher { return &dispatch.LS{} }

// DefaultCoster returns the Manhattan-distance coster at urban speed.
func DefaultCoster() Coster { return roadnet.NewDefaultCoster() }

// GraphCoster prices travel on a synthetic Manhattan-style road network
// generated over the NYC box with the given seed, for studies where
// straight-line costs are too coarse.
func GraphCoster(seed int64) Coster {
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Seed: seed})
	return roadnet.NewGraphCoster(g)
}

// GraphCosters returns a per-shard coster factory over one shared
// synthetic road network: every shard prices travel on the same graph
// (so costs agree across shards) through its own coster instance (so
// snap indexes and tree caches don't contend, and /v1/stats reports
// per-shard cache counters). Pass it to WithShardCosters.
func GraphCosters(seed int64) func(shard int) Coster {
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Seed: seed})
	return func(int) Coster { return roadnet.NewGraphCoster(g) }
}

// WriteOrdersCSV and ReadOrdersCSV expose the trace format so real data
// (e.g., a converted TLC extract) can replace the synthetic workload.
var (
	WriteOrdersCSV = trace.WriteCSV
	ReadOrdersCSV  = trace.ReadCSV
)
