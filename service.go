package mrvd

import (
	"context"
	"fmt"

	"mrvd/internal/core"
)

// Service is the streaming, context-aware entry point to the framework.
// It separates order sources from the dispatch engine: the same
// configured service runs recorded traces (Run), live Submit-driven
// streams (Serve), and parallel experiment grids (Sweep), all
// cancellable through a context and observable through event hooks.
//
// Build one with NewService and functional options:
//
//	svc := mrvd.NewService(
//		mrvd.WithCity(city),
//		mrvd.WithFleet(500),
//		mrvd.WithPrediction(mrvd.PredictOracle, nil),
//	)
//	metrics, err := svc.Run(ctx, "LS")
//
// A Service is immutable after construction and safe for concurrent use
// as long as its Coster and Observer are (the default coster is; see
// WithCoster).
type Service struct {
	opts   core.Options
	mode   PredictionMode
	model  Predictor
	orders []Order
	starts []Point
}

// Option configures a Service.
type Option func(*Service)

// WithCity sets the demand workload (default: scaled NYC-like city).
func WithCity(c *City) Option { return func(s *Service) { s.opts.City = c } }

// WithFleet sets the driver count (default 100).
func WithFleet(n int) Option { return func(s *Service) { s.opts.NumDrivers = n } }

// WithBatchInterval sets the batch interval delta in seconds (default 3,
// Table 2).
func WithBatchInterval(seconds float64) Option {
	return func(s *Service) { s.opts.Delta = seconds }
}

// WithSchedulingWindow sets the queueing-analysis window t_c in seconds
// (default 1200).
func WithSchedulingWindow(seconds float64) Option {
	return func(s *Service) { s.opts.TC = seconds }
}

// WithHorizon sets the simulated span in seconds (default one day).
func WithHorizon(seconds float64) Option {
	return func(s *Service) { s.opts.Horizon = seconds }
}

// WithCoster sets the travel-cost backend (default Manhattan distance at
// urban speed). For Sweep, the coster is shared across parallel runs and
// must be safe for concurrent use; DefaultCoster and GraphCoster are.
// Costers implementing BatchCoster are priced one many-to-many matrix
// per batch (unless they opt out via PerSourceAmortized); plain
// Costers go through a per-pair compatibility loop.
func WithCoster(c Coster) Option { return func(s *Service) { s.opts.Coster = c } }

// WithSeed sets the instance seed for trace sampling and driver starts
// (default 0).
func WithSeed(seed int64) Option { return func(s *Service) { s.opts.Seed = seed } }

// WithTrainDays sets the prediction-history length; the test day is day
// TrainDays (default MinLookbackDays+14).
func WithTrainDays(days int) Option { return func(s *Service) { s.opts.TrainDays = days } }

// WithSlotSeconds sets the prediction slot width (default 1800, the
// paper's 30 minutes).
func WithSlotSeconds(seconds float64) Option {
	return func(s *Service) { s.opts.SlotSeconds = seconds }
}

// WithPrediction selects the demand-forecast source consulted by the
// queueing-aware dispatchers: PredictNone, PredictOracle (default), or
// PredictModel with a predictor from Predictors or the predict package.
func WithPrediction(mode PredictionMode, model Predictor) Option {
	return func(s *Service) { s.mode, s.model = mode, model }
}

// WithPace throttles runs to at most factor simulated seconds per wall
// second (1 = real time, 0 = free-run, the default). Live Serve with
// producers stamping PostTime off the wall clock requires pacing —
// an unpaced engine simulates hours per wall second and would expire
// wall-clock-stamped orders on arrival.
func WithPace(factor float64) Option {
	return func(s *Service) { s.opts.PaceFactor = factor }
}

// WithObserver subscribes an event observer to every run: batch starts,
// assignments, expiries and repositions stream out as they happen
// instead of being scraped from Metrics afterwards. Compose several with
// sim.Observers.
func WithObserver(o Observer) Option { return func(s *Service) { s.opts.Observer = o } }

// WithRepositioner enables active repositioning of drivers idle longer
// than afterSeconds (0 keeps the 300s default threshold).
func WithRepositioner(r Repositioner, afterSeconds float64) Option {
	return func(s *Service) {
		s.opts.Repositioner = r
		s.opts.RepositionAfter = afterSeconds
	}
}

// WithOrders replays an external trace (e.g. a converted TLC extract)
// instead of generating one from the city. starts may be nil to sample
// driver start positions from the trace's pickups.
func WithOrders(orders []Order, starts []Point) Option {
	return func(s *Service) { s.orders, s.starts = orders, starts }
}

// WithOptions overlays a full core options struct — an escape hatch for
// callers migrating from the Runner API. Later With options still apply
// on top.
func WithOptions(opts Options) Option { return func(s *Service) { s.opts = opts } }

// NewService builds a Service; zero options give the quickstart default:
// a scaled NYC-like city, 100 drivers, the paper's batch timing and
// oracle demand forecasts.
func NewService(opts ...Option) *Service {
	s := &Service{mode: PredictOracle}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Options returns the service's (not yet defaulted) runner options.
func (s *Service) Options() Options { return s.opts }

// newRunner materializes a problem instance for one run.
func (s *Service) newRunner(seed int64) *Runner {
	opts := s.opts
	opts.Seed = seed
	if s.orders != nil {
		return core.NewRunnerForTrace(opts, s.orders, s.starts)
	}
	return core.NewRunner(opts)
}

// Run simulates one full trace — generated from the city, or the
// WithOrders replay — under the named algorithm and returns its metrics.
// The context cancels the run between batches.
func (s *Service) Run(ctx context.Context, algorithm string) (*Metrics, error) {
	d, err := core.NewDispatcher(algorithm, s.opts.Seed)
	if err != nil {
		return nil, err
	}
	return s.newRunner(s.opts.Seed).Run(ctx, d, s.mode, s.model)
}

// Runner exposes the materialized problem instance for callers that need
// the lower-level API (history sharing, trained predictors).
func (s *Service) Runner() *Runner { return s.newRunner(s.opts.Seed) }

// Serve dispatches a live order stream: orders arrive through src —
// typically a ChannelSource fed by concurrent Submit calls — and the
// run ends at the horizon, on ctx cancellation, or once src is closed,
// drained and every trip completed. starts positions the fleet; nil
// samples starts the way Run does. Producers stamping PostTime off the
// wall clock need WithPace.
func (s *Service) Serve(ctx context.Context, algorithm string, src OrderSource, starts []Point) (*Metrics, error) {
	if src == nil {
		return nil, fmt.Errorf("mrvd: Serve requires an OrderSource")
	}
	d, err := core.NewDispatcher(algorithm, s.opts.Seed)
	if err != nil {
		return nil, err
	}
	var r *Runner
	if starts != nil && s.orders == nil {
		// With an explicit fleet there is no reason to materialize a
		// synthetic day trace the streaming run would never read.
		r = core.NewRunnerWithOrders(s.opts, nil, starts)
	} else {
		// A nil starts falls through to the runner's own sampled fleet.
		r = s.newRunner(s.opts.Seed)
	}
	return r.RunSource(ctx, d, s.mode, s.model, src, starts)
}

// SweepSpec re-exports the grid description of core.Sweep.
type SweepSpec = core.SweepSpec

// SweepPoint identifies one sweep cell.
type SweepPoint = core.SweepPoint

// SweepResult is one completed sweep cell.
type SweepResult = core.SweepResult

// Sweep runs every (algorithm × seed × fleet-size) combination of the
// spec in parallel on a bounded worker pool, reusing per-seed history
// and trained predictors across cells. Results are in grid order and
// deterministic: a parallel sweep's Metrics.Summary values are identical
// to a sequential (Workers: 1) sweep's.
//
// The spec's Mode and Model are used verbatim (the zero Mode is
// PredictNone) — they deliberately do not inherit WithPrediction, so an
// explicit no-prediction sweep is always expressible regardless of how
// the service is configured. A WithOrders trace (and its explicit
// starts, if any) does carry over: every cell replays it. Per-run hooks
// do not: the cells run unobserved and unpaced, since a shared Observer
// would race across workers and pacing would throttle each cell to
// wall-clock speed.
func (s *Service) Sweep(ctx context.Context, spec SweepSpec) ([]SweepResult, error) {
	if spec.Orders == nil {
		spec.Orders, spec.Starts = s.orders, s.starts
	}
	return core.Sweep(ctx, s.opts, spec)
}
