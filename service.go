package mrvd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mrvd/internal/core"
	"mrvd/internal/shard"
	"mrvd/internal/sim"
)

// Service is the streaming, context-aware entry point to the framework.
// It separates order sources from the dispatch engine: the same
// configured service runs recorded traces (Run), live Submit-driven
// streams (Serve), and parallel experiment grids (Sweep), all
// cancellable through a context and observable through event hooks.
//
// Build one with NewService and functional options:
//
//	svc, err := mrvd.NewService(
//		mrvd.WithCity(city),
//		mrvd.WithFleet(500),
//		mrvd.WithPrediction(mrvd.PredictOracle, nil),
//	)
//	metrics, err := svc.Run(ctx, "LS")
//
// A Service is immutable after construction and safe for concurrent use
// as long as its Coster and Observer are (the default coster is; see
// WithCoster).
type Service struct {
	opts   core.Options
	mode   PredictionMode
	model  Predictor
	orders []Order
	starts []Point
	errs   []error
}

// Option configures a Service. Options validate their arguments eagerly:
// a nonsensical value (non-positive fleet, nil coster) is reported as an
// error from NewService instead of surfacing as a confusing default or a
// failure deep inside the engine.
type Option func(*Service)

func (s *Service) failf(format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf("mrvd: "+format, args...))
}

// WithCity sets the demand workload (default: scaled NYC-like city).
func WithCity(c *City) Option {
	return func(s *Service) {
		if c == nil {
			s.failf("WithCity: nil city")
			return
		}
		s.opts.City = c
	}
}

// WithFleet sets the driver count (default 100).
func WithFleet(n int) Option {
	return func(s *Service) {
		if n <= 0 {
			s.failf("WithFleet: fleet size must be positive, got %d", n)
			return
		}
		s.opts.NumDrivers = n
	}
}

// WithBatchInterval sets the batch interval delta in seconds (default 3,
// Table 2).
func WithBatchInterval(seconds float64) Option {
	return func(s *Service) {
		if seconds <= 0 || math.IsNaN(seconds) {
			s.failf("WithBatchInterval: interval must be positive, got %v", seconds)
			return
		}
		s.opts.Delta = seconds
	}
}

// WithSchedulingWindow sets the queueing-analysis window t_c in seconds
// (default 1200).
func WithSchedulingWindow(seconds float64) Option {
	return func(s *Service) {
		if seconds <= 0 || math.IsNaN(seconds) {
			s.failf("WithSchedulingWindow: window must be positive, got %v", seconds)
			return
		}
		s.opts.TC = seconds
	}
}

// WithHorizon sets the simulated span in seconds (default one day).
func WithHorizon(seconds float64) Option {
	return func(s *Service) {
		if seconds <= 0 || math.IsNaN(seconds) {
			s.failf("WithHorizon: horizon must be positive, got %v", seconds)
			return
		}
		s.opts.Horizon = seconds
	}
}

// WithCoster sets the travel-cost backend (default Manhattan distance at
// urban speed). For Sweep, the coster is shared across parallel runs and
// must be safe for concurrent use; DefaultCoster and GraphCoster are.
// Costers implementing BatchCoster are priced one many-to-many matrix
// per batch (unless they opt out via PerSourceAmortized); plain
// Costers go through a per-pair compatibility loop.
func WithCoster(c Coster) Option {
	return func(s *Service) {
		if c == nil {
			s.failf("WithCoster: nil coster (omit the option for the default)")
			return
		}
		s.opts.Coster = c
	}
}

// WithSeed sets the instance seed for trace sampling and driver starts
// (default 0).
func WithSeed(seed int64) Option { return func(s *Service) { s.opts.Seed = seed } }

// WithTrainDays sets the prediction-history length; the test day is day
// TrainDays (default MinLookbackDays+14).
func WithTrainDays(days int) Option {
	return func(s *Service) {
		if days <= 0 {
			s.failf("WithTrainDays: history length must be positive, got %d", days)
			return
		}
		s.opts.TrainDays = days
	}
}

// WithSlotSeconds sets the prediction slot width (default 1800, the
// paper's 30 minutes).
func WithSlotSeconds(seconds float64) Option {
	return func(s *Service) {
		if seconds <= 0 || math.IsNaN(seconds) {
			s.failf("WithSlotSeconds: slot width must be positive, got %v", seconds)
			return
		}
		s.opts.SlotSeconds = seconds
	}
}

// WithPrediction selects the demand-forecast source consulted by the
// queueing-aware dispatchers: PredictNone, PredictOracle (default), or
// PredictModel with a predictor from Predictors or the predict package.
func WithPrediction(mode PredictionMode, model Predictor) Option {
	return func(s *Service) {
		if mode == PredictModel && model == nil {
			s.failf("WithPrediction: PredictModel requires a predictor")
			return
		}
		s.mode, s.model = mode, model
	}
}

// WithPace throttles runs to at most factor simulated seconds per wall
// second (1 = real time, 0 = free-run, the default). Live Serve with
// producers stamping PostTime off the wall clock requires pacing —
// an unpaced engine simulates hours per wall second and would expire
// wall-clock-stamped orders on arrival.
func WithPace(factor float64) Option {
	return func(s *Service) {
		if factor < 0 || math.IsNaN(factor) {
			s.failf("WithPace: factor must be >= 0, got %v", factor)
			return
		}
		s.opts.PaceFactor = factor
	}
}

// WithScenario enables the disruption layer for every run and serve
// session of the service: stochastic rider cancellations (CancelRate,
// drawn from each order's deadline slack via the workload patience
// model), driver declines with cooldown (DeclineProb,
// DeclineCooldown), and seeded travel-time noise (TravelNoise) whose
// estimate-vs-realized gap lands in Metrics.TravelRecords. The zero
// config is exactly equivalent to omitting the option — the engine
// stays byte-identical to a scenario-free run — and a 1-shard sharded
// run with scenarios enabled reproduces the unsharded engine event for
// event. Explicit cancels (ServeHandle.Cancel, the gateway's DELETE
// /v1/orders/{id}) work with or without this option.
func WithScenario(sc ScenarioConfig) Option {
	return func(s *Service) {
		if sc.CancelRate < 0 || sc.CancelRate > 1 || math.IsNaN(sc.CancelRate) {
			s.failf("WithScenario: cancel rate must be in [0,1], got %v", sc.CancelRate)
			return
		}
		if sc.DeclineProb < 0 || sc.DeclineProb > 1 || math.IsNaN(sc.DeclineProb) {
			s.failf("WithScenario: decline probability must be in [0,1], got %v", sc.DeclineProb)
			return
		}
		if sc.DeclineCooldown < 0 || math.IsNaN(sc.DeclineCooldown) {
			s.failf("WithScenario: decline cooldown must be >= 0, got %v", sc.DeclineCooldown)
			return
		}
		if sc.TravelNoise < 0 || math.IsNaN(sc.TravelNoise) || math.IsInf(sc.TravelNoise, 0) {
			s.failf("WithScenario: travel noise must be a finite value >= 0, got %v", sc.TravelNoise)
			return
		}
		s.opts.Scenario = sc
	}
}

// WithPooling enables shared rides: busy drivers carry an ordered
// route plan of pickup and dropoff stops, and every batch prices
// detour-bounded insertions of waiting riders into active plans
// alongside the solo pairs (see the POOL dispatcher). capacity is the
// onboard rider limit per driver; maxDetourSeconds bounds how far any
// rider's door-to-door time may stretch past their direct trip (0
// keeps the 300s default). WithPooling(1, 0) — capacity one — and
// omitting the option are byte-identical: the engine runs the exact
// solo code path.
func WithPooling(capacity int, maxDetourSeconds float64) Option {
	return func(s *Service) {
		if capacity < 1 {
			s.failf("WithPooling: capacity must be >= 1, got %d", capacity)
			return
		}
		if maxDetourSeconds < 0 || math.IsNaN(maxDetourSeconds) || math.IsInf(maxDetourSeconds, 0) {
			s.failf("WithPooling: max detour must be a finite value >= 0, got %v", maxDetourSeconds)
			return
		}
		s.opts.Pooling = PoolingConfig{Capacity: capacity, MaxDetourSeconds: maxDetourSeconds}
	}
}

// WithCandidateCap prices only the k nearest feasible drivers per
// rider instead of every driver in the rider's patience radius — the
// pre-filter that bounds per-order matching work for very large
// fleets (see SimConfig.CandidateCap). The exact radius search stays
// the default; a cap can occasionally miss a feasible far driver when
// nearer ones are deadline-infeasible.
func WithCandidateCap(k int) Option {
	return func(s *Service) {
		if k < 0 {
			s.failf("WithCandidateCap: cap must be >= 0, got %d", k)
			return
		}
		s.opts.CandidateCap = k
	}
}

// WithShards partitions the city across n independent dispatch engines
// stepped in lockstep on parallel goroutines: each shard owns a
// disjoint, contiguous set of grid regions and the slice of the fleet
// that starts there, a router admits every order to the shard owning
// its pickup region, and events plus metrics aggregate back into one
// coherent city-wide stream. WithShards(1) is contractually identical
// to the unsharded engine; omitting the option keeps the single-engine
// runtime. Shared per-run hooks (Coster, PredictRiders, Repositioner,
// Observer-reachable state) must be safe for concurrent use — the
// built-ins are — and the Observer sees a serialized stream with
// driver ids in the global fleet numbering.
func WithShards(n int) Option {
	return func(s *Service) {
		if n < 1 {
			s.failf("WithShards: shard count must be >= 1, got %d", n)
			return
		}
		s.opts.Shards = n
	}
}

// WithBoundaryPolicy selects what happens to riders whose patience
// radius crosses a shard frontier in a sharded run: StrictOwnership
// (the default) always admits an order to the shard owning its pickup
// region; CandidateBorrow lets a frontier order be admitted by a
// neighbouring shard with available drivers in reach when the owner
// has none. No effect without WithShards.
func WithBoundaryPolicy(p BoundaryPolicy) Option {
	return func(s *Service) {
		switch p {
		case StrictOwnership:
			s.opts.Borrow = false
		case CandidateBorrow:
			s.opts.Borrow = true
		default:
			s.failf("WithBoundaryPolicy: unknown policy %d", p)
		}
	}
}

// WithShardCosters gives each shard of a sharded run its own coster
// instance — e.g. one road-network coster per shard, so their tree
// caches don't contend and /v1/stats can report per-shard cache
// counters (see GraphCosters). Every instance must price identically
// or shards would disagree about travel times. No effect without
// WithShards.
func WithShardCosters(f func(shard int) Coster) Option {
	return func(s *Service) {
		if f == nil {
			s.failf("WithShardCosters: nil factory (omit the option instead)")
			return
		}
		s.opts.ShardCosters = f
	}
}

// WithObservability wires the metrics registry and/or order-lifecycle
// tracer into every run and serve session of the service: dispatch
// phase timings, terminal-outcome counters, pool search counters and
// coster cache counters land in reg (scrape with reg.WriteText or the
// gateway's /metrics), and every order that reaches a terminal state
// emits one JSON span to tracer. Either may be nil to enable just the
// other. Unlike WithObserver this layer is engine-internal and adds
// only a nil check per hook when disabled — omitting the option keeps
// runs byte-identical to an uninstrumented build. The registry and
// tracer are safe to share across shards and concurrent sessions.
func WithObservability(reg *MetricsRegistry, tracer *SpanTracer) Option {
	return func(s *Service) {
		if reg == nil && tracer == nil {
			s.failf("WithObservability: nil registry and tracer (omit the option instead)")
			return
		}
		s.opts.Obs.Registry = reg
		s.opts.Obs.Tracer = tracer
	}
}

// WithObserver subscribes an event observer to every run: batch starts,
// assignments, expiries and repositions stream out as they happen
// instead of being scraped from Metrics afterwards. Compose several with
// sim.Observers.
func WithObserver(o Observer) Option {
	return func(s *Service) {
		if o == nil {
			s.failf("WithObserver: nil observer (omit the option instead)")
			return
		}
		s.opts.Observer = o
	}
}

// WithRepositioner enables active repositioning of drivers idle longer
// than afterSeconds (0 keeps the 300s default threshold).
func WithRepositioner(r Repositioner, afterSeconds float64) Option {
	return func(s *Service) {
		if r == nil {
			s.failf("WithRepositioner: nil repositioner (omit the option instead)")
			return
		}
		if afterSeconds < 0 || math.IsNaN(afterSeconds) {
			s.failf("WithRepositioner: idle threshold must be >= 0, got %v", afterSeconds)
			return
		}
		s.opts.Repositioner = r
		s.opts.RepositionAfter = afterSeconds
	}
}

// WithOrders replays an external trace (e.g. a converted TLC extract)
// instead of generating one from the city. starts may be nil to sample
// driver start positions from the trace's pickups.
func WithOrders(orders []Order, starts []Point) Option {
	return func(s *Service) {
		if orders == nil {
			s.failf("WithOrders: nil trace (omit the option to generate one)")
			return
		}
		for i, o := range orders {
			if err := o.Valid(); err != nil {
				s.failf("WithOrders: order %d: %v", i, err)
				return
			}
		}
		s.orders, s.starts = orders, starts
	}
}

// WithOptions overlays a full core options struct — an escape hatch for
// callers migrating from the Runner API. Later With options still apply
// on top. The struct is taken verbatim (zero fields mean defaults), so
// it bypasses per-option validation.
func WithOptions(opts Options) Option { return func(s *Service) { s.opts = opts } }

// NewService builds a Service; zero options give the quickstart default:
// a scaled NYC-like city, 100 drivers, the paper's batch timing and
// oracle demand forecasts. Invalid option arguments (non-positive fleet,
// nil coster, a model-prediction mode without a model) are reported
// here, joined, instead of failing deep inside the engine; the returned
// Service is non-nil but refuses to run while invalid.
func NewService(opts ...Option) (*Service, error) {
	s := &Service{mode: PredictOracle}
	for _, o := range opts {
		o(s)
	}
	return s, errors.Join(s.errs...)
}

// Err returns the joined option-validation errors, nil when the service
// is runnable. Every entry point (Run, Serve, Start, Sweep) fails fast
// with this error, so ignoring NewService's error cannot smuggle an
// invalid configuration into the engine.
func (s *Service) Err() error { return errors.Join(s.errs...) }

// Options returns the service's (not yet defaulted) runner options.
func (s *Service) Options() Options { return s.opts }

// newRunner materializes a problem instance for one run.
func (s *Service) newRunner(seed int64) *Runner {
	opts := s.opts
	opts.Seed = seed
	if s.orders != nil {
		return core.NewRunnerForTrace(opts, s.orders, s.starts)
	}
	return core.NewRunner(opts)
}

// Run simulates one full trace — generated from the city, or the
// WithOrders replay — under the named algorithm and returns its metrics.
// The context cancels the run between batches. With WithShards the
// trace runs on the partitioned multi-engine runtime and the returned
// metrics aggregate every shard.
func (s *Service) Run(ctx context.Context, algorithm string) (*Metrics, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	if s.opts.Shards > 0 {
		if _, err := core.NewDispatcher(algorithm, s.opts.Seed); err != nil {
			return nil, err
		}
		return s.newRunner(s.opts.Seed).RunSharded(ctx, algorithm, s.mode, s.model)
	}
	d, err := core.NewDispatcher(algorithm, s.opts.Seed)
	if err != nil {
		return nil, err
	}
	return s.newRunner(s.opts.Seed).Run(ctx, d, s.mode, s.model)
}

// Runner exposes the materialized problem instance for callers that need
// the lower-level API (history sharing, trained predictors).
func (s *Service) Runner() *Runner { return s.newRunner(s.opts.Seed) }

// Serve dispatches a live order stream: orders arrive through src —
// typically a ChannelSource fed by concurrent Submit calls — and the
// run ends at the horizon, on ctx cancellation, or once src is closed,
// drained and every trip completed. starts positions the fleet; nil
// samples starts the way Run does. Producers stamping PostTime off the
// wall clock need WithPace.
func (s *Service) Serve(ctx context.Context, algorithm string, src OrderSource, starts []Point) (*Metrics, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("mrvd: Serve requires an OrderSource")
	}
	if s.opts.Shards > 0 {
		if _, err := core.NewDispatcher(algorithm, s.opts.Seed); err != nil {
			return nil, err
		}
		rt, err := s.serveRunner(starts).ShardSession(src, starts, s.mode, s.model)
		if err != nil {
			return nil, err
		}
		return rt.Run(ctx, core.ShardDispatchers(algorithm, s.opts.Seed, s.opts.Shards))
	}
	d, err := core.NewDispatcher(algorithm, s.opts.Seed)
	if err != nil {
		return nil, err
	}
	return s.serveRunner(starts).RunSource(ctx, d, s.mode, s.model, src, starts)
}

// serveRunner materializes the instance a live serve session runs on.
func (s *Service) serveRunner(starts []Point) *Runner {
	if starts != nil && s.orders == nil {
		// With an explicit fleet there is no reason to materialize a
		// synthetic day trace the streaming run would never read.
		return core.NewRunnerWithOrders(s.opts, nil, starts)
	}
	// A nil starts falls through to the runner's own sampled fleet.
	return s.newRunner(s.opts.Seed)
}

// SweepSpec re-exports the grid description of core.Sweep.
type SweepSpec = core.SweepSpec

// SweepPoint identifies one sweep cell.
type SweepPoint = core.SweepPoint

// SweepResult is one completed sweep cell.
type SweepResult = core.SweepResult

// Sweep runs every (algorithm × seed × fleet-size) combination of the
// spec in parallel on a bounded worker pool, reusing per-seed history
// and trained predictors across cells. Results are in grid order and
// deterministic: a parallel sweep's Metrics.Summary values are identical
// to a sequential (Workers: 1) sweep's.
//
// The spec's Mode and Model are used verbatim (the zero Mode is
// PredictNone) — they deliberately do not inherit WithPrediction, so an
// explicit no-prediction sweep is always expressible regardless of how
// the service is configured. A WithOrders trace (and its explicit
// starts, if any) does carry over: every cell replays it. Per-run hooks
// do not: the cells run unobserved and unpaced, since a shared Observer
// would race across workers and pacing would throttle each cell to
// wall-clock speed.
func (s *Service) Sweep(ctx context.Context, spec SweepSpec) ([]SweepResult, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	if spec.Orders == nil {
		spec.Orders, spec.Starts = s.orders, s.starts
	}
	return core.Sweep(ctx, s.opts, spec)
}

// OutcomeStatus is the terminal state of an order submitted through a
// ServeHandle.
type OutcomeStatus uint8

// Outcome statuses.
const (
	// OutcomeAssigned: a driver was dispatched to the order.
	OutcomeAssigned OutcomeStatus = iota + 1
	// OutcomeExpired: the rider reneged past its pickup deadline.
	OutcomeExpired
	// OutcomeCanceled: the serve session ended (context cancellation,
	// horizon, or drain) before the order reached a terminal state.
	OutcomeCanceled
	// OutcomeCanceledByRider: the rider canceled the order before
	// assignment — an explicit ServeHandle.Cancel / DELETE
	// /v1/orders/{id}, or the scenario's stochastic patience model.
	OutcomeCanceledByRider
)

// String names the status for logs and JSON payloads.
func (s OutcomeStatus) String() string {
	switch s {
	case OutcomeAssigned:
		return "assigned"
	case OutcomeExpired:
		return "expired"
	case OutcomeCanceled:
		return "canceled"
	case OutcomeCanceledByRider:
		return "canceled_by_rider"
	default:
		return "pending"
	}
}

// Outcome is the terminal result of one submitted order: the dispatch
// decision a production platform would push back to the rider's device.
// Times are engine seconds.
type Outcome struct {
	Order  OrderID
	Status OutcomeStatus
	// Assigned-only fields.
	Driver     DriverID
	AssignedAt float64 // batch time of the assignment
	PickedAt   float64 // when the driver reaches the pickup
	FreeAt     float64 // when the trip completes
	PickupCost float64 // deadhead seconds to the pickup
	Revenue    float64 // trip cost, the order's revenue at alpha=1
	// Shared marks a pooled insertion into another trip's route plan;
	// DetourSeconds is its planned detour beyond the direct trip
	// (assigned-only, zero for solo trips and with pooling off).
	Shared        bool
	DetourSeconds float64
	// ExpiredAt is the batch time the rider reneged (expired-only).
	ExpiredAt float64
	// CanceledAt is the batch time a rider-initiated cancellation was
	// applied (canceled_by_rider only).
	CanceledAt float64
}

// Submit error conditions a caller dispatches on (errors.Is).
var (
	// ErrServeFinished: the serve session has ended; no further orders
	// are accepted.
	ErrServeFinished = errors.New("mrvd: serve session finished")
	// ErrQueueFull: the session's in-flight limit is reached; the
	// caller should shed load (the HTTP gateway answers 429).
	ErrQueueFull = errors.New("mrvd: in-flight order limit reached")
	// ErrUnknownOrder: Cancel named an order this session does not have
	// in flight — never submitted, or already resolved.
	ErrUnknownOrder = errors.New("mrvd: order unknown or already resolved")
)

// ServeHandle is a live serve session started with Service.Start. It
// owns the session's ChannelSource and routes engine events back to
// per-order waiters, so callers — the HTTP gateway above all — can
// await each order's outcome instead of only the run's final Metrics.
// All methods are safe for concurrent use.
type ServeHandle struct {
	src    *ChannelSource
	cancel context.CancelFunc
	done   chan struct{}

	clockBits atomic.Uint64 // engine time of the latest batch

	mu      sync.Mutex
	nextID  OrderID
	limit   int
	waiters map[OrderID]chan Outcome

	// shardStats reads the live per-shard counters of a sharded
	// session; nil for unsharded sessions.
	shardStats func() []shard.Stats

	// Written once by the serve goroutine before done closes.
	metrics *Metrics
	err     error
}

// Start begins a live serve session and returns immediately with its
// handle: the engine runs Serve on an internal ChannelSource in a
// background goroutine while producers feed it through handle.Submit.
// starts positions the fleet the way Serve does (nil samples from the
// instance). Extra observers — a state store, an event broadcaster —
// are subscribed for this session only and run before the handle's own
// outcome routing (then the service-level WithObserver), so by the
// time an awaited Outcome wakes its submitter every session observer
// has already folded the event — a client that long-polled an
// assignment reads its own write from the state store. Like every
// observer they run inline on the engine goroutine and must be fast.
//
// The session ends when ctx is canceled, the horizon is reached, or —
// after Close — the submitted stream drains; Result blocks for the
// final metrics. Producers stamping PostTime off the wall clock need
// WithPace (see Serve); gateways should instead stamp off Clock.
func (s *Service) Start(ctx context.Context, algorithm string, starts []Point, observers ...Observer) (*ServeHandle, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	// Fail fast on an unknown algorithm: the serve goroutine would only
	// surface it through Result, long after the caller wired a gateway.
	if _, err := core.NewDispatcher(algorithm, s.opts.Seed); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	h := &ServeHandle{
		src:     NewChannelSource(),
		cancel:  cancel,
		done:    make(chan struct{}),
		waiters: make(map[OrderID]chan Outcome),
	}
	obs := make(Observers, 0, len(observers)+2)
	obs = append(obs, observers...)
	obs = append(obs, h.observer())
	if s.opts.Observer != nil {
		obs = append(obs, s.opts.Observer)
	}
	run := *s
	run.opts.Observer = obs
	if run.opts.Shards > 0 {
		// Build the sharded session synchronously so the handle can
		// expose per-shard stats while it runs; only the lockstep loop
		// itself goes to the background goroutine.
		rt, err := run.serveRunner(starts).ShardSession(h.src, starts, run.mode, run.model)
		if err != nil {
			cancel()
			return nil, err
		}
		h.shardStats = rt.Stats
		go func() {
			m, err := rt.Run(ctx, core.ShardDispatchers(algorithm, run.opts.Seed, run.opts.Shards))
			h.finish(m, err)
			cancel()
		}()
		return h, nil
	}
	go func() {
		m, err := run.Serve(ctx, algorithm, h.src, starts)
		h.finish(m, err)
		cancel()
	}()
	return h, nil
}

// observer routes engine events into the handle: the batch clock for
// Clock, assignment and expiry events to their order's waiter.
func (h *ServeHandle) observer() Observer {
	return ObserverFuncs{
		BatchStart: func(e BatchStartEvent) {
			h.clockBits.Store(math.Float64bits(e.Now))
		},
		Assigned: func(e AssignedEvent) {
			h.resolve(e.Rider.Order.ID, Outcome{
				Order:         e.Rider.Order.ID,
				Status:        OutcomeAssigned,
				Driver:        e.Driver,
				AssignedAt:    e.Now,
				PickedAt:      e.Rider.PickedAt,
				FreeAt:        e.FreeAt,
				PickupCost:    e.PickupCost,
				Revenue:       e.Revenue,
				Shared:        e.Shared,
				DetourSeconds: e.DetourSeconds,
			})
		},
		Expired: func(e ExpiredEvent) {
			h.resolve(e.Rider.Order.ID, Outcome{
				Order:     e.Rider.Order.ID,
				Status:    OutcomeExpired,
				ExpiredAt: e.Now,
			})
		},
		Canceled: func(e CanceledEvent) {
			h.resolve(e.Rider.Order.ID, Outcome{
				Order:      e.Rider.Order.ID,
				Status:     OutcomeCanceledByRider,
				CanceledAt: e.Now,
			})
		},
	}
}

func (h *ServeHandle) resolve(id OrderID, out Outcome) {
	h.mu.Lock()
	ch := h.waiters[id]
	delete(h.waiters, id)
	h.mu.Unlock()
	if ch != nil {
		ch <- out // buffered; never blocks the engine goroutine
		close(ch)
	}
}

// finish publishes the session result and cancels every waiter still
// in flight. It runs on the serve goroutine, once.
func (h *ServeHandle) finish(m *Metrics, err error) {
	h.mu.Lock()
	h.metrics, h.err = m, err
	ws := h.waiters
	h.waiters = nil // Submit fails from here on
	h.mu.Unlock()
	for id, ch := range ws {
		ch <- Outcome{Order: id, Status: OutcomeCanceled}
		close(ch)
	}
	close(h.done)
}

// Submit enqueues one order for dispatch and returns the session-unique
// id assigned to it plus a single-use channel that receives the order's
// terminal Outcome (assigned, expired, or canceled when the session
// ends first) and is then closed. The submitted order's ID field is
// overwritten with the assigned id; PostTime and Deadline are taken
// verbatim — live producers should stamp PostTime at or near Clock so
// the order's patience starts from the engine's present, not its past.
func (h *ServeHandle) Submit(o Order) (OrderID, <-chan Outcome, error) {
	h.mu.Lock()
	if h.waiters == nil {
		h.mu.Unlock()
		return 0, nil, ErrServeFinished
	}
	// The bound check and the registration share one critical section,
	// so the in-flight limit holds exactly under concurrent Submit —
	// a check-then-act against InFlight() would overshoot.
	if h.limit > 0 && len(h.waiters) >= h.limit {
		h.mu.Unlock()
		return 0, nil, ErrQueueFull
	}
	id := h.nextID
	h.nextID++
	o.ID = id
	ch := make(chan Outcome, 1)
	h.waiters[id] = ch
	h.mu.Unlock()
	if err := h.src.Submit(o); err != nil {
		h.mu.Lock()
		if h.waiters != nil {
			delete(h.waiters, id)
		}
		h.mu.Unlock()
		// A Close-d source while the session drains is the session
		// going away, not the order's fault — surface it as such.
		if errors.Is(err, sim.ErrSourceClosed) {
			return 0, nil, ErrServeFinished
		}
		return 0, nil, err
	}
	return id, ch, nil
}

// Cancel requests a rider-initiated cancellation of an in-flight order.
// The cancel is applied by the engine at its next batch: if the order
// is still waiting (or not yet admitted) its waiter resolves with
// OutcomeCanceledByRider; if a driver was assigned in the meantime the
// cancel loses the race and the waiter resolves assigned — exactly the
// race a production platform adjudicates. Cancel itself only validates
// that the order is in flight: ErrUnknownOrder for ids this session
// never issued or already resolved, ErrServeFinished after the session
// ends.
func (h *ServeHandle) Cancel(id OrderID) error {
	h.mu.Lock()
	if h.waiters == nil {
		h.mu.Unlock()
		return ErrServeFinished
	}
	if _, ok := h.waiters[id]; !ok {
		h.mu.Unlock()
		return ErrUnknownOrder
	}
	h.mu.Unlock()
	h.src.Cancel(id)
	return nil
}

// Clock returns the engine time of the most recent batch — the stamp a
// gateway should put on incoming orders' PostTime so their patience
// starts at the engine's present regardless of pacing. Before the
// first batch it is 0.
func (h *ServeHandle) Clock() float64 {
	return math.Float64frombits(h.clockBits.Load())
}

// InFlight reports how many submitted orders have not reached a
// terminal outcome yet. After the session ends it reports 0.
func (h *ServeHandle) InFlight() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.waiters)
}

// SetInFlightLimit bounds how many submitted orders may await an
// outcome at once: Submit fails with ErrQueueFull beyond it — the
// admission-control lever behind the gateway's 429s. 0 (the default)
// is unbounded.
func (h *ServeHandle) SetInFlightLimit(n int) {
	h.mu.Lock()
	h.limit = n
	h.mu.Unlock()
}

// Pending reports how many submitted orders the source has not yet
// released into the engine.
func (h *ServeHandle) Pending() int { return h.src.Pending() }

// ShardStats returns the live per-shard counters of a sharded session
// (one entry per shard: territory, fleet slice, queue depths, batch
// timings, borrow counts), or nil when the session runs unsharded.
// Safe for concurrent use while the session runs.
func (h *ServeHandle) ShardStats() []ShardStats {
	if h.shardStats == nil {
		return nil
	}
	return h.shardStats()
}

// Close marks the order stream complete: already-submitted orders are
// still dispatched, further Submit calls fail, and the session ends
// once the stream drains (every rider terminal, every driver free).
// Close is idempotent and does not wait; use Result to.
func (h *ServeHandle) Close() { h.src.Close() }

// Stop cancels the session's context: the engine exits between batches
// and every in-flight order resolves to OutcomeCanceled. Stop does not
// wait; use Result to.
func (h *ServeHandle) Stop() { h.cancel() }

// Done is closed once the session has fully finished: the engine
// goroutine has exited and every waiter is resolved.
func (h *ServeHandle) Done() <-chan struct{} { return h.done }

// Result blocks until the session finishes and returns its final
// metrics. A session stopped by context cancellation returns the
// context's error (wrapped) and no metrics, matching Serve.
func (h *ServeHandle) Result() (*Metrics, error) {
	<-h.done
	return h.metrics, h.err
}
