package mrvd

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mrvd/internal/dispatch"
)

func TestServiceOptionDefaulting(t *testing.T) {
	// A zero-option service defaults exactly like the documented Options
	// defaults (Table 2's parameters).
	svc := NewService()
	o := svc.Options().WithDefaults()
	if o.NumDrivers != 100 {
		t.Errorf("default fleet = %d, want 100", o.NumDrivers)
	}
	if o.Delta != 3 || o.TC != 1200 || o.Horizon != 24*3600 {
		t.Errorf("default timing = (%v, %v, %v), want (3, 1200, 86400)", o.Delta, o.TC, o.Horizon)
	}
	if o.SlotSeconds != 1800 {
		t.Errorf("default slot = %v, want 1800", o.SlotSeconds)
	}
	if o.City == nil {
		t.Error("default city not materialized")
	}
}

func TestServiceOptionsApply(t *testing.T) {
	city := NewCity(CityConfig{OrdersPerDay: 1000, Seed: 9})
	rep := &dispatch.QueueReposition{}
	obs := ObserverFuncs{}
	svc := NewService(
		WithCity(city),
		WithFleet(42),
		WithBatchInterval(7),
		WithSchedulingWindow(900),
		WithHorizon(7200),
		WithSeed(5),
		WithTrainDays(40),
		WithSlotSeconds(600),
		WithObserver(obs),
		WithRepositioner(rep, 123),
	)
	o := svc.Options()
	if o.City != city || o.NumDrivers != 42 || o.Delta != 7 || o.TC != 900 ||
		o.Horizon != 7200 || o.Seed != 5 || o.TrainDays != 40 || o.SlotSeconds != 600 {
		t.Errorf("options not applied: %+v", o)
	}
	if o.Repositioner != rep || o.RepositionAfter != 123 {
		t.Error("repositioner option not applied")
	}
	if o.Observer == nil {
		t.Error("observer option not applied")
	}
	// WithOptions overlays wholesale; later options still win.
	svc2 := NewService(WithOptions(o), WithFleet(7))
	if got := svc2.Options(); got.NumDrivers != 7 || got.Delta != 7 {
		t.Errorf("WithOptions overlay broken: %+v", got)
	}
}

func TestServiceRunUnknownAlgorithm(t *testing.T) {
	svc := NewService(WithCity(NewCity(CityConfig{OrdersPerDay: 100, Seed: 1})))
	if _, err := svc.Run(context.Background(), "BOGUS"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestServiceRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	svc := NewService(
		WithCity(NewCity(CityConfig{OrdersPerDay: 1000, Seed: 1})),
		WithFleet(10),
		WithHorizon(3600),
	)
	if _, err := svc.Run(ctx, "NEAR"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestServiceServeChannelSource(t *testing.T) {
	city := NewCity(CityConfig{OrdersPerDay: 1000, Seed: 3})
	svc := NewService(
		WithCity(city),
		WithFleet(15),
		WithBatchInterval(5),
		WithHorizon(6*3600),
		WithPrediction(PredictNone, nil),
	)
	src := NewChannelSource()
	grid := city.Grid()
	c := grid.Bounds().Center()
	for i := 0; i < 20; i++ {
		post := float64(i * 10)
		err := src.Submit(Order{
			ID: OrderID(i), PostTime: post,
			Pickup:   Point{Lng: c.Lng + float64(i%5)*1e-3, Lat: c.Lat},
			Dropoff:  Point{Lng: c.Lng, Lat: c.Lat + 0.01},
			Deadline: post + 300,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	m, err := svc.Serve(context.Background(), "NEAR", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalOrders != 20 {
		t.Fatalf("TotalOrders = %d, want 20", m.TotalOrders)
	}
	if m.Served+m.Reneged != 20 {
		t.Fatalf("outcomes %d+%d, want 20", m.Served, m.Reneged)
	}
	// Drained exit fired well before the 6h horizon.
	if float64(m.Batches)*5 >= 6*3600 {
		t.Errorf("Serve ran to the horizon (%d batches)", m.Batches)
	}
}

func TestServiceSweepDeterministicAcrossWorkers(t *testing.T) {
	svc := NewService(
		WithCity(NewCity(CityConfig{OrdersPerDay: 3000, Seed: 2})),
		WithHorizon(2*3600),
		WithBatchInterval(10),
	)
	spec := SweepSpec{
		Algorithms: []string{"NEAR", "RAND"},
		Seeds:      []int64{1, 2},
		Fleets:     []int{10, 20},
	}
	seq := spec
	seq.Workers = 1
	par := spec
	par.Workers = 8
	a, err := svc.Sweep(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Sweep(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("cell errors: %v / %v", a[i].Err, b[i].Err)
		}
		sa := fmt.Sprintf("%+v", a[i].Metrics.Summary())
		sb := fmt.Sprintf("%+v", b[i].Metrics.Summary())
		if sa != sb {
			t.Errorf("cell %+v diverged:\nseq: %s\npar: %s", a[i].SweepPoint, sa, sb)
		}
	}
}

func TestServiceObserverSeesRun(t *testing.T) {
	var batches, assigned int
	svc := NewService(
		WithCity(NewCity(CityConfig{OrdersPerDay: 2000, Seed: 4})),
		WithFleet(20),
		WithBatchInterval(10),
		WithHorizon(2*3600),
		WithObserver(ObserverFuncs{
			BatchStart: func(BatchStartEvent) { batches++ },
			Assigned:   func(AssignedEvent) { assigned++ },
		}),
	)
	m, err := svc.Run(context.Background(), "NEAR")
	if err != nil {
		t.Fatal(err)
	}
	if batches != m.Batches {
		t.Errorf("observer batches %d != metrics %d", batches, m.Batches)
	}
	if assigned != m.Served {
		t.Errorf("observer assignments %d != served %d", assigned, m.Served)
	}
}
