package mrvd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrvd/internal/dispatch"
)

// mustService builds a service that must be valid.
func mustService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	svc, err := NewService(opts...)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return svc
}

func TestServiceOptionDefaulting(t *testing.T) {
	// A zero-option service defaults exactly like the documented Options
	// defaults (Table 2's parameters).
	svc := mustService(t)
	o := svc.Options().WithDefaults()
	if o.NumDrivers != 100 {
		t.Errorf("default fleet = %d, want 100", o.NumDrivers)
	}
	if o.Delta != 3 || o.TC != 1200 || o.Horizon != 24*3600 {
		t.Errorf("default timing = (%v, %v, %v), want (3, 1200, 86400)", o.Delta, o.TC, o.Horizon)
	}
	if o.SlotSeconds != 1800 {
		t.Errorf("default slot = %v, want 1800", o.SlotSeconds)
	}
	if o.City == nil {
		t.Error("default city not materialized")
	}
}

func TestServiceOptionsApply(t *testing.T) {
	city := NewCity(CityConfig{OrdersPerDay: 1000, Seed: 9})
	rep := &dispatch.QueueReposition{}
	obs := ObserverFuncs{}
	svc := mustService(t,
		WithCity(city),
		WithFleet(42),
		WithBatchInterval(7),
		WithSchedulingWindow(900),
		WithHorizon(7200),
		WithSeed(5),
		WithTrainDays(40),
		WithSlotSeconds(600),
		WithObserver(obs),
		WithRepositioner(rep, 123),
	)
	o := svc.Options()
	if o.City != city || o.NumDrivers != 42 || o.Delta != 7 || o.TC != 900 ||
		o.Horizon != 7200 || o.Seed != 5 || o.TrainDays != 40 || o.SlotSeconds != 600 {
		t.Errorf("options not applied: %+v", o)
	}
	if o.Repositioner != rep || o.RepositionAfter != 123 {
		t.Error("repositioner option not applied")
	}
	if o.Observer == nil {
		t.Error("observer option not applied")
	}
	// WithOptions overlays wholesale; later options still win.
	svc2 := mustService(t, WithOptions(o), WithFleet(7))
	if got := svc2.Options(); got.NumDrivers != 7 || got.Delta != 7 {
		t.Errorf("WithOptions overlay broken: %+v", got)
	}
}

func TestServiceOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		want string
	}{
		{"fleet zero", WithFleet(0), "WithFleet"},
		{"fleet negative", WithFleet(-5), "WithFleet"},
		{"nil coster", WithCoster(nil), "WithCoster"},
		{"nil city", WithCity(nil), "WithCity"},
		{"batch interval", WithBatchInterval(0), "WithBatchInterval"},
		{"scheduling window", WithSchedulingWindow(-1), "WithSchedulingWindow"},
		{"horizon", WithHorizon(0), "WithHorizon"},
		{"train days", WithTrainDays(0), "WithTrainDays"},
		{"slot seconds", WithSlotSeconds(-2), "WithSlotSeconds"},
		{"pace", WithPace(-1), "WithPace"},
		{"model without predictor", WithPrediction(PredictModel, nil), "WithPrediction"},
		{"nil observer", WithObserver(nil), "WithObserver"},
		{"nil repositioner", WithRepositioner(nil, 0), "WithRepositioner"},
		{"nil orders", WithOrders(nil, nil), "WithOrders"},
		{"invalid order", WithOrders([]Order{{PostTime: 10, Deadline: 5}}, nil), "WithOrders"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc, err := NewService(tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("NewService err = %v, want mention of %s", err, tc.want)
			}
			// The invalid configuration also refuses to run, even if the
			// construction error was ignored.
			if _, runErr := svc.Run(context.Background(), "NEAR"); runErr == nil {
				t.Error("Run accepted an invalid service")
			}
			if _, serveErr := svc.Serve(context.Background(), "NEAR", NewChannelSource(), nil); serveErr == nil {
				t.Error("Serve accepted an invalid service")
			}
			if _, startErr := svc.Start(context.Background(), "NEAR", nil); startErr == nil {
				t.Error("Start accepted an invalid service")
			}
			if _, sweepErr := svc.Sweep(context.Background(), SweepSpec{Algorithms: []string{"NEAR"}, Seeds: []int64{1}, Fleets: []int{5}}); sweepErr == nil {
				t.Error("Sweep accepted an invalid service")
			}
		})
	}
	// Several invalid options join into one error mentioning each.
	_, err := NewService(WithFleet(0), WithCoster(nil))
	if err == nil || !strings.Contains(err.Error(), "WithFleet") || !strings.Contains(err.Error(), "WithCoster") {
		t.Errorf("joined validation error = %v", err)
	}
}

func TestServiceRunUnknownAlgorithm(t *testing.T) {
	svc := mustService(t, WithCity(NewCity(CityConfig{OrdersPerDay: 100, Seed: 1})))
	if _, err := svc.Run(context.Background(), "BOGUS"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := svc.Start(context.Background(), "BOGUS", nil); err == nil {
		t.Error("Start accepted unknown algorithm")
	}
}

func TestServiceRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	svc := mustService(t,
		WithCity(NewCity(CityConfig{OrdersPerDay: 1000, Seed: 1})),
		WithFleet(10),
		WithHorizon(3600),
	)
	if _, err := svc.Run(ctx, "NEAR"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestServiceServeChannelSource(t *testing.T) {
	city := NewCity(CityConfig{OrdersPerDay: 1000, Seed: 3})
	svc := mustService(t,
		WithCity(city),
		WithFleet(15),
		WithBatchInterval(5),
		WithHorizon(6*3600),
		WithPrediction(PredictNone, nil),
	)
	src := NewChannelSource()
	grid := city.Grid()
	c := grid.Bounds().Center()
	for i := 0; i < 20; i++ {
		post := float64(i * 10)
		err := src.Submit(Order{
			ID: OrderID(i), PostTime: post,
			Pickup:   Point{Lng: c.Lng + float64(i%5)*1e-3, Lat: c.Lat},
			Dropoff:  Point{Lng: c.Lng, Lat: c.Lat + 0.01},
			Deadline: post + 300,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	m, err := svc.Serve(context.Background(), "NEAR", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalOrders != 20 {
		t.Fatalf("TotalOrders = %d, want 20", m.TotalOrders)
	}
	if m.Served+m.Reneged != 20 {
		t.Fatalf("outcomes %d+%d, want 20", m.Served, m.Reneged)
	}
	// Drained exit fired well before the 6h horizon.
	if float64(m.Batches)*5 >= 6*3600 {
		t.Errorf("Serve ran to the horizon (%d batches)", m.Batches)
	}
}

func TestServiceSweepDeterministicAcrossWorkers(t *testing.T) {
	svc := mustService(t,
		WithCity(NewCity(CityConfig{OrdersPerDay: 3000, Seed: 2})),
		WithHorizon(2*3600),
		WithBatchInterval(10),
	)
	spec := SweepSpec{
		Algorithms: []string{"NEAR", "RAND"},
		Seeds:      []int64{1, 2},
		Fleets:     []int{10, 20},
	}
	seq := spec
	seq.Workers = 1
	par := spec
	par.Workers = 8
	a, err := svc.Sweep(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Sweep(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("cell errors: %v / %v", a[i].Err, b[i].Err)
		}
		sa := fmt.Sprintf("%+v", a[i].Metrics.Summary())
		sb := fmt.Sprintf("%+v", b[i].Metrics.Summary())
		if sa != sb {
			t.Errorf("cell %+v diverged:\nseq: %s\npar: %s", a[i].SweepPoint, sa, sb)
		}
	}
}

func TestServiceObserverSeesRun(t *testing.T) {
	var batches, assigned int
	svc := mustService(t,
		WithCity(NewCity(CityConfig{OrdersPerDay: 2000, Seed: 4})),
		WithFleet(20),
		WithBatchInterval(10),
		WithHorizon(2*3600),
		WithObserver(ObserverFuncs{
			BatchStart: func(BatchStartEvent) { batches++ },
			Assigned:   func(AssignedEvent) { assigned++ },
		}),
	)
	m, err := svc.Run(context.Background(), "NEAR")
	if err != nil {
		t.Fatal(err)
	}
	if batches != m.Batches {
		t.Errorf("observer batches %d != metrics %d", batches, m.Batches)
	}
	if assigned != m.Served {
		t.Errorf("observer assignments %d != served %d", assigned, m.Served)
	}
}

// --- Service.Start / ServeHandle ---

// startTestService builds a small live-serve service: free-running
// engine, generous horizon, a fleet parked around the city center.
func startTestService(t *testing.T, fleet int) (*Service, []Point) {
	t.Helper()
	city := NewCity(CityConfig{OrdersPerDay: 1000, Seed: 6})
	svc := mustService(t,
		WithCity(city),
		WithFleet(fleet),
		WithBatchInterval(3),
		WithHorizon(30*24*3600),
		WithPrediction(PredictNone, nil),
	)
	c := city.Grid().Bounds().Center()
	starts := make([]Point, fleet)
	for i := range starts {
		starts[i] = Point{Lng: c.Lng + float64(i%7)*1e-3, Lat: c.Lat + float64(i%5)*1e-3}
	}
	return svc, starts
}

// submitAt builds an order posted at the handle's current engine clock
// with the given patience.
func submitAt(h *ServeHandle, patience float64) (OrderID, <-chan Outcome, error) {
	now := h.Clock()
	return h.Submit(Order{
		PostTime: now,
		Pickup:   Point{Lng: -73.97, Lat: 40.75},
		Dropoff:  Point{Lng: -73.95, Lat: 40.77},
		Deadline: now + patience,
	})
}

func TestServeHandleSubmitAwaitsOutcome(t *testing.T) {
	svc, starts := startTestService(t, 30)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[OrderID]bool)
	for i := 0; i < 25; i++ {
		id, ch, err := submitAt(h, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		if ids[id] {
			t.Fatalf("duplicate assigned id %d", id)
		}
		ids[id] = true
		select {
		case out := <-ch:
			if out.Order != id {
				t.Fatalf("outcome for order %d, want %d", out.Order, id)
			}
			if out.Status != OutcomeAssigned {
				t.Fatalf("order %d status %v, want assigned", id, out.Status)
			}
			if out.Revenue <= 0 || out.FreeAt < out.AssignedAt {
				t.Fatalf("implausible outcome %+v", out)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("outcome never arrived")
		}
	}
	h.Close()
	// A submit racing the drain surfaces as the session going away —
	// ErrServeFinished whether the source already closed (translated
	// from the ChannelSource) or the session fully finished.
	if _, _, err := submitAt(h, 100); !errors.Is(err, ErrServeFinished) {
		t.Errorf("Submit during drain = %v, want ErrServeFinished", err)
	}
	m, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 25 {
		t.Errorf("served %d, want 25", m.Served)
	}
	if h.InFlight() != 0 {
		t.Errorf("in-flight %d after drain", h.InFlight())
	}
	// Submitting into a finished session fails the same way.
	if _, _, err := submitAt(h, 100); !errors.Is(err, ErrServeFinished) {
		t.Errorf("Submit after session end = %v, want ErrServeFinished", err)
	}
}

func TestServeHandleExpiredOutcome(t *testing.T) {
	svc, starts := startTestService(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	// Patience 0: the order expires at its admitting batch (deadline
	// strictly before the following batch's now).
	id, ch, err := submitAt(h, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-ch:
		if out.Status != OutcomeExpired {
			t.Fatalf("order %d status %v, want expired", id, out.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("outcome never arrived")
	}
	h.Stop()
	<-h.Done()
}

// TestServeHandleConcurrentSubmit exercises the ChannelSource edge the
// gateway depends on: many goroutines submitting into a live Serve.
func TestServeHandleConcurrentSubmit(t *testing.T) {
	svc, starts := startTestService(t, 60)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	outcomes := make(chan Outcome, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, ch, err := submitAt(h, 1e6)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				outcomes <- <-ch
			}
		}()
	}
	wg.Wait()
	close(outcomes)
	seen := make(map[OrderID]bool)
	for out := range outcomes {
		if seen[out.Order] {
			t.Fatalf("order %d resolved twice", out.Order)
		}
		seen[out.Order] = true
		if out.Status != OutcomeAssigned && out.Status != OutcomeExpired {
			t.Fatalf("order %d non-terminal status %v", out.Order, out.Status)
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("resolved %d orders, want %d", len(seen), workers*perWorker)
	}
	h.Close()
	if _, err := h.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestServeHandleCancellationResolvesWaiters pins the shutdown path:
// canceling the session context mid-serve resolves every in-flight
// order to OutcomeCanceled and leaks no goroutines.
func TestServeHandleCancellationResolvesWaiters(t *testing.T) {
	before := runtime.NumGoroutine()
	svc, starts := startTestService(t, 4)
	// Pace the engine hard (1 simulated second per wall second, 3s
	// batches) so submitted orders are still in flight when we cancel.
	paced := mustService(t, WithOptions(svc.Options()), WithPace(1))
	ctx, cancel := context.WithCancel(context.Background())
	h, err := paced.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan Outcome
	for i := 0; i < 10; i++ {
		_, ch, err := submitAt(h, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	cancel()
	if _, err := h.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result err = %v, want context.Canceled", err)
	}
	terminal := 0
	for _, ch := range chans {
		select {
		case out := <-ch:
			if out.Status == OutcomeCanceled {
				terminal++
			} else if out.Status == OutcomeAssigned || out.Status == OutcomeExpired {
				terminal++ // a batch may have resolved it before the cancel
			} else {
				t.Fatalf("unexpected status %v", out.Status)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never resolved after cancel")
		}
	}
	if terminal != len(chans) {
		t.Fatalf("resolved %d waiters, want %d", terminal, len(chans))
	}
	// The serve goroutine must be gone; allow the runtime a moment.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestServeHandleInFlightLimit pins the atomic admission bound: with a
// paced engine (nothing resolves during the test) concurrent submits
// beyond the limit fail with ErrQueueFull and in-flight never
// overshoots.
func TestServeHandleInFlightLimit(t *testing.T) {
	svc, starts := startTestService(t, 4)
	paced := mustService(t, WithOptions(svc.Options()), WithPace(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := paced.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 6
	h.SetInFlightLimit(limit)
	var wg sync.WaitGroup
	var ok, full atomic.Int32
	for i := 0; i < 4*limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := submitAt(h, 1e6)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrQueueFull):
				full.Add(1)
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	wg.Wait()
	// The engine's t=0 batch may assign up to fleet (4) orders during
	// the burst, freeing that many slots — but the raced check itself
	// can never overshoot, and nothing expires (generous patience).
	if got := ok.Load(); got < limit || got > limit+4 {
		t.Errorf("accepted %d submits, want %d..%d", got, limit, limit+4)
	}
	if got, want := full.Load(), 4*int32(limit)-ok.Load(); got != want {
		t.Errorf("ErrQueueFull on %d submits, want %d", got, want)
	}
	if got := h.InFlight(); got > limit {
		t.Errorf("in-flight %d exceeds limit %d", got, limit)
	}
	h.Stop()
	<-h.Done()
	if _, _, err := submitAt(h, 100); !errors.Is(err, ErrServeFinished) {
		t.Errorf("submit after end = %v, want ErrServeFinished", err)
	}
}

func TestServeHandleSubmitInvalidOrder(t *testing.T) {
	svc, starts := startTestService(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline before post time: rejected by the source's validation,
	// and the waiter must not linger as in-flight.
	if _, _, err := h.Submit(Order{PostTime: 100, Deadline: 50}); err == nil {
		t.Error("invalid order accepted")
	}
	if h.InFlight() != 0 {
		t.Errorf("in-flight %d after rejected submit, want 0", h.InFlight())
	}
	h.Stop()
	<-h.Done()
}
