package mrvd

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func TestWithPoolingValidation(t *testing.T) {
	bad := [][2]float64{
		{0, 0},            // capacity below 1
		{-2, 300},         // negative capacity
		{2, -1},           // negative detour
		{2, math.NaN()},   // NaN detour
		{2, math.Inf(1)},  // infinite detour
		{3, math.Inf(-1)}, // negative-infinite detour
	}
	for _, c := range bad {
		if _, err := NewService(WithPooling(int(c[0]), c[1])); err == nil {
			t.Errorf("WithPooling(%v, %v) accepted", int(c[0]), c[1])
		}
	}
	for _, c := range [][2]float64{{1, 0}, {2, 0}, {2, 300}, {8, 45.5}} {
		if _, err := NewService(WithPooling(int(c[0]), c[1])); err != nil {
			t.Errorf("WithPooling(%v, %v) rejected: %v", int(c[0]), c[1], err)
		}
	}
}

// TestServicePoolingOffParity: WithPooling at capacity 1 — pooling
// disabled, whatever the detour knob says — is exactly equivalent to
// omitting the option.
func TestServicePoolingOffParity(t *testing.T) {
	mk := func(opts ...Option) Summary {
		base := []Option{
			WithCity(NewCity(CityConfig{OrdersPerDay: 1500, Seed: 17})),
			WithFleet(40),
			WithHorizon(4 * 3600),
			WithPrediction(PredictNone, nil),
		}
		svc := mustService(t, append(base, opts...)...)
		m, err := svc.Run(context.Background(), "LS")
		if err != nil {
			t.Fatal(err)
		}
		return m.Summary()
	}
	plain := mk()
	for _, opt := range []Option{WithPooling(1, 0), WithPooling(1, 250)} {
		off := mk(opt)
		if plain != off {
			t.Fatalf("disabled WithPooling changed the run:\n  plain: %+v\n  off:   %+v", plain, off)
		}
		if off.SharedServed != 0 || off.DetourSeconds != 0 {
			t.Fatalf("disabled pooling produced pooled counters: %+v", off)
		}
	}
}

// TestServicePoolingMorningPeakServesMore is the subsystem's acceptance
// check end to end through the public API: on the same saturated
// morning-peak instance — one peak hour of a 28K-order day, with a
// fleet far too small to serve it solo — enabling pooling serves
// strictly more orders per driver, and every completed shared ride
// respects the configured detour bound.
func TestServicePoolingMorningPeakServesMore(t *testing.T) {
	city := NewCity(CityConfig{OrdersPerDay: 28000, Seed: 31})
	rng := rand.New(rand.NewSource(9))
	day := city.GenerateDay(0, rng)
	const peakStart, horizon = 25200.0, 3600.0 // 7am-8am
	var orders []Order
	for _, o := range day {
		if o.PostTime >= peakStart && o.PostTime < peakStart+horizon {
			o.PostTime -= peakStart
			o.Deadline -= peakStart
			orders = append(orders, o)
		}
	}
	starts := city.InitialDrivers(60, day, rng)

	const maxDetour = 300.0
	run := func(opts ...Option) (Summary, []float64) {
		var detours []float64
		base := []Option{
			WithCity(city),
			WithOrders(orders, starts),
			WithFleet(len(starts)),
			WithHorizon(horizon),
			WithPrediction(PredictNone, nil),
			WithObserver(ObserverFuncs{
				DroppedOff: func(e DroppedOffEvent) {
					if e.Shared {
						detours = append(detours, e.DetourSeconds)
					}
				},
			}),
		}
		svc := mustService(t, append(base, opts...)...)
		m, err := svc.Run(context.Background(), "POOL")
		if err != nil {
			t.Fatal(err)
		}
		return m.Summary(), detours
	}

	solo, soloDetours := run()
	pooled, detours := run(WithPooling(3, maxDetour))
	if len(soloDetours) != 0 || solo.SharedServed != 0 {
		t.Fatalf("pooling-off run produced shared rides: %+v", solo)
	}
	if pooled.Served <= solo.Served {
		t.Fatalf("pooled peak served %d orders, solo %d; pooling must strictly raise per-driver throughput",
			pooled.Served, solo.Served)
	}
	if pooled.SharedServed == 0 {
		t.Fatalf("pooled peak committed no shared rides: %+v", pooled)
	}
	for _, d := range detours {
		if d > maxDetour+1e-9 {
			t.Fatalf("realized detour %.3fs exceeds the %.0fs bound", d, maxDetour)
		}
	}
	t.Logf("morning peak, %d drivers: solo served %d, pooled served %d (%d shared, mean detour %.1fs)",
		len(starts), solo.Served, pooled.Served, pooled.SharedServed,
		pooled.DetourSeconds/float64(pooled.SharedServed))
}
