package shard

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mrvd/internal/dispatch"
	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/sim"
	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

// testInstance generates a small deterministic problem instance.
func testInstance(t *testing.T, orders, fleet int) ([]trace.Order, []geo.Point, *geo.Grid) {
	t.Helper()
	city := workload.NewCity(workload.CityConfig{OrdersPerDay: orders, Seed: 17})
	rng := rand.New(rand.NewSource(5))
	day := city.GenerateDay(0, rng)
	starts := city.InitialDrivers(fleet, day, rng)
	return day, starts, city.Grid()
}

// eventLog records a scalar projection of every observer event, so two
// runs can be compared for stream-identical behaviour.
type eventLog struct {
	entries []string
}

func (l *eventLog) OnBatchStart(e sim.BatchStartEvent) {
	l.entries = append(l.entries, fmt.Sprintf("batch %d t=%.0f w=%d a=%d", e.Batch, e.Now, e.Waiting, e.Available))
}
func (l *eventLog) OnAssigned(e sim.AssignedEvent) {
	l.entries = append(l.entries, fmt.Sprintf("assign o=%d d=%d t=%.0f pc=%.3f rev=%.3f",
		e.Rider.Order.ID, e.Driver, e.Now, e.PickupCost, e.Revenue))
}
func (l *eventLog) OnExpired(e sim.ExpiredEvent) {
	l.entries = append(l.entries, fmt.Sprintf("expire o=%d t=%.0f", e.Rider.Order.ID, e.Now))
}
func (l *eventLog) OnCanceled(e sim.CanceledEvent) {
	l.entries = append(l.entries, fmt.Sprintf("cancel o=%d t=%.0f explicit=%v", e.Rider.Order.ID, e.Now, e.Explicit))
}
func (l *eventLog) OnDeclined(e sim.DeclinedEvent) {
	l.entries = append(l.entries, fmt.Sprintf("decline o=%d d=%d t=%.0f retry=%.0f", e.Rider.Order.ID, e.Driver, e.Now, e.RetryAt))
}
func (l *eventLog) OnRepositioned(e sim.RepositionedEvent) {
	l.entries = append(l.entries, fmt.Sprintf("repos d=%d t=%.0f", e.Driver, e.Now))
}
func (l *eventLog) OnPickedUp(e sim.PickedUpEvent) {
	l.entries = append(l.entries, fmt.Sprintf("pickup o=%d d=%d t=%.0f", e.Order, e.Driver, e.Now))
}
func (l *eventLog) OnDroppedOff(e sim.DroppedOffEvent) {
	l.entries = append(l.entries, fmt.Sprintf("dropoff o=%d d=%d t=%.0f shared=%v", e.Order, e.Driver, e.Now, e.Shared))
}

// TestOneShardParity is the contract check the issue demands: a 1-shard
// runtime must reproduce the unsharded engine exactly — same metrics
// projection, same idle ledger, same event stream in the same order.
func TestOneShardParity(t *testing.T) {
	orders, starts, grid := testInstance(t, 1500, 40)
	cfg := sim.Config{Grid: grid, Delta: 3, TC: 1200, Horizon: 4 * 3600}

	baseCfg := cfg
	baseLog := &eventLog{}
	baseCfg.Observer = baseLog
	base, err := sim.New(baseCfg, orders, starts).Run(context.Background(), &dispatch.IRG{})
	if err != nil {
		t.Fatal(err)
	}

	shardCfg := cfg
	shardLog := &eventLog{}
	shardCfg.Observer = shardLog
	rt, err := New(Config{Sim: shardCfg, Shards: 1}, sim.NewSliceSource(orders), starts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
		return &dispatch.IRG{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if base.Summary() != sharded.Summary() {
		t.Fatalf("summaries differ:\n  unsharded: %+v\n  1-shard:   %+v", base.Summary(), sharded.Summary())
	}
	if !reflect.DeepEqual(base.IdleRecords, sharded.IdleRecords) {
		t.Fatalf("idle ledgers differ: %d vs %d records", len(base.IdleRecords), len(sharded.IdleRecords))
	}
	if len(base.BatchSeconds) != len(sharded.BatchSeconds) {
		t.Fatalf("batch counts differ: %d vs %d", len(base.BatchSeconds), len(sharded.BatchSeconds))
	}
	if !reflect.DeepEqual(baseLog.entries, shardLog.entries) {
		for i := range baseLog.entries {
			if i >= len(shardLog.entries) || baseLog.entries[i] != shardLog.entries[i] {
				t.Fatalf("event streams diverge at %d:\n  unsharded: %s\n  1-shard:   %s",
					i, baseLog.entries[i], shardLog.entries[i])
			}
		}
		t.Fatalf("event stream lengths differ: %d vs %d", len(baseLog.entries), len(shardLog.entries))
	}
	if sharded.TotalOrders != len(orders) {
		t.Fatalf("TotalOrders = %d, want the full trace %d", sharded.TotalOrders, len(orders))
	}
}

// TestOneShardScenarioParity extends the parity contract to the
// disruption layer: with scenarios enabled (cancellations, declines,
// travel noise) a 1-shard runtime must still reproduce the unsharded
// engine event for event — the scenario RNG stream, the cancel/decline
// draws and the noise perturbations all line up because a 1-shard
// runtime keeps the parent scenario seed.
func TestOneShardScenarioParity(t *testing.T) {
	orders, starts, grid := testInstance(t, 1500, 40)
	scenario := sim.ScenarioConfig{
		CancelRate:  0.2,
		DeclineProb: 0.15,
		TravelNoise: 0.25,
		Seed:        7,
	}
	cfg := sim.Config{Grid: grid, Delta: 3, TC: 1200, Horizon: 4 * 3600, Scenario: scenario}

	baseCfg := cfg
	baseLog := &eventLog{}
	baseCfg.Observer = baseLog
	base, err := sim.New(baseCfg, orders, starts).Run(context.Background(), &dispatch.IRG{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Canceled == 0 || base.Declines == 0 || len(base.TravelRecords) == 0 {
		t.Fatalf("scenario inactive in the reference run: %+v", base.Summary())
	}

	shardCfg := cfg
	shardLog := &eventLog{}
	shardCfg.Observer = shardLog
	rt, err := New(Config{Sim: shardCfg, Shards: 1}, sim.NewSliceSource(orders), starts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
		return &dispatch.IRG{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if base.Summary() != sharded.Summary() {
		t.Fatalf("1-shard scenario run diverges:\n  unsharded: %+v\n  1-shard:   %+v",
			base.Summary(), sharded.Summary())
	}
	if !reflect.DeepEqual(base.TravelRecords, sharded.TravelRecords) {
		t.Fatalf("travel-error ledgers differ: %d vs %d records",
			len(base.TravelRecords), len(sharded.TravelRecords))
	}
	if !reflect.DeepEqual(baseLog.entries, shardLog.entries) {
		for i := range baseLog.entries {
			if i >= len(shardLog.entries) || baseLog.entries[i] != shardLog.entries[i] {
				t.Fatalf("scenario event streams diverge at %d:\n  unsharded: %s\n  1-shard:   %s",
					i, baseLog.entries[i], shardLog.entries[i])
			}
		}
		t.Fatalf("scenario event stream lengths differ: %d vs %d", len(baseLog.entries), len(shardLog.entries))
	}
}

// TestOneShardPoolingParity extends the 1-shard parity contract to the
// pooling subsystem: with shared rides enabled and a pooling-aware
// dispatcher, a 1-shard runtime reproduces the unsharded engine event
// for event — including the pickup/dropoff stop stream — and its shard
// stats account for every pooled counter.
func TestOneShardPoolingParity(t *testing.T) {
	orders, starts, grid := testInstance(t, 2500, 25)
	cfg := sim.Config{
		Grid: grid, Delta: 3, TC: 1200, Horizon: 4 * 3600,
		Pooling: pool.Config{Capacity: 3, MaxDetourSeconds: 400},
	}

	baseCfg := cfg
	baseLog := &eventLog{}
	baseCfg.Observer = baseLog
	base, err := sim.New(baseCfg, orders, starts).Run(context.Background(), dispatch.POOL{})
	if err != nil {
		t.Fatal(err)
	}
	if base.SharedServed == 0 {
		t.Fatalf("pooling inactive in the reference run: %+v", base.Summary())
	}

	shardCfg := cfg
	shardLog := &eventLog{}
	shardCfg.Observer = shardLog
	rt, err := New(Config{Sim: shardCfg, Shards: 1}, sim.NewSliceSource(orders), starts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
		return dispatch.POOL{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if base.Summary() != sharded.Summary() {
		t.Fatalf("1-shard pooled run diverges:\n  unsharded: %+v\n  1-shard:   %+v",
			base.Summary(), sharded.Summary())
	}
	if !reflect.DeepEqual(baseLog.entries, shardLog.entries) {
		for i := range baseLog.entries {
			if i >= len(shardLog.entries) || baseLog.entries[i] != shardLog.entries[i] {
				t.Fatalf("pooled event streams diverge at %d:\n  unsharded: %s\n  1-shard:   %s",
					i, baseLog.entries[i], shardLog.entries[i])
			}
		}
		t.Fatalf("pooled event stream lengths differ: %d vs %d", len(baseLog.entries), len(shardLog.entries))
	}
	stats := rt.Stats()
	if len(stats) != 1 {
		t.Fatalf("1-shard runtime reports %d stats rows", len(stats))
	}
	if stats[0].SharedServed != base.SharedServed {
		t.Fatalf("shard stats count %d shared trips, metrics say %d", stats[0].SharedServed, base.SharedServed)
	}
	// Every stop event the observer saw is tallied: each completed
	// shared or solo trip crosses exactly one pickup and one dropoff.
	pickups, dropoffs := 0, 0
	for _, line := range shardLog.entries {
		switch {
		case len(line) > 6 && line[:6] == "pickup":
			pickups++
		case len(line) > 7 && line[:7] == "dropoff":
			dropoffs++
		}
	}
	if stats[0].PickedUp != pickups || stats[0].DroppedOff != dropoffs {
		t.Fatalf("shard stats (%d picked up, %d dropped off) disagree with the stream (%d, %d)",
			stats[0].PickedUp, stats[0].DroppedOff, pickups, dropoffs)
	}
}

// TestShardedScenarioDeterministicAndCounted: a multi-shard scenario
// run reproduces exactly, decorrelates per-shard RNG streams, and its
// shard stats account for every cancel and decline.
func TestShardedScenarioDeterministicAndCounted(t *testing.T) {
	orders, starts, grid := testInstance(t, 1500, 40)
	run := func() (*sim.Metrics, []Stats) {
		cfg := sim.Config{
			Grid: grid, Delta: 3, TC: 1200, Horizon: 3 * 3600,
			Scenario: sim.ScenarioConfig{CancelRate: 0.3, DeclineProb: 0.2, Seed: 11},
		}
		rt, err := New(Config{Sim: cfg, Shards: 4}, sim.NewSliceSource(orders), starts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
			return dispatch.NEAR{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, rt.Stats()
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1.Summary() != m2.Summary() {
		t.Fatalf("4-shard scenario runs differ:\n  %+v\n  %+v", m1.Summary(), m2.Summary())
	}
	if m1.Canceled == 0 || m1.Declines == 0 {
		t.Fatalf("scenario inactive across shards: %+v", m1.Summary())
	}
	canceled, declined := 0, 0
	for i := range s1 {
		if s1[i].Canceled != s2[i].Canceled || s1[i].Declined != s2[i].Declined {
			t.Fatalf("shard %d disruption counters differ between identical runs", i)
		}
		canceled += s1[i].Canceled
		declined += s1[i].Declined
	}
	if canceled != m1.Canceled || declined != m1.Declines {
		t.Fatalf("shard stats (%d canceled, %d declined) disagree with metrics (%d, %d)",
			canceled, declined, m1.Canceled, m1.Declines)
	}
}

// TestRouterDeadlineBoundaryStaysHome pins the router's zero-slack
// shortcut against the engine's boundary semantics: an order whose
// deadline equals its routing time has a zero patience radius, stays
// with the owner shard under either policy, and is still served when
// the owner has a driver exactly at the pickup — the same
// dispatchability the unsharded engine guarantees at Deadline == now.
func TestRouterDeadlineBoundaryStaysHome(t *testing.T) {
	grid := geo.NewGrid(geo.BBox{MinLng: 0, MinLat: 0, MaxLng: 0.04, MaxLat: 0.04}, 4, 4)
	pickup := geo.Point{Lng: 0.005, Lat: 0.0175} // shard 0 frontier row
	order := trace.Order{
		ID: 1, PostTime: 3, Deadline: 3, // zero slack at the t=3 round
		Pickup:  pickup,
		Dropoff: geo.Point{Lng: 0.030, Lat: 0.0050},
	}
	for _, policy := range []BoundaryPolicy{StrictOwnership, CandidateBorrow} {
		cfg := sim.Config{Grid: grid, Delta: 3, TC: 600, Horizon: 300, StopWhenDrained: true}
		rt, err := New(Config{Sim: cfg, Shards: 2, Policy: policy},
			sim.NewSliceSource([]trace.Order{order}), []geo.Point{pickup})
		if err != nil {
			t.Fatal(err)
		}
		m, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
			return dispatch.NEAR{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		stats := rt.Stats()
		if stats[0].Admitted != 1 || stats[1].Admitted != 0 {
			t.Fatalf("%v: zero-slack order left home: %+v", policy, stats)
		}
		if m.Served != 1 || m.Reneged != 0 {
			t.Fatalf("%v: zero-slack order with a co-located driver: served=%d reneged=%d, want 1/0",
				policy, m.Served, m.Reneged)
		}
	}
}

// TestShardedConservation checks the partitioned run neither loses nor
// duplicates orders or drivers.
func TestShardedConservation(t *testing.T) {
	orders, starts, grid := testInstance(t, 1500, 40)
	cfg := sim.Config{Grid: grid, Delta: 3, TC: 1200, Horizon: 4 * 3600}

	rt, err := New(Config{Sim: cfg, Shards: 4}, sim.NewSliceSource(orders), starts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
		return &dispatch.IRG{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	stats := rt.Stats()
	admitted, drivers := 0, 0
	for _, s := range stats {
		admitted += s.Admitted
		drivers += s.Drivers
	}
	if drivers != len(starts) {
		t.Fatalf("fleet split lost drivers: %d across shards, want %d", drivers, len(starts))
	}
	// Every order posted before the horizon is admitted to exactly one
	// shard (the horizon cuts the day at 4h, so count expected ones).
	expected := 0
	for _, o := range orders {
		if o.PostTime < cfg.Horizon {
			expected++
		}
	}
	if admitted != expected {
		t.Fatalf("admitted %d orders across shards, want %d", admitted, expected)
	}
	if m.Served+m.Reneged > m.TotalOrders {
		t.Fatalf("served %d + reneged %d exceeds total %d", m.Served, m.Reneged, m.TotalOrders)
	}
	if m.Served == 0 {
		t.Fatal("sharded run served nothing; instance too small or routing broken")
	}
	if m.TotalOrders != len(orders) {
		t.Fatalf("TotalOrders = %d, want sized total %d", m.TotalOrders, len(orders))
	}
}

// TestShardedDeterminism: the same instance at the same shard count
// produces identical deterministic metrics run-to-run.
func TestShardedDeterminism(t *testing.T) {
	orders, starts, grid := testInstance(t, 1200, 32)
	run := func() (*sim.Metrics, []Stats) {
		cfg := sim.Config{Grid: grid, Delta: 3, TC: 1200, Horizon: 3 * 3600}
		rt, err := New(Config{Sim: cfg, Shards: 4}, sim.NewSliceSource(orders), starts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
			return &dispatch.IRG{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, rt.Stats()
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1.Summary() != m2.Summary() {
		t.Fatalf("4-shard runs differ:\n  first:  %+v\n  second: %+v", m1.Summary(), m2.Summary())
	}
	if !reflect.DeepEqual(m1.IdleRecords, m2.IdleRecords) {
		t.Fatal("4-shard idle ledgers differ between identical runs")
	}
	for i := range s1 {
		if s1[i].Admitted != s2[i].Admitted || s1[i].Served != s2[i].Served || s1[i].Reneged != s2[i].Reneged {
			t.Fatalf("shard %d counters differ between identical runs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

// TestCandidateBorrowServesFrontierRider constructs a frontier rider
// whose owner shard has no driver at all while the neighbouring shard
// has one within the patience radius: strict ownership must renege,
// candidate borrow must serve.
func TestCandidateBorrowServesFrontierRider(t *testing.T) {
	// 4x4 grid over a ~4.4km box near the equator; 2 shards split it
	// into south (rows 0-1, shard 0) and north (rows 2-3, shard 1).
	grid := geo.NewGrid(geo.BBox{MinLng: 0, MinLat: 0, MaxLng: 0.04, MaxLat: 0.04}, 4, 4)
	// Rider posts in row 1 (shard 0 frontier); the only driver idles
	// just across the frontier in row 2 (shard 1), ~550m away.
	order := trace.Order{
		ID:       1,
		PostTime: 0,
		Deadline: 300,
		Pickup:   geo.Point{Lng: 0.005, Lat: 0.0175},
		Dropoff:  geo.Point{Lng: 0.030, Lat: 0.0050},
	}
	starts := []geo.Point{{Lng: 0.005, Lat: 0.0225}}

	run := func(policy BoundaryPolicy) (*sim.Metrics, []Stats) {
		cfg := sim.Config{Grid: grid, Delta: 3, TC: 600, Horizon: 1800, StopWhenDrained: true}
		rt, err := New(Config{Sim: cfg, Shards: 2, Policy: policy},
			sim.NewSliceSource([]trace.Order{order}), starts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := rt.Run(context.Background(), func(int) (sim.Dispatcher, error) {
			return dispatch.NEAR{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, rt.Stats()
	}

	strict, strictStats := run(StrictOwnership)
	if strict.Served != 0 || strict.Reneged != 1 {
		t.Fatalf("strict: served=%d reneged=%d, want the frontier rider to renege", strict.Served, strict.Reneged)
	}
	if strictStats[0].Admitted != 1 || strictStats[1].Admitted != 0 {
		t.Fatalf("strict: order admitted to shards %+v, want only the owner (shard 0)", strictStats)
	}

	borrow, borrowStats := run(CandidateBorrow)
	if borrow.Served != 1 {
		t.Fatalf("borrow: served=%d reneged=%d, want the neighbour shard to serve", borrow.Served, borrow.Reneged)
	}
	if borrowStats[1].Admitted != 1 || borrowStats[1].BorrowedIn != 1 {
		t.Fatalf("borrow: shard stats %+v, want shard 1 to report one borrowed admission", borrowStats)
	}
}

// TestRuntimeCancellation: a canceled context stops the run between
// rounds with the context error, matching Engine.Run.
func TestRuntimeCancellation(t *testing.T) {
	orders, starts, grid := testInstance(t, 800, 16)
	cfg := sim.Config{Grid: grid, Delta: 3, TC: 1200, Horizon: 24 * 3600}
	rt, err := New(Config{Sim: cfg, Shards: 2}, sim.NewSliceSource(orders), starts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.Run(ctx, func(int) (sim.Dispatcher, error) {
		return dispatch.NEAR{}, nil
	}); err == nil {
		t.Fatal("canceled run returned nil error")
	}
}

// TestRuntimeSingleUse: a runtime refuses to run twice.
func TestRuntimeSingleUse(t *testing.T) {
	orders, starts, grid := testInstance(t, 200, 8)
	cfg := sim.Config{Grid: grid, Delta: 3, TC: 1200, Horizon: 600}
	rt, err := New(Config{Sim: cfg, Shards: 2}, sim.NewSliceSource(orders), starts)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(int) (sim.Dispatcher, error) { return dispatch.NEAR{}, nil }
	if _, err := rt.Run(context.Background(), factory); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background(), factory); err == nil {
		t.Fatal("second Run returned nil error; want already-ran failure")
	}
}
