package shard

import (
	"fmt"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// ID names one shard of a partitioned runtime, dense in [0, NumShards).
type ID int

// Partition is a deterministic assignment of every grid region to
// exactly one shard. Regions are dealt in contiguous row-major stripes
// balanced within one region: with R regions and n shards, the first
// R%n shards own ceil(R/n) regions and the rest floor(R/n). Row-major
// contiguity keeps each shard's territory a horizontal band of the
// city, so frontiers are short and most of a rider's patience radius
// stays inside one shard.
type Partition struct {
	grid     *geo.Grid
	n        int
	owner    []ID             // region -> shard
	regions  [][]geo.RegionID // shard -> owned regions, ascending
	frontier []bool           // region -> has a 4-neighbour owned elsewhere
}

// NewPartition splits grid's regions across n shards in equal stripes:
// sizes are balanced within one region. It fails when n is not in
// [1, NumRegions]: a shard with no territory could never be routed to,
// which silently strands orders.
func NewPartition(grid *geo.Grid, n int) (*Partition, error) {
	return NewWeightedPartition(grid, n, nil)
}

// NewWeightedPartition splits grid's regions across n shards balancing
// cumulative weight instead of region count: the row-major sweep cuts a
// new stripe each time the running weight passes the next 1/n of the
// total. weights[k] is region k's expected load (demand intensity,
// historical pickup counts); non-positive weights are fine — such
// regions ride along with their stripe. A nil weights gives the
// uniform partition (sizes balanced within one region). Every shard is
// guaranteed at least one region, and the assignment is deterministic
// for a fixed (grid, n, weights).
//
// Weighting is what makes sharding effective on hotspot-concentrated
// cities: equal-area stripes put one shard on 50% of the demand and
// another on 1%, so the hot shard's batches stay as large as the
// unsharded engine's and nothing is gained.
func NewWeightedPartition(grid *geo.Grid, n int, weights []float64) (*Partition, error) {
	if grid == nil {
		return nil, fmt.Errorf("shard: nil grid")
	}
	r := grid.NumRegions()
	if n < 1 || n > r {
		return nil, fmt.Errorf("shard: %d shards for %d regions (want 1..%d)", n, r, r)
	}
	if weights != nil && len(weights) != r {
		return nil, fmt.Errorf("shard: %d weights for %d regions", len(weights), r)
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	uniform := weights == nil || total <= 0
	if uniform {
		total = float64(r)
	}
	weightOf := func(k int) float64 {
		if uniform {
			return 1
		}
		if w := weights[k]; w > 0 {
			return w
		}
		return 0
	}

	p := &Partition{
		grid:     grid,
		n:        n,
		owner:    make([]ID, r),
		regions:  make([][]geo.RegionID, n),
		frontier: make([]bool, r),
	}
	acc := 0.0
	s := 0
	for k := 0; k < r; k++ {
		// Advance to the next shard once the running weight has covered
		// this shard's 1/n share — never leaving the current shard
		// empty, never past the last shard, and advancing by force when
		// exactly enough regions remain to hand every remaining shard
		// one (which guarantees no shard ends up without territory).
		advance := s < n-1 && len(p.regions[s]) > 0 &&
			acc >= total*float64(s+1)/float64(n)
		if n-1-s >= r-k {
			advance = true
		}
		if advance {
			s++
		}
		p.owner[k] = ID(s)
		p.regions[s] = append(p.regions[s], geo.RegionID(k))
		acc += weightOf(k)
	}
	for k := 0; k < r; k++ {
		for _, nb := range grid.Neighbors(geo.RegionID(k)) {
			if p.owner[nb] != p.owner[k] {
				p.frontier[k] = true
				break
			}
		}
	}
	return p, nil
}

// NumShards returns the shard count.
func (p *Partition) NumShards() int { return p.n }

// Grid returns the partitioned grid.
func (p *Partition) Grid() *geo.Grid { return p.grid }

// Owner returns the shard owning a region. Invalid regions (including
// geo.InvalidRegion) map to shard 0 so out-of-grid points — which the
// engine clamps into the grid anyway — always have a home.
func (p *Partition) Owner(region geo.RegionID) ID {
	if region < 0 || int(region) >= len(p.owner) {
		return 0
	}
	return p.owner[region]
}

// OwnerOf returns the shard owning the region containing p, after the
// same boundary clamp the engine applies to order endpoints.
func (p *Partition) OwnerOf(pt geo.Point) ID {
	return p.Owner(p.grid.Region(p.grid.Bounds().Clamp(pt)))
}

// Regions returns the regions owned by one shard, ascending. The slice
// is owned by the partition; callers must not mutate it.
func (p *Partition) Regions(s ID) []geo.RegionID {
	if s < 0 || int(s) >= p.n {
		return nil
	}
	return p.regions[s]
}

// IsFrontier reports whether a region has at least one 4-neighbour
// owned by a different shard — the territory where a rider's patience
// radius may cross into another shard's supply.
func (p *Partition) IsFrontier(region geo.RegionID) bool {
	if region < 0 || int(region) >= len(p.frontier) {
		return false
	}
	return p.frontier[region]
}

// FrontierCount returns how many of a shard's regions border another
// shard (diagnostics for /v1/stats).
func (p *Partition) FrontierCount(s ID) int {
	n := 0
	for _, k := range p.Regions(s) {
		if p.frontier[k] {
			n++
		}
	}
	return n
}

// OrderWeights counts each region's pickups in a trace — the natural
// NewWeightedPartition weights for a replay, and a reasonable proxy
// for a live stream drawn from the same demand.
func OrderWeights(grid *geo.Grid, orders []trace.Order) []float64 {
	w := make([]float64, grid.NumRegions())
	for _, o := range orders {
		if k := grid.Region(grid.Bounds().Clamp(o.Pickup)); k >= 0 {
			w[k]++
		}
	}
	return w
}
