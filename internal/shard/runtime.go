package shard

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mrvd/internal/geo"
	"mrvd/internal/obs"
	"mrvd/internal/roadnet"
	"mrvd/internal/sim"
	"mrvd/internal/stats"
	"mrvd/internal/trace"
)

// Config parameterizes a partitioned runtime.
type Config struct {
	// Sim is the per-engine template: grid, coster, batch timing,
	// horizon, prediction callback, repositioner, observer and pacing
	// all mean what they mean for one sim.Engine. The Observer receives
	// the aggregated city-wide stream (serialized across shards; driver
	// ids are global fleet ids). Anything shared across shards — the
	// Coster, PredictRiders, the Repositioner — must be safe for
	// concurrent use, since shards step in parallel.
	Sim sim.Config
	// Shards is the engine count (required, >= 1).
	Shards int
	// Policy is the frontier boundary policy (default StrictOwnership).
	Policy BoundaryPolicy
	// Costers optionally gives each shard its own coster instance
	// (len == Shards) — e.g. one road-network coster per shard so tree
	// caches don't contend and /v1/stats can report per-shard cache
	// counters. All instances must price identically or shards would
	// disagree about travel times. Nil shares Sim.Coster.
	Costers []roadnet.Coster
	// Weights optionally balances the partition by expected per-region
	// load instead of region count (see NewWeightedPartition) — use
	// OrderWeights over the trace, or a demand model's intensities.
	// Essential for hotspot-concentrated cities, where equal-area
	// stripes would give one shard most of the work.
	Weights []float64
}

// Stats is one shard's live snapshot, updated every lockstep round.
type Stats struct {
	Shard           int `json:"shard"`
	Regions         int `json:"regions"`
	FrontierRegions int `json:"frontier_regions"`
	Drivers         int `json:"drivers"`
	Waiting         int `json:"waiting"`
	Available       int `json:"available"`
	// Admitted counts orders routed to this shard; BorrowedIn the subset
	// admitted here under CandidateBorrow although another shard owns
	// their pickup region.
	Admitted   int `json:"admitted"`
	BorrowedIn int `json:"borrowed_in"`
	// RehomedIn counts drivers migrated into this shard by fleet
	// re-homing (trips whose dropoff crossed a frontier).
	RehomedIn int `json:"rehomed_in"`
	Served    int `json:"served"`
	Reneged   int `json:"reneged"`
	// Canceled counts rider-initiated cancellations admitted by this
	// shard; Declined counts driver-declined assignments here.
	Canceled int `json:"canceled"`
	Declined int `json:"declined"`
	// SharedServed counts pooled riders dropped off by this shard's
	// fleet; PickedUp/DroppedOff count pooled stop completions. All
	// three stay zero with pooling disabled.
	SharedServed int `json:"shared_served"`
	PickedUp     int `json:"picked_up"`
	DroppedOff   int `json:"dropped_off"`
	Batches      int `json:"batches"`
	// Dispatch wall time of this shard's StepDispatch per round, ms.
	AvgBatchMS  float64 `json:"avg_batch_ms"`
	MaxBatchMS  float64 `json:"max_batch_ms"`
	LastBatchMS float64 `json:"last_batch_ms"`
	// Coster carries the shard's travel-cost cache counters when its
	// coster exposes them (per-shard Costers only).
	Coster *roadnet.CosterStats `json:"coster,omitempty"`
}

// Runtime drives N sim.Engines over a partitioned city in lockstep
// batch rounds. Build with New, execute once with Run; Stats may be
// called concurrently with Run from other goroutines.
type Runtime struct {
	cfg    Config
	part   *Partition
	router *Router
	src    sim.OrderSource
	sized  int // total orders when src is sized, else -1

	engines []*sim.Engine
	feeds   []*feedSource
	costers []roadnet.Coster
	// routed records which shard admitted each order — the address book
	// rider-initiated cancels are routed by. Coordinator-only state.
	routed map[trace.OrderID]ID
	// pendingCancels holds cancels for orders the city-wide source has
	// not released yet; retried in FIFO order every round. srcDone
	// records the source's done signal: once set, unmatched cancels can
	// never match and are dropped instead of retried.
	pendingCancels []trace.OrderID
	srcDone        bool
	// global[i][local] is the fleet-wide driver id of shard i's local
	// driver index — the remap the event aggregator applies.
	global [][]sim.DriverID

	// downstream is the city-wide observer; obsMu serializes the
	// per-shard event fan-in so it sees one coherent stream.
	downstream sim.Observer
	obsMu      sync.Mutex

	// work feeds the persistent per-shard workers; phase is the
	// barrier both lockstep phases wait on.
	work  []chan func(int)
	phase sync.WaitGroup

	statsMu    sync.Mutex
	stats      []Stats
	batchSumMS []float64

	// Per-shard registry instruments, pre-resolved so the round loop
	// never takes the registry's family lock; all nil when Sim.Obs has
	// no registry.
	obsRound    []*obs.Histogram
	obsBorrowed []*obs.Counter
	obsRehomed  []*obs.Counter
}

// New partitions the grid, splits the fleet by start region, and builds
// one engine per shard. src supplies the city-wide order stream —
// anything an unsharded engine accepts (a SliceSource trace, a live
// ChannelSource) — and is polled only from Run's coordinator goroutine.
func New(cfg Config, src sim.OrderSource, starts []geo.Point) (*Runtime, error) {
	if src == nil {
		return nil, fmt.Errorf("shard: nil order source")
	}
	if cfg.Costers != nil && len(cfg.Costers) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d costers for %d shards", len(cfg.Costers), cfg.Shards)
	}
	cfg.Sim = cfg.Sim.WithDefaults()
	part, err := NewWeightedPartition(cfg.Sim.Grid, cfg.Shards, cfg.Weights)
	if err != nil {
		return nil, err
	}
	if len(cfg.Sim.Shifts) > 0 && len(cfg.Sim.Shifts) != len(starts) {
		return nil, fmt.Errorf("shard: %d shifts for %d drivers", len(cfg.Sim.Shifts), len(starts))
	}

	rt := &Runtime{
		cfg:        cfg,
		part:       part,
		src:        src,
		sized:      -1,
		engines:    make([]*sim.Engine, cfg.Shards),
		feeds:      make([]*feedSource, cfg.Shards),
		costers:    make([]roadnet.Coster, cfg.Shards),
		global:     make([][]sim.DriverID, cfg.Shards),
		downstream: cfg.Sim.Observer,
		stats:      make([]Stats, cfg.Shards),
		batchSumMS: make([]float64, cfg.Shards),
	}
	if sized, ok := src.(sim.SizedSource); ok {
		rt.sized = sized.TotalOrders()
	}

	// Deal the fleet: a driver belongs to the shard owning its start
	// region, keeping its global index for event remapping.
	shardStarts := make([][]geo.Point, cfg.Shards)
	shardShifts := make([][]sim.Shift, cfg.Shards)
	for i, p := range starts {
		s := part.OwnerOf(p)
		rt.global[s] = append(rt.global[s], sim.DriverID(i))
		shardStarts[s] = append(shardStarts[s], p)
		if len(cfg.Sim.Shifts) > 0 {
			shardShifts[s] = append(shardShifts[s], cfg.Sim.Shifts[i])
		}
	}

	if _, ok := src.(sim.CancelableSource); ok {
		rt.routed = make(map[trace.OrderID]ID)
	}

	if r := cfg.Sim.Obs.Registry; r != nil {
		roundHist := r.HistogramVec("mrvd_shard_round_seconds",
			"Wall time of one shard's dispatch step per lockstep round.",
			obs.DefBuckets, "shard")
		borrowed := r.CounterVec("mrvd_shard_borrowed_total",
			"Frontier orders admitted to this shard under CandidateBorrow although another shard owns their pickup region.",
			"shard")
		rehomed := r.CounterVec("mrvd_shard_rehomed_total",
			"Drivers migrated into this shard by fleet re-homing.",
			"shard")
		// This loop IS the PR 8 pre-resolution rule: it runs once at
		// construction to resolve each shard's children, which the hot
		// path then uses without further With lookups.
		for s := 0; s < cfg.Shards; s++ {
			label := strconv.Itoa(s)
			rt.obsRound = append(rt.obsRound, roundHist.With(label))      //mrvdlint:ignore hotlabel construction-time pre-resolution, runs once per shard at startup
			rt.obsBorrowed = append(rt.obsBorrowed, borrowed.With(label)) //mrvdlint:ignore hotlabel construction-time pre-resolution, runs once per shard at startup
			rt.obsRehomed = append(rt.obsRehomed, rehomed.With(label))    //mrvdlint:ignore hotlabel construction-time pre-resolution, runs once per shard at startup
		}
	}

	probes := make([]SupplyProbe, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		ecfg := cfg.Sim
		ecfg.Observer = &tap{rt: rt, shard: ID(s)}
		ecfg.PaceFactor = 0          // the coordinator paces the rounds
		ecfg.StopWhenDrained = false // the coordinator decides drain city-wide
		ecfg.Shifts = shardShifts[s]
		ecfg.Obs.Shard = s
		if cfg.Costers != nil {
			ecfg.Coster = cfg.Costers[s]
		}
		if cfg.Shards > 1 && ecfg.Scenario.Enabled() {
			// Decorrelate the per-shard disruption streams. A 1-shard
			// runtime keeps the parent seed so it reproduces the
			// unsharded engine's draws — and hence its events — exactly.
			ecfg.Scenario.Seed = stats.SplitSeed(cfg.Sim.Scenario.Seed, s)
		}
		rt.costers[s] = ecfg.Coster
		rt.feeds[s] = &feedSource{}
		rt.engines[s] = sim.NewWithSource(ecfg, rt.feeds[s], shardStarts[s])
		probes[s] = rt.engines[s]
		rt.stats[s] = Stats{
			Shard:           s,
			Regions:         len(part.Regions(ID(s))),
			FrontierRegions: part.FrontierCount(ID(s)),
			Drivers:         len(shardStarts[s]),
		}
	}
	rt.router = NewRouter(part, cfg.Policy, cfg.Sim.RadiusSpeedMPS, probes)
	return rt, nil
}

// NumShards returns the shard count.
func (rt *Runtime) NumShards() int { return rt.cfg.Shards }

// Partition exposes the region-to-shard assignment.
func (rt *Runtime) Partition() *Partition { return rt.part }

// Run executes the lockstep batch loop: each round routes newly posted
// orders to their shards, steps every engine's admission phase in
// parallel, synthesizes one city-wide BatchStart, then steps every
// engine's dispatch phase in parallel. newDispatcher builds shard i's
// dispatcher — one instance per shard, since dispatchers are stateful.
// The context cancels between rounds, exactly like Engine.Run. A
// runtime is single-use.
func (rt *Runtime) Run(ctx context.Context, newDispatcher func(shard int) (sim.Dispatcher, error)) (*sim.Metrics, error) {
	n := rt.cfg.Shards
	dispatchers := make([]sim.Dispatcher, n)
	for i := range dispatchers {
		d, err := newDispatcher(i)
		if err != nil {
			return nil, err
		}
		dispatchers[i] = d
	}
	for _, e := range rt.engines {
		if err := e.Begin(); err != nil {
			return nil, err
		}
	}
	rt.startWorkers()
	defer rt.stopWorkers()

	cfg := rt.cfg.Sim
	errs := make([]error, n)
	round := 0
	wallStart := time.Now() //mrvdlint:ignore wallclock PaceFactor paces simulated rounds against the real wall clock by design
	for now := 0.0; now < cfg.Horizon; now += cfg.Delta {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("shard: run stopped at t=%.0fs: %w", now, err)
		}
		if cfg.PaceFactor > 0 {
			target := wallStart.Add(time.Duration(now / cfg.PaceFactor * float64(time.Second)))
			if wait := time.Until(target); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, fmt.Errorf("shard: run stopped at t=%.0fs: %w", now, ctx.Err())
				case <-t.C:
				}
			}
		} else {
			// Same courtesy yield as a free-running engine: keep live
			// submitters schedulable at GOMAXPROCS=1.
			runtime.Gosched()
		}

		// Route this round's newly posted orders. The router may probe
		// shard supply (CandidateBorrow); engines are quiescent between
		// rounds, so the probes are race-free.
		ready, done := rt.src.Poll(now)
		for _, o := range ready {
			s, borrowed := rt.router.Route(o, now)
			rt.feeds[s].push(o)
			if rt.routed != nil {
				rt.routed[o.ID] = s
			}
			rt.statsMu.Lock()
			rt.stats[s].Admitted++
			if borrowed {
				rt.stats[s].BorrowedIn++
			}
			rt.statsMu.Unlock()
			if borrowed && rt.obsBorrowed != nil {
				rt.obsBorrowed[s].Inc()
			}
		}
		if done {
			rt.srcDone = true
			for _, f := range rt.feeds {
				f.markDone()
			}
		}
		rt.routeCancels()

		rt.parallel(func(i int) { rt.engines[i].StepAdmit(now) })
		rt.rehomeFleet()

		waiting, available := rt.snapshotCounts()
		if cfg.StopWhenDrained && done && rt.allDrained() {
			break
		}
		if rt.downstream != nil {
			// One city-wide batch boundary per round, in the same
			// admission→renege→BatchStart→dispatch position an unsharded
			// engine fires it.
			rt.obsMu.Lock()
			rt.downstream.OnBatchStart(sim.BatchStartEvent{
				Now:       now,
				Batch:     round,
				Waiting:   waiting,
				Available: available,
			})
			rt.obsMu.Unlock()
		}

		rt.parallel(func(i int) {
			start := time.Now() //mrvdlint:ignore wallclock per-shard round timing measures the real dispatch critical path, not simulated time
			if err := rt.engines[i].StepDispatch(now, dispatchers[i]); err != nil && errs[i] == nil {
				errs[i] = err
			}
			rt.recordBatch(i, time.Since(start)) //mrvdlint:ignore wallclock per-shard round timing measures the real dispatch critical path, not simulated time
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		round++
	}

	ms := make([]*sim.Metrics, n)
	for i, e := range rt.engines {
		ms[i] = e.Finish()
	}
	return rt.aggregate(ms), nil
}

// startWorkers launches one persistent goroutine per shard. The
// lockstep loop runs thousands of two-phase rounds; reusing workers
// keeps the per-round cost to two channel hops instead of goroutine
// spawns. A 1-shard runtime skips workers entirely and steps inline —
// it must not pay any overhead the unsharded engine doesn't.
func (rt *Runtime) startWorkers() {
	if len(rt.engines) == 1 {
		return
	}
	rt.work = make([]chan func(int), len(rt.engines))
	for i := range rt.engines {
		ch := make(chan func(int), 1)
		rt.work[i] = ch
		go func(i int, ch chan func(int)) {
			for f := range ch {
				f(i)
				rt.phase.Done()
			}
		}(i, ch)
	}
}

func (rt *Runtime) stopWorkers() {
	for _, ch := range rt.work {
		close(ch)
	}
	rt.work = nil
}

// parallel runs f(i) for every shard and waits for all of them — the
// barrier between lockstep phases.
func (rt *Runtime) parallel(f func(i int)) {
	if len(rt.engines) == 1 {
		f(0)
		return
	}
	rt.phase.Add(len(rt.work))
	for _, ch := range rt.work {
		ch <- f
	}
	rt.phase.Wait()
}

// routeCancels forwards rider-initiated cancellation requests from the
// city-wide source to the shard that admitted each order. Cancels whose
// order the source has not released yet are retried next round (the
// order will be routed first); the admitting shard's engine drops
// cancels for already-terminal orders.
func (rt *Runtime) routeCancels() {
	if rt.routed == nil {
		return
	}
	ids := rt.src.(sim.CancelableSource).PollCancels()
	if len(rt.pendingCancels) > 0 {
		ids = append(rt.pendingCancels, ids...)
		rt.pendingCancels = nil
	}
	for _, id := range ids {
		if s, ok := rt.routed[id]; ok {
			rt.feeds[s].pushCancel(id)
		} else if !rt.srcDone {
			// Still buffered in the city-wide source; retry once it is
			// routed. After done the id can never arrive: drop it.
			rt.pendingCancels = append(rt.pendingCancels, id)
		}
	}
}

// rehomeFleet migrates every available driver standing in territory
// owned by another shard to that shard's engine — fleet ownership
// follows position. Without it drivers strand: a trip whose dropoff
// lands across a frontier leaves the driver in an engine that will
// never receive orders near it. Runs on the coordinator between the
// admit and dispatch barriers, so a driver freed this round is
// assignable by its new shard in the same round. The scan order
// (shards ascending, local ids ascending) keeps re-homing — and hence
// the whole run — deterministic.
func (rt *Runtime) rehomeFleet() {
	if len(rt.engines) == 1 {
		return
	}
	type move struct {
		id sim.DriverID
		to ID
	}
	var moves []move
	for i, e := range rt.engines {
		moves = moves[:0]
		e.EachAvailable(func(id sim.DriverID, pos geo.Point) {
			if owner := rt.part.OwnerOf(pos); owner != ID(i) {
				moves = append(moves, move{id: id, to: owner})
			}
		})
		for _, mv := range moves {
			pos, freeAt, shift, ok := e.RemoveDriver(mv.id)
			if !ok {
				continue
			}
			rt.engines[mv.to].AddDriver(pos, freeAt, shift)
			// The new local id is always the next slot, so the global
			// mapping grows in lockstep with the receiving engine.
			rt.global[mv.to] = append(rt.global[mv.to], rt.global[i][mv.id])
			rt.statsMu.Lock()
			rt.stats[i].Drivers--
			rt.stats[mv.to].Drivers++
			rt.stats[mv.to].RehomedIn++
			rt.statsMu.Unlock()
			if rt.obsRehomed != nil {
				rt.obsRehomed[mv.to].Inc()
			}
		}
	}
}

// snapshotCounts refreshes each shard's waiting/available stats at the
// round barrier and returns the city-wide sums.
func (rt *Runtime) snapshotCounts() (waiting, available int) {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	for i, e := range rt.engines {
		w, a := e.Counts()
		rt.stats[i].Waiting = w
		rt.stats[i].Available = a
		waiting += w
		available += a
	}
	return waiting, available
}

// allDrained reports whether every engine is drained (call only between
// rounds).
func (rt *Runtime) allDrained() bool {
	for _, e := range rt.engines {
		if !e.Drained() {
			return false
		}
	}
	return true
}

// recordBatch folds one shard's dispatch wall time into its stats.
func (rt *Runtime) recordBatch(i int, d time.Duration) {
	ms := d.Seconds() * 1000
	if rt.obsRound != nil {
		rt.obsRound[i].Observe(d.Seconds())
	}
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	s := &rt.stats[i]
	s.Batches++
	s.LastBatchMS = ms
	rt.batchSumMS[i] += ms
	s.AvgBatchMS = rt.batchSumMS[i] / float64(s.Batches)
	if ms > s.MaxBatchMS {
		s.MaxBatchMS = ms
	}
}

// Stats returns a snapshot of every shard's live counters, including
// per-shard coster cache stats when the shard's coster exposes them.
// Safe for concurrent use with Run.
func (rt *Runtime) Stats() []Stats {
	rt.statsMu.Lock()
	out := make([]Stats, len(rt.stats))
	copy(out, rt.stats)
	rt.statsMu.Unlock()
	for i := range out {
		if c, ok := rt.costers[i].(interface{ Stats() roadnet.CosterStats }); ok {
			st := c.Stats()
			out[i].Coster = &st
		}
	}
	return out
}

// aggregate merges per-shard metrics into one city-wide Metrics whose
// deterministic projection (Summary) matches what a single engine over
// the union would report. BatchSeconds takes each round's slowest shard
// — the parallel critical path. IdleRecords concatenate shard-major
// with driver ids remapped to the global fleet numbering.
func (rt *Runtime) aggregate(ms []*sim.Metrics) *sim.Metrics {
	if len(ms) == 1 {
		m := ms[0]
		if rt.sized >= 0 {
			m.TotalOrders = rt.sized
		}
		return m
	}
	agg := &sim.Metrics{}
	rounds := 0
	for _, m := range ms {
		agg.Revenue += m.Revenue
		agg.Served += m.Served
		agg.Reneged += m.Reneged
		agg.Canceled += m.Canceled
		agg.Declines += m.Declines
		agg.TotalOrders += m.TotalOrders
		agg.PickupSeconds += m.PickupSeconds
		agg.SharedServed += m.SharedServed
		agg.DetourSeconds += m.DetourSeconds
		if m.Batches > rounds {
			rounds = m.Batches
		}
	}
	agg.Batches = rounds
	agg.BatchSeconds = make([]float64, rounds)
	for _, m := range ms {
		for r, s := range m.BatchSeconds {
			if s > agg.BatchSeconds[r] {
				agg.BatchSeconds[r] = s
			}
		}
	}
	for i, m := range ms {
		for _, rec := range m.IdleRecords {
			rec.Driver = rt.global[i][rec.Driver]
			agg.IdleRecords = append(agg.IdleRecords, rec)
		}
		for _, rec := range m.TravelRecords {
			rec.Driver = rt.global[i][rec.Driver]
			agg.TravelRecords = append(agg.TravelRecords, rec)
		}
	}
	if rt.sized >= 0 {
		agg.TotalOrders = rt.sized
	}
	return agg
}

// tap is the per-shard observer: it forwards engine events to the
// runtime's downstream observer with driver ids remapped to the global
// fleet numbering, serialized across shards. Per-shard BatchStart
// events are absorbed — the coordinator synthesizes the city-wide one.
type tap struct {
	rt    *Runtime
	shard ID
}

func (t *tap) OnBatchStart(sim.BatchStartEvent) {}

func (t *tap) OnAssigned(e sim.AssignedEvent) {
	rt := t.rt
	rt.statsMu.Lock()
	rt.stats[t.shard].Served++
	rt.statsMu.Unlock()
	if rt.downstream == nil {
		return
	}
	e.Driver = rt.global[t.shard][e.Driver]
	rt.obsMu.Lock()
	rt.downstream.OnAssigned(e)
	rt.obsMu.Unlock()
}

func (t *tap) OnExpired(e sim.ExpiredEvent) {
	rt := t.rt
	rt.statsMu.Lock()
	rt.stats[t.shard].Reneged++
	rt.statsMu.Unlock()
	if rt.downstream == nil {
		return
	}
	rt.obsMu.Lock()
	rt.downstream.OnExpired(e)
	rt.obsMu.Unlock()
}

func (t *tap) OnCanceled(e sim.CanceledEvent) {
	rt := t.rt
	rt.statsMu.Lock()
	rt.stats[t.shard].Canceled++
	rt.statsMu.Unlock()
	if rt.downstream == nil {
		return
	}
	rt.obsMu.Lock()
	rt.downstream.OnCanceled(e)
	rt.obsMu.Unlock()
}

func (t *tap) OnDeclined(e sim.DeclinedEvent) {
	rt := t.rt
	rt.statsMu.Lock()
	rt.stats[t.shard].Declined++
	rt.statsMu.Unlock()
	if rt.downstream == nil {
		return
	}
	e.Driver = rt.global[t.shard][e.Driver]
	rt.obsMu.Lock()
	rt.downstream.OnDeclined(e)
	rt.obsMu.Unlock()
}

func (t *tap) OnPickedUp(e sim.PickedUpEvent) {
	rt := t.rt
	rt.statsMu.Lock()
	rt.stats[t.shard].PickedUp++
	rt.statsMu.Unlock()
	if rt.downstream == nil {
		return
	}
	e.Driver = rt.global[t.shard][e.Driver]
	rt.obsMu.Lock()
	rt.downstream.OnPickedUp(e)
	rt.obsMu.Unlock()
}

func (t *tap) OnDroppedOff(e sim.DroppedOffEvent) {
	rt := t.rt
	rt.statsMu.Lock()
	rt.stats[t.shard].DroppedOff++
	if e.Shared {
		rt.stats[t.shard].SharedServed++
	}
	rt.statsMu.Unlock()
	if rt.downstream == nil {
		return
	}
	e.Driver = rt.global[t.shard][e.Driver]
	rt.obsMu.Lock()
	rt.downstream.OnDroppedOff(e)
	rt.obsMu.Unlock()
}

func (t *tap) OnRepositioned(e sim.RepositionedEvent) {
	rt := t.rt
	if rt.downstream == nil {
		return
	}
	e.Driver = rt.global[t.shard][e.Driver]
	rt.obsMu.Lock()
	rt.downstream.OnRepositioned(e)
	rt.obsMu.Unlock()
}

// feedSource is the runtime-owned per-shard order queue: the
// coordinator pushes routed orders between rounds, the shard's engine
// drains them at its next StepAdmit. The lockstep barriers provide the
// happens-before edges, so no locking is needed — pushes and polls
// never overlap.
type feedSource struct {
	staged  []trace.Order
	cancels []trace.OrderID
	done    bool
}

func (f *feedSource) push(o trace.Order)          { f.staged = append(f.staged, o) }
func (f *feedSource) pushCancel(id trace.OrderID) { f.cancels = append(f.cancels, id) }
func (f *feedSource) markDone()                   { f.done = true }

// Poll implements sim.OrderSource: everything staged is already due
// (the coordinator routes only orders the city-wide source released).
// The backing array is recycled for the next round's pushes — sound
// because admitOrders copies each order into its Rider before the next
// route phase can overwrite the slice.
func (f *feedSource) Poll(float64) ([]trace.Order, bool) {
	ready := f.staged
	f.staged = f.staged[:0]
	return ready, f.done
}

// PollCancels implements sim.CancelableSource under the same barrier
// discipline: the coordinator pushes routed cancels between rounds, the
// shard's engine drains them at its next StepAdmit.
func (f *feedSource) PollCancels() []trace.OrderID {
	ids := f.cancels
	f.cancels = f.cancels[:0]
	return ids
}
