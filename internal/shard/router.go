package shard

import (
	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// BoundaryPolicy decides where an order whose patience radius crosses a
// shard frontier is admitted.
type BoundaryPolicy int

const (
	// StrictOwnership always admits an order to the shard owning its
	// pickup region. Cheapest and fully deterministic from the trace
	// alone, at the cost of reneges when the owner's frontier is
	// supply-starved while a neighbour has an idle driver in reach.
	StrictOwnership BoundaryPolicy = iota
	// CandidateBorrow admits frontier orders to a neighbouring shard
	// when the owner currently has no available driver within the
	// rider's patience radius but another shard covering that radius
	// does — borrowing candidate supply at batch-build time. Interior
	// orders (radius inside the owner's territory) always stay home.
	CandidateBorrow
)

// String names the policy for logs and stats payloads.
func (p BoundaryPolicy) String() string {
	switch p {
	case CandidateBorrow:
		return "candidate-borrow"
	default:
		return "strict-ownership"
	}
}

// SupplyProbe answers how many available drivers a shard currently has
// within a radius of a point. The runtime implements it over each
// engine's spatial index; probes are only consulted between lockstep
// rounds, when no engine is stepping.
type SupplyProbe interface {
	AvailableWithin(p geo.Point, radiusMeters float64) int
}

// Router admits live orders to shards. It is not safe for concurrent
// use; the runtime routes on its coordinator goroutine between rounds.
type Router struct {
	part   *Partition
	policy BoundaryPolicy
	// radiusSpeed converts remaining patience seconds into the same
	// search radius the engine uses for candidate drivers
	// (sim.Config.RadiusSpeedMPS).
	radiusSpeed float64
	// probes are per-shard supply probes, required for CandidateBorrow.
	probes []SupplyProbe
}

// NewRouter builds a router over a partition. probes may be nil for
// StrictOwnership; CandidateBorrow without probes degrades to strict.
func NewRouter(part *Partition, policy BoundaryPolicy, radiusSpeedMPS float64, probes []SupplyProbe) *Router {
	return &Router{part: part, policy: policy, radiusSpeed: radiusSpeedMPS, probes: probes}
}

// Route returns the shard that should admit o at engine time now, and
// whether the order was borrowed (admitted somewhere other than the
// owner of its pickup region).
func (r *Router) Route(o trace.Order, now float64) (ID, bool) {
	grid := r.part.Grid()
	pickup := grid.Bounds().Clamp(o.Pickup)
	owner := r.part.Owner(grid.Region(pickup))
	if r.policy != CandidateBorrow || r.probes == nil {
		return owner, false
	}

	slack := o.Deadline - now
	if slack <= 0 {
		return owner, false // expiring either way; keep it home
	}
	radius := slack * r.radiusSpeed

	// Which shards does the patience radius reach? Walk the regions the
	// radius intersects — the same geometry the engine's candidate
	// search uses — and collect their owners in ascending shard order.
	reached := make(map[ID]bool)
	for _, k := range grid.RegionsWithin(pickup, radius) {
		reached[r.part.Owner(k)] = true
	}
	if len(reached) <= 1 {
		return owner, false // interior order: radius stays home
	}
	// The owner keeps the order whenever it has any candidate in reach.
	if r.probes[owner].AvailableWithin(pickup, radius) > 0 {
		return owner, false
	}
	// Borrow from the reachable shard with the deepest supply; ties
	// break to the lowest shard id for determinism.
	best, bestSupply := owner, 0
	for s := ID(0); int(s) < r.part.NumShards(); s++ {
		if s == owner || !reached[s] {
			continue
		}
		if supply := r.probes[s].AvailableWithin(pickup, radius); supply > bestSupply {
			best, bestSupply = s, supply
		}
	}
	return best, best != owner
}

// Partition exposes the router's partition.
func (r *Router) Partition() *Partition { return r.part }

// Policy exposes the router's boundary policy.
func (r *Router) Policy() BoundaryPolicy { return r.policy }
