// Package shard is the partitioned multi-engine dispatch runtime: it
// splits a city grid's regions across N independent sim.Engine
// instances — each owning a disjoint region set and the slice of the
// fleet that starts there — and steps them in lockstep batch rounds on
// parallel goroutines.
//
// The pieces compose bottom-up:
//
//   - Partition deterministically assigns every region to exactly one
//     shard, balanced within one region, in contiguous row-major
//     stripes (the paper's queueing model is already per-region, so a
//     region is the natural unit of ownership).
//   - Router admits each live order to the shard owning its pickup
//     region. Its boundary policy decides what happens when a rider's
//     patience radius crosses a shard frontier: StrictOwnership always
//     keeps the order home, CandidateBorrow probes neighbouring shards'
//     available supply at batch-build time and routes the order to a
//     reachable shard when the owner has no feasible driver.
//   - Runtime owns the engines, drives the lockstep rounds, fans
//     per-shard Observer events back into one coherent stream (driver
//     ids remapped to the global fleet numbering, one synthesized
//     city-wide BatchStart per round), re-homes idle drivers to the
//     shard owning the territory they stand in (fleet ownership
//     follows position — without it drivers strand wherever their
//     last dropoff crossed a frontier), and merges per-shard Metrics
//     into one aggregate identical in shape to an unsharded run's.
//
// A 1-shard Runtime is contractually equivalent to an unsharded
// sim.Engine run: same admissions, same events in the same order, same
// deterministic Metrics projection (see TestShardedOneShardParity).
package shard
