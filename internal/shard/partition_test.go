package shard

import (
	"reflect"
	"testing"

	"mrvd/internal/geo"
)

func TestPartitionCoversEveryRegionExactlyOnce(t *testing.T) {
	grid := geo.NewNYCGrid()
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 256} {
		p, err := NewPartition(grid, n)
		if err != nil {
			t.Fatalf("NewPartition(%d): %v", n, err)
		}
		seen := make(map[geo.RegionID]ID)
		for s := 0; s < n; s++ {
			for _, k := range p.Regions(ID(s)) {
				if prev, dup := seen[k]; dup {
					t.Fatalf("n=%d: region %d owned by shards %d and %d", n, k, prev, s)
				}
				seen[k] = ID(s)
				if p.Owner(k) != ID(s) {
					t.Fatalf("n=%d: Owner(%d)=%d, Regions says %d", n, k, p.Owner(k), s)
				}
			}
		}
		if len(seen) != grid.NumRegions() {
			t.Fatalf("n=%d: %d regions assigned, want %d", n, len(seen), grid.NumRegions())
		}
	}
}

func TestPartitionBalancedWithinOneRegion(t *testing.T) {
	grid := geo.NewNYCGrid()
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 100} {
		p, err := NewPartition(grid, n)
		if err != nil {
			t.Fatal(err)
		}
		min, max := grid.NumRegions(), 0
		for s := 0; s < n; s++ {
			size := len(p.Regions(ID(s)))
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d: shard sizes range [%d, %d], want spread <= 1", n, min, max)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	grid := geo.NewNYCGrid()
	a, err := NewPartition(grid, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPartition(grid, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.owner, b.owner) {
		t.Fatal("same (grid, n) produced different assignments")
	}
}

func TestPartitionRejectsBadShardCounts(t *testing.T) {
	grid := geo.NewGrid(geo.BBox{MinLng: 0, MinLat: 0, MaxLng: 1, MaxLat: 1}, 2, 2)
	for _, n := range []int{0, -1, 5} {
		if _, err := NewPartition(grid, n); err == nil {
			t.Fatalf("NewPartition(%d) on 4 regions: want error", n)
		}
	}
	if _, err := NewPartition(nil, 1); err == nil {
		t.Fatal("NewPartition(nil grid): want error")
	}
}

func TestPartitionFrontier(t *testing.T) {
	// 4x4 grid, 2 shards: rows 0-1 belong to shard 0, rows 2-3 to
	// shard 1 (row-major stripes of 8). Frontier = rows 1 and 2.
	grid := geo.NewGrid(geo.BBox{MinLng: 0, MinLat: 0, MaxLng: 1, MaxLat: 1}, 4, 4)
	p, err := NewPartition(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < grid.NumRegions(); k++ {
		row, _ := grid.RowCol(geo.RegionID(k))
		wantFrontier := row == 1 || row == 2
		if p.IsFrontier(geo.RegionID(k)) != wantFrontier {
			t.Errorf("region %d (row %d): IsFrontier=%v, want %v",
				k, row, p.IsFrontier(geo.RegionID(k)), wantFrontier)
		}
	}
	if got := p.FrontierCount(0); got != 4 {
		t.Errorf("shard 0 frontier count = %d, want 4", got)
	}
	// A 1-shard partition has no frontier anywhere.
	solo, err := NewPartition(grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < grid.NumRegions(); k++ {
		if solo.IsFrontier(geo.RegionID(k)) {
			t.Fatalf("1-shard partition reports frontier region %d", k)
		}
	}
}

func TestWeightedPartitionCoversAndBalances(t *testing.T) {
	grid := geo.NewNYCGrid()
	// Hotspot weights: all load in a few central rows.
	weights := make([]float64, grid.NumRegions())
	for k := range weights {
		row, _ := grid.RowCol(geo.RegionID(k))
		if row >= 5 && row <= 8 {
			weights[k] = 100
		}
	}
	for _, n := range []int{1, 2, 4, 8} {
		p, err := NewWeightedPartition(grid, n, weights)
		if err != nil {
			t.Fatal(err)
		}
		// Coverage: every region exactly once, every shard non-empty.
		total := 0
		for s := 0; s < n; s++ {
			if len(p.Regions(ID(s))) == 0 {
				t.Fatalf("n=%d: shard %d owns no territory", n, s)
			}
			total += len(p.Regions(ID(s)))
		}
		if total != grid.NumRegions() {
			t.Fatalf("n=%d: %d regions assigned, want %d", n, total, grid.NumRegions())
		}
		// Balance: no shard carries more than a fair share plus the
		// weight of one region stripe boundary can shift.
		if n > 1 {
			perShard := make([]float64, n)
			for k, w := range weights {
				perShard[p.Owner(geo.RegionID(k))] += w
			}
			sum := 0.0
			for _, w := range perShard {
				sum += w
			}
			maxRegion := 100.0
			for s, w := range perShard {
				if w > sum/float64(n)+maxRegion*float64(grid.Cols()) {
					t.Fatalf("n=%d: shard %d carries %.0f of %.0f total", n, s, w, sum)
				}
			}
		}
	}
}

func TestWeightedPartitionDeterministic(t *testing.T) {
	grid := geo.NewNYCGrid()
	weights := make([]float64, grid.NumRegions())
	for k := range weights {
		weights[k] = float64(k%7) + 0.5
	}
	a, _ := NewWeightedPartition(grid, 5, weights)
	b, _ := NewWeightedPartition(grid, 5, weights)
	if !reflect.DeepEqual(a.owner, b.owner) {
		t.Fatal("same (grid, n, weights) produced different assignments")
	}
}

func TestWeightedPartitionRejectsBadWeights(t *testing.T) {
	grid := geo.NewNYCGrid()
	if _, err := NewWeightedPartition(grid, 2, make([]float64, 3)); err == nil {
		t.Fatal("short weight vector accepted")
	}
	// Degenerate (all-zero) weights fall back to the uniform split.
	p, err := NewWeightedPartition(grid, 4, make([]float64, grid.NumRegions()))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if got := len(p.Regions(ID(s))); got != 64 {
			t.Fatalf("zero-weight fallback: shard %d owns %d regions, want 64", s, got)
		}
	}
}

func TestPartitionOwnerOfClampsOutsidePoints(t *testing.T) {
	grid := geo.NewNYCGrid()
	p, err := NewPartition(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A point far outside the box must still resolve to some shard.
	s := p.OwnerOf(geo.Point{Lng: 0, Lat: 0})
	if s < 0 || int(s) >= 4 {
		t.Fatalf("OwnerOf(outside) = %d, want a valid shard", s)
	}
}
