// Package fixture is the wallclock golden-file fixture, checked under
// a determinism-critical import path by the lint tests.
package fixture

import "time"

// Bad reads the wall clock: finding.
func Bad() time.Time {
	return time.Now()
}

// BadSince measures against the wall clock: finding.
func BadSince(t time.Time) float64 {
	return time.Since(t).Seconds()
}

// BadValue passes time.Now as a default without calling it — still a
// wall-clock dependency: finding.
func BadValue() func() time.Time {
	return time.Now
}

// Waived carries a reasoned waiver: no finding.
func Waived() time.Time {
	return time.Now() //mrvdlint:ignore wallclock fixture exercises a deliberate wall-clock site
}

// Injected takes the clock as a parameter — the fix: no finding.
func Injected(now func() time.Time) time.Time {
	return now()
}

// Stale sits under a waiver that suppresses nothing: the waiver is
// the finding.
//
//mrvdlint:ignore wallclock this waiver suppresses nothing
func Stale() {}
