// Package fixture is the hotlabel golden-file fixture, checked under
// an instrumented import path by the lint tests.
package fixture

import (
	"strconv"

	"mrvd/internal/obs"
)

// Bad resolves the label child on every iteration: finding.
func Bad(r *obs.Registry, xs []float64) {
	v := r.HistogramVec("fixture_seconds", "h", obs.DefBuckets, "phase")
	for _, x := range xs {
		v.With("dispatch").Observe(x)
	}
}

// PreResolved hoists the child out of the loop — the fix: no finding.
func PreResolved(r *obs.Registry, xs []float64) {
	child := r.HistogramVec("fixture2_seconds", "h", obs.DefBuckets, "phase").With("dispatch")
	for _, x := range xs {
		child.Observe(x)
	}
}

// WaivedConstruction pre-resolves per-shard children once at startup;
// the reasoned waiver marks the deliberate exception: no finding.
func WaivedConstruction(r *obs.Registry, shards int) []*obs.Counter {
	vec := r.CounterVec("fixture_total", "c", "shard")
	out := make([]*obs.Counter, 0, shards)
	for s := 0; s < shards; s++ {
		out = append(out, vec.With(strconv.Itoa(s))) //mrvdlint:ignore hotlabel construction-time pre-resolution, runs once per shard
	}
	return out
}
