// Package fixture is the maporder golden-file fixture. The lint tests
// check it under a determinism-critical import path; the .golden file
// next to it pins exactly which lines fire.
package fixture

import "sort"

// Bad iterates a map directly: finding.
func Bad(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SortedAfterRange is the allowed collect-then-sort shape: no finding.
func SortedAfterRange(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectedUnsorted collects keys but never sorts them: finding.
func CollectedUnsorted(m map[string]int) []string {
	keys := []string{}
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Waived carries a reasoned waiver: no finding.
func Waived(m map[string]int) int {
	n := 0
	//mrvdlint:ignore maporder commutative sum, order cannot matter
	for _, v := range m {
		n += v
	}
	return n
}

// BareWaiver omits the required reason: the waiver itself is a
// finding, and the map range underneath stays flagged.
func BareWaiver(m map[string]int) int {
	n := 0
	//mrvdlint:ignore maporder
	for _, v := range m {
		n += v
	}
	return n
}
