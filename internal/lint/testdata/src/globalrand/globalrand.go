// Package fixture is the globalrand golden-file fixture. The lint
// tests check it twice: under an ordinary import path (the draws
// fire) and under mrvd/internal/stats (the exempt package — nothing
// fires).
package fixture

import "math/rand"

// Bad draws from the process-global source: finding.
func Bad() int {
	return rand.Intn(10)
}

// BadShuffle permutes via the global source: finding.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Seeded builds and uses an explicit stream — constructors and
// *rand.Rand methods are the fix, not the finding.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
