package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags calls to top-level math/rand (and math/rand/v2)
// functions anywhere in the module outside internal/stats. The
// top-level functions draw from the process-global source, so a
// single call threads shared hidden state through a run: seed-for-seed
// reproducibility breaks, and the per-shard stats.SplitSeed streams
// stop being independent. Constructors (rand.New, rand.NewSource,
// rand.NewZipf, …) are fine — they are exactly how seeded streams are
// built. internal/stats owns the seeded-stream constructors and is
// the one exempt package.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "top-level math/rand functions (process-global RNG state) anywhere outside internal/stats' seeded-stream constructors",
	Applies: func(pkgPath string) bool {
		return !pathWithin(pkgPath, "internal/stats")
	},
	Run: runGlobalRand,
}

// randConstructors are the math/rand{,/v2} package functions that
// build explicit generators rather than touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand (seeded streams) are the fix, not
			// the finding.
			if fn.Signature().Recv() != nil {
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"draw from a seeded *rand.Rand (stats.SplitSeed derives per-shard streams) so runs replay seed-for-seed",
				"rand.%s draws from the process-global source", fn.Name())
			return true
		})
	}
}
