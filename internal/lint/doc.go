// Package lint is mrvd's repo-specific static-analysis engine: it
// loads and type-checks the module with nothing but the standard
// library (go/parser + go/types + importer.ForCompiler(…, "source", …)
// — no x/tools), runs a configurable set of analyzers over the ASTs,
// and reports findings with file:line positions and one-line fix
// hints.
//
// The analyzers encode invariants every PR so far has defended by
// hand and that an ordinary linter cannot know about:
//
//   - maporder: range over a map in a determinism-critical package
//     iterates in randomized order; dispatch results must be
//     seed-for-seed reproducible, so keys have to be collected and
//     sorted before use.
//   - wallclock: the engine runs on simulated time; time.Now /
//     time.Since inside the simulation domain makes runs
//     irreproducible and couples tests to the wall clock.
//   - globalrand: top-level math/rand functions draw from the global
//     source, breaking seed-for-seed reproducibility and the
//     per-shard SplitSeed streams.
//   - hotlabel: *Vec.With label resolution inside a loop body pays a
//     family mutex + map lookup per iteration (~4% CPU in the
//     dispatch hot path before PR 8); children must be pre-resolved
//     at construction.
//
// A finding that is a deliberate exception is waived in place with an
// audited directive:
//
//	//mrvdlint:ignore <analyzer> <reason>
//
// The reason is mandatory — a bare waiver is itself a finding — and
// stale waivers (suppressing nothing) are findings too, so the waiver
// inventory cannot rot.
package lint
