package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer hit: where, what, and how to fix it.
type Finding struct {
	File     string `json:"file"` // module-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Hint     string `json:"hint"`
}

// String renders the finding in the canonical one-line text form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s (fix: %s)", f.File, f.Line, f.Col, f.Analyzer, f.Message, f.Hint)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset    *token.FileSet
	PkgPath string
	Files   []*ast.File
	Info    *types.Info

	analyzer string
	report   func(Finding)
	relTo    string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if p.relTo != "" {
		if rel, err := filepath.Rel(p.relTo, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	p.report(Finding{
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	Name string
	// Doc is the one-line description -list prints.
	Doc string
	// Applies scopes the analyzer to the packages whose invariant it
	// guards; pkgPath is the import path within the module.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// Analyzers returns the full catalogue in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallClock, GlobalRand, HotLabel}
}

// WaiverCheck is the name the engine reports waiver-audit findings
// under (bare or stale //mrvdlint:ignore directives). It is always on
// and cannot be disabled.
const WaiverCheck = "waiver"

// Select resolves -enable/-disable comma-lists against the catalogue.
// An empty enable list means "all". Unknown names are an error.
func Select(enable, disable []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	check := func(names []string) error {
		for _, n := range names {
			if byName[n] == nil {
				return fmt.Errorf("lint: unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(), ", "))
			}
		}
		return nil
	}
	if err := check(enable); err != nil {
		return nil, err
	}
	if err := check(disable); err != nil {
		return nil, err
	}
	selected := Analyzers()
	if len(enable) > 0 {
		selected = selected[:0:0]
		for _, a := range Analyzers() {
			for _, n := range enable {
				if a.Name == n {
					selected = append(selected, a)
					break
				}
			}
		}
	}
	if len(disable) > 0 {
		kept := selected[:0:0]
		for _, a := range selected {
			drop := false
			for _, n := range disable {
				if a.Name == n {
					drop = true
					break
				}
			}
			if !drop {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	return selected, nil
}

func analyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run loads the packages matched by patterns under the module rooted
// at root, runs the selected analyzers, audits waiver directives, and
// returns the surviving findings sorted by position. A non-nil error
// means the module could not be loaded or type-checked (the CLI's
// exit-2 case), not that findings exist.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, dir := range dirs {
		fs, err := checkDir(loader, dir, "", analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// CheckDir loads one directory as though its import path were asPath
// and runs the analyzers over it. Golden-file tests use it to check
// fixture packages under a determinism-critical path.
func CheckDir(root, dir, asPath string, analyzers []*Analyzer) ([]Finding, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	findings, err := checkDir(loader, dir, asPath, analyzers)
	if err != nil {
		return nil, err
	}
	sortFindings(findings)
	return findings, nil
}

func checkDir(loader *Loader, dir, asPath string, analyzers []*Analyzer) ([]Finding, error) {
	pkg, info, err := loader.LoadDir(dir, asPath)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	collect := func(f Finding) { findings = append(findings, f) }
	// ran guards the stale-waiver audit: a waiver is stale only when
	// its analyzer actually ran over this package (enabled and in
	// scope) and still had nothing to suppress.
	ran := make(map[string]bool)
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Fset:     loader.Fset,
			PkgPath:  pkg.Path,
			Files:    pkg.Files,
			Info:     info,
			analyzer: a.Name,
			report:   collect,
			relTo:    loader.Root,
		}
		a.Run(pass)
	}
	waivers, audit := collectWaivers(loader.Fset, loader.Root, pkg.Files)
	findings = applyWaivers(findings, waivers, ran)
	findings = append(findings, audit...)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathWithin reports whether pkgPath is pkg or a subpackage of pkg,
// where pkg is module-relative ("internal/sim").
func pathWithin(pkgPath, pkg string) bool {
	i := strings.Index(pkgPath, pkg)
	if i < 0 {
		return false
	}
	// Must start at a path-segment boundary and end at one.
	if i > 0 && pkgPath[i-1] != '/' {
		return false
	}
	rest := pkgPath[i+len(pkg):]
	return rest == "" || rest[0] == '/'
}

// deterministicPkgs are the packages whose outputs must be
// seed-for-seed reproducible: everything the dispatch loop, the
// sharded runtime, and the experiment reports are made of.
var deterministicPkgs = []string{
	"internal/sim",
	"internal/dispatch",
	"internal/shard",
	"internal/pool",
	"internal/core",
	"internal/experiments",
	"internal/stats",
}

func isDeterminismCritical(pkgPath string) bool {
	for _, p := range deterministicPkgs {
		if pathWithin(pkgPath, p) {
			return true
		}
	}
	return false
}

// instrumentedPkgs extend the determinism-critical set with the other
// packages that hold obs instruments; the hotlabel rule applies to
// all of them.
var instrumentedPkgs = []string{
	"internal/roadnet",
	"internal/server",
	"internal/load",
	"internal/obs",
}

func isInstrumented(pkgPath string) bool {
	if isDeterminismCritical(pkgPath) {
		return true
	}
	for _, p := range instrumentedPkgs {
		if pathWithin(pkgPath, p) {
			return true
		}
	}
	return false
}

// inspectStack walks the file like ast.Inspect while maintaining the
// ancestor stack (outermost first, excluding n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
