package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotLabel flags obs *Vec.With(...) label resolution inside for/range
// bodies in instrumented packages. With takes the family mutex and a
// label-map lookup; before PR 8 pre-resolved every fixed-label child
// at construction, that lookup cost ~4% of dispatch CPU. A With call
// that executes per loop iteration re-pays it on every pass — resolve
// the child once outside the loop and reuse it. Construction-time
// loops that resolve per-shard children once at startup are the
// deliberate exception and carry reasoned waivers.
var HotLabel = &Analyzer{
	Name:    "hotlabel",
	Doc:     "obs *Vec.With label resolution inside a for/range body in an instrumented package (pre-resolve children, PR 8 rule)",
	Applies: isInstrumented,
	Run:     runHotLabel,
}

func runHotLabel(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "With" {
				return
			}
			tv, ok := pass.Info.Types[sel.X]
			if !ok || !isObsVec(tv.Type) {
				return
			}
			if !insideLoopBody(call, stack) {
				return
			}
			pass.Reportf(call.Pos(),
				"resolve the child once with With outside the loop (at construction for fixed labels) and reuse it inside",
				"%s.With resolves a label child on every loop iteration", vecName(tv.Type))
		})
	}
}

// isObsVec reports whether t is (a pointer to) a labeled-family type
// from internal/obs: CounterVec, GaugeVec, HistogramVec.
func isObsVec(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil &&
		pathWithin(obj.Pkg().Path(), "internal/obs") &&
		strings.HasSuffix(obj.Name(), "Vec")
}

func vecName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "Vec"
}

// insideLoopBody reports whether n sits inside the body (not the
// header) of an enclosing for or range statement.
func insideLoopBody(n ast.Node, stack []ast.Node) bool {
	for _, a := range stack {
		var body *ast.BlockStmt
		switch loop := a.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			continue
		}
		if body != nil && body.Pos() <= n.Pos() && n.End() <= body.End() {
			return true
		}
	}
	return false
}
