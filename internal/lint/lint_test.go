package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata .golden files from current analyzer output")

// moduleRoot walks up to go.mod (internal/lint -> repo root).
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// checkFixture runs the full analyzer suite over one testdata fixture
// package as though it had the given import path, and renders findings
// in the golden format (basename:line:col: analyzer: message).
func checkFixture(t *testing.T, fixture, asPath string) string {
	t.Helper()
	root := moduleRoot(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := CheckDir(root, dir, asPath, Analyzers())
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", fixture, err)
	}
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.Base(f.File), f.Line, f.Col, f.Analyzer, f.Message)
	}
	return b.String()
}

func compareGolden(t *testing.T, fixture, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "src", fixture, fixture+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// The golden files pin, per analyzer, both the firing and the
// non-firing cases: the violation lines appear, the fixed shapes
// (sorted-after-range, pre-resolved child, injected clock, seeded
// stream) and reason-carrying waivers do not, and bare or stale
// waivers fire as waiver findings.

func TestMapOrderGolden(t *testing.T) {
	compareGolden(t, "maporder", checkFixture(t, "maporder", "mrvd/internal/sim"))
}

func TestWallClockGolden(t *testing.T) {
	compareGolden(t, "wallclock", checkFixture(t, "wallclock", "mrvd/internal/sim"))
}

func TestGlobalRandGolden(t *testing.T) {
	compareGolden(t, "globalrand", checkFixture(t, "globalrand", "mrvd/internal/workload"))
}

func TestHotLabelGolden(t *testing.T) {
	compareGolden(t, "hotlabel", checkFixture(t, "hotlabel", "mrvd/internal/shard"))
}

// TestGlobalRandExemptInStats pins the analyzer's one exempt package:
// the same fixture checked under mrvd/internal/stats yields no
// globalrand findings.
func TestGlobalRandExemptInStats(t *testing.T) {
	got := checkFixture(t, "globalrand", "mrvd/internal/stats")
	if strings.Contains(got, "globalrand") {
		t.Errorf("globalrand fired inside internal/stats:\n%s", got)
	}
}

// TestScopedPackagesDontFire pins Applies scoping: the maporder and
// wallclock fixtures raise no findings from those analyzers when
// checked under a package outside the determinism-critical set (the
// violations are real, the package is out of scope). The syntactic
// waiver audit still runs — a bare waiver is malformed anywhere — but
// the stale audit must not fire for analyzers that never ran.
func TestScopedPackagesDontFire(t *testing.T) {
	for _, fixture := range []string{"maporder", "wallclock"} {
		got := checkFixture(t, fixture, "mrvd/internal/server")
		if strings.Contains(got, ": "+fixture+":") {
			t.Errorf("%s fired outside the determinism-critical set:\n%s", fixture, got)
		}
		if strings.Contains(got, "stale waiver") {
			t.Errorf("stale-waiver audit fired for an analyzer that never ran:\n%s", got)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil, nil)
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(nil, nil) = %d analyzers, err %v", len(all), err)
	}
	only, err := Select([]string{"maporder", "hotlabel"}, nil)
	if err != nil || len(only) != 2 || only[0].Name != "maporder" || only[1].Name != "hotlabel" {
		t.Fatalf("Select(enable) = %v, err %v", names(only), err)
	}
	kept, err := Select(nil, []string{"wallclock"})
	if err != nil || len(kept) != 3 {
		t.Fatalf("Select(disable) = %v, err %v", names(kept), err)
	}
	for _, a := range kept {
		if a.Name == "wallclock" {
			t.Error("disabled analyzer still selected")
		}
	}
	both, err := Select([]string{"maporder", "wallclock"}, []string{"wallclock"})
	if err != nil || len(both) != 1 || both[0].Name != "maporder" {
		t.Fatalf("Select(enable, disable) = %v, err %v", names(both), err)
	}
	if _, err := Select([]string{"nope"}, nil); err == nil {
		t.Error("unknown analyzer name accepted")
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestRepoLintsClean is the self-application gate: the full suite
// over the real module must report zero findings — every violation
// fixed, every deliberate exception carrying a reasoned waiver. If
// this fails, either fix the flagged code or waive it with
// //mrvdlint:ignore <analyzer> <reason>.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root := moduleRoot(t)
	findings, err := Run(root, []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatalf("lint run failed to load the module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
