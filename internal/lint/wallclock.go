package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags references to time.Now / time.Since in
// determinism-critical packages. The engine runs on simulated batch
// time; a wall-clock read inside the simulation domain makes runs
// irreproducible and couples tests to scheduler latency.
//
// Wall-clock is legitimately the domain of internal/obs (WallMS span
// stamps, process gauges), internal/server (accept timestamps,
// submit→terminal latency), and internal/load (harness timing) — none
// of which are determinism-critical, so the analyzer never visits
// them; that package set is the analyzer's allowlist. The few real
// wall sites inside the critical packages (obs phase timers in
// sim.Engine, span WallMS, shard round timings, StateStore's
// injectable-clock default) carry reasoned waivers.
var WallClock = &Analyzer{
	Name:    "wallclock",
	Doc:     "time.Now/time.Since in a determinism-critical package (simulated-time domain); obs/server/load are the allowlist",
	Applies: isDeterminismCritical,
	Run:     runWallClock,
}

func runWallClock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if name := fn.Name(); name == "Now" || name == "Since" {
				pass.Reportf(sel.Pos(),
					"use the engine's simulated batch clock, inject a clock func (cf. StateStore.SetClock), or waive with //mrvdlint:ignore wallclock <why wall time is the domain>",
					"time.%s reads the wall clock inside the simulated-time domain", name)
			}
			return true
		})
	}
}
