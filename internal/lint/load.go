package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
// Test files (_test.go) are excluded: the analyzers guard production
// determinism, and tests legitimately use wall clocks and ad-hoc RNGs.
type Package struct {
	// Path is the package's import path within the module (or the
	// synthetic path a test asked to check it under).
	Path  string
	Dir   string
	Files []*ast.File
}

// Loader parses and type-checks packages of one module from source.
// One Loader shares a single FileSet and a single source importer
// across every LoadDir call, so each dependency is type-checked once.
type Loader struct {
	Root       string // module root: the directory containing go.mod
	ModulePath string
	Fset       *token.FileSet
	imp        types.Importer
}

// NewLoader reads go.mod under root and prepares a source importer.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", abs, err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	// The source importer type-checks dependencies (including the
	// standard library) from source via go/build. With cgo enabled,
	// packages like net would pull in cgo-generated code the importer
	// cannot produce; every such stdlib package has a pure-Go
	// fallback, so force it.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Root:       abs,
		ModulePath: mod,
		Fset:       fset,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// Expand resolves package patterns to directories, relative to the
// module root. Supported forms: "./..." (the whole module), a
// directory with a trailing "/..." (that subtree), or a plain
// directory. testdata, vendor, and hidden directories are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Root, dir)
		}
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: no such package directory: %s", pat)
		}
		if !recursive {
			if hasGoFiles(dir) {
				add(dir)
			}
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the non-test Go files of one
// directory. asPath overrides the import path the package is checked
// under ("" derives it from the directory's position in the module);
// golden-file tests use it to check fixtures as though they lived in
// a determinism-critical package.
func (l *Loader) LoadDir(dir, asPath string) (*Package, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	path := asPath
	if path == "" {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, nil, err
		}
		if rel == "." {
			path = l.ModulePath
		} else {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	if _, err := conf.Check(path, l.Fset, files, info); err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files}, info, nil
}
