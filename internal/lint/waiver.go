package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// waiverPrefix introduces an audited suppression directive:
//
//	//mrvdlint:ignore <analyzer> <reason>
//
// Placed at the end of the offending line or on its own line directly
// above, it suppresses that analyzer's findings there. The reason is
// mandatory and the analyzer name must exist; a directive that names
// no analyzer, gives no reason, or suppresses nothing is itself a
// finding, so the waiver inventory stays auditable.
const waiverPrefix = "//mrvdlint:"

type waiver struct {
	file     string // module-relative
	line     int    // the directive's own line
	analyzer string
	used     bool
}

// collectWaivers extracts every well-formed waiver in the package and
// reports malformed directives as findings under WaiverCheck.
func collectWaivers(fset *token.FileSet, root string, files []*ast.File) ([]*waiver, []Finding) {
	var waivers []*waiver
	var audit []Finding
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, waiverPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				file := pos.Filename
				if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				bad := func(msg, hint string) {
					audit = append(audit, Finding{
						File: file, Line: pos.Line, Col: pos.Column,
						Analyzer: WaiverCheck, Message: msg, Hint: hint,
					})
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 || fields[0] != "ignore" {
					bad("unknown mrvdlint directive", "the only directive is //mrvdlint:ignore <analyzer> <reason>")
					continue
				}
				if len(fields) < 2 {
					bad("waiver names no analyzer", "write //mrvdlint:ignore <analyzer> <reason>")
					continue
				}
				name := fields[1]
				known := false
				for _, a := range Analyzers() {
					if a.Name == name {
						known = true
						break
					}
				}
				if !known {
					bad("waiver names unknown analyzer "+name, "known analyzers: "+strings.Join(analyzerNames(), ", "))
					continue
				}
				if len(fields) < 3 {
					bad("bare waiver: a reason is required", "say why the "+name+" finding is a deliberate exception")
					continue
				}
				waivers = append(waivers, &waiver{file: file, line: pos.Line, analyzer: name})
			}
		}
	}
	return waivers, audit
}

// applyWaivers drops findings covered by a waiver on the same line or
// the line above, then reports waivers that suppressed nothing. The
// stale audit only fires for analyzers that actually ran over the
// package, so scoped -enable runs and out-of-scope packages don't
// flag other analyzers' waivers as stale.
func applyWaivers(findings []Finding, waivers []*waiver, ran map[string]bool) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, w := range waivers {
			if w.analyzer == f.Analyzer && w.file == f.File && (w.line == f.Line || w.line == f.Line-1) {
				w.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, w := range waivers {
		if !w.used && ran[w.analyzer] {
			kept = append(kept, Finding{
				File: w.file, Line: w.line, Col: 1,
				Analyzer: WaiverCheck,
				Message:  "stale waiver: no " + w.analyzer + " finding here",
				Hint:     "delete the directive (or move it to the offending line)",
			})
		}
	}
	return kept
}
