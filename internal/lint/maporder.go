package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` statements over map-typed values in
// determinism-critical packages. Go randomizes map iteration order,
// so any map range on a path that feeds dispatch decisions, event
// streams, or report bytes breaks seed-for-seed reproducibility —
// the invariant the 1-shard / scenario-off / pooling-off parity
// tests pin.
//
// The one allowed shape is collect-then-sort: a range body consisting
// solely of append statements into slices that are later passed to a
// sort/slices sorting call in the same function. Order-independent
// iterations (commutative folds, per-element mutation) are deliberate
// exceptions and must carry a reasoned //mrvdlint:ignore maporder
// waiver.
var MapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "range over a map in a determinism-critical package (sim, dispatch, shard, pool, core, experiments, stats) unless collected-and-sorted",
	Applies: isDeterminismCritical,
	Run:     runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectedAndSorted(pass, file, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"collect the keys, sort them, and range the sorted slice — or waive with //mrvdlint:ignore maporder <why order cannot matter>",
				"map iteration order is randomized; range over %s is nondeterministic", types.TypeString(tv.Type, relativeTo(pass)))
			return true
		})
	}
}

func relativeTo(pass *Pass) types.Qualifier {
	return func(p *types.Package) string {
		if p.Path() == pass.PkgPath {
			return ""
		}
		return p.Name()
	}
}

// collectedAndSorted reports whether rs is the allowed
// collect-then-sort shape: every statement in the body appends to a
// slice variable, and each collected slice is sorted after the loop
// in the same function.
func collectedAndSorted(pass *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	collected := make(map[types.Object]bool)
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
		arg0, ok := call.Args[0].(*ast.Ident)
		if !ok || arg0.Name != lhs.Name {
			return false
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		collected[obj] = true
	}
	if len(collected) == 0 {
		return false
	}
	encl := enclosingFunc(file, rs)
	if encl == nil {
		return false
	}
	// Each collected slice must flow into a sorting call after the loop.
	sorted := make(map[types.Object]bool)
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if !sortFuncs[obj.Name()] || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if v := pass.Info.Uses[id]; v != nil && collected[v] {
				sorted[v] = true
			}
		}
		return true
	})
	for obj := range collected {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

var sortFuncs = map[string]bool{
	// package sort
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	// package slices
	"SortFunc": true, "SortStableFunc": true,
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n.
func enclosingFunc(file *ast.File, n ast.Node) ast.Node {
	var encl ast.Node
	ast.Inspect(file, func(cand ast.Node) bool {
		switch cand.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if cand.Pos() <= n.Pos() && n.End() <= cand.End() {
				encl = cand // later matches are nested deeper
			}
		}
		return true
	})
	return encl
}
