package roadnet

import (
	"sync"

	"math"
	"sort"

	"mrvd/internal/geo"
)

// Coster converts an origin/destination pair into a travel cost in
// seconds. The paper treats travel time and distance interchangeably
// given a speed (Section 2); everything downstream (simulator, dispatch,
// queueing analysis) consumes this interface only.
type Coster interface {
	// Cost returns the travel time in seconds from a to b.
	Cost(a, b geo.Point) float64
}

// GreatCircleCoster approximates travel time as L1 street distance at a
// fixed speed. DetourFactor inflates the straight-line haversine distance
// when L1 is disabled; with Manhattan geometry the factor is implicit.
type GreatCircleCoster struct {
	// SpeedMPS is the assumed average vehicle speed in meters/second.
	SpeedMPS float64
	// UseManhattan selects L1 (street-grid) distance instead of L2.
	UseManhattan bool
	// DetourFactor multiplies the L2 distance when UseManhattan is false;
	// 1.0 means straight-line. Typical urban detour factors are ~1.3.
	DetourFactor float64
}

// DefaultSpeedMPS is the default average vehicle speed: 11 m/s
// (~40 km/h), a typical NYC taxi average outside the densest core.
const DefaultSpeedMPS = 11.0

// NewDefaultCoster returns the simulator's default coster: Manhattan
// distance at DefaultSpeedMPS.
func NewDefaultCoster() *GreatCircleCoster {
	return &GreatCircleCoster{SpeedMPS: DefaultSpeedMPS, UseManhattan: true}
}

// Cost implements Coster.
func (c *GreatCircleCoster) Cost(a, b geo.Point) float64 {
	speed := c.SpeedMPS
	if speed <= 0 {
		speed = 8.0
	}
	var d float64
	if c.UseManhattan {
		d = geo.Manhattan(a, b)
	} else {
		f := c.DetourFactor
		if f <= 0 {
			f = 1.0
		}
		d = geo.Equirect(a, b) * f
	}
	return d / speed
}

// GraphCoster computes travel time as a shortest path on a road network,
// snapping endpoints to their nearest graph nodes via a bucketed index.
// Queries memoize per-source shortest-path trees up to CacheSize sources
// (LRU-free: the cache is simply reset when full, which is fine for the
// batched access pattern where consecutive queries share sources). It is
// safe for concurrent use, so one coster can back a parallel Sweep.
type GraphCoster struct {
	g         *Graph
	snap      *snapIndex
	mu        sync.Mutex
	cache     map[NodeID][]float64
	CacheSize int
	// ApproachSpeedMPS prices the off-network legs between the query
	// points and their snapped nodes. The legs are local streets, so the
	// default is DefaultSpeedMPS; set to 0 to ignore approach legs.
	ApproachSpeedMPS float64
}

// NewGraphCoster wraps a road network in the Coster interface.
func NewGraphCoster(g *Graph) *GraphCoster {
	return &GraphCoster{
		g:                g,
		snap:             newSnapIndex(g),
		cache:            make(map[NodeID][]float64),
		CacheSize:        512,
		ApproachSpeedMPS: DefaultSpeedMPS,
	}
}

// Cost implements Coster. Unreachable pairs are priced at +Inf so the
// dispatcher naturally never selects them.
func (c *GraphCoster) Cost(a, b geo.Point) float64 {
	na, da := c.snap.nearest(a)
	nb, db := c.snap.nearest(b)
	if na == InvalidNode || nb == InvalidNode {
		return math.Inf(1)
	}
	c.mu.Lock()
	tree, ok := c.cache[na]
	c.mu.Unlock()
	if !ok {
		// Compute outside the lock: trees are deterministic, so a racing
		// duplicate computation is wasted work, not wrong work.
		tree = c.g.ShortestPathTree(na)
		c.mu.Lock()
		if len(c.cache) >= c.CacheSize {
			c.cache = make(map[NodeID][]float64)
		}
		c.cache[na] = tree
		c.mu.Unlock()
	}
	d := tree[nb]
	if math.IsInf(d, 1) {
		return d
	}
	if c.ApproachSpeedMPS > 0 {
		d += (da + db) / c.ApproachSpeedMPS
	}
	return d
}

// snapIndex buckets graph nodes on a coarse grid for nearest-node lookup.
type snapIndex struct {
	g       *Graph
	grid    *geo.Grid
	buckets [][]NodeID
}

func newSnapIndex(g *Graph) *snapIndex {
	// Derive the bucketing box from the node extent with a small margin.
	if g.NumNodes() == 0 {
		return &snapIndex{g: g}
	}
	box := geo.BBox{
		MinLng: math.Inf(1), MinLat: math.Inf(1),
		MaxLng: math.Inf(-1), MaxLat: math.Inf(-1),
	}
	for i := 0; i < g.NumNodes(); i++ {
		p := g.Point(NodeID(i))
		box.MinLng = math.Min(box.MinLng, p.Lng)
		box.MaxLng = math.Max(box.MaxLng, p.Lng)
		box.MinLat = math.Min(box.MinLat, p.Lat)
		box.MaxLat = math.Max(box.MaxLat, p.Lat)
	}
	const margin = 1e-6
	box.MinLng -= margin
	box.MinLat -= margin
	box.MaxLng += margin
	box.MaxLat += margin
	dim := int(math.Sqrt(float64(g.NumNodes())))
	if dim < 4 {
		dim = 4
	}
	if dim > 128 {
		dim = 128
	}
	grid := geo.NewGrid(box, dim, dim)
	buckets := make([][]NodeID, grid.NumRegions())
	for i := 0; i < g.NumNodes(); i++ {
		r := grid.Region(grid.Bounds().Clamp(g.Point(NodeID(i))))
		buckets[r] = append(buckets[r], NodeID(i))
	}
	return &snapIndex{g: g, grid: grid, buckets: buckets}
}

// nearest returns the closest node to p and its distance in meters,
// expanding the ring of searched buckets until a hit is confirmed.
func (s *snapIndex) nearest(p geo.Point) (NodeID, float64) {
	if s.g.NumNodes() == 0 {
		return InvalidNode, math.Inf(1)
	}
	p2 := s.grid.Bounds().Clamp(p)
	best := InvalidNode
	bestD := math.Inf(1)
	// Expand search radius ring by ring; cell size bounds the guarantee.
	cellMeters := s.grid.Bounds().WidthMeters() / float64(s.grid.Cols())
	for radius := cellMeters; ; radius *= 2 {
		for _, r := range s.grid.RegionsWithin(p2, radius) {
			for _, id := range s.buckets[r] {
				d := geo.Equirect(p, s.g.Point(id))
				if d < bestD {
					bestD = d
					best = id
				}
			}
		}
		// A confirmed hit closer than the searched radius cannot be beaten
		// by nodes outside it.
		if best != InvalidNode && bestD <= radius {
			return best, bestD
		}
		if radius > 2*s.grid.Bounds().WidthMeters()+2*s.grid.Bounds().HeightMeters() {
			// Entire area searched.
			return best, bestD
		}
	}
}

// RegionMatrix precomputes region-center to region-center travel times on
// the graph, one Dijkstra tree per region. The queueing analysis and the
// POLAR baseline consume it for region-level planning.
func RegionMatrix(g *Graph, grid *geo.Grid) [][]float64 {
	n := grid.NumRegions()
	mat := make([][]float64, n)
	snap := newSnapIndex(g)
	centers := make([]NodeID, n)
	for r := 0; r < n; r++ {
		centers[r], _ = snap.nearest(grid.Center(geo.RegionID(r)))
	}
	for r := 0; r < n; r++ {
		mat[r] = make([]float64, n)
		if centers[r] == InvalidNode {
			for c := range mat[r] {
				mat[r][c] = math.Inf(1)
			}
			continue
		}
		tree := g.ShortestPathTree(centers[r])
		for c := 0; c < n; c++ {
			if centers[c] == InvalidNode {
				mat[r][c] = math.Inf(1)
			} else {
				mat[r][c] = tree[centers[c]]
			}
		}
	}
	return mat
}

// MedianStreetSpeed estimates the effective network speed by sampling
// edge costs, useful for calibrating a GreatCircleCoster against a graph.
func MedianStreetSpeed(g *Graph) float64 {
	if g.NumArcs() == 0 {
		return 0
	}
	speeds := make([]float64, 0, g.NumArcs())
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.arcs(NodeID(v)) {
			d := geo.Equirect(g.Point(NodeID(v)), g.Point(e.to))
			if e.cost > 0 {
				speeds = append(speeds, d/e.cost)
			}
		}
	}
	if len(speeds) == 0 {
		return 0
	}
	sort.Float64s(speeds)
	return speeds[len(speeds)/2]
}
