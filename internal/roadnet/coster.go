package roadnet

import (
	"sync"

	"math"
	"sort"

	"mrvd/internal/geo"
)

// Coster converts an origin/destination pair into a travel cost in
// seconds. The paper treats travel time and distance interchangeably
// given a speed (Section 2); everything downstream (simulator, dispatch,
// queueing analysis) consumes this interface only.
type Coster interface {
	// Cost returns the travel time in seconds from a to b.
	Cost(a, b geo.Point) float64
}

// GreatCircleCoster approximates travel time as L1 street distance at a
// fixed speed. DetourFactor inflates the straight-line haversine distance
// when L1 is disabled; with Manhattan geometry the factor is implicit.
type GreatCircleCoster struct {
	// SpeedMPS is the assumed average vehicle speed in meters/second.
	SpeedMPS float64
	// UseManhattan selects L1 (street-grid) distance instead of L2.
	UseManhattan bool
	// DetourFactor multiplies the L2 distance when UseManhattan is false;
	// 1.0 means straight-line. Typical urban detour factors are ~1.3.
	DetourFactor float64
}

// DefaultSpeedMPS is the default average vehicle speed: 11 m/s
// (~40 km/h), a typical NYC taxi average outside the densest core.
const DefaultSpeedMPS = 11.0

// NewDefaultCoster returns the simulator's default coster: Manhattan
// distance at DefaultSpeedMPS.
func NewDefaultCoster() *GreatCircleCoster {
	return &GreatCircleCoster{SpeedMPS: DefaultSpeedMPS, UseManhattan: true}
}

// Cost implements Coster.
func (c *GreatCircleCoster) Cost(a, b geo.Point) float64 {
	speed := c.SpeedMPS
	if speed <= 0 {
		speed = 8.0
	}
	var d float64
	if c.UseManhattan {
		d = geo.Manhattan(a, b)
	} else {
		f := c.DetourFactor
		if f <= 0 {
			f = 1.0
		}
		d = geo.Equirect(a, b) * f
	}
	return d / speed
}

// GraphCoster computes travel time as a shortest path on a road network,
// snapping endpoints to their nearest graph nodes via a bucketed index.
// Shortest-path trees are memoized up to CacheSize sources under clock
// (second-chance) eviction: single-pair Cost queries insert full trees,
// batched Costs queries insert truncated trees tagged with their
// coverage horizon, and both paths serve any cached tree whose horizon
// reaches the queried targets — so a stationary driver's tree from one
// batch prices the next, and re-queried sources survive cache pressure
// while one-shot scans evict themselves. It is safe for concurrent use,
// so one coster can back a parallel Sweep, and it implements
// BatchCoster for many-to-many pricing (see Costs).
type GraphCoster struct {
	g     *Graph
	snap  *snapIndex
	mu    sync.Mutex
	cache *treeCache
	// CacheSize bounds the number of memoized shortest-path trees. Set
	// it before the first query; the default is 512.
	CacheSize int
	// ApproachSpeedMPS prices the off-network legs between the query
	// points and their snapped nodes. The legs are local streets, so the
	// default is DefaultSpeedMPS; set to 0 to ignore approach legs.
	ApproachSpeedMPS float64

	stats costerCounters
}

// NewGraphCoster wraps a road network in the Coster interface.
func NewGraphCoster(g *Graph) *GraphCoster {
	return &GraphCoster{
		g:                g,
		snap:             newSnapIndex(g),
		cache:            newTreeCache(),
		CacheSize:        512,
		ApproachSpeedMPS: DefaultSpeedMPS,
	}
}

// Cost implements Coster. Unreachable pairs are priced at +Inf so the
// dispatcher naturally never selects them.
func (c *GraphCoster) Cost(a, b geo.Point) float64 {
	na, da := c.snap.nearest(a)
	nb, db := c.snap.nearest(b)
	if na == InvalidNode || nb == InvalidNode {
		return math.Inf(1)
	}
	c.mu.Lock()
	tree, horizon, ok := c.cache.get(na)
	c.mu.Unlock()
	if ok && tree[nb] <= horizon {
		c.stats.cacheHits.Add(1)
	} else {
		// Miss, or a batch-cached partial tree that doesn't reach nb.
		// Compute a full tree outside the lock: trees are deterministic,
		// so a racing duplicate computation is wasted work, not wrong
		// work.
		var settled int
		tree, settled, horizon = c.g.dijkstraFrom(na, nil, 0)
		c.stats.trees.Add(1)
		c.stats.settled.Add(int64(settled))
		c.mu.Lock()
		evicted := c.cache.put(na, tree, horizon, c.CacheSize)
		c.mu.Unlock()
		if evicted {
			c.stats.evictions.Add(1)
		}
	}
	d := tree[nb]
	if math.IsInf(d, 1) {
		return d
	}
	if c.ApproachSpeedMPS > 0 {
		d += (da + db) / c.ApproachSpeedMPS
	}
	return d
}

// treeCache memoizes shortest-path trees per source node with clock
// (second-chance) eviction: every hit sets the entry's reference bit,
// and an insert at capacity sweeps the clock hand, clearing set bits and
// replacing the first unreferenced entry. Unlike the previous
// reset-when-full policy — which discarded every hot tree the moment the
// cache filled, typically mid-batch — eviction pressure now lands on the
// sources that stopped being queried. Callers hold the owning coster's
// mutex; the cache itself does no locking.
type treeCache struct {
	slots []treeSlot
	index map[NodeID]int
	hand  int
}

// treeSlot is one cached tree plus its exact-coverage horizon: entries
// with dist <= horizon are final shortest-path values (+Inf for full
// trees, the break distance for truncated batch trees). Callers must
// check coverage before trusting a distance.
type treeSlot struct {
	node    NodeID
	tree    []float64
	horizon float64
	ref     bool
}

func newTreeCache() *treeCache {
	return &treeCache{index: make(map[NodeID]int)}
}

// get returns the cached tree and horizon for n, marking the entry
// referenced.
func (tc *treeCache) get(n NodeID) ([]float64, float64, bool) {
	i, ok := tc.index[n]
	if !ok {
		return nil, 0, false
	}
	tc.slots[i].ref = true
	return tc.slots[i].tree, tc.slots[i].horizon, true
}

// put inserts a tree, evicting by second chance once capacity entries
// exist. New entries start unreferenced: a source only earns its
// reference bit by being queried again, so a scan of one-shot sources
// evicts itself under pressure while the re-queried hot set survives.
// It reports whether an existing entry was evicted to make room.
func (tc *treeCache) put(n NodeID, tree []float64, horizon float64, capacity int) (evicted bool) {
	if i, ok := tc.index[n]; ok {
		tc.slots[i].tree = tree
		tc.slots[i].horizon = horizon
		tc.slots[i].ref = true
		return false
	}
	if capacity < 1 {
		capacity = 1
	}
	if len(tc.slots) < capacity {
		tc.index[n] = len(tc.slots)
		tc.slots = append(tc.slots, treeSlot{node: n, tree: tree, horizon: horizon})
		return false
	}
	for {
		if tc.hand >= len(tc.slots) {
			tc.hand = 0
		}
		s := &tc.slots[tc.hand]
		if s.ref {
			s.ref = false
			tc.hand++
			continue
		}
		delete(tc.index, s.node)
		*s = treeSlot{node: n, tree: tree, horizon: horizon}
		tc.index[n] = tc.hand
		tc.hand++
		return true
	}
}

// snapIndex buckets graph nodes on a coarse grid for nearest-node lookup.
type snapIndex struct {
	g       *Graph
	grid    *geo.Grid
	buckets [][]NodeID
}

func newSnapIndex(g *Graph) *snapIndex {
	// Derive the bucketing box from the node extent with a small margin.
	if g.NumNodes() == 0 {
		return &snapIndex{g: g}
	}
	box := geo.BBox{
		MinLng: math.Inf(1), MinLat: math.Inf(1),
		MaxLng: math.Inf(-1), MaxLat: math.Inf(-1),
	}
	for i := 0; i < g.NumNodes(); i++ {
		p := g.Point(NodeID(i))
		box.MinLng = math.Min(box.MinLng, p.Lng)
		box.MaxLng = math.Max(box.MaxLng, p.Lng)
		box.MinLat = math.Min(box.MinLat, p.Lat)
		box.MaxLat = math.Max(box.MaxLat, p.Lat)
	}
	const margin = 1e-6
	box.MinLng -= margin
	box.MinLat -= margin
	box.MaxLng += margin
	box.MaxLat += margin
	dim := int(math.Sqrt(float64(g.NumNodes())))
	if dim < 4 {
		dim = 4
	}
	if dim > 128 {
		dim = 128
	}
	grid := geo.NewGrid(box, dim, dim)
	buckets := make([][]NodeID, grid.NumRegions())
	for i := 0; i < g.NumNodes(); i++ {
		r := grid.Region(grid.Bounds().Clamp(g.Point(NodeID(i))))
		buckets[r] = append(buckets[r], NodeID(i))
	}
	return &snapIndex{g: g, grid: grid, buckets: buckets}
}

// nearest returns the closest node to p and its distance in meters,
// expanding the ring of searched buckets until a hit is confirmed.
func (s *snapIndex) nearest(p geo.Point) (NodeID, float64) {
	if s.g.NumNodes() == 0 {
		return InvalidNode, math.Inf(1)
	}
	p2 := s.grid.Bounds().Clamp(p)
	best := InvalidNode
	bestD := math.Inf(1)
	// Expand search radius ring by ring; cell size bounds the guarantee.
	cellMeters := s.grid.Bounds().WidthMeters() / float64(s.grid.Cols())
	for radius := cellMeters; ; radius *= 2 {
		for _, r := range s.grid.RegionsWithin(p2, radius) {
			for _, id := range s.buckets[r] {
				d := geo.Equirect(p, s.g.Point(id))
				if d < bestD {
					bestD = d
					best = id
				}
			}
		}
		// A confirmed hit closer than the searched radius cannot be beaten
		// by nodes outside it.
		if best != InvalidNode && bestD <= radius {
			return best, bestD
		}
		if radius > 2*s.grid.Bounds().WidthMeters()+2*s.grid.Bounds().HeightMeters() {
			// Entire area searched.
			return best, bestD
		}
	}
}

// RegionMatrix precomputes region-center to region-center travel times on
// the graph, one Dijkstra tree per region. The queueing analysis and the
// POLAR baseline consume it for region-level planning.
func RegionMatrix(g *Graph, grid *geo.Grid) [][]float64 {
	n := grid.NumRegions()
	mat := make([][]float64, n)
	snap := newSnapIndex(g)
	centers := make([]NodeID, n)
	for r := 0; r < n; r++ {
		centers[r], _ = snap.nearest(grid.Center(geo.RegionID(r)))
	}
	for r := 0; r < n; r++ {
		mat[r] = make([]float64, n)
		if centers[r] == InvalidNode {
			for c := range mat[r] {
				mat[r][c] = math.Inf(1)
			}
			continue
		}
		tree := g.ShortestPathTree(centers[r])
		for c := 0; c < n; c++ {
			if centers[c] == InvalidNode {
				mat[r][c] = math.Inf(1)
			} else {
				mat[r][c] = tree[centers[c]]
			}
		}
	}
	return mat
}

// MedianStreetSpeed estimates the effective network speed by sampling
// edge costs, useful for calibrating a GreatCircleCoster against a graph.
func MedianStreetSpeed(g *Graph) float64 {
	if g.NumArcs() == 0 {
		return 0
	}
	speeds := make([]float64, 0, g.NumArcs())
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.arcs(NodeID(v)) {
			d := geo.Equirect(g.Point(NodeID(v)), g.Point(e.to))
			if e.cost > 0 {
				speeds = append(speeds, d/e.cost)
			}
		}
	}
	if len(speeds) == 0 {
		return 0
	}
	sort.Float64s(speeds)
	return speeds[len(speeds)/2]
}
