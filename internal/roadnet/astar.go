package roadnet

import (
	"container/heap"
	"math"

	"mrvd/internal/geo"
)

// AStar returns the minimum travel cost from src to dst in seconds using
// A* with a great-circle admissible heuristic: straight-line distance
// divided by the graph's maximum street speed can never overestimate the
// remaining travel time, so the result equals Dijkstra's. On city-scale
// grids it expands a fraction of the nodes plain Dijkstra visits.
func (g *Graph) AStar(src, dst NodeID) (float64, bool) {
	if src == dst {
		return 0, true
	}
	if src < 0 || dst < 0 || int(src) >= g.NumNodes() || int(dst) >= g.NumNodes() {
		return 0, false
	}
	maxSpeed := g.maxStreetSpeed()
	if maxSpeed <= 0 {
		return g.ShortestPath(src, dst)
	}
	target := g.Point(dst)
	h := func(v NodeID) float64 {
		return geo.Equirect(g.Point(v), target) / maxSpeed
	}

	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := priorityQueue{{node: src, dist: h(src)}}
	closed := make([]bool, g.NumNodes())
	for len(pq) > 0 {
		item := heap.Pop(&pq).(pqItem)
		v := item.node
		if closed[v] {
			continue
		}
		closed[v] = true
		if v == dst {
			return dist[v], true
		}
		for _, e := range g.arcs(v) {
			nd := dist[v] + e.cost
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(&pq, pqItem{node: e.to, dist: nd + h(e.to)})
			}
		}
	}
	return 0, false
}

// maxStreetSpeed returns the fastest observed street speed (m/s),
// memoized on first use; it is the admissibility constant of AStar.
func (g *Graph) maxStreetSpeed() float64 {
	if g.maxSpeed > 0 {
		return g.maxSpeed
	}
	best := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		p := g.Point(NodeID(v))
		for _, e := range g.arcs(NodeID(v)) {
			if e.cost <= 0 {
				continue
			}
			if s := geo.Equirect(p, g.Point(e.to)) / e.cost; s > best {
				best = s
			}
		}
	}
	g.maxSpeed = best
	return best
}
