package roadnet

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mrvd/internal/geo"
)

// BatchCoster extends Coster with many-to-many pricing: one call prices
// every (source, target) pair and returns a dense cost matrix. The batch
// dispatcher's hot path is exactly this shape — each batch needs the
// pickup cost of every candidate driver to every waiting rider — and a
// batch-aware implementation can amortize work per-pair queries repeat
// (snapping, shortest-path trees, lock traffic).
//
// The contract is strict equivalence: Costs(S, T)[i][j] must equal
// Cost(S[i], T[j]) bitwise for every pair, so swapping the per-pair path
// for the batch path never changes dispatch results, only their cost.
type BatchCoster interface {
	Coster
	// Costs returns the len(sources) x len(targets) travel-time matrix
	// in seconds, +Inf for unreachable pairs. The returned rows are
	// freshly allocated and owned by the caller.
	Costs(sources, targets []geo.Point) [][]float64
}

// PerSourceAmortized is an optional BatchCoster capability: it reports
// whether one dense Costs call is worth more than pricing individual
// cells on demand. True means Costs amortizes per-source work across
// targets (a shortest-path tree per unique source) or per-call overhead
// across cells (one RPC to a routing service), so callers should hand
// it the full dense matrix — and the engine treats BatchCosters that
// don't implement the interface as true for the same reason. False
// opts out: a closed form is O(1) per cell with nothing to amortize,
// so pricing only the cells actually read is strictly cheaper.
type PerSourceAmortized interface {
	BatchCoster
	AmortizesPerSource() bool
}

// AmortizesPerSource implements PerSourceAmortized: graph costers pay
// one truncated Dijkstra per unique source, which every target shares.
func (c *GraphCoster) AmortizesPerSource() bool { return true }

// AmortizesPerSource implements PerSourceAmortized: the closed form has
// no per-source work to amortize, so batch callers do better pricing
// exactly the cells they read than filling a dense matrix.
func (c *GreatCircleCoster) AmortizesPerSource() bool { return false }

// AsBatchCoster returns c's native batch implementation when it has one,
// and otherwise adapts c with a per-pair loop, so callers can consume
// the batch API unconditionally while plain Costers keep working as
// compatibility shims.
func AsBatchCoster(c Coster) BatchCoster {
	if b, ok := c.(BatchCoster); ok {
		return b
	}
	return pairwiseBatch{c}
}

// pairwiseBatch is the fallback BatchCoster over a single-pair Coster.
type pairwiseBatch struct{ Coster }

func (p pairwiseBatch) Costs(sources, targets []geo.Point) [][]float64 {
	out := newCostMatrix(len(sources), len(targets))
	for i, s := range sources {
		for j, t := range targets {
			out[i][j] = p.Coster.Cost(s, t)
		}
	}
	return out
}

// newCostMatrix allocates a dense rows x cols matrix backed by one slab.
func newCostMatrix(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	cells := make([]float64, rows*cols)
	for i := range out {
		out[i] = cells[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}

// Costs implements BatchCoster. The closed form is evaluated cell by
// cell through Cost itself, so the matrix is trivially bitwise-identical
// to per-pair queries; the win is one slab allocation and no interface
// dispatch in callers' inner loops.
func (c *GreatCircleCoster) Costs(sources, targets []geo.Point) [][]float64 {
	out := newCostMatrix(len(sources), len(targets))
	for i, s := range sources {
		row := out[i]
		for j, t := range targets {
			row[j] = c.Cost(s, t)
		}
	}
	return out
}

// costerCounters instruments a GraphCoster's query work.
type costerCounters struct {
	trees     atomic.Int64
	partials  atomic.Int64
	settled   atomic.Int64
	cacheHits atomic.Int64
	evictions atomic.Int64
}

// CosterStats snapshots a GraphCoster's cumulative query counters.
type CosterStats struct {
	// Trees counts full shortest-path trees computed by single-pair
	// Cost queries.
	Trees int64
	// PartialTrees counts Dijkstra runs issued by batched Costs
	// queries: truncated for first-seen sources, full when promoting a
	// hot source whose cached tree fell short.
	PartialTrees int64
	// SettledNodes totals nodes finalized across all Dijkstra runs —
	// the unit of shortest-path work the per-pair and batch query paths
	// share, and what BenchmarkBatchCosts compares. A full tree settles
	// every reachable node; a truncated batch run stops as soon as the
	// batch's target nodes are settled.
	SettledNodes int64
	// CacheHits counts queries answered from the tree cache.
	CacheHits int64
	// Evictions counts tree-cache entries displaced by the clock
	// (second-chance) sweep to make room for a new source's tree.
	Evictions int64
}

// Add accumulates o into s — how a sharded runtime's per-shard coster
// counters aggregate into one city-wide view.
func (s *CosterStats) Add(o CosterStats) {
	s.Trees += o.Trees
	s.PartialTrees += o.PartialTrees
	s.SettledNodes += o.SettledNodes
	s.CacheHits += o.CacheHits
	s.Evictions += o.Evictions
}

// Stats snapshots the coster's cumulative counters.
func (c *GraphCoster) Stats() CosterStats {
	return CosterStats{
		Trees:        c.stats.trees.Load(),
		PartialTrees: c.stats.partials.Load(),
		SettledNodes: c.stats.settled.Load(),
		CacheHits:    c.stats.cacheHits.Load(),
		Evictions:    c.stats.evictions.Load(),
	}
}

// ResetStats zeroes the counters (benchmark bookkeeping).
func (c *GraphCoster) ResetStats() {
	c.stats.trees.Store(0)
	c.stats.partials.Store(0)
	c.stats.settled.Store(0)
	c.stats.cacheHits.Store(0)
	c.stats.evictions.Store(0)
}

// Costs implements BatchCoster. Every endpoint is snapped exactly once,
// snapped source nodes are deduplicated, and one truncated Dijkstra runs
// per unique unserved source on a parallel worker pool. The query path
// acquires the coster's mutex twice — once to consult the tree cache up
// front, once to publish new trees — rather than once per pair, so
// workers never contend on a lock.
//
// Each truncated run settles the graph only until the batch's target
// nodes are finalized, which on clustered city workloads is a small
// fraction of the full tree a per-pair Cost query would expand (Stats
// reports both in SettledNodes). Truncation never changes settled
// values, so the matrix is bitwise-identical to per-pair queries.
//
// Trees are cached with their coverage horizon, so consecutive batches
// reuse them: a stationary driver's tree from the last batch serves
// this one as long as its targets stay inside the settled horizon. A
// cached tree that proves insufficient is recomputed as a full tree —
// the source is demonstrably hot, so one full expansion buys every
// future batch a guaranteed hit.
func (c *GraphCoster) Costs(sources, targets []geo.Point) [][]float64 {
	nT := len(targets)
	out := newCostMatrix(len(sources), nT)
	if len(sources) == 0 || nT == 0 {
		return out
	}

	// Snap all endpoints once.
	srcNode := make([]NodeID, len(sources))
	srcApproach := make([]float64, len(sources))
	for i, p := range sources {
		srcNode[i], srcApproach[i] = c.snap.nearest(p)
	}
	tgtNode := make([]NodeID, nT)
	tgtApproach := make([]float64, nT)
	needed := make([]bool, c.g.NumNodes())
	var tgtUniq []NodeID
	for j, p := range targets {
		tgtNode[j], tgtApproach[j] = c.snap.nearest(p)
		if n := tgtNode[j]; n != InvalidNode && !needed[n] {
			needed[n] = true
			tgtUniq = append(tgtUniq, n)
		}
	}
	uniqueTargets := len(tgtUniq)

	// Deduplicate source nodes in first-appearance order: co-located
	// drivers share one Dijkstra.
	rowOf := make(map[NodeID]int, len(sources))
	var uniq []NodeID
	for _, n := range srcNode {
		if n == InvalidNode {
			continue
		}
		if _, ok := rowOf[n]; !ok {
			rowOf[n] = len(uniq)
			uniq = append(uniq, n)
		}
	}

	// covered reports whether a cached tree's horizon reaches every
	// unique target node of this batch: only then are its values final
	// for every cell the matrix will read. It runs under the coster's
	// mutex, hence the deduplicated scan.
	covered := func(tree []float64, horizon float64) bool {
		for _, n := range tgtUniq {
			if !(tree[n] <= horizon) {
				return false
			}
		}
		return true
	}

	// First lock acquisition: serve sources from cached trees — full
	// ones from single-pair queries, or earlier batches' partial trees
	// whose horizon covers this batch's targets.
	trees := make([][]float64, len(uniq))
	horizons := make([]float64, len(uniq))
	var missing []int
	promote := make(map[int]bool)
	c.mu.Lock()
	for u, n := range uniq {
		if t, hz, ok := c.cache.get(n); ok && covered(t, hz) {
			trees[u] = t
		} else {
			missing = append(missing, u)
			// A cached-but-insufficient tree marks a hot source: spend
			// one full expansion now so every future batch hits.
			promote[u] = ok
		}
	}
	c.mu.Unlock()
	c.stats.cacheHits.Add(int64(len(uniq) - len(missing)))

	// Dijkstras for the rest — truncated for first-seen sources, full
	// for promoted ones — fanned over a worker pool. The needed mask is
	// shared read-only; each worker owns its dist slice.
	if len(missing) > 0 {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(missing) {
			workers = len(missing)
		}
		var next, settledTotal atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(missing) {
						return
					}
					u := missing[k]
					var tree []float64
					var settled int
					var horizon float64
					if promote[u] {
						tree, settled, horizon = c.g.dijkstraFrom(uniq[u], nil, 0)
					} else {
						tree, settled, horizon = c.g.dijkstraFrom(uniq[u], needed, uniqueTargets)
					}
					trees[u] = tree
					horizons[u] = horizon
					settledTotal.Add(int64(settled))
				}
			}()
		}
		wg.Wait()
		c.stats.partials.Add(int64(len(missing)))
		c.stats.settled.Add(settledTotal.Load())

		// Second lock acquisition: publish the new trees so the next
		// batch (and single-pair queries within their horizon) reuse
		// them.
		c.mu.Lock()
		var evictions int64
		for _, u := range missing {
			if c.cache.put(uniq[u], trees[u], horizons[u], c.CacheSize) {
				evictions++
			}
		}
		c.mu.Unlock()
		if evictions > 0 {
			c.stats.evictions.Add(evictions)
		}
	}

	// Assemble the matrix, pricing approach legs exactly as Cost does.
	for i := range sources {
		row := out[i]
		if srcNode[i] == InvalidNode {
			for j := range row {
				row[j] = math.Inf(1)
			}
			continue
		}
		tree := trees[rowOf[srcNode[i]]]
		for j := 0; j < nT; j++ {
			if tgtNode[j] == InvalidNode {
				row[j] = math.Inf(1)
				continue
			}
			d := tree[tgtNode[j]]
			if math.IsInf(d, 1) {
				row[j] = d
				continue
			}
			if c.ApproachSpeedMPS > 0 {
				d += (srcApproach[i] + tgtApproach[j]) / c.ApproachSpeedMPS
			}
			row[j] = d
		}
	}
	return out
}
