package roadnet

import (
	"math/rand"

	"mrvd/internal/geo"
)

// GridNetworkConfig parameterizes the synthetic Manhattan-style network
// generator. Zero values take the documented defaults.
type GridNetworkConfig struct {
	// Box is the area the network covers. Zero value defaults to geo.NYCBBox.
	Box geo.BBox
	// Rows and Cols are the number of street intersections along each
	// axis. Defaults: 48x48 (a block every ~470m over the NYC box).
	Rows, Cols int
	// SpeedMPS is the base free-flow travel speed in meters/second.
	// Default: DefaultSpeedMPS, matching the great-circle coster.
	SpeedMPS float64
	// SpeedJitter is the relative standard deviation of per-street speed
	// variation (congestion heterogeneity). Default 0.15. Set negative to
	// disable jitter entirely.
	SpeedJitter float64
	// DropFraction removes this fraction of interior edges to break the
	// perfect lattice (rivers, parks, one-ways). Connectivity of the
	// remaining lattice is preserved by only dropping edges whose removal
	// keeps both endpoints on the boundary ring reachable. Default 0.05.
	DropFraction float64
	// Seed drives all randomness in generation.
	Seed int64
}

func (c GridNetworkConfig) withDefaults() GridNetworkConfig {
	zero := geo.BBox{}
	if c.Box == zero {
		c.Box = geo.NYCBBox
	}
	if c.Rows <= 1 {
		c.Rows = 48
	}
	if c.Cols <= 1 {
		c.Cols = 48
	}
	if c.SpeedMPS <= 0 {
		c.SpeedMPS = DefaultSpeedMPS
	}
	if c.SpeedJitter == 0 {
		c.SpeedJitter = 0.15
	}
	if c.SpeedJitter < 0 {
		c.SpeedJitter = 0
	}
	if c.DropFraction < 0 || c.DropFraction >= 0.5 {
		c.DropFraction = 0.05
	}
	return c
}

// GenerateGridNetwork builds a Manhattan-style lattice road network over
// the configured box. Every intersection is connected to its 4-neighbours
// by bidirectional streets whose travel time is distance divided by a
// jittered street speed. A small fraction of non-bridge edges is dropped
// so that shortest paths are not perfectly L1.
func GenerateGridNetwork(cfg GridNetworkConfig) *Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()
	nodeAt := make([]NodeID, cfg.Rows*cfg.Cols)
	dLng := (cfg.Box.MaxLng - cfg.Box.MinLng) / float64(cfg.Cols-1)
	dLat := (cfg.Box.MaxLat - cfg.Box.MinLat) / float64(cfg.Rows-1)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			p := geo.Point{
				Lng: cfg.Box.MinLng + float64(c)*dLng,
				Lat: cfg.Box.MinLat + float64(r)*dLat,
			}
			nodeAt[r*cfg.Cols+c] = b.AddNode(p)
		}
	}
	speed := func() float64 {
		s := cfg.SpeedMPS * (1 + cfg.SpeedJitter*rng.NormFloat64())
		minS := cfg.SpeedMPS * 0.3
		if s < minS {
			s = minS
		}
		return s
	}
	addStreet := func(u, v NodeID) {
		d := geo.Equirect(b.pts[u], b.pts[v])
		b.AddEdge(u, v, d/speed())
	}
	// Horizontal and vertical streets. Boundary-ring edges are never
	// dropped, which guarantees the network stays connected.
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			u := nodeAt[r*cfg.Cols+c]
			if c+1 < cfg.Cols {
				v := nodeAt[r*cfg.Cols+c+1]
				interior := r > 0 && r < cfg.Rows-1
				if !interior || rng.Float64() >= cfg.DropFraction {
					addStreet(u, v)
				}
			}
			if r+1 < cfg.Rows {
				v := nodeAt[(r+1)*cfg.Cols+c]
				interior := c > 0 && c < cfg.Cols-1
				if !interior || rng.Float64() >= cfg.DropFraction {
					addStreet(u, v)
				}
			}
		}
	}
	return b.Build()
}
