package roadnet

import (
	"container/heap"
	"math"
)

// pqItem is one entry of the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int           { return len(q) }
func (q priorityQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ShortestPath returns the minimum travel cost from src to dst in seconds
// and whether dst is reachable. It runs a lazy-deletion binary-heap
// Dijkstra with early exit at dst.
func (g *Graph) ShortestPath(src, dst NodeID) (float64, bool) {
	if src == dst {
		return 0, true
	}
	if src < 0 || dst < 0 || int(src) >= g.NumNodes() || int(dst) >= g.NumNodes() {
		return 0, false
	}
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := priorityQueue{{node: src, dist: 0}}
	for len(pq) > 0 {
		item := heap.Pop(&pq).(pqItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		if item.node == dst {
			return item.dist, true
		}
		for _, e := range g.arcs(item.node) {
			nd := item.dist + e.cost
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(&pq, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return 0, false
}

// ShortestPathTree computes distances from src to every node, returning
// +Inf for unreachable ones. Used to precompute region-to-region travel
// matrices.
func (g *Graph) ShortestPathTree(src NodeID) []float64 {
	dist, _, _ := g.dijkstraFrom(src, nil, 0)
	return dist
}

// dijkstraFrom is the shared Dijkstra core. With a nil needed mask it
// expands the full tree. With a mask it runs truncated: the scan stops
// as soon as the remaining marked nodes have all been settled, so dist
// entries are exact for every settled node (which includes every
// reachable marked node) and tentative or +Inf elsewhere. Truncation
// never changes settled values — the run is identical to a full tree up
// to the early exit — so batch queries answered from partial trees are
// bitwise-equal to full-tree answers.
//
// settled counts finalized nodes: the unit of shortest-path work
// GraphCoster.Stats reports. horizon is the exact-coverage bound of the
// returned slice: every entry with dist <= horizon equals its final
// shortest-path value (pops are non-decreasing, so nodes finalized
// before the early exit lie at or below the distance it fired at, and
// an unsettled node's tentative value can only tie the bound when it is
// already final). A run that drained the queue — full tree, or a
// truncated run whose targets exhausted the reachable graph — reports
// +Inf: every entry is final, including the +Inf of unreachable nodes.
func (g *Graph) dijkstraFrom(src NodeID, needed []bool, remaining int) (dist []float64, settled int, horizon float64) {
	horizon = math.Inf(1)
	dist = make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || int(src) >= g.NumNodes() {
		return dist, 0, horizon
	}
	dist[src] = 0
	pq := priorityQueue{{node: src, dist: 0}}
	for len(pq) > 0 {
		item := heap.Pop(&pq).(pqItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		settled++
		if needed != nil && needed[item.node] {
			remaining--
			if remaining <= 0 {
				horizon = item.dist
				break
			}
		}
		for _, e := range g.arcs(item.node) {
			nd := item.dist + e.cost
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(&pq, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, settled, horizon
}

// Route returns the node sequence of a shortest src->dst path, inclusive
// of both endpoints, and whether one exists.
func (g *Graph) Route(src, dst NodeID) ([]NodeID, bool) {
	if src < 0 || dst < 0 || int(src) >= g.NumNodes() || int(dst) >= g.NumNodes() {
		return nil, false
	}
	if src == dst {
		return []NodeID{src}, true
	}
	dist := make([]float64, g.NumNodes())
	prev := make([]NodeID, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = InvalidNode
	}
	dist[src] = 0
	pq := priorityQueue{{node: src, dist: 0}}
	for len(pq) > 0 {
		item := heap.Pop(&pq).(pqItem)
		if item.dist > dist[item.node] {
			continue
		}
		if item.node == dst {
			break
		}
		for _, e := range g.arcs(item.node) {
			nd := item.dist + e.cost
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = item.node
				heap.Push(&pq, pqItem{node: e.to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, false
	}
	var path []NodeID
	for v := dst; v != InvalidNode; v = prev[v] {
		path = append(path, v)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}
