package roadnet

import (
	"math"
	"math/rand"
	"testing"
)

func TestAStarMatchesDijkstra(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 20, Cols: 20, Seed: 3})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		dd, okD := g.ShortestPath(src, dst)
		da, okA := g.AStar(src, dst)
		if okD != okA {
			t.Fatalf("reachability disagrees for %d->%d: dijkstra %v astar %v", src, dst, okD, okA)
		}
		if okD && math.Abs(dd-da) > 1e-9 {
			t.Fatalf("cost disagrees for %d->%d: dijkstra %v astar %v", src, dst, dd, da)
		}
	}
}

func TestAStarEdgeCases(t *testing.T) {
	g := diamond()
	if d, ok := g.AStar(2, 2); !ok || d != 0 {
		t.Errorf("self path = %v,%v", d, ok)
	}
	if _, ok := g.AStar(3, 0); ok {
		t.Error("unreachable pair found")
	}
	if _, ok := g.AStar(-1, 0); ok {
		t.Error("invalid src accepted")
	}
	if _, ok := g.AStar(0, NodeID(g.NumNodes())); ok {
		t.Error("invalid dst accepted")
	}
}

func TestAStarOnDiamond(t *testing.T) {
	g := diamond()
	d, ok := g.AStar(0, 3)
	if !ok || d != 2 {
		t.Errorf("AStar(0,3) = %v,%v, want 2,true", d, ok)
	}
}

func TestMaxStreetSpeedMemoized(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 6, Cols: 6, Seed: 1, SpeedJitter: -1, SpeedMPS: 9})
	s1 := g.maxStreetSpeed()
	s2 := g.maxStreetSpeed()
	if s1 != s2 {
		t.Error("memoization broken")
	}
	if math.Abs(s1-9) > 0.3 {
		t.Errorf("max speed %v, want ~9 (jitter disabled)", s1)
	}
}
