package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mrvd/internal/geo"
)

// randomPoints samples n points uniformly from box.
func randomPoints(n int, box geo.BBox, rng *rand.Rand) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{
			Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		}
	}
	return out
}

// TestBatchCostsEquivalence is the BatchCoster contract property:
// Costs(S, T)[i][j] == Cost(S[i], T[j]) bitwise, over random graphs and
// random endpoints, for both the graph-backed and closed-form costers.
// Bitwise equality (not tolerance) is what lets the engine swap the
// per-pair path for the batch path without changing dispatch results.
func TestBatchCostsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		g := GenerateGridNetwork(GridNetworkConfig{
			Rows: 6 + rng.Intn(12), Cols: 6 + rng.Intn(12),
			Seed: rng.Int63(), DropFraction: 0.1,
		})
		costers := []BatchCoster{
			NewGraphCoster(g),
			&GreatCircleCoster{SpeedMPS: 9, UseManhattan: true},
			&GreatCircleCoster{SpeedMPS: 7, DetourFactor: 1.3},
			AsBatchCoster(plainCoster{NewGraphCoster(g)}),
		}
		sources := randomPoints(1+rng.Intn(30), geo.NYCBBox, rng)
		targets := randomPoints(1+rng.Intn(30), geo.NYCBBox, rng)
		for _, c := range costers {
			mat := c.Costs(sources, targets)
			if len(mat) != len(sources) {
				t.Fatalf("trial %d: %d rows, want %d", trial, len(mat), len(sources))
			}
			for i, row := range mat {
				if len(row) != len(targets) {
					t.Fatalf("trial %d: row %d has %d cols, want %d", trial, i, len(row), len(targets))
				}
				for j := range row {
					if want := c.Cost(sources[i], targets[j]); row[j] != want {
						t.Fatalf("trial %d: Costs[%d][%d] = %v, Cost = %v", trial, i, j, row[j], want)
					}
				}
			}
		}
	}
}

// plainCoster hides a coster's batch implementation so AsBatchCoster
// exercises the per-pair fallback.
type plainCoster struct{ c Coster }

func (p plainCoster) Cost(a, b geo.Point) float64 { return p.c.Cost(a, b) }

// TestBatchCostsEdgeCases covers empty inputs and the empty graph.
func TestBatchCostsEdgeCases(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 4, Cols: 4, Seed: 3})
	c := NewGraphCoster(g)
	if got := c.Costs(nil, []geo.Point{{}}); len(got) != 0 {
		t.Errorf("no sources: %d rows", len(got))
	}
	got := c.Costs([]geo.Point{{}, {}}, nil)
	if len(got) != 2 || len(got[0]) != 0 {
		t.Errorf("no targets: %v", got)
	}
	empty := NewGraphCoster(NewBuilder().Build())
	mat := empty.Costs([]geo.Point{{}}, []geo.Point{{Lng: 1}})
	if !math.IsInf(mat[0][0], 1) {
		t.Errorf("empty graph cell = %v, want +Inf", mat[0][0])
	}
}

// TestBatchCostsUsesCachedTrees verifies the batch path serves sources
// from full trees the single-pair path already cached.
func TestBatchCostsUsesCachedTrees(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 8, Cols: 8, Seed: 5, DropFraction: 0})
	c := NewGraphCoster(g)
	src := g.Point(10)
	dst := g.Point(50)
	want := c.Cost(src, dst) // populates the cache for src's node
	c.ResetStats()
	mat := c.Costs([]geo.Point{src}, []geo.Point{dst})
	if mat[0][0] != want {
		t.Fatalf("batch %v != single-pair %v", mat[0][0], want)
	}
	st := c.Stats()
	if st.CacheHits != 1 || st.PartialTrees != 0 {
		t.Errorf("stats = %+v, want 1 cache hit and 0 partial trees", st)
	}
}

// TestBatchCostsFewerComputations quantifies the tentpole claim: pricing
// a 200-driver x 200-order batch does at least 3x less shortest-path
// work (settled nodes) through the batch path than through per-pair
// Cost queries. The batch is drawn from a central hotspot box — the
// urban concentration the workload generator models — so truncated
// Dijkstras stop far before expanding the citywide tree.
func TestBatchCostsFewerComputations(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Seed: 11})
	box := geo.NYCBBox
	// Central quarter-per-axis hotspot box.
	cx, cy := (box.MinLng+box.MaxLng)/2, (box.MinLat+box.MaxLat)/2
	w, h := (box.MaxLng-box.MinLng)/8, (box.MaxLat-box.MinLat)/8
	hot := geo.BBox{MinLng: cx - w, MaxLng: cx + w, MinLat: cy - h, MaxLat: cy + h}
	rng := rand.New(rand.NewSource(13))
	drivers := randomPoints(200, hot, rng)
	orders := randomPoints(200, hot, rng)

	perPair := NewGraphCoster(g)
	for _, d := range drivers {
		for _, o := range orders {
			perPair.Cost(d, o)
		}
	}
	batch := NewGraphCoster(g)
	mat := batch.Costs(drivers, orders)
	for i := range drivers {
		for j := range orders {
			if want := perPair.Cost(drivers[i], orders[j]); mat[i][j] != want {
				t.Fatalf("batch[%d][%d] = %v, per-pair = %v", i, j, mat[i][j], want)
			}
		}
	}

	pp, bt := perPair.Stats(), batch.Stats()
	if pp.SettledNodes == 0 || bt.SettledNodes == 0 {
		t.Fatalf("no work recorded: per-pair %+v batch %+v", pp, bt)
	}
	ratio := float64(pp.SettledNodes) / float64(bt.SettledNodes)
	t.Logf("settled nodes: per-pair %d (%d trees), batch %d (%d partials, %d unique sources) — %.1fx fewer",
		pp.SettledNodes, pp.Trees, bt.SettledNodes, bt.PartialTrees, bt.PartialTrees, ratio)
	if ratio < 3 {
		t.Errorf("batch path settled only %.2fx fewer nodes, want >= 3x", ratio)
	}
}

// TestBatchCostsCrossBatchReuse verifies the warm-path contract: a
// repeated batch is served entirely from cached trees, a target beyond
// a cached tree's horizon promotes the source to a full tree, and from
// then on every batch hits.
func TestBatchCostsCrossBatchReuse(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 24, Cols: 24, Seed: 31, DropFraction: 0})
	c := NewGraphCoster(g)
	box := geo.NYCBBox
	cx, cy := (box.MinLng+box.MaxLng)/2, (box.MinLat+box.MaxLat)/2
	w, h := (box.MaxLng-box.MinLng)/8, (box.MaxLat-box.MinLat)/8
	hot := geo.BBox{MinLng: cx - w, MaxLng: cx + w, MinLat: cy - h, MaxLat: cy + h}
	rng := rand.New(rand.NewSource(7))
	sources := randomPoints(20, hot, rng)
	targets := randomPoints(15, hot, rng)

	want := c.Costs(sources, targets)
	st1 := c.Stats()
	if st1.PartialTrees == 0 {
		t.Fatal("cold batch issued no Dijkstra runs")
	}

	// The same batch again: all sources served from the cached partial
	// trees, no new shortest-path work.
	got := c.Costs(sources, targets)
	st2 := c.Stats()
	if st2.PartialTrees != st1.PartialTrees || st2.SettledNodes != st1.SettledNodes {
		t.Fatalf("warm repeat recomputed: %+v -> %+v", st1, st2)
	}
	if st2.CacheHits <= st1.CacheHits {
		t.Fatalf("warm repeat recorded no cache hits: %+v -> %+v", st1, st2)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("warm cell [%d][%d] = %v, cold = %v", i, j, got[i][j], want[i][j])
			}
		}
	}

	// A far corner target exceeds the cached horizons: the sources are
	// promoted to full trees...
	far := []geo.Point{{Lng: box.MinLng, Lat: box.MinLat}}
	farBatch := c.Costs(sources, far)
	st3 := c.Stats()
	if st3.PartialTrees == st2.PartialTrees {
		t.Fatal("insufficient cached trees were not recomputed")
	}
	if wantFar := c.Cost(sources[0], far[0]); farBatch[0][0] != wantFar {
		t.Fatalf("promoted cell = %v, want %v", farBatch[0][0], wantFar)
	}
	// ...after which any target mix is a pure cache hit.
	c.Costs(sources, append(append([]geo.Point{}, targets...), far...))
	st4 := c.Stats()
	if st4.PartialTrees != st3.PartialTrees || st4.SettledNodes != st3.SettledNodes {
		t.Fatalf("post-promotion batch recomputed: %+v -> %+v", st3, st4)
	}
}

// TestBatchCostsConcurrent exercises the parallel query path under the
// race detector: concurrent Costs batches interleaved with single-pair
// Cost queries against one shared coster.
func TestBatchCostsConcurrent(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 16, Cols: 16, Seed: 17})
	c := NewGraphCoster(g)
	c.CacheSize = 8 // force eviction churn under concurrency
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 20; iter++ {
				srcs := randomPoints(5, geo.NYCBBox, rng)
				tgts := randomPoints(7, geo.NYCBBox, rng)
				mat := c.Costs(srcs, tgts)
				// Spot-check one cell against the single-pair path.
				i, j := rng.Intn(len(srcs)), rng.Intn(len(tgts))
				if want := c.Cost(srcs[i], tgts[j]); mat[i][j] != want {
					t.Errorf("concurrent batch cell %v != %v", mat[i][j], want)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestTreeCacheClockEviction pins the second-chance policy: referenced
// entries survive a sweep, unreferenced ones are evicted first.
func TestTreeCacheClockEviction(t *testing.T) {
	full := math.Inf(1)
	tc := newTreeCache()
	tree := func(v float64) []float64 { return []float64{v} }
	tc.put(1, tree(1), full, 2)
	tc.put(2, tree(2), full, 2)
	// Touch node 1 so its reference bit is set; the insert below clears
	// it in passing and evicts the never-referenced node 2 instead.
	if _, _, ok := tc.get(1); !ok {
		t.Fatal("node 1 missing")
	}
	tc.put(3, tree(3), full, 2)
	if _, ok := tc.index[2]; ok {
		t.Error("unreferenced node 2 should have been evicted before referenced node 1")
	}
	if _, _, ok := tc.get(1); !ok {
		t.Error("referenced node 1 evicted despite its second chance")
	}
	// Capacity respected throughout.
	if len(tc.slots) != 2 || len(tc.index) != 2 {
		t.Errorf("cache holds %d slots / %d index entries, want 2", len(tc.slots), len(tc.index))
	}
	// A hot entry re-referenced on every round stays resident under
	// sustained one-shot insert pressure (scan resistance).
	tc2 := newTreeCache()
	tc2.put(100, tree(100), full, 3)
	for n := NodeID(0); n < 50; n++ {
		if _, _, ok := tc2.get(100); !ok {
			t.Fatalf("hot entry evicted after %d cold inserts", n)
		}
		tc2.put(n, tree(float64(n)), full, 3)
	}
}
