package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"mrvd/internal/geo"
)

func TestGreatCircleCosterManhattan(t *testing.T) {
	c := NewDefaultCoster()
	a := geo.Point{Lng: -73.98, Lat: 40.75}
	b := geo.Point{Lng: -73.95, Lat: 40.78}
	want := geo.Manhattan(a, b) / DefaultSpeedMPS
	if got := c.Cost(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	if c.Cost(a, a) != 0 {
		t.Error("self cost should be 0")
	}
}

func TestGreatCircleCosterDetour(t *testing.T) {
	c := &GreatCircleCoster{SpeedMPS: 10, UseManhattan: false, DetourFactor: 1.3}
	a := geo.Point{Lng: -73.98, Lat: 40.75}
	b := geo.Point{Lng: -73.95, Lat: 40.78}
	want := geo.Equirect(a, b) * 1.3 / 10
	if got := c.Cost(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestGreatCircleCosterZeroSpeedDefaults(t *testing.T) {
	c := &GreatCircleCoster{UseManhattan: true}
	a := geo.Point{Lng: -73.98, Lat: 40.75}
	b := geo.Point{Lng: -73.97, Lat: 40.75}
	if got := c.Cost(a, b); math.IsInf(got, 1) || got <= 0 {
		t.Errorf("zero-speed coster returned %v", got)
	}
}

func TestGraphCosterAgainstDirectDijkstra(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 12, Cols: 12, Seed: 7, DropFraction: 0})
	c := NewGraphCoster(g)
	c.ApproachSpeedMPS = 0 // isolate the graph leg
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		na := NodeID(rng.Intn(g.NumNodes()))
		nb := NodeID(rng.Intn(g.NumNodes()))
		want, ok := g.ShortestPath(na, nb)
		if !ok {
			t.Fatal("unreachable in full lattice")
		}
		got := c.Cost(g.Point(na), g.Point(nb))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("coster %v != dijkstra %v for %d->%d", got, want, na, nb)
		}
	}
}

func TestGraphCosterApproachLeg(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 6, Cols: 6, Seed: 1})
	c := NewGraphCoster(g)
	node := g.Point(0)
	// Query slightly off a node: cost to itself should be the two
	// approach legs only.
	off := geo.Point{Lng: node.Lng + 0.0001, Lat: node.Lat}
	got := c.Cost(off, off)
	want := 2 * geo.Equirect(off, node) / c.ApproachSpeedMPS
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("approach-leg cost = %v, want %v", got, want)
	}
}

func TestGraphCosterEmptyGraph(t *testing.T) {
	c := NewGraphCoster(NewBuilder().Build())
	if got := c.Cost(geo.Point{}, geo.Point{Lng: 1}); !math.IsInf(got, 1) {
		t.Errorf("empty-graph cost = %v, want +Inf", got)
	}
}

func TestGraphCosterCacheEviction(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 8, Cols: 8, Seed: 2})
	c := NewGraphCoster(g)
	c.CacheSize = 2
	rng := rand.New(rand.NewSource(3))
	// Exercise clock eviction churn; values must stay correct afterwards.
	for i := 0; i < 10; i++ {
		na := NodeID(rng.Intn(g.NumNodes()))
		nb := NodeID(rng.Intn(g.NumNodes()))
		_ = c.Cost(g.Point(na), g.Point(nb))
	}
	c.ApproachSpeedMPS = 0
	want, _ := g.ShortestPath(0, 63)
	if got := c.Cost(g.Point(0), g.Point(63)); math.Abs(got-want) > 1e-6 {
		t.Errorf("post-eviction cost %v, want %v", got, want)
	}
}

func TestSnapIndexNearestExact(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 10, Cols: 10, Seed: 9})
	s := newSnapIndex(g)
	for _, id := range []NodeID{0, 37, 99} {
		got, d := s.nearest(g.Point(id))
		if got != id || d > 1e-6 {
			t.Errorf("nearest(node %d) = %d at %.2fm", id, got, d)
		}
	}
}

func TestSnapIndexNearestMatchesBruteForce(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 15, Cols: 15, Seed: 13})
	s := newSnapIndex(g)
	rng := rand.New(rand.NewSource(13))
	box := geo.NYCBBox
	for i := 0; i < 50; i++ {
		q := geo.Point{
			Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		}
		got, gotD := s.nearest(q)
		bestD := math.Inf(1)
		for n := 0; n < g.NumNodes(); n++ {
			if d := geo.Equirect(q, g.Point(NodeID(n))); d < bestD {
				bestD = d
			}
		}
		if got == InvalidNode || math.Abs(gotD-bestD) > 1e-6 {
			t.Errorf("nearest(%v) = node %d at %.2f, brute force %.2f", q, got, gotD, bestD)
		}
	}
}

func TestRegionMatrixProperties(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 16, Cols: 16, Seed: 17, DropFraction: 0})
	grid := geo.NewGrid(geo.NYCBBox, 4, 4)
	mat := RegionMatrix(g, grid)
	if len(mat) != 16 {
		t.Fatalf("matrix has %d rows, want 16", len(mat))
	}
	for r := range mat {
		if mat[r][r] != 0 {
			t.Errorf("diagonal [%d][%d] = %v, want 0", r, r, mat[r][r])
		}
		for c := range mat[r] {
			if math.IsInf(mat[r][c], 1) {
				t.Errorf("region pair %d->%d unreachable", r, c)
			}
			if mat[r][c] < 0 {
				t.Errorf("negative travel time %v", mat[r][c])
			}
		}
	}
	// Distant regions should cost more than adjacent ones on average.
	if mat[0][15] <= mat[0][1] {
		t.Errorf("far region cost %v <= near region cost %v", mat[0][15], mat[0][1])
	}
}
