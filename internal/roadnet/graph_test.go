package roadnet

import (
	"math"
	"testing"

	"mrvd/internal/geo"
)

// diamond builds a 4-node test graph:
//
//	0 --1s--> 1 --1s--> 3
//	0 --5s--> 2 --1s--> 3   (and 1->2 at 0.5s)
func diamond() *Graph {
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(geo.Point{Lng: float64(i) * 0.01, Lat: 40.7})
	}
	b.AddArc(0, 1, 1)
	b.AddArc(0, 2, 5)
	b.AddArc(1, 3, 1)
	b.AddArc(2, 3, 1)
	b.AddArc(1, 2, 0.5)
	return b.Build()
}

func TestBuilderCounts(t *testing.T) {
	g := diamond()
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumArcs() != 5 {
		t.Errorf("NumArcs = %d, want 5", g.NumArcs())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 0 {
		t.Errorf("OutDegree(0)=%d OutDegree(3)=%d, want 2 and 0",
			g.OutDegree(0), g.OutDegree(3))
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	b := NewBuilder()
	b.AddNode(geo.Point{})
	assertPanics("out of range", func() { b.AddArc(0, 5, 1) })
	assertPanics("negative cost", func() { b.AddArc(0, 0, -1) })
}

func TestShortestPathDiamond(t *testing.T) {
	g := diamond()
	d, ok := g.ShortestPath(0, 3)
	if !ok || d != 2 {
		t.Errorf("ShortestPath(0,3) = %v,%v, want 2,true", d, ok)
	}
	// 3 has no outgoing arcs: nothing reachable from it.
	if _, ok := g.ShortestPath(3, 0); ok {
		t.Error("path 3->0 should not exist")
	}
	if d, ok := g.ShortestPath(2, 2); !ok || d != 0 {
		t.Errorf("self path = %v,%v, want 0,true", d, ok)
	}
	if _, ok := g.ShortestPath(-1, 2); ok {
		t.Error("invalid src should be unreachable")
	}
}

func TestShortestPathTree(t *testing.T) {
	g := diamond()
	tree := g.ShortestPathTree(0)
	want := []float64{0, 1, 1.5, 2}
	for i, w := range want {
		if tree[i] != w {
			t.Errorf("tree[%d] = %v, want %v", i, tree[i], w)
		}
	}
	tree3 := g.ShortestPathTree(3)
	for i := 0; i < 3; i++ {
		if !math.IsInf(tree3[i], 1) {
			t.Errorf("tree3[%d] = %v, want +Inf", i, tree3[i])
		}
	}
}

func TestRouteReconstruction(t *testing.T) {
	g := diamond()
	path, ok := g.Route(0, 3)
	if !ok {
		t.Fatal("no route 0->3")
	}
	want := []NodeID{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("route = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("route = %v, want %v", path, want)
		}
	}
	if p, ok := g.Route(2, 2); !ok || len(p) != 1 || p[0] != 2 {
		t.Errorf("self route = %v,%v", p, ok)
	}
	if _, ok := g.Route(3, 0); ok {
		t.Error("route 3->0 should not exist")
	}
}

func TestRouteCostsMatchShortestPath(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 10, Cols: 10, Seed: 3})
	for _, pair := range [][2]NodeID{{0, 99}, {5, 87}, {42, 13}} {
		d, ok := g.ShortestPath(pair[0], pair[1])
		if !ok {
			t.Fatalf("unreachable pair %v in generated grid", pair)
		}
		path, ok := g.Route(pair[0], pair[1])
		if !ok {
			t.Fatalf("no route for reachable pair %v", pair)
		}
		// Sum the arc costs along the returned path.
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			best := math.Inf(1)
			for _, e := range g.arcs(path[i]) {
				if e.to == path[i+1] && e.cost < best {
					best = e.cost
				}
			}
			total += best
		}
		if math.Abs(total-d) > 1e-9 {
			t.Errorf("route cost %v != shortest path %v", total, d)
		}
	}
}

func TestGeneratedGridConnected(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Rows: 20, Cols: 20, Seed: 11, DropFraction: 0.1})
	tree := g.ShortestPathTree(0)
	for i, d := range tree {
		if math.IsInf(d, 1) {
			t.Fatalf("node %d unreachable: generator broke connectivity", i)
		}
	}
}

func TestGeneratedGridDeterministic(t *testing.T) {
	cfg := GridNetworkConfig{Rows: 8, Cols: 8, Seed: 42}
	a := GenerateGridNetwork(cfg)
	b := GenerateGridNetwork(cfg)
	if a.NumNodes() != b.NumNodes() || a.NumArcs() != b.NumArcs() {
		t.Fatal("same seed produced different graphs")
	}
	da := a.ShortestPathTree(0)
	db := b.ShortestPathTree(0)
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("same seed produced different costs")
		}
	}
}

func TestGeneratedGridTravelTimePlausible(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Seed: 1})
	// Crossing the full NYC box (~60km of L1) at the ~11 m/s default
	// speed should take roughly 90 minutes; sanity-check loosely.
	d, ok := g.ShortestPath(0, NodeID(g.NumNodes()-1))
	if !ok {
		t.Fatal("corners unreachable")
	}
	if d < 3000 || d > 12000 {
		t.Errorf("corner-to-corner travel = %.0f s, want 3000..12000", d)
	}
}

func TestMedianStreetSpeed(t *testing.T) {
	g := GenerateGridNetwork(GridNetworkConfig{Seed: 5, SpeedMPS: 8, SpeedJitter: -1})
	s := MedianStreetSpeed(g)
	if math.Abs(s-8) > 0.2 {
		t.Errorf("median speed %.2f, want ~8 (jitter disabled)", s)
	}
	if s := MedianStreetSpeed(NewBuilder().Build()); s != 0 {
		t.Errorf("empty graph speed = %v, want 0", s)
	}
}
