package roadnet

import (
	"fmt"

	"mrvd/internal/geo"
)

// NodeID indexes a vertex of the road graph.
type NodeID int32

// InvalidNode marks "no node" results (empty graphs, unreachable targets).
const InvalidNode NodeID = -1

// edge is one directed arc in the compact adjacency representation.
type edge struct {
	to   NodeID
	cost float64 // seconds of travel time
}

// Graph is a directed road network with travel-time edge weights, stored
// in compressed sparse row form for cache-friendly Dijkstra runs.
type Graph struct {
	pts     []geo.Point
	offsets []int32 // len = numNodes+1; edges of node v are edges[offsets[v]:offsets[v+1]]
	edges   []edge

	// maxSpeed memoizes the fastest street speed for AStar's heuristic.
	maxSpeed float64
}

// Builder accumulates nodes and arcs and then freezes them into a Graph.
type Builder struct {
	pts  []geo.Point
	from []NodeID
	to   []NodeID
	cost []float64
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode appends a vertex at p and returns its id.
func (b *Builder) AddNode(p geo.Point) NodeID {
	b.pts = append(b.pts, p)
	return NodeID(len(b.pts) - 1)
}

// AddArc appends a directed arc with the given travel cost in seconds.
// It panics on out-of-range ids or negative cost — both are construction
// bugs, not runtime conditions.
func (b *Builder) AddArc(from, to NodeID, cost float64) {
	n := NodeID(len(b.pts))
	if from < 0 || from >= n || to < 0 || to >= n {
		panic(fmt.Sprintf("roadnet: arc %d->%d out of range (%d nodes)", from, to, n))
	}
	if cost < 0 {
		panic(fmt.Sprintf("roadnet: negative arc cost %v", cost))
	}
	b.from = append(b.from, from)
	b.to = append(b.to, to)
	b.cost = append(b.cost, cost)
}

// AddEdge appends arcs in both directions with the same cost.
func (b *Builder) AddEdge(u, v NodeID, cost float64) {
	b.AddArc(u, v, cost)
	b.AddArc(v, u, cost)
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	n := len(b.pts)
	counts := make([]int32, n+1)
	for _, f := range b.from {
		counts[f+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	edges := make([]edge, len(b.from))
	next := make([]int32, n)
	copy(next, counts[:n])
	for i, f := range b.from {
		edges[next[f]] = edge{to: b.to[i], cost: b.cost[i]}
		next[f]++
	}
	return &Graph{
		pts:     append([]geo.Point(nil), b.pts...),
		offsets: counts,
		edges:   edges,
	}
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumArcs returns the directed arc count.
func (g *Graph) NumArcs() int { return len(g.edges) }

// Point returns the location of a node.
func (g *Graph) Point(id NodeID) geo.Point { return g.pts[id] }

// OutDegree returns the number of arcs leaving a node.
func (g *Graph) OutDegree(id NodeID) int {
	return int(g.offsets[id+1] - g.offsets[id])
}

// arcs returns the outgoing arcs of v as a shared slice.
func (g *Graph) arcs(v NodeID) []edge {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}
