// Package roadnet implements the road-network substrate the paper's
// problem definition is stated on: a weighted graph G = <V, E> where each
// edge carries a travel cost, plus single-source shortest paths
// (binary-heap Dijkstra), nearest-node snapping for arbitrary lat/lng
// coordinates, and a synthetic Manhattan-style grid network generator for
// cities where no real map is shipped.
//
// Dispatch algorithms never touch the graph directly; they consume a
// Coster, which is either graph-backed (shortest-path travel time) or the
// cheaper great-circle approximation at a configured speed. Both are
// provided here so experiments can ablate the choice.
//
// The hot path is batched: BatchCoster prices a whole sources×targets
// matrix in one call, which GraphCoster serves by snapping every
// endpoint once, deduplicating source nodes, and running one truncated
// Dijkstra per unique uncached source on a parallel worker pool —
// bitwise-identical to per-pair Cost queries, with several times less
// shortest-path work (see GraphCoster.Stats and BENCH_dispatch.json).
// Single-pair Cost remains the compatibility shim, memoizing full trees
// under clock (second-chance) eviction.
package roadnet
