// Package roadnet implements the road-network substrate the paper's
// problem definition is stated on: a weighted graph G = <V, E> where each
// edge carries a travel cost, plus single-source shortest paths
// (binary-heap Dijkstra), nearest-node snapping for arbitrary lat/lng
// coordinates, and a synthetic Manhattan-style grid network generator for
// cities where no real map is shipped.
//
// Dispatch algorithms never touch the graph directly; they consume a
// Coster, which is either graph-backed (shortest-path travel time) or the
// cheaper great-circle approximation at a configured speed. Both are
// provided here so experiments can ablate the choice.
package roadnet
