package geo

import (
	"math"
	"math/rand"
	"testing"
)

func testZones() *Zones { return NewRandomZones(NYCBBox, 40, 7) }

func TestZonesSeedsMapToOwnZone(t *testing.T) {
	z := testZones()
	for i := 0; i < z.NumRegions(); i++ {
		if got := z.Region(z.Center(RegionID(i))); got != RegionID(i) {
			t.Errorf("seed %d maps to zone %d", i, got)
		}
	}
}

func TestZonesRegionIsNearestSeed(t *testing.T) {
	z := testZones()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := Point{
			Lng: NYCBBox.MinLng + rng.Float64()*(NYCBBox.MaxLng-NYCBBox.MinLng),
			Lat: NYCBBox.MinLat + rng.Float64()*(NYCBBox.MaxLat-NYCBBox.MinLat),
		}
		got := z.Region(p)
		best := RegionID(-1)
		bestD := math.Inf(1)
		for i := 0; i < z.NumRegions(); i++ {
			if d := Equirect(p, z.Center(RegionID(i))); d < bestD {
				bestD = d
				best = RegionID(i)
			}
		}
		if got != best {
			t.Fatalf("Region(%v) = %d, nearest seed is %d", p, got, best)
		}
	}
}

func TestZonesOutsideBox(t *testing.T) {
	z := testZones()
	if got := z.Region(Point{Lng: 0, Lat: 0}); got != InvalidRegion {
		t.Errorf("outside point mapped to zone %d", got)
	}
}

func TestZonesAdjacencySymmetricAndIrreflexive(t *testing.T) {
	z := testZones()
	for i := 0; i < z.NumRegions(); i++ {
		for _, nb := range z.Neighbors(RegionID(i)) {
			if nb == RegionID(i) {
				t.Fatalf("zone %d adjacent to itself", i)
			}
			found := false
			for _, back := range z.Neighbors(nb) {
				if back == RegionID(i) {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency asymmetric: %d -> %d", i, nb)
			}
		}
	}
}

func TestZonesEveryZoneHasNeighbors(t *testing.T) {
	z := testZones()
	for i := 0; i < z.NumRegions(); i++ {
		if len(z.Neighbors(RegionID(i))) == 0 {
			t.Errorf("zone %d has no neighbours", i)
		}
	}
	if z.Neighbors(InvalidRegion) != nil {
		t.Error("invalid zone has neighbours")
	}
}

func TestZonesAdjacencyExportShape(t *testing.T) {
	z := testZones()
	adj := z.Adjacency()
	if len(adj) != z.NumRegions() {
		t.Fatalf("adjacency length %d", len(adj))
	}
	for i, ns := range adj {
		if len(ns) != len(z.Neighbors(RegionID(i))) {
			t.Fatalf("zone %d adjacency export mismatch", i)
		}
	}
}

func TestZonesPanicsOnTooFewSeeds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-seed partition accepted")
		}
	}()
	NewZones(NYCBBox, []Point{NYCBBox.Center()}, 0)
}

func TestZonesKnownGeometry(t *testing.T) {
	// Two seeds west/east: the boundary is the vertical midline.
	box := BBox{MinLng: 0, MinLat: 0, MaxLng: 2, MaxLat: 1}
	z := NewZones(box, []Point{{Lng: 0.5, Lat: 0.5}, {Lng: 1.5, Lat: 0.5}}, 64)
	if z.Region(Point{Lng: 0.2, Lat: 0.5}) != 0 {
		t.Error("west point not in west zone")
	}
	if z.Region(Point{Lng: 1.8, Lat: 0.5}) != 1 {
		t.Error("east point not in east zone")
	}
	if ns := z.Neighbors(0); len(ns) != 1 || ns[0] != 1 {
		t.Errorf("west zone neighbours = %v, want [1]", ns)
	}
}
