package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNYCGridShape(t *testing.T) {
	g := NewNYCGrid()
	if g.Rows() != 16 || g.Cols() != 16 || g.NumRegions() != 256 {
		t.Fatalf("NYC grid is %dx%d (%d regions), want 16x16 (256)",
			g.Rows(), g.Cols(), g.NumRegions())
	}
}

func TestGridRegionCorners(t *testing.T) {
	g := NewGrid(BBox{MinLng: 0, MinLat: 0, MaxLng: 4, MaxLat: 4}, 4, 4)
	cases := []struct {
		p    Point
		want RegionID
	}{
		{Point{Lng: 0, Lat: 0}, 0},      // SW corner
		{Point{Lng: 3.999, Lat: 0}, 3},  // SE
		{Point{Lng: 0, Lat: 3.999}, 12}, // NW
		{Point{Lng: 4, Lat: 4}, 15},     // max edge folds into last cell
		{Point{Lng: 1.5, Lat: 2.5}, 9},  // interior
		{Point{Lng: -0.1, Lat: 1}, InvalidRegion},
		{Point{Lng: 1, Lat: 4.1}, InvalidRegion},
	}
	for _, c := range cases {
		if got := g.Region(c.p); got != c.want {
			t.Errorf("Region(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGridCenterRoundTrip(t *testing.T) {
	g := NewNYCGrid()
	for id := RegionID(0); int(id) < g.NumRegions(); id++ {
		if back := g.Region(g.Center(id)); back != id {
			t.Fatalf("Center(%d) maps back to region %d", id, back)
		}
	}
}

func TestGridRegionRoundTripProperty(t *testing.T) {
	g := NewNYCGrid()
	f := func(u, v float64) bool {
		// Map arbitrary floats into the box.
		u = abs01(u)
		v = abs01(v)
		p := Point{
			Lng: NYCBBox.MinLng + u*(NYCBBox.MaxLng-NYCBBox.MinLng),
			Lat: NYCBBox.MinLat + v*(NYCBBox.MaxLat-NYCBBox.MinLat),
		}
		id := g.Region(p)
		if !g.Valid(id) {
			return false
		}
		return g.CellBox(id).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func abs01(x float64) float64 {
	if x != x { // NaN guard
		return 0
	}
	if x < 0 {
		x = -x
	}
	x = math.Mod(x, 1)
	if x != x {
		return 0
	}
	return x
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(BBox{MinLng: 0, MinLat: 0, MaxLng: 3, MaxLat: 3}, 3, 3)
	// Corner has 2 neighbours, edge 3, center 4.
	if n := g.Neighbors(0); len(n) != 2 {
		t.Errorf("corner neighbours = %v, want 2", n)
	}
	if n := g.Neighbors(1); len(n) != 3 {
		t.Errorf("edge neighbours = %v, want 3", n)
	}
	if n := g.Neighbors(4); len(n) != 4 {
		t.Errorf("center neighbours = %v, want 4", n)
	}
	// Neighbour relation is symmetric.
	for id := RegionID(0); int(id) < g.NumRegions(); id++ {
		for _, nb := range g.Neighbors(id) {
			found := false
			for _, back := range g.Neighbors(nb) {
				if back == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric neighbours: %d -> %d", id, nb)
			}
		}
	}
}

func TestGridRegionsWithinCoversSelf(t *testing.T) {
	g := NewNYCGrid()
	p := NYCBBox.Center()
	regions := g.RegionsWithin(p, 1) // 1 meter
	if len(regions) == 0 {
		t.Fatal("no regions for tiny radius")
	}
	self := g.Region(p)
	found := false
	for _, r := range regions {
		if r == self {
			found = true
		}
	}
	if !found {
		t.Error("RegionsWithin does not include the query's own region")
	}
}

func TestGridRegionsWithinLargeRadiusCoversAll(t *testing.T) {
	g := NewNYCGrid()
	regions := g.RegionsWithin(NYCBBox.Center(), 100000) // 100 km
	if len(regions) != g.NumRegions() {
		t.Errorf("100km radius covers %d regions, want all %d", len(regions), g.NumRegions())
	}
}

func TestGridRegionsWithinNegativeRadius(t *testing.T) {
	g := NewNYCGrid()
	if r := g.RegionsWithin(NYCBBox.Center(), -5); r != nil {
		t.Errorf("negative radius returned %v", r)
	}
}

func TestGridRegionsWithinOutsidePoint(t *testing.T) {
	g := NewNYCGrid()
	// Query point outside the box still yields nearby boundary regions.
	p := Point{Lng: NYCBBox.MinLng - 0.01, Lat: NYCBBox.MinLat - 0.01}
	regions := g.RegionsWithin(p, 5000)
	if len(regions) == 0 {
		t.Error("outside point with generous radius found no regions")
	}
}

func TestNewGridPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero rows", func() { NewGrid(NYCBBox, 0, 4) })
	assertPanics("degenerate box", func() {
		NewGrid(BBox{MinLng: 1, MinLat: 1, MaxLng: 1, MaxLat: 2}, 4, 4)
	})
}

func TestRowColInverse(t *testing.T) {
	g := NewNYCGrid()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		id := RegionID(rng.Intn(g.NumRegions()))
		row, col := g.RowCol(id)
		if RegionID(row*g.Cols()+col) != id {
			t.Fatalf("RowCol(%d) = (%d,%d) does not invert", id, row, col)
		}
	}
}
