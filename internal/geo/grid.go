package geo

import (
	"fmt"
	"math"
)

// RegionID identifies one cell of a Grid. IDs are dense in
// [0, Grid.NumRegions()) with row-major layout: id = row*cols + col,
// where row 0 is the southernmost band.
type RegionID int

// InvalidRegion is returned for points outside the grid.
const InvalidRegion RegionID = -1

// Grid partitions a bounding box into rows x cols equal rectangles — the
// paper's "regions/grids" A = {a_1..a_n} (16x16 over NYC in Section 6.2).
type Grid struct {
	box        BBox
	rows, cols int
	cellW      float64 // degrees longitude per column
	cellH      float64 // degrees latitude per row
}

// NewGrid builds a grid over box with the given dimensions. It panics on
// non-positive dimensions or a degenerate box: both are programmer errors
// in configuration, not runtime conditions.
func NewGrid(box BBox, rows, cols int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("geo: invalid grid dimensions %dx%d", rows, cols))
	}
	if box.MaxLng <= box.MinLng || box.MaxLat <= box.MinLat {
		panic(fmt.Sprintf("geo: degenerate bbox %+v", box))
	}
	return &Grid{
		box:   box,
		rows:  rows,
		cols:  cols,
		cellW: (box.MaxLng - box.MinLng) / float64(cols),
		cellH: (box.MaxLat - box.MinLat) / float64(rows),
	}
}

// NewNYCGrid returns the paper's experimental configuration: the NYC
// bounding box evenly divided into 16x16 grids.
func NewNYCGrid() *Grid { return NewGrid(NYCBBox, 16, 16) }

// Rows returns the number of latitude bands.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of longitude bands.
func (g *Grid) Cols() int { return g.cols }

// NumRegions returns rows*cols.
func (g *Grid) NumRegions() int { return g.rows * g.cols }

// Bounds returns the grid's bounding box.
func (g *Grid) Bounds() BBox { return g.box }

// Region maps a point to its region, or InvalidRegion when the point
// falls outside the grid. Points exactly on the max edge belong to the
// last row/column.
func (g *Grid) Region(p Point) RegionID {
	if !g.box.Contains(p) {
		return InvalidRegion
	}
	col := int((p.Lng - g.box.MinLng) / g.cellW)
	row := int((p.Lat - g.box.MinLat) / g.cellH)
	if col >= g.cols {
		col = g.cols - 1
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return RegionID(row*g.cols + col)
}

// RowCol splits a region id into its (row, col) coordinates.
func (g *Grid) RowCol(id RegionID) (row, col int) {
	return int(id) / g.cols, int(id) % g.cols
}

// CellBox returns the bounding box of one region.
func (g *Grid) CellBox(id RegionID) BBox {
	row, col := g.RowCol(id)
	return BBox{
		MinLng: g.box.MinLng + float64(col)*g.cellW,
		MinLat: g.box.MinLat + float64(row)*g.cellH,
		MaxLng: g.box.MinLng + float64(col+1)*g.cellW,
		MaxLat: g.box.MinLat + float64(row+1)*g.cellH,
	}
}

// Center returns the midpoint of one region.
func (g *Grid) Center(id RegionID) Point { return g.CellBox(id).Center() }

// Valid reports whether id names a region of this grid.
func (g *Grid) Valid(id RegionID) bool {
	return id >= 0 && int(id) < g.rows*g.cols
}

// Neighbors returns the 4-connected (N/S/E/W) neighbours of a region, in
// deterministic order. Edge cells have fewer neighbours.
func (g *Grid) Neighbors(id RegionID) []RegionID {
	row, col := g.RowCol(id)
	out := make([]RegionID, 0, 4)
	if row > 0 {
		out = append(out, RegionID((row-1)*g.cols+col))
	}
	if row < g.rows-1 {
		out = append(out, RegionID((row+1)*g.cols+col))
	}
	if col > 0 {
		out = append(out, RegionID(row*g.cols+col-1))
	}
	if col < g.cols-1 {
		out = append(out, RegionID(row*g.cols+col+1))
	}
	return out
}

// RegionsWithin returns all regions whose cell rectangle intersects the
// circle of the given radius (meters) around p, including p's own region.
// The dispatcher uses it to bound candidate-driver search.
func (g *Grid) RegionsWithin(p Point, radiusMeters float64) []RegionID {
	if radiusMeters < 0 {
		return nil
	}
	// Convert the radius into degree spans at p's latitude.
	latSpan := radiusMeters / EarthRadiusMeters * 180 / math.Pi
	cosLat := math.Cos(p.Lat * math.Pi / 180)
	if cosLat < 1e-6 {
		cosLat = 1e-6
	}
	lngSpan := latSpan / cosLat
	clamped := g.box.Clamp(p)
	minCol := int((clamped.Lng - lngSpan - g.box.MinLng) / g.cellW)
	maxCol := int((clamped.Lng + lngSpan - g.box.MinLng) / g.cellW)
	minRow := int((clamped.Lat - latSpan - g.box.MinLat) / g.cellH)
	maxRow := int((clamped.Lat + latSpan - g.box.MinLat) / g.cellH)
	if minCol < 0 {
		minCol = 0
	}
	if minRow < 0 {
		minRow = 0
	}
	if maxCol >= g.cols {
		maxCol = g.cols - 1
	}
	if maxRow >= g.rows {
		maxRow = g.rows - 1
	}
	out := make([]RegionID, 0, (maxRow-minRow+1)*(maxCol-minCol+1))
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			out = append(out, RegionID(row*g.cols+col))
		}
	}
	return out
}
