package geo

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestNearestMatchesWithinTruncation: the bounded-heap selection must
// return exactly Within's sorted prefix — same order, same ties.
func TestNearestMatchesWithinTruncation(t *testing.T) {
	grid := NewNYCGrid()
	ix := NewIndex(grid)
	box := grid.Bounds()
	rng := rand.New(rand.NewSource(7))
	for id := int32(0); id < 500; id++ {
		ix.Insert(id, Point{
			Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		})
	}
	for trial := 0; trial < 50; trial++ {
		p := Point{
			Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		}
		radius := rng.Float64() * 8000
		for _, k := range []int{0, 1, 5, 12, 100, 1000} {
			want := ix.Within(p, radius)
			if len(want) > k {
				want = want[:k]
			}
			if k == 0 {
				want = nil
			}
			got := ix.Nearest(p, k, radius)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d radius=%.0f: Nearest diverges from Within[:k]\n got %v\nwant %v",
					trial, k, radius, got, want)
			}
		}
	}
}

func TestNearestAfterRemovals(t *testing.T) {
	grid := NewNYCGrid()
	ix := NewIndex(grid)
	c := grid.Bounds().Center()
	for id := int32(0); id < 64; id++ {
		ix.Insert(id, Point{Lng: c.Lng + float64(id)*1e-4, Lat: c.Lat})
	}
	for id := int32(0); id < 64; id += 2 {
		ix.Remove(id)
	}
	got := ix.Nearest(c, 3, 1e6)
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 3 || got[2].ID != 5 {
		t.Fatalf("Nearest after removals = %v, want ids 1,3,5", got)
	}
}
