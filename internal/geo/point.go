package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by all great-circle
// computations in this package.
const EarthRadiusMeters = 6371008.8

// Point is a WGS-84 coordinate. Lng is degrees east, Lat degrees north.
type Point struct {
	Lng float64
	Lat float64
}

func (p Point) String() string {
	return fmt.Sprintf("(%.5f, %.5f)", p.Lng, p.Lat)
}

// Haversine returns the great-circle distance between two points in
// meters using the haversine formula, which is numerically stable at the
// city scales this library works with.
func Haversine(a, b Point) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLng := (b.Lng - a.Lng) * math.Pi / 180
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLng / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Equirect returns the equirectangular-projection approximation of the
// distance between two points in meters. Within a single city it is
// accurate to a fraction of a percent and roughly 4x cheaper than
// Haversine, so the hot paths (candidate generation) use it.
func Equirect(a, b Point) float64 {
	midLat := (a.Lat + b.Lat) / 2 * math.Pi / 180
	x := (b.Lng - a.Lng) * math.Pi / 180 * math.Cos(midLat)
	y := (b.Lat - a.Lat) * math.Pi / 180
	return EarthRadiusMeters * math.Sqrt(x*x+y*y)
}

// Manhattan returns the L1 (taxicab) distance between two points in
// meters under the equirectangular projection. Street networks make
// straight-line travel impossible; L1 is the standard city approximation
// and is what the synthetic road network's travel times converge to.
func Manhattan(a, b Point) float64 {
	midLat := (a.Lat + b.Lat) / 2 * math.Pi / 180
	x := math.Abs((b.Lng-a.Lng)*math.Pi/180) * math.Cos(midLat)
	y := math.Abs((b.Lat - a.Lat) * math.Pi / 180)
	return EarthRadiusMeters * (x + y)
}

// BBox is a longitude/latitude axis-aligned bounding box.
type BBox struct {
	MinLng, MinLat float64
	MaxLng, MaxLat float64
}

// NYCBBox is the New York City extent the paper's experiments use:
// longitudes -74.03..-73.77, latitudes 40.58..40.92.
var NYCBBox = BBox{MinLng: -74.03, MinLat: 40.58, MaxLng: -73.77, MaxLat: 40.92}

// Contains reports whether p lies inside the box (inclusive edges).
func (b BBox) Contains(p Point) bool {
	return p.Lng >= b.MinLng && p.Lng <= b.MaxLng &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat
}

// Clamp returns p moved to the nearest point inside the box.
func (b BBox) Clamp(p Point) Point {
	return Point{
		Lng: math.Min(b.MaxLng, math.Max(b.MinLng, p.Lng)),
		Lat: math.Min(b.MaxLat, math.Max(b.MinLat, p.Lat)),
	}
}

// Center returns the box's midpoint.
func (b BBox) Center() Point {
	return Point{Lng: (b.MinLng + b.MaxLng) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
}

// WidthMeters returns the east-west extent of the box in meters measured
// at its central latitude.
func (b BBox) WidthMeters() float64 {
	c := b.Center()
	return Equirect(Point{Lng: b.MinLng, Lat: c.Lat}, Point{Lng: b.MaxLng, Lat: c.Lat})
}

// HeightMeters returns the north-south extent of the box in meters.
func (b BBox) HeightMeters() float64 {
	c := b.Center()
	return Equirect(Point{Lng: c.Lng, Lat: b.MinLat}, Point{Lng: c.Lng, Lat: b.MaxLat})
}
