package geo

import (
	"fmt"
	"math/rand"
	"sort"
)

// Zones is an irregular partition of a bounding box into Voronoi cells
// around seed points — the shape of NYC's 262 TLC taxi zones, which
// Appendix A's DeepST-GC variant handles via graph convolution over the
// zone adjacency. Zones mirrors the Grid API where it can (Region,
// Center, Neighbors) so prediction code written against adjacency lists
// works over either partition.
type Zones struct {
	box   BBox
	seeds []Point
	// index buckets seeds on a coarse grid for nearest-seed queries.
	index *Index
	// adjacency[z] lists zones sharing a boundary with z, discovered by
	// sampling (see NewZones).
	adjacency [][]RegionID
}

// NewZones builds a Voronoi partition of box around the given seeds and
// derives the zone adjacency by scanning a sampleDim x sampleDim lattice
// for neighbouring points in different zones. sampleDim <= 0 defaults to
// 128, which resolves boundaries down to ~box/128. It panics on fewer
// than 2 seeds (a partition needs at least two cells).
func NewZones(box BBox, seeds []Point, sampleDim int) *Zones {
	if len(seeds) < 2 {
		panic(fmt.Sprintf("geo: Voronoi partition needs >= 2 seeds, got %d", len(seeds)))
	}
	if sampleDim <= 0 {
		sampleDim = 128
	}
	z := &Zones{
		box:   box,
		seeds: append([]Point(nil), seeds...),
	}
	// Bucket seeds for nearest queries. The Index operates on a grid
	// sized to the seed count.
	dim := 4
	for dim*dim < len(seeds) && dim < 64 {
		dim *= 2
	}
	z.index = NewIndex(NewGrid(box, dim, dim))
	for i, s := range z.seeds {
		z.index.Insert(int32(i), s)
	}

	// Adjacency by lattice sampling: horizontally or vertically adjacent
	// sample points in different zones witness a shared boundary.
	adjSet := make([]map[RegionID]bool, len(seeds))
	for i := range adjSet {
		adjSet[i] = make(map[RegionID]bool)
	}
	zoneAt := make([]RegionID, sampleDim*sampleDim)
	dLng := (box.MaxLng - box.MinLng) / float64(sampleDim-1)
	dLat := (box.MaxLat - box.MinLat) / float64(sampleDim-1)
	for r := 0; r < sampleDim; r++ {
		for c := 0; c < sampleDim; c++ {
			p := Point{Lng: box.MinLng + float64(c)*dLng, Lat: box.MinLat + float64(r)*dLat}
			zoneAt[r*sampleDim+c] = z.Region(p)
		}
	}
	mark := func(a, b RegionID) {
		if a != b && a >= 0 && b >= 0 {
			adjSet[a][b] = true
			adjSet[b][a] = true
		}
	}
	for r := 0; r < sampleDim; r++ {
		for c := 0; c < sampleDim; c++ {
			cur := zoneAt[r*sampleDim+c]
			if c+1 < sampleDim {
				mark(cur, zoneAt[r*sampleDim+c+1])
			}
			if r+1 < sampleDim {
				mark(cur, zoneAt[(r+1)*sampleDim+c])
			}
		}
	}
	z.adjacency = make([][]RegionID, len(seeds))
	for i, set := range adjSet {
		for nb := range set {
			z.adjacency[i] = append(z.adjacency[i], nb)
		}
		sort.Slice(z.adjacency[i], func(a, b int) bool {
			return z.adjacency[i][a] < z.adjacency[i][b]
		})
	}
	return z
}

// NewRandomZones scatters numZones uniform seeds in the box — a stand-in
// for a real zone shapefile.
func NewRandomZones(box BBox, numZones int, seed int64) *Zones {
	rng := rand.New(rand.NewSource(seed))
	seeds := make([]Point, numZones)
	for i := range seeds {
		seeds[i] = Point{
			Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		}
	}
	return NewZones(box, seeds, 0)
}

// NumRegions returns the zone count.
func (z *Zones) NumRegions() int { return len(z.seeds) }

// Bounds returns the partition's bounding box.
func (z *Zones) Bounds() BBox { return z.box }

// Region maps a point to its nearest-seed zone, or InvalidRegion outside
// the box.
func (z *Zones) Region(p Point) RegionID {
	if !z.box.Contains(p) {
		return InvalidRegion
	}
	// Expand the search radius until the confirmed-nearest guarantee of
	// the underlying index holds.
	radius := z.box.WidthMeters() / 16
	for {
		ns := z.index.Nearest(p, 1, radius)
		if len(ns) > 0 && ns[0].Distance <= radius {
			return RegionID(ns[0].ID)
		}
		radius *= 2
		if radius > 4*(z.box.WidthMeters()+z.box.HeightMeters()) {
			// Defensive: cannot happen with >= 2 in-box seeds.
			return InvalidRegion
		}
	}
}

// Center returns a zone's seed point (its representative location).
func (z *Zones) Center(id RegionID) Point { return z.seeds[id] }

// Neighbors returns the zones sharing a boundary with id, in ascending
// order.
func (z *Zones) Neighbors(id RegionID) []RegionID {
	if id < 0 || int(id) >= len(z.adjacency) {
		return nil
	}
	return z.adjacency[id]
}

// Adjacency returns the full adjacency as int32 lists, the input shape
// predict.NewSTNetGC consumes.
func (z *Zones) Adjacency() [][]int32 {
	out := make([][]int32, len(z.adjacency))
	for i, ns := range z.adjacency {
		for _, nb := range ns {
			out[i] = append(out[i], int32(nb))
		}
	}
	return out
}
