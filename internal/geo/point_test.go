package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistance(t *testing.T) {
	// Times Square to Wall Street is roughly 6.9 km.
	timesSq := Point{Lng: -73.9855, Lat: 40.7580}
	wallSt := Point{Lng: -74.0090, Lat: 40.7074}
	d := Haversine(timesSq, wallSt)
	if d < 5800 || d > 6200 {
		t.Errorf("Haversine = %.0f m, want ~6000 m", d)
	}
}

func TestHaversineZero(t *testing.T) {
	p := Point{Lng: -73.9, Lat: 40.7}
	if d := Haversine(p, p); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(aLng, aLat, bLng, bLat float64) bool {
		a := Point{Lng: math.Mod(aLng, 180), Lat: math.Mod(aLat, 90)}
		b := Point{Lng: math.Mod(bLng, 180), Lat: math.Mod(bLat, 90)}
		return math.Abs(Haversine(a, b)-Haversine(b, a)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquirectCloseToHaversineAtCityScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{
			Lng: NYCBBox.MinLng + rng.Float64()*(NYCBBox.MaxLng-NYCBBox.MinLng),
			Lat: NYCBBox.MinLat + rng.Float64()*(NYCBBox.MaxLat-NYCBBox.MinLat),
		}
		b := Point{
			Lng: NYCBBox.MinLng + rng.Float64()*(NYCBBox.MaxLng-NYCBBox.MinLng),
			Lat: NYCBBox.MinLat + rng.Float64()*(NYCBBox.MaxLat-NYCBBox.MinLat),
		}
		h := Haversine(a, b)
		e := Equirect(a, b)
		if h > 100 && math.Abs(h-e)/h > 0.005 {
			t.Fatalf("Equirect diverges: haversine=%.1f equirect=%.1f", h, e)
		}
	}
}

func TestManhattanDominatesEquirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a := Point{Lng: -74 + rng.Float64()*0.3, Lat: 40.6 + rng.Float64()*0.3}
		b := Point{Lng: -74 + rng.Float64()*0.3, Lat: 40.6 + rng.Float64()*0.3}
		if Manhattan(a, b) < Equirect(a, b)-1e-6 {
			t.Fatalf("L1 < L2 for %v %v", a, b)
		}
	}
}

func TestBBoxContainsClamp(t *testing.T) {
	b := BBox{MinLng: 0, MinLat: 0, MaxLng: 10, MaxLat: 5}
	if !b.Contains(Point{Lng: 5, Lat: 2}) {
		t.Error("interior point not contained")
	}
	if !b.Contains(Point{Lng: 10, Lat: 5}) {
		t.Error("max corner should be contained")
	}
	if b.Contains(Point{Lng: 11, Lat: 2}) {
		t.Error("exterior point contained")
	}
	c := b.Clamp(Point{Lng: -3, Lat: 99})
	if c.Lng != 0 || c.Lat != 5 {
		t.Errorf("Clamp = %v, want (0, 5)", c)
	}
}

func TestBBoxDimensionsNYC(t *testing.T) {
	// The NYC box is ~22 km wide and ~38 km tall.
	w := NYCBBox.WidthMeters()
	h := NYCBBox.HeightMeters()
	if w < 20000 || w > 24000 {
		t.Errorf("width = %.0f m, want ~22 km", w)
	}
	if h < 36000 || h > 40000 {
		t.Errorf("height = %.0f m, want ~38 km", h)
	}
}

func TestBBoxCenter(t *testing.T) {
	b := BBox{MinLng: 0, MinLat: 0, MaxLng: 10, MaxLat: 4}
	c := b.Center()
	if c.Lng != 5 || c.Lat != 2 {
		t.Errorf("Center = %v, want (5, 2)", c)
	}
}
