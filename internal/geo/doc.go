// Package geo provides the geospatial substrate: WGS-84 points, great-
// circle distances, bounding boxes, and the uniform grid partition the
// paper uses to divide New York City into 16x16 regions. It also offers a
// bucketed spatial index used by the dispatcher to find candidate drivers
// near a pickup location without scanning the whole fleet: Index.Within
// answers radius-bounded queries (the rider's patience radius) and
// Index.Nearest the k-nearest pre-filter that caps pricing candidates
// per order before the batched travel-cost matrix is built.
package geo
