package geo

import "sort"

// Index is a grid-bucketed spatial index over densely numbered items
// (driver indices in the simulator). It supports insert, remove, move,
// and radius-bounded nearest-neighbour queries. Item state lives in
// id-indexed slices rather than maps: the batch loop queries positions
// once per candidate driver per rider, and on that path a slice load
// beats a map probe by an order of magnitude. It is not safe for
// concurrent mutation; the batch dispatcher owns it single-threaded.
type Index struct {
	grid    *Grid
	buckets [][]int32  // region -> item ids
	pos     []Point    // id -> current location (valid while region >= 0)
	slot    []int32    // id -> index within its bucket
	region  []RegionID // id -> region, or absent when < 0
	count   int
}

// absent marks an id with no indexed item.
const absent RegionID = -1

// NewIndex builds an empty index over the given grid.
func NewIndex(grid *Grid) *Index {
	return &Index{
		grid:    grid,
		buckets: make([][]int32, grid.NumRegions()),
	}
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return ix.count }

// grow ensures the id-indexed state covers id.
func (ix *Index) grow(id int32) {
	for int32(len(ix.region)) <= id {
		ix.region = append(ix.region, absent)
		ix.pos = append(ix.pos, Point{})
		ix.slot = append(ix.slot, 0)
	}
}

// has reports whether id is currently indexed.
func (ix *Index) has(id int32) bool {
	return id >= 0 && int(id) < len(ix.region) && ix.region[id] >= 0
}

// Insert adds an item at p. Points outside the grid are clamped to it,
// matching how the simulator treats drivers that drift past the city
// boundary. Inserting an existing id moves it instead.
func (ix *Index) Insert(id int32, p Point) {
	if ix.has(id) {
		ix.Move(id, p)
		return
	}
	ix.grow(id)
	p = ix.grid.Bounds().Clamp(p)
	r := ix.grid.Region(p)
	ix.pos[id] = p
	ix.region[id] = r
	ix.slot[id] = int32(len(ix.buckets[r]))
	ix.buckets[r] = append(ix.buckets[r], id)
	ix.count++
}

// Remove deletes an item; unknown ids are a no-op.
func (ix *Index) Remove(id int32) {
	if !ix.has(id) {
		return
	}
	r := ix.region[id]
	b := ix.buckets[r]
	i := ix.slot[id]
	last := int32(len(b) - 1)
	if i != last {
		moved := b[last]
		b[i] = moved
		ix.slot[moved] = i
	}
	ix.buckets[r] = b[:last]
	ix.region[id] = absent
	ix.count--
}

// Move relocates an existing item; unknown ids are inserted.
func (ix *Index) Move(id int32, p Point) {
	if !ix.has(id) {
		ix.Insert(id, p)
		return
	}
	p = ix.grid.Bounds().Clamp(p)
	newR := ix.grid.Region(p)
	oldR := ix.region[id]
	ix.pos[id] = p
	if newR == oldR {
		return
	}
	// Remove from old bucket, append to new.
	b := ix.buckets[oldR]
	i := ix.slot[id]
	last := int32(len(b) - 1)
	if i != last {
		moved := b[last]
		b[i] = moved
		ix.slot[moved] = i
	}
	ix.buckets[oldR] = b[:last]
	ix.region[id] = newR
	ix.slot[id] = int32(len(ix.buckets[newR]))
	ix.buckets[newR] = append(ix.buckets[newR], id)
}

// Position returns an item's location and whether it is indexed.
func (ix *Index) Position(id int32) (Point, bool) {
	if !ix.has(id) {
		return Point{}, false
	}
	return ix.pos[id], true
}

// Region returns the region an item currently occupies.
func (ix *Index) RegionOf(id int32) (RegionID, bool) {
	if !ix.has(id) {
		return absent, false
	}
	return ix.region[id], true
}

// InRegion returns the ids bucketed in one region. The returned slice is
// owned by the index; callers must not mutate it.
func (ix *Index) InRegion(r RegionID) []int32 {
	if !ix.grid.Valid(r) {
		return nil
	}
	return ix.buckets[r]
}

// Neighbor pairs an item id with its distance from a query point.
type Neighbor struct {
	ID       int32
	Distance float64 // meters (equirectangular)
}

// Within returns all items within radiusMeters of p, sorted by distance
// then id (for determinism). It scans only the grid cells intersecting
// the query circle.
func (ix *Index) Within(p Point, radiusMeters float64) []Neighbor {
	var out []Neighbor
	for _, r := range ix.grid.RegionsWithin(p, radiusMeters) {
		for _, id := range ix.buckets[r] {
			d := Equirect(p, ix.pos[id])
			if d <= radiusMeters {
				out = append(out, Neighbor{ID: id, Distance: d})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountWithin counts the items within radiusMeters of p without
// materializing or sorting them — the allocation-free form of Within for
// callers that only need supply depth (the shard router's borrow probe).
func (ix *Index) CountWithin(p Point, radiusMeters float64) int {
	n := 0
	for _, r := range ix.grid.RegionsWithin(p, radiusMeters) {
		for _, id := range ix.buckets[r] {
			if Equirect(p, ix.pos[id]) <= radiusMeters {
				n++
			}
		}
	}
	return n
}

// Nearest returns up to k nearest items to p found within radiusMeters,
// closest first (ties by id). It keeps the k best in a bounded
// max-heap while scanning — O(n log k) against Within's O(n log n)
// full sort, which matters when a dense fleet puts hundreds of
// candidates in radius and the dispatcher caps at a dozen. The result
// is identical to Within(p, radius)[:k].
func (ix *Index) Nearest(p Point, k int, radiusMeters float64) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := make(nearHeap, 0, k)
	for _, r := range ix.grid.RegionsWithin(p, radiusMeters) {
		for _, id := range ix.buckets[r] {
			d := Equirect(p, ix.pos[id])
			if d > radiusMeters {
				continue
			}
			nb := Neighbor{ID: id, Distance: d}
			if len(h) < k {
				h.push(nb)
			} else if nearLess(nb, h[0]) {
				h.replaceTop(nb)
			}
		}
	}
	// Drain the max-heap back-to-front for ascending order.
	out := []Neighbor(h)
	for n := len(h) - 1; n > 0; n-- {
		out[0], out[n] = out[n], out[0]
		h = h[:n]
		h.siftDown(0)
	}
	return out
}

// nearLess orders neighbours by distance then id — the same total
// order Within sorts by.
func nearLess(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID < b.ID
}

// nearHeap is a bounded max-heap on nearLess: the root is the worst of
// the k best seen so far.
type nearHeap []Neighbor

func (h *nearHeap) push(nb Neighbor) {
	*h = append(*h, nb)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !nearLess((*h)[parent], (*h)[i]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *nearHeap) replaceTop(nb Neighbor) {
	(*h)[0] = nb
	h.siftDown(0)
}

func (h nearHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && nearLess(h[big], h[l]) {
			big = l
		}
		if r < n && nearLess(h[big], h[r]) {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}
