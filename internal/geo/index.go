package geo

import "sort"

// Index is a grid-bucketed spatial index over integer-keyed items (driver
// IDs in the simulator). It supports insert, remove, move, and
// radius-bounded nearest-neighbour queries. It is not safe for concurrent
// mutation; the batch dispatcher owns it single-threaded.
type Index struct {
	grid    *Grid
	buckets [][]int32       // region -> item ids
	pos     map[int32]Point // item -> current location
	slot    map[int32]int   // item -> index within its bucket
	region  map[int32]RegionID
}

// NewIndex builds an empty index over the given grid.
func NewIndex(grid *Grid) *Index {
	return &Index{
		grid:    grid,
		buckets: make([][]int32, grid.NumRegions()),
		pos:     make(map[int32]Point),
		slot:    make(map[int32]int),
		region:  make(map[int32]RegionID),
	}
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return len(ix.pos) }

// Insert adds an item at p. Points outside the grid are clamped to it,
// matching how the simulator treats drivers that drift past the city
// boundary. Inserting an existing id moves it instead.
func (ix *Index) Insert(id int32, p Point) {
	if _, ok := ix.pos[id]; ok {
		ix.Move(id, p)
		return
	}
	p = ix.grid.Bounds().Clamp(p)
	r := ix.grid.Region(p)
	ix.pos[id] = p
	ix.region[id] = r
	ix.slot[id] = len(ix.buckets[r])
	ix.buckets[r] = append(ix.buckets[r], id)
}

// Remove deletes an item; unknown ids are a no-op.
func (ix *Index) Remove(id int32) {
	r, ok := ix.region[id]
	if !ok {
		return
	}
	b := ix.buckets[r]
	i := ix.slot[id]
	last := len(b) - 1
	if i != last {
		moved := b[last]
		b[i] = moved
		ix.slot[moved] = i
	}
	ix.buckets[r] = b[:last]
	delete(ix.pos, id)
	delete(ix.slot, id)
	delete(ix.region, id)
}

// Move relocates an existing item; unknown ids are inserted.
func (ix *Index) Move(id int32, p Point) {
	if _, ok := ix.pos[id]; !ok {
		ix.Insert(id, p)
		return
	}
	p = ix.grid.Bounds().Clamp(p)
	newR := ix.grid.Region(p)
	oldR := ix.region[id]
	ix.pos[id] = p
	if newR == oldR {
		return
	}
	// Remove from old bucket, append to new.
	b := ix.buckets[oldR]
	i := ix.slot[id]
	last := len(b) - 1
	if i != last {
		moved := b[last]
		b[i] = moved
		ix.slot[moved] = i
	}
	ix.buckets[oldR] = b[:last]
	ix.region[id] = newR
	ix.slot[id] = len(ix.buckets[newR])
	ix.buckets[newR] = append(ix.buckets[newR], id)
}

// Position returns an item's location and whether it is indexed.
func (ix *Index) Position(id int32) (Point, bool) {
	p, ok := ix.pos[id]
	return p, ok
}

// Region returns the region an item currently occupies.
func (ix *Index) RegionOf(id int32) (RegionID, bool) {
	r, ok := ix.region[id]
	return r, ok
}

// InRegion returns the ids bucketed in one region. The returned slice is
// owned by the index; callers must not mutate it.
func (ix *Index) InRegion(r RegionID) []int32 {
	if !ix.grid.Valid(r) {
		return nil
	}
	return ix.buckets[r]
}

// Neighbor pairs an item id with its distance from a query point.
type Neighbor struct {
	ID       int32
	Distance float64 // meters (equirectangular)
}

// Within returns all items within radiusMeters of p, sorted by distance
// then id (for determinism). It scans only the grid cells intersecting
// the query circle.
func (ix *Index) Within(p Point, radiusMeters float64) []Neighbor {
	var out []Neighbor
	for _, r := range ix.grid.RegionsWithin(p, radiusMeters) {
		for _, id := range ix.buckets[r] {
			d := Equirect(p, ix.pos[id])
			if d <= radiusMeters {
				out = append(out, Neighbor{ID: id, Distance: d})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Nearest returns up to k nearest items to p found within radiusMeters,
// closest first.
func (ix *Index) Nearest(p Point, k int, radiusMeters float64) []Neighbor {
	ns := ix.Within(p, radiusMeters)
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}
