package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func newTestIndex() *Index { return NewIndex(NewNYCGrid()) }

func TestIndexInsertPositionRemove(t *testing.T) {
	ix := newTestIndex()
	p := Point{Lng: -73.9, Lat: 40.75}
	ix.Insert(1, p)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	got, ok := ix.Position(1)
	if !ok || got != p {
		t.Fatalf("Position = %v,%v", got, ok)
	}
	ix.Remove(1)
	if ix.Len() != 0 {
		t.Errorf("Len after remove = %d", ix.Len())
	}
	if _, ok := ix.Position(1); ok {
		t.Error("removed item still has position")
	}
	ix.Remove(1) // double remove is a no-op
}

func TestIndexInsertClampsOutside(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(1, Point{Lng: -80, Lat: 45})
	p, _ := ix.Position(1)
	if !NYCBBox.Contains(p) {
		t.Errorf("outside insert not clamped: %v", p)
	}
}

func TestIndexMoveAcrossRegions(t *testing.T) {
	ix := newTestIndex()
	a := Point{Lng: -74.02, Lat: 40.59} // SW corner region
	b := Point{Lng: -73.78, Lat: 40.91} // NE corner region
	ix.Insert(7, a)
	ra, _ := ix.RegionOf(7)
	ix.Move(7, b)
	rb, _ := ix.RegionOf(7)
	if ra == rb {
		t.Fatal("move across the city did not change region")
	}
	if ids := ix.InRegion(ra); len(ids) != 0 {
		t.Errorf("old region still holds %v", ids)
	}
	if ids := ix.InRegion(rb); len(ids) != 1 || ids[0] != 7 {
		t.Errorf("new region holds %v", ids)
	}
}

func TestIndexInsertExistingMoves(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(3, Point{Lng: -74.0, Lat: 40.6})
	ix.Insert(3, Point{Lng: -73.8, Lat: 40.9})
	if ix.Len() != 1 {
		t.Fatalf("re-insert duplicated item: Len=%d", ix.Len())
	}
}

func TestIndexMoveUnknownInserts(t *testing.T) {
	ix := newTestIndex()
	ix.Move(9, Point{Lng: -73.9, Lat: 40.7})
	if ix.Len() != 1 {
		t.Error("Move of unknown id did not insert")
	}
}

func TestIndexWithinMatchesBruteForce(t *testing.T) {
	ix := newTestIndex()
	rng := rand.New(rand.NewSource(17))
	pts := make(map[int32]Point)
	for i := int32(0); i < 500; i++ {
		p := Point{
			Lng: NYCBBox.MinLng + rng.Float64()*(NYCBBox.MaxLng-NYCBBox.MinLng),
			Lat: NYCBBox.MinLat + rng.Float64()*(NYCBBox.MaxLat-NYCBBox.MinLat),
		}
		pts[i] = p
		ix.Insert(i, p)
	}
	for trial := 0; trial < 20; trial++ {
		q := Point{
			Lng: NYCBBox.MinLng + rng.Float64()*(NYCBBox.MaxLng-NYCBBox.MinLng),
			Lat: NYCBBox.MinLat + rng.Float64()*(NYCBBox.MaxLat-NYCBBox.MinLat),
		}
		radius := 500 + rng.Float64()*5000
		got := ix.Within(q, radius)
		var want []int32
		for id, p := range pts {
			if Equirect(q, p) <= radius {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Within found %d, brute force %d (radius %.0f)",
				len(got), len(want), radius)
		}
		gotIDs := make([]int32, len(got))
		for i, n := range got {
			gotIDs[i] = n.ID
		}
		sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("Within id set mismatch")
			}
		}
	}
}

func TestIndexWithinSortedByDistance(t *testing.T) {
	ix := newTestIndex()
	rng := rand.New(rand.NewSource(23))
	for i := int32(0); i < 200; i++ {
		ix.Insert(i, Point{
			Lng: NYCBBox.MinLng + rng.Float64()*(NYCBBox.MaxLng-NYCBBox.MinLng),
			Lat: NYCBBox.MinLat + rng.Float64()*(NYCBBox.MaxLat-NYCBBox.MinLat),
		})
	}
	ns := ix.Within(NYCBBox.Center(), 20000)
	for i := 1; i < len(ns); i++ {
		if ns[i].Distance < ns[i-1].Distance {
			t.Fatal("Within results not sorted by distance")
		}
	}
}

func TestIndexNearestK(t *testing.T) {
	ix := newTestIndex()
	base := NYCBBox.Center()
	for i := int32(0); i < 10; i++ {
		ix.Insert(i, Point{Lng: base.Lng + float64(i)*0.001, Lat: base.Lat})
	}
	ns := ix.Nearest(base, 3, 50000)
	if len(ns) != 3 {
		t.Fatalf("Nearest returned %d, want 3", len(ns))
	}
	if ns[0].ID != 0 || ns[1].ID != 1 || ns[2].ID != 2 {
		t.Errorf("Nearest order = %v", ns)
	}
}

func TestIndexRemoveSwapKeepsSlots(t *testing.T) {
	// Regression guard for the swap-delete bookkeeping: remove an item in
	// the middle of a bucket and verify the swapped item is still findable.
	ix := newTestIndex()
	p := NYCBBox.Center()
	ix.Insert(1, p)
	ix.Insert(2, p)
	ix.Insert(3, p)
	ix.Remove(1)
	ix.Remove(3)
	r, _ := ix.RegionOf(2)
	ids := ix.InRegion(r)
	if len(ids) != 1 || ids[0] != 2 {
		t.Errorf("bucket after swap-deletes = %v, want [2]", ids)
	}
	ix.Move(2, Point{Lng: p.Lng + 0.1, Lat: p.Lat})
	if ids := ix.InRegion(r); len(ids) != 0 {
		t.Errorf("old bucket not emptied after move: %v", ids)
	}
}

func TestIndexInRegionInvalid(t *testing.T) {
	ix := newTestIndex()
	if ids := ix.InRegion(InvalidRegion); ids != nil {
		t.Errorf("InRegion(invalid) = %v, want nil", ids)
	}
}
