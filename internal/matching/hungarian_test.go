package matching

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxWeightSimple(t *testing.T) {
	w := [][]float64{
		{3, 1},
		{2, 4},
	}
	assign, total := MaxWeight(w)
	if assign[0] != 0 || assign[1] != 1 {
		t.Errorf("assign = %v, want [0 1]", assign)
	}
	if total != 7 {
		t.Errorf("total = %v, want 7", total)
	}
}

func TestMaxWeightPrefersCrossAssignment(t *testing.T) {
	// Greedy would take w[0][0]=9 then w[1][1]=1 (total 10); optimal is
	// 8 + 7 = 15.
	w := [][]float64{
		{9, 8},
		{7, 1},
	}
	assign, total := MaxWeight(w)
	if total != 15 {
		t.Errorf("total = %v, want 15 (assign %v)", total, assign)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Errorf("assign = %v, want [1 0]", assign)
	}
}

func TestMaxWeightRectangular(t *testing.T) {
	// More rows than columns: one row must stay unmatched.
	w := [][]float64{
		{5},
		{9},
		{2},
	}
	assign, total := MaxWeight(w)
	if total != 9 {
		t.Errorf("total = %v, want 9", total)
	}
	matched := 0
	for i, a := range assign {
		if a == 0 {
			matched++
			if i != 1 {
				t.Errorf("row %d matched, want row 1", i)
			}
		}
	}
	if matched != 1 {
		t.Errorf("%d rows matched, want 1", matched)
	}
	// More columns than rows.
	w2 := [][]float64{{1, 10, 2}}
	assign2, total2 := MaxWeight(w2)
	if assign2[0] != 1 || total2 != 10 {
		t.Errorf("assign=%v total=%v, want [1] 10", assign2, total2)
	}
}

func TestMaxWeightForbiddenEdges(t *testing.T) {
	ninf := math.Inf(-1)
	w := [][]float64{
		{ninf, 5},
		{3, ninf},
	}
	assign, total := MaxWeight(w)
	if assign[0] != 1 || assign[1] != 0 || total != 8 {
		t.Errorf("assign=%v total=%v, want [1 0] 8", assign, total)
	}
	// A row with only forbidden edges stays unmatched.
	w2 := [][]float64{
		{ninf, ninf},
		{1, 2},
	}
	assign2, total2 := MaxWeight(w2)
	if assign2[0] != -1 {
		t.Errorf("fully forbidden row matched to %d", assign2[0])
	}
	if total2 != 2 {
		t.Errorf("total = %v, want 2", total2)
	}
}

func TestMaxWeightNegativeWeightsLeftUnmatched(t *testing.T) {
	w := [][]float64{
		{-5, -2},
		{3, -1},
	}
	assign, total := MaxWeight(w)
	if assign[0] != -1 {
		t.Errorf("row 0 with all-negative weights matched to %d", assign[0])
	}
	if assign[1] != 0 || total != 3 {
		t.Errorf("assign=%v total=%v, want row1->0 total 3", assign, total)
	}
}

func TestMaxWeightEmpty(t *testing.T) {
	if a, tot := MaxWeight(nil); a != nil || tot != 0 {
		t.Errorf("empty input: %v %v", a, tot)
	}
	a, tot := MaxWeight([][]float64{{}, {}})
	if tot != 0 || a[0] != -1 || a[1] != -1 {
		t.Errorf("zero-column input: %v %v", a, tot)
	}
}

// bruteForceMax enumerates all assignments of rows to distinct columns.
func bruteForceMax(w [][]float64) float64 {
	cols := 0
	for _, r := range w {
		if len(r) > cols {
			cols = len(r)
		}
	}
	used := make([]bool, cols)
	var rec func(row int) float64
	rec = func(row int) float64 {
		if row == len(w) {
			return 0
		}
		best := rec(row + 1) // leave row unmatched
		for c := 0; c < len(w[row]); c++ {
			if used[c] || math.IsInf(w[row][c], -1) || w[row][c] < 0 {
				continue
			}
			used[c] = true
			if v := w[row][c] + rec(row+1); v > best {
				best = v
			}
			used[c] = false
		}
		return best
	}
	return rec(0)
}

func TestMaxWeightMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		w := make([][]float64, rows)
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				switch rng.Intn(5) {
				case 0:
					w[i][j] = math.Inf(-1)
				case 1:
					w[i][j] = -rng.Float64() * 10
				default:
					w[i][j] = rng.Float64() * 10
				}
			}
		}
		_, got := MaxWeight(w)
		want := bruteForceMax(w)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute force %v for %v", trial, got, want, w)
		}
	}
}

func TestMaxWeightAssignmentIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := make([][]float64, 20)
	for i := range w {
		w[i] = make([]float64, 15)
		for j := range w[i] {
			w[i][j] = rng.Float64() * 100
		}
	}
	assign, total := MaxWeight(w)
	seen := map[int]bool{}
	sum := 0.0
	for i, a := range assign {
		if a == -1 {
			continue
		}
		if seen[a] {
			t.Fatalf("column %d assigned twice", a)
		}
		seen[a] = true
		sum += w[i][a]
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("reported total %v != recomputed %v", total, sum)
	}
}

func TestGreedyIsValidAndWithinHalfOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows := 2 + rng.Intn(8)
		cols := 2 + rng.Intn(8)
		w := make([][]float64, rows)
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				w[i][j] = rng.Float64() * 10
			}
		}
		gAssign, gTotal := Greedy(w)
		_, hTotal := MaxWeight(w)
		if gTotal > hTotal+1e-9 {
			t.Fatalf("greedy %v beat optimal %v", gTotal, hTotal)
		}
		if gTotal < hTotal/2-1e-9 {
			t.Fatalf("greedy %v below half of optimal %v", gTotal, hTotal)
		}
		seen := map[int]bool{}
		for _, a := range gAssign {
			if a == -1 {
				continue
			}
			if seen[a] {
				t.Fatal("greedy assigned a column twice")
			}
			seen[a] = true
		}
	}
}
