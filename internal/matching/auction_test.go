package matching

import (
	"math"
	"math/rand"
	"testing"
)

func TestAuctionSimple(t *testing.T) {
	w := [][]float64{
		{9, 8},
		{7, 1},
	}
	assign, total := Auction(w, 1e-6)
	if math.Abs(total-15) > 1e-3 {
		t.Errorf("total = %v, want 15 (assign %v)", total, assign)
	}
}

func TestAuctionMatchesHungarianWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		w := make([][]float64, rows)
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				switch rng.Intn(6) {
				case 0:
					w[i][j] = math.Inf(-1)
				case 1:
					w[i][j] = -rng.Float64() * 5
				default:
					w[i][j] = rng.Float64() * 100
				}
			}
		}
		eps := 1e-7
		_, aTotal := Auction(w, eps)
		_, hTotal := MaxWeight(w)
		n := float64(rows)
		if cols > rows {
			n = float64(cols)
		}
		if aTotal > hTotal+1e-6 {
			t.Fatalf("trial %d: auction %v exceeds optimal %v", trial, aTotal, hTotal)
		}
		if aTotal < hTotal-n*eps-1e-3 {
			t.Fatalf("trial %d: auction %v too far below optimal %v", trial, aTotal, hTotal)
		}
	}
}

func TestAuctionAssignmentValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := make([][]float64, 30)
	for i := range w {
		w[i] = make([]float64, 20)
		for j := range w[i] {
			w[i][j] = rng.Float64() * 50
		}
	}
	assign, total := Auction(w, 1e-6)
	seen := map[int]bool{}
	sum := 0.0
	for i, j := range assign {
		if j == -1 {
			continue
		}
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
		sum += w[i][j]
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("reported total %v != recomputed %v", total, sum)
	}
}

func TestAuctionForbiddenAndNegative(t *testing.T) {
	ninf := math.Inf(-1)
	w := [][]float64{
		{ninf, ninf},
		{-3, -1},
		{5, 2},
	}
	assign, total := Auction(w, 1e-6)
	if assign[0] != -1 {
		t.Errorf("fully forbidden row matched to %d", assign[0])
	}
	if assign[1] != -1 {
		t.Errorf("all-negative row matched to %d", assign[1])
	}
	if assign[2] != 0 || math.Abs(total-5) > 1e-6 {
		t.Errorf("assign=%v total=%v, want row2->0 total 5", assign, total)
	}
}

func TestAuctionEmpty(t *testing.T) {
	if a, tot := Auction(nil, 1e-6); a != nil && len(a) != 0 || tot != 0 {
		t.Errorf("empty: %v %v", a, tot)
	}
	a, tot := Auction([][]float64{{}, {}}, 0) // zero epsilon defaults
	if tot != 0 || a[0] != -1 {
		t.Errorf("zero-column: %v %v", a, tot)
	}
}
