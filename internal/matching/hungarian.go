package matching

import "math"

// MaxWeight solves the maximum-weight bipartite assignment problem for a
// weight matrix w[row][col]. Forbidden edges are encoded as -Inf. It
// returns assign[row] = col (or -1 when the row stays unmatched) and the
// total weight of the selected assignment.
//
// Internally it runs the O(n^3) potential-based Hungarian algorithm on
// the negated weights, padded to a square matrix in which every real row
// also owns a zero-weight "stay unmatched" slack column — so rows whose
// only finite edges have negative weight are left unmatched rather than
// forced into a harmful assignment.
func MaxWeight(w [][]float64) (assign []int, total float64) {
	rows := len(w)
	if rows == 0 {
		return nil, 0
	}
	cols := 0
	for _, r := range w {
		if len(r) > cols {
			cols = len(r)
		}
	}
	assign = make([]int, rows)
	for i := range assign {
		assign[i] = -1
	}
	if cols == 0 {
		return assign, 0
	}

	// Square problem of size n: rows 0..rows-1 are real, the rest pad;
	// columns 0..cols-1 are real, column cols+i is row i's slack.
	n := rows + cols
	// A finite "forbidden" cost keeps the potential updates well-defined;
	// it must dominate any achievable |weight| sum. Scale from the data.
	maxAbs := 1.0
	for _, row := range w {
		for _, x := range row {
			if !math.IsInf(x, 0) && math.Abs(x) > maxAbs {
				maxAbs = math.Abs(x)
			}
		}
	}
	forbidden := maxAbs*float64(n+1) + 1
	cost := func(i, j int) float64 {
		if i >= rows {
			return 0 // padding rows match anything at no cost
		}
		if j < cols {
			if j >= len(w[i]) || math.IsInf(w[i][j], -1) {
				return forbidden
			}
			return -w[i][j]
		}
		if j == cols+i {
			return 0 // row i's personal unmatched slot
		}
		return forbidden
	}

	// e-maxx formulation with 1-based arrays: u/v potentials, p[j] = row
	// matched to column j, way[j] = previous column on the alternating
	// path.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minV := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 1; j <= n; j++ {
			minV[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minV[j] {
					minV[j] = cur
					way[j] = j0
				}
				if minV[j] < delta {
					delta = minV[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minV[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	for j := 1; j <= n; j++ {
		i := p[j] - 1
		col := j - 1
		if i < 0 || i >= rows || col >= cols {
			continue
		}
		if math.IsInf(w[i][col], -1) || col >= len(w[i]) {
			continue // landed on a forbidden edge; treat as unmatched
		}
		// The slack column guarantees a zero-weight alternative, so a
		// negative-weight real assignment is never *optimal*, but numeric
		// ties can surface one; filter it.
		if w[i][col] < 0 {
			continue
		}
		assign[i] = col
		total += w[i][col]
	}
	return assign, total
}

// Greedy matches rows to columns by repeatedly taking the largest
// remaining positive weight (ties broken by lowest row then column).
// Returns assign[row] = col or -1. It is a 1/2-approximation for maximum
// weight matching and serves as a fast comparator in tests and benches.
func Greedy(w [][]float64) (assign []int, total float64) {
	rows := len(w)
	assign = make([]int, rows)
	for i := range assign {
		assign[i] = -1
	}
	usedCol := map[int]bool{}
	for {
		bestR, bestC, bestW := -1, -1, 0.0
		for r := 0; r < rows; r++ {
			if assign[r] != -1 {
				continue
			}
			for c, weight := range w[r] {
				if usedCol[c] || math.IsInf(weight, -1) || weight <= 0 {
					continue
				}
				if weight > bestW {
					bestR, bestC, bestW = r, c, weight
				}
			}
		}
		if bestR == -1 {
			return assign, total
		}
		assign[bestR] = bestC
		usedCol[bestC] = true
		total += bestW
	}
}
