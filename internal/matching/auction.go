package matching

import "math"

// Auction solves maximum-weight bipartite assignment with Bertsekas'
// auction algorithm: unmatched rows bid for their most valuable column,
// raising its price by the bid increment plus epsilon. With
// epsilon < 1/n on integer weights the result is optimal; on float
// weights it is optimal to within n*epsilon, which is ample for dispatch
// scoring. It exists as a faster practical alternative to Hungarian for
// large sparse batches and as an independent implementation to
// cross-check it in tests.
//
// Semantics match MaxWeight: -Inf edges are forbidden, rows with only
// negative or forbidden edges stay unmatched, and assign[row] = col or
// -1.
func Auction(w [][]float64, epsilon float64) (assign []int, total float64) {
	rows := len(w)
	assign = make([]int, rows)
	for i := range assign {
		assign[i] = -1
	}
	if rows == 0 {
		return assign, 0
	}
	cols := 0
	for _, r := range w {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return assign, 0
	}
	if epsilon <= 0 {
		epsilon = 1e-6
	}

	price := make([]float64, cols)
	owner := make([]int, cols)
	for j := range owner {
		owner[j] = -1
	}
	// Queue of unassigned rows that still have a potentially positive bid.
	queue := make([]int, rows)
	for i := range queue {
		queue[i] = i
	}
	// Each row can be displaced at most once per price increase; prices
	// only rise, so the total number of bids is bounded. Guard anyway.
	maxBids := rows * cols * 64
	for len(queue) > 0 && maxBids > 0 {
		maxBids--
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		// Find the best and second-best net value for row i.
		best, second := math.Inf(-1), math.Inf(-1)
		bestJ := -1
		for j := 0; j < len(w[i]); j++ {
			if math.IsInf(w[i][j], -1) {
				continue
			}
			v := w[i][j] - price[j]
			if v > best {
				second = best
				best = v
				bestJ = j
			} else if v > second {
				second = v
			}
		}
		if bestJ == -1 || best < 0 {
			// Nothing worth bidding on: stay unmatched (the zero-value
			// outside option).
			continue
		}
		if math.IsInf(second, -1) || second < 0 {
			second = 0 // outside option bounds the second-best value
		}
		price[bestJ] += best - second + epsilon
		if prev := owner[bestJ]; prev != -1 {
			assign[prev] = -1
			queue = append(queue, prev)
		}
		owner[bestJ] = i
		assign[i] = bestJ
	}

	for i, j := range assign {
		if j != -1 {
			if w[i][j] < 0 {
				assign[i] = -1 // epsilon noise must not force a harmful match
				continue
			}
			total += w[i][j]
		}
	}
	return assign, total
}
