// Package matching provides bipartite assignment algorithms: an O(n^3)
// Hungarian (Kuhn-Munkres) solver for maximum-weight matching, used by
// the POLAR baseline's offline region-level blueprint, and a greedy
// matcher for comparison and testing.
package matching
