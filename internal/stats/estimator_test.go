package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.9g, want %.9g (±%g)", what, got, want, tol)
	}
}

// TestEstimatorWelfordFixture checks the streaming moments against the
// textbook sample {2,4,4,4,5,5,7,9}: mean 5, sample variance 32/7.
func TestEstimatorWelfordFixture(t *testing.T) {
	var e Estimator
	e.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	approx(t, e.Mean(), 5, 1e-12, "mean")
	approx(t, e.Var(), 32.0/7.0, 1e-12, "var")
	approx(t, e.Std(), math.Sqrt(32.0/7.0), 1e-12, "std")
	if e.Count() != 8 || e.Min() != 2 || e.Max() != 9 {
		t.Errorf("count/min/max = %d/%.0f/%.0f, want 8/2/9", e.Count(), e.Min(), e.Max())
	}
}

// TestTCriticalTableValues pins the inverse-CDF against printed
// t-table entries.
func TestTCriticalTableValues(t *testing.T) {
	cases := []struct {
		df   int
		conf float64
		want float64
	}{
		{1, 0.95, 12.7062},
		{4, 0.95, 2.776445},
		{9, 0.95, 2.262157},
		{9, 0.99, 3.249836},
		{30, 0.95, 2.042272},
		{100, 0.95, 1.983972},
	}
	for _, c := range cases {
		approx(t, TCritical(c.df, c.conf), c.want, 1e-4, "t*")
	}
	if !math.IsNaN(TCritical(0, 0.95)) || !math.IsNaN(TCritical(5, 1.0)) {
		t.Error("invalid df/confidence should yield NaN")
	}
}

// TestMeanCIFixture: the Welford fixture's 95% interval is
// t_{7,0.975} * s / sqrt(8) = 2.364624 * 2.138090 / 2.828427.
func TestMeanCIFixture(t *testing.T) {
	var e Estimator
	e.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	iv := e.MeanCI(0.95)
	approx(t, iv.Mean, 5, 1e-12, "ci mean")
	approx(t, iv.Half, 2.364624*math.Sqrt(32.0/7.0)/math.Sqrt(8), 1e-4, "ci half")
	approx(t, iv.Lo(), iv.Mean-iv.Half, 1e-12, "lo")
	approx(t, iv.Hi(), iv.Mean+iv.Half, 1e-12, "hi")
	if iv.N != 8 || iv.Confidence != 0.95 {
		t.Errorf("interval metadata %+v", iv)
	}
}

// TestMeanCIDegenerate: n=0, n=1, and zero-variance samples all
// degenerate to a zero-width interval rather than NaN or Inf.
func TestMeanCIDegenerate(t *testing.T) {
	var empty Estimator
	if iv := empty.MeanCI(0.95); iv.Mean != 0 || iv.Half != 0 || iv.N != 0 {
		t.Errorf("empty interval %+v", iv)
	}
	var one Estimator
	one.Add(3.5)
	if iv := one.MeanCI(0.95); iv.Mean != 3.5 || iv.Half != 0 || iv.N != 1 {
		t.Errorf("n=1 interval %+v", iv)
	}
	var flat Estimator
	flat.AddAll([]float64{2, 2, 2, 2})
	if iv := flat.MeanCI(0.95); iv.Mean != 2 || iv.Half != 0 {
		t.Errorf("zero-variance interval %+v", iv)
	}
}

// TestCIWidthShrinksAsRootN: with the variance held exactly constant
// (a repeated two-point pattern), quadrupling n should halve the CI
// width up to the t-critical drift — the ratio lands near
// 2 * t_{49}/t_{199} ≈ 2.038.
func TestCIWidthShrinksAsRootN(t *testing.T) {
	pattern := func(n int) *Estimator {
		var e Estimator
		for i := 0; i < n; i++ {
			e.Add(float64(i % 2)) // {0,1,0,1,...}: sample var n/(2(n-1))... constant-ish
		}
		return &e
	}
	small := pattern(50).MeanCI(0.95)
	large := pattern(200).MeanCI(0.95)
	ratio := small.Half / large.Half
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("CI width ratio n=50 vs n=200 = %.4f, want ~2 (1/sqrt(n) scaling)", ratio)
	}
}

// TestQuantileNearestRank pins the nearest-rank convention on a known
// 10-sample set: p95 must be the 10th smallest (ceil(0.95*10) = 10),
// not the 9th.
func TestQuantileNearestRank(t *testing.T) {
	var e Estimator
	for i := 10; i >= 1; i-- { // insertion order must not matter
		e.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}, {0.0, 1}, {1.0, 10},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%.2f) = %g, want %g", c.p, got, c.want)
		}
	}
	var empty Estimator
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	var one Estimator
	one.Add(7)
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if one.Quantile(p) != 7 {
			t.Errorf("single sample is every quantile; Quantile(%g) = %g", p, one.Quantile(p))
		}
	}
}

// TestSignTestKnownSequences checks the exact binomial tail on
// hand-computed win/loss records.
func TestSignTestKnownSequences(t *testing.T) {
	cases := []struct {
		wins, losses int
		want         float64
	}{
		// 9 wins, 1 loss: 2 * (C(10,0)+C(10,1))/2^10 = 22/1024.
		{9, 1, 22.0 / 1024.0},
		// 10 wins, 0 losses: 2 * 1/1024.
		{10, 0, 2.0 / 1024.0},
		// 5/5 split: capped at 1.
		{5, 5, 1},
		// 1 win, 0 losses: 2 * 1/2 = 1.
		{1, 0, 1},
		// Symmetric.
		{1, 9, 22.0 / 1024.0},
	}
	for _, c := range cases {
		approx(t, SignTest(c.wins, c.losses), c.want, 1e-12, "sign p")
	}
	if SignTest(0, 0) != 1 {
		t.Error("empty record should have p = 1")
	}
}

// TestPairedCompareFixture: a beats b on 3 of 4 paired instances with
// a hand-computable mean difference.
func TestPairedCompareFixture(t *testing.T) {
	a := []float64{5, 7, 6, 4}
	b := []float64{4, 5, 6.5, 3}
	p, err := PairedCompare(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if p.Wins != 3 || p.Losses != 1 || p.Ties != 0 {
		t.Errorf("record = %d/%d/%d, want 3/1/0", p.Wins, p.Losses, p.Ties)
	}
	// Differences {1, 2, -0.5, 1}: mean 0.875.
	approx(t, p.Diff.Mean, 0.875, 1e-12, "paired mean diff")
	if p.Diff.Half <= 0 {
		t.Error("paired CI should be positive width")
	}
	// 3/1: 2*(C(4,0)+C(4,1))/16 = 10/16.
	approx(t, p.SignP, 10.0/16.0, 1e-12, "paired sign p")

	// Ties are recorded and excluded from the sign test.
	pt, err := PairedCompare([]float64{1, 2, 2}, []float64{0, 2, 2}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Wins != 1 || pt.Ties != 2 || pt.SignP != 1 {
		t.Errorf("tie handling: %+v", pt)
	}

	if _, err := PairedCompare([]float64{1}, []float64{1, 2}, 0.95); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PairedCompare(nil, nil, 0.95); err == nil {
		t.Error("empty input should error")
	}
}

// TestEstimatorMatchesSummaryMerge: Estimator's embedded moments must
// agree with Summary's parallel merge over the same data split.
func TestEstimatorMatchesSummaryMerge(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var e Estimator
	e.AddAll(xs)
	var a, b Summary
	for i, x := range xs {
		if i < 5 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	approx(t, e.Mean(), a.Mean(), 1e-12, "merged mean")
	approx(t, e.Var(), a.Var(), 1e-12, "merged var")
}
