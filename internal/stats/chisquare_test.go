package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.95},
		{5.991, 2, 0.95},
		{9.488, 4, 0.95},
		{11.070, 5, 0.95},
		{12.592, 6, 0.95},
		{18.307, 10, 0.95},
	}
	for _, c := range cases {
		got := ChiSquareCDF(c.x, c.k)
		if math.Abs(got-c.want) > 0.001 {
			t.Errorf("ChiSquareCDF(%.3f, %d) = %.5f, want %.3f", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareCriticalMatchesPaperTable(t *testing.T) {
	// The paper's Tables 7-8 quote these 5% critical values.
	cases := []struct {
		df   int
		want float64
	}{
		{4, 9.488},
		{5, 11.070},
		{6, 12.592},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.df, 0.05)
		if math.Abs(got-c.want) > 0.005 {
			t.Errorf("ChiSquareCritical(%d, 0.05) = %.4f, want %.3f", c.df, got, c.want)
		}
	}
}

func TestChiSquareCDFEdges(t *testing.T) {
	if got := ChiSquareCDF(-1, 3); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
	if got := ChiSquareCDF(5, 0); got != 0 {
		t.Errorf("CDF with df=0 = %v, want 0", got)
	}
	if got := ChiSquareCDF(1e6, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(huge) = %v, want 1", got)
	}
}

func TestChiSquarePoissonTestAcceptsPoissonData(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		samples := make([]int, 210) // paper: 210 per-minute samples
		for i := range samples {
			samples[i] = Poisson(rng, 70)
		}
		res, err := ChiSquarePoissonTest(samples, 0.05)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Reject {
			rejections++
		}
	}
	// At alpha=0.05 we expect ~5% false rejections; 20% is a generous cap.
	if rejections > trials/5 {
		t.Errorf("rejected true Poisson data in %d/%d trials", rejections, trials)
	}
}

func TestChiSquarePoissonTestRejectsUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	rejected := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		samples := make([]int, 300)
		for i := range samples {
			// Uniform on [0, 200): variance far exceeds the mean, so a
			// Poisson fit should be firmly rejected.
			samples[i] = rng.Intn(200)
		}
		res, err := ChiSquarePoissonTest(samples, 0.05)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Reject {
			rejected++
		}
	}
	if rejected < trials-2 {
		t.Errorf("only rejected uniform data in %d/%d trials", rejected, trials)
	}
}

func TestChiSquarePoissonTestErrors(t *testing.T) {
	if _, err := ChiSquarePoissonTest([]int{1, 2}, 0.05); err == nil {
		t.Error("want error for too few samples")
	}
	if _, err := ChiSquarePoissonTest(make([]int, 50), 0.05); err == nil {
		t.Error("want error for all-zero samples")
	}
	neg := make([]int, 50)
	neg[3] = -1
	if _, err := ChiSquarePoissonTest(neg, 0.05); err == nil {
		t.Error("want error for negative sample")
	}
}

func TestMergeSparseBinsFloor(t *testing.T) {
	obs := []float64{1, 2, 30, 40, 2, 1}
	exp := []float64{0.5, 2, 28, 41, 3, 0.7}
	mo, me := mergeSparseBins(obs, exp)
	if len(mo) != len(me) {
		t.Fatalf("length mismatch %d vs %d", len(mo), len(me))
	}
	for i, e := range me {
		if e < minExpectedPerBin && len(me) > 2 {
			t.Errorf("bin %d expected %v below floor", i, e)
		}
	}
	// Totals must be conserved by merging.
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if math.Abs(sum(mo)-sum(obs)) > 1e-9 || math.Abs(sum(me)-sum(exp)) > 1e-9 {
		t.Error("merging changed totals")
	}
}

func TestPoissonHistogramTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	samples := make([]int, 210)
	for i := range samples {
		samples[i] = Poisson(rng, 65)
	}
	bins := PoissonHistogram(samples, 10)
	totalObs := 0
	for _, b := range bins {
		totalObs += b.Observed
		if b.Hi-b.Lo != 10 {
			t.Errorf("bin width %d, want 10", b.Hi-b.Lo)
		}
	}
	if totalObs != len(samples) {
		t.Errorf("observed total %d, want %d", totalObs, len(samples))
	}
}

func TestPoissonHistogramEmpty(t *testing.T) {
	if bins := PoissonHistogram(nil, 10); bins != nil {
		t.Errorf("want nil for empty input, got %v", bins)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{4, 1, 3, 2, 5}
	if got := Quantile(data, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(data, 1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := Quantile(data, 0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
	// Input must not be mutated.
	if data[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}
