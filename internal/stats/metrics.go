package stats

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when paired metric inputs differ in length.
var ErrLengthMismatch = errors.New("stats: prediction and truth lengths differ")

// MAE returns the mean absolute error between predictions and truth,
// the first error column of Table 3.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, errors.New("stats: empty input")
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean square error, the paper's "real RMSE" column.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, errors.New("stats: empty input")
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// RelativeRMSE returns RMSE normalized by the root mean square of the
// truth, expressed as a percentage — the paper's "RMSE (%)" column in
// Tables 3 and 6. A zero-valued truth vector yields an error.
func RelativeRMSE(pred, truth []float64) (float64, error) {
	rmse, err := RMSE(pred, truth)
	if err != nil {
		return 0, err
	}
	ms := 0.0
	for _, t := range truth {
		ms += t * t
	}
	ms = math.Sqrt(ms / float64(len(truth)))
	if ms == 0 {
		return 0, errors.New("stats: zero truth norm")
	}
	return 100 * rmse / ms, nil
}

// Summary accumulates streaming moments and extrema without retaining the
// samples (Welford's algorithm), used for per-driver idle ledgers where a
// day can produce millions of observations.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into this one (parallel Welford).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}
