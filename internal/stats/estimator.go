package stats

import (
	"errors"
	"math"
	"sort"
)

// Interval is a two-sided confidence interval around a sample mean:
// [Mean-Half, Mean+Half] covers the population mean with probability
// Confidence under the usual Student-t assumptions. Half is 0 when the
// sample is too small to estimate dispersion (n < 2) or has zero
// variance.
type Interval struct {
	Mean       float64 `json:"mean"`
	Half       float64 `json:"half"`
	N          int     `json:"n"`
	Confidence float64 `json:"confidence"`
}

// Lo returns the interval's lower bound.
func (iv Interval) Lo() float64 { return iv.Mean - iv.Half }

// Hi returns the interval's upper bound.
func (iv Interval) Hi() float64 { return iv.Mean + iv.Half }

// Estimator aggregates trial observations for experiment cells: it
// keeps Summary's streaming Welford moments and additionally retains
// the samples, so it can report nearest-rank quantiles and Student-t
// confidence intervals. Experiment cells hold tens of seeds, not the
// millions of observations Summary was built for, so retention is cheap.
type Estimator struct {
	Summary
	samples []float64
}

// Add folds one observation into the estimator.
func (e *Estimator) Add(x float64) {
	e.Summary.Add(x)
	e.samples = append(e.samples, x)
}

// AddAll folds a slice of observations.
func (e *Estimator) AddAll(xs []float64) {
	for _, x := range xs {
		e.Add(x)
	}
}

// Samples returns the retained observations in insertion order.
func (e *Estimator) Samples() []float64 { return e.samples }

// Quantile returns the nearest-rank p-quantile: the ceil(p*n)-th
// smallest sample (0 when empty). Nearest-rank matches internal/load's
// latency histogram — an interpolated or floored index would bias tail
// quantiles low at the small n of a seeded experiment cell.
func (e *Estimator) Quantile(p float64) float64 {
	n := len(e.samples)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), e.samples...)
	sort.Float64s(sorted)
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// MeanCI returns the two-sided Student-t confidence interval for the
// population mean at the given confidence level (e.g. 0.95). With
// fewer than two samples, or zero sample variance, Half is 0: the
// interval degenerates to the point estimate.
func (e *Estimator) MeanCI(confidence float64) Interval {
	iv := Interval{Mean: e.Mean(), N: e.Count(), Confidence: confidence}
	if e.Count() < 2 {
		return iv
	}
	iv.Half = TCritical(e.Count()-1, confidence) * e.Std() / math.Sqrt(float64(e.Count()))
	return iv
}

// TCritical returns the two-sided Student-t critical value t* with the
// given degrees of freedom: P(-t* <= T_df <= t*) = confidence. It
// inverts the exact t CDF (via the regularized incomplete beta
// function) by bisection, so no lookup-table truncation: TCritical(9,
// 0.95) = 2.26216... as in printed tables.
func TCritical(df int, confidence float64) float64 {
	if df < 1 || confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	p := 1 - (1-confidence)/2 // one-sided upper quantile
	lo, hi := 0.0, 1.0
	for tCDF(hi, df) < p {
		hi *= 2
		if hi > 1e9 { // confidence astronomically close to 1
			break
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF returns P(T_df <= t) for t >= 0.
func tCDF(t float64, df int) float64 {
	if t <= 0 {
		return 0.5
	}
	v := float64(df)
	return 1 - 0.5*regIncBeta(v/2, 0.5, v/(v+t*t))
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// computed with the standard Lentz continued fraction (Numerical
// Recipes 6.4), using the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay
// in the fraction's fast-converging region.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const tiny = 1e-30
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 200; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return h
}

// Paired is a seed-for-seed comparison of two treatments run on the
// same problem instances: the paired mean difference a-b with its
// Student-t interval, the per-instance win/loss/tie record, and the
// exact two-sided sign-test p-value. "A beats B on 9/10 seeds, paired
// mean diff +0.031 ± 0.012, sign p = 0.021" is this struct rendered.
type Paired struct {
	Diff   Interval `json:"diff"`
	Wins   int      `json:"wins"`
	Losses int      `json:"losses"`
	Ties   int      `json:"ties"`
	SignP  float64  `json:"sign_p"`
}

// PairedCompare compares seed-aligned sample vectors a and b: a[i] and
// b[i] must come from the same problem instance. Wins counts instances
// where a > b.
func PairedCompare(a, b []float64, confidence float64) (Paired, error) {
	if len(a) != len(b) {
		return Paired{}, ErrLengthMismatch
	}
	if len(a) == 0 {
		return Paired{}, errors.New("stats: empty paired input")
	}
	var e Estimator
	p := Paired{}
	for i := range a {
		d := a[i] - b[i]
		e.Add(d)
		switch {
		case d > 0:
			p.Wins++
		case d < 0:
			p.Losses++
		default:
			p.Ties++
		}
	}
	p.Diff = e.MeanCI(confidence)
	p.SignP = SignTest(p.Wins, p.Losses)
	return p, nil
}

// SignTest returns the exact two-sided sign-test p-value for a
// win/loss record: the probability, under the null hypothesis that
// wins and losses are equally likely, of a split at least this
// lopsided. Ties are excluded before calling (the standard treatment).
// An empty record returns 1.
func SignTest(wins, losses int) float64 {
	n := wins + losses
	if n == 0 {
		return 1
	}
	k := wins
	if losses < k {
		k = losses
	}
	// Two-sided: double the lower tail P(X <= k), X ~ Binomial(n, 1/2).
	tail := 0.0
	for i := 0; i <= k; i++ {
		tail += math.Exp(lchoose(n, i) - float64(n)*math.Ln2)
	}
	p := 2 * tail
	if p > 1 {
		p = 1
	}
	return p
}

// lchoose returns log C(n, k).
func lchoose(n, k int) float64 {
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}
