package stats

import (
	"math"
	"math/rand"
)

// Poisson draws a sample from a Poisson distribution with mean lambda.
// For small lambda it uses Knuth's product-of-uniforms method; for large
// lambda (>= 30) it switches to the PTRS transformed-rejection sampler of
// Hörmann (1993), which stays O(1) as lambda grows. lambda <= 0 returns 0.
func Poisson(rng *rand.Rand, lambda float64) int {
	switch {
	case lambda <= 0 || math.IsNaN(lambda):
		return 0
	case lambda < 30:
		return poissonKnuth(rng, lambda)
	default:
		return poissonPTRS(rng, lambda)
	}
}

func poissonKnuth(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm. It is exact (not an
// approximation) and requires only a handful of uniforms per sample.
func poissonPTRS(rng *rand.Rand, lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLam := math.Log(lambda)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v)+math.Log(invAlpha)-math.Log(a/(us*us)+b) <=
			k*logLam-lambda-logGamma(k+1) {
			return int(k)
		}
	}
}

func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Exponential draws an exponentially distributed inter-arrival time with
// the given rate (events per unit time). rate <= 0 returns +Inf, meaning
// "never": callers use it for empty regions.
func Exponential(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / rate
}

// Categorical samples an index from the given non-negative weights.
// A zero total weight yields a uniform draw.
func Categorical(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// TruncNormal draws a normal sample with the given mean and standard
// deviation, rejected into [lo, hi]. It falls back to clamping after a
// bounded number of rejections so it cannot loop forever on degenerate
// bounds.
func TruncNormal(rng *rand.Rand, mean, sd, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		x := mean + sd*rng.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// LogNormal draws a log-normal sample parameterized by the mean and
// standard deviation of the underlying normal.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// PoissonPMF returns P(X = k) for X ~ Poisson(lambda), computed in log
// space so large lambda/k do not overflow.
func PoissonPMF(lambda float64, k int) float64 {
	if lambda <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if k < 0 {
		return 0
	}
	return math.Exp(float64(k)*math.Log(lambda) - lambda - logGamma(float64(k)+1))
}

// PoissonCDF returns P(X <= k) for X ~ Poisson(lambda).
func PoissonCDF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += PoissonPMF(lambda, i)
	}
	if sum > 1 {
		return 1
	}
	return sum
}
