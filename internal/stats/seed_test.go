package stats

import "testing"

func TestSplitSeedDeterministic(t *testing.T) {
	for _, parent := range []int64{0, 1, -1, 42, 1 << 40} {
		for stream := 0; stream < 16; stream++ {
			a := SplitSeed(parent, stream)
			b := SplitSeed(parent, stream)
			if a != b {
				t.Fatalf("SplitSeed(%d, %d) not deterministic: %d vs %d", parent, stream, a, b)
			}
		}
	}
}

func TestSplitSeedDistinctStreams(t *testing.T) {
	const streams = 1024
	seen := make(map[int64]int, streams)
	for s := 0; s < streams; s++ {
		v := SplitSeed(7, s)
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide on seed %d", prev, s, v)
		}
		seen[v] = s
	}
}

func TestSplitSeedParentSensitivity(t *testing.T) {
	// Adjacent parents must not produce overlapping early streams.
	seen := make(map[int64]bool)
	for parent := int64(0); parent < 64; parent++ {
		for s := 0; s < 8; s++ {
			v := SplitSeed(parent, s)
			if seen[v] {
				t.Fatalf("seed %d repeats across (parent, stream) grid", v)
			}
			seen[v] = true
		}
	}
}

func TestSplitSeedDiffersFromParent(t *testing.T) {
	// Stream 0 must not be the identity: a shard must never share its
	// parent's stream by accident.
	for _, parent := range []int64{0, 1, 12345} {
		if SplitSeed(parent, 0) == parent {
			t.Fatalf("SplitSeed(%d, 0) equals the parent seed", parent)
		}
	}
}
