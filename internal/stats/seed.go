package stats

// SplitSeed forks a parent seed into the stream-th derived seed — the
// deterministic way sharded runs hand each shard (or any other parallel
// component) its own independent RNG stream. Two properties matter:
// reproducibility (the same parent and stream always yield the same
// seed, so a sharded run replays bit-for-bit) and decorrelation (nearby
// parents or streams land far apart, so per-shard stochastic dispatchers
// don't accidentally mirror each other's draws).
//
// The mix is SplitMix64's finalizer over the parent advanced by
// stream+1 Weyl increments — the same construction Java's SplittableRandom
// and JAX's key-splitting use for statistically independent substreams.
func SplitSeed(parent int64, stream int) int64 {
	z := uint64(parent) + (uint64(stream)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
