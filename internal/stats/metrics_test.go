package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MAE = %v, want 1", got)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
}

func TestRelativeRMSEPerfect(t *testing.T) {
	got, err := RelativeRMSE([]float64{5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("RelativeRMSE of perfect prediction = %v, want 0", got)
	}
}

func TestMetricErrors(t *testing.T) {
	if _, err := MAE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := RelativeRMSE([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Error("want error for zero truth norm")
	}
}

func TestMAEAlwaysNonNegative(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		m, err := MAE(a[:n], b[:n])
		return err == nil && (m >= 0 || math.IsNaN(m))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMSEAtLeastMAE(t *testing.T) {
	// RMSE >= MAE by the power-mean inequality.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		mae, _ := MAE(a, b)
		rmse, _ := RMSE(a, b)
		if rmse < mae-1e-9 {
			t.Fatalf("RMSE %v < MAE %v", rmse, mae)
		}
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	wantVar := 32.0 / 7.0
	if math.Abs(s.Var()-wantVar) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), wantVar)
	}
	if math.Abs(s.Sum()-40) > 1e-12 {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummaryMergeEquivalentToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, left, right Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i < 400 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.Count() != all.Count() {
		t.Fatalf("count %d vs %d", left.Count(), all.Count())
	}
	if math.Abs(left.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("mean %v vs %v", left.Mean(), all.Mean())
	}
	if math.Abs(left.Var()-all.Var()) > 1e-9 {
		t.Errorf("var %v vs %v", left.Var(), all.Var())
	}
	if left.Min() != all.Min() || left.Max() != all.Max() {
		t.Error("min/max mismatch after merge")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty changed summary")
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 3 {
		t.Error("merge into empty failed")
	}
}
