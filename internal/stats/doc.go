// Package stats provides the statistical substrate for the MRVD
// reproduction: deterministic random sampling (Poisson, exponential,
// categorical), goodness-of-fit testing (Pearson chi-square, as used in
// Appendix B of the paper to validate the Poisson arrival assumption),
// and the error metrics the paper reports (MAE, relative RMSE, real RMSE).
//
// All samplers take an explicit *rand.Rand so that every simulation and
// experiment in this repository is reproducible from a single seed.
package stats
