package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ChiSquareCDF returns the CDF of the chi-square distribution with k
// degrees of freedom evaluated at x, via the regularized lower incomplete
// gamma function P(k/2, x/2).
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareCritical returns the critical value c such that
// P(X > c) = alpha for X ~ chi-square with k degrees of freedom. It is the
// quantity written chi²_{r-1}(0.05) in Tables 7 and 8 of the paper.
func ChiSquareCritical(k int, alpha float64) float64 {
	if k <= 0 {
		return 0
	}
	target := 1 - alpha
	// Bisection on the CDF: monotone, so this is robust.
	lo, hi := 0.0, 1.0
	for ChiSquareCDF(hi, k) < target {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquareCDF(mid, k) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regularizedGammaP computes P(a, x) = γ(a, x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes style, stdlib-only).
func regularizedGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-logGamma(a))
}

func gammaQContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-logGamma(a)) * h
}

// ChiSquareResult records the outcome of a Pearson goodness-of-fit test,
// in the same shape the paper reports in Tables 7 and 8: the number of
// bins r, the statistic k, the critical value chi²_{r-1}(alpha), and
// whether the null hypothesis (samples follow the fitted distribution)
// survives.
type ChiSquareResult struct {
	Bins      int     // r: number of intervals after merging sparse tails
	Statistic float64 // k = Σ (ν_i − n·p_i)² / (n·p_i)
	DF        int     // degrees of freedom, r−1
	Critical  float64 // chi²_{DF}(alpha)
	Alpha     float64
	Lambda    float64 // fitted Poisson mean
	Reject    bool    // true if Statistic > Critical
}

func (r ChiSquareResult) String() string {
	verdict := "fail to reject H0 (Poisson plausible)"
	if r.Reject {
		verdict = "reject H0"
	}
	return fmt.Sprintf("r=%d k=%.4f chi2_%d(%.2f)=%.3f lambda=%.3f: %s",
		r.Bins, r.Statistic, r.DF, r.Alpha, r.Critical, r.Lambda, verdict)
}

// minExpectedPerBin is the conventional floor on expected bin counts for
// the Pearson test; sparser bins are merged into their neighbours.
const minExpectedPerBin = 5.0

// ChiSquarePoissonTest fits a Poisson distribution to the integer samples
// by maximum likelihood (the sample mean) and runs a Pearson chi-square
// goodness-of-fit test at significance level alpha, exactly the procedure
// of Appendix B. Bins with expected count below 5 are merged into the
// adjacent bin, and the two open tails are folded into the extreme bins.
func ChiSquarePoissonTest(samples []int, alpha float64) (ChiSquareResult, error) {
	if len(samples) < 10 {
		return ChiSquareResult{}, errors.New("stats: chi-square test needs at least 10 samples")
	}
	n := float64(len(samples))
	sum := 0
	maxV := 0
	for _, s := range samples {
		if s < 0 {
			return ChiSquareResult{}, errors.New("stats: negative count sample")
		}
		sum += s
		if s > maxV {
			maxV = s
		}
	}
	lambda := float64(sum) / n
	if lambda == 0 {
		return ChiSquareResult{}, errors.New("stats: all samples are zero")
	}

	// Observed frequencies per value 0..maxV; expected from the fitted
	// Poisson, with the upper tail P(X > maxV) folded into the last bin.
	observed := make([]float64, maxV+1)
	for _, s := range samples {
		observed[s]++
	}
	expected := make([]float64, maxV+1)
	for v := 0; v <= maxV; v++ {
		expected[v] = n * PoissonPMF(lambda, v)
	}
	expected[maxV] += n * (1 - PoissonCDF(lambda, maxV))

	obsBins, expBins := mergeSparseBins(observed, expected)
	r := len(obsBins)
	if r < 3 {
		return ChiSquareResult{}, errors.New("stats: too few bins after merging; need more spread in samples")
	}
	k := 0.0
	for i := range obsBins {
		d := obsBins[i] - expBins[i]
		k += d * d / expBins[i]
	}
	df := r - 1
	crit := ChiSquareCritical(df, alpha)
	return ChiSquareResult{
		Bins:      r,
		Statistic: k,
		DF:        df,
		Critical:  crit,
		Alpha:     alpha,
		Lambda:    lambda,
		Reject:    k > crit,
	}, nil
}

// mergeSparseBins greedily merges adjacent bins until every expected count
// reaches minExpectedPerBin, sweeping from both ends toward the middle
// (tails are where Poisson mass thins out).
func mergeSparseBins(observed, expected []float64) (obs, exp []float64) {
	obs = append([]float64(nil), observed...)
	exp = append([]float64(nil), expected...)
	// Merge from the left.
	for len(exp) > 1 && exp[0] < minExpectedPerBin {
		exp[1] += exp[0]
		obs[1] += obs[0]
		exp = exp[1:]
		obs = obs[1:]
	}
	// Merge from the right.
	for len(exp) > 1 && exp[len(exp)-1] < minExpectedPerBin {
		exp[len(exp)-2] += exp[len(exp)-1]
		obs[len(obs)-2] += obs[len(obs)-1]
		exp = exp[:len(exp)-1]
		obs = obs[:len(obs)-1]
	}
	// Interior sparse bins (rare): merge into the smaller neighbour.
	for {
		idx := -1
		for i := 1; i < len(exp)-1; i++ {
			if exp[i] < minExpectedPerBin {
				idx = i
				break
			}
		}
		if idx == -1 || len(exp) <= 2 {
			break
		}
		into := idx - 1
		if exp[idx+1] < exp[idx-1] {
			into = idx + 1
		}
		exp[into] += exp[idx]
		obs[into] += obs[idx]
		exp = append(exp[:idx], exp[idx+1:]...)
		obs = append(obs[:idx], obs[idx+1:]...)
	}
	return obs, exp
}

// HistogramBin is one row of an observed-vs-expected frequency plot, the
// underlying data of Figures 11 and 12.
type HistogramBin struct {
	Lo, Hi   int // value range [Lo, Hi)
	Observed int
	Expected float64
}

// PoissonHistogram buckets integer samples into fixed-width value ranges
// and pairs each bucket with the expected count under the max-likelihood
// Poisson fit. width <= 0 defaults to 10 (the paper plots 10-wide ranges).
func PoissonHistogram(samples []int, width int) []HistogramBin {
	if len(samples) == 0 {
		return nil
	}
	if width <= 0 {
		width = 10
	}
	sum, minV, maxV := 0, samples[0], samples[0]
	for _, s := range samples {
		sum += s
		if s < minV {
			minV = s
		}
		if s > maxV {
			maxV = s
		}
	}
	lambda := float64(sum) / float64(len(samples))
	lo := (minV / width) * width
	hi := (maxV/width + 1) * width
	var bins []HistogramBin
	for b := lo; b < hi; b += width {
		obs := 0
		for _, s := range samples {
			if s >= b && s < b+width {
				obs++
			}
		}
		expP := PoissonCDF(lambda, b+width-1) - PoissonCDF(lambda, b-1)
		bins = append(bins, HistogramBin{
			Lo: b, Hi: b + width,
			Observed: obs,
			Expected: expP * float64(len(samples)),
		})
	}
	return bins
}

// Quantile returns the q-quantile (0..1) of the data using linear
// interpolation. It copies and sorts its input.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
