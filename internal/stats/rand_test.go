package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoissonZeroAndNegativeLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Poisson(rng, 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(rng, -3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
	if got := Poisson(rng, math.NaN()); got != 0 {
		t.Errorf("Poisson(NaN) = %d, want 0", got)
	}
}

func TestPoissonMeanSmallLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const lambda = 4.5
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.05 {
		t.Errorf("sample mean %.4f too far from lambda %.1f", mean, lambda)
	}
}

func TestPoissonMeanLargeLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const lambda = 250.0
	const n = 50000
	sum := 0
	sumSq := 0.0
	for i := 0; i < n; i++ {
		k := Poisson(rng, lambda)
		sum += k
		sumSq += float64(k) * float64(k)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda)/lambda > 0.01 {
		t.Errorf("PTRS sample mean %.2f too far from lambda %.1f", mean, lambda)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-lambda)/lambda > 0.05 {
		t.Errorf("PTRS sample variance %.2f too far from lambda %.1f", variance, lambda)
	}
}

func TestPoissonNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(lam float64) bool {
		lam = math.Mod(math.Abs(lam), 500)
		return Poisson(rng, lam) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rate = 2.5
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(rng, rate)
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("exponential mean %.4f, want %.4f", mean, want)
	}
}

func TestExponentialZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if got := Exponential(rng, 0); !math.IsInf(got, 1) {
		t.Errorf("Exponential(rate=0) = %v, want +Inf", got)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.15 {
		t.Errorf("weight ratio %.3f, want ~3", ratio)
	}
}

func TestCategoricalAllZeroWeightsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	weights := []float64{0, 0, 0, 0}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[Categorical(rng, weights)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("category %d drawn %d times; want near-uniform 10000", i, c)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10000; i++ {
		x := TruncNormal(rng, 10, 5, 8, 12)
		if x < 8 || x > 12 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestTruncNormalSwappedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := TruncNormal(rng, 0, 1, 5, -5)
	if x < -5 || x > 5 {
		t.Errorf("swapped bounds not handled: %v", x)
	}
}

func TestTruncNormalDegenerateClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// Mean far outside a narrow band: rejection will fail, must clamp.
	x := TruncNormal(rng, 1000, 0.001, 0, 1)
	if x != 1 {
		t.Errorf("degenerate TruncNormal = %v, want clamp to 1", x)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		sum := 0.0
		for k := 0; k < int(lambda)+200; k++ {
			sum += PoissonPMF(lambda, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("PMF(lambda=%v) sums to %v", lambda, sum)
		}
	}
}

func TestPoissonPMFEdgeCases(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("PMF(0,0) = %v, want 1", got)
	}
	if got := PoissonPMF(0, 3); got != 0 {
		t.Errorf("PMF(0,3) = %v, want 0", got)
	}
	if got := PoissonPMF(5, -1); got != 0 {
		t.Errorf("PMF(5,-1) = %v, want 0", got)
	}
}

func TestPoissonCDFMonotone(t *testing.T) {
	prev := -1.0
	for k := -1; k < 60; k++ {
		c := PoissonCDF(12, k)
		if c < prev {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, c, prev)
		}
		prev = c
	}
	if prev < 0.999999 {
		t.Errorf("CDF(12, 59) = %v, want ~1", prev)
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		if x := LogNormal(rng, 0, 1); x <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", x)
		}
	}
}
