package predict

import (
	"errors"
	"fmt"

	"mrvd/internal/workload"
)

// Lag-stack sizes shared by the models. Closeness follows the paper's
// baselines ("the previous 15 time slots"); period and trend follow
// DeepST's three time scales.
const (
	NumCloseness = 15 // consecutive previous slots
	NumPeriod    = 3  // same slot, previous days
	NumTrend     = 3  // same slot, previous weeks
)

// MinLookbackDays is how many full days of history a model needs before
// it can form every feature.
const MinLookbackDays = NumTrend * 7

// History holds per-day, per-slot, per-region order counts plus day
// metadata. Counts[day][slot][region] may be ragged in days only; every
// day must have SlotsPerDay slots of NumRegions regions.
type History struct {
	Counts      [][][]int
	Meta        []workload.DayMeta
	SlotsPerDay int
	NumRegions  int
}

// Validate checks structural consistency.
func (h *History) Validate() error {
	if h.SlotsPerDay <= 0 || h.NumRegions <= 0 {
		return errors.New("predict: non-positive dimensions")
	}
	if len(h.Counts) != len(h.Meta) {
		return fmt.Errorf("predict: %d count-days but %d meta-days", len(h.Counts), len(h.Meta))
	}
	for d, day := range h.Counts {
		if len(day) != h.SlotsPerDay {
			return fmt.Errorf("predict: day %d has %d slots, want %d", d, len(day), h.SlotsPerDay)
		}
		for s, slot := range day {
			if len(slot) != h.NumRegions {
				return fmt.Errorf("predict: day %d slot %d has %d regions, want %d",
					d, s, len(slot), h.NumRegions)
			}
		}
	}
	return nil
}

// Days returns the number of recorded days.
func (h *History) Days() int { return len(h.Counts) }

// At returns the count at an absolute (day, slot, region), or 0 when the
// index walks off the front of the history.
func (h *History) At(day, slot, region int) float64 {
	// Normalize slot underflow across day boundaries.
	for slot < 0 {
		day--
		slot += h.SlotsPerDay
	}
	if day < 0 || day >= len(h.Counts) || slot >= h.SlotsPerDay {
		return 0
	}
	return float64(h.Counts[day][slot][region])
}

// Closeness fills dst with the n counts immediately preceding (day, slot)
// for a region, most recent first, crossing day boundaries backwards.
func (h *History) Closeness(dst []float64, day, slot, region, n int) []float64 {
	dst = dst[:0]
	for i := 1; i <= n; i++ {
		dst = append(dst, h.At(day, slot-i, region))
	}
	return dst
}

// Period fills dst with the same slot's counts on the n previous days.
func (h *History) Period(dst []float64, day, slot, region, n int) []float64 {
	dst = dst[:0]
	for i := 1; i <= n; i++ {
		dst = append(dst, h.At(day-i, slot, region))
	}
	return dst
}

// Trend fills dst with the same slot's counts in the n previous weeks.
func (h *History) Trend(dst []float64, day, slot, region, n int) []float64 {
	dst = dst[:0]
	for i := 1; i <= n; i++ {
		dst = append(dst, h.At(day-7*i, slot, region))
	}
	return dst
}

// HasLookback reports whether (day, slot) has the full lag window.
func (h *History) HasLookback(day int) bool { return day >= MinLookbackDays }

// AppendDay grows the history by one day of counts and metadata; the
// simulator uses it to roll realized counts into the lag window.
func (h *History) AppendDay(counts [][]int, meta workload.DayMeta) {
	h.Counts = append(h.Counts, counts)
	h.Meta = append(h.Meta, meta)
}

// GenerateHistory samples a count history of the given number of days
// from a synthetic city at the given slot width. Days are indexed from 0.
func GenerateHistory(city *workload.City, days int, slotSeconds float64, seed int64) *History {
	h := &History{
		SlotsPerDay: int(workload.DaySeconds / slotSeconds),
		NumRegions:  city.Grid().NumRegions(),
	}
	rng := newSeededRand(seed)
	for d := 0; d < days; d++ {
		h.AppendDay(city.GenerateDayCounts(d, slotSeconds, rng), city.DayMeta(d))
	}
	return h
}

// Predictor forecasts the order count of one (day, slot, region) cell
// using only information strictly before that slot.
type Predictor interface {
	// Name identifies the model in experiment tables.
	Name() string
	// Train fits the model on history days [0, trainDays).
	Train(h *History, trainDays int) error
	// Predict forecasts Counts[day][slot][region]. It must only read
	// cells strictly earlier than (day, slot).
	Predict(h *History, day, slot, region int) float64
}
