package predict

import (
	"testing"

	"mrvd/internal/geo"
)

func TestSTNetGCTrainsAndPredicts(t *testing.T) {
	h := testHistory(t)
	grid := geo.NewGrid(geo.NYCBBox, 4, 4)
	m := NewSTNetGCFromGrid(grid)
	if err := m.Train(h, h.Days()-7); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(m, h, h.Days()-7, h.Days())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("STNet-GC RMSE = %.2f%%", res.RelativeRMSE)
	if res.RelativeRMSE <= 0 || res.RelativeRMSE > 100 {
		t.Errorf("implausible RMSE %v", res.RelativeRMSE)
	}
	// The GC variant must at least beat the naive HA baseline.
	ha, err := Evaluate(HA{}, h, h.Days()-7, h.Days())
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeRMSE >= ha.RelativeRMSE {
		t.Errorf("STNet-GC (%.2f%%) should beat HA (%.2f%%)", res.RelativeRMSE, ha.RelativeRMSE)
	}
}

func TestSTNetGCComparableToSTNet(t *testing.T) {
	// On a regular grid the GC variant should be in the same accuracy
	// band as plain STNet (the appendix positions it as the fallback for
	// irregular zones, not an upgrade).
	h := testHistory(t)
	grid := geo.NewGrid(geo.NYCBBox, 4, 4)
	gc := NewSTNetGCFromGrid(grid)
	st := &STNet{}
	if err := gc.Train(h, h.Days()-7); err != nil {
		t.Fatal(err)
	}
	if err := st.Train(h, h.Days()-7); err != nil {
		t.Fatal(err)
	}
	rgc, _ := Evaluate(gc, h, h.Days()-7, h.Days())
	rst, _ := Evaluate(st, h, h.Days()-7, h.Days())
	t.Logf("STNet=%.2f%% STNet-GC=%.2f%%", rst.RelativeRMSE, rgc.RelativeRMSE)
	if rgc.RelativeRMSE > 1.5*rst.RelativeRMSE {
		t.Errorf("STNet-GC (%.2f%%) far worse than STNet (%.2f%%)",
			rgc.RelativeRMSE, rst.RelativeRMSE)
	}
}

func TestSTNetGCRequiresMatchingAdjacency(t *testing.T) {
	h := testHistory(t)
	if err := (&STNetGC{}).Train(h, h.Days()); err == nil {
		t.Error("empty adjacency accepted")
	}
	bad := NewSTNetGC(make([][]int32, 3)) // wrong region count
	if err := bad.Train(h, h.Days()); err == nil {
		t.Error("mismatched adjacency accepted")
	}
}

func TestSTNetGCUntrainedPredictsZero(t *testing.T) {
	h := testHistory(t)
	m := NewSTNetGCFromGrid(geo.NewGrid(geo.NYCBBox, 4, 4))
	if got := m.Predict(h, h.Days()-1, 3, 2); got != 0 {
		t.Errorf("untrained prediction = %v", got)
	}
}

func TestSTNetGCAdjacencyCopied(t *testing.T) {
	adj := [][]int32{{1}, {0}}
	m := NewSTNetGC(adj)
	adj[0][0] = 99 // mutate the caller's slice
	if m.adj[0][0] != 1 {
		t.Error("adjacency not defensively copied")
	}
}

func TestSTNetGCOverIrregularZones(t *testing.T) {
	// The DeepST-GC use case: an irregular Voronoi partition supplies
	// the adjacency instead of a grid. The history's 16 regions pair
	// with a 16-zone partition.
	h := testHistory(t)
	zones := geo.NewRandomZones(geo.NYCBBox, h.NumRegions, 9)
	m := NewSTNetGC(zones.Adjacency())
	if err := m.Train(h, h.Days()-7); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(m, h, h.Days()-7, h.Days())
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeRMSE <= 0 || res.RelativeRMSE > 100 {
		t.Errorf("zone-adjacency STNet-GC RMSE = %v%%", res.RelativeRMSE)
	}
}
