package predict

import (
	"errors"
	"math"
	"sort"
)

// GBRT is stochastic gradient-boosted regression trees (Friedman 2002)
// built from scratch: squared-error boosting over depth-limited CART
// trees with quantile-candidate splits and per-tree row subsampling.
// Features are the previous NumCloseness slot counts plus day-of-week,
// slot-of-day and weather.
type GBRT struct {
	// Trees is the boosting round count. Default 60.
	Trees int
	// Depth limits each tree. Default 3.
	Depth int
	// LearningRate shrinks each tree's contribution. Default 0.1.
	LearningRate float64
	// Subsample is the per-tree row sampling fraction. Default 0.5.
	Subsample float64
	// MaxRows caps the materialized training set; larger training data
	// is uniformly subsampled. Default 60000.
	MaxRows int
	// MinLeaf is the minimum samples per leaf. Default 20.
	MinLeaf int
	// Seed drives subsampling.
	Seed int64

	base  float64
	trees []gbrtTree
}

const gbrtNumFeatures = NumCloseness + 3 // lags + dow + slot + weather

func (m *GBRT) withDefaults() {
	if m.Trees <= 0 {
		m.Trees = 60
	}
	if m.Depth <= 0 {
		m.Depth = 3
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.1
	}
	if m.Subsample <= 0 || m.Subsample > 1 {
		m.Subsample = 0.5
	}
	if m.MaxRows <= 0 {
		m.MaxRows = 60000
	}
	if m.MinLeaf <= 0 {
		m.MinLeaf = 20
	}
}

// Name implements Predictor.
func (m *GBRT) Name() string { return "GBRT" }

func gbrtFeatures(dst []float64, h *History, day, slot, region int) []float64 {
	dst = dst[:0]
	for i := 1; i <= NumCloseness; i++ {
		dst = append(dst, h.At(day, slot-i, region))
	}
	var dow, weather float64
	if day >= 0 && day < len(h.Meta) {
		dow = float64(h.Meta[day].DOW)
		weather = float64(h.Meta[day].Weather)
	}
	dst = append(dst, dow, float64(slot), weather)
	return dst
}

// Train implements Predictor.
func (m *GBRT) Train(h *History, trainDays int) error {
	m.withDefaults()
	rng := newSeededRand(m.Seed)

	// Materialize (and possibly subsample) the training table.
	total := 0
	for day := MinLookbackDays; day < trainDays && day < h.Days(); day++ {
		total += h.SlotsPerDay * h.NumRegions
	}
	if total == 0 {
		return errors.New("predict: GBRT has no training rows; need more history days")
	}
	keep := 1.0
	if total > m.MaxRows {
		keep = float64(m.MaxRows) / float64(total)
	}
	var X [][]float64
	var y []float64
	for day := MinLookbackDays; day < trainDays && day < h.Days(); day++ {
		for slot := 0; slot < h.SlotsPerDay; slot++ {
			for region := 0; region < h.NumRegions; region++ {
				if keep < 1 && rng.Float64() > keep {
					continue
				}
				X = append(X, gbrtFeatures(nil, h, day, slot, region))
				y = append(y, h.At(day, slot, region))
			}
		}
	}
	if len(X) < 2*m.MinLeaf {
		return errors.New("predict: GBRT training set too small")
	}

	// Base score: mean target.
	sum := 0.0
	for _, v := range y {
		sum += v
	}
	m.base = sum / float64(len(y))

	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.base
	}
	resid := make([]float64, len(y))
	m.trees = m.trees[:0]
	for round := 0; round < m.Trees; round++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		// Stochastic row subsample.
		rows := make([]int, 0, int(float64(len(X))*m.Subsample)+1)
		for i := range X {
			if rng.Float64() < m.Subsample {
				rows = append(rows, i)
			}
		}
		if len(rows) < 2*m.MinLeaf {
			continue
		}
		t := buildTree(X, resid, rows, m.Depth, m.MinLeaf)
		m.trees = append(m.trees, t)
		for i := range X {
			pred[i] += m.LearningRate * t.eval(X[i])
		}
	}
	return nil
}

// Predict implements Predictor. An untrained model predicts 0.
func (m *GBRT) Predict(h *History, day, slot, region int) float64 {
	if len(m.trees) == 0 && m.base == 0 {
		return 0
	}
	f := gbrtFeatures(make([]float64, 0, gbrtNumFeatures), h, day, slot, region)
	v := m.base
	for _, t := range m.trees {
		v += m.LearningRate * t.eval(f)
	}
	if v < 0 {
		return 0
	}
	return v
}

// gbrtNode is one node of a regression tree; leaves carry value.
type gbrtNode struct {
	feature   int
	threshold float64
	left      int32
	right     int32
	value     float64
	leaf      bool
}

type gbrtTree struct{ nodes []gbrtNode }

func (t gbrtTree) eval(f []float64) float64 {
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.leaf {
			return n.value
		}
		if f[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// buildTree grows a depth-limited CART regression tree on the residuals
// of the given rows.
func buildTree(X [][]float64, y []float64, rows []int, depth, minLeaf int) gbrtTree {
	var t gbrtTree
	t.grow(X, y, rows, depth, minLeaf)
	return t
}

func (t *gbrtTree) grow(X [][]float64, y []float64, rows []int, depth, minLeaf int) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, gbrtNode{})

	mean := 0.0
	for _, r := range rows {
		mean += y[r]
	}
	mean /= float64(len(rows))

	if depth == 0 || len(rows) < 2*minLeaf {
		t.nodes[id] = gbrtNode{leaf: true, value: mean}
		return id
	}
	feat, thr, ok := bestSplit(X, y, rows, minLeaf)
	if !ok {
		t.nodes[id] = gbrtNode{leaf: true, value: mean}
		return id
	}
	var left, right []int
	for _, r := range rows {
		if X[r][feat] <= thr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	l := t.grow(X, y, left, depth-1, minLeaf)
	r := t.grow(X, y, right, depth-1, minLeaf)
	t.nodes[id] = gbrtNode{feature: feat, threshold: thr, left: l, right: r}
	return id
}

// bestSplit scans quantile-candidate thresholds on every feature and
// returns the split minimizing the summed squared error of the two
// children (equivalently, maximizing variance reduction). For each
// feature it makes a single pass over the node's rows, accumulating sums
// into candidate buckets, then evaluates every threshold from the bucket
// prefix sums — O(rows * (log candidates)) per feature instead of
// O(rows * candidates).
func bestSplit(X [][]float64, y []float64, rows []int, minLeaf int) (feature int, threshold float64, ok bool) {
	const numCandidates = 24
	nf := len(X[rows[0]])
	bestGain := 0.0

	totSum, totCnt := 0.0, float64(len(rows))
	for _, r := range rows {
		totSum += y[r]
	}

	vals := make([]float64, 0, len(rows))
	thresholds := make([]float64, 0, numCandidates)
	bucketSum := make([]float64, numCandidates+1)
	bucketCnt := make([]float64, numCandidates+1)
	for f := 0; f < nf; f++ {
		vals = vals[:0]
		for _, r := range rows {
			vals = append(vals, X[r][f])
		}
		sort.Float64s(vals)
		if vals[0] == vals[len(vals)-1] {
			continue // constant feature in this node
		}
		// Deduplicated quantile thresholds; exclude the max value so the
		// right child is never empty.
		thresholds = thresholds[:0]
		prev := math.Inf(-1)
		for c := 1; c <= numCandidates; c++ {
			thr := vals[c*(len(vals)-1)/(numCandidates+1)]
			if thr != prev && thr != vals[len(vals)-1] {
				thresholds = append(thresholds, thr)
				prev = thr
			}
		}
		if len(thresholds) == 0 {
			continue
		}
		// Bucket b holds rows with thresholds[b-1] < x <= thresholds[b];
		// bucket len(thresholds) holds the tail above the last threshold.
		for b := 0; b <= len(thresholds); b++ {
			bucketSum[b] = 0
			bucketCnt[b] = 0
		}
		for _, r := range rows {
			x := X[r][f]
			b := sort.SearchFloat64s(thresholds, x) // first threshold >= x
			bucketSum[b] += y[r]
			bucketCnt[b]++
		}
		lSum, lCnt := 0.0, 0.0
		for b, thr := range thresholds {
			lSum += bucketSum[b]
			lCnt += bucketCnt[b]
			rCnt := totCnt - lCnt
			if lCnt < float64(minLeaf) || rCnt < float64(minLeaf) {
				continue
			}
			rSum := totSum - lSum
			// Variance-reduction gain (constant terms dropped).
			gain := lSum*lSum/lCnt + rSum*rSum/rCnt - totSum*totSum/totCnt
			if gain > bestGain+1e-12 {
				bestGain = gain
				feature = f
				threshold = thr
				ok = true
			}
		}
	}
	return feature, threshold, ok
}
