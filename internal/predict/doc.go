// Package predict implements the offline demand-supply prediction stage
// of the framework (Section 3.1.1 and Appendix A): given a history of
// per-region, per-slot order counts, predict the count of the next slot.
//
// Four models are provided, mirroring the paper's comparison:
//
//   - HA: historical average of the previous 15 slots.
//   - LR: ridge-regularized linear regression on the previous 15 slots.
//   - GBRT: stochastic gradient-boosted regression trees (Friedman 2002)
//     on the previous 15 slots plus calendar features, from scratch.
//   - STNet: the DeepST substitute — a linear spatio-temporal model using
//     DeepST's exact feature design (closeness/period/trend lag stacks,
//     day-of-week, time-of-day and weather metadata) with per-region
//     bias correction. No CNN, but it consumes the same extra signal
//     DeepST adds over LR/GBRT, which preserves the paper's accuracy
//     ordering HA < LR < GBRT < DeepST on workloads with calendar
//     structure.
//
// All models implement Predictor and read lag features from a shared
// History, so online use during simulation (where the current day's
// realized counts fill in as slots complete) needs no special casing.
//
// # Typical use
//
// All(seed) returns fresh instances of every model. A Predictor is
// Train'ed on a History (at least MinLookbackDays days, typically
// built by GenerateHistory or core.Runner) and then queried per (day,
// slot, region); Predict only reads strictly-past cells, so training
// and test data can share one History. Evaluate computes the RMSE/MAE
// accuracy comparison of the paper's Table 6. Inside the simulator,
// forecasts reach dispatchers through core's PredictModel mode, which
// aggregates per-slot predictions into the scheduling window's |^R_k|
// counts.
package predict
