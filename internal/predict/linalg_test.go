package predict

import (
	"math"
	"math/rand"
	"testing"
)

func TestRidgeSolveRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueW := []float64{2, -1, 0.5, 3}
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		row := []float64{1, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		X = append(X, row)
		y = append(y, dot(trueW, row)+0.01*rng.NormFloat64())
	}
	w, err := ridgeSolve(X, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trueW {
		if math.Abs(w[i]-trueW[i]) > 0.05 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], trueW[i])
		}
	}
}

func TestRidgeSolveShrinksWithLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64()
		X = append(X, []float64{x})
		y = append(y, 5*x)
	}
	small, _ := ridgeSolve(X, y, 0.001)
	large, _ := ridgeSolve(X, y, 10000)
	if math.Abs(large[0]) >= math.Abs(small[0]) {
		t.Errorf("ridge penalty did not shrink: %v vs %v", large[0], small[0])
	}
}

func TestRidgeSolveErrors(t *testing.T) {
	if _, err := ridgeSolve(nil, nil, 1); err == nil {
		t.Error("empty X accepted")
	}
	if _, err := ridgeSolve([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := ridgeSolve([][]float64{{1, 2}, {1}}, []float64{1, 2}, 1); err == nil {
		t.Error("ragged X accepted")
	}
}

func TestRidgeSolveSingularWithoutPenalty(t *testing.T) {
	// Perfectly collinear columns: pure least squares is singular, but
	// any positive ridge penalty regularizes it.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	if _, err := ridgeSolve(X, y, 0); err == nil {
		t.Error("singular system accepted with zero penalty")
	}
	if _, err := ridgeSolve(X, y, 0.1); err != nil {
		t.Errorf("ridge failed on collinear data: %v", err)
	}
}

func TestCholeskyKnownFactor(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	L, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {1, math.Sqrt(2)}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(L[i][j]-want[i][j]) > 1e-12 {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, L[i][j], want[i][j])
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	L, _ := cholesky(a)
	x := choleskySolve(L, []float64{10, 8})
	// Verify A x = b.
	if math.Abs(4*x[0]+2*x[1]-10) > 1e-9 || math.Abs(2*x[0]+3*x[1]-8) > 1e-9 {
		t.Errorf("solution %v does not satisfy the system", x)
	}
}
