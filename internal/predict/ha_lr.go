package predict

import "errors"

// HA is the historical-average baseline: the mean of the previous
// NumCloseness slots (Appendix A). It needs no training.
type HA struct{}

// Name implements Predictor.
func (HA) Name() string { return "HA" }

// Train implements Predictor; HA is training-free.
func (HA) Train(*History, int) error { return nil }

// Predict implements Predictor.
func (HA) Predict(h *History, day, slot, region int) float64 {
	sum := 0.0
	for i := 1; i <= NumCloseness; i++ {
		sum += h.At(day, slot-i, region)
	}
	return sum / NumCloseness
}

// LR is ridge-regularized linear regression on the previous NumCloseness
// slot counts plus an intercept, fitted globally across regions
// (Appendix A's "Linear Regression model collects the order records in
// the previous 15 time slots").
type LR struct {
	// Lambda is the ridge penalty; the default 1.0 is set by Train when
	// zero.
	Lambda float64
	w      []float64
}

// Name implements Predictor.
func (m *LR) Name() string { return "LR" }

// lrFeatures writes the LR feature vector for one cell into dst.
func lrFeatures(dst []float64, h *History, day, slot, region int) []float64 {
	dst = dst[:0]
	dst = append(dst, 1) // intercept
	for i := 1; i <= NumCloseness; i++ {
		dst = append(dst, h.At(day, slot-i, region))
	}
	return dst
}

// Train implements Predictor: one global ridge fit over every cell of
// the training days that has full lookback.
func (m *LR) Train(h *History, trainDays int) error {
	if m.Lambda <= 0 {
		m.Lambda = 1.0
	}
	var X [][]float64
	var y []float64
	for day := MinLookbackDays; day < trainDays && day < h.Days(); day++ {
		for slot := 0; slot < h.SlotsPerDay; slot++ {
			for region := 0; region < h.NumRegions; region++ {
				row := lrFeatures(nil, h, day, slot, region)
				X = append(X, row)
				y = append(y, h.At(day, slot, region))
			}
		}
	}
	if len(X) == 0 {
		return errors.New("predict: LR has no training rows; need more history days")
	}
	w, err := ridgeSolve(X, y, m.Lambda)
	if err != nil {
		return err
	}
	m.w = w
	return nil
}

// Predict implements Predictor. An untrained model predicts 0.
func (m *LR) Predict(h *History, day, slot, region int) float64 {
	if m.w == nil {
		return 0
	}
	f := lrFeatures(make([]float64, 0, NumCloseness+1), h, day, slot, region)
	v := dot(m.w, f)
	if v < 0 {
		return 0
	}
	return v
}
