package predict

import (
	"errors"
	"math"
)

// STNet is the DeepST substitute documented in DESIGN.md: it uses
// DeepST's feature design — closeness, period and trend lag stacks fused
// with day-of-week, slot-of-day and weather metadata — in a globally
// fitted ridge model, then corrects each region with its training-set
// residual mean (the role DeepST's convolutional spatial component
// plays). It has no neural network, but it consumes exactly the extra
// signal DeepST adds over the LR/GBRT baselines, preserving the paper's
// accuracy ordering.
type STNet struct {
	// Lambda is the ridge penalty. Default 1.0.
	Lambda float64

	w          []float64
	regionBias []float64
}

// Name implements Predictor. The experiment tables label this model
// "STNet(DeepST)" to flag the substitution.
func (m *STNet) Name() string { return "STNet(DeepST)" }

// stnetNumFeatures: intercept + closeness + period + trend + dow onehot
// (7) + weather onehot (3) + slot harmonics (4).
const stnetNumFeatures = 1 + NumCloseness + NumPeriod + NumTrend + 7 + 3 + 4

func stnetFeatures(dst []float64, h *History, day, slot, region int) []float64 {
	dst = dst[:0]
	dst = append(dst, 1)
	for i := 1; i <= NumCloseness; i++ {
		dst = append(dst, h.At(day, slot-i, region))
	}
	for i := 1; i <= NumPeriod; i++ {
		dst = append(dst, h.At(day-i, slot, region))
	}
	for i := 1; i <= NumTrend; i++ {
		dst = append(dst, h.At(day-7*i, slot, region))
	}
	var dow, weather int
	if day >= 0 && day < len(h.Meta) {
		dow = h.Meta[day].DOW
		weather = int(h.Meta[day].Weather)
	}
	for d := 0; d < 7; d++ {
		if d == dow {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	for w := 0; w < 3; w++ {
		if w == weather {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	// Two harmonics of the slot-of-day cycle capture the diurnal shape.
	frac := float64(slot) / float64(h.SlotsPerDay)
	dst = append(dst, sinCos(frac)...)
	dst = append(dst, sinCos(2*frac)...)
	return dst
}

func sinCos(frac float64) []float64 {
	return []float64{math.Sin(2 * math.Pi * frac), math.Cos(2 * math.Pi * frac)}
}

// Train implements Predictor: a global ridge fit, then per-region bias.
func (m *STNet) Train(h *History, trainDays int) error {
	if m.Lambda <= 0 {
		m.Lambda = 1.0
	}
	var X [][]float64
	var y []float64
	type cell struct{ day, slot, region int }
	var cells []cell
	for day := MinLookbackDays; day < trainDays && day < h.Days(); day++ {
		for slot := 0; slot < h.SlotsPerDay; slot++ {
			for region := 0; region < h.NumRegions; region++ {
				X = append(X, stnetFeatures(nil, h, day, slot, region))
				y = append(y, h.At(day, slot, region))
				cells = append(cells, cell{day, slot, region})
			}
		}
	}
	if len(X) == 0 {
		return errors.New("predict: STNet has no training rows; need more history days")
	}
	w, err := ridgeSolve(X, y, m.Lambda)
	if err != nil {
		return err
	}
	m.w = w

	// Spatial correction: per-region mean residual on the training set.
	m.regionBias = make([]float64, h.NumRegions)
	counts := make([]float64, h.NumRegions)
	for i, c := range cells {
		resid := y[i] - dot(w, X[i])
		m.regionBias[c.region] += resid
		counts[c.region]++
	}
	for r := range m.regionBias {
		if counts[r] > 0 {
			m.regionBias[r] /= counts[r]
		}
	}
	return nil
}

// Predict implements Predictor. An untrained model predicts 0.
func (m *STNet) Predict(h *History, day, slot, region int) float64 {
	if m.w == nil {
		return 0
	}
	f := stnetFeatures(make([]float64, 0, stnetNumFeatures), h, day, slot, region)
	v := dot(m.w, f)
	if region < len(m.regionBias) {
		v += m.regionBias[region]
	}
	if v < 0 {
		return 0
	}
	return v
}
