package predict

import (
	"math"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/workload"
)

// smallCity keeps predictor tests fast: a 4x4 grid city.
func smallCity() *workload.City {
	return workload.NewCity(workload.CityConfig{
		Grid:         geo.NewGrid(geo.NYCBBox, 4, 4),
		OrdersPerDay: 8000,
		Seed:         7,
	})
}

// smallHistory caches a shared history across tests.
var sharedHist *History

func testHistory(t *testing.T) *History {
	t.Helper()
	if sharedHist == nil {
		sharedHist = GenerateHistory(smallCity(), MinLookbackDays+14, 1800, 3)
	}
	return sharedHist
}

func TestHistoryValidate(t *testing.T) {
	h := testHistory(t)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &History{SlotsPerDay: 0, NumRegions: 16}
	if err := bad.Validate(); err == nil {
		t.Error("zero slots accepted")
	}
	bad2 := &History{
		SlotsPerDay: 2, NumRegions: 1,
		Counts: [][][]int{{{1}, {2}}},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("meta/count mismatch accepted")
	}
}

func TestHistoryAtBoundaries(t *testing.T) {
	h := testHistory(t)
	if got := h.At(-1, 0, 0); got != 0 {
		t.Errorf("At(day=-1) = %v, want 0", got)
	}
	if got := h.At(0, -3, 0); got != 0 {
		t.Errorf("At underflowing to day -1 = %v, want 0", got)
	}
	// Slot underflow wraps to the previous day.
	want := float64(h.Counts[2][h.SlotsPerDay-1][5])
	if got := h.At(3, -1, 5); got != want {
		t.Errorf("At(3,-1) = %v, want %v (last slot of day 2)", got, want)
	}
}

func TestHistoryLagStacks(t *testing.T) {
	h := testHistory(t)
	day, slot, region := 25, 10, 3
	cl := h.Closeness(nil, day, slot, region, 4)
	if len(cl) != 4 {
		t.Fatalf("closeness length %d", len(cl))
	}
	if cl[0] != h.At(day, slot-1, region) || cl[3] != h.At(day, slot-4, region) {
		t.Error("closeness order wrong")
	}
	pd := h.Period(nil, day, slot, region, 2)
	if pd[0] != h.At(day-1, slot, region) || pd[1] != h.At(day-2, slot, region) {
		t.Error("period lags wrong")
	}
	tr := h.Trend(nil, day, slot, region, 2)
	if tr[0] != h.At(day-7, slot, region) || tr[1] != h.At(day-14, slot, region) {
		t.Error("trend lags wrong")
	}
}

func TestHAPredictsMeanOfLags(t *testing.T) {
	h := testHistory(t)
	ha := HA{}
	day, slot, region := 23, 20, 7
	got := ha.Predict(h, day, slot, region)
	sum := 0.0
	for i := 1; i <= NumCloseness; i++ {
		sum += h.At(day, slot-i, region)
	}
	if math.Abs(got-sum/NumCloseness) > 1e-12 {
		t.Errorf("HA = %v, want %v", got, sum/NumCloseness)
	}
}

func TestLRTrainsAndBeatsUntrained(t *testing.T) {
	h := testHistory(t)
	lr := &LR{}
	if got := lr.Predict(h, 25, 5, 0); got != 0 {
		t.Errorf("untrained LR predicts %v, want 0", got)
	}
	if err := lr.Train(h, h.Days()-7); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(lr, h, h.Days()-7, h.Days())
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeRMSE <= 0 || res.RelativeRMSE > 100 {
		t.Errorf("LR relative RMSE = %v%%", res.RelativeRMSE)
	}
}

func TestLRTrainErrorsWithoutHistory(t *testing.T) {
	h := &History{SlotsPerDay: 4, NumRegions: 2}
	if err := (&LR{}).Train(h, 0); err == nil {
		t.Error("LR trained on empty history")
	}
}

func TestGBRTTrainsAndPredictsNonNegative(t *testing.T) {
	h := testHistory(t)
	g := &GBRT{Trees: 20, MaxRows: 20000, Seed: 5}
	if err := g.Train(h, h.Days()-7); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < h.SlotsPerDay; slot += 7 {
		for region := 0; region < h.NumRegions; region += 3 {
			if v := g.Predict(h, h.Days()-1, slot, region); v < 0 {
				t.Fatalf("negative prediction %v", v)
			}
		}
	}
}

func TestGBRTErrorsWithoutHistory(t *testing.T) {
	h := &History{SlotsPerDay: 4, NumRegions: 2}
	if err := (&GBRT{}).Train(h, 0); err == nil {
		t.Error("GBRT trained on empty history")
	}
}

func TestSTNetTrains(t *testing.T) {
	h := testHistory(t)
	s := &STNet{}
	if err := s.Train(h, h.Days()-7); err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(s, h, h.Days()-7, h.Days())
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeRMSE <= 0 || math.IsNaN(res.RelativeRMSE) {
		t.Errorf("STNet RMSE = %v", res.RelativeRMSE)
	}
}

func TestAccuracyOrderingMatchesPaper(t *testing.T) {
	// Table 6's ordering: DeepST(STNet) < GBRT < LR < HA in RMSE. GBRT
	// vs LR can be close on a linear-ish workload, so assert the robust
	// parts: STNet best, HA worst.
	h := testHistory(t)
	trainDays := h.Days() - 7
	results := map[string]float64{}
	for _, m := range All(11) {
		if err := m.Train(h, trainDays); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		res, err := Evaluate(m, h, trainDays, h.Days())
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		results[m.Name()] = res.RelativeRMSE
		t.Logf("%s: %.2f%%", m.Name(), res.RelativeRMSE)
	}
	if results["STNet(DeepST)"] >= results["HA"] {
		t.Errorf("STNet (%.2f%%) should beat HA (%.2f%%)",
			results["STNet(DeepST)"], results["HA"])
	}
	if results["STNet(DeepST)"] >= results["LR"] {
		t.Errorf("STNet (%.2f%%) should beat LR (%.2f%%)",
			results["STNet(DeepST)"], results["LR"])
	}
	if results["LR"] >= results["HA"] {
		t.Errorf("LR (%.2f%%) should beat HA (%.2f%%)", results["LR"], results["HA"])
	}
}

func TestEvaluateErrors(t *testing.T) {
	h := testHistory(t)
	if _, err := Evaluate(HA{}, h, 0, 5); err == nil {
		t.Error("evaluation without lookback accepted")
	}
	if _, err := Evaluate(HA{}, h, h.Days()+5, h.Days()+9); err == nil {
		t.Error("empty window accepted")
	}
}

func TestGenerateHistoryShape(t *testing.T) {
	h := GenerateHistory(smallCity(), 3, 3600, 1)
	if h.Days() != 3 || h.SlotsPerDay != 24 || h.NumRegions != 16 {
		t.Fatalf("history shape %d days %d slots %d regions",
			h.Days(), h.SlotsPerDay, h.NumRegions)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorsOnlyUsePastData(t *testing.T) {
	// Mutating future cells must not change predictions for earlier slots.
	h := testHistory(t)
	day, slot, region := h.Days()-2, 10, 4
	models := All(13)
	for _, m := range models {
		if err := m.Train(h, day); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
	before := make([]float64, len(models))
	for i, m := range models {
		before[i] = m.Predict(h, day, slot, region)
	}
	// Corrupt strictly-future data.
	saved := h.Counts[day][slot][region]
	h.Counts[day][slot][region] = saved + 1000
	h.Counts[h.Days()-1][0][region] += 999
	for i, m := range models {
		if got := m.Predict(h, day, slot, region); got != before[i] {
			t.Errorf("%s peeked at future data: %v -> %v", m.Name(), before[i], got)
		}
	}
	h.Counts[day][slot][region] = saved
	h.Counts[h.Days()-1][0][region] -= 999
}
