package predict

import (
	"errors"

	"mrvd/internal/geo"
)

// STNetGC is the DeepST-GC variant of Appendix A: when the space is not
// a regular grid (e.g. NYC's 262 irregular taxi zones), DeepST's
// convolution is replaced with a graph convolution over the region
// adjacency graph. This substitute mirrors that design on STNet: every
// lag stack is augmented with its one-hop graph-convolved counterpart
// x' = Â x, where Â is the row-normalized adjacency-plus-self-loops
// matrix the appendix defines, and the fused features go through the
// same ridge fit and per-region bias correction as STNet.
type STNetGC struct {
	// Lambda is the ridge penalty. Default 1.0.
	Lambda float64

	adj        [][]int32 // neighbor lists including implicit self-loop
	w          []float64
	regionBias []float64
}

// NewSTNetGC builds the model over an explicit region adjacency: adj[r]
// lists the regions adjacent to r (self excluded; the self-loop is
// implicit).
func NewSTNetGC(adj [][]int32) *STNetGC {
	cp := make([][]int32, len(adj))
	for i, ns := range adj {
		cp[i] = append([]int32(nil), ns...)
	}
	return &STNetGC{adj: cp}
}

// NewSTNetGCFromGrid derives the adjacency from a grid's 4-neighborhood.
func NewSTNetGCFromGrid(grid *geo.Grid) *STNetGC {
	adj := make([][]int32, grid.NumRegions())
	for r := 0; r < grid.NumRegions(); r++ {
		for _, nb := range grid.Neighbors(geo.RegionID(r)) {
			adj[r] = append(adj[r], int32(nb))
		}
	}
	return NewSTNetGC(adj)
}

// Name implements Predictor.
func (m *STNetGC) Name() string { return "STNet-GC(DeepST-GC)" }

// gcAt returns the graph-convolved count at (day, slot) for a region:
// the row-normalized mean of the region and its neighbors.
func (m *STNetGC) gcAt(h *History, day, slot, region int) float64 {
	sum := h.At(day, slot, region)
	n := 1.0
	if region < len(m.adj) {
		for _, nb := range m.adj[region] {
			sum += h.At(day, slot, int(nb))
			n++
		}
	}
	return sum / n
}

// stnetgcNumFeatures: the STNet features plus graph-convolved closeness,
// period and trend stacks.
const stnetgcNumFeatures = stnetNumFeatures + NumCloseness + NumPeriod + NumTrend

func (m *STNetGC) features(dst []float64, h *History, day, slot, region int) []float64 {
	dst = stnetFeatures(dst, h, day, slot, region)
	for i := 1; i <= NumCloseness; i++ {
		dst = append(dst, m.gcAt(h, day, slot-i, region))
	}
	for i := 1; i <= NumPeriod; i++ {
		dst = append(dst, m.gcAt(h, day-i, slot, region))
	}
	for i := 1; i <= NumTrend; i++ {
		dst = append(dst, m.gcAt(h, day-7*i, slot, region))
	}
	return dst
}

// Train implements Predictor.
func (m *STNetGC) Train(h *History, trainDays int) error {
	if len(m.adj) == 0 {
		return errors.New("predict: STNetGC needs an adjacency; use NewSTNetGC")
	}
	if len(m.adj) != h.NumRegions {
		return errors.New("predict: STNetGC adjacency does not match history regions")
	}
	if m.Lambda <= 0 {
		m.Lambda = 1.0
	}
	var X [][]float64
	var y []float64
	var regions []int
	for day := MinLookbackDays; day < trainDays && day < h.Days(); day++ {
		for slot := 0; slot < h.SlotsPerDay; slot++ {
			for region := 0; region < h.NumRegions; region++ {
				X = append(X, m.features(nil, h, day, slot, region))
				y = append(y, h.At(day, slot, region))
				regions = append(regions, region)
			}
		}
	}
	if len(X) == 0 {
		return errors.New("predict: STNetGC has no training rows; need more history days")
	}
	w, err := ridgeSolve(X, y, m.Lambda)
	if err != nil {
		return err
	}
	m.w = w
	m.regionBias = make([]float64, h.NumRegions)
	counts := make([]float64, h.NumRegions)
	for i := range X {
		resid := y[i] - dot(w, X[i])
		m.regionBias[regions[i]] += resid
		counts[regions[i]]++
	}
	for r := range m.regionBias {
		if counts[r] > 0 {
			m.regionBias[r] /= counts[r]
		}
	}
	return nil
}

// Predict implements Predictor. An untrained model predicts 0.
func (m *STNetGC) Predict(h *History, day, slot, region int) float64 {
	if m.w == nil {
		return 0
	}
	f := m.features(make([]float64, 0, stnetgcNumFeatures), h, day, slot, region)
	v := dot(m.w, f)
	if region < len(m.regionBias) {
		v += m.regionBias[region]
	}
	if v < 0 {
		return 0
	}
	return v
}
