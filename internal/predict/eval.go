package predict

import (
	"errors"
	"fmt"

	"mrvd/internal/stats"
)

// EvalResult is one row of Table 6: a model's accuracy on the held-out
// evaluation days.
type EvalResult struct {
	Model        string
	RelativeRMSE float64 // percent, the paper's "RMSE (%)"
	RealRMSE     float64 // absolute counts, the paper's "Real RMSE"
	MAE          float64
	Cells        int // evaluated (day, slot, region) cells
}

func (r EvalResult) String() string {
	return fmt.Sprintf("%-14s RMSE=%5.2f%%  RealRMSE=%6.2f  MAE=%6.2f  (%d cells)",
		r.Model, r.RelativeRMSE, r.RealRMSE, r.MAE, r.Cells)
}

// Evaluate scores a trained predictor on history days [fromDay, toDay),
// comparing cell-by-cell predictions against realized counts.
func Evaluate(m Predictor, h *History, fromDay, toDay int) (EvalResult, error) {
	if fromDay < MinLookbackDays {
		return EvalResult{}, fmt.Errorf("predict: evaluation from day %d lacks lookback (need >= %d)",
			fromDay, MinLookbackDays)
	}
	if toDay > h.Days() {
		toDay = h.Days()
	}
	var pred, truth []float64
	for day := fromDay; day < toDay; day++ {
		for slot := 0; slot < h.SlotsPerDay; slot++ {
			for region := 0; region < h.NumRegions; region++ {
				pred = append(pred, m.Predict(h, day, slot, region))
				truth = append(truth, h.At(day, slot, region))
			}
		}
	}
	if len(pred) == 0 {
		return EvalResult{}, errors.New("predict: empty evaluation window")
	}
	rel, err := stats.RelativeRMSE(pred, truth)
	if err != nil {
		return EvalResult{}, err
	}
	rmse, err := stats.RMSE(pred, truth)
	if err != nil {
		return EvalResult{}, err
	}
	mae, err := stats.MAE(pred, truth)
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{
		Model:        m.Name(),
		RelativeRMSE: rel,
		RealRMSE:     rmse,
		MAE:          mae,
		Cells:        len(pred),
	}, nil
}

// All returns freshly constructed instances of every predictor in the
// paper's comparison, in Table 6's reporting order.
func All(seed int64) []Predictor {
	return []Predictor{
		&STNet{},
		HA{},
		&LR{},
		&GBRT{Seed: seed},
	}
}
