package predict

import (
	"errors"
	"math"
	"math/rand"
)

// newSeededRand centralizes RNG construction for this package.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ridgeSolve fits w minimizing ||Xw - y||^2 + lambda*||w||^2 via the
// normal equations (X'X + lambda I) w = X'y solved by Cholesky
// factorization. Rows of X are observations. The intercept, if wanted,
// must be an explicit all-ones column (and is regularized like any other
// coordinate; lambda is small enough for that not to matter).
func ridgeSolve(X [][]float64, y []float64, lambda float64) ([]float64, error) {
	if len(X) == 0 {
		return nil, errors.New("predict: empty design matrix")
	}
	if len(X) != len(y) {
		return nil, errors.New("predict: X/y row mismatch")
	}
	p := len(X[0])
	// Gram matrix and right-hand side.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	for r, row := range X {
		if len(row) != p {
			return nil, errors.New("predict: ragged design matrix")
		}
		for i := 0; i < p; i++ {
			xi := row[i]
			if xi == 0 {
				continue
			}
			b[i] += xi * y[r]
			for j := i; j < p; j++ {
				a[i][j] += xi * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		a[i][i] += lambda
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	L, err := cholesky(a)
	if err != nil {
		return nil, err
	}
	return choleskySolve(L, b), nil
}

// cholesky returns the lower-triangular factor of a symmetric positive
// definite matrix.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= L[i][k] * L[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errors.New("predict: matrix not positive definite")
				}
				L[i][i] = math.Sqrt(sum)
			} else {
				L[i][j] = sum / L[j][j]
			}
		}
	}
	return L, nil
}

// choleskySolve solves L L' x = b by forward then backward substitution.
func choleskySolve(L [][]float64, b []float64) []float64 {
	n := len(L)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= L[i][k] * y[k]
		}
		y[i] = sum / L[i][i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= L[k][i] * x[k]
		}
		x[i] = sum / L[i][i]
	}
	return x
}

// dot returns the inner product of equal-length vectors.
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
