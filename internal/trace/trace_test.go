package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mrvd/internal/geo"
)

func sampleOrders(n int, seed int64) []Order {
	rng := rand.New(rand.NewSource(seed))
	orders := make([]Order, n)
	for i := range orders {
		post := rng.Float64() * 86400
		orders[i] = Order{
			ID:       OrderID(i),
			PostTime: post,
			Pickup: geo.Point{
				Lng: geo.NYCBBox.MinLng + rng.Float64()*0.26,
				Lat: geo.NYCBBox.MinLat + rng.Float64()*0.34,
			},
			Dropoff: geo.Point{
				Lng: geo.NYCBBox.MinLng + rng.Float64()*0.26,
				Lat: geo.NYCBBox.MinLat + rng.Float64()*0.34,
			},
			Deadline: post + 60 + rng.Float64()*240,
		}
	}
	return orders
}

func TestOrderValid(t *testing.T) {
	good := Order{ID: 1, PostTime: 10, Deadline: 70}
	if err := good.Valid(); err != nil {
		t.Errorf("valid order rejected: %v", err)
	}
	if err := (Order{PostTime: -1, Deadline: 5}).Valid(); err == nil {
		t.Error("negative post time accepted")
	}
	if err := (Order{PostTime: 100, Deadline: 50}).Valid(); err == nil {
		t.Error("deadline before post time accepted")
	}
}

func TestPatience(t *testing.T) {
	o := Order{PostTime: 100, Deadline: 280}
	if got := o.Patience(); got != 180 {
		t.Errorf("Patience = %v, want 180", got)
	}
}

func TestSortByPostTime(t *testing.T) {
	orders := []Order{
		{ID: 2, PostTime: 50, Deadline: 60},
		{ID: 1, PostTime: 10, Deadline: 20},
		{ID: 0, PostTime: 50, Deadline: 70},
	}
	SortByPostTime(orders)
	if orders[0].ID != 1 {
		t.Errorf("first order = %d, want 1", orders[0].ID)
	}
	// Tie at t=50 broken by id.
	if orders[1].ID != 0 || orders[2].ID != 2 {
		t.Errorf("tie-break wrong: %v", orders)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orders := sampleOrders(200, 7)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orders); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orders) {
		t.Fatalf("round trip lost orders: %d vs %d", len(back), len(orders))
	}
	for i := range orders {
		if back[i].ID != orders[i].ID {
			t.Fatalf("order %d id mismatch", i)
		}
		if d := back[i].PostTime - orders[i].PostTime; d > 0.001 || d < -0.001 {
			t.Fatalf("order %d post time drifted by %v", i, d)
		}
		if d := back[i].Pickup.Lng - orders[i].Pickup.Lng; d > 1e-5 || d < -1e-5 {
			t.Fatalf("order %d pickup drifted", i)
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad header":    "a,b,c,d,e,f,g\n1,2,3,4,5,6,7\n",
		"bad id":        "order_id,post_time_s,pickup_lng,pickup_lat,dropoff_lng,dropoff_lat,deadline_s\nxx,1,2,3,4,5,6\n",
		"bad float":     "order_id,post_time_s,pickup_lng,pickup_lat,dropoff_lng,dropoff_lat,deadline_s\n1,zz,2,3,4,5,6\n",
		"invalid order": "order_id,post_time_s,pickup_lng,pickup_lat,dropoff_lng,dropoff_lat,deadline_s\n1,100,2,3,4,5,50\n",
		"short record":  "order_id,post_time_s,pickup_lng,pickup_lat,dropoff_lng,dropoff_lat,deadline_s\n1,2,3\n",
		"empty":         "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestCountPerSlot(t *testing.T) {
	grid := geo.NewNYCGrid()
	center := geo.NYCBBox.Center()
	orders := []Order{
		{ID: 0, PostTime: 10, Pickup: center, Deadline: 100},
		{ID: 1, PostTime: 20, Pickup: center, Deadline: 100},
		{ID: 2, PostTime: 1810, Pickup: center, Deadline: 2000},
		{ID: 3, PostTime: 30, Pickup: geo.Point{Lng: 0, Lat: 0}, Deadline: 100}, // outside grid
		{ID: 4, PostTime: 999999, Pickup: center, Deadline: 9999999},            // outside horizon
	}
	counts := CountPerSlot(orders, grid, 1800, 3600)
	r := grid.Region(center)
	if counts[0][r] != 2 {
		t.Errorf("slot 0 count = %d, want 2", counts[0][r])
	}
	if counts[1][r] != 1 {
		t.Errorf("slot 1 count = %d, want 1", counts[1][r])
	}
	total := 0
	for _, slot := range counts {
		for _, c := range slot {
			total += c
		}
	}
	if total != 3 {
		t.Errorf("total bucketed = %d, want 3 (outside orders dropped)", total)
	}
}

func TestDropoffCountPerSlotShiftsByDelay(t *testing.T) {
	grid := geo.NewNYCGrid()
	center := geo.NYCBBox.Center()
	orders := []Order{
		{ID: 0, PostTime: 10, Dropoff: center, Deadline: 100},
	}
	counts := DropoffCountPerSlot(orders, grid, 1800, 7200, 2000)
	r := grid.Region(center)
	if counts[0][r] != 0 || counts[1][r] != 1 {
		t.Errorf("delay shift wrong: slot0=%d slot1=%d", counts[0][r], counts[1][r])
	}
}
