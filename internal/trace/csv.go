package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the on-disk column layout. It deliberately mirrors the
// subset of TLC trip-record fields the paper uses, renamed to this
// library's vocabulary.
var csvHeader = []string{
	"order_id", "post_time_s", "pickup_lng", "pickup_lat",
	"dropoff_lng", "dropoff_lat", "deadline_s",
}

// WriteCSV serializes orders, header first.
func WriteCSV(w io.Writer, orders []Order) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for _, o := range orders {
		rec[0] = strconv.FormatInt(int64(o.ID), 10)
		rec[1] = strconv.FormatFloat(o.PostTime, 'f', 3, 64)
		rec[2] = strconv.FormatFloat(o.Pickup.Lng, 'f', 6, 64)
		rec[3] = strconv.FormatFloat(o.Pickup.Lat, 'f', 6, 64)
		rec[4] = strconv.FormatFloat(o.Dropoff.Lng, 'f', 6, 64)
		rec[5] = strconv.FormatFloat(o.Dropoff.Lat, 'f', 6, 64)
		rec[6] = strconv.FormatFloat(o.Deadline, 'f', 3, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write order %d: %w", o.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Structural problems (bad
// field counts, unparsable numbers, invalid orders) abort with an error
// naming the offending line.
func ReadCSV(r io.Reader) ([]Order, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}
	var orders []Order
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		o, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := o.Valid(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		orders = append(orders, o)
	}
	return orders, nil
}

func parseRecord(rec []string) (Order, error) {
	var o Order
	id, err := strconv.ParseInt(rec[0], 10, 32)
	if err != nil {
		return o, fmt.Errorf("order_id %q: %w", rec[0], err)
	}
	o.ID = OrderID(id)
	fields := []struct {
		name string
		dst  *float64
	}{
		{"post_time_s", &o.PostTime},
		{"pickup_lng", &o.Pickup.Lng},
		{"pickup_lat", &o.Pickup.Lat},
		{"dropoff_lng", &o.Dropoff.Lng},
		{"dropoff_lat", &o.Dropoff.Lat},
		{"deadline_s", &o.Deadline},
	}
	for i, f := range fields {
		v, err := strconv.ParseFloat(rec[i+1], 64)
		if err != nil {
			return o, fmt.Errorf("%s %q: %w", f.name, rec[i+1], err)
		}
		*f.dst = v
	}
	return o, nil
}
