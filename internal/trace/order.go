package trace

import (
	"fmt"
	"math"
	"sort"

	"mrvd/internal/geo"
)

// OrderID identifies one ride request.
type OrderID int32

// Order is one ride request: the paper's impatient rider r_i with posting
// time t_i, source s_i, destination e_i, and pickup deadline tau_i.
// Times are seconds from the start of the simulated day.
type Order struct {
	ID       OrderID
	PostTime float64   // t_i: when the request reaches the platform
	Pickup   geo.Point // s_i
	Dropoff  geo.Point // e_i
	Deadline float64   // tau_i: absolute latest pickup time; after this the rider reneges
}

// Valid performs structural sanity checks on a single order.
func (o Order) Valid() error {
	if o.PostTime < 0 {
		return fmt.Errorf("trace: order %d has negative post time %v", o.ID, o.PostTime)
	}
	if o.Deadline < o.PostTime {
		return fmt.Errorf("trace: order %d deadline %v precedes post time %v",
			o.ID, o.Deadline, o.PostTime)
	}
	for _, v := range []float64{o.Pickup.Lng, o.Pickup.Lat, o.Dropoff.Lng, o.Dropoff.Lat} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("trace: order %d has non-finite coordinate %v", o.ID, v)
		}
	}
	return nil
}

// Patience returns how long the rider is willing to wait for pickup.
func (o Order) Patience() float64 { return o.Deadline - o.PostTime }

// SortByPostTime sorts orders in place by posting time, breaking ties by
// id so replay order is deterministic.
func SortByPostTime(orders []Order) {
	sort.Slice(orders, func(i, j int) bool {
		if orders[i].PostTime != orders[j].PostTime {
			return orders[i].PostTime < orders[j].PostTime
		}
		return orders[i].ID < orders[j].ID
	})
}

// CountPerSlot buckets orders by pickup region and time slot, producing
// the [slot][region] count matrix the demand predictors train on.
// slotSeconds is the slot width (the paper uses 30-minute slots);
// horizon is the trace length in seconds.
func CountPerSlot(orders []Order, grid *geo.Grid, slotSeconds, horizon float64) [][]int {
	numSlots := int(horizon/slotSeconds) + 1
	counts := make([][]int, numSlots)
	for i := range counts {
		counts[i] = make([]int, grid.NumRegions())
	}
	for _, o := range orders {
		slot := int(o.PostTime / slotSeconds)
		if slot < 0 || slot >= numSlots {
			continue
		}
		r := grid.Region(o.Pickup)
		if r == geo.InvalidRegion {
			continue
		}
		counts[slot][r]++
	}
	return counts
}

// DropoffCountPerSlot buckets orders by destination region and the slot
// of their *expected completion*: the paper treats order destinations as
// the birth locations of rejoining drivers (Appendix B), so supply
// prediction trains on this matrix. completionDelay estimates trip
// duration; zero buckets by post time.
func DropoffCountPerSlot(orders []Order, grid *geo.Grid, slotSeconds, horizon, completionDelay float64) [][]int {
	numSlots := int(horizon/slotSeconds) + 1
	counts := make([][]int, numSlots)
	for i := range counts {
		counts[i] = make([]int, grid.NumRegions())
	}
	for _, o := range orders {
		slot := int((o.PostTime + completionDelay) / slotSeconds)
		if slot < 0 || slot >= numSlots {
			continue
		}
		r := grid.Region(o.Dropoff)
		if r == geo.InvalidRegion {
			continue
		}
		counts[slot][r]++
	}
	return counts
}
