// Package trace defines the ride-order record format and its CSV
// serialization. It is the stand-in for the NYC TLC yellow-taxi trip dump
// the paper's experiments consume: the schema mirrors the TLC fields the
// paper actually uses (pickup/dropoff timestamps and coordinates), so a
// real TLC extract converted to this CSV can be dropped into any
// experiment unchanged.
package trace
