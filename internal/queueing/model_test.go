package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRenege(t *testing.T) {
	m := New(Config{Beta: 0.1})
	if got := m.Renege(0, 2); got != 0 {
		t.Errorf("Renege(0) = %v, want 0", got)
	}
	if got := m.Renege(-3, 2); got != 0 {
		t.Errorf("Renege(-3) = %v, want 0", got)
	}
	want := math.Exp(0.1*3) / 2
	if got := m.Renege(3, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Renege(3) = %v, want %v", got, want)
	}
	// Zero mu must not divide by zero.
	if got := m.Renege(1, 0); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("Renege with mu=0 = %v", got)
	}
	// Reneging grows with queue length.
	if m.Renege(5, 1) <= m.Renege(2, 1) {
		t.Error("reneging rate should increase with n")
	}
}

func TestP0DegenerateInputs(t *testing.T) {
	m := NewDefault()
	if got := m.P0(0, 1, 10); got != 0 {
		t.Errorf("P0(lambda=0) = %v, want 0", got)
	}
	if got := m.P0(-1, 1, 10); got != 0 {
		t.Errorf("P0(lambda<0) = %v, want 0", got)
	}
	if got := m.P0(math.NaN(), 1, 10); got != 0 {
		t.Errorf("P0(NaN) = %v, want 0", got)
	}
	if got := m.P0(1, 2, -5); got <= 0 {
		t.Errorf("P0 with negative K = %v, want > 0 via K=0", got)
	}
}

// totalProbability sums p_n over the truncated support.
func totalProbability(m *Model, lambda, mu float64, K int) float64 {
	sum := 0.0
	lo := -K
	if lambda > mu && !m.balanced(lambda, mu) {
		lo = -4000 // infinite side decays geometrically; 4000 is plenty
	}
	for n := lo; n <= 3000; n++ {
		sum += m.StateProb(n, lambda, mu, K)
	}
	return sum
}

func TestStateProbsSumToOneAllRegimes(t *testing.T) {
	m := New(Config{Beta: 0.05})
	cases := []struct {
		name       string
		lambda, mu float64
		K          int
	}{
		{"more riders", 0.5, 0.2, 50},
		{"more riders close", 0.5, 0.45, 50},
		{"more drivers", 0.2, 0.5, 40},
		{"more drivers mild", 0.4, 0.5, 60},
		{"balanced", 0.3, 0.3, 25},
		{"zero mu", 0.3, 0, 10},
	}
	for _, c := range cases {
		got := totalProbability(m, c.lambda, c.mu, c.K)
		if math.Abs(got-1) > 1e-6 {
			t.Errorf("%s: probabilities sum to %v", c.name, got)
		}
	}
}

func TestStateProbFlowBalance(t *testing.T) {
	// Eq. 5: mu_n * p_n = lambda_{n-1} * p_{n-1} for every state.
	m := New(Config{Beta: 0.08})
	lambda, mu, K := 0.4, 0.3, 30
	for n := -10; n <= 20; n++ {
		if n == -K {
			continue
		}
		pn := m.StateProb(n, lambda, mu, K)
		pn1 := m.StateProb(n-1, lambda, mu, K)
		var muN float64
		if n <= 0 {
			muN = mu
		} else {
			muN = mu + m.Renege(n, mu)
		}
		lhs := muN * pn
		rhs := lambda * pn1
		if math.Abs(lhs-rhs) > 1e-12*math.Max(1, math.Abs(lhs)) {
			t.Errorf("flow balance violated at n=%d: %v vs %v", n, lhs, rhs)
		}
	}
}

func TestStateProbTruncationAtK(t *testing.T) {
	m := NewDefault()
	// lambda < mu: states below -K have zero probability.
	if p := m.StateProb(-11, 0.2, 0.5, 10); p != 0 {
		t.Errorf("p(-11) with K=10 = %v, want 0", p)
	}
	if p := m.StateProb(-10, 0.2, 0.5, 10); p <= 0 {
		t.Errorf("p(-10) with K=10 = %v, want > 0", p)
	}
}

func TestExpectedIdleTimeMoreRidersClosedForm(t *testing.T) {
	// With beta large the positive series vanishes slowly; verify the
	// identity ET = lambda*p0/(lambda-mu)^2 holds exactly by construction
	// and is finite/positive across a sweep.
	m := New(Config{Beta: 0.05})
	for _, mu := range []float64{0, 0.1, 0.3, 0.49} {
		lambda := 0.5
		et := m.ExpectedIdleTime(lambda, mu, 100)
		p0 := m.P0(lambda, mu, 100)
		want := lambda * p0 / ((lambda - mu) * (lambda - mu))
		if math.Abs(et-want) > 1e-12 {
			t.Errorf("mu=%v: ET=%v, want %v", mu, et, want)
		}
		if et <= 0 || math.IsInf(et, 1) {
			t.Errorf("mu=%v: ET=%v not positive finite", mu, et)
		}
	}
}

func TestExpectedIdleTimeBalancedClosedForm(t *testing.T) {
	m := New(Config{Beta: 0.05})
	lambda := 0.25
	K := 12
	et := m.ExpectedIdleTime(lambda, lambda, K)
	p0 := m.P0(lambda, lambda, K)
	want := p0 * float64(K+1) * float64(K+2) / (2 * lambda)
	if math.Abs(et-want) > 1e-12 {
		t.Errorf("balanced ET=%v, want %v", et, want)
	}
}

func TestExpectedIdleTimeMoreDriversMatchesDirectSum(t *testing.T) {
	// Eq. 13 should equal the direct sum p0/lambda * sum (i+1) theta^i.
	m := New(Config{Beta: 0.05})
	lambda, mu := 0.2, 0.35
	K := 25
	et := m.ExpectedIdleTime(lambda, mu, K)
	p0 := m.P0(lambda, mu, K)
	theta := mu / lambda
	direct := 0.0
	term := 1.0
	for i := 0; i <= K; i++ {
		direct += float64(i+1) * term
		term *= theta
	}
	direct *= p0 / lambda
	if math.Abs(et-direct) > 1e-9*direct {
		t.Errorf("ET=%v, direct sum %v", et, direct)
	}
}

func TestExpectedIdleTimeInfiniteWhenNoRiders(t *testing.T) {
	m := NewDefault()
	if et := m.ExpectedIdleTime(0, 0.5, 10); !math.IsInf(et, 1) {
		t.Errorf("ET with lambda=0 = %v, want +Inf", et)
	}
}

func TestExpectedIdleTimeLargeKOverflowSafe(t *testing.T) {
	// theta = 2, K = 5000: theta^K overflows float64 by thousands of
	// orders of magnitude; the scaled series must stay finite and the
	// asymptotic ET ~ (K+1)/lambda must emerge (queue almost surely full).
	m := NewDefault()
	lambda, mu := 0.1, 0.2
	K := 5000
	et := m.ExpectedIdleTime(lambda, mu, K)
	if math.IsNaN(et) || math.IsInf(et, 1) {
		t.Fatalf("ET overflowed: %v", et)
	}
	asym := float64(K+1) / lambda
	if math.Abs(et-asym)/asym > 0.05 {
		t.Errorf("large-K ET = %v, want ~%v", et, asym)
	}
	if p0 := m.P0(lambda, mu, K); p0 < 0 || p0 > 1e-100 {
		t.Errorf("large-K p0 = %v, want tiny positive", p0)
	}
}

func TestExpectedIdleTimeMonotoneInMu(t *testing.T) {
	// More rejoining drivers means longer idle waits for a newcomer.
	m := NewDefault()
	lambda := 0.3
	prev := -1.0
	for _, mu := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		et := m.ExpectedIdleTime(lambda, mu, 40)
		if et < prev {
			t.Fatalf("ET not monotone in mu: ET(%v)=%v < %v", mu, et, prev)
		}
		prev = et
	}
}

func TestExpectedIdleTimeMonotoneInLambdaProperty(t *testing.T) {
	// More rider demand means shorter idle waits, all else equal.
	m := NewDefault()
	f := func(seed uint8) bool {
		mu := 0.1 + float64(seed%50)/100
		l1 := mu * 0.5
		l2 := mu * 1.5
		return m.ExpectedIdleTime(l2, mu, 30) <= m.ExpectedIdleTime(l1, mu, 30)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRatesEquations18And19(t *testing.T) {
	tc := 600.0
	// |R_k| <= |D_k|: lambda = ^R/tc, mu = (^D + D - R)/tc.
	l, mu := Rates(3, 10, 30, 12, tc)
	if math.Abs(l-30.0/tc) > 1e-12 {
		t.Errorf("lambda = %v, want %v", l, 30.0/tc)
	}
	if math.Abs(mu-(12.0+10-3)/tc) > 1e-12 {
		t.Errorf("mu = %v, want %v", mu, (12.0+10-3)/tc)
	}
	// |R_k| > |D_k|: lambda = (^R + R - D)/tc, mu = ^D/tc.
	l, mu = Rates(20, 5, 30, 12, tc)
	if math.Abs(l-(30.0+20-5)/tc) > 1e-12 {
		t.Errorf("lambda = %v, want %v", l, (30.0+20-5)/tc)
	}
	if math.Abs(mu-12.0/tc) > 1e-12 {
		t.Errorf("mu = %v, want %v", mu, 12.0/tc)
	}
}

func TestRatesEdgeCases(t *testing.T) {
	if l, mu := Rates(1, 1, 1, 1, 0); l != 0 || mu != 0 {
		t.Errorf("zero window rates = %v, %v", l, mu)
	}
	// Never negative even with pathological inputs.
	l, mu := Rates(0, 100, 0, 0, 60)
	if l < 0 || mu < 0 {
		t.Errorf("negative rates %v %v", l, mu)
	}
}

func TestIdleRatioBounds(t *testing.T) {
	if got := IdleRatio(100, math.Inf(1)); got != 1 {
		t.Errorf("IR with infinite ET = %v, want 1", got)
	}
	if got := IdleRatio(0, 0); got != 0 {
		t.Errorf("IR(0,0) = %v, want 0", got)
	}
	if got := IdleRatio(300, 100); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("IR(300,100) = %v, want 0.25", got)
	}
	if got := IdleRatio(-5, -5); got != 0 {
		t.Errorf("IR with negative inputs = %v, want 0", got)
	}
}

func TestIdleRatioOrderingMatchesPaperRules(t *testing.T) {
	// Rule (a): higher travel cost -> lower (better) ratio.
	if IdleRatio(1000, 50) >= IdleRatio(100, 50) {
		t.Error("longer trips should have lower idle ratio")
	}
	// Rule (b): shorter expected idle -> lower ratio.
	if IdleRatio(300, 10) >= IdleRatio(300, 200) {
		t.Error("shorter idle time should have lower idle ratio")
	}
}

func TestIdleRatioInUnitInterval(t *testing.T) {
	f := func(cost, et float64) bool {
		cost = math.Abs(cost)
		et = math.Abs(et)
		ir := IdleRatio(cost, et)
		return ir >= 0 && ir <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelString(t *testing.T) {
	if s := NewDefault().String(); s == "" {
		t.Error("empty String()")
	}
}
