package queueing

import (
	"fmt"
	"math"
)

// Config parameterizes the region queueing model.
type Config struct {
	// Beta is the reneging exponent of pi(n) = e^(Beta*n)/mu. Larger Beta
	// means riders give up faster as the queue grows. The paper fits it
	// from historical reneging records; our workloads configure it
	// explicitly. Beta = 0 still reneges at rate 1/mu per state.
	Beta float64
	// MaxStates truncates the positive-side (waiting riders) series. The
	// terms decay geometrically so truncation error is negligible well
	// before the default of 4096.
	MaxStates int
	// Tol stops the positive-side series once a term falls below
	// Tol * accumulated sum. Default 1e-12.
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.MaxStates <= 0 {
		c.MaxStates = 4096
	}
	if c.Tol <= 0 {
		c.Tol = 1e-12
	}
	return c
}

// Model evaluates the double-sided queue's steady state. The zero value
// is not usable; construct with New.
type Model struct {
	cfg Config
}

// New returns a model with the given configuration.
func New(cfg Config) *Model { return &Model{cfg: cfg.withDefaults()} }

// NewDefault returns a model with the reneging exponent used throughout
// the experiments (beta = 0.05, a mild impatience ramp).
func NewDefault() *Model { return New(Config{Beta: 0.05}) }

// rateEqualTol is the relative tolerance under which lambda and mu are
// treated as the balanced regime of Eqs. 14-16.
const rateEqualTol = 1e-9

// Renege returns pi(n), the reneging rate of waiting riders when the
// region holds n of them (n > 0), given driver arrival rate mu (Eq. 4's
// suggested form e^(beta*n)/mu). mu is floored at a tiny epsilon so a
// region that currently attracts no drivers still has finite reneging.
func (m *Model) Renege(n int, mu float64) float64 {
	if n <= 0 {
		return 0
	}
	const epsMu = 1e-9
	if mu < epsMu {
		mu = epsMu
	}
	return math.Exp(m.cfg.Beta*float64(n)) / mu
}

// positiveSeries returns S+ = sum over n>=1 of prod_{i=1..n}
// lambda/(mu + pi(i)), the waiting-rider side of the normalization
// constant (Eq. 6, n > 0). The product terms decrease monotonically once
// mu + pi(i) exceeds lambda, which the exponential reneging guarantees.
func (m *Model) positiveSeries(lambda, mu float64) float64 {
	sum := 0.0
	term := 1.0
	for n := 1; n <= m.cfg.MaxStates; n++ {
		term *= lambda / (mu + m.Renege(n, mu))
		sum += term
		if term < m.cfg.Tol*(1+sum) {
			break
		}
	}
	return sum
}

// negativeSeriesScaled computes the congested-driver side of the
// normalization and the idle-time numerator in one pass:
//
//	sumGeo = sum_{i=1..K} theta^i            (Eqs. 11/14, theta = mu/lambda)
//	sumET  = sum_{i=0..K} (i+1) theta^i      (numerators of Eqs. 13/16)
//
// To survive theta > 1 with large K (theta^K overflows float64 near
// K*ln(theta) ~ 709), both accumulators are rescaled in lockstep whenever
// they grow past 1e250 and the common scale is returned as logScale; the
// caller forms ratios in which the scale cancels or provably dominates.
func negativeSeriesScaled(theta float64, K int) (sumGeo, sumET, logScale float64) {
	const rescaleAt = 1e250
	const rescaleBy = 1e-200
	term := 1.0 // theta^i
	sumET = 1.0 // i = 0 contributes (0+1)*theta^0
	for i := 1; i <= K; i++ {
		term *= theta
		sumGeo += term
		sumET += float64(i+1) * term
		if sumET > rescaleAt {
			term *= rescaleBy
			sumGeo *= rescaleBy
			sumET *= rescaleBy
			logScale += -math.Log(rescaleBy)
		}
	}
	return sumGeo, sumET, logScale
}

// P0 returns the steady-state probability of the empty state (Eqs. 9, 12,
// 15). K bounds how many drivers can congest (the number of available
// drivers in the scheduling window); it only matters when lambda <= mu.
// Degenerate inputs return 0.
func (m *Model) P0(lambda, mu float64, K int) float64 {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		return 0
	}
	if mu < 0 {
		mu = 0
	}
	if K < 0 {
		K = 0
	}
	sPos := m.positiveSeries(lambda, mu)
	switch {
	case lambda > mu && !m.balanced(lambda, mu):
		// Eq. 9: infinite geometric driver side, ratio mu/lambda < 1.
		return 1 / (lambda/(lambda-mu) + sPos)
	case m.balanced(lambda, mu):
		// Eq. 15.
		return 1 / (float64(K) + 1 + sPos)
	default:
		// Eq. 12, theta = mu/lambda > 1, truncated at K drivers.
		theta := mu / lambda
		sumGeo, _, logScale := negativeSeriesScaled(theta, K)
		if logScale > 0 {
			// The geometric sum overwhelmed float64: p0 is effectively
			// e^{-logScale}/sumGeo, far below any revenue-relevant scale.
			return math.Exp(-logScale) / (sumGeo + 1)
		}
		return 1 / (1 + sumGeo + sPos)
	}
}

// balanced reports whether lambda and mu fall in the equal-rate regime.
func (m *Model) balanced(lambda, mu float64) bool {
	return math.Abs(lambda-mu) <= rateEqualTol*math.Max(lambda, mu)
}

// StateProb returns the steady-state probability p_n of the chain being
// in state n (Eq. 6): negative n are congested drivers (capped at K when
// lambda <= mu), positive n are waiting riders.
func (m *Model) StateProb(n int, lambda, mu float64, K int) float64 {
	p0 := m.P0(lambda, mu, K)
	if p0 == 0 {
		return 0
	}
	switch {
	case n == 0:
		return p0
	case n < 0:
		if lambda <= mu && -n > K {
			return 0
		}
		if mu <= 0 {
			return 0
		}
		return p0 * math.Pow(mu/lambda, float64(-n))
	default:
		prod := 1.0
		for i := 1; i <= n; i++ {
			prod *= lambda / (mu + m.Renege(i, mu))
		}
		return p0 * prod
	}
}

// ExpectedIdleTime returns ET(lambda, mu): the expected time a driver who
// rejoins the region will wait before receiving a new rider, under FCFS
// driver dispatch (Eqs. 10, 13, 16). K is the number of drivers that can
// congest during the scheduling window. A region with no rider arrivals
// returns +Inf.
func (m *Model) ExpectedIdleTime(lambda, mu float64, K int) float64 {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		return math.Inf(1)
	}
	if mu < 0 {
		mu = 0
	}
	if K < 0 {
		K = 0
	}
	switch {
	case lambda > mu && !m.balanced(lambda, mu):
		// Eq. 10: ET = lambda * p0 / (lambda-mu)^2.
		p0 := m.P0(lambda, mu, K)
		d := lambda - mu
		return lambda * p0 / (d * d)
	case m.balanced(lambda, mu):
		// Eq. 16: ET = p0 (K+1)(K+2) / (2 lambda).
		p0 := m.P0(lambda, mu, K)
		return p0 * float64(K+1) * float64(K+2) / (2 * lambda)
	default:
		// Eq. 13 via the stable joint series: ET = sumET / (lambda * S),
		// where S = 1 + sumGeo + S+ is the (scaled) normalizer. When the
		// accumulators were rescaled, the un-scaled "+1+S+" terms vanish
		// relative to sumGeo, which is exactly the large-K limit.
		theta := mu / lambda
		sumGeo, sumET, logScale := negativeSeriesScaled(theta, K)
		var norm float64
		if logScale > 0 {
			norm = sumGeo + 1 // S+ and the 1 are below rescale resolution
		} else {
			norm = 1 + sumGeo + m.positiveSeries(lambda, mu)
		}
		return sumET / (lambda * norm)
	}
}

// Rates converts the batch-level counts of Algorithm 2 into the arrival
// rates of Eqs. 18-19. waiting is |R_k| (unserved riders in the region),
// avail is |D_k| (available drivers), predictedRiders is |^R_k| and
// predictedDrivers |^D_k| (expected arrivals during the window), and tc
// is the window length in seconds. Rates are per second.
func Rates(waiting, avail, predictedRiders, predictedDrivers int, tc float64) (lambda, mu float64) {
	if tc <= 0 {
		return 0, 0
	}
	if waiting <= avail {
		lambda = float64(predictedRiders) / tc
		mu = float64(predictedDrivers+avail-waiting) / tc
	} else {
		lambda = float64(predictedRiders+waiting-avail) / tc
		mu = float64(predictedDrivers) / tc
	}
	if lambda < 0 {
		lambda = 0
	}
	if mu < 0 {
		mu = 0
	}
	return lambda, mu
}

// IdleRatio returns IR(r, d) = ET / (cost + ET) (Eq. 17), the priority
// score the dispatch algorithms minimize. cost is the rider's travel
// cost in seconds; et the expected idle time at the rider's destination
// region. An infinite ET yields ratio 1 (worst possible priority); a
// non-positive total yields 0.
func IdleRatio(cost, et float64) float64 {
	if math.IsInf(et, 1) {
		return 1
	}
	if et < 0 {
		et = 0
	}
	if cost < 0 {
		cost = 0
	}
	total := cost + et
	if total <= 0 {
		return 0
	}
	return et / total
}

// String renders the model configuration, aiding experiment logs.
func (m *Model) String() string {
	return fmt.Sprintf("queueing.Model{beta=%g, maxStates=%d}", m.cfg.Beta, m.cfg.MaxStates)
}
