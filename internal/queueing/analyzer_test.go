package queueing

import (
	"math"
	"testing"
)

func newTestAnalyzer(tc float64) *Analyzer {
	return NewAnalyzer(New(Config{Beta: 0.05}), 4, tc)
}

func TestAnalyzerRatesMatchEquations(t *testing.T) {
	a := newTestAnalyzer(600)
	a.SetRegion(0, RegionState{Waiting: 3, Available: 10, PredictedRiders: 30, PredictedDrivers: 12})
	l, mu := a.Rates(0)
	wantL, wantMu := Rates(3, 10, 30, 12, 600)
	if l != wantL || mu != wantMu {
		t.Errorf("rates = (%v,%v), want (%v,%v)", l, mu, wantL, wantMu)
	}
}

func TestAnalyzerCommitRaisesMuAndIdleTime(t *testing.T) {
	a := newTestAnalyzer(600)
	// A region with demand surplus: committing destinations adds supply,
	// which must weakly increase the expected idle time there.
	a.SetRegion(1, RegionState{Waiting: 8, Available: 2, PredictedRiders: 20, PredictedDrivers: 5})
	before := a.ExpectedIdleTime(1)
	_, muBefore := a.Rates(1)
	a.CommitDestination(1)
	_, muAfter := a.Rates(1)
	if muAfter <= muBefore {
		t.Errorf("mu did not increase on commit: %v -> %v", muBefore, muAfter)
	}
	after := a.ExpectedIdleTime(1)
	if after < before {
		t.Errorf("ET decreased after committing a driver: %v -> %v", before, after)
	}
}

func TestAnalyzerUncommitRestores(t *testing.T) {
	a := newTestAnalyzer(600)
	a.SetRegion(2, RegionState{Waiting: 5, Available: 3, PredictedRiders: 15, PredictedDrivers: 6})
	base := a.ExpectedIdleTime(2)
	a.CommitDestination(2)
	a.UncommitDestination(2)
	if got := a.ExpectedIdleTime(2); math.Abs(got-base) > 1e-12 {
		t.Errorf("ET after commit+uncommit = %v, want %v", got, base)
	}
	// Uncommitting below zero clamps.
	a.UncommitDestination(2)
	if got := a.ExpectedIdleTime(2); math.Abs(got-base) > 1e-12 {
		t.Errorf("ET after extra uncommit = %v, want %v", got, base)
	}
}

func TestAnalyzerResetClearsBumps(t *testing.T) {
	a := newTestAnalyzer(600)
	states := []RegionState{
		{Waiting: 1, Available: 1, PredictedRiders: 10, PredictedDrivers: 10},
		{Waiting: 2, Available: 0, PredictedRiders: 5, PredictedDrivers: 1},
		{}, {},
	}
	a.Reset(states)
	base := a.ExpectedIdleTime(1)
	a.CommitDestination(1)
	a.Reset(states)
	if got := a.ExpectedIdleTime(1); math.Abs(got-base) > 1e-12 {
		t.Errorf("Reset did not clear bumps: %v vs %v", got, base)
	}
}

func TestAnalyzerIdleRatioUsesDestinationET(t *testing.T) {
	a := newTestAnalyzer(600)
	// Region 0: hot (many riders coming) -> short ET.
	a.SetRegion(0, RegionState{Waiting: 10, Available: 0, PredictedRiders: 50, PredictedDrivers: 2})
	// Region 3: cold (no riders coming) -> infinite ET.
	a.SetRegion(3, RegionState{Waiting: 0, Available: 5, PredictedRiders: 0, PredictedDrivers: 8})
	hot := a.IdleRatio(600, 0)
	cold := a.IdleRatio(600, 3)
	if hot >= cold {
		t.Errorf("hot-region ratio %v should beat cold-region ratio %v", hot, cold)
	}
	if cold != 1 {
		t.Errorf("cold region (lambda=0) ratio = %v, want 1", cold)
	}
	if !a.FiniteET(0) || a.FiniteET(3) {
		t.Error("FiniteET misclassifies regions")
	}
}

func TestAnalyzerSnapshotAndTotals(t *testing.T) {
	a := newTestAnalyzer(300)
	a.SetRegion(0, RegionState{Waiting: 4, Available: 1, PredictedRiders: 10, PredictedDrivers: 3})
	a.SetRegion(1, RegionState{Waiting: 2, Available: 2, PredictedRiders: 8, PredictedDrivers: 4})
	snap := a.SnapshotET()
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d, want 4", len(snap))
	}
	if snap[0] != a.ExpectedIdleTime(0) {
		t.Error("snapshot disagrees with direct query")
	}
	if got := a.TotalWaiting(); got != 6 {
		t.Errorf("TotalWaiting = %d, want 6", got)
	}
	if a.NumRegions() != 4 {
		t.Errorf("NumRegions = %d, want 4", a.NumRegions())
	}
}

func TestAnalyzerCacheConsistency(t *testing.T) {
	a := newTestAnalyzer(600)
	a.SetRegion(0, RegionState{Waiting: 5, Available: 2, PredictedRiders: 12, PredictedDrivers: 4})
	first := a.ExpectedIdleTime(0)
	second := a.ExpectedIdleTime(0) // cached path
	if first != second {
		t.Errorf("cached ET differs: %v vs %v", first, second)
	}
}
