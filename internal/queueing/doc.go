// Package queueing implements the paper's central analytical contribution:
// a double-sided birth-death queueing model for one region of the city
// (Section 4). Positive states n mean n riders are waiting; negative
// states mean |n| idle drivers are congested in the region. Riders arrive
// Poisson(lambda), rejoining drivers arrive Poisson(mu), and impatient
// riders renege at a state-dependent rate pi(n) = e^(beta*n)/mu (Eq. 4).
//
// From the flow-balance steady state (Eqs. 5-6) the package derives the
// normalizing probability p0 and the expected idle time ET(lambda, mu) a
// driver will sit unassigned after rejoining the region, in the paper's
// three regimes:
//
//   - more riders arrive, lambda > mu   (Eqs. 7-10)
//   - more drivers rejoin, lambda < mu  (Eqs. 11-13, truncated at K)
//   - balanced, lambda = mu             (Eqs. 14-16)
//
// It also provides the batch-window arrival-rate estimators of
// Eqs. 18-19 and a Monte-Carlo chain simulator used to validate the
// closed forms in tests.
package queueing
