// Package queueing implements the paper's central analytical contribution:
// a double-sided birth-death queueing model for one region of the city
// (Section 4). Positive states n mean n riders are waiting; negative
// states mean |n| idle drivers are congested in the region. Riders arrive
// Poisson(lambda), rejoining drivers arrive Poisson(mu), and impatient
// riders renege at a state-dependent rate pi(n) = e^(beta*n)/mu (Eq. 4).
//
// From the flow-balance steady state (Eqs. 5-6) the package derives the
// normalizing probability p0 and the expected idle time ET(lambda, mu) a
// driver will sit unassigned after rejoining the region, in the paper's
// three regimes:
//
//   - more riders arrive, lambda > mu   (Eqs. 7-10)
//   - more drivers rejoin, lambda < mu  (Eqs. 11-13, truncated at K)
//   - balanced, lambda = mu             (Eqs. 14-16)
//
// It also provides the batch-window arrival-rate estimators of
// Eqs. 18-19 and a Monte-Carlo chain simulator used to validate the
// closed forms in tests.
//
// # Consuming the model
//
// New (or NewDefault) builds a Model — the closed forms plus the
// reneging configuration — and Model.ExpectedIdleTime evaluates one
// (lambda, mu, k) point. Batch dispatchers work through an Analyzer
// instead: it snapshots every region's state (waiting riders, available
// drivers, window predictions) once per batch, converts counts to
// rates, caches per-region ET values, and exposes the idle ratio
// IR = ET / (cost + ET) of Eq. 17 that scores rider-driver pairs. The
// Analyzer's CommitDestination/UncommitDestination implement Algorithm
// 2 line 11's mu-update feedback, which the IRG and LS dispatchers
// invoke as assignments commit.
package queueing
