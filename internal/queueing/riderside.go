package queueing

import "math"

// RenegeProb returns the steady-state fraction of riders who renege
// before being served: the aggregate reneging flow divided by the rider
// arrival rate,
//
//	P(renege) = (1/lambda) * sum_{n>0} pi(n) * p_n.
//
// It complements ExpectedIdleTime on the rider side of the double-sided
// queue: the platform loses exactly this fraction of demand in a region
// whose rates stay at (lambda, mu). Degenerate inputs return 0.
func (m *Model) RenegeProb(lambda, mu float64, K int) float64 {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		return 0
	}
	if mu < 0 {
		mu = 0
	}
	p0 := m.P0(lambda, mu, K)
	if p0 == 0 {
		// The normalizer degenerated (huge driver surplus): with drivers
		// always waiting, riders are served instantly and never renege.
		return 0
	}
	flow := 0.0
	prod := 1.0
	for n := 1; n <= m.cfg.MaxStates; n++ {
		pi := m.Renege(n, mu)
		prod *= lambda / (mu + pi)
		term := pi * p0 * prod
		flow += term
		if p0*prod < m.cfg.Tol*(1+flow) {
			break
		}
	}
	p := flow / lambda
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MeanWaitingRiders returns the steady-state expected number of waiting
// riders, E[n | n > 0 side] = sum_{n>0} n * p_n.
func (m *Model) MeanWaitingRiders(lambda, mu float64, K int) float64 {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		return 0
	}
	if mu < 0 {
		mu = 0
	}
	p0 := m.P0(lambda, mu, K)
	if p0 == 0 {
		return 0
	}
	sum := 0.0
	prod := 1.0
	for n := 1; n <= m.cfg.MaxStates; n++ {
		prod *= lambda / (mu + m.Renege(n, mu))
		sum += float64(n) * p0 * prod
		if p0*prod < m.cfg.Tol*(1+sum) {
			break
		}
	}
	return sum
}

// MeanCongestedDrivers returns the steady-state expected number of idle
// drivers waiting in the region, sum_{n<0} |n| * p_n (capped at K when
// lambda <= mu).
func (m *Model) MeanCongestedDrivers(lambda, mu float64, K int) float64 {
	if lambda <= 0 || mu <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		return 0
	}
	if K < 0 {
		K = 0
	}
	theta := mu / lambda
	if lambda > mu && !m.balanced(lambda, mu) {
		// Infinite geometric side: sum_{i>=1} i * theta^i = theta/(1-theta)^2.
		p0 := m.P0(lambda, mu, K)
		return p0 * theta / ((1 - theta) * (1 - theta))
	}
	// Truncated side: reuse the overflow-safe joint series. With
	// sumET = sum_{i=0..K} (i+1) theta^i and sumGeo = sum_{i=1..K}
	// theta^i, the wanted sum_{i=1..K} i*theta^i = sumET - 1 - sumGeo...
	// no: sumET - (sum_{i=0..K} theta^i) = sum i*theta^i. Compute that.
	sumGeo, sumET, logScale := negativeSeriesScaled(theta, K)
	iSum := sumET - (1 + sumGeo) // sum_{i=0..K} i*theta^i
	var norm float64
	if logScale > 0 {
		norm = sumGeo + 1
	} else {
		norm = 1 + sumGeo + m.positiveSeries(lambda, mu)
	}
	if norm <= 0 {
		return 0
	}
	return iSum / norm
}
