package queueing

import (
	"math/rand"

	"mrvd/internal/stats"
)

// ChainSim runs a continuous-time Monte-Carlo simulation of the
// double-sided birth-death chain and measures the realized idle times of
// arriving drivers. It validates the closed-form ET in tests and powers
// the Table 3 estimation-accuracy experiment's ground truth at the
// region level.
type ChainSim struct {
	Lambda float64 // rider arrival rate (per second)
	Mu     float64 // driver arrival rate (per second)
	Beta   float64 // reneging exponent
	K      int     // max congested drivers
}

// ChainResult aggregates one simulation run.
type ChainResult struct {
	DriverIdleTimes []float64 // realized idle time of each matched driver
	Reneged         int       // riders who gave up
	Served          int       // riders matched to a driver
}

// Run simulates the chain for the given horizon (seconds). Drivers are
// dispatched FCFS. A rider arriving while drivers are congested consumes
// the longest-waiting driver immediately; a driver arriving while riders
// wait is matched immediately (idle time 0). Riders renege after an
// exponential patience drawn from the state-dependent rate pi(n).
func (c ChainSim) Run(rng *rand.Rand, horizon float64) ChainResult {
	model := New(Config{Beta: c.Beta})
	var res ChainResult
	type waitingDriver struct{ since float64 }
	var drivers []waitingDriver // FIFO queue of congested drivers
	riders := 0                 // count of waiting riders (patience handled in aggregate)
	now := 0.0
	for {
		// Competing exponential clocks: rider arrival, driver arrival,
		// and aggregate reneging of the current rider queue.
		renegeRate := 0.0
		for i := 1; i <= riders; i++ {
			renegeRate += model.Renege(i, c.Mu)
		}
		total := c.Lambda + c.Mu + renegeRate
		if total <= 0 {
			break
		}
		now += stats.Exponential(rng, total)
		if now > horizon {
			break
		}
		u := rng.Float64() * total
		switch {
		case u < c.Lambda:
			// Rider arrives.
			if len(drivers) > 0 {
				d := drivers[0]
				drivers = drivers[1:]
				res.DriverIdleTimes = append(res.DriverIdleTimes, now-d.since)
				res.Served++
			} else {
				riders++
			}
		case u < c.Lambda+c.Mu:
			// Driver rejoins.
			if riders > 0 {
				riders--
				res.DriverIdleTimes = append(res.DriverIdleTimes, 0)
				res.Served++
			} else if len(drivers) <= c.K {
				// Eq. 13 lets an arriving driver find up to K drivers
				// ahead (state -K) and still join as the (K+1)th waiter;
				// beyond that the region is saturated and the platform
				// would never send more drivers there.
				drivers = append(drivers, waitingDriver{since: now})
			}
		default:
			// One waiting rider reneges.
			if riders > 0 {
				riders--
				res.Reneged++
			}
		}
	}
	return res
}

// MeanIdle returns the average realized driver idle time, or 0 when no
// driver was matched.
func (r ChainResult) MeanIdle() float64 {
	if len(r.DriverIdleTimes) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range r.DriverIdleTimes {
		sum += t
	}
	return sum / float64(len(r.DriverIdleTimes))
}
