package queueing

import "math"

// RegionState is the demand-supply snapshot of one region at the start of
// a batch, in the units of Algorithm 1 lines 3-6.
type RegionState struct {
	Waiting          int // |R_k|: waiting riders
	Available        int // |D_k|: available drivers
	PredictedRiders  int // |^R_k|: predicted upcoming riders in the window
	PredictedDrivers int // |^D_k|: expected rejoining drivers in the window
}

// Analyzer evaluates and caches per-region expected idle times for one
// batch. The dispatch loop mutates driver supply as it commits pairs
// (Algorithm 2 line 11 bumps mu of the destination region), so the cache
// invalidates per region on update.
type Analyzer struct {
	model   *Model
	tc      float64 // scheduling window length in seconds
	states  []RegionState
	muBump  []int // extra rejoining drivers committed this batch
	etCache []float64
	etValid []bool
}

// NewAnalyzer builds an analyzer over numRegions regions for a scheduling
// window of tc seconds.
func NewAnalyzer(model *Model, numRegions int, tc float64) *Analyzer {
	return &Analyzer{
		model:   model,
		tc:      tc,
		states:  make([]RegionState, numRegions),
		muBump:  make([]int, numRegions),
		etCache: make([]float64, numRegions),
		etValid: make([]bool, numRegions),
	}
}

// NumRegions returns the number of regions tracked.
func (a *Analyzer) NumRegions() int { return len(a.states) }

// Reset installs fresh per-region snapshots for a new batch and clears
// all committed-mu bumps and cached idle times.
func (a *Analyzer) Reset(states []RegionState) {
	copy(a.states, states)
	for i := len(states); i < len(a.states); i++ {
		a.states[i] = RegionState{}
	}
	for i := range a.muBump {
		a.muBump[i] = 0
		a.etValid[i] = false
	}
}

// SetRegion installs one region's snapshot (primarily for tests).
func (a *Analyzer) SetRegion(region int, s RegionState) {
	a.states[region] = s
	a.muBump[region] = 0
	a.etValid[region] = false
}

// Rates returns the effective (lambda, mu) for a region, including any
// mu bumps committed during the current batch.
func (a *Analyzer) Rates(region int) (lambda, mu float64) {
	s := a.states[region]
	lambda, mu = Rates(s.Waiting, s.Available,
		s.PredictedRiders, s.PredictedDrivers+a.muBump[region], a.tc)
	return lambda, mu
}

// congestionCap returns K for a region: the number of drivers that could
// congest there during the window (available now plus all expected or
// committed arrivals).
func (a *Analyzer) congestionCap(region int) int {
	s := a.states[region]
	k := s.Available + s.PredictedDrivers + a.muBump[region]
	if k < 0 {
		k = 0
	}
	return k
}

// ExpectedIdleTime returns the memoized ET for a region under its current
// effective rates.
func (a *Analyzer) ExpectedIdleTime(region int) float64 {
	if a.etValid[region] {
		return a.etCache[region]
	}
	lambda, mu := a.Rates(region)
	et := a.model.ExpectedIdleTime(lambda, mu, a.congestionCap(region))
	a.etCache[region] = et
	a.etValid[region] = true
	return et
}

// IdleRatio scores a candidate pair whose rider travels for cost seconds
// and ends in destRegion (Eq. 17).
func (a *Analyzer) IdleRatio(cost float64, destRegion int) float64 {
	return IdleRatio(cost, a.ExpectedIdleTime(destRegion))
}

// CommitDestination records that a selected rider will deliver a driver
// into destRegion, raising its mu (Algorithm 2 line 11) and invalidating
// the cached ET.
func (a *Analyzer) CommitDestination(destRegion int) {
	a.muBump[destRegion]++
	a.etValid[destRegion] = false
}

// UncommitDestination reverses CommitDestination, used by the local
// search when it swaps a driver's assigned rider (Algorithm 3 line 7).
func (a *Analyzer) UncommitDestination(destRegion int) {
	if a.muBump[destRegion] > 0 {
		a.muBump[destRegion]--
	}
	a.etValid[destRegion] = false
}

// SnapshotET returns the current ET of every region, +Inf for regions
// with no rider arrivals. Used by Figure 6's predicted-idle-time map.
func (a *Analyzer) SnapshotET() []float64 {
	out := make([]float64, len(a.states))
	for r := range a.states {
		out[r] = a.ExpectedIdleTime(r)
	}
	return out
}

// TotalWaiting sums waiting riders across regions (diagnostics).
func (a *Analyzer) TotalWaiting() int {
	n := 0
	for _, s := range a.states {
		n += s.Waiting
	}
	return n
}

// FiniteET reports whether the region has a finite expected idle time.
func (a *Analyzer) FiniteET(region int) bool {
	return !math.IsInf(a.ExpectedIdleTime(region), 1)
}
