package queueing

import (
	"math"
	"math/rand"
	"testing"
)

func TestRenegeProbBounds(t *testing.T) {
	m := New(Config{Beta: 0.05})
	for _, c := range []struct{ lambda, mu float64 }{
		{0.5, 0.1}, {0.5, 0.4}, {0.3, 0.3}, {0.2, 0.5}, {0.3, 0},
	} {
		p := m.RenegeProb(c.lambda, c.mu, 40)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("RenegeProb(%v,%v) = %v", c.lambda, c.mu, p)
		}
	}
	if p := m.RenegeProb(0, 0.5, 10); p != 0 {
		t.Errorf("RenegeProb with no riders = %v", p)
	}
}

func TestRenegeProbDecreasesWithSupply(t *testing.T) {
	// More rejoining drivers means fewer riders renege.
	m := New(Config{Beta: 0.05})
	lambda := 0.4
	prev := 2.0
	for _, mu := range []float64{0.05, 0.15, 0.3, 0.45, 0.6} {
		p := m.RenegeProb(lambda, mu, 60)
		if p > prev+1e-12 {
			t.Fatalf("RenegeProb not decreasing: P(mu=%v)=%v > %v", mu, p, prev)
		}
		prev = p
	}
}

func TestRenegeProbMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo in -short mode")
	}
	m := New(Config{Beta: 0.1})
	c := ChainSim{Lambda: 0.5, Mu: 0.25, Beta: 0.1, K: 10000}
	want := m.RenegeProb(c.Lambda, c.Mu, c.K)
	reneged, total := 0, 0
	for s := 0; s < 4; s++ {
		res := c.Run(rand.New(rand.NewSource(int64(100+s))), 150000)
		reneged += res.Reneged
		total += res.Reneged + res.Served
	}
	got := float64(reneged) / float64(total)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("empirical renege rate %.4f vs analytic %.4f", got, want)
	}
}

func TestMeanWaitingRidersMonotoneInLambda(t *testing.T) {
	m := New(Config{Beta: 0.05})
	mu := 0.3
	prev := -1.0
	for _, lambda := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		v := m.MeanWaitingRiders(lambda, mu, 40)
		if v < prev {
			t.Fatalf("mean queue not monotone in lambda at %v: %v < %v", lambda, v, prev)
		}
		prev = v
	}
	if v := m.MeanWaitingRiders(0, 0.3, 10); v != 0 {
		t.Errorf("mean queue with no riders = %v", v)
	}
}

func TestMeanCongestedDriversMonotoneInMu(t *testing.T) {
	m := New(Config{Beta: 0.05})
	lambda := 0.3
	prev := -1.0
	for _, mu := range []float64{0.05, 0.15, 0.3, 0.45, 0.6} {
		v := m.MeanCongestedDrivers(lambda, mu, 40)
		if v < prev-1e-9 {
			t.Fatalf("congested drivers not monotone in mu at %v: %v < %v", mu, v, prev)
		}
		prev = v
	}
	if v := m.MeanCongestedDrivers(0.3, 0, 40); v != 0 {
		t.Errorf("congested drivers with mu=0 = %v", v)
	}
}

func TestMeanCongestedDriversMatchesDirectSum(t *testing.T) {
	// Cross-check the closed/stable computation against an explicit
	// state-probability sum in all regimes.
	m := New(Config{Beta: 0.05})
	for _, c := range []struct {
		lambda, mu float64
		K          int
	}{
		{0.5, 0.2, 60}, {0.2, 0.35, 30}, {0.3, 0.3, 25},
	} {
		want := 0.0
		for n := 1; n <= c.K+2000; n++ {
			want += float64(n) * m.StateProb(-n, c.lambda, c.mu, c.K)
		}
		got := m.MeanCongestedDrivers(c.lambda, c.mu, c.K)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("lambda=%v mu=%v: got %v, direct sum %v", c.lambda, c.mu, got, want)
		}
	}
}

func TestMeanCongestedDriversLargeKStable(t *testing.T) {
	m := NewDefault()
	v := m.MeanCongestedDrivers(0.1, 0.2, 5000)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("overflow: %v", v)
	}
	// Queue almost surely full: mean congested ~ K.
	if v < 4800 || v > 5001 {
		t.Errorf("large-K mean congested = %v, want ~5000", v)
	}
}
