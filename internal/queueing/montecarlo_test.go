package queueing

import (
	"math"
	"math/rand"
	"testing"
)

// runChainMean runs the chain simulator repeatedly and returns the pooled
// mean driver idle time.
func runChainMean(t *testing.T, c ChainSim, horizon float64, seeds int) float64 {
	t.Helper()
	sum, n := 0.0, 0
	for s := 0; s < seeds; s++ {
		res := c.Run(rand.New(rand.NewSource(int64(1000+s))), horizon)
		for _, it := range res.DriverIdleTimes {
			sum += it
			n++
		}
	}
	if n == 0 {
		t.Fatal("chain simulation matched no drivers")
	}
	return sum / float64(n)
}

func TestMonteCarloValidatesMoreRidersRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo in -short mode")
	}
	m := New(Config{Beta: 0.05})
	c := ChainSim{Lambda: 0.5, Mu: 0.3, Beta: 0.05, K: 10000}
	want := m.ExpectedIdleTime(c.Lambda, c.Mu, c.K)
	got := runChainMean(t, c, 200000, 4)
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("empirical idle %.3f vs closed-form %.3f (>8%% off)", got, want)
	}
}

func TestMonteCarloValidatesMoreDriversRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo in -short mode")
	}
	m := New(Config{Beta: 0.05})
	c := ChainSim{Lambda: 0.4, Mu: 0.5, Beta: 0.05, K: 15}
	want := m.ExpectedIdleTime(c.Lambda, c.Mu, c.K)
	got := runChainMean(t, c, 200000, 4)
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("empirical idle %.3f vs closed-form %.3f (>10%% off)", got, want)
	}
}

func TestMonteCarloValidatesBalancedRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo in -short mode")
	}
	m := New(Config{Beta: 0.05})
	c := ChainSim{Lambda: 0.3, Mu: 0.3, Beta: 0.05, K: 12}
	want := m.ExpectedIdleTime(c.Lambda, c.Mu, c.K)
	got := runChainMean(t, c, 300000, 4)
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("empirical idle %.3f vs closed-form %.3f (>10%% off)", got, want)
	}
}

func TestMonteCarloRenegingHappens(t *testing.T) {
	// Heavy rider surplus with aggressive reneging must drop riders.
	c := ChainSim{Lambda: 1.0, Mu: 0.05, Beta: 0.5, K: 5}
	res := c.Run(rand.New(rand.NewSource(3)), 20000)
	if res.Reneged == 0 {
		t.Error("no riders reneged under heavy overload")
	}
	if res.Served == 0 {
		t.Error("no riders served")
	}
}

func TestMonteCarloZeroRates(t *testing.T) {
	c := ChainSim{Lambda: 0, Mu: 0, Beta: 0.1, K: 5}
	res := c.Run(rand.New(rand.NewSource(1)), 1000)
	if res.Served != 0 || res.Reneged != 0 || len(res.DriverIdleTimes) != 0 {
		t.Errorf("empty chain produced activity: %+v", res)
	}
	if res.MeanIdle() != 0 {
		t.Errorf("MeanIdle of empty result = %v", res.MeanIdle())
	}
}
