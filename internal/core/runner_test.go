package core

import (
	"context"
	"math"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/predict"
	"mrvd/internal/workload"
)

// testOptions returns a small, fast instance: a 4x4-grid city with a
// short horizon.
func testOptions() Options {
	return Options{
		City: workload.NewCity(workload.CityConfig{
			Grid:         geo.NewGrid(geo.NYCBBox, 4, 4),
			OrdersPerDay: 6000,
			Seed:         9,
		}),
		NumDrivers: 40,
		Delta:      10,
		TC:         1200,
		Horizon:    4 * 3600,
		Seed:       1,
		TrainDays:  predict.MinLookbackDays + 3,
	}
}

func TestRunnerDefaultsApplied(t *testing.T) {
	r := NewRunner(Options{City: testOptions().City})
	o := r.Options()
	if o.NumDrivers != 100 || o.Delta != 3 || o.TC != 1200 || o.SlotSeconds != 1800 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if len(r.Orders()) == 0 {
		t.Error("no orders generated")
	}
}

func TestRunnerRunAllAlgorithmsNoPrediction(t *testing.T) {
	r := NewRunner(testOptions())
	for _, name := range AlgorithmNames() {
		d, err := NewDispatcher(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Run(context.Background(), d, PredictNone, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Served+m.Reneged == 0 {
			t.Errorf("%s: no rider outcomes", name)
		}
		if m.Revenue < 0 {
			t.Errorf("%s: negative revenue", name)
		}
	}
}

func TestRunnerOracleBeatsOrMatchesNoPrediction(t *testing.T) {
	// The oracle gives the queueing model real future demand; for IRG it
	// should not hurt revenue (statistically it helps, but at this small
	// scale assert non-catastrophic: within 5% below, typically above).
	r := NewRunner(testOptions())
	d1, _ := NewDispatcher("IRG", 0)
	none, err := r.Run(context.Background(), d1, PredictNone, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDispatcher("IRG", 0)
	oracle, err := r.Run(context.Background(), d2, PredictOracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("none=%.0f oracle=%.0f", none.Revenue, oracle.Revenue)
	if oracle.Revenue < 0.95*none.Revenue {
		t.Errorf("oracle prediction hurt IRG badly: %.0f vs %.0f", oracle.Revenue, none.Revenue)
	}
}

func TestRunnerModelPrediction(t *testing.T) {
	r := NewRunner(testOptions())
	d, _ := NewDispatcher("IRG", 0)
	m, err := r.Run(context.Background(), d, PredictModel, predict.HA{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 {
		t.Error("model-predicted run served nothing")
	}
	// The trained predictor is cached by name.
	if _, ok := r.trainedSet["HA"]; !ok {
		t.Error("predictor not cached")
	}
}

func TestRunnerModelPredictionRequiresModel(t *testing.T) {
	r := NewRunner(testOptions())
	d, _ := NewDispatcher("IRG", 0)
	if _, err := r.Run(context.Background(), d, PredictModel, nil); err == nil {
		t.Error("PredictModel without a model accepted")
	}
}

func TestNewDispatcherUnknown(t *testing.T) {
	if _, err := NewDispatcher("NOPE", 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, name := range AlgorithmNames() {
		d, err := NewDispatcher(name, 1)
		if err != nil || d == nil {
			t.Errorf("%s: %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("dispatcher %q reports name %q", name, d.Name())
		}
	}
}

func TestWindowCountsFractionalOverlap(t *testing.T) {
	// Slot width 100, window [50, 250): half of slot 0, all of slot 1,
	// half of slot 2.
	slotCount := func(slot, region int) float64 { return 10 }
	got := windowCounts(50, 200, 100, 10, slotCount, 1)
	if got[0] != 20 { // 5 + 10 + 5
		t.Errorf("window count = %d, want 20", got[0])
	}
	// Window entirely inside one slot.
	got = windowCounts(10, 50, 100, 10, slotCount, 1)
	if got[0] != 5 {
		t.Errorf("half-slot window = %d, want 5", got[0])
	}
	// Window past the end of the day clamps to the last slot.
	got = windowCounts(950, 100, 100, 10, slotCount, 1)
	if got[0] != 10 {
		t.Errorf("end-of-day window = %d, want 10", got[0])
	}
}

func TestRunnerDeterministicInstances(t *testing.T) {
	a := NewRunner(testOptions())
	b := NewRunner(testOptions())
	if len(a.Orders()) != len(b.Orders()) {
		t.Fatal("same options, different instances")
	}
	for i := range a.Orders() {
		if a.Orders()[i] != b.Orders()[i] {
			t.Fatal("same options, different orders")
		}
	}
	da, _ := NewDispatcher("LS", 0)
	db, _ := NewDispatcher("LS", 0)
	ma, err := a.Run(context.Background(), da, PredictOracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Run(context.Background(), db, PredictOracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ma.Revenue-mb.Revenue) > 1e-9 || ma.Served != mb.Served {
		t.Errorf("nondeterministic runs: %.0f/%d vs %.0f/%d",
			ma.Revenue, ma.Served, mb.Revenue, mb.Served)
	}
}

func TestRunnerShareFromPreservesResults(t *testing.T) {
	// History/model sharing across runners (used by the sweep harness)
	// must not change outcomes: a shared-history run equals a fresh one.
	opts := testOptions()
	fresh := NewRunner(opts)
	d1, _ := NewDispatcher("IRG", 0)
	want, err := fresh.Run(context.Background(), d1, PredictModel, predict.HA{})
	if err != nil {
		t.Fatal(err)
	}

	base := NewRunner(opts) // builds its own history on demand
	base.History()
	shared := NewRunner(opts)
	shared.ShareFrom(base)
	d2, _ := NewDispatcher("IRG", 0)
	got, err := shared.Run(context.Background(), d2, PredictModel, predict.HA{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Revenue != want.Revenue || got.Served != want.Served {
		t.Errorf("shared history changed results: %v/%d vs %v/%d",
			got.Revenue, got.Served, want.Revenue, want.Served)
	}
}

func TestRunnerHistoryIncludesTestDay(t *testing.T) {
	r := NewRunner(testOptions())
	h := r.History()
	if h.Days() != r.Options().TrainDays+1 {
		t.Errorf("history has %d days, want TrainDays+1 = %d",
			h.Days(), r.Options().TrainDays+1)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// The appended day's counts must equal the runner's orders bucketed.
	total := 0
	last := h.Counts[h.Days()-1]
	for _, slot := range last {
		for _, c := range slot {
			total += c
		}
	}
	inBox := 0
	grid := r.Options().City.Grid()
	for _, o := range r.Orders() {
		if grid.Region(o.Pickup) != geo.InvalidRegion {
			inBox++
		}
	}
	if total != inBox {
		t.Errorf("test-day counts sum to %d, orders in box %d", total, inBox)
	}
}
