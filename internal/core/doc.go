// Package core wires the framework of Section 3 together: the offline
// demand prediction (package predict), the per-region queueing analysis
// (package queueing), the batch dispatch algorithms (package dispatch)
// and the simulator (package sim) — i.e., Algorithm 1 end to end. A
// Runner owns one configured city and executes named algorithms over a
// simulated day, feeding the dispatcher per-region demand predictions
// from a trained model, the realized history, or the noiseless oracle.
// Runs are context-aware (cancellation between batches), can consume
// streaming order sources (RunSource), and Sweep executes whole
// (algorithm × seed × fleet) grids on a parallel worker pool with
// per-seed history sharing and deterministic results.
package core
