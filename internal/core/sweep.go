package core

import (
	"context"
	"fmt"
	"mrvd/internal/geo"
	"runtime"
	"sync"

	"mrvd/internal/predict"
	"mrvd/internal/roadnet"
	"mrvd/internal/sim"
	"mrvd/internal/trace"
)

// SweepSpec describes an (algorithm × seed × fleet-size) experiment grid.
// The zero value of Seeds and Fleets falls back to the base options'
// seed and fleet, so a spec with only Algorithms set compares dispatchers
// on one instance.
type SweepSpec struct {
	// Algorithms are dispatcher names accepted by NewDispatcher.
	Algorithms []string
	// Seeds are instance seeds; each seed is one generated problem
	// instance shared by every algorithm and fleet size.
	Seeds []int64
	// Fleets are driver counts (Options.NumDrivers values).
	Fleets []int
	// Workers bounds the parallel runs; 0 means GOMAXPROCS, 1 runs the
	// grid sequentially. Results are identical either way: each point is
	// an independent deterministic simulation, and results are returned
	// in grid order regardless of completion order.
	Workers int
	// Mode and Model select the demand-forecast source for every point.
	// In PredictModel mode Model must be a factory returning a fresh
	// untrained predictor: one instance is trained per seed (training
	// mutates the model) and then shared read-only across that seed's
	// points.
	Mode  PredictionMode
	Model func() predict.Predictor
	// Orders, when set, replays this fixed external trace for every
	// cell instead of generating a day from the city; seeds then vary
	// only the sampled fleet starts (and, in PredictModel mode, the
	// training history).
	Orders []trace.Order
	// Starts optionally pins the fleet's start positions for an Orders
	// replay. When set, Fleets defaults to {len(Starts)} and every
	// requested fleet size must equal len(Starts).
	Starts []geo.Point
}

func (s SweepSpec) withDefaults(base Options) SweepSpec {
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{base.Seed}
	}
	if len(s.Fleets) == 0 {
		if s.Starts != nil {
			s.Fleets = []int{len(s.Starts)}
		} else {
			s.Fleets = []int{base.withDefaults().NumDrivers}
		}
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	return s
}

// SweepPoint identifies one cell of the grid.
type SweepPoint struct {
	Algorithm string
	Seed      int64
	Fleet     int
}

// SweepResult is one completed cell: its metrics on success, or the
// first error that stopped it.
type SweepResult struct {
	SweepPoint
	Metrics *sim.Metrics
	Err     error
}

// Sweep executes every (algorithm, seed, fleet) combination of the spec
// over the base options on a bounded worker pool. Each (seed, fleet)
// problem instance — trace, fleet starts, oracle intensities — is
// materialized once and shared read-only by that instance's algorithm
// cells, and in PredictModel mode each seed additionally shares one
// built history and trained predictor via ShareFrom, so sweeps never
// regenerate a day trace or months of history per cell.
//
// Results come back in grid order — seeds outermost, then fleets, then
// algorithms — independent of scheduling, and each cell's Metrics are
// identical to a sequential run of that cell (see sim.Metrics.Summary
// for the determinism contract; wall-clock BatchSeconds vary). Canceling
// ctx stops in-flight runs and returns the context error; per-cell
// failures land in SweepResult.Err without aborting other cells.
func Sweep(ctx context.Context, base Options, spec SweepSpec) ([]SweepResult, error) {
	spec = spec.withDefaults(base)
	for _, alg := range spec.Algorithms {
		if _, err := NewDispatcher(alg, 0); err != nil {
			return nil, err
		}
	}
	if len(spec.Algorithms) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one algorithm")
	}
	// Every cell of the grid runs one shared coster instance: resolve
	// the nil default here rather than per cell inside sim.Config.
	// (The default is stateless, so this only pins down the sharing
	// contract; a user-supplied coster — e.g. a road network, whose
	// snap index and tree cache then warm across the grid — is shared
	// by construction through base.Coster. Costers must be safe for
	// concurrent use; both built-ins are.)
	if base.Coster == nil {
		base.Coster = roadnet.NewDefaultCoster()
	}
	if spec.Mode == PredictModel && spec.Model == nil {
		return nil, fmt.Errorf("core: PredictModel sweep requires a model factory")
	}
	if spec.Starts != nil {
		if spec.Orders == nil {
			return nil, fmt.Errorf("core: sweep Starts requires Orders")
		}
		for _, fleet := range spec.Fleets {
			if fleet != len(spec.Starts) {
				return nil, fmt.Errorf("core: sweep fleet %d != %d pinned starts", fleet, len(spec.Starts))
			}
		}
	}

	cellOptions := func(p SweepPoint) Options {
		o := base
		o.Seed = p.Seed
		o.NumDrivers = p.Fleet
		// Per-run hooks don't carry into sweep cells: a shared Observer
		// would be invoked from every worker goroutine at once with no
		// cell identity, and pacing is a live-serving concern that would
		// throttle each cell to wall-clock speed.
		o.Observer = nil
		o.PaceFactor = 0
		return o
	}

	// Materialize each (seed, fleet) instance once, concurrently. The
	// instance runner is never Run directly; cells fork it.
	type instKey struct {
		seed  int64
		fleet int
	}
	instances := make(map[instKey]*Runner, len(spec.Seeds)*len(spec.Fleets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, spec.Workers)
	for _, seed := range spec.Seeds {
		for _, fleet := range spec.Fleets {
			k := instKey{seed, fleet}
			if _, ok := instances[k]; ok || ctx.Err() != nil {
				continue
			}
			r := &Runner{}
			instances[k] = r
			wg.Add(1)
			go func(k instKey, dst *Runner) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				o := cellOptions(SweepPoint{Seed: k.seed, Fleet: k.fleet})
				if spec.Orders != nil {
					*dst = *NewRunnerForTrace(o, spec.Orders, spec.Starts)
				} else {
					*dst = *NewRunner(o)
				}
			}(k, r)
		}
	}
	wg.Wait()

	// In PredictModel mode, build one history and trained predictor per
	// seed on that seed's first instance; the other modes never touch
	// history (the oracle reads precomputed intensities).
	type seedBase struct {
		runner *Runner
		model  predict.Predictor
		err    error
	}
	bases := make(map[int64]*seedBase, len(spec.Seeds))
	if spec.Mode == PredictModel && ctx.Err() == nil {
		for _, seed := range spec.Seeds {
			if _, ok := bases[seed]; ok {
				continue
			}
			sb := &seedBase{runner: instances[instKey{seed, spec.Fleets[0]}]}
			bases[seed] = sb
			wg.Add(1)
			go func(sb *seedBase) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				sb.model, sb.err = sb.runner.TrainedPredictor(spec.Model())
			}(sb)
		}
		wg.Wait()
	}

	type job struct {
		idx   int
		point SweepPoint
	}
	var jobs []job
	for _, seed := range spec.Seeds {
		for _, fleet := range spec.Fleets {
			for _, alg := range spec.Algorithms {
				jobs = append(jobs, job{idx: len(jobs), point: SweepPoint{Algorithm: alg, Seed: seed, Fleet: fleet}})
			}
		}
	}
	results := make([]SweepResult, len(jobs))

	jobCh := make(chan job)
	var workers sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range jobCh {
				res := SweepResult{SweepPoint: j.point}
				sb := bases[j.point.Seed]
				switch {
				case ctx.Err() != nil:
					res.Err = ctx.Err()
				case sb != nil && sb.err != nil:
					res.Err = sb.err
				default:
					runner := instances[instKey{j.point.Seed, j.point.Fleet}].fork()
					var model predict.Predictor
					if sb != nil {
						runner.ShareFrom(sb.runner)
						model = sb.model
					}
					if base.Shards > 0 {
						// Shard-aware cells: each runs the partitioned
						// runtime (its shards step on their own
						// goroutines, inside this worker's slot).
						res.Metrics, res.Err = runner.RunSharded(ctx, j.point.Algorithm, spec.Mode, model)
					} else if d, err := NewDispatcher(j.point.Algorithm, j.point.Seed); err != nil {
						res.Err = err
					} else {
						res.Metrics, res.Err = runner.Run(ctx, d, spec.Mode, model)
					}
				}
				results[j.idx] = res
			}
		}()
	}
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			// Mark unscheduled cells canceled; in-flight runs notice the
			// cancellation at their next batch.
			results[j.idx] = SweepResult{SweepPoint: j.point, Err: ctx.Err()}
		}
	}
	close(jobCh)
	workers.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}
