package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mrvd/internal/predict"
	"mrvd/internal/sim"
)

func sweepSpec(workers int) SweepSpec {
	return SweepSpec{
		Algorithms: []string{"IRG", "NEAR", "RAND"},
		Seeds:      []int64{1, 2},
		Fleets:     []int{20, 40},
		Workers:    workers,
		Mode:       PredictOracle,
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	opts := testOptions()
	opts.Horizon = 2 * 3600
	seq, err := Sweep(context.Background(), opts, sweepSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(context.Background(), opts, sweepSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) != 3*2*2 {
		t.Fatalf("result counts: seq=%d par=%d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].SweepPoint != par[i].SweepPoint {
			t.Fatalf("grid order diverged at %d: %+v vs %+v", i, seq[i].SweepPoint, par[i].SweepPoint)
		}
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("cell %v errored: seq=%v par=%v", seq[i].SweepPoint, seq[i].Err, par[i].Err)
		}
		// Byte-identical deterministic projections.
		a := fmt.Sprintf("%+v", seq[i].Metrics.Summary())
		b := fmt.Sprintf("%+v", par[i].Metrics.Summary())
		if a != b {
			t.Errorf("cell %+v diverged:\nseq: %s\npar: %s", seq[i].SweepPoint, a, b)
		}
	}
}

func TestSweepMatchesDirectRun(t *testing.T) {
	// Each sweep cell must equal a hand-rolled sequential Runner.Run of
	// the same point, history sharing and all.
	opts := testOptions()
	opts.Horizon = 2 * 3600
	spec := SweepSpec{Algorithms: []string{"IRG"}, Seeds: []int64{3}, Fleets: []int{25}, Workers: 2, Mode: PredictOracle}
	res, err := Sweep(context.Background(), opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("sweep: %+v", res)
	}
	o := opts
	o.Seed = 3
	o.NumDrivers = 25
	d, _ := NewDispatcher("IRG", 3)
	want, err := NewRunner(o).Run(context.Background(), d, PredictOracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := fmt.Sprintf("%+v", res[0].Metrics.Summary())
	b := fmt.Sprintf("%+v", want.Summary())
	if a != b {
		t.Errorf("sweep cell != direct run:\nsweep:  %s\ndirect: %s", a, b)
	}
}

func TestSweepPredictModelSharesTraining(t *testing.T) {
	opts := testOptions()
	opts.Horizon = 3600
	spec := SweepSpec{
		Algorithms: []string{"IRG", "NEAR"},
		Seeds:      []int64{1},
		Fleets:     []int{20},
		Workers:    2,
		Mode:       PredictModel,
		Model:      func() predict.Predictor { return predict.HA{} },
	}
	res, err := Sweep(context.Background(), opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%+v: %v", r.SweepPoint, r.Err)
		}
		if r.Metrics.Served+r.Metrics.Reneged == 0 {
			t.Errorf("%+v: no outcomes", r.SweepPoint)
		}
	}
}

func TestSweepExternalTrace(t *testing.T) {
	// A fixed external trace replays in every cell; parity with a direct
	// NewRunnerWithOrders run of the same point.
	opts := testOptions()
	opts.Horizon = 2 * 3600
	orders := NewRunner(opts).Orders() // any fixed trace will do
	spec := SweepSpec{
		Algorithms: []string{"NEAR"},
		Seeds:      []int64{5},
		Fleets:     []int{15},
		Workers:    2,
		Mode:       PredictOracle,
		Orders:     orders,
	}
	res, err := Sweep(context.Background(), opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("sweep: %+v", res)
	}
	if res[0].Metrics.TotalOrders != len(orders) {
		t.Fatalf("TotalOrders = %d, want the external trace's %d", res[0].Metrics.TotalOrders, len(orders))
	}
	o := opts
	o.Seed = 5
	o.NumDrivers = 15
	rng := rand.New(rand.NewSource(5))
	starts := o.WithDefaults().City.InitialDrivers(15, orders, rng)
	d, _ := NewDispatcher("NEAR", 5)
	want, err := NewRunnerWithOrders(o, orders, starts).Run(context.Background(), d, PredictOracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := fmt.Sprintf("%+v", res[0].Metrics.Summary())
	b := fmt.Sprintf("%+v", want.Summary())
	if a != b {
		t.Errorf("external-trace sweep cell != direct run:\nsweep:  %s\ndirect: %s", a, b)
	}
}

func TestSweepStripsPerRunHooks(t *testing.T) {
	// A shared Observer would race across worker goroutines and pacing
	// would throttle cells to wall-clock speed; Sweep must run cells
	// unobserved and unpaced.
	events := 0
	opts := testOptions()
	opts.Horizon = 1800
	opts.Observer = sim.ObserverFuncs{BatchStart: func(sim.BatchStartEvent) { events++ }}
	opts.PaceFactor = 0.001 // would take ~50 wall minutes per batch if honored
	done := make(chan struct{})
	var res []SweepResult
	var err error
	go func() {
		defer close(done)
		res, err = Sweep(context.Background(), opts,
			SweepSpec{Algorithms: []string{"NEAR"}, Workers: 2, Mode: PredictOracle})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep appears paced; per-run hooks not stripped")
	}
	if err != nil || len(res) != 1 || res[0].Err != nil {
		t.Fatalf("sweep: %v %+v", err, res)
	}
	if events != 0 {
		t.Errorf("shared observer saw %d events; must be stripped from cells", events)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(context.Background(), testOptions(), SweepSpec{}); err == nil {
		t.Error("empty algorithm list accepted")
	}
	if _, err := Sweep(context.Background(), testOptions(), SweepSpec{Algorithms: []string{"BOGUS"}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Sweep(context.Background(), testOptions(), SweepSpec{Algorithms: []string{"IRG"}, Mode: PredictModel}); err == nil {
		t.Error("PredictModel without model factory accepted")
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Sweep(ctx, testOptions(), sweepSpec(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range res {
		if r.Err == nil {
			t.Errorf("cell %+v completed under canceled context", r.SweepPoint)
		}
	}
}
