package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"mrvd/internal/dispatch"
	"mrvd/internal/geo"
	"mrvd/internal/obs"
	"mrvd/internal/pool"
	"mrvd/internal/predict"
	"mrvd/internal/queueing"
	"mrvd/internal/roadnet"
	"mrvd/internal/shard"
	"mrvd/internal/sim"
	"mrvd/internal/stats"
	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

// PredictionMode selects where the framework's |^R_k| forecasts come
// from, mirroring the paper's -P (predicted) and -R (real demand)
// algorithm variants.
type PredictionMode int

// Prediction modes.
const (
	// PredictNone feeds zero forecasts: the queueing analysis sees only
	// the current batch.
	PredictNone PredictionMode = iota
	// PredictOracle feeds the workload's noiseless intensities — the
	// paper's "Real" column.
	PredictOracle
	// PredictModel feeds a trained predictor's forecasts computed from
	// realized counts strictly before each slot.
	PredictModel
)

// Options configures a Runner.
type Options struct {
	// City provides the workload; nil builds the default scaled NYC-like
	// city.
	City *workload.City
	// NumDrivers is the fleet size (default 100).
	NumDrivers int
	// Delta, TC, Horizon are the batch interval, scheduling window and
	// simulated span in seconds (defaults 3, 1200, 86400 — Table 2's
	// defaults).
	Delta, TC, Horizon float64
	// Coster prices travel (default Manhattan at 11 m/s).
	Coster roadnet.Coster
	// Seed drives instance randomness (trace sampling, driver starts).
	Seed int64
	// TrainDays is the history length for model-based prediction
	// (default MinLookbackDays+14). The test day is day TrainDays.
	TrainDays int
	// SlotSeconds is the prediction slot width (default 1800, the
	// paper's 30 minutes).
	SlotSeconds float64
	// Repositioner optionally relocates long-idle drivers (see
	// sim.Repositioner); nil keeps the paper's stay-at-dropoff behaviour.
	Repositioner sim.Repositioner
	// RepositionAfter is the idle threshold before repositioning fires.
	RepositionAfter float64
	// Observer, when set, receives engine lifecycle events during runs
	// (see sim.Observer) — streaming metrics export without post-hoc
	// Metrics scraping.
	Observer sim.Observer
	// PaceFactor throttles the batch loop to at most PaceFactor
	// simulated seconds per wall second (1 = real time, 0 = free-run);
	// see sim.Config.PaceFactor. Live RunSource serving with wall-clock
	// producers needs this.
	PaceFactor float64
	// CandidateCap, when positive, prices only the CandidateCap nearest
	// drivers per rider (sim.Config.CandidateCap) — the k-nearest
	// pre-filter that bounds per-order matching work for very large
	// fleets. 0 keeps the exact radius search.
	CandidateCap int
	// Scenario configures the disruption layer (rider cancellations,
	// driver declines, travel-time noise); the zero value keeps the
	// engine byte-identical to a scenario-free run. See
	// sim.ScenarioConfig.
	Scenario sim.ScenarioConfig
	// Pooling configures shared rides (see pool.Config): with Capacity
	// >= 2 busy drivers carry route plans and the batch prices
	// detour-bounded insertions alongside solo pairs. The zero value
	// keeps the engine byte-identical to a pooling-free run.
	Pooling pool.Config
	// Shards, when >= 1, runs on the partitioned multi-engine runtime
	// (internal/shard): the grid's regions are split across Shards
	// lockstep engines, each owning the fleet slice starting in its
	// territory. 0 (the default) runs the single unsharded engine.
	// Shards == 1 is contractually identical to unsharded.
	Shards int
	// Borrow selects the CandidateBorrow frontier policy for sharded
	// runs: orders whose owner shard has no available driver in reach
	// may be admitted by a neighbouring shard that does. The default
	// keeps strict region ownership.
	Borrow bool
	// ShardCosters optionally builds one coster per shard for sharded
	// runs — e.g. a road-network coster per shard so tree caches don't
	// contend. All instances must price identically. Nil shares Coster.
	ShardCosters func(shard int) roadnet.Coster
	// Obs wires the observability layer (metrics registry and order
	// tracer, see sim.ObsConfig) into every engine the runner builds.
	// The zero value keeps runs byte-identical to an uninstrumented
	// build.
	Obs sim.ObsConfig
}

// WithDefaults returns a copy of the options with every unset field
// replaced by its documented default.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.City == nil {
		o.City = workload.NewCity(workload.CityConfig{OrdersPerDay: 28000, Seed: 31})
	}
	if o.NumDrivers <= 0 {
		o.NumDrivers = 100
	}
	if o.Delta <= 0 {
		o.Delta = 3
	}
	if o.TC <= 0 {
		o.TC = 1200
	}
	if o.Horizon <= 0 {
		o.Horizon = 24 * 3600
	}
	if o.TrainDays <= 0 {
		o.TrainDays = predict.MinLookbackDays + 14
	}
	if o.SlotSeconds <= 0 {
		o.SlotSeconds = 1800
	}
	return o
}

// Runner owns one problem instance — a generated test day, a starting
// fleet, and cached prediction state — and executes dispatch algorithms
// over it (Algorithm 1).
type Runner struct {
	opts     Options
	orders   []trace.Order
	starts   []geo.Point
	expected [][]float64 // oracle slot x region intensities of the test day

	history    *predict.History // lazily built: train days + test day realized counts
	trainedSet map[string]predict.Predictor
}

// NewRunner materializes the problem instance: the test-day trace is
// generated from the city and drivers start at sampled pickup locations
// (the paper's initialization, Section 6.2).
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	orders := opts.City.GenerateDay(opts.TrainDays, rng)
	starts := opts.City.InitialDrivers(opts.NumDrivers, orders, rng)
	return NewRunnerWithOrders(opts, orders, starts)
}

// NewRunnerForTrace builds a runner replaying an external trace, with
// driver starts sampled from the trace's pickups using the options'
// seed when starts is nil. It is the one place that start-sampling
// recipe lives, so Run, Serve and Sweep position the same fleet for
// the same (trace, seed, fleet).
func NewRunnerForTrace(opts Options, orders []trace.Order, starts []geo.Point) *Runner {
	opts = opts.withDefaults()
	if starts == nil {
		rng := rand.New(rand.NewSource(opts.Seed))
		starts = opts.City.InitialDrivers(opts.NumDrivers, orders, rng)
	}
	return NewRunnerWithOrders(opts, orders, starts)
}

// NewRunnerWithOrders builds a runner over an externally supplied trace
// (e.g., a converted TLC extract) and explicit driver start positions.
// The city still provides the grid and the oracle/trained predictions.
func NewRunnerWithOrders(opts Options, orders []trace.Order, starts []geo.Point) *Runner {
	opts = opts.withDefaults()
	return &Runner{
		opts:       opts,
		orders:     orders,
		starts:     starts,
		expected:   opts.City.ExpectedDayCounts(opts.TrainDays, opts.SlotSeconds),
		trainedSet: make(map[string]predict.Predictor),
	}
}

// Orders exposes the test-day trace.
func (r *Runner) Orders() []trace.Order { return r.orders }

// Starts exposes the fleet's initial positions.
func (r *Runner) Starts() []geo.Point { return r.starts }

// Options returns the (defaulted) options.
func (r *Runner) Options() Options { return r.opts }

// History returns the runner's count history: the training days plus the
// test day's realized counts (predictors only read strictly-past cells,
// so appending the whole day is sound). It is built lazily and cached.
func (r *Runner) History() *predict.History { return r.ensureHistory() }

// fork returns a fresh runner over the same materialized instance:
// orders, starts and oracle intensities are shared (all read-only during
// runs), while the history pointer and predictor cache start empty so
// the fork trains and runs independently. Sweep forks one instance per
// cell instead of regenerating it.
func (r *Runner) fork() *Runner {
	return &Runner{
		opts:       r.opts,
		orders:     r.orders,
		starts:     r.starts,
		expected:   r.expected,
		trainedSet: make(map[string]predict.Predictor),
	}
}

// ShareFrom copies another runner's built history and trained predictors.
// Valid only when both runners use the same city, TrainDays, SlotSeconds
// and instance seed (so orders — and hence the appended test-day counts —
// are identical); it exists so parameter sweeps that vary only the fleet
// size or batch timing don't regenerate months of history per point.
func (r *Runner) ShareFrom(other *Runner) {
	r.history = other.history
	//mrvdlint:ignore maporder map-to-map copy; the resulting cache is identical whatever the visit order
	for k, v := range other.trainedSet {
		r.trainedSet[k] = v
	}
}

// ensureHistory builds the history on first use.
func (r *Runner) ensureHistory() *predict.History {
	if r.history != nil {
		return r.history
	}
	h := predict.GenerateHistory(r.opts.City, r.opts.TrainDays, r.opts.SlotSeconds, r.opts.Seed+1000)
	dayCounts := trace.CountPerSlot(r.orders, r.opts.City.Grid(), r.opts.SlotSeconds, float64(workload.DaySeconds))
	// CountPerSlot returns horizon/slot+1 rows; trim to the history's
	// slots-per-day shape.
	if len(dayCounts) > h.SlotsPerDay {
		dayCounts = dayCounts[:h.SlotsPerDay]
	}
	h.AppendDay(dayCounts, r.opts.City.DayMeta(r.opts.TrainDays))
	r.history = h
	return h
}

// TrainedPredictor returns a predictor trained on the runner's history,
// caching by model name. Training excludes the test day.
func (r *Runner) TrainedPredictor(m predict.Predictor) (predict.Predictor, error) {
	if p, ok := r.trainedSet[m.Name()]; ok {
		return p, nil
	}
	h := r.ensureHistory()
	if err := m.Train(h, r.opts.TrainDays); err != nil {
		return nil, fmt.Errorf("core: training %s: %w", m.Name(), err)
	}
	r.trainedSet[m.Name()] = m
	return m, nil
}

// windowCounts converts per-slot forecasts into expected counts for the
// window [now, now+tc], weighting each slot by its fractional overlap.
func windowCounts(now, tc, slotSeconds float64, numSlots int, slotCount func(slot, region int) float64, numRegions int) []int {
	out := make([]int, numRegions)
	acc := make([]float64, numRegions)
	end := now + tc
	firstSlot := int(now / slotSeconds)
	lastSlot := int(end / slotSeconds)
	for s := firstSlot; s <= lastSlot; s++ {
		slot := s
		if slot >= numSlots {
			slot = numSlots - 1
		}
		slotStart := float64(s) * slotSeconds
		slotEnd := slotStart + slotSeconds
		lo := now
		if slotStart > lo {
			lo = slotStart
		}
		hi := end
		if slotEnd < hi {
			hi = slotEnd
		}
		if hi <= lo {
			continue
		}
		frac := (hi - lo) / slotSeconds
		for k := 0; k < numRegions; k++ {
			acc[k] += frac * slotCount(slot, k)
		}
	}
	for k := range out {
		out[k] = int(acc[k] + 0.5)
	}
	return out
}

// predictFn builds the simulator's PredictRiders callback for a mode.
func (r *Runner) predictFn(mode PredictionMode, model predict.Predictor) (func(now, tc float64) []int, error) {
	grid := r.opts.City.Grid()
	n := grid.NumRegions()
	switch mode {
	case PredictNone:
		return nil, nil
	case PredictOracle:
		return func(now, tc float64) []int {
			return windowCounts(now, tc, r.opts.SlotSeconds, len(r.expected),
				func(slot, region int) float64 { return r.expected[slot][region] }, n)
		}, nil
	case PredictModel:
		if model == nil {
			return nil, fmt.Errorf("core: PredictModel requires a predictor")
		}
		trained, err := r.TrainedPredictor(model)
		if err != nil {
			return nil, err
		}
		h := r.ensureHistory()
		testDay := r.opts.TrainDays
		// Memoize per-slot forecasts: the callback fires every batch.
		// The mutex matters for sharded runs, where every shard's engine
		// calls the shared callback concurrently.
		var mu sync.Mutex
		cache := make(map[int][]float64)
		slotCount := func(slot, region int) float64 {
			mu.Lock()
			row, ok := cache[slot]
			if !ok {
				row = make([]float64, n)
				for k := 0; k < n; k++ {
					row[k] = trained.Predict(h, testDay, slot, k)
				}
				cache[slot] = row
			}
			mu.Unlock()
			return row[region]
		}
		return func(now, tc float64) []int {
			return windowCounts(now, tc, r.opts.SlotSeconds, h.SlotsPerDay, slotCount, n)
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown prediction mode %d", mode)
	}
}

// simConfig assembles the simulator configuration for one run.
func (r *Runner) simConfig(fn func(now, tc float64) []int) sim.Config {
	registerCosterMetrics(r.opts.Obs.Registry, r.opts.Coster)
	return sim.Config{
		Grid:            r.opts.City.Grid(),
		Coster:          r.opts.Coster,
		Delta:           r.opts.Delta,
		TC:              r.opts.TC,
		Horizon:         r.opts.Horizon,
		CandidateCap:    r.opts.CandidateCap,
		Scenario:        r.opts.Scenario,
		Pooling:         r.opts.Pooling,
		PredictRiders:   fn,
		Repositioner:    r.opts.Repositioner,
		RepositionAfter: r.opts.RepositionAfter,
		Observer:        r.opts.Observer,
		PaceFactor:      r.opts.PaceFactor,
		Obs:             r.opts.Obs,
	}
}

// costerStatser is the optional query-counter capability GraphCoster
// implements; anything exposing it gets its counters published.
type costerStatser interface{ Stats() roadnet.CosterStats }

// registerCosterMetrics publishes the aggregate query counters of every
// stats-capable coster in cs as counter functions on reg. The closures
// are evaluated at gather time, so /metrics always reads the live
// counters; re-registering (each simConfig call, or shardConfig
// swapping in per-shard costers) replaces the closure so the newest
// session's costers win. Costers without counters register nothing —
// the closed-form coster has no cache to observe.
func registerCosterMetrics(reg *obs.Registry, cs ...roadnet.Coster) {
	if reg == nil {
		return
	}
	var withStats []costerStatser
	for _, c := range cs {
		if s, ok := c.(costerStatser); ok {
			withStats = append(withStats, s)
		}
	}
	if len(withStats) == 0 {
		return
	}
	total := func() roadnet.CosterStats {
		var sum roadnet.CosterStats
		for _, s := range withStats {
			sum.Add(s.Stats())
		}
		return sum
	}
	reg.CounterFunc("mrvd_coster_trees_total",
		"Full shortest-path trees computed by single-pair Cost queries.",
		func() int64 { return total().Trees })
	reg.CounterFunc("mrvd_coster_partial_trees_total",
		"Dijkstra runs issued by batched Costs queries (truncated or promoted).",
		func() int64 { return total().PartialTrees })
	reg.CounterFunc("mrvd_coster_settled_nodes_total",
		"Nodes finalized across all Dijkstra runs.",
		func() int64 { return total().SettledNodes })
	reg.CounterFunc("mrvd_coster_cache_hits_total",
		"Coster queries answered from the shortest-path tree cache.",
		func() int64 { return total().CacheHits })
	reg.CounterFunc("mrvd_coster_cache_misses_total",
		"Coster queries that had to compute a tree (full or truncated).",
		func() int64 { s := total(); return s.Trees + s.PartialTrees })
	reg.CounterFunc("mrvd_coster_evictions_total",
		"Tree-cache entries displaced by the clock sweep.",
		func() int64 { return total().Evictions })
}

// Run executes one algorithm over the instance and returns its metrics.
// model is only consulted in PredictModel mode. The context cancels the
// run between batches (the run returns the context's error, wrapped).
func (r *Runner) Run(ctx context.Context, d sim.Dispatcher, mode PredictionMode, model predict.Predictor) (*sim.Metrics, error) {
	fn, err := r.predictFn(mode, model)
	if err != nil {
		return nil, err
	}
	return sim.New(r.simConfig(fn), r.orders, r.starts).Run(ctx, d)
}

// shardConfig assembles the partitioned-runtime configuration for one
// sharded run. The partition is demand-weighted: by the trace's pickup
// counts when the instance has one, else by the city's expected
// intensities — equal-area stripes would leave one shard with most of
// a hotspot city's load.
func (r *Runner) shardConfig(fn func(now, tc float64) []int) shard.Config {
	cfg := shard.Config{
		Sim:    r.simConfig(fn),
		Shards: r.opts.Shards,
	}
	grid := r.opts.City.Grid()
	if len(r.orders) > 0 {
		cfg.Weights = shard.OrderWeights(grid, r.orders)
	} else {
		w := make([]float64, grid.NumRegions())
		for _, row := range r.expected {
			for k, v := range row {
				w[k] += v
			}
		}
		cfg.Weights = w
	}
	if r.opts.Borrow {
		cfg.Policy = shard.CandidateBorrow
	}
	if r.opts.ShardCosters != nil {
		cfg.Costers = make([]roadnet.Coster, r.opts.Shards)
		for i := range cfg.Costers {
			cfg.Costers[i] = r.opts.ShardCosters(i)
		}
		registerCosterMetrics(r.opts.Obs.Registry, cfg.Costers...)
	}
	return cfg
}

// RunSharded executes one algorithm over the instance on the
// partitioned multi-engine runtime with opts.Shards shards. The
// aggregated metrics cover the whole city; a 1-shard run reproduces
// Run exactly (see internal/shard).
func (r *Runner) RunSharded(ctx context.Context, algorithm string, mode PredictionMode, model predict.Predictor) (*sim.Metrics, error) {
	fn, err := r.predictFn(mode, model)
	if err != nil {
		return nil, err
	}
	rt, err := shard.New(r.shardConfig(fn), sim.NewSliceSource(r.orders), r.starts)
	if err != nil {
		return nil, err
	}
	return rt.Run(ctx, ShardDispatchers(algorithm, r.opts.Seed, r.opts.Shards))
}

// ShardSession builds — but does not run — a sharded runtime over a
// live order source, with drain-stop semantics matching RunSource.
// It is the serving path's seam: the caller runs the returned runtime
// and can expose its per-shard Stats while the session is live.
func (r *Runner) ShardSession(src sim.OrderSource, starts []geo.Point, mode PredictionMode, model predict.Predictor) (*shard.Runtime, error) {
	fn, err := r.predictFn(mode, model)
	if err != nil {
		return nil, err
	}
	if starts == nil {
		starts = r.starts
	}
	cfg := r.shardConfig(fn)
	cfg.Sim.StopWhenDrained = true
	return shard.New(cfg, src, starts)
}

// ShardDispatchers returns the per-shard dispatcher factory for a
// sharded run: every shard gets a fresh instance (dispatchers are
// stateful), and stochastic dispatchers get decorrelated per-shard
// seeds forked with stats.SplitSeed. A 1-shard run keeps the parent
// seed so it reproduces the unsharded run exactly.
func ShardDispatchers(algorithm string, seed int64, shards int) func(shard int) (sim.Dispatcher, error) {
	return func(i int) (sim.Dispatcher, error) {
		s := seed
		if shards > 1 {
			s = stats.SplitSeed(seed, i)
		}
		return NewDispatcher(algorithm, s)
	}
}

// RunSource executes one algorithm over a streaming order source (e.g.
// a live sim.ChannelSource fed by Submit) instead of the runner's
// materialized trace, with the instance's grid, coster, timing and
// prediction configuration. The run ends at the horizon, when ctx is
// canceled, or — once src is exhausted — when no rider waits and no
// driver is busy.
func (r *Runner) RunSource(ctx context.Context, d sim.Dispatcher, mode PredictionMode, model predict.Predictor, src sim.OrderSource, starts []geo.Point) (*sim.Metrics, error) {
	fn, err := r.predictFn(mode, model)
	if err != nil {
		return nil, err
	}
	if starts == nil {
		starts = r.starts
	}
	cfg := r.simConfig(fn)
	cfg.StopWhenDrained = true
	return sim.NewWithSource(cfg, src, starts).Run(ctx, d)
}

// AlgorithmNames lists the dispatchers NewDispatcher accepts, in the
// paper's reporting order.
func AlgorithmNames() []string {
	return []string{"IRG", "LS", "SHORT", "LTG", "NEAR", "RAND", "POLAR", "UPPER", "POOL"}
}

// NewDispatcher builds a fresh dispatcher by name. Stateful dispatchers
// (RAND, POLAR) must not be shared across runs; call this per run.
func NewDispatcher(name string, seed int64) (sim.Dispatcher, error) {
	switch name {
	case "IRG":
		return &dispatch.IRG{Model: queueing.NewDefault()}, nil
	case "LS":
		return &dispatch.LS{Model: queueing.NewDefault()}, nil
	case "SHORT":
		return &dispatch.SHORT{Model: queueing.NewDefault()}, nil
	case "LTG":
		return dispatch.LTG{}, nil
	case "NEAR":
		return dispatch.NEAR{}, nil
	case "RAND":
		return &dispatch.RAND{Seed: seed}, nil
	case "POLAR":
		return &dispatch.POLAR{}, nil
	case "UPPER":
		return dispatch.UPPER{}, nil
	case "POOL":
		return dispatch.POOL{}, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
}
