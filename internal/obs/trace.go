package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
)

// Span is one order's lifecycle record: submitted, admitted to an
// engine, committed to a driver, picked up, and terminal (dropped
// off, canceled or reneged). Timestamps are engine seconds; WallMS is
// the only wall-clock field and never feeds a Summary, so tracing
// cannot perturb the determinism contracts.
type Span struct {
	Order   int64  `json:"order"`
	Outcome string `json:"outcome"` // served | canceled | reneged
	Shard   int    `json:"shard"`
	// Driver is the serving driver for served spans, -1 otherwise.
	Driver int64 `json:"driver"`
	// Shared marks a pooled insertion into an active route plan.
	Shared bool `json:"shared,omitempty"`

	SubmitAt  float64 `json:"submit_at"`
	AdmitAt   float64 `json:"admit_at"`
	CommitAt  float64 `json:"commit_at,omitempty"`
	PickupAt  float64 `json:"pickup_at,omitempty"`
	DropoffAt float64 `json:"dropoff_at,omitempty"`
	EndAt     float64 `json:"end_at"`

	// QueueSeconds is admit -> commit (or the terminal time when the
	// order was never committed); PickupSeconds is commit -> pickup and
	// TripSeconds pickup -> dropoff, both zero for unserved spans.
	QueueSeconds  float64 `json:"queue_seconds"`
	PickupSeconds float64 `json:"pickup_seconds,omitempty"`
	TripSeconds   float64 `json:"trip_seconds,omitempty"`

	// WallMS is the wall-clock time from admission to the terminal
	// event — how long the order lived inside the running process.
	WallMS float64 `json:"wall_ms"`
}

// Outcome values for Span.
const (
	OutcomeServed   = "served"
	OutcomeCanceled = "canceled"
	OutcomeReneged  = "reneged"
)

// Tracer serializes Spans as JSON lines to a writer. Emit is safe for
// concurrent use (sharded engines share one tracer); the first write
// error is retained and later emits become no-ops. Spans are encoded
// by hand into a buffer reused across emits — reflection-based JSON
// encoding dominated the enabled-tracing overhead in
// BenchmarkObsDispatch, and an order-lifecycle span is a closed shape.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	n   int64
	err error
}

// NewTracer returns a tracer writing one JSON object per line to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Emit writes one span.
func (t *Tracer) Emit(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.buf = appendSpan(t.buf[:0], &s)
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
		return
	}
	t.n++
}

// appendSpan renders s exactly as encoding/json would under the struct
// tags (including omitempty), one object per line. Outcome is one of
// the Outcome* constants, so string escaping is unnecessary.
func appendSpan(b []byte, s *Span) []byte {
	b = append(b, `{"order":`...)
	b = strconv.AppendInt(b, s.Order, 10)
	b = append(b, `,"outcome":"`...)
	b = append(b, s.Outcome...)
	b = append(b, `","shard":`...)
	b = strconv.AppendInt(b, int64(s.Shard), 10)
	b = append(b, `,"driver":`...)
	b = strconv.AppendInt(b, s.Driver, 10)
	if s.Shared {
		b = append(b, `,"shared":true`...)
	}
	b = appendF(b, `,"submit_at":`, s.SubmitAt)
	b = appendF(b, `,"admit_at":`, s.AdmitAt)
	if s.CommitAt != 0 {
		b = appendF(b, `,"commit_at":`, s.CommitAt)
	}
	if s.PickupAt != 0 {
		b = appendF(b, `,"pickup_at":`, s.PickupAt)
	}
	if s.DropoffAt != 0 {
		b = appendF(b, `,"dropoff_at":`, s.DropoffAt)
	}
	b = appendF(b, `,"end_at":`, s.EndAt)
	b = appendF(b, `,"queue_seconds":`, s.QueueSeconds)
	if s.PickupSeconds != 0 {
		b = appendF(b, `,"pickup_seconds":`, s.PickupSeconds)
	}
	if s.TripSeconds != 0 {
		b = appendF(b, `,"trip_seconds":`, s.TripSeconds)
	}
	b = appendF(b, `,"wall_ms":`, s.WallMS)
	return append(b, "}\n"...)
}

// appendF renders one float field. Whole values print as integers and
// the rest at three decimals: shortest-float formatting was the single
// largest cost of an enabled tracer, and millisecond resolution on
// engine seconds (microseconds on wall_ms) is beyond what the trace's
// consumers resolve.
func appendF(b []byte, key string, v float64) []byte {
	b = append(b, key...)
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'f', 3, 64)
}

// Count returns how many spans were written.
func (t *Tracer) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close closes the underlying writer when it is an io.Closer and
// returns the first error seen (write or close).
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.w.(io.Closer); ok {
		if err := c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
