package obs

import (
	"runtime"
	"sync"
	"time"
)

// procStats caches one runtime.ReadMemStats per short interval so a
// scrape plus a collector tick landing together don't pay the
// stop-the-world twice.
type procStats struct {
	mu      sync.Mutex
	at      time.Time
	mem     runtime.MemStats
	started time.Time
}

const procStatsTTL = 250 * time.Millisecond

func (p *procStats) snapshot() *runtime.MemStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now := time.Now(); now.Sub(p.at) > procStatsTTL {
		runtime.ReadMemStats(&p.mem)
		p.at = now
	}
	return &p.mem
}

// RegisterProcessMetrics registers the process-runtime gauge family
// on the registry: goroutine count, heap in use, cumulative GC pause
// seconds, and uptime since registration. All are pull metrics read
// at gather time — registering costs nothing between scrapes beyond
// one cached ReadMemStats per gather.
func RegisterProcessMetrics(r *Registry) {
	p := &procStats{started: time.Now()}
	r.GaugeFunc("process_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("process_heap_inuse_bytes", "Bytes in in-use heap spans.", func() float64 {
		return float64(p.snapshot().HeapInuse)
	})
	r.GaugeFunc("process_gc_pause_seconds_total", "Cumulative GC stop-the-world pause seconds.", func() float64 {
		return float64(p.snapshot().PauseTotalNs) / 1e9
	})
	r.GaugeFunc("process_uptime_seconds", "Seconds since process metrics were registered.", func() float64 {
		return time.Since(p.started).Seconds()
	})
}
