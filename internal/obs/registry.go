// Package obs is the framework's dependency-free observability layer:
// a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms, labeled families) with a Prometheus-text exporter, plus
// an order-lifecycle tracer emitting one JSON span per terminal order.
//
// The registry is built for the engine's nil-gate contract: every
// instrumented layer holds a nil *Registry when observability is off
// and pays only a pointer check. Enabled, all writers are lock-free
// atomics (histograms take no lock on Observe), so shard engines and
// HTTP handlers can share one registry without contending.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucket layout for sub-second
// phase timings (seconds): half-millisecond resolution at the bottom,
// multi-second tail for degraded rounds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// LatencyBuckets is the default layout for wall-clock request
// latencies (seconds), reaching into minutes for long-polled orders.
var LatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with exact
// (non-cumulative) per-bucket counts; the exposition writer emits the
// cumulative le-form Prometheus expects.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns per-bucket exact counts (len(bounds)+1, last is
// the +Inf overflow), total and sum, mutually consistent enough for
// exposition (each bucket is read once).
func (h *Histogram) snapshot() (buckets []int64, count int64, sum float64) {
	buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.Sum()
}

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric family: an unlabeled singleton or a set
// of labeled children, or a function metric evaluated at export.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64

	mu       sync.Mutex
	fn       func() float64      // function metrics; nil otherwise
	keys     []string            // insertion order of children
	children map[string]any      // labelKey -> *Counter | *Gauge | *Histogram
	labelSet map[string][]string // labelKey -> label values
}

// Registry is a concurrency-safe collection of metric families.
// Registration is get-or-create and idempotent: asking twice for the
// same name returns the same metric object, so independent layers
// (e.g. per-shard engines) can share one registry without
// coordination. Registering an existing name with a different kind or
// label arity panics — that is a programming error.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it on first use.
func (r *Registry) family(name, help, kind string, bounds []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels:   append([]string(nil), labels...),
			bounds:   append([]float64(nil), bounds...),
			children: make(map[string]any),
			labelSet: make(map[string][]string),
		}
		sort.Float64s(f.bounds)
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels, was %s/%d",
			name, kind, len(labels), f.kind, len(f.labels)))
	}
	return f
}

// child returns the family's metric for the given label values,
// creating it on first use. key "" is the unlabeled singleton.
func (f *family) child(values ...string) any {
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.bounds}
		h.counts = make([]atomic.Int64, len(f.bounds)+1)
		m = h
	}
	f.children[key] = m
	f.labelSet[key] = append([]string(nil), values...)
	f.keys = append(f.keys, key)
	return m
}

// labelKey joins label values into a map key; \xff cannot appear in a
// metric label, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// Counter returns the named unlabeled counter, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child().(*Counter)
}

// Gauge returns the named unlabeled gauge, registering it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child().(*Gauge)
}

// Histogram returns the named unlabeled histogram with the given
// bucket upper bounds (+Inf implicit), registering it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, buckets, nil).child().(*Histogram)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec returns the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values...).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the named labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values...).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the named labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, buckets, labels)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values...).(*Histogram)
}

// CounterFunc registers a counter whose value is fn() evaluated at
// gather time — for layers that keep their own atomic counters (the
// road-network coster) and should not import obs. Re-registering the
// same name replaces fn, so a new session's closures supersede a
// finished one's.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.family(name, help, kindCounter, nil, nil)
	f.mu.Lock()
	f.fn = func() float64 { return float64(fn()) }
	f.mu.Unlock()
}

// GaugeFunc registers a gauge evaluated at gather time; re-registering
// replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Sample is one gathered time series: label values (paired with the
// family's label names) and either a scalar Value or histogram state.
type Sample struct {
	Labels []string
	Value  float64
	// Histogram-only: exact (non-cumulative) per-bucket counts aligned
	// with Family.Bounds plus a final +Inf overflow bucket, total
	// count, and sum of observations.
	Buckets []int64
	Count   int64
	Sum     float64
}

// Family is one gathered metric family snapshot.
type Family struct {
	Name    string
	Help    string
	Kind    string
	Labels  []string
	Bounds  []float64
	Samples []Sample
}

// Quantile approximates the p-quantile (0 < p <= 1) of a histogram
// sample by the upper bound of the bucket holding the nearest-rank
// observation; the overflow bucket reports +Inf. Returns 0 when empty.
func (s Sample) Quantile(bounds []float64, p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Snapshot converts a histogram sample into a HistogramSnapshot over
// the family's bucket bounds, the form the time-series layer windows
// and interpolates quantiles from.
func (s Sample) Snapshot(bounds []float64) HistogramSnapshot {
	return HistogramSnapshot{Bounds: bounds, Buckets: s.Buckets, Count: s.Count, Sum: s.Sum}
}

// Gather snapshots every family, sorted by name (samples in first-use
// order) — the structured form behind WriteText and the CLI tables.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		g := Family{Name: f.name, Help: f.help, Kind: f.kind,
			Labels: f.labels, Bounds: f.bounds}
		f.mu.Lock()
		if f.fn != nil {
			g.Samples = append(g.Samples, Sample{Value: f.fn()})
		}
		for _, key := range f.keys {
			s := Sample{Labels: f.labelSet[key]}
			switch m := f.children[key].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Buckets, s.Count, s.Sum = m.snapshot()
			}
			g.Samples = append(g.Samples, s)
		}
		f.mu.Unlock()
		out = append(out, g)
	}
	return out
}

// WriteText writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, cumulative le-form
// histogram buckets with _sum and _count, escaped label values.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.Gather() {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if err := writeSample(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, f Family, s Sample) error {
	if f.Kind != kindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.Name, labelString(f.Labels, s.Labels, "", ""), formatValue(s.Value))
		return err
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		le := "+Inf"
		if i < len(f.Bounds) {
			le = formatValue(f.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.Name, labelString(f.Labels, s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.Name, labelString(f.Labels, s.Labels, "", ""), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.Name, labelString(f.Labels, s.Labels, "", ""), s.Count)
	return err
}

// labelString renders {k="v",...}; extraName/extraValue append one
// more pair (the histogram le). Empty when there are no pairs.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes backslash, quote and newline the way the
		// exposition format requires.
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
