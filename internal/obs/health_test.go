package obs

import (
	"testing"
	"time"
)

// gaugeCollector builds a collector over one gauge and a single rule,
// returning a step function that sets the gauge and ticks one window.
func gaugeCollector(t *testing.T, rule Rule) (*Collector, func(v float64) State) {
	t.Helper()
	r := NewRegistry()
	g := r.Gauge("load", "load")
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Second, Windows: 8, Rules: []Rule{rule}})
	sec := int64(100)
	return c, func(v float64) State {
		g.Set(v)
		c.Tick(time.Unix(sec, 0))
		sec++
		return c.Health().Status
	}
}

func TestRuleBoundaryValueNeverFires(t *testing.T) {
	_, step := gaugeCollector(t, Rule{
		Name:   "ceiling",
		Metric: Selector{Family: "load", Stat: StatValue},
		Op:     ">", Threshold: 10,
	})
	// Exactly at the threshold, forever: strict comparison, no flap.
	for i := 0; i < 20; i++ {
		if st := step(10); st != StateOK {
			t.Fatalf("window %d: state %q at boundary value, want ok", i, st)
		}
	}
	if st := step(10.001); st != StateDegraded {
		t.Fatalf("state %q just past threshold, want degraded", st)
	}
}

func TestRuleHysteresisNoFlap(t *testing.T) {
	c, step := gaugeCollector(t, Rule{
		Name:   "ceiling",
		Metric: Selector{Family: "load", Stat: StatValue},
		Op:     ">", Threshold: 10, ClearThreshold: 5,
	})
	step(11) // fires
	if st := c.Health().Status; st != StateDegraded {
		t.Fatalf("state %q after breach, want degraded", st)
	}
	// Oscillating between 9 and 11: inside the hysteresis band, the
	// rule stays firing — no transition churn.
	for i := 0; i < 10; i++ {
		step(9)
		step(11)
	}
	h := c.Health()
	if h.Status != StateDegraded {
		t.Fatalf("state %q inside hysteresis band, want degraded", h.Status)
	}
	if len(h.Events) != 1 {
		t.Fatalf("events = %d, want exactly the initial firing (no flap)", len(h.Events))
	}
	// Only recovering past the clear threshold clears it.
	if st := step(5); st != StateOK {
		t.Fatalf("state %q at clear threshold, want ok", st)
	}
	h = c.Health()
	if len(h.Events) != 2 || h.Events[1].To != StateOK {
		t.Fatalf("events = %+v, want firing then clearing", h.Events)
	}
}

func TestRuleForAndClearStreaks(t *testing.T) {
	c, step := gaugeCollector(t, Rule{
		Name:   "ceiling",
		Metric: Selector{Family: "load", Stat: StatValue},
		Op:     ">", Threshold: 10, For: 3, Clear: 2,
		Severity: StateUnhealthy,
	})
	// Two breached windows then one ok: streak resets, never fires.
	step(11)
	step(11)
	if st := step(1); st != StateOK {
		t.Fatalf("state %q after broken streak, want ok", st)
	}
	// Three consecutive breaches fire at the configured severity.
	step(11)
	step(11)
	if st := step(11); st != StateUnhealthy {
		t.Fatalf("state %q after 3-window streak, want unhealthy", st)
	}
	// One recovered window is not enough to clear (Clear=2)...
	step(1)
	if st := step(11); st != StateUnhealthy {
		t.Fatalf("state %q after broken clear streak, want unhealthy", st)
	}
	step(1)
	if st := step(1); st != StateOK {
		t.Fatalf("state %q after 2-window recovery, want ok", st)
	}
	_ = c
}

func TestRuleMinSamplesFreezes(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("errs_total", "errors")
	c := NewCollector(CollectorConfig{
		Registry: r, Interval: time.Second, Windows: 8,
		Rules: []Rule{{
			Name:   "error-rate",
			Metric: Selector{Family: "errs_total", Stat: StatRate, Across: "sum"},
			Op:     ">", Threshold: 0.5, Window: 4, MinSamples: 10,
		}},
	})
	sec := int64(100)
	tick := func() {
		c.Tick(time.Unix(sec, 0))
		sec++
	}
	ctr.Add(1)
	tick() // first sight
	ctr.Add(4)
	tick() // rate 4/s over a 2-retained-window span but only 4 samples: frozen
	if st := c.Health().Status; st != StateOK {
		t.Fatalf("state %q with insufficient samples, want frozen ok", st)
	}
	// Enough observations: now it may fire.
	ctr.Add(20)
	tick()
	if st := c.Health().Status; st != StateDegraded {
		t.Fatalf("state %q with sufficient samples over threshold, want degraded", st)
	}
	// Traffic stops entirely: windows hold zero new samples, the rule
	// freezes in its firing state rather than silently clearing.
	for i := 0; i < 6; i++ {
		tick()
	}
	if st := c.Health().Status; st != StateDegraded {
		t.Fatalf("state %q after traffic stopped, want frozen degraded", st)
	}
}

func TestRuleRatioDenominator(t *testing.T) {
	r := NewRegistry()
	term := r.CounterVec("term_total", "terminal orders", "outcome")
	served := term.With("served")
	reneged := term.With("reneged")
	c := NewCollector(CollectorConfig{
		Registry: r, Interval: time.Second, Windows: 8,
		Rules: []Rule{{
			Name:   "serve-floor",
			Metric: Selector{Family: "term_total", Labels: map[string]string{"outcome": "served"}, Stat: StatRate},
			Denom:  &Selector{Family: "term_total", Stat: StatRate},
			Op:     "<", Threshold: 0.5, Window: 4, MinSamples: 4,
			Severity: StateUnhealthy,
		}},
	})
	sec := int64(100)
	tick := func() {
		c.Tick(time.Unix(sec, 0))
		sec++
	}
	served.Add(1)
	reneged.Add(1)
	tick() // first sight
	served.Add(8)
	reneged.Add(2)
	tick() // 80% served
	if st := c.Health().Status; st != StateOK {
		t.Fatalf("state %q at 80%% serve rate, want ok", st)
	}
	served.Add(1)
	reneged.Add(9)
	tick() // windowed ratio (8+1)/(10+10) = 45% < 50%
	if st := c.Health().Status; st != StateUnhealthy {
		t.Fatalf("state %q at 45%% windowed serve rate, want unhealthy", st)
	}
	h := c.Health()
	if len(h.Rules) != 1 || h.Rules[0].Value == nil {
		t.Fatalf("rule status = %+v", h.Rules)
	}
	if v := *h.Rules[0].Value; v < 0.44 || v > 0.46 {
		t.Errorf("rule value = %v, want ~0.45", v)
	}
}

func TestRuleShardImbalance(t *testing.T) {
	r := NewRegistry()
	rounds := r.HistogramVec("round_seconds", "round time", []float64{0.01, 0.1, 1}, "shard")
	c := NewCollector(CollectorConfig{
		Registry: r, Interval: time.Second, Windows: 8,
		Rules: []Rule{{
			Name:   "imbalance",
			Metric: Selector{Family: "round_seconds", Stat: StatMean, Across: "imbalance"},
			Op:     ">", Threshold: 2, Window: 4, MinSamples: 4,
		}},
	})
	sec := int64(100)
	tick := func() {
		c.Tick(time.Unix(sec, 0))
		sec++
	}
	s0, s1 := rounds.With("0"), rounds.With("1")
	s0.Observe(0.005)
	s1.Observe(0.005)
	tick() // first sight
	// Balanced shards.
	for i := 0; i < 4; i++ {
		s0.Observe(0.005)
		s1.Observe(0.006)
	}
	tick()
	if st := c.Health().Status; st != StateOK {
		t.Fatalf("state %q with balanced shards, want ok", st)
	}
	// max/mean of two samples caps at 2, so bring up a third shard to
	// make a straggler visible (an extra tick so its first-sight window
	// passes before it contributes data).
	s2 := rounds.With("2")
	s2.Observe(0.005)
	tick()
	for i := 0; i < 4; i++ {
		s0.Observe(0.005)
		s1.Observe(0.9)
		s2.Observe(0.005)
	}
	tick()
	if st := c.Health().Status; st != StateDegraded {
		t.Fatalf("state %q with straggler shard, want degraded (health=%+v)", st, c.Health())
	}
}

func TestHealthEventsCapped(t *testing.T) {
	c, step := gaugeCollector(t, Rule{
		Name:   "flappy",
		Metric: Selector{Family: "load", Stat: StatValue},
		Op:     ">", Threshold: 10,
	})
	for i := 0; i < maxHealthEvents+20; i++ {
		step(11) // fire
		step(1)  // clear
	}
	h := c.Health()
	if len(h.Events) != maxHealthEvents {
		t.Fatalf("events = %d, want capped at %d", len(h.Events), maxHealthEvents)
	}
}

func TestDefaultDispatchRules(t *testing.T) {
	rules := DefaultDispatchRules()
	if len(rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name] = true
		if r.Op != "<" && r.Op != ">" {
			t.Errorf("rule %s: bad op %q", r.Name, r.Op)
		}
		if r.MinSamples <= 0 || r.For <= 0 {
			t.Errorf("rule %s: must set MinSamples and For for anti-flap", r.Name)
		}
	}
	for _, want := range []string{"serve-rate-floor", "latency-p95-ceiling", "queue-depth-growth", "shard-round-imbalance"} {
		if !names[want] {
			t.Errorf("missing default rule %s", want)
		}
	}
	// The stock set over an idle registry stays ok (insufficient data
	// everywhere — absent families must not fire anything).
	r := NewRegistry()
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Second, Windows: 8, Rules: rules})
	for i := int64(0); i < 10; i++ {
		c.Tick(time.Unix(100+i, 0))
	}
	if st := c.Health().Status; st != StateOK {
		t.Fatalf("idle status = %q, want ok", st)
	}
}

func TestStateWorse(t *testing.T) {
	if s := StateOK.Worse(StateDegraded); s != StateDegraded {
		t.Errorf("worse(ok,degraded) = %q", s)
	}
	if s := StateUnhealthy.Worse(StateDegraded); s != StateUnhealthy {
		t.Errorf("worse(unhealthy,degraded) = %q", s)
	}
}
