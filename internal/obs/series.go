package obs

import (
	"math"
	"sync"
	"time"
)

// HistogramSnapshot is one histogram state over explicit bounds:
// either a cumulative Gather snapshot or a windowed delta between two
// of them. It is the unit the time-series collector rings and the SLO
// engine interpolates quantiles from.
type HistogramSnapshot struct {
	// Bounds are the sorted finite bucket upper bounds; Buckets holds
	// exact (non-cumulative) per-bucket counts, len(Bounds)+1 with a
	// final +Inf overflow bucket.
	Bounds  []float64
	Buckets []int64
	Count   int64
	Sum     float64
}

// Sub returns the windowed delta h - prev: per-bucket count deltas,
// count and sum. A counter reset (any bucket shrinking) yields h
// itself — the instrument restarted, so the current cumulative state
// is the best available window.
func (h HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Buckets) != len(h.Buckets) {
		return h
	}
	d := HistogramSnapshot{
		Bounds:  h.Bounds,
		Buckets: make([]int64, len(h.Buckets)),
		Count:   h.Count - prev.Count,
		Sum:     h.Sum - prev.Sum,
	}
	for i := range h.Buckets {
		d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
		if d.Buckets[i] < 0 {
			return h // reset
		}
	}
	if d.Count < 0 {
		return h
	}
	return d
}

// Merge accumulates other into h in place (bounds must match; Merge
// into a zero snapshot adopts other's shape).
func (h *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if h.Buckets == nil {
		h.Bounds = other.Bounds
		h.Buckets = append([]int64(nil), other.Buckets...)
		h.Count, h.Sum = other.Count, other.Sum
		return
	}
	if len(other.Buckets) != len(h.Buckets) {
		return
	}
	for i := range other.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear
// interpolation inside the bucket holding the rank — the
// histogram_quantile estimator, against Sample.Quantile's coarser
// nearest-rank bucket upper bound. The estimate always lands inside
// the owning bucket: lower bound (0 for the first bucket) < q <=
// upper bound. A rank in the +Inf overflow bucket reports the highest
// finite bound, and an empty snapshot reports NaN (unlike the
// registry's exposition path, the time-series layer distinguishes "no
// data this window" from a legitimate zero).
func (h HistogramSnapshot) Quantile(p float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cum int64
	for i, c := range h.Buckets {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate
			// toward; report the largest finite bound (or NaN when the
			// histogram has no finite buckets at all).
			if len(h.Bounds) == 0 {
				return math.NaN()
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Mean returns the windowed mean observation (NaN when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Series stat kinds, the derivation applied to a metric per window.
const (
	StatRate  = "rate"  // counter: per-second delta
	StatValue = "value" // gauge: instantaneous value
	StatDelta = "delta" // gauge: change across the rule window
	StatMean  = "mean"  // histogram: windowed sum/count
	StatP50   = "p50"   // histogram: interpolated windowed quantiles
	StatP95   = "p95"
	StatP99   = "p99"
)

// SeriesDump is one exported time series: the family it derives from,
// its label pairs, the derivation stat, and one point per retained
// window, oldest first. Missing windows (series appeared late, no
// observations for a quantile) are null.
type SeriesDump struct {
	Family string            `json:"family"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"` // counter | gauge | histogram
	Stat   string            `json:"stat"`
	Points []*float64        `json:"points"`
}

// TimeSeries is the collector's full ring-buffer dump — the
// GET /v1/timeseries payload and mrvd-top's feed.
type TimeSeries struct {
	// IntervalSeconds is the collection interval; Capacity the ring
	// size in windows; Windows the total windows collected since start
	// (>= len(Times) once the ring wraps).
	IntervalSeconds float64 `json:"interval_seconds"`
	Capacity        int     `json:"capacity"`
	Windows         int64   `json:"windows"`
	// Times are the retained window timestamps (unix seconds), oldest
	// first; every series' Points align with it.
	Times  []float64    `json:"times"`
	Series []SeriesDump `json:"series"`
	Health Health       `json:"health"`
}

// CollectorConfig parameterizes a Collector.
type CollectorConfig struct {
	// Registry is the metrics source (required).
	Registry *Registry
	// Interval is the collection period (default 1s).
	Interval time.Duration
	// Windows is the ring capacity (default 120 — two minutes of
	// history at the default interval).
	Windows int
	// Rules is the SLO rule set evaluated each window (may be empty).
	Rules []Rule
	// OnWindow, when set, receives one WindowSnapshot per collected
	// window — the gateway's SSE feed. Called outside the collector's
	// lock, on the collector goroutine (or the Tick caller).
	OnWindow func(WindowSnapshot)
}

// WindowSnapshot is the per-window push payload: the window's
// sequence number and wall time, the post-evaluation overall health
// state, any rule transitions this window fired, and the window's
// scalar values keyed "family{label=\"v\"}" (histograms contribute
// :p50/:p95/:p99/:mean/:rate entries). NaN values are omitted, so the
// map marshals cleanly.
type WindowSnapshot struct {
	Seq         int64              `json:"seq"`
	Time        float64            `json:"t"`
	State       State              `json:"state"`
	Transitions []HealthEvent      `json:"transitions,omitempty"`
	Values      map[string]float64 `json:"values,omitempty"`
}

// scalarSeries rings one counter or gauge sample's per-window value.
type scalarSeries struct {
	family     string
	kind       string
	labelNames []string
	labels     []string

	buf  []float64 // ring, NaN where absent
	prev float64   // last cumulative value (counters)
	seen bool
}

// histSeries rings one histogram sample's per-window bucket deltas.
type histSeries struct {
	family     string
	labelNames []string
	labels     []string
	bounds     []float64

	prev HistogramSnapshot // last cumulative state
	seen bool

	buckets [][]int64 // ring of per-window exact bucket deltas
	counts  []int64   // ring
	sums    []float64 // ring
}

// Collector snapshots a Registry on a fixed interval into preallocated
// ring buffers of per-window deltas — counter rates, gauge values and
// windowed histogram states — and evaluates an SLO rule set over them.
// It is one goroutine reading the registry's lock-free instruments on
// a ticker: hot dispatch paths never see it, and an engine run with a
// collector attached stays byte-identical to an uninstrumented one
// (BenchmarkTimeseriesDispatch pins both claims).
//
// Tick is exported so tests (and callers without a ticker) can drive
// collection deterministically; Start/Stop run the ticker goroutine.
type Collector struct {
	cfg      CollectorConfig
	interval float64 // seconds
	capacity int

	mu      sync.Mutex
	seq     int64     // windows collected
	times   []float64 // ring, unix seconds
	scalars []*scalarSeries
	hists   []*histSeries
	index   map[string]int // family\xffjoinedLabels -> index into scalars or hists
	rules   []ruleState
	events  []HealthEvent // most recent last, capped

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

const maxHealthEvents = 64

// NewCollector builds a collector; call Start (or drive Tick) to
// collect. Panics when cfg.Registry is nil — a collector without a
// source is a programming error, matching the registry's conventions.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Registry == nil {
		panic("obs: NewCollector requires a Registry")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 120
	}
	c := &Collector{
		cfg:      cfg,
		interval: cfg.Interval.Seconds(),
		capacity: cfg.Windows,
		times:    make([]float64, cfg.Windows),
		index:    make(map[string]int),
		rules:    make([]ruleState, len(cfg.Rules)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range c.rules {
		c.rules[i].state = StateOK
	}
	return c
}

// Start launches the collection goroutine. Safe to call once; use
// Stop to halt it. A stopped collector still serves Dump/Health.
func (c *Collector) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case now := <-t.C:
					c.Tick(now)
				}
			}
		}()
	})
}

// Stop halts the collection goroutine and waits for it to exit.
// Idempotent; a never-started collector stops immediately.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) }) // never started: nothing to wait for
	<-c.done
}

// Tick ingests one window at the given wall time: it gathers the
// registry, deltas every sample against the previous window into the
// rings, evaluates the rule set, and fires OnWindow.
func (c *Collector) Tick(now time.Time) {
	fams := c.cfg.Registry.Gather()
	wall := float64(now.UnixNano()) / 1e9

	c.mu.Lock()
	idx := int(c.seq % int64(c.capacity))
	c.times[idx] = wall
	// Pre-clear this window's slot: a series the registry no longer
	// reports (or that appears later) must not inherit a stale point
	// from the previous lap of the ring.
	for _, s := range c.scalars {
		s.buf[idx] = math.NaN()
	}
	for _, h := range c.hists {
		clearInt64(h.buckets[idx])
		h.counts[idx] = 0
		h.sums[idx] = math.NaN()
	}
	for fi := range fams {
		f := &fams[fi]
		for si := range f.Samples {
			c.ingest(idx, f, &f.Samples[si])
		}
	}
	c.seq++
	transitions := c.evaluateRules(wall)
	state := c.worstLocked()
	var snap WindowSnapshot
	if c.cfg.OnWindow != nil {
		snap = WindowSnapshot{
			Seq: c.seq - 1, Time: wall, State: state,
			Transitions: transitions,
			Values:      c.latestValuesLocked(idx),
		}
	}
	c.mu.Unlock()

	if c.cfg.OnWindow != nil {
		c.cfg.OnWindow(snap)
	}
}

func clearInt64(v []int64) {
	for i := range v {
		v[i] = 0
	}
}

// ingest folds one gathered sample into the window at ring index idx.
func (c *Collector) ingest(idx int, f *Family, s *Sample) {
	key := f.Name + "\xff" + labelKey(s.Labels)
	switch f.Kind {
	case kindHistogram:
		i, ok := c.index[key]
		if !ok {
			h := &histSeries{
				family:     f.Name,
				labelNames: f.Labels,
				labels:     append([]string(nil), s.Labels...),
				bounds:     f.Bounds,
				buckets:    make([][]int64, c.capacity),
				counts:     make([]int64, c.capacity),
				sums:       make([]float64, c.capacity),
			}
			for w := range h.buckets {
				h.buckets[w] = make([]int64, len(s.Buckets))
			}
			for w := range h.sums {
				h.sums[w] = math.NaN()
			}
			i = len(c.hists)
			c.hists = append(c.hists, h)
			c.index[key] = i
		}
		h := c.hists[i]
		cur := s.Snapshot(h.bounds)
		if h.seen {
			d := cur.Sub(h.prev)
			copy(h.buckets[idx], d.Buckets)
			h.counts[idx] = d.Count
			h.sums[idx] = d.Sum
		} else {
			// First sight: no previous cumulative state, so there is no
			// window delta — the slot stays empty rather than reporting
			// the whole history as one spike.
			h.seen = true
		}
		h.prev = cur

	default: // counter, gauge
		i, ok := c.index[key]
		if !ok {
			sc := &scalarSeries{
				family:     f.Name,
				kind:       f.Kind,
				labelNames: f.Labels,
				labels:     append([]string(nil), s.Labels...),
				buf:        make([]float64, c.capacity),
			}
			for w := range sc.buf {
				sc.buf[w] = math.NaN()
			}
			i = len(c.scalars)
			c.scalars = append(c.scalars, sc)
			c.index[key] = i
		}
		sc := c.scalars[i]
		if f.Kind == kindGauge {
			sc.buf[idx] = s.Value
			sc.seen = true
			return
		}
		// Counter: per-second rate of the window delta. A shrinking
		// counter is a reset — the restarted value is the whole delta.
		if sc.seen {
			delta := s.Value - sc.prev
			if delta < 0 {
				delta = s.Value
			}
			sc.buf[idx] = delta / c.interval
		}
		sc.prev = s.Value
		sc.seen = true
	}
}

// ringOrder returns the retained window count and a function mapping
// age (0 = newest) to ring index. Caller holds c.mu.
func (c *Collector) ringOrder() (n int, at func(age int) int) {
	n = c.capacity
	if c.seq < int64(n) {
		n = int(c.seq)
	}
	newest := int((c.seq - 1) % int64(c.capacity))
	return n, func(age int) int {
		i := newest - age
		if i < 0 {
			i += c.capacity
		}
		return i
	}
}

// windowHist merges a histogram series' last w windows into one
// snapshot. Caller holds c.mu.
func (h *histSeries) window(c *Collector, w int) HistogramSnapshot {
	n, at := c.ringOrder()
	if w > n {
		w = n
	}
	out := HistogramSnapshot{Bounds: h.bounds}
	if len(h.buckets) > 0 {
		out.Buckets = make([]int64, len(h.buckets[0]))
	}
	for age := 0; age < w; age++ {
		i := at(age)
		for b := range h.buckets[i] {
			out.Buckets[b] += h.buckets[i][b]
		}
		out.Count += h.counts[i]
		if !math.IsNaN(h.sums[i]) {
			out.Sum += h.sums[i]
		}
	}
	return out
}

// latestValuesLocked flattens the newest window into the OnWindow
// value map. Caller holds c.mu.
func (c *Collector) latestValuesLocked(idx int) map[string]float64 {
	vals := make(map[string]float64, len(c.scalars)+5*len(c.hists))
	for _, s := range c.scalars {
		if v := s.buf[idx]; !math.IsNaN(v) {
			vals[seriesKey(s.family, s.labelNames, s.labels, "")] = v
		}
	}
	for _, h := range c.hists {
		if h.counts[idx] == 0 {
			continue
		}
		win := HistogramSnapshot{Bounds: h.bounds, Buckets: h.buckets[idx], Count: h.counts[idx], Sum: h.sums[idx]}
		base := seriesKey(h.family, h.labelNames, h.labels, "")
		vals[base+":rate"] = float64(win.Count) / c.interval
		vals[base+":mean"] = win.Mean()
		vals[base+":p50"] = win.Quantile(0.50)
		vals[base+":p95"] = win.Quantile(0.95)
		vals[base+":p99"] = win.Quantile(0.99)
	}
	return vals
}

// seriesKey renders family{label="v"} plus an optional :stat suffix.
func seriesKey(family string, names, values []string, stat string) string {
	k := family + labelString(names, values, "", "")
	if stat != "" {
		k += ":" + stat
	}
	return k
}

// Dump exports every retained window: counter-rate and gauge-value
// series plus p50/p95/p99/mean/rate series per histogram, all aligned
// with Times, and the health snapshot.
func (c *Collector) Dump() TimeSeries {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, at := c.ringOrder()

	ts := TimeSeries{
		IntervalSeconds: c.interval,
		Capacity:        c.capacity,
		Windows:         c.seq,
		Times:           make([]float64, n),
		Health:          c.healthLocked(),
	}
	for age := 0; age < n; age++ {
		ts.Times[n-1-age] = c.times[at(age)]
	}
	point := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		p := v
		return &p
	}
	for _, s := range c.scalars {
		stat := StatRate
		if s.kind == kindGauge {
			stat = StatValue
		}
		d := SeriesDump{
			Family: s.family, Labels: labelMap(s.labelNames, s.labels),
			Kind: s.kind, Stat: stat, Points: make([]*float64, n),
		}
		for age := 0; age < n; age++ {
			d.Points[n-1-age] = point(s.buf[at(age)])
		}
		ts.Series = append(ts.Series, d)
	}
	for _, h := range c.hists {
		stats := []struct {
			name string
			fn   func(HistogramSnapshot) float64
		}{
			{StatRate, func(w HistogramSnapshot) float64 { return float64(w.Count) / c.interval }},
			{StatMean, HistogramSnapshot.Mean},
			{StatP50, func(w HistogramSnapshot) float64 { return w.Quantile(0.50) }},
			{StatP95, func(w HistogramSnapshot) float64 { return w.Quantile(0.95) }},
			{StatP99, func(w HistogramSnapshot) float64 { return w.Quantile(0.99) }},
		}
		dumps := make([]SeriesDump, len(stats))
		for si, st := range stats {
			dumps[si] = SeriesDump{
				Family: h.family, Labels: labelMap(h.labelNames, h.labels),
				Kind: kindHistogram, Stat: st.name, Points: make([]*float64, n),
			}
		}
		for age := 0; age < n; age++ {
			i := at(age)
			if h.counts[i] == 0 {
				continue // all five stay null for an empty window
			}
			win := HistogramSnapshot{Bounds: h.bounds, Buckets: h.buckets[i], Count: h.counts[i], Sum: h.sums[i]}
			for si, st := range stats {
				dumps[si].Points[n-1-age] = point(st.fn(win))
			}
		}
		ts.Series = append(ts.Series, dumps...)
	}
	return ts
}

func labelMap(names, values []string) map[string]string {
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]string, len(names))
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		m[n] = v
	}
	return m
}
