package obs

import (
	"strings"
	"testing"
)

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)

	want := map[string]bool{
		"process_goroutines":             false,
		"process_heap_inuse_bytes":       false,
		"process_gc_pause_seconds_total": false,
		"process_uptime_seconds":         false,
	}
	for _, f := range r.Gather() {
		if _, ok := want[f.Name]; !ok {
			continue
		}
		want[f.Name] = true
		if f.Kind != kindGauge {
			t.Errorf("%s: kind %q, want gauge", f.Name, f.Kind)
		}
		if len(f.Samples) != 1 {
			t.Errorf("%s: %d samples, want 1", f.Name, len(f.Samples))
			continue
		}
		v := f.Samples[0].Value
		switch f.Name {
		case "process_goroutines":
			if v < 1 {
				t.Errorf("goroutines = %v, want >= 1", v)
			}
		case "process_heap_inuse_bytes":
			if v <= 0 {
				t.Errorf("heap in use = %v, want > 0", v)
			}
		case "process_gc_pause_seconds_total", "process_uptime_seconds":
			if v < 0 {
				t.Errorf("%s = %v, want >= 0", f.Name, v)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("family %s not gathered", name)
		}
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "process_goroutines") {
		t.Error("exposition missing process_goroutines")
	}
}
