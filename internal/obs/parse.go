package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one time series read back from a text exposition.
type ParsedSample struct {
	// Name is the sample's full name, including a histogram's _bucket,
	// _sum or _count suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family read back from a text exposition.
type ParsedFamily struct {
	Name    string
	Type    string
	Samples []ParsedSample
}

// ParseText parses a Prometheus text-format exposition — the inverse
// of Registry.WriteText, strict enough to fail on malformed scrapes.
// It returns families keyed by name; histogram _bucket/_sum/_count
// samples attach to their base family. Used by the CLI phase tables
// and the e2e scrape checks.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	fam := func(name string) *ParsedFamily {
		f, ok := fams[name]
		if !ok {
			f = &ParsedFamily{Name: name}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				fam(fields[2]).Type = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.Type == "histogram" {
					base = trimmed
				}
				break
			}
		}
		fam(base).Samples = append(fam(base).Samples,
			ParsedSample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// parseSampleLine splits `name{k="v",...} value` (labels optional).
func parseSampleLine(line string) (string, map[string]string, float64, error) {
	var name, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		rest = line[i:]
	} else if i := strings.IndexAny(line, " \t"); i >= 0 {
		name = line[:i]
		rest = line[i:]
	} else {
		return "", nil, 0, fmt.Errorf("sample without value: %q", line)
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, labels)
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end:]
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}

// parseLabels consumes `{k="v",...}` from the front of s into out and
// returns how many bytes it consumed.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label set in %q", s)
		}
		key := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		j := i + 1
		var val strings.Builder
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[j+1])
				}
				j += 2
				continue
			}
			val.WriteByte(s[j])
			j++
		}
		if j >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		out[key] = val.String()
		i = j + 1
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// FamilyNames returns the parsed family names, sorted — convenient
// for error messages in scrape assertions.
func FamilyNames(fams map[string]*ParsedFamily) []string {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
