package obs

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"
	"time"
)

func tickAt(c *Collector, sec int64) { c.Tick(time.Unix(sec, 0)) }

func findSeries(ts TimeSeries, family, stat string, labels map[string]string) *SeriesDump {
	for i := range ts.Series {
		s := &ts.Series[i]
		if s.Family != family || s.Stat != stat {
			continue
		}
		if len(labels) != len(s.Labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
			}
		}
		if match {
			return s
		}
	}
	return nil
}

func TestCollectorCounterRateAndReset(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("reqs_total", "requests")
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Second, Windows: 8})

	ctr.Add(10)
	tickAt(c, 100) // first sight: no delta
	ctr.Add(30)
	tickAt(c, 101) // delta 30
	// Simulate a process restart: the counter shrinks.
	ctr.v.Store(5)
	tickAt(c, 102) // reset: the restarted value IS the window
	ctr.Add(7)
	tickAt(c, 103) // delta 7

	ts := c.Dump()
	s := findSeries(ts, "reqs_total", StatRate, nil)
	if s == nil {
		t.Fatalf("missing reqs_total rate series in %+v", ts.Series)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(s.Points))
	}
	if s.Points[0] != nil {
		t.Errorf("first-sight window should be null, got %v", *s.Points[0])
	}
	for i, want := range []float64{30, 5, 7} {
		p := s.Points[i+1]
		if p == nil || *p != want {
			t.Errorf("point[%d] = %v, want %v", i+1, p, want)
		}
	}
}

func TestCollectorRingWraparound(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Second, Windows: 4})

	for i := int64(0); i < 10; i++ {
		g.Set(float64(i))
		tickAt(c, 100+i)
	}
	ts := c.Dump()
	if ts.Windows != 10 || ts.Capacity != 4 {
		t.Fatalf("windows=%d capacity=%d, want 10/4", ts.Windows, ts.Capacity)
	}
	if len(ts.Times) != 4 {
		t.Fatalf("times len = %d, want 4", len(ts.Times))
	}
	// Oldest retained window is i=6 (t=106), newest i=9 (t=109).
	for i, wantT := range []float64{106, 107, 108, 109} {
		if ts.Times[i] != wantT {
			t.Errorf("times[%d] = %v, want %v", i, ts.Times[i], wantT)
		}
	}
	s := findSeries(ts, "depth", StatValue, nil)
	if s == nil {
		t.Fatal("missing depth series")
	}
	for i, want := range []float64{6, 7, 8, 9} {
		if s.Points[i] == nil || *s.Points[i] != want {
			t.Errorf("point[%d] = %v, want %v", i, s.Points[i], want)
		}
	}
}

// A series that appears after the ring has wrapped must not inherit
// stale points from instruments that stopped reporting.
func TestCollectorLateSeriesAndDisappearance(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("early", "appears first")
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Second, Windows: 3})

	g.Set(1)
	tickAt(c, 100)
	tickAt(c, 101)
	late := r.Gauge("late", "appears later")
	late.Set(42)
	g.Set(2)
	for i := int64(2); i < 6; i++ {
		tickAt(c, 100+i)
	}
	ts := c.Dump()
	l := findSeries(ts, "late", StatValue, nil)
	if l == nil {
		t.Fatal("missing late series")
	}
	for i, p := range l.Points {
		if p == nil || *p != 42 {
			t.Errorf("late point[%d] = %v, want 42", i, p)
		}
	}
}

func TestHistogramSnapshotSubReset(t *testing.T) {
	prev := HistogramSnapshot{Bounds: []float64{1, 2}, Buckets: []int64{5, 3, 1}, Count: 9, Sum: 12}
	cur := HistogramSnapshot{Bounds: []float64{1, 2}, Buckets: []int64{7, 3, 2}, Count: 12, Sum: 18}
	d := cur.Sub(prev)
	if d.Count != 3 || d.Sum != 6 || d.Buckets[0] != 2 || d.Buckets[1] != 0 || d.Buckets[2] != 1 {
		t.Errorf("delta = %+v", d)
	}
	// Reset: a shrinking bucket yields the current cumulative state.
	reset := HistogramSnapshot{Bounds: []float64{1, 2}, Buckets: []int64{1, 0, 0}, Count: 1, Sum: 0.5}
	d = reset.Sub(prev)
	if d.Count != 1 || d.Buckets[0] != 1 {
		t.Errorf("reset delta = %+v, want the current state back", d)
	}
}

// The interpolated quantile must land strictly inside the bucket whose
// upper bound the registry's exact nearest-rank Quantile reports.
func TestHistogramQuantileInterpolationPinned(t *testing.T) {
	bounds := []float64{0.1, 0.5, 1, 5, 10}
	s := Sample{Buckets: []int64{4, 10, 20, 5, 1, 0}, Count: 40, Sum: 31}
	h := s.Snapshot(bounds)

	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		exact := s.Quantile(bounds, p) // nearest-rank bucket upper bound
		interp := h.Quantile(p)
		if math.IsInf(exact, 1) {
			continue
		}
		if interp > exact {
			t.Errorf("p=%v: interpolated %v above exact bucket bound %v", p, interp, exact)
		}
		// Lower bound of the owning bucket.
		lo := 0.0
		for i, b := range bounds {
			if b == exact && i > 0 {
				lo = bounds[i-1]
			}
		}
		if interp <= lo {
			t.Errorf("p=%v: interpolated %v not above bucket lower bound %v", p, interp, lo)
		}
	}

	// Exact interpolation values, pinned: rank p*40 within bucket 2
	// (bounds 0.5..1, 20 entries, 14 cumulative before).
	got := h.Quantile(0.5) // rank 20 -> 0.5 + 0.5*(20-14)/20
	want := 0.5 + 0.5*6.0/20.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v", got, want)
	}

	// Overflow bucket reports the largest finite bound.
	over := HistogramSnapshot{Bounds: []float64{1, 2}, Buckets: []int64{0, 0, 5}, Count: 5}
	if q := over.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %v, want 2", q)
	}
	// Empty snapshot: NaN, distinguishing "no data" from zero.
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %v, want NaN", q)
	}
}

func TestCollectorHistogramWindows(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 4})
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Second, Windows: 8})

	h.Observe(0.5)
	h.Observe(1.5)
	tickAt(c, 100) // first sight
	h.Observe(3)
	h.Observe(3)
	tickAt(c, 101) // window: two obs in bucket (2,4]
	tickAt(c, 102) // empty window

	ts := c.Dump()
	rate := findSeries(ts, "lat_seconds", StatRate, nil)
	p95 := findSeries(ts, "lat_seconds", StatP95, nil)
	mean := findSeries(ts, "lat_seconds", StatMean, nil)
	if rate == nil || p95 == nil || mean == nil {
		t.Fatal("missing histogram-derived series")
	}
	if rate.Points[0] != nil {
		t.Errorf("first-sight histogram window should be null, got %v", *rate.Points[0])
	}
	if rate.Points[1] == nil || *rate.Points[1] != 2 {
		t.Errorf("window rate = %v, want 2", rate.Points[1])
	}
	if mean.Points[1] == nil || *mean.Points[1] != 3 {
		t.Errorf("window mean = %v, want 3", mean.Points[1])
	}
	if p95.Points[1] == nil || *p95.Points[1] <= 2 || *p95.Points[1] > 4 {
		t.Errorf("window p95 = %v, want in (2,4]", p95.Points[1])
	}
	if rate.Points[2] != nil || p95.Points[2] != nil || mean.Points[2] != nil {
		t.Error("empty window should dump null for all histogram stats")
	}
}

func TestCollectorDumpMarshalsToJSON(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "gauge").Set(1)
	h := r.Histogram("h_seconds", "hist", []float64{1})
	h.Observe(0.5)
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Second, Windows: 4})
	tickAt(c, 100)
	tickAt(c, 101)
	b, err := json.Marshal(c.Dump())
	if err != nil {
		t.Fatalf("Dump must marshal (no NaN may leak): %v", err)
	}
	var back TimeSeries
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Windows != 2 || len(back.Times) != 2 {
		t.Errorf("round-trip windows=%d times=%d", back.Windows, len(back.Times))
	}
}

func TestCollectorOnWindowValues(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("c_total", "counter")
	var snaps []WindowSnapshot
	c := NewCollector(CollectorConfig{
		Registry: r, Interval: time.Second, Windows: 4,
		OnWindow: func(w WindowSnapshot) { snaps = append(snaps, w) },
	})
	ctr.Add(5)
	tickAt(c, 100)
	ctr.Add(3)
	tickAt(c, 101)
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	if snaps[0].Seq != 0 || snaps[1].Seq != 1 {
		t.Errorf("seqs = %d,%d", snaps[0].Seq, snaps[1].Seq)
	}
	if snaps[1].State != StateOK {
		t.Errorf("state = %q", snaps[1].State)
	}
	if v, ok := snaps[1].Values["c_total"]; !ok || v != 3 {
		t.Errorf("values = %v, want c_total=3", snaps[1].Values)
	}
	if _, ok := snaps[0].Values["c_total"]; ok {
		t.Error("first-sight window must not report a counter rate")
	}
	if b, err := json.Marshal(snaps[1]); err != nil {
		t.Errorf("snapshot must marshal: %v (%s)", err, b)
	}
}

func TestCollectorStartStopNoLeak(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Add(1)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		c := NewCollector(CollectorConfig{Registry: r, Interval: time.Millisecond, Windows: 4})
		c.Start()
		time.Sleep(5 * time.Millisecond)
		c.Stop()
		c.Stop() // idempotent
	}
	// A never-started collector must stop immediately, not hang.
	NewCollector(CollectorConfig{Registry: r}).Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestCollectorConcurrentDump(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("busy_total", "busy")
	c := NewCollector(CollectorConfig{Registry: r, Interval: time.Millisecond, Windows: 16})
	c.Start()
	defer c.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			ctr.Add(1)
			c.Dump()
		}
	}()
	<-done
}
