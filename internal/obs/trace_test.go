package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTracerEmitsOneJSONLinePerSpan(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	tr.Emit(Span{Order: 1, Outcome: OutcomeServed, Driver: 3, SubmitAt: 1, AdmitAt: 2, EndAt: 10})
	tr.Emit(Span{Order: 2, Outcome: OutcomeReneged, Driver: -1, SubmitAt: 5, AdmitAt: 6, EndAt: 66})
	if tr.Count() != 2 {
		t.Fatalf("count = %d, want 2", tr.Count())
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		lines++
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %d not a span: %v\n%s", lines, err, sc.Text())
		}
		if sp.Outcome == "" || sp.Order == 0 && lines == 2 {
			t.Fatalf("line %d round-tripped empty: %+v", lines, sp)
		}
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestTracerRetainsFirstError(t *testing.T) {
	w := &failWriter{}
	tr := NewTracer(w)
	tr.Emit(Span{Order: 1})
	tr.Emit(Span{Order: 2})
	if tr.Err() == nil {
		t.Fatal("error not retained")
	}
	if tr.Count() != 0 {
		t.Fatalf("count = %d after failed writes, want 0", tr.Count())
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times, want 1 (later emits are no-ops)", w.n)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	tr := NewTracer(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Span{Order: int64(g*100 + i), Outcome: OutcomeServed})
			}
		}(g)
	}
	wg.Wait()
	if tr.Count() != 400 {
		t.Fatalf("count = %d, want 400", tr.Count())
	}
	mu.Lock()
	out := b.String()
	mu.Unlock()
	sc := bufio.NewScanner(strings.NewReader(out))
	var lines int
	for sc.Scan() {
		lines++
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("interleaved write corrupted line %d: %v", lines, err)
		}
	}
	if lines != 400 {
		t.Fatalf("wrote %d lines, want 400", lines)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
