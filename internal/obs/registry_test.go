package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "other help ignored")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	h1 := r.HistogramVec("y_seconds", "h", DefBuckets, "phase").With("a")
	h2 := r.HistogramVec("y_seconds", "h", DefBuckets, "phase").With("a")
	if h1 != h2 {
		t.Fatal("same name+label returned distinct histograms")
	}
	if h3 := r.HistogramVec("y_seconds", "h", DefBuckets, "phase").With("b"); h3 == h1 {
		t.Fatal("distinct labels shared one histogram")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestVecArityMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "help", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// exactly on a bucket's upper bound counts into that bucket (v <= le),
// matching the Prometheus text exposition contract.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.0000001, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 2} // (-inf,1], (1,2], (2,5], (5,+inf)
	buckets, count, sum := h.snapshot()
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if len(buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(buckets), len(want))
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, buckets[i], want[i])
		}
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 5 + 5.0000001 + 100
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}

	// The text form must carry cumulative counts: 2, 4, 5, 7.
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`b_seconds_bucket{le="1"} 2`,
		`b_seconds_bucket{le="2"} 4`,
		`b_seconds_bucket{le="5"} 5`,
		`b_seconds_bucket{le="+Inf"} 7`,
		`b_seconds_count 7`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

func TestSampleQuantileNearestRank(t *testing.T) {
	bounds := []float64{1, 2, 5}
	s := Sample{Buckets: []int64{5, 3, 1, 1}, Count: 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 1},           // rank 5 inside bucket 0
		{0.51, 2},           // rank 6 inside bucket 1
		{0.90, 5},           // rank 9 inside bucket 2
		{1.00, math.Inf(1)}, // rank 10 in the overflow bucket
		{0.01, 1},           // rank clamps to 1
	}
	for _, c := range cases {
		if got := s.Quantile(bounds, c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := (Sample{}).Quantile(bounds, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestRegistryConcurrentTorture hammers every metric kind from many
// goroutines while a scraper gathers and renders concurrently; run
// under -race it proves the lock discipline, and the final totals
// prove no increment was lost.
func TestRegistryConcurrentTorture(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg, scraperWG sync.WaitGroup
	stop := make(chan struct{})

	// Scraper: text rendering races the writers by design. It runs
	// until the workers join, so it waits on its own group.
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseText(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-run scrape unparseable: %v", err)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker re-registers its instruments: get-or-create
			// must hand all of them the same objects.
			c := r.Counter("t_ops_total", "ops")
			g := r.Gauge("t_depth", "depth")
			h := r.HistogramVec("t_seconds", "latency", DefBuckets, "phase").With("p")
			v := r.CounterVec("t_by_worker_total", "per worker", "w").With(string(rune('a' + w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 1000)
				v.Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()

	if got := r.Counter("t_ops_total", "ops").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("t_depth", "depth").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	h := r.HistogramVec("t_seconds", "latency", DefBuckets, "phase").With("p")
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestWriteTextParseTextRoundtrip renders one of every metric shape and
// reads it back through the strict parser.
func TestWriteTextParseTextRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_orders_total", "orders with \"quotes\" and\nnewline").Add(42)
	r.Gauge("rt_depth", "queue depth").Set(-1.5)
	r.CounterVec("rt_by_outcome_total", "outcomes", "outcome").With("served").Add(7)
	r.CounterVec("rt_by_outcome_total", "outcomes", "outcome").With("e\"sc\\aped\nvalue").Inc()
	h := r.HistogramVec("rt_seconds", "latency", []float64{0.1, 1}, "phase")
	h.With("dispatch").Observe(0.05)
	h.With("dispatch").Observe(0.5)
	h.With("apply").Observe(3)
	r.CounterFunc("rt_fn_total", "function counter", func() int64 { return 99 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, b.String())
	}

	checkValue := func(fam, sample string, labels map[string]string, want float64) {
		t.Helper()
		f := fams[fam]
		if f == nil {
			t.Fatalf("family %s missing (have %v)", fam, FamilyNames(fams))
		}
		for _, s := range f.Samples {
			if s.Name != sample {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				if s.Value != want {
					t.Errorf("%s%v = %v, want %v", sample, labels, s.Value, want)
				}
				return
			}
		}
		t.Errorf("sample %s%v not found in %s", sample, labels, fam)
	}

	checkValue("rt_orders_total", "rt_orders_total", nil, 42)
	checkValue("rt_depth", "rt_depth", nil, -1.5)
	checkValue("rt_by_outcome_total", "rt_by_outcome_total", map[string]string{"outcome": "served"}, 7)
	checkValue("rt_by_outcome_total", "rt_by_outcome_total", map[string]string{"outcome": "e\"sc\\aped\nvalue"}, 1)
	checkValue("rt_fn_total", "rt_fn_total", nil, 99)
	if f := fams["rt_seconds"]; f == nil || f.Type != "histogram" {
		t.Fatalf("rt_seconds family missing or untyped: %+v", fams["rt_seconds"])
	}
	checkValue("rt_seconds", "rt_seconds_count", map[string]string{"phase": "dispatch"}, 2)
	checkValue("rt_seconds", "rt_seconds_bucket", map[string]string{"phase": "dispatch", "le": "0.1"}, 1)
	checkValue("rt_seconds", "rt_seconds_bucket", map[string]string{"phase": "dispatch", "le": "+Inf"}, 2)
	checkValue("rt_seconds", "rt_seconds_bucket", map[string]string{"phase": "apply", "le": "1"}, 0)
	checkValue("rt_seconds", "rt_seconds_bucket", map[string]string{"phase": "apply", "le": "+Inf"}, 1)
}

// TestCounterFuncReplaced pins the re-registration contract: the newest
// closure wins, so a fresh session's costers supersede a finished one's.
func TestCounterFuncReplaced(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("cf_total", "h", func() int64 { return 1 })
	r.CounterFunc("cf_total", "h", func() int64 { return 2 })
	fams := r.Gather()
	for _, f := range fams {
		if f.Name == "cf_total" {
			if len(f.Samples) != 1 || f.Samples[0].Value != 2 {
				t.Fatalf("cf_total samples = %+v, want single value 2", f.Samples)
			}
			return
		}
	}
	t.Fatal("cf_total not gathered")
}
