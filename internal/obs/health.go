package obs

import (
	"fmt"
	"math"
	"strings"
)

// State is a health state — a rule's and the process's overall.
type State string

// Health states, ordered ok < degraded < unhealthy.
const (
	StateOK        State = "ok"
	StateDegraded  State = "degraded"
	StateUnhealthy State = "unhealthy"
)

// rank orders states by badness for worst-of aggregation.
func (s State) rank() int {
	switch s {
	case StateUnhealthy:
		return 2
	case StateDegraded:
		return 1
	}
	return 0
}

// Worse returns the worse of two states.
func (s State) Worse(o State) State {
	if o.rank() > s.rank() {
		return o
	}
	return s
}

// Selector names a windowed value derived from one metric family.
type Selector struct {
	// Family is the metric family name (e.g. "mrvd_orders_terminal_total").
	Family string
	// Labels restricts matching samples to those carrying every listed
	// pair; nil matches all of the family's samples.
	Labels map[string]string
	// Stat is the derivation: StatRate (counter), StatValue/StatDelta
	// (gauge), or StatMean/StatP50/StatP95/StatP99 (histogram).
	Stat string
	// Across combines multiple matching samples: "sum" (default — for
	// quantiles/means the matched windowed histograms are merged before
	// deriving), "max" (worst sample), or "imbalance" (max over mean of
	// the per-sample values — shard skew).
	Across string
}

// String renders the selector for rule status displays.
func (s Selector) String() string {
	var b strings.Builder
	b.WriteString(s.Stat)
	b.WriteByte('(')
	b.WriteString(s.Family)
	if len(s.Labels) > 0 {
		names := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			names = append(names, k)
		}
		// Deterministic order for tiny maps without importing sort's
		// weight here would still need sort; use it.
		sortStrings(names)
		b.WriteByte('{')
		for i, k := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
		}
		b.WriteByte('}')
	}
	b.WriteByte(')')
	if s.Across == "imbalance" || s.Across == "max" {
		return s.Across + "(" + b.String() + ")"
	}
	return b.String()
}

// Rule is one declarative SLO check, evaluated once per collected
// window over the collector's rings.
type Rule struct {
	// Name identifies the rule in health payloads and events.
	Name string
	// Metric selects the evaluated value; Denom, when set, divides it
	// (windowed ratio — e.g. served rate over total terminal rate).
	Metric Selector
	Denom  *Selector
	// Op is "<" (fire when value drops below Threshold — a floor) or
	// ">" (fire when it rises above — a ceiling). Comparison is strict:
	// a value exactly at the threshold never fires.
	Op        string
	Threshold float64
	// ClearThreshold widens the hysteresis band: a firing rule clears
	// only once the value recovers past it (>= for floors, <= for
	// ceilings). Zero means Threshold itself.
	ClearThreshold float64
	// Window is how many collected windows each evaluation aggregates
	// (default 1).
	Window int
	// MinSamples is the minimum underlying observation count in the
	// aggregated window (counter deltas, histogram counts, or the
	// denominator's count for ratios; retained windows for gauges).
	// Below it the evaluation is insufficient and the rule freezes in
	// its current state — a near-empty window neither fires nor clears.
	MinSamples int
	// For is how many consecutive breached evaluations fire the rule;
	// Clear how many consecutive recovered ones clear it (default: 1
	// and For respectively). Together with ClearThreshold this is the
	// anti-flap hysteresis.
	For   int
	Clear int
	// Severity is the state a firing rule contributes (default
	// StateDegraded).
	Severity State
}

func (r Rule) forWindows() int {
	if r.For <= 0 {
		return 1
	}
	return r.For
}

func (r Rule) clearWindows() int {
	if r.Clear <= 0 {
		return r.forWindows()
	}
	return r.Clear
}

func (r Rule) severity() State {
	if r.Severity == StateUnhealthy {
		return StateUnhealthy
	}
	return StateDegraded
}

func (r Rule) window() int {
	if r.Window <= 0 {
		return 1
	}
	return r.Window
}

// breached reports a strict threshold violation.
func (r Rule) breached(v float64) bool {
	if r.Op == "<" {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// recovered reports the value crossing back past the clear threshold.
func (r Rule) recovered(v float64) bool {
	clear := r.ClearThreshold
	if clear == 0 {
		clear = r.Threshold
	}
	if r.Op == "<" {
		return v >= clear
	}
	return v <= clear
}

// RuleStatus is one rule's current evaluation state.
type RuleStatus struct {
	Name     string `json:"name"`
	State    State  `json:"state"`
	Severity State  `json:"severity"`
	// Value is the rule's last evaluated value; null until the first
	// sufficient evaluation.
	Value     *float64 `json:"value,omitempty"`
	Threshold float64  `json:"threshold"`
	Op        string   `json:"op"`
	Metric    string   `json:"metric"`
	// Since is the wall time (unix seconds) of the last state
	// transition, zero while the rule has never transitioned.
	Since float64 `json:"since,omitempty"`
}

// HealthEvent records one rule transition (firing or clearing).
type HealthEvent struct {
	Rule  string  `json:"rule"`
	From  State   `json:"from"`
	To    State   `json:"to"`
	At    float64 `json:"at"` // unix seconds
	Value float64 `json:"value"`
}

// Health is the process's self-reported health: the worst firing
// rule's state, every rule's status, and recent transitions. It is
// the enriched /healthz payload.
type Health struct {
	Status State         `json:"status"`
	Rules  []RuleStatus  `json:"rules,omitempty"`
	Events []HealthEvent `json:"events,omitempty"`
}

// ruleState is a rule's evaluation state inside the collector.
type ruleState struct {
	state     State
	breachRun int
	okRun     int
	since     float64
	lastValue float64
	hasValue  bool
}

// evaluateRules runs every rule against the freshly ingested window
// and returns the transitions it fired. Caller holds c.mu.
func (c *Collector) evaluateRules(wall float64) []HealthEvent {
	var transitions []HealthEvent
	for i := range c.cfg.Rules {
		r := &c.cfg.Rules[i]
		st := &c.rules[i]
		v, samples, ok := c.evalRule(r)
		if ok {
			st.lastValue, st.hasValue = v, true
		}
		if !ok || samples < int64(r.MinSamples) {
			// Insufficient data: freeze. Neither streak advances, so a
			// quiet spell cannot fire a floor nor clear a real breach.
			continue
		}
		if st.state == StateOK {
			if r.breached(v) {
				st.breachRun++
				st.okRun = 0
				if st.breachRun >= r.forWindows() {
					transitions = append(transitions, c.transition(st, r.Name, r.severity(), wall, v))
				}
			} else {
				st.breachRun = 0
			}
		} else {
			if r.recovered(v) {
				st.okRun++
				st.breachRun = 0
				if st.okRun >= r.clearWindows() {
					transitions = append(transitions, c.transition(st, r.Name, StateOK, wall, v))
				}
			} else {
				st.okRun = 0
			}
		}
	}
	return transitions
}

// transition flips a rule's state, records the event, and returns it.
func (c *Collector) transition(st *ruleState, rule string, to State, wall, v float64) HealthEvent {
	ev := HealthEvent{Rule: rule, From: st.state, To: to, At: wall, Value: v}
	st.state = to
	st.since = wall
	st.breachRun, st.okRun = 0, 0
	c.events = append(c.events, ev)
	if len(c.events) > maxHealthEvents {
		c.events = c.events[len(c.events)-maxHealthEvents:]
	}
	return ev
}

// evalRule computes a rule's current value and its underlying sample
// count; ok is false when the selectors match no data.
func (c *Collector) evalRule(r *Rule) (v float64, samples int64, ok bool) {
	w := r.window()
	num, n, ok := c.evalSelector(r.Metric, w)
	if !ok {
		return 0, 0, false
	}
	samples = n
	v = num
	if r.Denom != nil {
		den, dn, dok := c.evalSelector(*r.Denom, w)
		if !dok || den == 0 {
			return 0, 0, false
		}
		v = num / den
		samples = dn
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, 0, false
	}
	return v, samples, true
}

// evalSelector derives one windowed value. Caller holds c.mu.
func (c *Collector) evalSelector(sel Selector, w int) (v float64, samples int64, ok bool) {
	switch sel.Stat {
	case StatMean, StatP50, StatP95, StatP99:
		return c.evalHistSelector(sel, w)
	default:
		return c.evalScalarSelector(sel, w)
	}
}

func quantileFor(stat string) float64 {
	switch stat {
	case StatP50:
		return 0.50
	case StatP95:
		return 0.95
	case StatP99:
		return 0.99
	}
	return math.NaN()
}

func (c *Collector) evalHistSelector(sel Selector, w int) (float64, int64, bool) {
	var merged HistogramSnapshot
	var per []float64 // per-sample values for max/imbalance
	var total int64
	for _, h := range c.hists {
		if h.family != sel.Family || !labelsMatch(sel.Labels, h.labelNames, h.labels) {
			continue
		}
		win := h.window(c, w)
		total += win.Count
		switch sel.Across {
		case "max", "imbalance":
			if win.Count > 0 {
				if sel.Stat == StatMean {
					per = append(per, win.Mean())
				} else {
					per = append(per, win.Quantile(quantileFor(sel.Stat)))
				}
			}
		default:
			merged.Merge(win)
		}
	}
	switch sel.Across {
	case "max":
		if len(per) == 0 {
			return 0, 0, false
		}
		m := per[0]
		for _, x := range per[1:] {
			m = math.Max(m, x)
		}
		return m, total, true
	case "imbalance":
		// max over mean of the per-sample values: 1.0 is perfectly
		// balanced; a straggler shard drives it up. Needs at least two
		// samples to mean anything.
		if len(per) < 2 {
			return 0, 0, false
		}
		var sum, max float64
		for _, x := range per {
			sum += x
			max = math.Max(max, x)
		}
		mean := sum / float64(len(per))
		if mean <= 0 {
			return 0, 0, false
		}
		return max / mean, total, true
	default:
		if merged.Count == 0 {
			return 0, 0, false
		}
		if sel.Stat == StatMean {
			return merged.Mean(), merged.Count, true
		}
		return merged.Quantile(quantileFor(sel.Stat)), merged.Count, true
	}
}

func (c *Collector) evalScalarSelector(sel Selector, w int) (float64, int64, bool) {
	n, at := c.ringOrder()
	if w > n {
		w = n
	}
	if w == 0 {
		return 0, 0, false
	}
	var per []float64
	var totalObs float64
	var windowsWithData int64
	for _, s := range c.scalars {
		if s.family != sel.Family || !labelsMatch(sel.Labels, s.labelNames, s.labels) {
			continue
		}
		switch sel.Stat {
		case StatDelta:
			// Gauge change across the window span: newest minus oldest
			// retained value inside the last w windows.
			newest, oldest := math.NaN(), math.NaN()
			for age := 0; age < w; age++ {
				x := s.buf[at(age)]
				if math.IsNaN(x) {
					continue
				}
				if math.IsNaN(newest) {
					newest = x
				}
				oldest = x
				windowsWithData++
			}
			if math.IsNaN(newest) {
				continue
			}
			per = append(per, newest-oldest)
		case StatValue:
			for age := 0; age < w; age++ {
				if x := s.buf[at(age)]; !math.IsNaN(x) {
					per = append(per, x)
					windowsWithData++
					break
				}
			}
		default: // StatRate
			var sum float64
			var any bool
			for age := 0; age < w; age++ {
				if x := s.buf[at(age)]; !math.IsNaN(x) {
					sum += x
					any = true
					windowsWithData++
				}
			}
			if !any {
				continue
			}
			rate := sum / float64(w)
			per = append(per, rate)
			totalObs += sum * c.interval // summed deltas = observation count
		}
	}
	if len(per) == 0 {
		return 0, 0, false
	}
	samples := windowsWithData
	if sel.Stat == StatRate {
		samples = int64(math.Round(totalObs))
	}
	switch sel.Across {
	case "max":
		m := per[0]
		for _, x := range per[1:] {
			m = math.Max(m, x)
		}
		return m, samples, true
	case "imbalance":
		if len(per) < 2 {
			return 0, 0, false
		}
		var sum, max float64
		for _, x := range per {
			sum += x
			max = math.Max(max, x)
		}
		mean := sum / float64(len(per))
		if mean <= 0 {
			return 0, 0, false
		}
		return max / mean, samples, true
	default:
		var sum float64
		for _, x := range per {
			sum += x
		}
		return sum, samples, true
	}
}

// labelsMatch reports whether the sample's label pairs carry every
// selector-required pair.
func labelsMatch(want map[string]string, names, values []string) bool {
	if len(want) == 0 {
		return true
	}
	for k, v := range want {
		found := false
		for i, n := range names {
			if n == k {
				found = i < len(values) && values[i] == v
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Health snapshots the rule states and recent transitions.
func (c *Collector) Health() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.healthLocked()
}

func (c *Collector) healthLocked() Health {
	h := Health{Status: c.worstLocked()}
	for i := range c.cfg.Rules {
		r := &c.cfg.Rules[i]
		st := &c.rules[i]
		rs := RuleStatus{
			Name: r.Name, State: st.state, Severity: r.severity(),
			Threshold: r.Threshold, Op: r.Op, Metric: r.Metric.String(),
			Since: st.since,
		}
		if st.hasValue {
			v := st.lastValue
			rs.Value = &v
		}
		h.Rules = append(h.Rules, rs)
	}
	h.Events = append(h.Events, c.events...)
	return h
}

// worstLocked folds the rule states into the overall status.
func (c *Collector) worstLocked() State {
	overall := StateOK
	for i := range c.rules {
		overall = overall.Worse(c.rules[i].state)
	}
	return overall
}

// sortStrings is a tiny insertion sort so Selector.String need not be
// on any hot path to justify importing sort here — it already is
// imported elsewhere in the package, but keep the helper trivial.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// DefaultDispatchRules is the stock SLO rule set for a dispatch
// session collected at ~1s windows, covering the four health
// questions the serving layer already measures:
//
//   - serve-rate floor: of the orders reaching a terminal state over
//     the last 30 windows, fewer than half served ⇒ unhealthy. Needs
//     20 terminal orders, breach 3 windows running, and clears only
//     back above 55% — so a single bad window, or an idle lull, never
//     flaps it.
//   - submit→terminal p95 ceiling: the gateway's windowed p95 latency
//     above 30s ⇒ degraded (clears below 20s).
//   - queue-depth growth: the waiting set growing by more than 200
//     riders across 30 windows ⇒ degraded — demand is outrunning the
//     fleet.
//   - shard round-time imbalance: the slowest shard's mean round time
//     above 3x the all-shard mean ⇒ degraded. Evaluates only on
//     sharded sessions (an unsharded run has no per-shard samples and
//     the rule stays ok).
//
// Thresholds are deliberately loose defaults for a paced real-time
// session; pass a custom set to CollectorConfig.Rules to tighten.
func DefaultDispatchRules() []Rule {
	return []Rule{
		{
			Name:   "serve-rate-floor",
			Metric: Selector{Family: "mrvd_orders_terminal_total", Labels: map[string]string{"outcome": OutcomeServed}, Stat: StatRate},
			Denom:  &Selector{Family: "mrvd_orders_terminal_total", Stat: StatRate},
			Op:     "<", Threshold: 0.5, ClearThreshold: 0.55,
			Window: 30, MinSamples: 20, For: 3, Clear: 3,
			Severity: StateUnhealthy,
		},
		{
			Name:   "latency-p95-ceiling",
			Metric: Selector{Family: "mrvd_submit_terminal_seconds", Stat: StatP95},
			Op:     ">", Threshold: 30, ClearThreshold: 20,
			Window: 30, MinSamples: 20, For: 3, Clear: 3,
			Severity: StateDegraded,
		},
		{
			Name:   "queue-depth-growth",
			Metric: Selector{Family: "mrvd_queue_depth", Stat: StatDelta},
			Op:     ">", Threshold: 200, ClearThreshold: 50,
			Window: 30, MinSamples: 2, For: 3, Clear: 3,
			Severity: StateDegraded,
		},
		{
			Name:   "shard-round-imbalance",
			Metric: Selector{Family: "mrvd_shard_round_seconds", Stat: StatMean, Across: "imbalance"},
			Op:     ">", Threshold: 3, ClearThreshold: 2,
			Window: 30, MinSamples: 10, For: 3, Clear: 3,
			Severity: StateDegraded,
		},
	}
}
