package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

// Config parameterizes one load run against a gateway.
type Config struct {
	// BaseURL locates the gateway, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Orders is the total number of submissions (default 200).
	Orders int
	// Concurrency is the worker (client) count (default 8).
	Concurrency int
	// Rate, when positive, paces submissions as a Poisson process with
	// this aggregate intensity (submissions/sec across all workers) —
	// the open-loop arrival model. 0 runs closed-loop: each worker
	// submits as soon as its previous order resolved. Like YCSB's
	// target-throughput mode, arrivals queue once every worker is
	// blocked on a long-poll, so the realized rate (Report.Throughput)
	// falls below Rate unless Concurrency covers rate x latency —
	// compare the two to detect saturation.
	Rate float64
	// Patience is the pickup patience stamped on each order, in engine
	// seconds (default 600).
	Patience float64
	// CancelFraction selects this share of submissions for a
	// rider-initiated cancellation mix: each selected order is submitted
	// without waiting, DELETEd after CancelAfter, and then polled to its
	// terminal state — exercising the gateway's DELETE /v1/orders/{id}
	// path under load. 0 disables the mix.
	CancelFraction float64
	// CancelAfter is the wall-clock delay between submitting a
	// cancel-marked order and issuing its DELETE (default 50ms). Orders
	// the engine assigns first win the race and count as assigned.
	CancelAfter time.Duration
	// City supplies the spatial order distribution: pickups and dropoffs
	// are drawn from one generated day of its demand (default: the
	// scaled NYC-like city at 2000 orders/day).
	City *workload.City
	// Seed drives the arrival process and spatial sampling (default 1).
	Seed int64
	// Timeout bounds each HTTP request, i.e. the longest a worker waits
	// for one order's outcome (default 120s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject a loopback one).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Orders <= 0 {
		c.Orders = 200
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Patience <= 0 {
		c.Patience = 600
	}
	if c.CancelFraction > 0 && c.CancelAfter <= 0 {
		c.CancelAfter = 50 * time.Millisecond
	}
	if c.City == nil {
		c.City = workload.NewCity(workload.CityConfig{OrdersPerDay: 2000, Seed: 17})
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Result is one submission's fate as the harness observed it.
type Result struct {
	ID int64 `json:"id"`
	// Status is assigned/expired/canceled/pending/rejected/error.
	Status  string        `json:"status"`
	Latency time.Duration `json:"-"`
	// LatencyMS mirrors Latency for the JSON report.
	LatencyMS float64 `json:"latency_ms"`
	// Shared marks a pooled assignment; DetourSeconds is its planned
	// detour (assigned orders against a pooling-enabled gateway only).
	Shared        bool    `json:"shared,omitempty"`
	DetourSeconds float64 `json:"detour_seconds,omitempty"`
}

// Report aggregates one load run.
type Report struct {
	Orders   int `json:"orders"`
	Assigned int `json:"assigned"`
	// AssignedShared/AssignedSolo split Assigned by pooled insertion
	// vs. dedicated trip; MeanDetourSeconds averages the planned detour
	// over the shared ones. All zero against a pooling-off gateway.
	AssignedShared    int     `json:"assigned_shared"`
	AssignedSolo      int     `json:"assigned_solo"`
	MeanDetourSeconds float64 `json:"mean_detour_seconds"`
	Expired           int     `json:"expired"`
	Canceled          int     `json:"canceled"` // rider-initiated (the DELETE mix)
	Pending           int     `json:"pending"`  // wait timed out while still pending
	Rejected          int     `json:"rejected_429"`
	Errors            int     `json:"errors"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	// Throughput counts completed submissions (any fate) per second.
	Throughput float64 `json:"throughput_per_sec"`
	// Latency summarizes submit-to-assignment wall latency over
	// long-polled orders that reached a terminal state (assigned or
	// expired). Cancel-mix orders are submitted without waiting and
	// polled, so they carry no comparable sample regardless of how the
	// DELETE race ends.
	Latency LatencySummary `json:"latency"`
	// Results lists every submission in completion order.
	Results []Result `json:"-"`
}

// submitBody mirrors the gateway's POST /v1/orders request.
type submitBody struct {
	Pickup          point   `json:"pickup"`
	Dropoff         point   `json:"dropoff"`
	PatienceSeconds float64 `json:"patience_seconds"`
}

type point struct {
	Lng float64 `json:"lng"`
	Lat float64 `json:"lat"`
}

// submitReply is the slice of the gateway's order response the harness
// reads.
type submitReply struct {
	ID         int64  `json:"id"`
	Status     string `json:"status"`
	Assignment *struct {
		Shared        bool    `json:"shared"`
		DetourSeconds float64 `json:"detour_seconds"`
	} `json:"assignment"`
}

// Run drives one load run and blocks until every order resolved (or
// ctx is canceled, which stops issuing new submissions).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	// The spatial workload: order endpoints from one generated day of
	// the city's demand, recycled if the run outlasts the day.
	rng := rand.New(rand.NewSource(cfg.Seed))
	endpoints := cfg.City.GenerateDay(0, rng)
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("load: city generated an empty day")
	}

	// The arrival process: a token channel the workers pull from. Open
	// loop (Rate > 0) releases tokens on exponential gaps — Poisson
	// arrivals, YCSB's target-throughput mode; closed loop releases
	// them all upfront.
	tokens := make(chan int, cfg.Orders)
	if cfg.Rate > 0 {
		go func() {
			arrivalRng := rand.New(rand.NewSource(cfg.Seed + 1))
			defer close(tokens)
			for i := 0; i < cfg.Orders; i++ {
				gap := time.Duration(arrivalRng.ExpFloat64() / cfg.Rate * float64(time.Second))
				select {
				case <-time.After(gap):
					tokens <- i
				case <-ctx.Done():
					return
				}
			}
		}()
	} else {
		for i := 0; i < cfg.Orders; i++ {
			tokens <- i
		}
		close(tokens)
	}

	var (
		hist    Histogram
		mu      sync.Mutex
		report  = &Report{}
		wg      sync.WaitGroup
		started = time.Now()
	)
	record := func(r Result) {
		mu.Lock()
		defer mu.Unlock()
		report.Results = append(report.Results, r)
		switch r.Status {
		case "assigned":
			report.Assigned++
			if r.Shared {
				report.AssignedShared++
			} else {
				report.AssignedSolo++
			}
		case "expired":
			report.Expired++
		case "canceled":
			report.Canceled++
		case "pending":
			report.Pending++
		case "rejected":
			report.Rejected++
		default:
			report.Errors++
		}
	}

	// The cancellation mix: which submissions the harness will DELETE,
	// decided upfront so the plan is deterministic in the seed.
	var cancelPlan []bool
	if cfg.CancelFraction > 0 {
		planRng := rand.New(rand.NewSource(cfg.Seed + 2))
		cancelPlan = make([]bool, cfg.Orders)
		for i := range cancelPlan {
			cancelPlan[i] = planRng.Float64() < cfg.CancelFraction
		}
	}

	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tokens {
				if ctx.Err() != nil {
					return
				}
				o := endpoints[i%len(endpoints)]
				if cancelPlan != nil && cancelPlan[i] {
					record(cancelOne(ctx, cfg, o))
				} else {
					record(submitOne(ctx, cfg, o, &hist))
				}
			}
		}()
	}
	wg.Wait()

	report.Orders = len(report.Results)
	report.ElapsedSeconds = time.Since(started).Seconds()
	if report.ElapsedSeconds > 0 {
		report.Throughput = float64(report.Orders) / report.ElapsedSeconds
	}
	report.Latency = hist.Summary()
	if report.AssignedShared > 0 {
		var detour float64
		for _, r := range report.Results {
			if r.Status == "assigned" && r.Shared {
				detour += r.DetourSeconds
			}
		}
		report.MeanDetourSeconds = detour / float64(report.AssignedShared)
	}
	for i := range report.Results {
		report.Results[i].LatencyMS = report.Results[i].Latency.Seconds() * 1000
	}
	return report, nil
}

// submitOne posts one order with ?wait=true and classifies the reply.
func submitOne(ctx context.Context, cfg Config, o trace.Order, hist *Histogram) Result {
	body, err := json.Marshal(submitBody{
		Pickup:          point{Lng: o.Pickup.Lng, Lat: o.Pickup.Lat},
		Dropoff:         point{Lng: o.Dropoff.Lng, Lat: o.Dropoff.Lat},
		PatienceSeconds: cfg.Patience,
	})
	if err != nil {
		return Result{Status: "error"}
	}
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		cfg.BaseURL+"/v1/orders?wait=true", bytes.NewReader(body))
	if err != nil {
		return Result{Status: "error"}
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return Result{Status: "error"}
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)

	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return Result{ID: -1, Status: "rejected"}
	}
	var reply submitReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return Result{Status: "error"}
	}
	switch reply.Status {
	case "assigned", "expired":
		hist.Observe(elapsed)
		r := Result{ID: reply.ID, Status: reply.Status, Latency: elapsed}
		if reply.Assignment != nil {
			r.Shared = reply.Assignment.Shared
			r.DetourSeconds = reply.Assignment.DetourSeconds
		}
		return r
	case "canceled_by_rider":
		// Another actor (a concurrent DELETE, the scenario's patience
		// model) canceled the order while we long-polled.
		return Result{ID: reply.ID, Status: "canceled", Latency: elapsed}
	case "pending":
		return Result{ID: reply.ID, Status: "pending", Latency: elapsed}
	default:
		return Result{ID: reply.ID, Status: "error"}
	}
}

// cancelOne drives the cancellation mix for one order: submit without
// waiting, DELETE after the configured delay, then poll the order view
// to its terminal state. Assignments that beat the DELETE count as
// assigned — the race is the scenario.
func cancelOne(ctx context.Context, cfg Config, o trace.Order) Result {
	body, err := json.Marshal(submitBody{
		Pickup:          point{Lng: o.Pickup.Lng, Lat: o.Pickup.Lat},
		Dropoff:         point{Lng: o.Dropoff.Lng, Lat: o.Dropoff.Lat},
		PatienceSeconds: cfg.Patience,
	})
	if err != nil {
		return Result{Status: "error"}
	}
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	start := time.Now()
	reply, code, err := doJSON(rctx, cfg, http.MethodPost, "/v1/orders", body)
	if err != nil {
		return Result{Status: "error"}
	}
	if code == http.StatusTooManyRequests {
		return Result{ID: -1, Status: "rejected"}
	}
	if code != http.StatusAccepted && code != http.StatusOK {
		return Result{Status: "error"}
	}

	select {
	case <-time.After(cfg.CancelAfter):
	case <-rctx.Done():
		return Result{ID: reply.ID, Status: "error"}
	}
	path := fmt.Sprintf("/v1/orders/%d", reply.ID)
	if _, _, err := doJSON(rctx, cfg, http.MethodDelete, path, nil); err != nil {
		return Result{ID: reply.ID, Status: "error"}
	}

	// Poll to the terminal state (the cancel is adjudicated at the
	// engine's next batch).
	for {
		view, code, err := doJSON(rctx, cfg, http.MethodGet, path, nil)
		if err != nil || code != http.StatusOK {
			return Result{ID: reply.ID, Status: "error"}
		}
		switch view.Status {
		case "canceled_by_rider":
			return Result{ID: reply.ID, Status: "canceled", Latency: time.Since(start)}
		case "assigned", "expired":
			r := Result{ID: reply.ID, Status: view.Status, Latency: time.Since(start)}
			if view.Assignment != nil {
				r.Shared = view.Assignment.Shared
				r.DetourSeconds = view.Assignment.DetourSeconds
			}
			return r
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-rctx.Done():
			return Result{ID: reply.ID, Status: "pending"}
		}
	}
}

// doJSON issues one request against the gateway and decodes the order
// reply when there is one.
func doJSON(ctx context.Context, cfg Config, method, path string, body []byte) (submitReply, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, cfg.BaseURL+path, rd)
	if err != nil {
		return submitReply{}, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return submitReply{}, 0, err
	}
	defer resp.Body.Close()
	var reply submitReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		io.Copy(io.Discard, resp.Body)
		return submitReply{}, resp.StatusCode, nil
	}
	return reply, resp.StatusCode, nil
}
