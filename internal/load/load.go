package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

// Config parameterizes one load run against a gateway.
type Config struct {
	// BaseURL locates the gateway, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Orders is the total number of submissions (default 200).
	Orders int
	// Concurrency is the worker (client) count (default 8).
	Concurrency int
	// Rate, when positive, paces submissions as a Poisson process with
	// this aggregate intensity (submissions/sec across all workers) —
	// the open-loop arrival model. 0 runs closed-loop: each worker
	// submits as soon as its previous order resolved. Like YCSB's
	// target-throughput mode, arrivals queue once every worker is
	// blocked on a long-poll, so the realized rate (Report.Throughput)
	// falls below Rate unless Concurrency covers rate x latency —
	// compare the two to detect saturation.
	Rate float64
	// Patience is the pickup patience stamped on each order, in engine
	// seconds (default 600).
	Patience float64
	// City supplies the spatial order distribution: pickups and dropoffs
	// are drawn from one generated day of its demand (default: the
	// scaled NYC-like city at 2000 orders/day).
	City *workload.City
	// Seed drives the arrival process and spatial sampling (default 1).
	Seed int64
	// Timeout bounds each HTTP request, i.e. the longest a worker waits
	// for one order's outcome (default 120s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject a loopback one).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Orders <= 0 {
		c.Orders = 200
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Patience <= 0 {
		c.Patience = 600
	}
	if c.City == nil {
		c.City = workload.NewCity(workload.CityConfig{OrdersPerDay: 2000, Seed: 17})
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Result is one submission's fate as the harness observed it.
type Result struct {
	ID      int64         `json:"id"`
	Status  string        `json:"status"` // assigned/expired/pending/rejected/error
	Latency time.Duration `json:"-"`
	// LatencyMS mirrors Latency for the JSON report.
	LatencyMS float64 `json:"latency_ms"`
}

// Report aggregates one load run.
type Report struct {
	Orders         int     `json:"orders"`
	Assigned       int     `json:"assigned"`
	Expired        int     `json:"expired"`
	Pending        int     `json:"pending"` // wait timed out while still pending
	Rejected       int     `json:"rejected_429"`
	Errors         int     `json:"errors"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Throughput counts completed submissions (any fate) per second.
	Throughput float64 `json:"throughput_per_sec"`
	// Latency summarizes submit-to-assignment wall latency over orders
	// that reached a terminal state (assigned or expired).
	Latency LatencySummary `json:"latency"`
	// Results lists every submission in completion order.
	Results []Result `json:"-"`
}

// submitBody mirrors the gateway's POST /v1/orders request.
type submitBody struct {
	Pickup          point   `json:"pickup"`
	Dropoff         point   `json:"dropoff"`
	PatienceSeconds float64 `json:"patience_seconds"`
}

type point struct {
	Lng float64 `json:"lng"`
	Lat float64 `json:"lat"`
}

// submitReply is the slice of the gateway's order response the harness
// reads.
type submitReply struct {
	ID     int64  `json:"id"`
	Status string `json:"status"`
}

// Run drives one load run and blocks until every order resolved (or
// ctx is canceled, which stops issuing new submissions).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	// The spatial workload: order endpoints from one generated day of
	// the city's demand, recycled if the run outlasts the day.
	rng := rand.New(rand.NewSource(cfg.Seed))
	endpoints := cfg.City.GenerateDay(0, rng)
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("load: city generated an empty day")
	}

	// The arrival process: a token channel the workers pull from. Open
	// loop (Rate > 0) releases tokens on exponential gaps — Poisson
	// arrivals, YCSB's target-throughput mode; closed loop releases
	// them all upfront.
	tokens := make(chan int, cfg.Orders)
	if cfg.Rate > 0 {
		go func() {
			arrivalRng := rand.New(rand.NewSource(cfg.Seed + 1))
			defer close(tokens)
			for i := 0; i < cfg.Orders; i++ {
				gap := time.Duration(arrivalRng.ExpFloat64() / cfg.Rate * float64(time.Second))
				select {
				case <-time.After(gap):
					tokens <- i
				case <-ctx.Done():
					return
				}
			}
		}()
	} else {
		for i := 0; i < cfg.Orders; i++ {
			tokens <- i
		}
		close(tokens)
	}

	var (
		hist    Histogram
		mu      sync.Mutex
		report  = &Report{}
		wg      sync.WaitGroup
		started = time.Now()
	)
	record := func(r Result) {
		mu.Lock()
		defer mu.Unlock()
		report.Results = append(report.Results, r)
		switch r.Status {
		case "assigned":
			report.Assigned++
		case "expired":
			report.Expired++
		case "pending":
			report.Pending++
		case "rejected":
			report.Rejected++
		default:
			report.Errors++
		}
	}

	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tokens {
				if ctx.Err() != nil {
					return
				}
				o := endpoints[i%len(endpoints)]
				record(submitOne(ctx, cfg, o, &hist))
			}
		}()
	}
	wg.Wait()

	report.Orders = len(report.Results)
	report.ElapsedSeconds = time.Since(started).Seconds()
	if report.ElapsedSeconds > 0 {
		report.Throughput = float64(report.Orders) / report.ElapsedSeconds
	}
	report.Latency = hist.Summary()
	for i := range report.Results {
		report.Results[i].LatencyMS = report.Results[i].Latency.Seconds() * 1000
	}
	return report, nil
}

// submitOne posts one order with ?wait=true and classifies the reply.
func submitOne(ctx context.Context, cfg Config, o trace.Order, hist *Histogram) Result {
	body, err := json.Marshal(submitBody{
		Pickup:          point{Lng: o.Pickup.Lng, Lat: o.Pickup.Lat},
		Dropoff:         point{Lng: o.Dropoff.Lng, Lat: o.Dropoff.Lat},
		PatienceSeconds: cfg.Patience,
	})
	if err != nil {
		return Result{Status: "error"}
	}
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		cfg.BaseURL+"/v1/orders?wait=true", bytes.NewReader(body))
	if err != nil {
		return Result{Status: "error"}
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return Result{Status: "error"}
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)

	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return Result{ID: -1, Status: "rejected"}
	}
	var reply submitReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return Result{Status: "error"}
	}
	switch reply.Status {
	case "assigned", "expired":
		hist.Observe(elapsed)
		return Result{ID: reply.ID, Status: reply.Status, Latency: elapsed}
	case "pending":
		return Result{ID: reply.ID, Status: "pending", Latency: elapsed}
	default:
		return Result{ID: reply.ID, Status: "error"}
	}
}
