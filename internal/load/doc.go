// Package load is a YCSB-style load harness for the HTTP dispatch
// gateway (internal/server): concurrent workers submit orders over real
// HTTP — spatially distributed like the synthetic city's demand, timed
// by a configurable arrival process — long-poll each order's terminal
// outcome, and report throughput plus p50/p95/p99 submit-to-assignment
// wall latencies. cmd/mrvd-load is the CLI; the e2e acceptance test
// drives it against an in-process gateway.
package load
