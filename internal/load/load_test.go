package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50MS < 49 || s.P50MS > 51 {
		t.Errorf("p50 = %v, want ~50", s.P50MS)
	}
	if s.P95MS < 94 || s.P95MS > 96 {
		t.Errorf("p95 = %v, want ~95", s.P95MS)
	}
	if s.P99MS < 98 || s.P99MS > 100 {
		t.Errorf("p99 = %v, want ~99", s.P99MS)
	}
	if s.MaxMS != 100 {
		t.Errorf("max = %v, want 100", s.MaxMS)
	}
	if s.MeanMS < 50 || s.MeanMS > 51 {
		t.Errorf("mean = %v, want ~50.5", s.MeanMS)
	}
	if (&Histogram{}).Summary() != (LatencySummary{}) {
		t.Error("empty histogram summary not zero")
	}
}

// TestHistogramNearestRankNonAligning is the regression test for the
// floor-indexing quantile bug: at sample counts where p*(n-1) is
// fractional, int(p * (n-1)) floors and under-reports the tail. With
// nearest-rank indexing (ceil(p*n)-1) the p95 of 10 samples is the
// 10th sample, not the 9th, and the p99 of 97 samples is the 97th, not
// the 96th.
func TestHistogramNearestRankNonAligning(t *testing.T) {
	var h10 Histogram
	for i := 1; i <= 10; i++ {
		h10.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h10.Summary()
	if s.P50MS != 5 {
		t.Errorf("n=10 p50 = %v, want 5 (ceil(0.50*10) = 5th sample)", s.P50MS)
	}
	if s.P95MS != 10 {
		t.Errorf("n=10 p95 = %v, want 10 (ceil(0.95*10) = 10th sample; floor indexing reported 9)", s.P95MS)
	}
	if s.P99MS != 10 {
		t.Errorf("n=10 p99 = %v, want 10", s.P99MS)
	}

	var h97 Histogram
	for i := 1; i <= 97; i++ {
		h97.Observe(time.Duration(i) * time.Millisecond)
	}
	s = h97.Summary()
	if s.P50MS != 49 {
		t.Errorf("n=97 p50 = %v, want 49 (ceil(0.50*97) = 49th sample)", s.P50MS)
	}
	if s.P95MS != 93 {
		t.Errorf("n=97 p95 = %v, want 93 (ceil(0.95*97) = 93rd sample)", s.P95MS)
	}
	if s.P99MS != 97 {
		t.Errorf("n=97 p99 = %v, want 97 (ceil(0.99*97) = 97th sample; floor indexing reported 96)", s.P99MS)
	}

	// A single sample is every quantile.
	var h1 Histogram
	h1.Observe(7 * time.Millisecond)
	s = h1.Summary()
	if s.P50MS != 7 || s.P95MS != 7 || s.P99MS != 7 {
		t.Errorf("n=1 quantiles = %+v, want all 7", s)
	}
}

// stubGateway fakes the gateway's submit endpoint: every Nth request is
// rejected with 429, the rest are "assigned". DELETE marks the order
// canceled; GET serves its current state — enough surface for the
// cancellation mix.
func stubGateway(rejectEvery int) http.Handler {
	var n atomic.Int64
	var mu sync.Mutex
	canceled := map[int64]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/orders", func(w http.ResponseWriter, r *http.Request) {
		var body submitBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		i := n.Add(1)
		if rejectEvery > 0 && i%int64(rejectEvery) == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		status := "assigned"
		if r.URL.Query().Get("wait") != "true" {
			status = "pending"
			w.WriteHeader(http.StatusAccepted)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(submitReply{ID: i, Status: status})
	})
	mux.HandleFunc("DELETE /v1/orders/{id}", func(w http.ResponseWriter, r *http.Request) {
		var id int64
		fmt.Sscanf(r.PathValue("id"), "%d", &id)
		mu.Lock()
		canceled[id] = true
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(submitReply{ID: id, Status: "pending"})
	})
	mux.HandleFunc("GET /v1/orders/{id}", func(w http.ResponseWriter, r *http.Request) {
		var id int64
		fmt.Sscanf(r.PathValue("id"), "%d", &id)
		mu.Lock()
		isCanceled := canceled[id]
		mu.Unlock()
		status := "assigned"
		if isCanceled {
			status = "canceled_by_rider"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(submitReply{ID: id, Status: status})
	})
	return mux
}

// TestRunCancellationMix drives the DELETE mix against the stub: the
// selected fraction is canceled, the rest assigned, with deterministic
// selection by seed.
func TestRunCancellationMix(t *testing.T) {
	ts := httptest.NewServer(stubGateway(0))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Orders: 40, Concurrency: 4, Seed: 3, Client: ts.Client(),
		CancelFraction: 0.5, CancelAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orders != 40 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Canceled == 0 || rep.Canceled == 40 {
		t.Fatalf("canceled = %d, want a mixed outcome at fraction 0.5", rep.Canceled)
	}
	if rep.Assigned+rep.Canceled != 40 {
		t.Fatalf("assigned %d + canceled %d != 40", rep.Assigned, rep.Canceled)
	}
	// Canceled orders carry no submit-to-assignment latency sample.
	if rep.Latency.Count != rep.Assigned {
		t.Fatalf("latency samples %d, want %d (assigned only)", rep.Latency.Count, rep.Assigned)
	}
}

func TestRunClosedLoopAgainstStub(t *testing.T) {
	ts := httptest.NewServer(stubGateway(0))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Orders: 50, Concurrency: 4, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orders != 50 || rep.Assigned != 50 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Latency.Count != 50 || rep.Latency.P50MS <= 0 {
		t.Errorf("latency summary = %+v", rep.Latency)
	}
	if rep.Throughput <= 0 {
		t.Error("throughput not computed")
	}
	if len(rep.Results) != 50 {
		t.Errorf("results = %d", len(rep.Results))
	}
}

func TestRunClassifiesRejections(t *testing.T) {
	ts := httptest.NewServer(stubGateway(5))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Orders: 50, Concurrency: 2, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 10 {
		t.Errorf("rejected = %d, want 10", rep.Rejected)
	}
	if rep.Assigned != 40 {
		t.Errorf("assigned = %d, want 40", rep.Assigned)
	}
	// Rejected submissions carry no latency sample.
	if rep.Latency.Count != 40 {
		t.Errorf("latency samples = %d, want 40", rep.Latency.Count)
	}
}

// TestRunOpenLoopPacesArrivals checks the Poisson arrival mode: at a
// deliberately slow rate the run must take at least roughly
// orders/rate seconds, unlike the closed loop which finishes as fast
// as the server answers.
func TestRunOpenLoopPacesArrivals(t *testing.T) {
	ts := httptest.NewServer(stubGateway(0))
	defer ts.Close()
	const orders, rate = 30, 100.0 // expect ~0.3s
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Orders: orders, Concurrency: 4, Rate: rate, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orders != orders {
		t.Fatalf("orders = %d", rep.Orders)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("open loop finished in %v — arrivals not paced", elapsed)
	}
}

func TestRunCancellationStopsIssuing(t *testing.T) {
	ts := httptest.NewServer(stubGateway(0))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{
		BaseURL: ts.URL, Orders: 1000, Concurrency: 2, Rate: 5, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orders != 0 {
		t.Errorf("canceled run still submitted %d orders", rep.Orders)
	}
}
