package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50MS < 49 || s.P50MS > 51 {
		t.Errorf("p50 = %v, want ~50", s.P50MS)
	}
	if s.P95MS < 94 || s.P95MS > 96 {
		t.Errorf("p95 = %v, want ~95", s.P95MS)
	}
	if s.P99MS < 98 || s.P99MS > 100 {
		t.Errorf("p99 = %v, want ~99", s.P99MS)
	}
	if s.MaxMS != 100 {
		t.Errorf("max = %v, want 100", s.MaxMS)
	}
	if s.MeanMS < 50 || s.MeanMS > 51 {
		t.Errorf("mean = %v, want ~50.5", s.MeanMS)
	}
	if (&Histogram{}).Summary() != (LatencySummary{}) {
		t.Error("empty histogram summary not zero")
	}
}

// stubGateway fakes the gateway's submit endpoint: every Nth request is
// rejected with 429, the rest are "assigned".
func stubGateway(rejectEvery int) http.Handler {
	var n atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/orders", func(w http.ResponseWriter, r *http.Request) {
		var body submitBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		i := n.Add(1)
		if rejectEvery > 0 && i%int64(rejectEvery) == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(submitReply{ID: i, Status: "assigned"})
	})
	return mux
}

func TestRunClosedLoopAgainstStub(t *testing.T) {
	ts := httptest.NewServer(stubGateway(0))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Orders: 50, Concurrency: 4, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orders != 50 || rep.Assigned != 50 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Latency.Count != 50 || rep.Latency.P50MS <= 0 {
		t.Errorf("latency summary = %+v", rep.Latency)
	}
	if rep.Throughput <= 0 {
		t.Error("throughput not computed")
	}
	if len(rep.Results) != 50 {
		t.Errorf("results = %d", len(rep.Results))
	}
}

func TestRunClassifiesRejections(t *testing.T) {
	ts := httptest.NewServer(stubGateway(5))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Orders: 50, Concurrency: 2, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 10 {
		t.Errorf("rejected = %d, want 10", rep.Rejected)
	}
	if rep.Assigned != 40 {
		t.Errorf("assigned = %d, want 40", rep.Assigned)
	}
	// Rejected submissions carry no latency sample.
	if rep.Latency.Count != 40 {
		t.Errorf("latency samples = %d, want 40", rep.Latency.Count)
	}
}

// TestRunOpenLoopPacesArrivals checks the Poisson arrival mode: at a
// deliberately slow rate the run must take at least roughly
// orders/rate seconds, unlike the closed loop which finishes as fast
// as the server answers.
func TestRunOpenLoopPacesArrivals(t *testing.T) {
	ts := httptest.NewServer(stubGateway(0))
	defer ts.Close()
	const orders, rate = 30, 100.0 // expect ~0.3s
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Orders: orders, Concurrency: 4, Rate: rate, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orders != orders {
		t.Fatalf("orders = %d", rep.Orders)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("open loop finished in %v — arrivals not paced", elapsed)
	}
}

func TestRunCancellationStopsIssuing(t *testing.T) {
	ts := httptest.NewServer(stubGateway(0))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{
		BaseURL: ts.URL, Orders: 1000, Concurrency: 2, Rate: 5, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orders != 0 {
		t.Errorf("canceled run still submitted %d orders", rep.Orders)
	}
}
