package load

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram collects raw latency samples and reports exact quantiles —
// the YCSB "raw measurement" style, which at load-harness scale (tens
// of thousands of samples) is cheaper to reason about than bucket
// boundaries and never flattens sub-millisecond latencies. Safe for
// concurrent Observe.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	max     time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// LatencySummary is a histogram snapshot in milliseconds.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Summary computes quantiles over the recorded samples.
func (h *Histogram) Summary() LatencySummary {
	h.mu.Lock()
	samples := append([]time.Duration(nil), h.samples...)
	sum, max := h.sum, h.max
	h.mu.Unlock()
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	// Nearest-rank quantiles: the p-quantile is the ceil(p*n)-th
	// smallest sample. Flooring an interpolated index here would bias
	// p95/p99 low whenever p*(n-1) is fractional — at n=10 the old
	// int(p*(n-1)) indexing reported the 9th sample as p95.
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		return ms(samples[i])
	}
	return LatencySummary{
		Count:  len(samples),
		MeanMS: ms(sum) / float64(len(samples)),
		P50MS:  q(0.50),
		P95MS:  q(0.95),
		P99MS:  q(0.99),
		MaxMS:  ms(max),
	}
}
