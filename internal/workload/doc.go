// Package workload synthesizes city-scale ride-order traces with the
// marginals of the NYC TLC yellow-taxi data the paper evaluates on: the
// same bounding box and 16x16 grid, a diurnal arrival curve with morning
// and evening peaks, a Gaussian-hotspot pickup mixture (Figure 5's
// Manhattan concentration), a distance-decayed destination transition
// kernel, and per-region Poisson arrivals within short windows — the
// assumption Appendix B validates with chi-square tests.
//
// Multi-day generation adds day-of-week and weather factors so the
// demand predictors (package predict) have the metadata signal DeepST
// exploits. Counts-only generation lets months of training history be
// produced without materializing tens of millions of Order values.
package workload
