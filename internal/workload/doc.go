// Package workload synthesizes city-scale ride-order traces with the
// marginals of the NYC TLC yellow-taxi data the paper evaluates on: the
// same bounding box and 16x16 grid, a diurnal arrival curve with morning
// and evening peaks, a Gaussian-hotspot pickup mixture (Figure 5's
// Manhattan concentration), a distance-decayed destination transition
// kernel, and per-region Poisson arrivals within short windows — the
// assumption Appendix B validates with chi-square tests.
//
// Multi-day generation adds day-of-week and weather factors so the
// demand predictors (package predict) have the metadata signal DeepST
// exploits. Counts-only generation lets months of training history be
// produced without materializing tens of millions of Order values.
//
// # Typical use
//
// NewCity builds the demand model from a CityConfig (the zero value is
// the scaled NYC-like default). GenerateDay materializes one day's
// Order trace for a day index — the index, not the RNG, drives the
// day-of-week and weather factors, so replaying a day is
// deterministic. InitialDrivers samples a fleet's starting positions
// from a trace's pickup distribution (the paper's initialization,
// Section 6.2), and ExpectedDayCounts exposes the noiseless per-slot
// intensities that back the oracle prediction mode. Everything
// downstream reaches this package through core.Options.City.
package workload
