package workload

import "math"

// Patience is the rider-abandonment model of the disruption layer: a
// constant-hazard (exponential) clock over each order's deadline slack.
// The paper's queueing model assumes every waiting rider holds out to
// its pickup deadline; real riders close the app early. Patience keeps
// the modelling assumption as the limiting case (AbandonRate 0) while
// letting scenario runs inject early cancellations whose probability is
// exact by construction.
//
// For an order posted at t with deadline tau, the slack is tau - t and
// the hazard rate is h = -ln(1 - AbandonRate) / slack, so that
// P(cancel before tau) = 1 - exp(-h * slack) = AbandonRate exactly,
// independent of how long or short the rider's patience window is.
// Cancellation times are drawn by inverse-CDF from a single uniform, so
// one draw decides both whether the rider abandons and when.
type Patience struct {
	// AbandonRate is the probability a waiting rider cancels strictly
	// before its deadline. 0 disables abandonment (every rider waits to
	// the deadline, the paper's assumption); 1 means every rider with
	// positive slack abandons early.
	AbandonRate float64
}

// CancelTime maps one uniform draw u in [0,1) to the rider's
// abandonment time for an order posted at post with the given deadline.
// ok=false means the rider holds out to the deadline (no cancellation).
// When ok, the returned time lies in [post, deadline).
func (p Patience) CancelTime(u, post, deadline float64) (float64, bool) {
	slack := deadline - post
	if p.AbandonRate <= 0 || slack <= 0 || u >= p.AbandonRate {
		return 0, false
	}
	if p.AbandonRate >= 1 {
		// Degenerate hazard: everyone abandons; spread cancellation
		// times uniformly-by-hazard via the raw draw.
		return post + u*slack, true
	}
	// Inverse CDF of Exp(h) with h = -ln(1-rate)/slack. u < rate
	// guarantees the draw lands strictly before the deadline.
	x := slack * math.Log1p(-u) / math.Log1p(-p.AbandonRate)
	return post + x, true
}
