package workload

import (
	"math/rand"

	"mrvd/internal/geo"
	"mrvd/internal/stats"
	"mrvd/internal/trace"
)

// Weather is the categorical day-level weather feature DeepST-style
// predictors consume.
type Weather int

// Weather categories with their conventional demand effect.
const (
	Clear Weather = iota
	Rain          // rain lifts taxi demand
	Snow          // snow lifts it further
	numWeather
)

// DayMeta carries the metadata features of one simulated day.
type DayMeta struct {
	Day     int     // day index from the epoch of the generated history
	DOW     int     // 0 = Monday ... 6 = Sunday
	Weather Weather // categorical weather
	Factor  float64 // multiplicative demand factor combining all effects
}

// dowFactor reflects weekday/weekend demand differences.
var dowFactor = [7]float64{1.0, 0.98, 1.0, 1.02, 1.08, 0.85, 0.72}

var weatherFactor = [numWeather]float64{Clear: 1.0, Rain: 1.12, Snow: 1.25}

// DayMeta deterministically derives a day's metadata from the city seed,
// so training history and the simulated test day agree on it. Results are
// memoized: Intensity calls this on hot loops.
func (c *City) DayMeta(day int) DayMeta {
	c.metaMu.RLock()
	m, ok := c.metaCache[day]
	c.metaMu.RUnlock()
	if ok {
		return m
	}
	m = c.computeDayMeta(day)
	c.metaMu.Lock()
	c.metaCache[day] = m
	c.metaMu.Unlock()
	return m
}

func (c *City) computeDayMeta(day int) DayMeta {
	rng := rand.New(rand.NewSource(c.cfg.Seed*1_000_003 + int64(day)))
	w := Clear
	switch r := rng.Float64(); {
	case r < 0.20:
		w = Rain
	case r < 0.27:
		w = Snow
	}
	dow := ((day % 7) + 7) % 7
	noise := 1 + 0.03*rng.NormFloat64() // day-to-day idiosyncrasy
	if noise < 0.8 {
		noise = 0.8
	}
	return DayMeta{
		Day:     day,
		DOW:     dow,
		Weather: w,
		Factor:  dowFactor[dow] * weatherFactor[w] * noise,
	}
}

// GenerateDay materializes the full order trace of one day: per-minute,
// per-region Poisson arrivals with uniform placement inside the region,
// destinations from the period's transition kernel, and deadlines
// tau_i = t_i + tau + U[1,10] exactly as Section 6.2 configures.
func (c *City) GenerateDay(day int, rng *rand.Rand) []trace.Order {
	grid := c.cfg.Grid
	n := grid.NumRegions()
	var orders []trace.Order
	id := trace.OrderID(0)
	for minute := 0; minute < 24*60; minute++ {
		p := PeriodOf(float64(minute * 60))
		for r := 0; r < n; r++ {
			k := stats.Poisson(rng, c.Intensity(day, minute, r))
			for i := 0; i < k; i++ {
				post := float64(minute*60) + rng.Float64()*60
				dst := c.sampleDest(rng, p, r)
				o := trace.Order{
					ID:       id,
					PostTime: post,
					Pickup:   randomPointIn(rng, grid, r),
					Dropoff:  randomPointIn(rng, grid, dst),
					Deadline: post + c.cfg.BaseWaitSeconds + 1 + rng.Float64()*9,
				}
				orders = append(orders, o)
				id++
			}
		}
	}
	trace.SortByPostTime(orders)
	// Re-id in replay order for stable diagnostics.
	for i := range orders {
		orders[i].ID = trace.OrderID(i)
	}
	return orders
}

// GenerateDayCounts produces only the [slot][region] order-count matrix
// of one day at the given slot width (seconds), without materializing
// orders. Months of predictor training history stay cheap this way. The
// counts are Poisson-consistent with GenerateDay's intensities.
func (c *City) GenerateDayCounts(day int, slotSeconds float64, rng *rand.Rand) [][]int {
	grid := c.cfg.Grid
	n := grid.NumRegions()
	numSlots := int(DaySeconds / slotSeconds)
	counts := make([][]int, numSlots)
	for s := range counts {
		counts[s] = make([]int, n)
	}
	for minute := 0; minute < 24*60; minute++ {
		slot := int(float64(minute*60) / slotSeconds)
		if slot >= numSlots {
			slot = numSlots - 1
		}
		for r := 0; r < n; r++ {
			counts[slot][r] += stats.Poisson(rng, c.Intensity(day, minute, r))
		}
	}
	return counts
}

// ExpectedDayCounts returns the noiseless intensity aggregated to the
// given slot width: the "real demand" oracle the paper's -R variants and
// the UPPER bound consume.
func (c *City) ExpectedDayCounts(day int, slotSeconds float64) [][]float64 {
	grid := c.cfg.Grid
	n := grid.NumRegions()
	numSlots := int(DaySeconds / slotSeconds)
	counts := make([][]float64, numSlots)
	for s := range counts {
		counts[s] = make([]float64, n)
	}
	for minute := 0; minute < 24*60; minute++ {
		slot := int(float64(minute*60) / slotSeconds)
		if slot >= numSlots {
			slot = numSlots - 1
		}
		for r := 0; r < n; r++ {
			counts[slot][r] += c.Intensity(day, minute, r)
		}
	}
	return counts
}

// InitialDrivers samples n starting driver positions from the pickup
// locations of a reference trace, the paper's initialization protocol
// (Section 6.2). With an empty trace it falls back to hotspot-weighted
// random placement.
func (c *City) InitialDrivers(n int, orders []trace.Order, rng *rand.Rand) []geo.Point {
	pts := make([]geo.Point, n)
	if len(orders) > 0 {
		for i := range pts {
			pts[i] = orders[rng.Intn(len(orders))].Pickup
		}
		return pts
	}
	w := c.pickupW[Morning]
	for i := range pts {
		r := stats.Categorical(rng, w)
		pts[i] = randomPointIn(rng, c.cfg.Grid, r)
	}
	return pts
}

// PerMinuteCounts returns per-minute order counts for one region over a
// window of the day, the sampling unit of the chi-square tests in
// Appendix B (one sample per minute across many days).
func (c *City) PerMinuteCounts(day, startMinute, minutes, region int, rng *rand.Rand) []int {
	out := make([]int, minutes)
	for i := 0; i < minutes; i++ {
		out[i] = stats.Poisson(rng, c.Intensity(day, startMinute+i, region))
	}
	return out
}
