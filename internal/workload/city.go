package workload

import (
	"math"
	"math/rand"
	"sync"

	"mrvd/internal/geo"
	"mrvd/internal/stats"
)

// DaySeconds is the length of one simulated day.
const DaySeconds = 24 * 3600

// Period partitions the day into coarse demand regimes that shift where
// trips start and end (residential mornings, business evenings).
type Period int

// The four demand periods of a day.
const (
	Night   Period = iota // 22:00-06:00
	Morning               // 06:00-11:00
	Midday                // 11:00-16:00
	Evening               // 16:00-22:00
	numPeriods
)

// PeriodOf maps a second-of-day to its period.
func PeriodOf(sec float64) Period {
	h := math.Mod(sec, DaySeconds) / 3600
	switch {
	case h >= 6 && h < 11:
		return Morning
	case h >= 11 && h < 16:
		return Midday
	case h >= 16 && h < 22:
		return Evening
	default:
		return Night
	}
}

// Hotspot is one center of gravity for trip activity.
type Hotspot struct {
	Center geo.Point
	// SigmaMeters is the spatial spread of the hotspot's influence.
	SigmaMeters float64
	// PickupWeight and DropoffWeight give the hotspot's pull per period.
	PickupWeight  [numPeriods]float64
	DropoffWeight [numPeriods]float64
}

// defaultHotspots sketches an NYC-like demand geography: a dense
// "downtown/midtown" business core, two residential clusters, and an
// airport-like generator at the periphery.
func defaultHotspots() []Hotspot {
	return []Hotspot{
		{ // Lower Manhattan business core: sinks in the morning, sources in the evening.
			Center:        geo.Point{Lng: -73.99, Lat: 40.72},
			SigmaMeters:   3000,
			PickupWeight:  [numPeriods]float64{Night: 0.6, Morning: 0.7, Midday: 1.3, Evening: 1.8},
			DropoffWeight: [numPeriods]float64{Night: 0.5, Morning: 1.9, Midday: 1.2, Evening: 0.7},
		},
		{ // Midtown: strong both ways at business hours.
			Center:        geo.Point{Lng: -73.97, Lat: 40.76},
			SigmaMeters:   2600,
			PickupWeight:  [numPeriods]float64{Night: 0.8, Morning: 1.0, Midday: 1.5, Evening: 1.9},
			DropoffWeight: [numPeriods]float64{Night: 0.8, Morning: 1.7, Midday: 1.5, Evening: 1.1},
		},
		{ // Residential west (Upper West Side-like): sources in the morning.
			Center:        geo.Point{Lng: -73.96, Lat: 40.80},
			SigmaMeters:   2200,
			PickupWeight:  [numPeriods]float64{Night: 0.4, Morning: 1.8, Midday: 0.7, Evening: 0.6},
			DropoffWeight: [numPeriods]float64{Night: 1.0, Morning: 0.4, Midday: 0.7, Evening: 1.6},
		},
		{ // Residential east (Brooklyn-like): sources in the morning, sinks at night.
			Center:        geo.Point{Lng: -73.94, Lat: 40.68},
			SigmaMeters:   3200,
			PickupWeight:  [numPeriods]float64{Night: 0.5, Morning: 1.6, Midday: 0.6, Evening: 0.8},
			DropoffWeight: [numPeriods]float64{Night: 1.2, Morning: 0.5, Midday: 0.6, Evening: 1.7},
		},
		{ // Airport-like generator at the SE periphery: steady trickle.
			Center:        geo.Point{Lng: -73.79, Lat: 40.65},
			SigmaMeters:   1800,
			PickupWeight:  [numPeriods]float64{Night: 0.5, Morning: 0.6, Midday: 0.7, Evening: 0.7},
			DropoffWeight: [numPeriods]float64{Night: 0.5, Morning: 0.5, Midday: 0.6, Evening: 0.6},
		},
	}
}

// hourlyCurve is the relative order intensity per hour of day, shaped
// after the familiar NYC taxi diurnal profile: a deep 4-5 AM trough, an
// 8 AM commute peak, sustained midday demand, and the tallest peak around
// 18-19 when office hours end.
var hourlyCurve = [24]float64{
	1.6, 1.1, 0.8, 0.55, 0.4, 0.5, // 0-5
	1.0, 2.2, 3.1, 2.8, 2.4, 2.3, // 6-11
	2.5, 2.5, 2.4, 2.6, 2.8, 3.2, // 12-17
	3.8, 4.0, 3.6, 3.2, 2.8, 2.2, // 18-23
}

// CityConfig parameterizes the synthetic city.
type CityConfig struct {
	// Grid is the spatial partition. Nil defaults to the paper's 16x16
	// NYC grid.
	Grid *geo.Grid
	// OrdersPerDay scales total daily demand. The paper's test day has
	// 282,255 orders; experiments default to a scaled-down city.
	OrdersPerDay int
	// BaseWaitSeconds is the base pickup waiting time tau; each order's
	// deadline is post time + tau + U[1,10] (Section 6.2).
	BaseWaitSeconds float64
	// Hotspots override the default NYC-like activity centers.
	Hotspots []Hotspot
	// TripDecayMeters is the distance-decay scale of the destination
	// kernel; most trips stay within a few kilometers. Default 4000.
	TripDecayMeters float64
	// Seed drives all randomness derived from this city (day factors,
	// weather); per-call RNGs handle the rest.
	Seed int64
}

func (c CityConfig) withDefaults() CityConfig {
	if c.Grid == nil {
		c.Grid = geo.NewNYCGrid()
	}
	if c.OrdersPerDay <= 0 {
		c.OrdersPerDay = 30000
	}
	if c.BaseWaitSeconds <= 0 {
		c.BaseWaitSeconds = 120
	}
	if len(c.Hotspots) == 0 {
		c.Hotspots = defaultHotspots()
	}
	if c.TripDecayMeters <= 0 {
		c.TripDecayMeters = 4000
	}
	return c
}

// City precomputes the per-period spatial structure of a synthetic city
// and generates order traces from it.
type City struct {
	cfg CityConfig
	// pickupW[p][r]: normalized pickup weight of region r in period p.
	pickupW [numPeriods][]float64
	// destCDF[p][src]: cumulative destination distribution given source.
	destCDF [numPeriods][][]float64
	// destMarginal[p][r]: probability that a period-p trip ends in r,
	// i.e. sum_src pickupW[src] * P(r | src). Dropoffs are where drivers
	// rejoin (Appendix B), so this drives DropoffIntensity.
	destMarginal [numPeriods][]float64
	// curveNorm converts hourlyCurve into per-minute fractions of a day.
	minuteFrac []float64

	// metaMu guards metaCache; DayMeta derivation is deterministic but
	// costs an RNG construction, and Intensity sits on hot loops.
	metaMu    sync.RWMutex
	metaCache map[int]DayMeta
}

// NewCity builds a city from the configuration.
func NewCity(cfg CityConfig) *City {
	cfg = cfg.withDefaults()
	c := &City{cfg: cfg, metaCache: make(map[int]DayMeta)}
	n := cfg.Grid.NumRegions()

	centers := make([]geo.Point, n)
	for r := 0; r < n; r++ {
		centers[r] = cfg.Grid.Center(geo.RegionID(r))
	}
	for p := Period(0); p < numPeriods; p++ {
		pw := make([]float64, n)
		dw := make([]float64, n)
		for r := 0; r < n; r++ {
			pw[r] = 0.0015 // small uniform floor so no region is ever fully dead
			dw[r] = 0.0015
			for _, h := range cfg.Hotspots {
				d := geo.Equirect(centers[r], h.Center)
				g := math.Exp(-d * d / (2 * h.SigmaMeters * h.SigmaMeters))
				pw[r] += h.PickupWeight[p] * g
				dw[r] += h.DropoffWeight[p] * g
			}
		}
		normalize(pw)
		c.pickupW[p] = pw

		// Destination kernel: attractiveness x distance decay.
		cdf := make([][]float64, n)
		for src := 0; src < n; src++ {
			row := make([]float64, n)
			acc := 0.0
			for dst := 0; dst < n; dst++ {
				d := geo.Equirect(centers[src], centers[dst])
				w := dw[dst] * math.Exp(-d/cfg.TripDecayMeters)
				if dst == src {
					w *= 0.25 // few same-region micro-trips in taxi data
				}
				acc += w
				row[dst] = acc
			}
			if acc > 0 {
				for dst := range row {
					row[dst] /= acc
				}
			}
			cdf[src] = row
		}
		c.destCDF[p] = cdf

		// Marginal destination distribution for the period.
		marg := make([]float64, n)
		for src := 0; src < n; src++ {
			prev := 0.0
			for dst := 0; dst < n; dst++ {
				pDst := cdf[src][dst] - prev
				prev = cdf[src][dst]
				marg[dst] += pw[src] * pDst
			}
		}
		c.destMarginal[p] = marg
	}

	// Normalize the hourly curve to per-minute fractions.
	total := 0.0
	for _, h := range hourlyCurve {
		total += h
	}
	c.minuteFrac = make([]float64, 24*60)
	for m := range c.minuteFrac {
		c.minuteFrac[m] = hourlyCurve[m/60] / (total * 60)
	}
	return c
}

func normalize(w []float64) {
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return
	}
	for i := range w {
		w[i] /= total
	}
}

// Grid exposes the city's spatial partition.
func (c *City) Grid() *geo.Grid { return c.cfg.Grid }

// Config returns the (defaulted) configuration.
func (c *City) Config() CityConfig { return c.cfg }

// Intensity returns the expected number of orders posted in the given
// region during the one-minute slot starting at minute m of the given
// day, including the day's global factor.
func (c *City) Intensity(day, minute, region int) float64 {
	p := PeriodOf(float64(minute * 60))
	return float64(c.cfg.OrdersPerDay) * c.DayMeta(day).Factor *
		c.minuteFrac[minute] * c.pickupW[p][region]
}

// DropoffIntensity returns the expected number of trips *ending* in the
// region per minute — the arrival intensity of rejoining drivers, which
// Appendix B's chi-square tests sample. It ignores the trip-duration
// shift (a few minutes), which is below the tests' resolution.
func (c *City) DropoffIntensity(day, minute, region int) float64 {
	p := PeriodOf(float64(minute * 60))
	return float64(c.cfg.OrdersPerDay) * c.DayMeta(day).Factor *
		c.minuteFrac[minute] * c.destMarginal[p][region]
}

// PerMinuteDropoffCounts samples per-minute rejoining-driver counts for
// one region, the Table 8 / Figure 12 sampling unit.
func (c *City) PerMinuteDropoffCounts(day, startMinute, minutes, region int, rng *rand.Rand) []int {
	out := make([]int, minutes)
	for i := 0; i < minutes; i++ {
		out[i] = stats.Poisson(rng, c.DropoffIntensity(day, startMinute+i, region))
	}
	return out
}

// sampleDest draws a destination region for a trip from src in period p.
func (c *City) sampleDest(rng *rand.Rand, p Period, src int) int {
	row := c.destCDF[p][src]
	u := rng.Float64()
	lo, hi := 0, len(row)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// randomPointIn draws a uniform point inside a region's cell.
func randomPointIn(rng *rand.Rand, grid *geo.Grid, r int) geo.Point {
	box := grid.CellBox(geo.RegionID(r))
	return geo.Point{
		Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
		Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
	}
}
