package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestPatienceCancelTime(t *testing.T) {
	p := Patience{AbandonRate: 0.3}

	// The single uniform decides both whether and when: u < rate
	// cancels strictly inside the window, u >= rate holds out.
	if at, ok := p.CancelTime(0.1, 100, 400); !ok || at < 100 || at >= 400 {
		t.Fatalf("u=0.1: at=%v ok=%v, want a cancel in [100,400)", at, ok)
	}
	if _, ok := p.CancelTime(0.3, 100, 400); ok {
		t.Fatal("u == rate must hold out")
	}
	if _, ok := p.CancelTime(0.95, 100, 400); ok {
		t.Fatal("u=0.95 must hold out at rate 0.3")
	}

	// Degenerate inputs never cancel.
	if _, ok := (Patience{}).CancelTime(0.0, 100, 400); ok {
		t.Fatal("zero rate canceled")
	}
	if _, ok := p.CancelTime(0.1, 400, 400); ok {
		t.Fatal("zero slack canceled")
	}

	// Rate 1: everyone with slack abandons, spread across the window.
	one := Patience{AbandonRate: 1}
	if at, ok := one.CancelTime(0.5, 0, 200); !ok || at != 100 {
		t.Fatalf("rate 1, u=0.5: at=%v ok=%v, want 100", at, ok)
	}

	// Monotone in u: a larger draw abandons later.
	a, _ := p.CancelTime(0.05, 0, 300)
	b, _ := p.CancelTime(0.25, 0, 300)
	if !(a < b) {
		t.Fatalf("cancel time not monotone in u: %v !< %v", a, b)
	}
}

// TestPatienceAbandonProbabilityExact: by construction the abandonment
// probability equals AbandonRate exactly — P(u < rate) — regardless of
// the slack, so empirical rates converge to it.
func TestPatienceAbandonProbabilityExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		p := Patience{AbandonRate: rate}
		for _, slack := range []float64{10, 600, 86400} {
			const n = 20000
			hits := 0
			for i := 0; i < n; i++ {
				if _, ok := p.CancelTime(rng.Float64(), 0, slack); ok {
					hits++
				}
			}
			got := float64(hits) / n
			if math.Abs(got-rate) > 0.02 {
				t.Errorf("rate %v slack %v: empirical abandonment %.3f", rate, slack, got)
			}
		}
	}
}
