package workload

import (
	"math"
	"math/rand"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/stats"
)

func testCity() *City {
	return NewCity(CityConfig{OrdersPerDay: 5000, Seed: 42})
}

func TestPeriodOf(t *testing.T) {
	cases := []struct {
		hour float64
		want Period
	}{
		{3, Night}, {6, Morning}, {10.9, Morning}, {11, Midday},
		{15.9, Midday}, {16, Evening}, {21.9, Evening}, {22, Night}, {23.5, Night},
	}
	for _, c := range cases {
		if got := PeriodOf(c.hour * 3600); got != c.want {
			t.Errorf("PeriodOf(%vh) = %v, want %v", c.hour, got, c.want)
		}
	}
}

func TestGenerateDayBasicShape(t *testing.T) {
	c := testCity()
	rng := rand.New(rand.NewSource(1))
	orders := c.GenerateDay(0, rng)
	factor := c.DayMeta(0).Factor
	want := 5000 * factor
	if math.Abs(float64(len(orders))-want)/want > 0.10 {
		t.Errorf("generated %d orders, want ~%.0f", len(orders), want)
	}
	grid := c.Grid()
	for i, o := range orders {
		if err := o.Valid(); err != nil {
			t.Fatalf("order %d invalid: %v", i, err)
		}
		if grid.Region(o.Pickup) == geo.InvalidRegion {
			t.Fatalf("order %d pickup outside grid", i)
		}
		if grid.Region(o.Dropoff) == geo.InvalidRegion {
			t.Fatalf("order %d dropoff outside grid", i)
		}
		pat := o.Patience()
		if pat < 121 || pat > 130 {
			t.Fatalf("order %d patience %v outside tau+[1,10]", i, pat)
		}
		if i > 0 && orders[i].PostTime < orders[i-1].PostTime {
			t.Fatal("orders not sorted by post time")
		}
	}
}

func TestGenerateDayDeterministic(t *testing.T) {
	c := testCity()
	a := c.GenerateDay(3, rand.New(rand.NewSource(9)))
	b := c.GenerateDay(3, rand.New(rand.NewSource(9)))
	if len(a) != len(b) {
		t.Fatalf("same seed different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different orders")
		}
	}
}

func TestDiurnalCurvePeaks(t *testing.T) {
	c := testCity()
	rng := rand.New(rand.NewSource(2))
	orders := c.GenerateDay(0, rng)
	perHour := make([]int, 24)
	for _, o := range orders {
		perHour[int(o.PostTime/3600)%24]++
	}
	// Evening peak (18-19h) must beat the 4 AM trough by a wide margin.
	if perHour[18] < 4*perHour[4] {
		t.Errorf("no evening peak: 18h=%d 4h=%d", perHour[18], perHour[4])
	}
	// Morning commute (8h) beats pre-dawn (5h).
	if perHour[8] <= perHour[5] {
		t.Errorf("no morning peak: 8h=%d 5h=%d", perHour[8], perHour[5])
	}
}

func TestHotspotConcentration(t *testing.T) {
	// Midday pickups concentrate near the business core; the top regions
	// must hold far more than a uniform share.
	c := testCity()
	rng := rand.New(rand.NewSource(3))
	orders := c.GenerateDay(0, rng)
	grid := c.Grid()
	counts := make([]int, grid.NumRegions())
	total := 0
	for _, o := range orders {
		if PeriodOf(o.PostTime) == Midday {
			counts[grid.Region(o.Pickup)]++
			total++
		}
	}
	max := 0
	for _, ct := range counts {
		if ct > max {
			max = ct
		}
	}
	uniform := float64(total) / float64(grid.NumRegions())
	if float64(max) < 4*uniform {
		t.Errorf("demand too flat: max region %d vs uniform %.1f", max, uniform)
	}
}

func TestDayMetaDeterministicAndSane(t *testing.T) {
	c := testCity()
	m1 := c.DayMeta(17)
	m2 := c.DayMeta(17)
	if m1 != m2 {
		t.Error("DayMeta not deterministic")
	}
	if m1.DOW < 0 || m1.DOW > 6 {
		t.Errorf("DOW = %d", m1.DOW)
	}
	if m1.Factor <= 0 || m1.Factor > 2 {
		t.Errorf("Factor = %v", m1.Factor)
	}
	// Weekends are quieter on average across many days.
	wkdaySum, wkdayN, wkendSum, wkendN := 0.0, 0, 0.0, 0
	for d := 0; d < 140; d++ {
		m := c.DayMeta(d)
		if m.DOW >= 5 {
			wkendSum += m.Factor
			wkendN++
		} else {
			wkdaySum += m.Factor
			wkdayN++
		}
	}
	if wkendSum/float64(wkendN) >= wkdaySum/float64(wkdayN) {
		t.Error("weekend demand factor not below weekday")
	}
}

func TestGenerateDayCountsConsistentWithIntensity(t *testing.T) {
	c := testCity()
	rng := rand.New(rand.NewSource(4))
	counts := c.GenerateDayCounts(0, 1800, rng)
	if len(counts) != 48 {
		t.Fatalf("slots = %d, want 48", len(counts))
	}
	expected := c.ExpectedDayCounts(0, 1800)
	// Aggregate comparison: totals should match within Poisson noise.
	gotTotal, wantTotal := 0.0, 0.0
	for s := range counts {
		for r := range counts[s] {
			gotTotal += float64(counts[s][r])
			wantTotal += expected[s][r]
		}
	}
	if math.Abs(gotTotal-wantTotal)/wantTotal > 0.05 {
		t.Errorf("counts total %.0f vs expected %.0f", gotTotal, wantTotal)
	}
}

func TestExpectedDayCountsMatchOrdersPerDay(t *testing.T) {
	c := testCity()
	expected := c.ExpectedDayCounts(0, 1800)
	total := 0.0
	for _, slot := range expected {
		for _, v := range slot {
			total += v
		}
	}
	want := 5000 * c.DayMeta(0).Factor
	if math.Abs(total-want)/want > 0.001 {
		t.Errorf("expected total %.1f, want %.1f", total, want)
	}
}

func TestInitialDrivers(t *testing.T) {
	c := testCity()
	rng := rand.New(rand.NewSource(5))
	orders := c.GenerateDay(0, rng)
	drivers := c.InitialDrivers(300, orders, rng)
	if len(drivers) != 300 {
		t.Fatalf("got %d drivers", len(drivers))
	}
	grid := c.Grid()
	for _, p := range drivers {
		if grid.Region(p) == geo.InvalidRegion {
			t.Fatal("driver initialized outside grid")
		}
	}
	// Fallback path with no reference orders.
	drivers = c.InitialDrivers(50, nil, rng)
	if len(drivers) != 50 {
		t.Fatalf("fallback produced %d drivers", len(drivers))
	}
	for _, p := range drivers {
		if grid.Region(p) == geo.InvalidRegion {
			t.Fatal("fallback driver outside grid")
		}
	}
}

func TestPerMinuteCountsArePoisson(t *testing.T) {
	// The core assumption of the paper (Appendix B): per-minute arrival
	// counts in a fixed region and time window pass a chi-square Poisson
	// goodness-of-fit test.
	c := NewCity(CityConfig{OrdersPerDay: 200000, Seed: 11})
	grid := c.Grid()
	region := int(grid.Region(geo.Point{Lng: -73.98, Lat: 40.73})) // business core
	rng := rand.New(rand.NewSource(6))
	var samples []int
	for day := 0; day < 21; day++ {
		// Hold the day factor fixed by sampling the same day index, as
		// the paper samples the same clock window across weekdays.
		samples = append(samples, c.PerMinuteCounts(0, 8*60, 10, region, rng)...)
	}
	res, err := stats.ChiSquarePoissonTest(samples, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Errorf("order counts rejected as Poisson: %v", res)
	}
}

func TestIntensityPositiveEverywhere(t *testing.T) {
	c := testCity()
	for _, minute := range []int{0, 300, 480, 720, 1080, 1380} {
		for _, region := range []int{0, 100, 200, 255} {
			if c.Intensity(0, minute, region) <= 0 {
				t.Fatalf("zero intensity at minute %d region %d", minute, region)
			}
		}
	}
}

func TestSampleDestDistanceDecay(t *testing.T) {
	c := testCity()
	rng := rand.New(rand.NewSource(7))
	grid := c.Grid()
	src := int(grid.Region(geo.NYCBBox.Center()))
	srcPt := grid.Center(geo.RegionID(src))
	// Mean trip distance should be on the order of the decay scale, not
	// the city diameter.
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		dst := c.sampleDest(rng, Midday, src)
		sum += geo.Equirect(srcPt, grid.Center(geo.RegionID(dst)))
	}
	mean := sum / n
	if mean < 500 || mean > 12000 {
		t.Errorf("mean trip distance %.0f m implausible", mean)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := NewCity(CityConfig{})
	cfg := c.Config()
	if cfg.Grid == nil || cfg.OrdersPerDay <= 0 || cfg.BaseWaitSeconds <= 0 ||
		len(cfg.Hotspots) == 0 || cfg.TripDecayMeters <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Grid.NumRegions() != 256 {
		t.Errorf("default grid has %d regions, want 256", cfg.Grid.NumRegions())
	}
}
