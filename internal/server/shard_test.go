package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mrvd"
)

// TestStatsShardBreakdown: a gateway over a sharded session serves the
// per-shard breakdown on /v1/stats; an unsharded gateway omits it.
func TestStatsShardBreakdown(t *testing.T) {
	svc, err := mrvd.NewService(
		mrvd.WithCity(mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 2000, Seed: 17})),
		mrvd.WithFleet(32),
		mrvd.WithBatchInterval(3),
		mrvd.WithHorizon(10*365*24*3600),
		mrvd.WithPrediction(mrvd.PredictNone, nil),
		mrvd.WithShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := New(ctx, svc, Config{Fleet: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		cancel()
		<-srv.Handle().Done()
		ts.Close()
	}()

	// Push one order through so the shards have something to count.
	body := []byte(`{"pickup":{"lng":-73.98,"lat":40.74},"dropoff":{"lng":-73.95,"lat":40.77}}`)
	resp, err := http.Post(ts.URL+"/v1/orders?wait=true", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("/v1/stats carries %d shard entries, want 4", len(stats.Shards))
	}
	admitted, regions, drivers := 0, 0, 0
	for i, s := range stats.Shards {
		if s.Shard != i {
			t.Fatalf("shard entry %d reports id %d", i, s.Shard)
		}
		admitted += s.Admitted
		regions += s.Regions
		drivers += s.Drivers
	}
	if admitted != 1 {
		t.Fatalf("shards admitted %d orders, want 1", admitted)
	}
	if regions != 256 {
		t.Fatalf("shard territories cover %d regions, want 256", regions)
	}
	if drivers != 32 {
		t.Fatalf("shard fleets hold %d drivers, want 32", drivers)
	}
}

func TestStatsNoShardsUnsharded(t *testing.T) {
	_, ts, _ := newTestServer(t, 8, 0, Config{})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != nil {
		t.Fatalf("unsharded gateway reports shards: %v", stats.Shards)
	}
}
