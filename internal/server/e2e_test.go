package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"mrvd"
	"mrvd/internal/load"
	"mrvd/internal/obs"
	"mrvd/internal/workload"
)

// TestEndToEndLoad is the serving layer's acceptance test: boot the
// gateway on a loopback port, drive >=200 orders over real HTTP from
// >=8 concurrent clients through the yabf-style load harness, observe
// every order reach a terminal state via the API, check the latency
// percentiles are real, and shut the whole stack down without leaking
// goroutines. The engine free-runs, so wall latencies are small but
// strictly positive.
func TestEndToEndLoad(t *testing.T) {
	before := runtime.NumGoroutine()

	const fleet, orders, clients = 64, 240, 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The gateway runs instrumented so the load run doubles as the
	// end-to-end scrape check further down.
	reg := mrvd.NewMetricsRegistry()
	srv, err := New(ctx, newObsTestService(t, fleet, mrvd.WithObservability(reg, nil)), Config{
		Algorithm:  "NEAR",
		Fleet:      fleet,
		MaxPending: 4096, // the main run must not shed load
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)

	rep, err := load.Run(ctx, load.Config{
		BaseURL:     ts.URL,
		Orders:      orders,
		Concurrency: clients,
		Patience:    3000, // engine seconds
		Seed:        5,
		City:        workload.NewCity(workload.CityConfig{OrdersPerDay: 2000, Seed: 17}),
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every submission completed, none rejected or errored, and each
	// reached a terminal state.
	if rep.Orders != orders {
		t.Fatalf("completed %d submissions, want %d", rep.Orders, orders)
	}
	if rep.Rejected != 0 || rep.Errors != 0 || rep.Pending != 0 {
		t.Fatalf("rejected=%d errors=%d pending=%d, want all 0",
			rep.Rejected, rep.Errors, rep.Pending)
	}
	if rep.Assigned+rep.Expired != orders {
		t.Fatalf("terminal outcomes %d+%d, want %d", rep.Assigned, rep.Expired, orders)
	}
	if rep.Assigned == 0 {
		t.Fatal("no order was assigned at all")
	}

	// The latency histogram is populated and ordered.
	lat := rep.Latency
	if lat.Count != orders {
		t.Fatalf("latency samples %d, want %d", lat.Count, orders)
	}
	if lat.P50MS <= 0 || lat.P95MS <= 0 || lat.P99MS <= 0 {
		t.Fatalf("zero percentile in %+v", lat)
	}
	if lat.P50MS > lat.P95MS || lat.P95MS > lat.P99MS || lat.P99MS > lat.MaxMS {
		t.Fatalf("percentiles out of order: %+v", lat)
	}
	if rep.Throughput <= 0 {
		t.Fatal("throughput not reported")
	}

	// Cross-check every order's terminal state through the read API,
	// not just the long-poll responses.
	for _, res := range rep.Results {
		var view orderResponse
		resp := getJSON(t, ts, fmt.Sprintf("/v1/orders/%d", res.ID), &view)
		if resp.StatusCode != 200 {
			t.Fatalf("GET order %d: status %d", res.ID, resp.StatusCode)
		}
		if view.Status != "assigned" && view.Status != "expired" {
			t.Fatalf("order %d non-terminal via API: %q", res.ID, view.Status)
		}
		if view.Status != res.Status {
			t.Fatalf("order %d: API says %q, harness saw %q", res.ID, view.Status, res.Status)
		}
	}

	// Engine counters agree with the harness.
	var stats statsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Engine.Submitted != orders ||
		stats.Engine.Assigned != rep.Assigned || stats.Engine.Expired != rep.Expired {
		t.Errorf("stats %+v disagree with harness report %+v", stats.Engine, rep)
	}
	if stats.InFlight != 0 {
		t.Errorf("in-flight %d after the run, want 0", stats.InFlight)
	}

	// The live session's /metrics scrape parses and agrees with the
	// harness: every order admitted, every order terminal, a gateway
	// latency sample per order, and dispatch phases observed.
	fams := scrapeMetrics(t, ts.URL)
	famTotal := func(name, sample string) float64 {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing; scrape has %v", name, obs.FamilyNames(fams))
		}
		var total float64
		for _, s := range f.Samples {
			if s.Name == sample {
				total += s.Value
			}
		}
		return total
	}
	if n := famTotal("mrvd_orders_admitted_total", "mrvd_orders_admitted_total"); n != orders {
		t.Errorf("admitted metric = %v, want %d", n, orders)
	}
	if n := famTotal("mrvd_orders_terminal_total", "mrvd_orders_terminal_total"); n != orders {
		t.Errorf("terminal metric = %v, want %d", n, orders)
	}
	if n := famTotal("mrvd_submit_terminal_seconds", "mrvd_submit_terminal_seconds_count"); n != orders {
		t.Errorf("gateway latency samples = %v, want %d", n, orders)
	}
	if n := famTotal("mrvd_dispatch_phase_seconds", "mrvd_dispatch_phase_seconds_count"); n <= 0 {
		t.Error("no dispatch phase observations in the e2e scrape")
	}

	// Shutdown: context cancel drains cleanly — the session ends, the
	// result surfaces the cancellation, and no goroutine outlives it.
	cancel()
	if _, err := srv.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result err = %v, want context.Canceled", err)
	}
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after shutdown", before, n)
	}
}
