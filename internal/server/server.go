package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"mrvd"
	"mrvd/internal/obs"
	"mrvd/internal/roadnet"
	"mrvd/internal/sim"
	"mrvd/internal/trace"
)

// Config parameterizes a gateway over one serve session.
type Config struct {
	// Algorithm names the dispatcher (default "LS").
	Algorithm string
	// Starts positions the fleet; nil samples from the instance.
	Starts []mrvd.Point
	// Fleet pre-populates /v1/drivers with this many driver views; 0
	// learns drivers from events only.
	Fleet int
	// MaxPending bounds in-flight orders (submitted, not yet terminal).
	// A submit beyond the bound is rejected with 429 (default 1024).
	MaxPending int
	// DefaultPatience is the pickup patience, in engine seconds, stamped
	// on orders that do not specify one (default 300).
	DefaultPatience float64
	// MaxWait caps a ?wait=true long-poll (default 60s). A poll that
	// times out returns the order's current (pending) view with 202.
	MaxWait time.Duration
	// Metrics, when set, mounts GET /metrics serving the registry in
	// Prometheus text format and records the gateway's submit→terminal
	// wall-clock latency histogram into it. Pass the same registry to
	// mrvd.WithObservability to expose the engine's instruments through
	// the same endpoint. Nil (the default) mounts nothing.
	Metrics *obs.Registry
	// Pprof mounts net/http/pprof under GET /debug/pprof/. Off by
	// default: profiling endpoints expose internals and cost CPU while
	// scraped, so they are opt-in like Metrics.
	Pprof bool
	// Collect, with Metrics set, runs a windowed time-series collector
	// over the registry: GET /v1/timeseries serves its ring-buffer dump,
	// GET /healthz gains rule states (and a degraded/unhealthy status
	// code), and each collected window is pushed to /v1/events
	// subscribers as a "window" SSE event. The collector is one
	// goroutine reading atomics on a ticker — dispatch hot paths never
	// see it.
	Collect bool
	// CollectInterval is the collection period (default 1s);
	// CollectWindows the ring capacity (default 120).
	CollectInterval time.Duration
	CollectWindows  int
	// Rules is the SLO rule set the collector evaluates per window
	// (default obs.DefaultDispatchRules). Set to a non-nil empty slice
	// to collect time series with no rules.
	Rules []obs.Rule
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = "LS"
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.DefaultPatience <= 0 {
		c.DefaultPatience = 300
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 60 * time.Second
	}
	return c
}

// Server is an HTTP/JSON gateway over a live dispatch session: it owns
// the session's ServeHandle, a StateStore folding engine events into
// queryable views, and an SSE hub. Build with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	cfg    Config
	svc    *mrvd.Service
	handle *mrvd.ServeHandle
	store  *sim.StateStore
	hub    *hub
	mux    *http.ServeMux
	began  time.Time
	// latHist is the submit→terminal wall-clock latency histogram,
	// nil unless Config.Metrics is set.
	latHist *obs.Histogram
	// collector is the windowed time-series collector, nil unless
	// Config.Collect (with Metrics) is set.
	collector *obs.Collector
}

// New starts a serve session on svc and wraps it in a gateway. The
// session — and therefore the gateway — ends when ctx is canceled, the
// service horizon is reached, or Drain is called; in-flight waiters
// resolve (canceled) and SSE streams close. The caller should serve the
// returned *Server over HTTP and may Result() it for final metrics.
func New(ctx context.Context, svc *mrvd.Service, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		svc:   svc,
		store: sim.NewStateStore(cfg.Fleet),
		hub:   newHub(),
		began: time.Now(),
	}
	if cfg.Metrics != nil {
		s.latHist = cfg.Metrics.Histogram("mrvd_submit_terminal_seconds",
			"Wall-clock latency from gateway submit to the order's terminal outcome.",
			obs.LatencyBuckets)
	}
	handle, err := svc.Start(ctx, cfg.Algorithm, cfg.Starts, s.store, s.hub.observer())
	if err != nil {
		return nil, err
	}
	handle.SetInFlightLimit(cfg.MaxPending)
	s.handle = handle
	if cfg.Collect && cfg.Metrics != nil {
		rules := cfg.Rules
		if rules == nil {
			rules = obs.DefaultDispatchRules()
		}
		s.collector = obs.NewCollector(obs.CollectorConfig{
			Registry: cfg.Metrics,
			Interval: cfg.CollectInterval,
			Windows:  cfg.CollectWindows,
			Rules:    rules,
			OnWindow: s.publishWindow,
		})
		s.collector.Start()
	}
	go func() {
		<-handle.Done()
		if s.collector != nil {
			s.collector.Stop()
		}
		s.hub.closeAll()
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/orders", s.handleSubmit)
	mux.HandleFunc("GET /v1/orders", s.handleOrders)
	mux.HandleFunc("GET /v1/orders/{id}", s.handleOrder)
	mux.HandleFunc("DELETE /v1/orders/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/drivers", s.handleDrivers)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.Metrics != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.collector != nil {
		mux.HandleFunc("GET /v1/timeseries", s.handleTimeseries)
	}
	if cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handle exposes the underlying serve session.
func (s *Server) Handle() *mrvd.ServeHandle { return s.handle }

// Store exposes the live state store.
func (s *Server) Store() *sim.StateStore { return s.store }

// Collector exposes the time-series collector (nil unless
// Config.Collect is set) — tests drive its Tick deterministically.
func (s *Server) Collector() *obs.Collector { return s.collector }

// Drain closes the order stream: already-accepted orders still
// dispatch, new submissions fail, and the session exits once drained.
func (s *Server) Drain() { s.handle.Close() }

// Result blocks until the session ends and returns its final metrics.
func (s *Server) Result() (*mrvd.Metrics, error) { return s.handle.Result() }

// --- wire types ---

type orderRequest struct {
	Pickup  pointJSON `json:"pickup"`
	Dropoff pointJSON `json:"dropoff"`
	// PatienceSeconds is how long the rider waits for pickup, in engine
	// seconds (default Config.DefaultPatience).
	PatienceSeconds float64 `json:"patience_seconds,omitempty"`
}

type orderResponse struct {
	ID       int64       `json:"id"`
	Status   string      `json:"status"`
	PostTime float64     `json:"post_time"`
	Deadline float64     `json:"deadline"`
	Pickup   pointJSON   `json:"pickup"`
	Dropoff  pointJSON   `json:"dropoff"`
	Driver   *int64      `json:"driver,omitempty"`
	Assigned *assigned   `json:"assignment,omitempty"`
	Expired  *expiredAt  `json:"expiry,omitempty"`
	Canceled *canceledAt `json:"cancellation,omitempty"`
	// Declines counts driver declines this order survived.
	Declines int `json:"declines,omitempty"`
	// WaitMS is the wall-clock milliseconds a ?wait submit spent from
	// acceptance to the terminal outcome (submit responses only).
	WaitMS float64 `json:"wait_ms,omitempty"`
}

type assigned struct {
	At         float64 `json:"at"`
	PickedAt   float64 `json:"picked_at"`
	FreeAt     float64 `json:"free_at"`
	PickupCost float64 `json:"pickup_cost"`
	Revenue    float64 `json:"revenue"`
	// Shared marks a pooled insertion into another trip's route plan;
	// DetourSeconds is the rider's planned detour beyond the direct
	// trip. Both absent with pooling off.
	Shared        bool    `json:"shared,omitempty"`
	DetourSeconds float64 `json:"detour_seconds,omitempty"`
}

type expiredAt struct {
	At float64 `json:"at"`
}

type canceledAt struct {
	At float64 `json:"at"`
}

type driverResponse struct {
	ID          int64     `json:"id"`
	Served      int       `json:"served"`
	Declines    int       `json:"declines"`
	Repositions int       `json:"repositions"`
	Busy        bool      `json:"busy"`
	Pos         pointJSON `json:"pos"`
	FreeAt      float64   `json:"free_at"`
	// Onboard is the pooled riders currently in the car;
	// RemainingStops the stops left on its route plan. Both zero with
	// pooling off.
	Onboard        int `json:"onboard"`
	RemainingStops int `json:"remaining_stops"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func orderViewResponse(v sim.OrderView) orderResponse {
	resp := orderResponse{
		ID:       int64(v.ID),
		Status:   string(v.State),
		PostTime: v.PostTime,
		Deadline: v.Deadline,
		Pickup:   toPoint(v.Pickup),
		Dropoff:  toPoint(v.Dropoff),
	}
	switch v.State {
	case sim.OrderAssigned:
		d := int64(v.Driver)
		resp.Driver = &d
		resp.Assigned = &assigned{
			At: v.AssignedAt, PickedAt: v.PickedAt, FreeAt: v.FreeAt,
			PickupCost: v.PickupCost, Revenue: v.Revenue,
			Shared: v.Shared, DetourSeconds: v.DetourSeconds,
		}
	case sim.OrderExpired:
		resp.Expired = &expiredAt{At: v.ExpiredAt}
	case sim.OrderCanceled:
		resp.Canceled = &canceledAt{At: v.CanceledAt}
	}
	if v.Declines > 0 {
		resp.Declines = v.Declines
	}
	return resp
}

// --- handlers ---

// handleSubmit admits one order: admission control against the pending
// bound, engine-clock stamping, registration in the state store, and —
// with ?wait=true — a long-poll for the terminal outcome.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req orderRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode order: %v", err)
		return
	}
	patience := req.PatienceSeconds
	if patience <= 0 {
		patience = s.cfg.DefaultPatience
	}
	now := s.handle.Clock()
	o := trace.Order{
		PostTime: now,
		Deadline: now + patience,
		Pickup:   mrvd.Point{Lng: req.Pickup.Lng, Lat: req.Pickup.Lat},
		Dropoff:  mrvd.Point{Lng: req.Dropoff.Lng, Lat: req.Dropoff.Lat},
	}
	accepted := time.Now()
	id, outcome, err := s.handle.Submit(o)
	switch {
	case errors.Is(err, mrvd.ErrQueueFull):
		// Backpressure: a bounded pending queue is what separates a
		// serving system from an unbounded buffer. The limit is checked
		// atomically with registration inside Submit, so it holds under
		// concurrent requests. 429 tells well-behaved clients to retry.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "pending queue full (%d in flight)", s.cfg.MaxPending)
		return
	case errors.Is(err, mrvd.ErrServeFinished):
		// The service going away is not the client's fault.
		writeError(w, http.StatusServiceUnavailable, "serve session ended")
		return
	case err != nil:
		// Remaining failures are the order's own validation.
		writeError(w, http.StatusBadRequest, "submit: %v", err)
		return
	}
	o.ID = id
	s.store.TrackSubmitted(o)
	if s.latHist != nil {
		// Relay the outcome through a watcher that stamps the latency
		// histogram: every submitted order receives exactly one Outcome
		// (finish cancels stragglers), so the goroutine never leaks, and
		// the wait path below consumes the relay unchanged.
		inner := outcome
		relay := make(chan mrvd.Outcome, 1)
		go func() {
			out, ok := <-inner
			s.latHist.Observe(time.Since(accepted).Seconds())
			if ok {
				relay <- out
			}
			close(relay)
		}()
		outcome = relay
	}

	if r.URL.Query().Get("wait") != "true" {
		resp := orderViewResponse(sim.OrderView{
			ID: id, State: sim.OrderPending,
			PostTime: o.PostTime, Deadline: o.Deadline,
			Pickup: o.Pickup, Dropoff: o.Dropoff,
		})
		writeJSON(w, http.StatusAccepted, resp)
		return
	}

	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	select {
	case out := <-outcome:
		// Observers run before the outcome wakes us (see Service.Start),
		// so the store's view of this order is already terminal — one
		// mapping serves the long-poll and the read API identically.
		v, _ := s.store.Order(id)
		resp := orderViewResponse(v)
		// A canceled session is the one outcome the store (which only
		// folds engine events) does not carry.
		resp.Status = out.Status.String()
		resp.WaitMS = time.Since(accepted).Seconds() * 1000
		writeJSON(w, http.StatusOK, resp)
	case <-timer.C:
		// Wait bound hit; hand back the (tracked, hence always
		// present) pending view — the client can poll
		// GET /v1/orders/{id}.
		v, _ := s.store.Order(id)
		writeJSON(w, http.StatusAccepted, orderViewResponse(v))
	case <-r.Context().Done():
		// Client went away; the order stays in the system.
	}
}

func (s *Server) handleOrder(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad order id %q", r.PathValue("id"))
		return
	}
	v, ok := s.store.Order(trace.OrderID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "order %d unknown", id)
		return
	}
	writeJSON(w, http.StatusOK, orderViewResponse(v))
}

// handleCancel applies a rider-initiated cancellation: DELETE
// /v1/orders/{id}. The cancel is asynchronous — the engine adjudicates
// it at its next batch, so a driver assigned in the same instant wins
// the race and the order still completes. 202 hands back the order's
// current view; a long-poll or GET observes the terminal state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad order id %q", r.PathValue("id"))
		return
	}
	switch err := s.handle.Cancel(trace.OrderID(id)); {
	case errors.Is(err, mrvd.ErrServeFinished):
		writeError(w, http.StatusServiceUnavailable, "serve session ended")
		return
	case errors.Is(err, mrvd.ErrUnknownOrder):
		// Distinguish "already terminal" (the view exists) from "never
		// seen" for the client's benefit; both refuse the cancel.
		if v, ok := s.store.Order(trace.OrderID(id)); ok && v.State != sim.OrderPending {
			writeJSON(w, http.StatusConflict, orderViewResponse(v))
			return
		}
		writeError(w, http.StatusNotFound, "order %d unknown", id)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "cancel: %v", err)
		return
	}
	v, _ := s.store.Order(trace.OrderID(id))
	writeJSON(w, http.StatusAccepted, orderViewResponse(v))
}

func (s *Server) handleOrders(w http.ResponseWriter, r *http.Request) {
	views := s.store.Orders()
	out := make([]orderResponse, len(views))
	for i, v := range views {
		out[i] = orderViewResponse(v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDrivers(w http.ResponseWriter, r *http.Request) {
	views := s.store.Drivers()
	out := make([]driverResponse, len(views))
	for i, v := range views {
		out[i] = driverResponse{
			ID: int64(v.ID), Served: v.Served, Declines: v.Declines, Repositions: v.Repositions,
			Busy: v.Busy, Pos: toPoint(v.Pos), FreeAt: v.FreeAt,
			Onboard: v.Onboard, RemainingStops: v.RemainingStops,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleEvents streams dispatch events as Server-Sent Events until the
// client disconnects or the session ends.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	sub := s.hub.subscribe()
	if sub == nil {
		writeError(w, http.StatusServiceUnavailable, "serve session ended")
		return
	}
	defer s.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case payload, ok := <-sub:
			if !ok {
				return // session over
			}
			fmt.Fprintf(w, "data: %s\n\n", payload)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Algorithm     string         `json:"algorithm"`
	Engine        sim.StoreStats `json:"engine"`
	// InFlight counts submitted orders without a terminal outcome;
	// PendingRelease of those, the ones the engine has not admitted yet.
	InFlight       int  `json:"in_flight"`
	PendingRelease int  `json:"pending_release"`
	MaxPending     int  `json:"max_pending"`
	Done           bool `json:"done"`
	// Coster is the travel-cost cache counters for backends that expose
	// them (the road-network coster does); null otherwise.
	Coster *roadnet.CosterStats `json:"coster,omitempty"`
	// Shards is the per-shard breakdown of a sharded session — one
	// entry per shard with its territory, fleet slice, queue depths,
	// dispatch batch timings, borrow counters and (with per-shard
	// costers) travel-cost cache counters. Omitted when the session
	// runs the single unsharded engine.
	Shards []mrvd.ShardStats `json:"shards,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds:  time.Since(s.began).Seconds(),
		Algorithm:      s.cfg.Algorithm,
		Engine:         s.store.Stats(),
		InFlight:       s.handle.InFlight(),
		PendingRelease: s.handle.Pending(),
		MaxPending:     s.cfg.MaxPending,
		Shards:         s.handle.ShardStats(),
	}
	select {
	case <-s.handle.Done():
		resp.Done = true
	default:
	}
	if s.svc.Options().ShardCosters != nil && len(resp.Shards) > 0 {
		// Per-shard costers: the top-level view is their sum. The base
		// Coster is unused in this mode (each shard prices on its own
		// instance), so asserting only on it — the old behaviour — left
		// Coster null or all-zero while the shards did all the work.
		var agg roadnet.CosterStats
		var have bool
		for i := range resp.Shards {
			if c := resp.Shards[i].Coster; c != nil {
				agg.Add(*c)
				have = true
			}
		}
		if have {
			resp.Coster = &agg
		}
	} else if c, ok := s.svc.Options().Coster.(interface{ Stats() roadnet.CosterStats }); ok {
		// One coster instance, possibly shared across shards: read it
		// once (summing the shard views would multiply-count it).
		st := c.Stats()
		resp.Coster = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves Config.Metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Metrics.WriteText(w)
}

// handleTimeseries dumps the collector's retained windows — every
// derived series aligned on one timestamp axis, plus the health
// snapshot. This is mrvd-top's feed.
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.collector.Dump())
}

// handleHealth reports liveness and, when a collector runs, the SLO
// rule states. The status code follows the overall state — ok 200,
// degraded 429, unhealthy (or session over) 503 — so a plain HTTP
// check sees trouble without parsing the body.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.handle.Done():
		writeError(w, http.StatusServiceUnavailable, "serve session ended")
		return
	default:
	}
	if s.collector == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	h := s.collector.Health()
	code := http.StatusOK
	switch h.Status {
	case obs.StateDegraded:
		code = http.StatusTooManyRequests
	case obs.StateUnhealthy:
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// publishWindow pushes one collected window to SSE subscribers as a
// "window" event alongside the dispatch event stream.
func (s *Server) publishWindow(snap obs.WindowSnapshot) {
	if !s.hub.active() {
		return
	}
	payload, err := json.Marshal(struct {
		Type string `json:"type"`
		obs.WindowSnapshot
	}{Type: "window", WindowSnapshot: snap})
	if err != nil {
		return
	}
	s.hub.publish(payload)
}
