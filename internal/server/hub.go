package server

import (
	"encoding/json"
	"sync"

	"mrvd"
	"mrvd/internal/geo"
)

// event is one SSE payload. Type is one of "batch", "assigned",
// "expired", "canceled", "declined", "repositioned", "pickup",
// "dropoff" (the last two only with pooling enabled).
type event struct {
	Type string  `json:"type"`
	T    float64 `json:"t"` // engine time
	// Every optional field is a pointer: 0 is a legitimate value for
	// all of them (batch 0, order 0, zero waiting, a zero-deadhead
	// pickup), so presence — not non-zeroness — marks which fields an
	// event type carries.
	Batch  *int   `json:"batch,omitempty"`
	Order  *int64 `json:"order,omitempty"`
	Driver *int64 `json:"driver,omitempty"`

	Waiting    *int     `json:"waiting,omitempty"`
	Available  *int     `json:"available,omitempty"`
	PickupCost *float64 `json:"pickup_cost,omitempty"`
	Revenue    *float64 `json:"revenue,omitempty"`
	FreeAt     *float64 `json:"free_at,omitempty"`

	From *pointJSON `json:"from,omitempty"`
	To   *pointJSON `json:"to,omitempty"`

	// Pooling-only fields: pooled assignments carry shared/detour,
	// pickup and dropoff stop completions carry onboard/stops. None is
	// ever set with pooling off, so the stream stays byte-identical.
	Shared  *bool    `json:"shared,omitempty"`
	Detour  *float64 `json:"detour_seconds,omitempty"`
	Onboard *int     `json:"onboard,omitempty"`
	Stops   *int     `json:"stops,omitempty"`
	// At is the stop's committed arrival time (pickup/dropoff events
	// fire at the next batch boundary, so At <= T).
	At *float64 `json:"at,omitempty"`
}

// pointJSON is the wire form of a coordinate.
type pointJSON struct {
	Lng float64 `json:"lng"`
	Lat float64 `json:"lat"`
}

func toPoint(p geo.Point) pointJSON { return pointJSON{Lng: p.Lng, Lat: p.Lat} }

func ptr[T any](v T) *T { return &v }

// hub fans dispatch events out to SSE subscribers. Publishing never
// blocks the engine goroutine: a subscriber that cannot keep up has
// events dropped, and serialization is skipped entirely while nobody
// is listening.
type hub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

func newHub() *hub { return &hub{subs: make(map[chan []byte]struct{})} }

// subscribe registers a buffered event channel. It returns nil when the
// hub is already closed (session over).
func (h *hub) subscribe() chan []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	ch := make(chan []byte, 256)
	h.subs[ch] = struct{}{}
	return ch
}

func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

// active reports whether anyone is listening, letting the observer skip
// JSON marshaling on the engine goroutine when nobody is.
func (h *hub) active() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// publish fans one serialized event out, dropping it for subscribers
// with a full buffer.
func (h *hub) publish(payload []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- payload:
		default: // slow consumer: drop rather than stall the engine
		}
	}
}

// closeAll ends every subscription; subsequent subscribes fail.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// observer adapts engine events into hub broadcasts.
func (h *hub) observer() mrvd.Observer {
	emit := func(e event) {
		if !h.active() {
			return
		}
		payload, err := json.Marshal(e)
		if err != nil {
			return
		}
		h.publish(payload)
	}
	return mrvd.ObserverFuncs{
		BatchStart: func(e mrvd.BatchStartEvent) {
			emit(event{Type: "batch", T: e.Now, Batch: ptr(e.Batch),
				Waiting: ptr(e.Waiting), Available: ptr(e.Available)})
		},
		Assigned: func(e mrvd.AssignedEvent) {
			ev := event{Type: "assigned", T: e.Now,
				Order: ptr(int64(e.Rider.Order.ID)), Driver: ptr(int64(e.Driver)),
				PickupCost: ptr(e.PickupCost), Revenue: ptr(e.Revenue), FreeAt: ptr(e.FreeAt)}
			if e.Shared {
				ev.Shared = ptr(true)
				ev.Detour = ptr(e.DetourSeconds)
				ev.Onboard = ptr(e.Onboard)
				ev.Stops = ptr(e.Stops)
			}
			emit(ev)
		},
		Expired: func(e mrvd.ExpiredEvent) {
			emit(event{Type: "expired", T: e.Now, Order: ptr(int64(e.Rider.Order.ID))})
		},
		Canceled: func(e mrvd.CanceledEvent) {
			emit(event{Type: "canceled", T: e.Now, Order: ptr(int64(e.Rider.Order.ID))})
		},
		Declined: func(e mrvd.DeclinedEvent) {
			emit(event{Type: "declined", T: e.Now,
				Order: ptr(int64(e.Rider.Order.ID)), Driver: ptr(int64(e.Driver)),
				FreeAt: ptr(e.RetryAt)})
		},
		Repositioned: func(e mrvd.RepositionedEvent) {
			from, to := toPoint(e.From), toPoint(e.To)
			emit(event{Type: "repositioned", T: e.Now, Driver: ptr(int64(e.Driver)),
				From: &from, To: &to, FreeAt: ptr(e.ArriveAt)})
		},
		PickedUp: func(e mrvd.PickedUpEvent) {
			emit(event{Type: "pickup", T: e.Now, At: ptr(e.At),
				Order: ptr(int64(e.Order)), Driver: ptr(int64(e.Driver)),
				Onboard: ptr(e.Onboard), Stops: ptr(e.Remaining)})
		},
		DroppedOff: func(e mrvd.DroppedOffEvent) {
			ev := event{Type: "dropoff", T: e.Now, At: ptr(e.At),
				Order: ptr(int64(e.Order)), Driver: ptr(int64(e.Driver)),
				Onboard: ptr(e.Onboard), Stops: ptr(e.Remaining)}
			if e.Shared {
				ev.Shared = ptr(true)
				ev.Detour = ptr(e.DetourSeconds)
			}
			emit(ev)
		},
	}
}
