package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"mrvd"
	"mrvd/internal/obs"
)

// newObsTestService is newTestService plus arbitrary extra options —
// the metrics tests need observability and coster wiring on top of the
// standard free-running live-serve setup.
func newObsTestService(t testing.TB, fleet int, extra ...mrvd.Option) *mrvd.Service {
	t.Helper()
	opts := []mrvd.Option{
		mrvd.WithCity(mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 2000, Seed: 17})),
		mrvd.WithFleet(fleet),
		mrvd.WithBatchInterval(3),
		mrvd.WithHorizon(10 * 365 * 24 * 3600),
		mrvd.WithPrediction(mrvd.PredictNone, nil),
	}
	opts = append(opts, extra...)
	svc, err := mrvd.NewService(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// newTestServerWithService is newTestServer for a caller-built service.
func newTestServerWithService(t testing.TB, svc *mrvd.Service, cfg Config) (*Server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	if cfg.Fleet == 0 {
		cfg.Fleet = 16
	}
	srv, err := New(ctx, svc, cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		cancel()
		<-srv.Handle().Done()
		ts.Close()
	})
	return srv, ts, cancel
}

func scrapeMetrics(t *testing.T, url string) map[string]*obs.ParsedFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	return fams
}

// TestMetricsEndpoint boots an instrumented gateway over a road-network
// coster, drives orders to terminal states, and asserts the exposition
// carries at least one family per instrumented layer: engine phases,
// order lifecycle, coster cache, and gateway latency.
func TestMetricsEndpoint(t *testing.T) {
	reg := mrvd.NewMetricsRegistry()
	svc := newObsTestService(t, 16,
		mrvd.WithCoster(mrvd.GraphCoster(7)),
		mrvd.WithObservability(reg, nil),
	)
	srv, ts, cancel := newTestServerWithService(t, svc, Config{
		Algorithm: "NEAR", Metrics: reg, Pprof: true,
	})
	defer cancel()
	_ = srv

	const orders = 5
	for i := 0; i < orders; i++ {
		resp, or := postOrder(t, ts, true, 600)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("order %d: status %d", i, resp.StatusCode)
		}
		if or.Status != "assigned" && or.Status != "expired" {
			t.Fatalf("order %d non-terminal: %q", i, or.Status)
		}
	}

	fams := scrapeMetrics(t, ts.URL)
	count := func(name string) float64 {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing; scrape has %v", name, obs.FamilyNames(fams))
		}
		var total float64
		for _, s := range f.Samples {
			switch {
			case s.Name == name: // counter/gauge samples
				total += s.Value
			case s.Name == name+"_count": // histogram totals
				total += s.Value
			}
		}
		return total
	}

	// Engine phases: every batch round observed all four.
	if n := count("mrvd_dispatch_phase_seconds"); n <= 0 {
		t.Errorf("no dispatch phase observations")
	}
	// Order lifecycle: everything submitted was admitted and terminal.
	if n := count("mrvd_orders_admitted_total"); n != orders {
		t.Errorf("admitted = %v, want %d", n, orders)
	}
	if n := count("mrvd_orders_terminal_total"); n != orders {
		t.Errorf("terminal = %v, want %d", n, orders)
	}
	// Coster cache: the graph coster priced pickups, so trees were
	// built and the cache was exercised.
	if n := count("mrvd_coster_trees_total") + count("mrvd_coster_partial_trees_total"); n <= 0 {
		t.Errorf("no coster tree computations recorded")
	}
	if n := count("mrvd_coster_settled_nodes_total"); n <= 0 {
		t.Errorf("no settled nodes recorded")
	}
	// Gateway latency: one submit→terminal sample per resolved order.
	if n := count("mrvd_submit_terminal_seconds"); n != orders {
		t.Errorf("latency samples = %v, want %d", n, orders)
	}

	// Opt-in pprof rides along.
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
}

// TestMetricsEndpointAbsentWhenDisabled pins the opt-in contract: a
// gateway without Config.Metrics mounts neither /metrics nor pprof.
func TestMetricsEndpointAbsentWhenDisabled(t *testing.T) {
	_, ts, cancel := newTestServer(t, 4, 0, Config{Algorithm: "NEAR"})
	defer cancel()
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestStatsAggregatesShardCosters pins the satellite bugfix: with
// per-shard road-network costers the top-level /v1/stats coster block
// is the sum over shards, not the unused base coster's zeros.
func TestStatsAggregatesShardCosters(t *testing.T) {
	reg := mrvd.NewMetricsRegistry()
	svc := newObsTestService(t, 16,
		mrvd.WithShards(2),
		mrvd.WithShardCosters(mrvd.GraphCosters(7)),
		mrvd.WithObservability(reg, nil),
	)
	_, ts, cancel := newTestServerWithService(t, svc, Config{
		Algorithm: "NEAR", Metrics: reg,
	})
	defer cancel()

	const orders = 6
	for i := 0; i < orders; i++ {
		if resp, _ := postOrder(t, ts, true, 600); resp.StatusCode != http.StatusOK {
			t.Fatalf("order %d: status %d", i, resp.StatusCode)
		}
	}

	var stats statsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if len(stats.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(stats.Shards))
	}
	if stats.Coster == nil {
		t.Fatal("top-level coster stats missing in sharded mode")
	}
	if stats.Coster.Trees+stats.Coster.PartialTrees == 0 {
		t.Error("aggregated coster did no pricing work")
	}
	var sum int64
	for _, sh := range stats.Shards {
		if sh.Coster != nil {
			sum += sh.Coster.Trees + sh.Coster.PartialTrees
		}
	}
	if got := stats.Coster.Trees + stats.Coster.PartialTrees; got != sum {
		t.Errorf("aggregate trees = %d, want sum over shards %d", got, sum)
	}

	// Sharded instrumentation surfaces per-shard round timings.
	fams := scrapeMetrics(t, ts.URL)
	rounds := fams["mrvd_shard_round_seconds"]
	if rounds == nil {
		t.Fatalf("mrvd_shard_round_seconds missing; scrape has %v", obs.FamilyNames(fams))
	}
	shardsSeen := map[string]bool{}
	for _, s := range rounds.Samples {
		if s.Name == "mrvd_shard_round_seconds_count" && s.Value > 0 {
			shardsSeen[s.Labels["shard"]] = true
		}
	}
	if len(shardsSeen) != 2 {
		t.Errorf("round timings for shards %v, want both shards", shardsSeen)
	}
}
