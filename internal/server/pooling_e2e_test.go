package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mrvd"
)

// newPooledTestServer boots a single-driver pooled gateway. One car and
// a paced engine force the second submission to ride along: the only
// feasible assignment while the first trip is underway is an insertion
// into its route plan.
func newPooledTestServer(t *testing.T, capacity int, maxDetour, pace float64) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := mrvd.NewService(
		mrvd.WithCity(mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 2000, Seed: 17})),
		mrvd.WithFleet(1),
		mrvd.WithBatchInterval(3),
		mrvd.WithHorizon(10*365*24*3600),
		mrvd.WithPrediction(mrvd.PredictNone, nil),
		mrvd.WithPooling(capacity, maxDetour),
		// ~300 simulated seconds per wall second: fast enough that both
		// trips complete in a few seconds, slow enough that the second
		// order arrives long before the first trip ends.
		mrvd.WithPace(pace),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts, _ := newTestServerWith(t, svc, Config{Algorithm: "POOL", Fleet: 1})
	return srv, ts
}

func newTestServerWith(t *testing.T, svc *mrvd.Service, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := New(ctx, svc, cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		cancel()
		<-srv.Handle().Done()
		ts.Close()
	})
	return srv, ts, cancel
}

func postOrderAt(t *testing.T, ts *httptest.Server, pickup, dropoff pointJSON) orderResponse {
	t.Helper()
	body, _ := json.Marshal(orderRequest{
		Pickup: pickup, Dropoff: dropoff, PatienceSeconds: 1e6,
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/orders?wait=true", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d, want 200", resp.StatusCode)
	}
	var or orderResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatal(err)
	}
	return or
}

// TestEndToEndPooledRide drives a shared trip over real HTTP: rider A
// takes the fleet's only car on a long diagonal; rider B, posted along
// that path, must be served by insertion. The wire response, driver
// view, stats counters, and SSE stream all surface the pooled state.
func TestEndToEndPooledRide(t *testing.T) {
	const maxDetour = 600.0
	_, ts := newPooledTestServer(t, 2, maxDetour, 300)

	// Subscribe to the event stream before any order exists so the
	// pickup/dropoff events cannot be missed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	stream, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	// A long diagonal for A; B's pickup and dropoff sit on it, so the
	// insertion detour is near zero and far under the bound.
	a := postOrderAt(t, ts,
		pointJSON{Lng: -73.99, Lat: 40.72}, pointJSON{Lng: -73.91, Lat: 40.80})
	if a.Status != "assigned" || a.Assigned == nil {
		t.Fatalf("rider A not assigned: %+v", a)
	}
	if a.Assigned.Shared {
		t.Fatalf("rider A owns the trip, must not be marked shared: %+v", a.Assigned)
	}
	b := postOrderAt(t, ts,
		pointJSON{Lng: -73.97, Lat: 40.74}, pointJSON{Lng: -73.93, Lat: 40.78})
	if b.Status != "assigned" || b.Assigned == nil {
		t.Fatalf("rider B not assigned: %+v", b)
	}
	if !b.Assigned.Shared {
		t.Fatalf("rider B was not pooled: %+v", b.Assigned)
	}
	if d := b.Assigned.DetourSeconds; d < 0 || d > maxDetour {
		t.Fatalf("rider B planned detour %.1fs outside [0, %.0f]", d, maxDetour)
	}
	if a.Driver == nil || b.Driver == nil || *a.Driver != *b.Driver {
		t.Fatalf("riders split across drivers in a one-car fleet: %v vs %v", a.Driver, b.Driver)
	}

	// Mid-trip driver view: the only car is busy working a multi-stop
	// plan (4 stops before any pickup, fewer as stops complete).
	var drivers []driverResponse
	getJSON(t, ts, "/v1/drivers", &drivers)
	if len(drivers) != 1 {
		t.Fatalf("drivers listed: %d, want 1", len(drivers))
	}
	if d := drivers[0]; !d.Busy || d.RemainingStops < 1 || d.RemainingStops > 4 || d.Onboard < 0 || d.Onboard > 2 {
		t.Fatalf("mid-trip driver view implausible: %+v", d)
	}

	// The stream must deliver both pickups and both dropoffs, with the
	// onboard count peaking at 2 and exactly B's dropoff marked shared.
	scanner := bufio.NewScanner(stream.Body)
	pickups, dropoffs, maxOnboard := 0, 0, 0
	sharedDrops := 0
	deadline := time.Now().Add(30 * time.Second)
	for (pickups < 2 || dropoffs < 2) && time.Now().Before(deadline) && scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch ev.Type {
		case "pickup":
			pickups++
			if ev.Onboard == nil || ev.Stops == nil {
				t.Fatalf("pickup event missing onboard/stops: %q", line)
			}
			if *ev.Onboard > maxOnboard {
				maxOnboard = *ev.Onboard
			}
		case "dropoff":
			dropoffs++
			if ev.Shared != nil && *ev.Shared {
				sharedDrops++
				if ev.Order == nil || *ev.Order != b.ID {
					t.Fatalf("shared dropoff for the wrong order: %q", line)
				}
				if ev.Detour == nil || *ev.Detour < 0 || *ev.Detour > maxDetour {
					t.Fatalf("shared dropoff detour out of bounds: %q", line)
				}
			}
		}
	}
	if pickups != 2 || dropoffs != 2 {
		t.Fatalf("stream carried %d pickups / %d dropoffs, want 2/2 (scan err %v)",
			pickups, dropoffs, scanner.Err())
	}
	if maxOnboard != 2 {
		t.Fatalf("onboard never reached 2 on the stream (peak %d)", maxOnboard)
	}
	if sharedDrops != 1 {
		t.Fatalf("%d shared dropoffs on the stream, want exactly 1", sharedDrops)
	}

	// Terminal stats: one shared insertion committed, two stops of each
	// kind completed, realized detour within the bound.
	var stats statsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Engine.SharedAssigned != 1 {
		t.Errorf("stats shared_assigned = %d, want 1", stats.Engine.SharedAssigned)
	}
	if stats.Engine.PickedUp != 2 || stats.Engine.DroppedOff != 2 {
		t.Errorf("stats picked_up/dropped_off = %d/%d, want 2/2",
			stats.Engine.PickedUp, stats.Engine.DroppedOff)
	}
	if d := stats.Engine.DetourSeconds; d < 0 || d > maxDetour {
		t.Errorf("stats detour_seconds %.1f outside [0, %.0f]", d, maxDetour)
	}

	// And the driver is idle again with an empty plan.
	getJSON(t, ts, "/v1/drivers", &drivers)
	if d := drivers[0]; d.Onboard != 0 || d.RemainingStops != 0 || d.Served != 2 {
		t.Errorf("post-trip driver view %+v, want onboard 0, stops 0, served 2", d)
	}

	// The stored order view agrees with the long-poll outcome.
	var view orderResponse
	getJSON(t, ts, fmt.Sprintf("/v1/orders/%d", b.ID), &view)
	if view.Assigned == nil || !view.Assigned.Shared {
		t.Errorf("stored view of rider B lost the shared flag: %+v", view)
	}
}
