package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"mrvd"
	"mrvd/internal/obs"
)

// waitForFamily blocks until the registry gathers the named family —
// the engine registers its instruments on the serve goroutine, so a
// freshly started gateway races their creation.
func waitForFamily(t *testing.T, reg *obs.Registry, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, f := range reg.Gather() {
			if f.Name == name {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("family %s never appeared in the registry", name)
}

// TestTimeseriesEndToEnd drives load through an instrumented gateway
// with collection enabled and asserts the three observability surfaces
// agree: the /v1/timeseries ring-buffer dump, the enriched /healthz,
// and a /metrics scrape. The collector runs with an hour-long ticker
// and is advanced manually, so every window boundary is deterministic.
func TestTimeseriesEndToEnd(t *testing.T) {
	reg := mrvd.NewMetricsRegistry()
	svc := newObsTestService(t, 16, mrvd.WithObservability(reg, nil))
	srv, ts, cancel := newTestServerWithService(t, svc, Config{
		Algorithm: "NEAR", Metrics: reg,
		Collect: true, CollectInterval: time.Hour, CollectWindows: 16,
	})
	defer cancel()
	col := srv.Collector()
	if col == nil {
		t.Fatal("Collect set but no collector")
	}

	waitForFamily(t, reg, "mrvd_orders_admitted_total")
	col.Tick(time.Unix(1000, 0)) // baseline: every family's first sight

	const orders = 6
	for i := 0; i < orders; i++ {
		resp, or := postOrder(t, ts, true, 600)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("order %d: status %d", i, resp.StatusCode)
		}
		if or.Status != "assigned" && or.Status != "expired" {
			t.Fatalf("order %d non-terminal: %q", i, or.Status)
		}
	}

	// Subscribe right before the collected window: the free-running
	// engine streams batch events continuously, and an early subscriber
	// with a full buffer would have the window push dropped.
	sub := srv.hub.subscribe()
	defer srv.hub.unsubscribe(sub)

	col.Tick(time.Unix(4600, 0)) // the window carrying all the load

	// The tick pushed a "window" event to the live SSE hub.
	deadline := time.After(2 * time.Second)
	var sawWindow bool
	for !sawWindow {
		select {
		case payload, ok := <-sub:
			if !ok {
				t.Fatal("hub closed before a window event arrived")
			}
			if bytes.Contains(payload, []byte(`"type":"window"`)) {
				sawWindow = true
				var snap obs.WindowSnapshot
				if err := json.Unmarshal(payload, &snap); err != nil {
					t.Fatalf("window event does not decode: %v", err)
				}
				if snap.State != obs.StateOK {
					t.Errorf("window state = %q, want ok", snap.State)
				}
			}
		case <-deadline:
			t.Fatal("no window SSE event within deadline")
		}
	}

	var dump obs.TimeSeries
	getJSON(t, ts, "/v1/timeseries", &dump)
	if dump.Windows != 2 {
		t.Fatalf("windows = %d, want 2", dump.Windows)
	}
	if dump.IntervalSeconds != 3600 {
		t.Fatalf("interval = %v, want 3600", dump.IntervalSeconds)
	}

	// sumCount folds a family's rate series back into a cumulative
	// count: rate points are per-second deltas, so sum * interval
	// recovers everything observed since the baseline window.
	sumCount := func(family string) float64 {
		var total float64
		for _, s := range dump.Series {
			if s.Family != family || s.Stat != obs.StatRate {
				continue
			}
			for _, p := range s.Points {
				if p != nil {
					total += *p
				}
			}
		}
		return math.Round(total * dump.IntervalSeconds)
	}

	fams := scrapeMetrics(t, ts.URL)
	scraped := func(name, sample string) float64 {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing from scrape", name)
		}
		var total float64
		for _, s := range f.Samples {
			if s.Name == sample {
				total += s.Value
			}
		}
		return total
	}

	// All load happened after the baseline window, so the time series
	// and the cumulative scrape must agree exactly.
	if got, want := sumCount("mrvd_orders_admitted_total"), scraped("mrvd_orders_admitted_total", "mrvd_orders_admitted_total"); got != want {
		t.Errorf("timeseries admitted = %v, scrape says %v", got, want)
	}
	if got, want := sumCount("mrvd_orders_terminal_total"), scraped("mrvd_orders_terminal_total", "mrvd_orders_terminal_total"); got != want {
		t.Errorf("timeseries terminal = %v, scrape says %v", got, want)
	}
	if got, want := sumCount("mrvd_submit_terminal_seconds"), scraped("mrvd_submit_terminal_seconds", "mrvd_submit_terminal_seconds_count"); got != want {
		t.Errorf("timeseries latency count = %v, scrape says %v", got, want)
	}
	// The latency histogram also derives a quantile series with a real
	// point in the loaded window.
	var p95 *obs.SeriesDump
	for i := range dump.Series {
		s := &dump.Series[i]
		if s.Family == "mrvd_submit_terminal_seconds" && s.Stat == obs.StatP95 {
			p95 = s
		}
	}
	if p95 == nil {
		t.Fatal("no p95 series for mrvd_submit_terminal_seconds")
	}
	last := p95.Points[len(p95.Points)-1]
	if last == nil || *last < 0 {
		t.Errorf("p95 point = %v, want a non-negative value in the loaded window", last)
	}
	// The queue gauges ride along with engine instrumentation.
	foundQueue := false
	for _, s := range dump.Series {
		if s.Family == "mrvd_queue_depth" && s.Stat == obs.StatValue {
			foundQueue = true
		}
	}
	if !foundQueue {
		t.Error("no mrvd_queue_depth series in the dump")
	}

	// The enriched /healthz carries the same health snapshot the dump
	// embeds: default rules, all ok under light load.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
	var h obs.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != obs.StateOK {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}
	if len(h.Rules) != len(obs.DefaultDispatchRules()) {
		t.Errorf("healthz rules = %d, want the default set (%d)", len(h.Rules), len(obs.DefaultDispatchRules()))
	}
	if h.Status != dump.Health.Status {
		t.Errorf("healthz status %q disagrees with timeseries health %q", h.Status, dump.Health.Status)
	}
}

// TestHealthzStatusCodes pins the state→status-code mapping: a firing
// degraded rule turns /healthz into 429, an unhealthy one into 503.
func TestHealthzStatusCodes(t *testing.T) {
	reg := mrvd.NewMetricsRegistry()
	svc := newObsTestService(t, 8, mrvd.WithObservability(reg, nil))
	// A rule that fires as soon as any rate window exists: every rate
	// is > -1 once the family has two sightings.
	rules := []obs.Rule{{
		Name:   "always-degraded",
		Metric: obs.Selector{Family: "mrvd_orders_admitted_total", Stat: obs.StatRate},
		Op:     ">", Threshold: -1,
	}}
	srv, ts, cancel := newTestServerWithService(t, svc, Config{
		Algorithm: "NEAR", Metrics: reg,
		Collect: true, CollectInterval: time.Hour, CollectWindows: 8,
		Rules: rules,
	})
	defer cancel()
	col := srv.Collector()

	status := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status(); got != http.StatusOK {
		t.Fatalf("pre-collection healthz = %d, want 200", got)
	}
	waitForFamily(t, reg, "mrvd_orders_admitted_total")
	col.Tick(time.Unix(1000, 0))
	if got := status(); got != http.StatusOK {
		t.Fatalf("first-sight healthz = %d, want 200 (no data, rule frozen)", got)
	}
	col.Tick(time.Unix(4600, 0))
	if got := status(); got != http.StatusTooManyRequests {
		t.Fatalf("degraded healthz = %d, want 429", got)
	}
	h := col.Health()
	if h.Status != obs.StateDegraded || len(h.Events) != 1 {
		t.Fatalf("health = %+v, want one degraded firing", h)
	}

	// Session over beats rule state: the gateway reports 503.
	cancel()
	<-srv.Handle().Done()
	if got := status(); got != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown healthz = %d, want 503", got)
	}
}
