package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkGatewayThroughput measures the HTTP submit path end to end:
// concurrent clients POST orders (fire-and-forget) against a live
// gateway over loopback while the free-running engine dispatches them.
// ns/op is the wall cost of one accepted submission — its inverse is
// the committed orders/sec headline in BENCH_serve.json.
func BenchmarkGatewayThroughput(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := New(ctx, newTestService(b, 256, 0), Config{
		Algorithm:  "NEAR",
		Fleet:      256,
		MaxPending: 1 << 20, // throughput, not backpressure, is under test
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(orderRequest{
		Pickup:          pointJSON{Lng: -73.97, Lat: 40.75},
		Dropoff:         pointJSON{Lng: -73.95, Lat: 40.77},
		PatienceSeconds: 1e7,
	})
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/v1/orders", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusAccepted {
				b.Errorf("status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body) // drain so keep-alive reuses the conn
			resp.Body.Close()
		}
	})
}
