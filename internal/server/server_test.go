package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mrvd"
)

// newTestService builds a small live-serve service. pace 0 free-runs
// the engine (orders resolve within wall-microseconds, the e2e mode);
// pace 1 runs batches every Delta wall-seconds (the backpressure mode,
// where submissions pile up between batches).
func newTestService(t testing.TB, fleet int, pace float64) *mrvd.Service {
	t.Helper()
	opts := []mrvd.Option{
		mrvd.WithCity(mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 2000, Seed: 17})),
		mrvd.WithFleet(fleet),
		mrvd.WithBatchInterval(3),
		// Ten simulated years: far beyond what even a free-running
		// engine burns through during a test, so sessions end the way
		// each test dictates (cancel or drain), never at the horizon.
		mrvd.WithHorizon(10 * 365 * 24 * 3600),
		mrvd.WithPrediction(mrvd.PredictNone, nil),
	}
	if pace > 0 {
		opts = append(opts, mrvd.WithPace(pace))
	}
	svc, err := mrvd.NewService(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func newTestServer(t testing.TB, fleet int, pace float64, cfg Config) (*Server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Fleet = fleet
	srv, err := New(ctx, newTestService(t, fleet, pace), cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		cancel()
		<-srv.Handle().Done()
		ts.Close()
	})
	return srv, ts, cancel
}

func postOrder(t *testing.T, ts *httptest.Server, wait bool, patience float64) (*http.Response, orderResponse) {
	t.Helper()
	body, _ := json.Marshal(orderRequest{
		Pickup:          pointJSON{Lng: -73.97, Lat: 40.75},
		Dropoff:         pointJSON{Lng: -73.95, Lat: 40.77},
		PatienceSeconds: patience,
	})
	url := ts.URL + "/v1/orders"
	if wait {
		url += "?wait=true"
	}
	resp, err := ts.Client().Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var or orderResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, or
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func TestGatewaySubmitWaitResolves(t *testing.T) {
	_, ts, _ := newTestServer(t, 20, 0, Config{Algorithm: "NEAR"})
	resp, or := postOrder(t, ts, true, 1e6)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if or.Status != "assigned" {
		t.Fatalf("order status %q, want assigned", or.Status)
	}
	if or.Driver == nil || or.Assigned == nil {
		t.Fatal("assigned order missing driver/assignment detail")
	}
	if or.WaitMS <= 0 {
		t.Error("wait latency not reported")
	}

	// The state store agrees with the long-poll result.
	var view orderResponse
	if got := getJSON(t, ts, fmt.Sprintf("/v1/orders/%d", or.ID), &view); got.StatusCode != http.StatusOK {
		t.Fatalf("GET order status %d", got.StatusCode)
	}
	if view.Status != "assigned" || view.Driver == nil || *view.Driver != *or.Driver {
		t.Errorf("stored view %+v diverges from outcome %+v", view, or)
	}
}

func TestGatewaySubmitAsync(t *testing.T) {
	_, ts, _ := newTestServer(t, 20, 0, Config{Algorithm: "NEAR"})
	resp, or := postOrder(t, ts, false, 1e6)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	// Eventually terminal via polling the read API.
	deadline := time.Now().Add(20 * time.Second)
	for {
		var view orderResponse
		getJSON(t, ts, fmt.Sprintf("/v1/orders/%d", or.ID), &view)
		if view.Status == "assigned" || view.Status == "expired" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("order %d stuck in %q", or.ID, view.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayRejectsBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, 5, 0, Config{Algorithm: "NEAR"})
	resp, err := ts.Client().Post(ts.URL+"/v1/orders", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if got := getJSON(t, ts, "/v1/orders/999999", nil); got.StatusCode != http.StatusNotFound {
		t.Errorf("unknown order: status %d, want 404", got.StatusCode)
	}
	if got := getJSON(t, ts, "/v1/orders/abc", nil); got.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric id: status %d, want 400", got.StatusCode)
	}
}

// TestGatewayBackpressure pins the admission-control contract: with the
// engine paced (a batch only every 3 wall-seconds) and a small pending
// bound, a burst of submissions overflows the queue and overflow gets
// 429, not unbounded buffering.
func TestGatewayBackpressure(t *testing.T) {
	const maxPending = 8
	_, ts, _ := newTestServer(t, 4, 1, Config{Algorithm: "NEAR", MaxPending: maxPending})
	accepted, rejected := 0, 0
	for i := 0; i < 4*maxPending; i++ {
		resp, _ := postOrder(t, ts, false, 1e6)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if rejected == 0 {
		t.Fatal("no 429 despite overflowing the pending queue")
	}
	if accepted < maxPending {
		t.Errorf("accepted %d, want at least the bound %d", accepted, maxPending)
	}
	var stats statsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.MaxPending != maxPending {
		t.Errorf("stats max_pending = %d, want %d", stats.MaxPending, maxPending)
	}
	if stats.InFlight > maxPending {
		t.Errorf("in-flight %d exceeds the bound %d", stats.InFlight, maxPending)
	}
}

// TestGatewayBackpressureConcurrent fires a parallel burst at a small
// bound: the limit is reserved atomically inside Submit, so in-flight
// must never exceed it no matter how many requests race the check.
func TestGatewayBackpressureConcurrent(t *testing.T) {
	const maxPending = 8
	srv, ts, _ := newTestServer(t, 4, 1, Config{Algorithm: "NEAR", MaxPending: maxPending})
	const burst = 64
	codes := make(chan int, burst)
	body, _ := json.Marshal(orderRequest{
		Pickup:          pointJSON{Lng: -73.97, Lat: 40.75},
		Dropoff:         pointJSON{Lng: -73.95, Lat: 40.77},
		PatienceSeconds: 1e6,
	})
	for i := 0; i < burst; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/orders", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	accepted, rejected := 0, 0
	for i := 0; i < burst; i++ {
		switch <-codes {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatal("unexpected submit result")
		}
	}
	// A 3s-paced batch may resolve a few waiters mid-burst (freeing
	// slots), so accepted can exceed the bound by at most what one
	// batch can assign or expire — never by the raced check itself.
	if accepted < maxPending || rejected == 0 {
		t.Fatalf("accepted=%d rejected=%d with bound %d", accepted, rejected, maxPending)
	}
	if got := srv.Handle().InFlight(); got > maxPending {
		t.Errorf("in-flight %d exceeds the bound %d after concurrent burst", got, maxPending)
	}
}

func TestGatewayDriversAndStats(t *testing.T) {
	const fleet = 12
	_, ts, _ := newTestServer(t, fleet, 0, Config{Algorithm: "NEAR"})
	const n = 10
	for i := 0; i < n; i++ {
		if resp, _ := postOrder(t, ts, true, 1e6); resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	var drivers []driverResponse
	getJSON(t, ts, "/v1/drivers", &drivers)
	if len(drivers) != fleet {
		t.Fatalf("drivers listed: %d, want %d", len(drivers), fleet)
	}
	served := 0
	for _, d := range drivers {
		served += d.Served
	}
	var stats statsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Engine.Submitted != n {
		t.Errorf("stats submitted = %d, want %d", stats.Engine.Submitted, n)
	}
	if stats.Engine.Assigned+stats.Engine.Expired != n {
		t.Errorf("terminal outcomes %d+%d, want %d",
			stats.Engine.Assigned, stats.Engine.Expired, n)
	}
	if served != stats.Engine.Assigned {
		t.Errorf("driver served sum %d != assigned %d", served, stats.Engine.Assigned)
	}
	if stats.Engine.Batch == 0 || stats.Engine.Clock == 0 {
		t.Error("engine clock/batch counters not advancing")
	}
	if stats.InFlight != 0 {
		t.Errorf("in-flight %d after all outcomes, want 0", stats.InFlight)
	}

	var all []orderResponse
	getJSON(t, ts, "/v1/orders", &all)
	if len(all) != n {
		t.Errorf("order list length %d, want %d", len(all), n)
	}
}

func TestGatewayEventsSSE(t *testing.T) {
	_, ts, _ := newTestServer(t, 8, 0, Config{Algorithm: "NEAR"})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// Submit one order; the stream must carry its assignment (and the
	// free-running engine's batch events around it).
	go func() {
		body, _ := json.Marshal(orderRequest{
			Pickup:          pointJSON{Lng: -73.97, Lat: 40.75},
			Dropoff:         pointJSON{Lng: -73.95, Lat: 40.77},
			PatienceSeconds: 1e6,
		})
		r, err := ts.Client().Post(ts.URL+"/v1/orders", "application/json", bytes.NewReader(body))
		if err == nil {
			r.Body.Close()
		}
	}()
	scanner := bufio.NewScanner(resp.Body)
	sawBatch, sawAssigned := false, false
	deadline := time.Now().Add(20 * time.Second)
	for scanner.Scan() && time.Now().Before(deadline) {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch ev.Type {
		case "batch":
			sawBatch = true
		case "assigned", "expired":
			sawAssigned = true
		}
		if sawBatch && sawAssigned {
			return
		}
	}
	t.Fatalf("stream ended early: batch=%v assigned=%v (scan err %v)", sawBatch, sawAssigned, scanner.Err())
}

func TestGatewayHealthAndShutdown(t *testing.T) {
	srv, ts, cancel := newTestServer(t, 5, 0, Config{Algorithm: "NEAR"})
	if got := getJSON(t, ts, "/healthz", nil); got.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", got.StatusCode)
	}
	cancel()
	<-srv.Handle().Done()
	if got := getJSON(t, ts, "/healthz", nil); got.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: %d, want 503", got.StatusCode)
	}
	// Submits after shutdown are the service going away (503), not a
	// client error, and fail rather than hanging.
	resp, _ := postOrder(t, ts, false, 100)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %d, want 503", resp.StatusCode)
	}
	// SSE subscriptions are refused once the hub closed.
	if got := getJSON(t, ts, "/v1/events", nil); got.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("events after shutdown: %d, want 503", got.StatusCode)
	}
}

func TestGatewayDrain(t *testing.T) {
	srv, ts, _ := newTestServer(t, 10, 0, Config{Algorithm: "NEAR"})
	for i := 0; i < 5; i++ {
		if resp, _ := postOrder(t, ts, true, 1e6); resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d failed", i)
		}
	}
	srv.Drain()
	// A submit during/after the drain is the service going away: 503,
	// not a 4xx blaming the order.
	if resp, _ := postOrder(t, ts, false, 100); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d, want 503", resp.StatusCode)
	}
	m, err := srv.Result()
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Reneged != 5 {
		t.Errorf("final metrics %d+%d, want 5", m.Served, m.Reneged)
	}
}
