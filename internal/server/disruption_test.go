package server

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mrvd"
)

// submitAt posts one order with explicit endpoints.
func submitAt(t *testing.T, ts *httptest.Server, wait bool, pickup, dropoff pointJSON, patience float64) (*http.Response, orderResponse) {
	t.Helper()
	body, _ := json.Marshal(orderRequest{Pickup: pickup, Dropoff: dropoff, PatienceSeconds: patience})
	url := ts.URL + "/v1/orders"
	if wait {
		url += "?wait=true"
	}
	resp, err := ts.Client().Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var or orderResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, or
}

func deleteOrder(t *testing.T, ts *httptest.Server, id int64) (*http.Response, orderResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/orders/"+itoa(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var or orderResponse
	if resp.StatusCode < 300 {
		_ = json.NewDecoder(resp.Body).Decode(&or)
	}
	return resp, or
}

func itoa(id int64) string {
	b, _ := json.Marshal(id)
	return string(b)
}

// TestEndToEndDisruptions drives all three disruptions through the HTTP
// gateway against one serve session: a rider cancel via DELETE resolves
// the order's long-poll, a driver-declined assignment re-dispatches to
// a successful assignment, and noisy realized travel times reconcile
// against the estimate-vs-realized ledger in the final metrics.
func TestEndToEndDisruptions(t *testing.T) {
	// Pick a scenario seed whose first decline draw rejects and second
	// accepts, so the declined order's lifecycle is deterministic:
	// decline → cooldown → re-dispatch → assigned.
	const declineProb = 0.5
	seed := int64(-1)
	for s := int64(0); s < 1000; s++ {
		r := rand.New(rand.NewSource(s))
		if r.Float64() < declineProb && r.Float64() >= declineProb {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed with decline-then-accept draws")
	}

	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 2000, Seed: 17})
	box := city.Grid().Bounds()
	const fleet = 20
	starts := make([]mrvd.Point, fleet)
	for i := range starts {
		starts[i] = mrvd.Point{Lng: box.MinLng + 1e-3 + float64(i%5)*2e-4, Lat: box.MinLat + 1e-3}
	}
	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(fleet),
		mrvd.WithBatchInterval(3),
		mrvd.WithHorizon(10*365*24*3600),
		mrvd.WithPrediction(mrvd.PredictNone, nil),
		// Paced so the canceled order's engine-time patience outlives
		// the test's wall-clock DELETE; a free-running engine would
		// expire it in milliseconds.
		mrvd.WithPace(100),
		mrvd.WithScenario(mrvd.ScenarioConfig{
			DeclineProb: declineProb,
			TravelNoise: 0.25,
			Seed:        seed,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(t.Context(), svc, Config{Algorithm: "NEAR", Fleet: fleet, Starts: starts})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	nearFleet := pointJSON{Lng: box.MinLng + 1e-3, Lat: box.MinLat + 1e-3}
	nearDrop := pointJSON{Lng: box.MinLng + 2e-2, Lat: box.MinLat + 1e-2}
	farCorner := pointJSON{Lng: box.MaxLng - 1e-3, Lat: box.MaxLat - 1e-3}

	// --- (1) Rider cancel via DELETE resolves the long-poll. ---
	// The far-corner pickup is deadline-infeasible from the fleet's
	// corner (the trip there costs more than the whole patience), so
	// the order waits until the DELETE. The session's first order gets
	// id 0; the long-poll runs concurrently.
	const farPatience = 3000
	minPickup := mrvd.DefaultCoster().Cost(
		mrvd.Point{Lng: starts[0].Lng, Lat: starts[0].Lat},
		mrvd.Point{Lng: farCorner.Lng, Lat: farCorner.Lat})
	if minPickup <= farPatience {
		t.Fatalf("setup: far corner reachable in %.0fs, patience %v", minPickup, farPatience)
	}
	waitDone := make(chan orderResponse, 1)
	go func() {
		_, or := submitAt(t, ts, true, farCorner, nearDrop, farPatience)
		waitDone <- or
	}()
	// The DELETE races the POST's acceptance: retry until the order is
	// known to the session.
	var delResp *http.Response
	for deadline := time.Now().Add(10 * time.Second); ; {
		delResp, _ = deleteOrder(t, ts, 0)
		if delResp.StatusCode != http.StatusNotFound || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE /v1/orders/0: status %d, want 202", delResp.StatusCode)
	}
	select {
	case or := <-waitDone:
		if or.Status != "canceled_by_rider" {
			t.Fatalf("long-poll resolved %q, want canceled_by_rider", or.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancel never resolved the long-poll")
	}
	var view orderResponse
	if resp := getJSON(t, ts, "/v1/orders/0", &view); resp.StatusCode != 200 {
		t.Fatalf("GET canceled order: %d", resp.StatusCode)
	}
	if view.Status != "canceled_by_rider" || view.Canceled == nil {
		t.Fatalf("canceled order view %+v", view)
	}
	// Cancelling a terminal order is refused with its current view.
	if resp, _ := deleteOrder(t, ts, 0); resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: status %d, want 409", resp.StatusCode)
	}
	if resp, _ := deleteOrder(t, ts, 999); resp.StatusCode != http.StatusNotFound {
		t.Fatal("DELETE of unknown order not 404")
	}

	// --- (2) A declined assignment re-dispatches successfully. ---
	// First commit draw declines (driver cooldown), second accepts: the
	// long-poll still ends assigned, with the decline on the record.
	resp, or := submitAt(t, ts, true, nearFleet, nearDrop, 3000)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feasible order: status %d", resp.StatusCode)
	}
	if or.Status != "assigned" || or.Assigned == nil {
		t.Fatalf("declined order did not re-dispatch: %+v", or)
	}
	if or.Declines != 1 {
		t.Fatalf("order survived %d declines, want exactly 1", or.Declines)
	}
	var stats statsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Engine.Declined != 1 || stats.Engine.Canceled != 1 {
		t.Fatalf("engine stats declined=%d canceled=%d, want 1/1", stats.Engine.Declined, stats.Engine.Canceled)
	}

	// --- (3) Noisy travel times reconcile in the ledger. ---
	srv.Drain()
	m, err := srv.Result()
	if err != nil {
		t.Fatal(err)
	}
	if m.Canceled != 1 || m.Declines != 1 || m.Served != 1 {
		t.Fatalf("session metrics: canceled=%d declines=%d served=%d, want 1/1/1", m.Canceled, m.Declines, m.Served)
	}
	if len(m.TravelRecords) != 1 {
		t.Fatalf("%d travel records, want 1", len(m.TravelRecords))
	}
	rec := m.TravelRecords[0]
	if rec.TripRealized == rec.TripEstimate && rec.PickupRealized == rec.PickupEstimate {
		t.Fatalf("noise perturbed nothing: %+v", rec)
	}
	// The ledger's realized values are exactly what the API reported
	// back to the rider and what the books collected.
	if or.Assigned.PickupCost != rec.PickupRealized || or.Assigned.Revenue != rec.TripRealized {
		t.Fatalf("API outcome (pickup %v, revenue %v) disagrees with ledger %+v",
			or.Assigned.PickupCost, or.Assigned.Revenue, rec)
	}
	if math.Abs(m.Revenue-rec.TripRealized) > 1e-9 || math.Abs(m.PickupSeconds-rec.PickupRealized) > 1e-9 {
		t.Fatalf("metrics (revenue %v, pickup %v) disagree with ledger %+v", m.Revenue, m.PickupSeconds, rec)
	}
}
