// Package server is the network edge of the dispatch engine: an
// HTTP/JSON gateway over a live mrvd.ServeHandle session.
//
// Endpoints:
//
//	POST /v1/orders        submit an order; ?wait=true long-polls for its
//	                       terminal outcome. A full pending queue returns
//	                       429 (admission control / backpressure).
//	GET  /v1/orders/{id}   one order's live view (pending/assigned/expired)
//	GET  /v1/orders        every known order, sorted by id
//	GET  /v1/drivers       per-driver views (served, busy, position)
//	GET  /v1/events        dispatch events streamed as Server-Sent Events
//	GET  /v1/stats         engine counters, batch timings, coster cache stats
//	GET  /healthz          liveness (503 once the serve session has ended)
//
// The gateway stamps each order's PostTime off the engine clock (the
// latest batch boundary), so request patience counts engine seconds
// regardless of pacing; cmd/mrvd-serve runs the engine at WithPace(1)
// for wall-clock operation, and the load harness (internal/load) runs
// it faster for compressed benchmarking.
package server
