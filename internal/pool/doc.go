// Package pool models multi-rider trips: a driver's commitment is an
// ordered route plan of pickup and dropoff stops instead of a single
// (pickup, dropoff) pair, and new orders join an active plan through
// detour-bounded insertion.
//
// The package is deliberately engine-agnostic: a Plan is plain data
// (stops with committed arrival times), Best enumerates feasible
// insertion positions for a new Request under capacity, deadline and
// per-rider detour constraints, and Insert/Cancel splice the plan while
// preserving one invariant the simulation engine depends on: the plan's
// front stop — the leg the driver is already driving — is never
// reordered, retimed or removed. Insertions land at index >= 1, and a
// cancellation whose pickup is the front stop keeps it as an inert
// via-point, so a completion time scheduled for the front stop can
// never go stale.
//
// Travel costs enter through a CostFn callback. The engine backs it
// with the batch's many-to-many cost matrices (roadnet.BatchCoster), so
// insertion evaluation stays batched rather than issuing per-pair
// coster queries from inner loops.
package pool
