package pool

import (
	"math"
	"testing"

	"mrvd/internal/geo"
)

// The tests price legs with a Manhattan metric over raw coordinates so
// every ETA and shift below is exact integer arithmetic.
func pt(x, y float64) geo.Point { return geo.Point{Lng: x, Lat: y} }

func manhattan(a, b geo.Point) float64 {
	return math.Abs(a.Lng-b.Lng) + math.Abs(a.Lat-b.Lat)
}

func identity(v float64) float64 { return v }

// soloPlan is the two-stop plan a fresh assignment commits: pickup of
// order 1 at x=0 (ETA 10, deadline 100), dropoff at x=100 (ETA 110).
func soloPlan() *Plan {
	return &Plan{Stops: []Stop{
		{Kind: PickupStop, Order: 1, Pos: pt(0, 0), ETA: 10, Deadline: 100},
		{Kind: DropoffStop, Order: 1, Pos: pt(100, 0), ETA: 110, Direct: 100},
	}}
}

func TestConfigGates(t *testing.T) {
	for cap, want := range map[int]bool{0: false, 1: false, 2: true, 4: true} {
		if got := (Config{Capacity: cap}).Enabled(); got != want {
			t.Errorf("Capacity %d Enabled() = %v, want %v", cap, got, want)
		}
	}
	if d := (Config{Capacity: 2}).Detour(); d != 300 {
		t.Errorf("default detour = %v, want 300", d)
	}
	if d := (Config{Capacity: 2, MaxDetourSeconds: 45}).Detour(); d != 45 {
		t.Errorf("explicit detour = %v, want 45", d)
	}
}

func TestBestEmptyPlan(t *testing.T) {
	if _, ok := Best(&Plan{}, Request{}, 2, 300, manhattan); ok {
		t.Fatal("Best found an insertion into an empty plan")
	}
}

// TestBestOnTheWayInsertionIsFree: a rider whose pickup and dropoff lie
// on the committed route costs zero extra seconds, and both new stops
// land between the existing pickup and dropoff (indices >= 1: the front
// stop is never displaced).
func TestBestOnTheWayInsertionIsFree(t *testing.T) {
	p := soloPlan()
	req := Request{Order: 2, Pickup: pt(40, 0), Dropoff: pt(60, 0), Trip: 20, Deadline: 60}
	ins, ok := Best(p, req, 2, 300, manhattan)
	if !ok {
		t.Fatal("no insertion found for an on-the-way rider")
	}
	want := Insertion{PickupIndex: 1, DropIndex: 1, PickupETA: 50, DropETA: 70, Extra: 0}
	if ins != want {
		t.Fatalf("ins = %+v, want %+v", ins, want)
	}

	p.Insert(req, ins, manhattan, identity)
	wantETAs := []float64{10, 50, 70, 110}
	if len(p.Stops) != 4 {
		t.Fatalf("plan has %d stops after insert, want 4", len(p.Stops))
	}
	for i, eta := range wantETAs {
		if p.Stops[i].ETA != eta {
			t.Fatalf("stop %d ETA = %v, want %v (plan %+v)", i, p.Stops[i].ETA, eta, p.Stops)
		}
	}
	if p.Stops[0].Order != 1 || p.Stops[0].Kind != PickupStop {
		t.Fatal("front stop displaced by the insertion")
	}
	if pos, end := p.End(); pos != pt(100, 0) || end != 110 {
		t.Fatalf("End() = %v, %v after a free insertion", pos, end)
	}
}

// TestBestDetourExactlyAtBound pins the non-strict feasibility
// comparisons: an insertion that puts an existing rider exactly at the
// detour bound is admitted; one epsilon tighter rejects it (and every
// alternative placement is infeasible too).
func TestBestDetourExactlyAtBound(t *testing.T) {
	// Dropoff 10 off-axis: the splice detours the existing rider by
	// exactly 2*10 = 20 seconds.
	req := Request{Order: 2, Pickup: pt(40, 0), Dropoff: pt(60, 10), Trip: 30, Deadline: 60}

	ins, ok := Best(soloPlan(), req, 2, 20, manhattan)
	if !ok {
		t.Fatal("insertion exactly at the detour bound rejected")
	}
	if ins.PickupIndex != 1 || ins.DropIndex != 1 || ins.Extra != 20 {
		t.Fatalf("at-bound ins = %+v, want pickup 1, drop 1, extra 20", ins)
	}

	if ins, ok := Best(soloPlan(), req, 2, 20-1e-9, manhattan); ok {
		t.Fatalf("insertion past the detour bound admitted: %+v", ins)
	}
}

// TestBestPickupDeadlineExactlyAtETA: a request whose deadline equals
// the earliest reachable pickup time to the second is still feasible.
func TestBestPickupDeadlineExactlyAtETA(t *testing.T) {
	req := Request{Order: 2, Pickup: pt(40, 0), Dropoff: pt(60, 0), Trip: 20, Deadline: 50}
	ins, ok := Best(soloPlan(), req, 2, 300, manhattan)
	if !ok || ins.PickupETA != 50 {
		t.Fatalf("deadline == pickup ETA rejected: ok=%v ins=%+v", ok, ins)
	}
	req.Deadline = 50 - 1e-9
	if ins, ok := Best(soloPlan(), req, 2, 300, manhattan); ok {
		t.Fatalf("deadline before pickup ETA admitted: %+v", ins)
	}
}

// TestBestShiftedPickupDeadlineAtBound: an insertion may shift a later
// un-picked pickup; the shifted ETA may land exactly on that stop's
// deadline but not past it.
func TestBestShiftedPickupDeadlineAtBound(t *testing.T) {
	mk := func(deadlineB float64) *Plan {
		return &Plan{Stops: []Stop{
			{Kind: PickupStop, Order: 1, Pos: pt(0, 0), ETA: 10, Deadline: 100},
			{Kind: PickupStop, Order: 2, Pos: pt(20, 0), ETA: 30, Deadline: deadlineB},
			{Kind: DropoffStop, Order: 1, Pos: pt(60, 0), ETA: 70, Direct: 60},
			{Kind: DropoffStop, Order: 2, Pos: pt(100, 0), ETA: 110, Direct: 80},
		}}
	}
	// The only feasible placement (see TestBestMidLegMultiStopPlan)
	// shifts order 2's pickup from ETA 30 to 90.
	req := Request{Order: 3, Pickup: pt(30, 0), Dropoff: pt(50, 0), Trip: 20, Deadline: 60}
	if _, ok := Best(mk(90), req, 2, 300, manhattan); !ok {
		t.Fatal("shift landing exactly on the pickup deadline rejected")
	}
	if ins, ok := Best(mk(90-1e-9), req, 2, 300, manhattan); ok {
		t.Fatalf("shift past the pickup deadline admitted: %+v", ins)
	}
}

// TestBestCapacityWalk: with capacity 1 the new rider cannot overlap the
// committed one, so the only feasible placement is strictly after the
// existing dropoff; capacity 2 unlocks the free on-the-way splice.
func TestBestCapacityWalk(t *testing.T) {
	req := Request{Order: 2, Pickup: pt(40, 0), Dropoff: pt(60, 0), Trip: 20, Deadline: 1000}
	ins, ok := Best(soloPlan(), req, 1, 300, manhattan)
	if !ok {
		t.Fatal("capacity 1: sequential append not found")
	}
	if ins.PickupIndex != 2 || ins.DropIndex != 2 {
		t.Fatalf("capacity 1 ins = %+v, want the post-dropoff append (2,2)", ins)
	}
	ins, ok = Best(soloPlan(), req, 2, 300, manhattan)
	if !ok || ins.PickupIndex != 1 || ins.Extra != 0 {
		t.Fatalf("capacity 2 ins = %+v, want the free overlap at index 1", ins)
	}
}

// TestBestMidLegMultiStopPlan inserts a third rider into the middle of
// a two-rider plan and checks the full spliced timeline, then cancels
// the inserted rider and checks the plan re-tightens to its exact
// pre-insertion ETAs.
func TestBestMidLegMultiStopPlan(t *testing.T) {
	p := &Plan{Stops: []Stop{
		{Kind: PickupStop, Order: 1, Pos: pt(0, 0), ETA: 10, Deadline: 100},
		{Kind: PickupStop, Order: 2, Pos: pt(20, 0), ETA: 30, Deadline: 200},
		{Kind: DropoffStop, Order: 1, Pos: pt(60, 0), ETA: 70, Direct: 60},
		{Kind: DropoffStop, Order: 2, Pos: pt(100, 0), ETA: 110, Direct: 80},
	}}
	req := Request{Order: 3, Pickup: pt(30, 0), Dropoff: pt(50, 0), Trip: 20, Deadline: 60}
	ins, ok := Best(p, req, 2, 300, manhattan)
	if !ok {
		t.Fatal("no feasible mid-plan insertion")
	}
	// Any placement keeping rider 3 onboard past order 2's pickup would
	// hold three riders at capacity 2, so the pickup-dropoff pair must
	// splice whole into the first leg.
	want := Insertion{PickupIndex: 1, DropIndex: 1, PickupETA: 40, DropETA: 60, Extra: 60}
	if ins != want {
		t.Fatalf("ins = %+v, want %+v", ins, want)
	}

	pickupAt, dropAt := p.Insert(req, ins, manhattan, identity)
	if pickupAt != 40 || dropAt != 60 {
		t.Fatalf("Insert realized (%v, %v), want (40, 60)", pickupAt, dropAt)
	}
	wantETAs := []float64{10, 40, 60, 90, 130, 170}
	for i, eta := range wantETAs {
		if p.Stops[i].ETA != eta {
			t.Fatalf("stop %d ETA = %v, want %v", i, p.Stops[i].ETA, eta)
		}
	}

	// Cancel the inserted rider: both stops leave, downstream legs
	// re-join, and the plan returns to its exact pre-insertion timeline.
	if !p.Cancel(3, manhattan) {
		t.Fatal("cancel of a not-yet-picked-up rider rejected")
	}
	wantETAs = []float64{10, 30, 70, 110}
	if len(p.Stops) != 4 {
		t.Fatalf("plan has %d stops after cancel, want 4", len(p.Stops))
	}
	for i, eta := range wantETAs {
		if p.Stops[i].ETA != eta {
			t.Fatalf("after cancel, stop %d ETA = %v, want %v", i, p.Stops[i].ETA, eta)
		}
	}
}

// TestCancelOnboardRiderRejected: once the pickup stop has been
// consumed the rider is in the car; Cancel refuses and leaves the plan
// untouched.
func TestCancelOnboardRiderRejected(t *testing.T) {
	p := &Plan{
		Stops:   []Stop{{Kind: DropoffStop, Order: 1, Pos: pt(100, 0), ETA: 110, Direct: 100, PickedAt: 10}},
		Onboard: 1,
	}
	if p.Cancel(1, manhattan) {
		t.Fatal("cancel of an onboard rider accepted")
	}
	if len(p.Stops) != 1 || p.Stops[0].ETA != 110 {
		t.Fatalf("rejected cancel mutated the plan: %+v", p.Stops)
	}
	if p.Cancel(99, manhattan) {
		t.Fatal("cancel of an unknown order accepted")
	}
}

// TestCancelFrontPickupLeavesViaPoint: the rider being driven to right
// now cancels; the in-flight leg keeps its committed arrival as an
// inert via-point while the rider's dropoff leaves the plan.
func TestCancelFrontPickupLeavesViaPoint(t *testing.T) {
	p := soloPlan()
	req := Request{Order: 2, Pickup: pt(40, 0), Dropoff: pt(60, 0), Trip: 20, Deadline: 60}
	ins, ok := Best(p, req, 2, 300, manhattan)
	if !ok {
		t.Fatal("setup: on-the-way insertion not found")
	}
	p.Insert(req, ins, manhattan, identity) // [p1@10 p2@50 d2@70 d1@110]

	if !p.Cancel(1, manhattan) {
		t.Fatal("cancel of the front-pickup rider rejected")
	}
	if len(p.Stops) != 3 {
		t.Fatalf("plan has %d stops, want 3 (via-point + rider 2)", len(p.Stops))
	}
	front := p.Stops[0]
	if !front.Canceled || front.Order != 1 || front.ETA != 10 {
		t.Fatalf("front stop not an inert via-point: %+v", front)
	}
	if got := p.Remaining(); got != 2 {
		t.Fatalf("Remaining() = %d, want 2 (via-point excluded)", got)
	}
	// Rider 2's stops keep their committed times: the in-flight leg was
	// not re-routed.
	if p.Stops[1].ETA != 50 || p.Stops[2].ETA != 70 {
		t.Fatalf("surviving stops retimed: %+v", p.Stops)
	}
	if pos, end := p.End(); pos != pt(60, 0) || end != 70 {
		t.Fatalf("End() = %v, %v, want (60,0), 70", pos, end)
	}
}

// TestInsertAppliesLegNoise: realized splice times flow through the leg
// perturbation while untouched downstream legs keep their committed
// durations shifted by the realized delta.
func TestInsertAppliesLegNoise(t *testing.T) {
	p := soloPlan()
	req := Request{Order: 2, Pickup: pt(40, 0), Dropoff: pt(60, 0), Trip: 20, Deadline: 60}
	ins, ok := Best(p, req, 2, 300, manhattan)
	if !ok {
		t.Fatal("setup: insertion not found")
	}
	double := func(v float64) float64 { return 2 * v }
	pickupAt, dropAt := p.Insert(req, ins, manhattan, double)
	// Every newly driven leg takes twice its estimate: 10+80, +40, +80.
	if pickupAt != 90 || dropAt != 130 {
		t.Fatalf("noisy realized times (%v, %v), want (90, 130)", pickupAt, dropAt)
	}
	if last := p.Stops[3].ETA; last != 210 {
		t.Fatalf("shifted dropoff ETA = %v, want 210", last)
	}
}
