package pool

import (
	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// Config gates ride pooling. The zero value (and any Capacity <= 1)
// disables it: drivers carry one rider at a time and the engine's
// single-trip path runs unchanged.
type Config struct {
	// Capacity is the maximum number of riders onboard a vehicle at
	// once. Pooling activates at 2 or more; 0 or 1 keeps single-rider
	// dispatch byte-identical to a pooling-free build.
	Capacity int
	// MaxDetourSeconds bounds each rider's detour: the extra seconds
	// between their pickup and dropoff versus the direct trip estimate.
	// Every insertion is checked against the bound for the new rider and
	// for every rider already on the plan. Default 300 when pooling is
	// enabled.
	MaxDetourSeconds float64
}

// Enabled reports whether pooling is active.
func (c Config) Enabled() bool { return c.Capacity >= 2 }

// Detour returns the per-rider detour bound with its default applied.
func (c Config) Detour() float64 {
	if c.MaxDetourSeconds > 0 {
		return c.MaxDetourSeconds
	}
	return 300
}

// StopKind distinguishes the two stop types on a route plan.
type StopKind uint8

// Stop kinds.
const (
	PickupStop StopKind = iota
	DropoffStop
)

// Stop is one committed waypoint on a driver's route plan.
type Stop struct {
	Kind  StopKind
	Order trace.OrderID
	Pos   geo.Point
	// ETA is the committed arrival time at this stop in engine seconds.
	ETA float64
	// Deadline (pickup stops) is the latest feasible arrival at the
	// pickup — the order's deadline. Insertions that would shift this
	// stop past it are rejected.
	Deadline float64
	// Direct (dropoff stops) is the rider's direct pickup-to-dropoff
	// trip estimate, the baseline detours are measured against.
	Direct float64
	// PickedAt (dropoff stops) is the rider's realized pickup time,
	// written when the pickup stop is consumed. While the pickup is
	// still on the plan the planned pickup ETA is the reference instead.
	PickedAt float64
	// Canceled marks a pickup whose rider canceled while the driver was
	// already driving to it (it was the front stop). The stop stays as
	// an inert via-point so the in-flight leg keeps its committed
	// arrival time; processing it picks nobody up.
	Canceled bool
}

// Plan is a driver's ordered route of pending stops. Onboard counts
// riders picked up but not yet dropped off. Stops[0] is the leg the
// driver is currently driving: it is never retimed or removed by
// Best/Insert/Cancel (see the package comment).
type Plan struct {
	Stops   []Stop
	Onboard int
}

// End returns the plan's final position and completion time — where and
// when the driver becomes free if nothing more is inserted.
func (p *Plan) End() (geo.Point, float64) {
	s := p.Stops[len(p.Stops)-1]
	return s.Pos, s.ETA
}

// Remaining counts pending stops that still serve a rider (canceled
// via-points excluded).
func (p *Plan) Remaining() int {
	n := 0
	for _, s := range p.Stops {
		if !s.Canceled {
			n++
		}
	}
	return n
}

// Request describes a new order proposed for insertion into a plan.
type Request struct {
	Order   trace.OrderID
	Pickup  geo.Point
	Dropoff geo.Point
	// Trip is the direct pickup-to-dropoff estimate (the rider's detour
	// baseline and fare).
	Trip float64
	// Deadline is the latest feasible pickup time.
	Deadline float64
}

// Insertion is one feasible placement of a request's pickup and dropoff
// into a plan, as found by Best. PickupIndex and DropIndex are
// positions in the original stop slice (both in [1, len(Stops)]): the
// pickup is inserted before the stop at PickupIndex, the dropoff before
// the stop at DropIndex (after the pickup when they are equal), and an
// index of len(Stops) appends.
type Insertion struct {
	PickupIndex int
	DropIndex   int
	// PickupETA and DropETA are the estimated arrival times of the two
	// new stops under the insertion.
	PickupETA float64
	DropETA   float64
	// Extra is the total seconds the insertion adds to the plan's
	// completion time — the marginal cost a pooling-aware dispatcher
	// scores against a solo pickup cost.
	Extra float64
}

// CostFn prices one travel leg in seconds.
type CostFn func(a, b geo.Point) float64

// Best finds the cheapest feasible insertion of req into p, or ok=false
// when none exists. Feasibility requires, with non-strict comparisons
// so a candidate exactly at a bound is admitted:
//
//   - the new pickup is reached by req.Deadline;
//   - no existing un-picked pickup is shifted past its deadline;
//   - every rider's detour (new and existing) stays within maxDetour of
//     their direct trip estimate;
//   - onboard occupancy never exceeds capacity at any point of the
//     spliced route.
//
// The front stop is exempt from re-evaluation: insertion positions
// start at index 1, so the leg the driver is currently driving is never
// altered.
func Best(p *Plan, req Request, capacity int, maxDetour float64, cost CostFn) (Insertion, bool) {
	n := len(p.Stops)
	if n == 0 {
		return Insertion{}, false
	}
	// Occupancy after each existing stop, for the capacity walk.
	occ := make([]int, n)
	c := p.Onboard
	for k, s := range p.Stops {
		switch {
		case s.Kind == PickupStop && !s.Canceled:
			c++
		case s.Kind == DropoffStop:
			c--
		}
		occ[k] = c
	}
	occBefore := func(k int) int {
		if k == 0 {
			return p.Onboard
		}
		return occ[k-1]
	}

	best := Insertion{}
	found := false
	for i := 1; i <= n; i++ {
		prev := p.Stops[i-1]
		legIn := cost(prev.Pos, req.Pickup)
		pickupETA := prev.ETA + legIn
		if pickupETA > req.Deadline {
			continue
		}
		// Occupancy with the new rider aboard from slot i: the car holds
		// occBefore(i)+1 right after the new pickup, and every existing
		// pickup between i and the dropoff slot adds on top of that.
		if occBefore(i)+1 > capacity {
			continue
		}
		for j := i; j <= n; j++ {
			ins, ok := evaluate(p, req, occ, i, j, legIn, pickupETA, capacity, maxDetour, cost)
			if !ok {
				continue
			}
			if !found || ins.Extra < best.Extra {
				best, found = ins, true
			}
		}
	}
	return best, found
}

// evaluate prices and checks one (pickup at i, dropoff at j) placement.
// legIn and pickupETA are precomputed by the caller.
func evaluate(p *Plan, req Request, occ []int, i, j int, legIn, pickupETA float64, capacity int, maxDetour float64, cost CostFn) (Insertion, bool) {
	n := len(p.Stops)
	var dropETA float64
	// shiftMid applies to original stops in [i, j); shiftTail to [j, n).
	var shiftMid, shiftTail float64
	switch {
	case j == i && i == n: // append pickup then dropoff
		dropETA = pickupETA + req.Trip
	case j == i: // adjacent pickup+dropoff spliced into one leg
		dropETA = pickupETA + req.Trip
		next := p.Stops[i]
		shiftTail = legIn + req.Trip + cost(req.Dropoff, next.Pos) - (next.ETA - p.Stops[i-1].ETA)
	default: // j > i, so i < n
		next := p.Stops[i]
		shiftMid = legIn + cost(req.Pickup, next.Pos) - (next.ETA - p.Stops[i-1].ETA)
		before := p.Stops[j-1]
		dropETA = before.ETA + shiftMid + cost(before.Pos, req.Dropoff)
		if j < n {
			after := p.Stops[j]
			shiftTail = shiftMid + cost(before.Pos, req.Dropoff) + cost(req.Dropoff, after.Pos) - (after.ETA - before.ETA)
		}
	}

	// Extra = new completion time minus old completion time.
	var extra float64
	if j == n {
		extra = dropETA - p.Stops[n-1].ETA
	} else {
		extra = shiftTail
	}
	if extra < 0 {
		// A non-metric coster could make a splice "free"; treat it as
		// zero-cost rather than a negative score.
		extra = 0
	}

	// The new rider's own constraints.
	if dropETA-pickupETA-req.Trip > maxDetour {
		return Insertion{}, false
	}

	// Shifted existing stops: pickup deadlines, rider detours, capacity.
	shiftAt := func(k int) float64 {
		if k < i {
			return 0
		}
		if k < j {
			return shiftMid
		}
		return shiftTail
	}
	newOnboardThrough := func(k int) bool { return k >= i && k < j } // new rider aboard while original stop k is served
	pickupRef := func(order trace.OrderID, picked float64) float64 {
		for m, s := range p.Stops {
			if s.Kind == PickupStop && s.Order == order {
				return s.ETA + shiftAt(m)
			}
		}
		return picked // pickup already consumed: the realized time
	}
	for k := i; k < n; k++ {
		s := p.Stops[k]
		switch {
		case s.Kind == PickupStop && !s.Canceled:
			if s.ETA+shiftAt(k) > s.Deadline {
				return Insertion{}, false
			}
			if newOnboardThrough(k) && occ[k]+1 > capacity {
				return Insertion{}, false
			}
		case s.Kind == DropoffStop:
			detour := s.ETA + shiftAt(k) - pickupRef(s.Order, s.PickedAt) - s.Direct
			if detour > maxDetour {
				return Insertion{}, false
			}
		}
	}
	return Insertion{
		PickupIndex: i,
		DropIndex:   j,
		PickupETA:   pickupETA,
		DropETA:     dropETA,
		Extra:       extra,
	}, true
}

// Insert splices req into p at the placement ins and returns the
// realized pickup and dropoff times. cost prices the new legs (the same
// function Best evaluated with, so estimates match bitwise); leg maps
// each newly driven leg's estimate to its realized duration — identity
// without travel noise, the scenario's perturbation with it. Downstream
// stops shift by the realized splice deltas; legs the insertion does
// not touch keep their committed durations.
func (p *Plan) Insert(req Request, ins Insertion, cost CostFn, leg func(float64) float64) (pickupAt, dropAt float64) {
	n := len(p.Stops)
	i, j := ins.PickupIndex, ins.DropIndex
	prev := p.Stops[i-1]
	legIn := leg(cost(prev.Pos, req.Pickup))
	pickupAt = prev.ETA + legIn

	var shiftMid, shiftTail float64
	switch {
	case j == i:
		dropAt = pickupAt + leg(req.Trip)
		if i < n {
			next := p.Stops[i]
			shiftTail = dropAt + leg(cost(req.Dropoff, next.Pos)) - next.ETA
		}
	default:
		next := p.Stops[i]
		shiftMid = pickupAt + leg(cost(req.Pickup, next.Pos)) - next.ETA
		before := p.Stops[j-1]
		dropAt = before.ETA + shiftMid + leg(cost(before.Pos, req.Dropoff))
		if j < n {
			after := p.Stops[j]
			shiftTail = dropAt + leg(cost(req.Dropoff, after.Pos)) - after.ETA
		}
	}

	out := make([]Stop, 0, n+2)
	out = append(out, p.Stops[:i]...)
	out = append(out, Stop{Kind: PickupStop, Order: req.Order, Pos: req.Pickup, ETA: pickupAt, Deadline: req.Deadline})
	for k := i; k < j; k++ {
		s := p.Stops[k]
		s.ETA += shiftMid
		out = append(out, s)
	}
	out = append(out, Stop{Kind: DropoffStop, Order: req.Order, Pos: req.Dropoff, ETA: dropAt, Direct: req.Trip})
	for k := j; k < n; k++ {
		s := p.Stops[k]
		s.ETA += shiftTail
		out = append(out, s)
	}
	p.Stops = out
	return pickupAt, dropAt
}

// Cancel removes order's stops from the plan: the standard "a canceled
// pooled rider removes only their stops" semantics. It returns false —
// and leaves the plan untouched — when the rider is already onboard
// (their pickup stop has been consumed) or not on the plan at all. A
// pickup that is the front stop is kept as an inert via-point instead
// of removed, preserving the in-flight leg; downstream stops tighten by
// the time the removed stops were costing, with unchanged legs keeping
// their committed durations. Cancel never empties a plan: the front
// stop always survives.
func (p *Plan) Cancel(order trace.OrderID, cost CostFn) bool {
	pi, di := -1, -1
	for k, s := range p.Stops {
		if s.Order != order {
			continue
		}
		switch s.Kind {
		case PickupStop:
			if !s.Canceled {
				pi = k
			}
		case DropoffStop:
			di = k
		}
	}
	if di < 0 || pi < 0 {
		return false // onboard (pickup consumed) or not on the plan
	}
	p.removeStop(di, cost)
	if pi == 0 {
		p.Stops[0].Canceled = true
		return true
	}
	p.removeStop(pi, cost)
	return true
}

// removeStop deletes the stop at k (k >= 1) and shifts later stops by
// the splice delta, re-joining the neighbours with a fresh leg cost.
func (p *Plan) removeStop(k int, cost CostFn) {
	if k == len(p.Stops)-1 {
		p.Stops = p.Stops[:k]
		return
	}
	a, b := p.Stops[k-1], p.Stops[k+1]
	delta := a.ETA + cost(a.Pos, b.Pos) - b.ETA
	p.Stops = append(p.Stops[:k], p.Stops[k+1:]...)
	for m := k; m < len(p.Stops); m++ {
		p.Stops[m].ETA += delta
	}
}
