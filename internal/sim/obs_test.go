package sim

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/obs"
	"mrvd/internal/trace"
)

// obsOrders is a small mixed day: two servable orders and one the
// fleet cannot reach in time (it reneges).
func obsOrders() ([]trace.Order, []geo.Point) {
	pickup := center()
	orders := []trace.Order{
		{ID: 0, PostTime: 10, Pickup: pickup, Dropoff: offset(pickup, 2000), Deadline: 130},
		{ID: 1, PostTime: 400, Pickup: offset(pickup, 2200), Dropoff: offset(pickup, 3000), Deadline: 520},
		{ID: 2, PostTime: 20, Pickup: offset(pickup, 30000), Dropoff: offset(pickup, 31000), Deadline: 80},
	}
	starts := []geo.Point{offset(pickup, 400)}
	return orders, starts
}

// TestEngineObsDisabledParity pins the nil-gate contract: an
// instrumented run and an uninstrumented run of the same instance
// produce identical Summaries.
func TestEngineObsDisabledParity(t *testing.T) {
	run := func(cfg Config) Summary {
		orders, starts := obsOrders()
		m, err := New(cfg, orders, starts).Run(context.Background(), takeAll{})
		if err != nil {
			t.Fatal(err)
		}
		return m.Summary()
	}
	plain := run(simpleConfig())

	instrumented := simpleConfig()
	instrumented.Obs = ObsConfig{
		Registry: obs.NewRegistry(),
		Tracer:   obs.NewTracer(&strings.Builder{}),
	}
	if got := run(instrumented); got != plain {
		t.Errorf("instrumented summary diverged:\n got %+v\nwant %+v", got, plain)
	}
}

// TestEngineObsOneSpanPerTerminalOrder runs a mixed day and checks the
// tracer emitted exactly one well-formed span per terminal order, and
// the registry's phase and lifecycle families agree with the Metrics.
func TestEngineObsOneSpanPerTerminalOrder(t *testing.T) {
	var buf strings.Builder
	reg := obs.NewRegistry()
	tr := obs.NewTracer(&buf)
	cfg := simpleConfig()
	cfg.Obs = ObsConfig{Registry: reg, Tracer: tr}

	orders, starts := obsOrders()
	m, err := New(cfg, orders, starts).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 2 || m.Reneged != 1 {
		t.Fatalf("served=%d reneged=%d, want 2/1", m.Served, m.Reneged)
	}

	terminal := int64(m.Served + m.Reneged + m.Canceled)
	if tr.Count() != terminal {
		t.Fatalf("tracer wrote %d spans, want %d", tr.Count(), terminal)
	}
	seen := map[int64]obs.Span{}
	outcomes := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("malformed span line: %v\n%s", err, sc.Text())
		}
		if _, dup := seen[sp.Order]; dup {
			t.Fatalf("order %d emitted twice", sp.Order)
		}
		seen[sp.Order] = sp
		outcomes[sp.Outcome]++
		if sp.EndAt < sp.AdmitAt || sp.AdmitAt < sp.SubmitAt {
			t.Errorf("span %d timestamps out of order: %+v", sp.Order, sp)
		}
		if sp.QueueSeconds < 0 || sp.WallMS < 0 {
			t.Errorf("span %d negative durations: %+v", sp.Order, sp)
		}
	}
	if outcomes[obs.OutcomeServed] != m.Served || outcomes[obs.OutcomeReneged] != m.Reneged {
		t.Errorf("span outcomes %v, want served=%d reneged=%d", outcomes, m.Served, m.Reneged)
	}
	for id, sp := range seen {
		if sp.Outcome == obs.OutcomeServed {
			if sp.Driver < 0 {
				t.Errorf("served span %d has no driver", id)
			}
			if sp.TripSeconds <= 0 {
				t.Errorf("served span %d has no trip time: %+v", id, sp)
			}
		} else if sp.Driver != -1 {
			t.Errorf("unserved span %d attributes driver %d", id, sp.Driver)
		}
	}

	// Registry side: lifecycle counters match the metrics, and the
	// build/dispatch/apply phase histograms saw every batch round.
	if got := reg.Counter("mrvd_orders_admitted_total", "").Value(); got != int64(m.TotalOrders) {
		t.Errorf("admitted counter = %d, want %d", got, m.TotalOrders)
	}
	served := reg.CounterVec("mrvd_orders_terminal_total", "", "outcome").With("served").Value()
	reneged := reg.CounterVec("mrvd_orders_terminal_total", "", "outcome").With("reneged").Value()
	if served != int64(m.Served) || reneged != int64(m.Reneged) {
		t.Errorf("terminal counters served=%d reneged=%d, want %d/%d", served, reneged, m.Served, m.Reneged)
	}
	phases := reg.HistogramVec("mrvd_dispatch_phase_seconds", "", obs.DefBuckets, "phase")
	for _, phase := range []string{"build", "dispatch", "apply"} {
		if got := phases.With(phase).Count(); got != int64(m.Batches) {
			t.Errorf("phase %q count = %d, want %d batches", phase, got, m.Batches)
		}
	}
	// The final admit step may run without a dispatch step, so admit
	// rounds can exceed Batches by the tail step but never lag.
	if got := phases.With("admit").Count(); got < int64(m.Batches) {
		t.Errorf("admit phase count = %d, want >= %d", got, m.Batches)
	}
}

// TestEngineObsRegistryOnlyNoTracer checks the registry-only
// configuration records counters without building span state.
func TestEngineObsRegistryOnlyNoTracer(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := simpleConfig()
	cfg.Obs = ObsConfig{Registry: reg}
	orders, starts := obsOrders()
	if _, err := New(cfg, orders, starts).Run(context.Background(), takeAll{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mrvd_orders_admitted_total", "").Value(); got != 3 {
		t.Errorf("admitted counter = %d, want 3", got)
	}
}
