package sim

import (
	"context"
	"math"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/roadnet"
	"mrvd/internal/trace"
)

func TestEngineZeroDrivers(t *testing.T) {
	pickup := center()
	orders := []trace.Order{
		{ID: 0, PostTime: 1, Pickup: pickup, Dropoff: offset(pickup, 500), Deadline: 100},
	}
	m, err := New(simpleConfig(), orders, nil).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Reneged != 1 {
		t.Errorf("served=%d reneged=%d with zero drivers", m.Served, m.Reneged)
	}
}

func TestEngineEmptyTrace(t *testing.T) {
	m, err := New(simpleConfig(), nil, []geo.Point{center()}).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalOrders != 0 || m.Served != 0 || m.Revenue != 0 {
		t.Errorf("empty trace produced activity: %+v", m)
	}
	if m.Batches == 0 {
		t.Error("batch loop did not run")
	}
}

func TestEngineOrdersOutsideGrid(t *testing.T) {
	// Pickup and dropoff outside the NYC box: the engine clamps regions
	// and the run completes without panicking.
	orders := []trace.Order{
		{ID: 0, PostTime: 1, Pickup: geo.Point{Lng: -80, Lat: 45},
			Dropoff: geo.Point{Lng: -70, Lat: 39}, Deadline: 2000},
	}
	m, err := New(simpleConfig(), orders, []geo.Point{center()}).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Reneged != 1 {
		t.Errorf("outside-grid order did not terminate: %+v", m)
	}
}

func TestEngineRejectsNonFiniteOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NaN-coordinate order accepted")
		}
	}()
	orders := []trace.Order{
		{ID: 0, PostTime: 1, Pickup: geo.Point{Lng: math.NaN(), Lat: 40.7},
			Dropoff: center(), Deadline: 100},
	}
	New(simpleConfig(), orders, []geo.Point{center()})
}

// infCoster prices everything at +Inf, simulating a disconnected road
// network.
type infCoster struct{}

func (infCoster) Cost(a, b geo.Point) float64 { return math.Inf(1) }

func TestEngineInfiniteCostsServeNothing(t *testing.T) {
	pickup := center()
	orders := []trace.Order{
		{ID: 0, PostTime: 1, Pickup: pickup, Dropoff: offset(pickup, 500), Deadline: 100},
	}
	cfg := simpleConfig()
	cfg.Coster = infCoster{}
	m, err := New(cfg, orders, []geo.Point{pickup}).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Revenue != 0 {
		t.Errorf("served %d with infinite costs, revenue %v", m.Served, m.Revenue)
	}
}

func TestEngineZeroPatienceOrder(t *testing.T) {
	pickup := center()
	orders := []trace.Order{
		// Deadline == post time: only a co-located driver could serve it,
		// and only if a batch fires at exactly the right instant.
		{ID: 0, PostTime: 1, Pickup: pickup, Dropoff: offset(pickup, 500), Deadline: 1},
	}
	m, err := New(simpleConfig(), orders, []geo.Point{offset(pickup, 3000)}).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Reneged != 1 {
		t.Errorf("zero-patience order: served=%d reneged=%d", m.Served, m.Reneged)
	}
}

func TestEngineGraphCosterEndToEnd(t *testing.T) {
	// A small end-to-end run priced by real shortest paths.
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Seed: 9})
	pickup := center()
	var orders []trace.Order
	for i := 0; i < 10; i++ {
		p := offset(pickup, float64(i*300))
		orders = append(orders, trace.Order{
			ID: trace.OrderID(i), PostTime: float64(1 + i*30),
			Pickup: p, Dropoff: offset(p, 1500),
			Deadline: float64(1+i*30) + 600,
		})
	}
	cfg := simpleConfig()
	gc := roadnet.NewGraphCoster(g)
	gc.ApproachSpeedMPS = 8 // curb legs priced at driving speed for this test
	cfg.Coster = gc
	m, err := New(cfg, orders, []geo.Point{pickup, offset(pickup, 1000)}).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 {
		t.Error("graph-coster run served nothing")
	}
	if math.IsInf(m.Revenue, 0) || math.IsNaN(m.Revenue) {
		t.Errorf("revenue = %v", m.Revenue)
	}
}

func TestEngineManyOrdersOneBatch(t *testing.T) {
	// A burst of simultaneous orders larger than the fleet: the engine
	// must assign at most one rider per driver and renege the rest on
	// deadline.
	pickup := center()
	var orders []trace.Order
	for i := 0; i < 50; i++ {
		orders = append(orders, trace.Order{
			ID: trace.OrderID(i), PostTime: 1,
			Pickup:   offset(pickup, float64(i*10)),
			Dropoff:  offset(pickup, 5000),
			Deadline: 120,
		})
	}
	starts := []geo.Point{pickup, offset(pickup, 100), offset(pickup, 200)}
	m, err := New(simpleConfig(), orders, starts).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served > 3 {
		t.Errorf("served %d with 3 drivers and ~470s trips inside 120s deadlines", m.Served)
	}
	if m.Served+m.Reneged != 50 {
		t.Errorf("outcome accounting: %d+%d != 50", m.Served, m.Reneged)
	}
}
