package sim

import (
	"strconv"
	"time"

	"mrvd/internal/obs"
	"mrvd/internal/trace"
)

// ObsConfig wires the optional observability layer into an engine:
// a metrics registry receiving dispatch-phase timings and lifecycle
// counters, and/or a tracer emitting one JSON span per terminal
// order. The zero value disables both and keeps the engine
// byte-identical to an uninstrumented run — the enabled path touches
// only wall-clock data that never feeds a Summary, so determinism
// contracts (Sweep, 1-shard parity) are unaffected either way.
type ObsConfig struct {
	// Registry collects counters and histograms; nil records nothing.
	Registry *obs.Registry
	// Tracer receives order-lifecycle spans; nil records nothing.
	Tracer *obs.Tracer
	// Shard attributes this engine's spans in a sharded runtime
	// (0 for the unsharded engine).
	Shard int
}

// Enabled reports whether any observability sink is configured.
func (c ObsConfig) Enabled() bool { return c.Registry != nil || c.Tracer != nil }

// obsState is the engine's observability machinery, nil when
// ObsConfig is zero-valued — the uninstrumented path pays one nil
// check per hook site.
type obsState struct {
	cfg ObsConfig

	// Registry-backed instruments, all resolved to concrete children at
	// construction so the per-round and per-order hot paths touch only
	// lock-free atomics, never the registry's family locks; nil when no
	// registry is configured.
	phaseAdmit     *obs.Histogram
	phaseBuild     *obs.Histogram
	phaseDispatch  *obs.Histogram
	phaseApply     *obs.Histogram
	admitted       *obs.Counter
	termServed     *obs.Counter
	termCanceled   *obs.Counter
	termReneged    *obs.Counter
	poolCandidates *obs.Counter
	poolFeasible   *obs.Counter
	poolCommitted  *obs.Counter
	queueDepth     *obs.Gauge
	driversAvail   *obs.Gauge

	// spans holds the in-flight order drafts; nil when no tracer is
	// configured.
	spans map[trace.OrderID]*spanDraft
}

// spanDraft accumulates one order's lifecycle until its terminal
// event emits the span.
type spanDraft struct {
	span      obs.Span
	wallStart time.Time
	committed bool
	picked    bool
}

func newObsState(cfg ObsConfig) *obsState {
	s := &obsState{cfg: cfg}
	if r := cfg.Registry; r != nil {
		phases := r.HistogramVec("mrvd_dispatch_phase_seconds",
			"Wall time of one engine batch round, broken into admit, build (context + coster matrix), dispatch (the dispatcher's Assign) and apply phases.",
			obs.DefBuckets, "phase")
		s.phaseAdmit = phases.With("admit")
		s.phaseBuild = phases.With("build")
		s.phaseDispatch = phases.With("dispatch")
		s.phaseApply = phases.With("apply")
		s.admitted = r.Counter("mrvd_orders_admitted_total",
			"Orders admitted from the source into the waiting set.")
		terminal := r.CounterVec("mrvd_orders_terminal_total",
			"Orders that reached a terminal state, by outcome (served, canceled, reneged).",
			"outcome")
		s.termServed = terminal.With(obs.OutcomeServed)
		s.termCanceled = terminal.With(obs.OutcomeCanceled)
		s.termReneged = terminal.With(obs.OutcomeReneged)
		s.poolCandidates = r.Counter("mrvd_pool_candidates_total",
			"Pooled insertion candidates evaluated (route plans priced per waiting rider).")
		s.poolFeasible = r.Counter("mrvd_pool_feasible_total",
			"Pooled insertion candidates that were feasible under capacity and detour bounds.")
		s.poolCommitted = r.Counter("mrvd_pool_committed_total",
			"Pooled insertions committed by the dispatcher.")
		shard := strconv.Itoa(cfg.Shard)
		s.queueDepth = r.GaugeVec("mrvd_queue_depth",
			"Waiting riders entering the current batch round, by shard.",
			"shard").With(shard)
		s.driversAvail = r.GaugeVec("mrvd_drivers_available",
			"Available drivers entering the current batch round, by shard.",
			"shard").With(shard)
	}
	if cfg.Tracer != nil {
		s.spans = make(map[trace.OrderID]*spanDraft)
	}
	return s
}

// phase records one batch phase's wall duration.
func (s *obsState) phase(name string, seconds float64) {
	var h *obs.Histogram
	switch name {
	case "admit":
		h = s.phaseAdmit
	case "build":
		h = s.phaseBuild
	case "dispatch":
		h = s.phaseDispatch
	case "apply":
		h = s.phaseApply
	}
	if h != nil {
		h.Observe(seconds)
	}
}

// round records the batch round's queue/fleet gauges — the time-series
// layer's raw material for queue-growth trend rules.
func (s *obsState) round(waiting, available int) {
	if s.queueDepth != nil {
		s.queueDepth.Set(float64(waiting))
		s.driversAvail.Set(float64(available))
	}
}

// admit records one order's admission.
func (s *obsState) admit(o trace.Order, now float64) {
	if s.admitted != nil {
		s.admitted.Inc()
	}
	if s.spans != nil {
		s.spans[o.ID] = &spanDraft{
			span: obs.Span{
				Order:    int64(o.ID),
				Shard:    s.cfg.Shard,
				Driver:   -1,
				SubmitAt: o.PostTime,
				AdmitAt:  now,
			},
			wallStart: time.Now(), //mrvdlint:ignore wallclock WallMS is the span schema's one documented wall-clock field
		}
	}
}

// commit records a pooled (or plan-backed) assignment whose span
// stays open until the dropoff stop completes.
func (s *obsState) commit(id trace.OrderID, now float64, driver DriverID, shared bool) {
	if s.spans == nil {
		return
	}
	if d, ok := s.spans[id]; ok {
		d.span.CommitAt = now
		d.span.Driver = int64(driver)
		d.span.Shared = shared
		d.committed = true
	}
}

// servedSolo emits a served span in one shot: a solo commitment
// realizes its pickup and dropoff times at commit.
func (s *obsState) servedSolo(now float64, id trace.OrderID, driver DriverID, pickedAt, freeAt float64) {
	if s.termServed != nil {
		s.termServed.Inc()
	}
	if s.spans == nil {
		return
	}
	d, ok := s.spans[id]
	if !ok {
		return
	}
	d.span.CommitAt = now
	d.span.Driver = int64(driver)
	d.committed = true
	d.span.PickupAt = pickedAt
	d.picked = true
	d.span.DropoffAt = freeAt
	s.emit(id, d, obs.OutcomeServed, freeAt)
}

// pickedUp records a pooled pickup stop completing.
func (s *obsState) pickedUp(id trace.OrderID, now float64) {
	if s.spans == nil {
		return
	}
	if d, ok := s.spans[id]; ok {
		d.span.PickupAt = now
		d.picked = true
	}
}

// droppedOff emits a pooled rider's served span at its dropoff stop.
func (s *obsState) droppedOff(id trace.OrderID, now float64) {
	if s.termServed != nil {
		s.termServed.Inc()
	}
	if s.spans == nil {
		return
	}
	if d, ok := s.spans[id]; ok {
		d.span.DropoffAt = now
		s.emit(id, d, obs.OutcomeServed, now)
	}
}

// canceled emits a canceled span (stochastic or explicit rider
// cancel, including a pooled cancel off an active plan).
func (s *obsState) canceled(id trace.OrderID, now float64) {
	if s.termCanceled != nil {
		s.termCanceled.Inc()
	}
	if s.spans == nil {
		return
	}
	if d, ok := s.spans[id]; ok {
		s.emit(id, d, obs.OutcomeCanceled, now)
	}
}

// reneged emits a reneged span (deadline expired unassigned).
func (s *obsState) reneged(id trace.OrderID, now float64) {
	if s.termReneged != nil {
		s.termReneged.Inc()
	}
	if s.spans == nil {
		return
	}
	if d, ok := s.spans[id]; ok {
		s.emit(id, d, obs.OutcomeReneged, now)
	}
}

// emit finalizes durations and writes the span.
func (s *obsState) emit(id trace.OrderID, d *spanDraft, outcome string, endAt float64) {
	sp := d.span
	sp.Outcome = outcome
	sp.EndAt = endAt
	if d.committed {
		sp.QueueSeconds = sp.CommitAt - sp.AdmitAt
		if d.picked {
			sp.PickupSeconds = sp.PickupAt - sp.CommitAt
			if sp.DropoffAt > 0 || outcome == obs.OutcomeServed {
				sp.TripSeconds = sp.DropoffAt - sp.PickupAt
			}
		}
	} else {
		sp.QueueSeconds = endAt - sp.AdmitAt
	}
	sp.WallMS = float64(time.Since(d.wallStart).Nanoseconds()) / 1e6 //mrvdlint:ignore wallclock WallMS is the span schema's one documented wall-clock field
	s.cfg.Tracer.Emit(sp)
	delete(s.spans, id)
}

// poolSearch records one batch's insertion-search tallies.
func (s *obsState) poolSearch(candidates, feasible int) {
	if s.poolCandidates != nil {
		s.poolCandidates.Add(int64(candidates))
		s.poolFeasible.Add(int64(feasible))
	}
}

// poolCommit records one committed insertion.
func (s *obsState) poolCommit() {
	if s.poolCommitted != nil {
		s.poolCommitted.Inc()
	}
}
