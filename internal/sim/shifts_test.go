package sim

import (
	"context"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

func TestShiftDriverJoinsLate(t *testing.T) {
	pickup := center()
	orders := []trace.Order{
		// Posted before the driver's shift: must renege.
		{ID: 0, PostTime: 10, Pickup: pickup, Dropoff: offset(pickup, 800), Deadline: 130},
		// Posted after the shift opens: served.
		{ID: 1, PostTime: 700, Pickup: pickup, Dropoff: offset(pickup, 800), Deadline: 820},
	}
	cfg := simpleConfig()
	cfg.Shifts = []Shift{{JoinAt: 600}}
	e := New(cfg, orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 1 || m.Reneged != 1 {
		t.Fatalf("served=%d reneged=%d, want 1/1", m.Served, m.Reneged)
	}
	// The late joiner's idle ledger starts at its join, not t=0.
	for _, rec := range m.IdleRecords {
		if rec.RejoinAt < 600 {
			t.Errorf("ledger entry before the shift opened: %+v", rec)
		}
	}
}

func TestShiftDriverLeaves(t *testing.T) {
	pickup := center()
	orders := []trace.Order{
		{ID: 0, PostTime: 1000, Pickup: pickup, Dropoff: offset(pickup, 800), Deadline: 1120},
	}
	cfg := simpleConfig()
	cfg.Shifts = []Shift{{LeaveAt: 500}}
	e := New(cfg, orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Reneged != 1 {
		t.Fatalf("served=%d reneged=%d, want 0/1 (driver left at 500)", m.Served, m.Reneged)
	}
	if e.Drivers()[0].State != Offline {
		t.Errorf("driver state = %v, want Offline", e.Drivers()[0].State)
	}
}

func TestShiftBusyDriverFinishesTripThenLeaves(t *testing.T) {
	pickup := center()
	drop := offset(pickup, 3000) // trip ~270s at 11 m/s
	orders := []trace.Order{
		{ID: 0, PostTime: 5, Pickup: pickup, Dropoff: drop, Deadline: 125},
		// Posted right after the first trip ends but past the shift:
		// the driver must not take it.
		{ID: 1, PostTime: 400, Pickup: drop, Dropoff: offset(drop, 500), Deadline: 520},
	}
	cfg := simpleConfig()
	cfg.Shifts = []Shift{{LeaveAt: 200}}
	e := New(cfg, orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 1 {
		t.Fatalf("served=%d, want 1 (trip in progress finishes)", m.Served)
	}
	if m.Reneged != 1 {
		t.Errorf("reneged=%d, want 1 (driver off shift)", m.Reneged)
	}
}

func TestShiftsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched shifts accepted")
		}
	}()
	cfg := simpleConfig()
	cfg.Shifts = []Shift{{}, {}}
	New(cfg, nil, []geo.Point{center()})
}

// sendEast repositions any idle driver 2km east, once.
type sendEast struct{ moved int }

func (s *sendEast) Target(ctx *Context, d *Driver, region geo.RegionID) (geo.Point, bool) {
	if s.moved > 0 {
		return geo.Point{}, false
	}
	s.moved++
	return offset(d.Pos, 2000), true
}

func TestRepositionMovesIdleDriver(t *testing.T) {
	pickup := center()
	cfg := simpleConfig()
	policy := &sendEast{}
	cfg.Repositioner = policy
	cfg.RepositionAfter = 60
	e := New(cfg, nil, []geo.Point{pickup})
	if _, err := e.Run(context.Background(), noop{}); err != nil {
		t.Fatal(err)
	}
	if policy.moved != 1 {
		t.Fatalf("policy consulted %d times, want 1", policy.moved)
	}
	drv := e.Drivers()[0]
	if got := geo.Equirect(drv.Pos, offset(pickup, 2000)); got > 1 {
		t.Errorf("driver %fm from reposition target", got)
	}
	if drv.State != Available {
		t.Errorf("driver state %v after cruise, want Available", drv.State)
	}
	if drv.Served != 0 {
		t.Error("cruise counted as service")
	}
}

func TestRepositionedDriverServesAtTarget(t *testing.T) {
	pickup := center()
	target := offset(pickup, 2000)
	orders := []trace.Order{
		// Near the reposition target, posted after the cruise completes;
		// too far from the origin for a driver that stayed put
		// (patience 60s reaches ~660m at 11 m/s).
		{ID: 0, PostTime: 600, Pickup: target, Dropoff: offset(target, 900), Deadline: 660},
	}
	run := func(repo Repositioner) *Metrics {
		cfg := simpleConfig()
		cfg.Repositioner = repo
		cfg.RepositionAfter = 60
		m, err := New(cfg, orders, []geo.Point{pickup}).Run(context.Background(), takeAll{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	without := run(nil)
	with := run(&sendEast{})
	if without.Served != 0 {
		t.Fatalf("stationary driver served %d, want 0", without.Served)
	}
	if with.Served != 1 {
		t.Fatalf("repositioned driver served %d, want 1", with.Served)
	}
}
