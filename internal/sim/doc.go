// Package sim is the dynamic car-hailing simulator: it replays an order
// trace against a fleet of drivers under the paper's batch-based
// processing model (Algorithm 1). Every Delta seconds the engine collects
// waiting riders and available drivers, prunes candidate drivers per
// rider on the spatial index (patience radius, optional k-nearest cap),
// prices the whole driver×rider pickup-cost matrix in one
// roadnet.BatchCoster call, and derives the valid rider-and-driver
// pairs of Definition 3 (driver can reach the pickup before the rider's
// deadline) as feasibility-filtered matrix lookups. The batch Context —
// pairs, matrix, per-region counts and predictions — goes to a
// pluggable Dispatcher. Committed assignments make drivers busy for the
// pickup leg plus the trip; riders not picked before their deadline
// renege.
//
// The engine keeps a per-driver idle ledger (idle time between rejoining
// the platform and the next assignment — the quantity Section 4's
// queueing model estimates) and per-batch wall-clock timings, which feed
// Tables 3 and Figures 7-10.
//
// Orders reach the engine through the OrderSource interface: SliceSource
// replays a fixed trace (the experiment setup) and ChannelSource accepts
// live Submit-driven ingestion from concurrent producers. Runs take a
// context.Context for cancellation and deadlines, and an optional
// Observer streams lifecycle events (batch starts, assignments,
// expiries, repositions) as they happen.
package sim
