package sim

import (
	"errors"
	"fmt"
	"sync"

	"mrvd/internal/trace"
)

// ErrSourceClosed is wrapped by ChannelSource.Submit once the stream
// has been closed; callers distinguish it (errors.Is) from the order's
// own validation failures.
var ErrSourceClosed = errors.New("sim: order source closed")

// OrderSource feeds orders to the engine incrementally, decoupling where
// orders come from (a recorded trace, a live request stream, a replayed
// production log) from the batch loop that dispatches them.
//
// Poll is called once per batch with the current simulation time. It
// must return every not-yet-delivered order whose PostTime is at or
// before now, in ascending PostTime order, and report done=true once no
// further orders will ever be produced (delivered or pending). Poll is
// only ever called from the engine's goroutine; implementations that
// accept orders from other goroutines (ChannelSource) must synchronize
// internally.
type OrderSource interface {
	Poll(now float64) (ready []trace.Order, done bool)
}

// CancelableSource is an optional OrderSource extension for sources
// that carry rider-initiated cancellation requests alongside orders.
// PollCancels is called once per batch from the engine goroutine,
// immediately after Poll's admissions are in, and returns the order ids
// whose riders asked to cancel since the last call, in request order. A
// cancel for an order the engine has not admitted yet is held by the
// engine and applied when the order arrives; a cancel for an
// already-terminal order is dropped.
type CancelableSource interface {
	OrderSource
	PollCancels() []trace.OrderID
}

// SizedSource is an optional OrderSource extension for sources that know
// their total order count upfront. The engine uses it to report
// Metrics.TotalOrders for the whole trace rather than only the admitted
// prefix, preserving the batch-replay accounting of the paper's setup.
type SizedSource interface {
	OrderSource
	TotalOrders() int
}

// SliceSource replays a fixed in-memory trace — the classic experiment
// setup. It validates and sorts the orders once at construction.
type SliceSource struct {
	orders []trace.Order
	next   int
}

// NewSliceSource copies, validates and sorts a trace by post time.
// Structurally broken orders (non-finite coordinates, deadlines before
// posting) would corrupt region indexing deep inside the batch loop, so
// they are rejected at the door with a panic; callers replaying external
// traces should pre-validate with trace.Order.Valid.
func NewSliceSource(orders []trace.Order) *SliceSource {
	os := append([]trace.Order(nil), orders...)
	for _, o := range os {
		if err := o.Valid(); err != nil {
			panic(fmt.Sprintf("sim: %v", err))
		}
	}
	trace.SortByPostTime(os)
	return &SliceSource{orders: os}
}

// Poll implements OrderSource.
func (s *SliceSource) Poll(now float64) ([]trace.Order, bool) {
	start := s.next
	for s.next < len(s.orders) && s.orders[s.next].PostTime <= now {
		s.next++
	}
	return s.orders[start:s.next], s.next == len(s.orders)
}

// TotalOrders implements SizedSource.
func (s *SliceSource) TotalOrders() int { return len(s.orders) }

// ChannelSource accepts orders from concurrent producers for live,
// Submit-driven dispatch. Producers call Submit as requests arrive and
// Close when the stream ends; the engine drains ready orders each batch.
//
// Orders may be submitted in any PostTime order: the source buffers them
// and releases each once the engine's clock reaches its PostTime, in
// ascending PostTime order (ties release in submission order). An order
// submitted with a PostTime already in the past is released at the next
// batch — its remaining patience is whatever is left of
// Deadline - engine time, so producers should stamp PostTime near the
// engine's clock. For producers stamping off the wall clock that means
// the engine must be paced (Config.PaceFactor / mrvd.WithPace): a
// free-running simulation burns through hours of simulated time per
// wall second and would expire wall-clock-stamped orders on arrival.
// Deterministic feeds can instead gate submissions on the engine clock
// from an Observer callback (see examples/livedispatch).
type ChannelSource struct {
	mu      sync.Mutex
	heap    submissionHeap
	seq     int64
	closed  bool
	cancels []trace.OrderID
}

// NewChannelSource returns an empty, open source.
func NewChannelSource() *ChannelSource { return &ChannelSource{} }

// Submit enqueues one order. It is safe for concurrent use, validates
// the order, and fails after Close rather than panicking — a live
// ingestion edge must reject bad requests, not crash the engine.
func (c *ChannelSource) Submit(o trace.Order) error {
	if err := o.Valid(); err != nil {
		return fmt.Errorf("sim: submit: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("submit order %d: %w", o.ID, ErrSourceClosed)
	}
	c.heap.push(submission{order: o, seq: c.seq})
	c.seq++
	return nil
}

// Close marks the stream complete. Orders already submitted are still
// delivered; further Submit calls fail. Close is idempotent.
func (c *ChannelSource) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Cancel stages one rider-initiated cancellation for the engine to
// apply at its next batch. Safe for concurrent use, idempotent in
// effect (the engine drops cancels for terminal orders), and accepted
// even after Close — already-submitted orders may still be canceled
// while the stream drains.
func (c *ChannelSource) Cancel(id trace.OrderID) {
	c.mu.Lock()
	c.cancels = append(c.cancels, id)
	c.mu.Unlock()
}

// PollCancels implements CancelableSource: it drains the staged
// cancellation requests in submission order.
func (c *ChannelSource) PollCancels() []trace.OrderID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.cancels
	c.cancels = nil
	return ids
}

// Pending reports how many submitted orders have not been released yet.
func (c *ChannelSource) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.heap)
}

// Poll implements OrderSource: it releases every buffered order posted
// at or before now, in (PostTime, submission) order.
func (c *ChannelSource) Poll(now float64) ([]trace.Order, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ready []trace.Order
	for len(c.heap) > 0 && c.heap[0].order.PostTime <= now {
		ready = append(ready, c.heap.pop().order)
	}
	return ready, c.closed && len(c.heap) == 0
}

// submission is one buffered order with its arrival sequence number,
// which breaks PostTime ties first-come-first-released.
type submission struct {
	order trace.Order
	seq   int64
}

// submissionHeap is a hand-rolled binary min-heap on (PostTime, seq); it
// avoids container/heap's any-boxing on the ingestion hot path.
type submissionHeap []submission

func (h submissionHeap) less(i, j int) bool {
	if h[i].order.PostTime != h[j].order.PostTime {
		return h[i].order.PostTime < h[j].order.PostTime
	}
	return h[i].seq < h[j].seq
}

func (h *submissionHeap) push(s submission) {
	*h = append(*h, s)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *submissionHeap) pop() submission {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
