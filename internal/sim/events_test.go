package sim

import (
	"context"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// recordingObserver counts events and cross-checks them against the
// final Metrics.
type recordingObserver struct {
	batches, assigned, expired, repositioned int
	canceled, declined                       int
	pickedUp, droppedOff                     int
	revenue                                  float64
	lastNow                                  float64
}

func (r *recordingObserver) OnBatchStart(e BatchStartEvent) {
	if e.Now < r.lastNow {
		panic("batch time went backwards")
	}
	r.lastNow = e.Now
	r.batches++
}
func (r *recordingObserver) OnAssigned(e AssignedEvent) {
	r.assigned++
	r.revenue += e.Revenue
}
func (r *recordingObserver) OnExpired(e ExpiredEvent)           { r.expired++ }
func (r *recordingObserver) OnCanceled(e CanceledEvent)         { r.canceled++ }
func (r *recordingObserver) OnDeclined(e DeclinedEvent)         { r.declined++ }
func (r *recordingObserver) OnRepositioned(e RepositionedEvent) { r.repositioned++ }
func (r *recordingObserver) OnPickedUp(e PickedUpEvent)         { r.pickedUp++ }
func (r *recordingObserver) OnDroppedOff(e DroppedOffEvent)     { r.droppedOff++ }

func TestObserverEventsMatchMetrics(t *testing.T) {
	orders := []trace.Order{
		mkOrder(0, 5, 300),
		mkOrder(1, 10, 320),
		mkOrder(2, 15, 16), // expires almost immediately: no driver nearby in time
	}
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Observer = rec
	e := New(cfg, orders, []geo.Point{center(), offset(center(), 600)})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.batches != m.Batches {
		t.Errorf("observer saw %d batches, metrics say %d", rec.batches, m.Batches)
	}
	if rec.assigned != m.Served {
		t.Errorf("observer saw %d assignments, metrics say %d served", rec.assigned, m.Served)
	}
	if rec.expired != m.Reneged {
		t.Errorf("observer saw %d expiries, metrics say %d reneged", rec.expired, m.Reneged)
	}
	if rec.revenue != m.Revenue {
		t.Errorf("observer revenue %v != metrics %v", rec.revenue, m.Revenue)
	}
}

func TestObserverRepositionEvents(t *testing.T) {
	orders := []trace.Order{mkOrder(0, 5, 300)}
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Observer = rec
	cfg.Repositioner = alwaysEast{}
	cfg.RepositionAfter = 60
	e := New(cfg, orders, []geo.Point{center()})
	if _, err := e.Run(context.Background(), noop{}); err != nil {
		t.Fatal(err)
	}
	if rec.repositioned == 0 {
		t.Error("no reposition events observed")
	}
}

// alwaysEast proposes a fixed eastward cruise.
type alwaysEast struct{}

func (alwaysEast) Target(ctx *Context, d *Driver, region geo.RegionID) (geo.Point, bool) {
	return offset(d.Pos, 2000), true
}

func TestObserverFuncsAndFanOut(t *testing.T) {
	var starts, assigns int
	funcs := ObserverFuncs{
		BatchStart: func(BatchStartEvent) { starts++ },
		Assigned:   func(AssignedEvent) { assigns++ },
		// Expired/Repositioned left nil: must be skipped, not crash.
	}
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Observer = Observers{funcs, rec}
	orders := []trace.Order{mkOrder(0, 5, 300), mkOrder(1, 6, 7)}
	e := New(cfg, orders, []geo.Point{center()})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if starts != m.Batches || starts != rec.batches {
		t.Errorf("fan-out mismatch: funcs=%d rec=%d metrics=%d", starts, rec.batches, m.Batches)
	}
	if assigns != rec.assigned {
		t.Errorf("assigned fan-out mismatch: %d vs %d", assigns, rec.assigned)
	}
}
