package sim

import (
	"math"
	"sort"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// DriverID indexes a driver in the fleet.
type DriverID int32

// DriverState is a driver's lifecycle phase.
type DriverState uint8

// Driver states: available (free to assign), busy (picking up or
// delivering a rider, or cruising to a reposition target), offline
// (outside the driver's shift), or departed (handed off to another
// engine by a sharded runtime's fleet re-homing; the local slot stays
// inert forever).
const (
	Available DriverState = iota
	Busy
	Offline
	Departed
)

// Shift bounds a driver's working period — the paper's driver lifetime
// T_j from joining to exiting the platform. The zero value means the
// whole simulation horizon.
type Shift struct {
	JoinAt  float64
	LeaveAt float64 // 0 means never
}

// Driver is one vehicle in the simulation.
type Driver struct {
	ID    DriverID
	State DriverState
	// Pos is the driver's location when available; while busy it is the
	// destination they will occupy on completion.
	Pos geo.Point
	// FreeAt is when a busy driver completes its current trip. For an
	// available driver it is the time it last became available (its
	// rejoin time), which anchors the idle ledger.
	FreeAt float64
	// Served counts completed orders.
	Served int
}

// RiderStatus is a rider's lifecycle phase.
type RiderStatus uint8

// Rider statuses.
const (
	WaitingStatus RiderStatus = iota
	AssignedStatus
	RenegedStatus
	// CanceledStatus marks a rider that canceled its order before
	// assignment — stochastically through the scenario's patience model
	// or explicitly through a CancelableSource.
	CanceledStatus
)

// Rider wraps an order with its runtime status and per-order constants
// the engine precomputes (trip cost and destination region).
type Rider struct {
	Order  trace.Order
	Status RiderStatus
	// TripCost is cost(s_i, e_i) in seconds under the run's coster — the
	// order's revenue at alpha = 1.
	TripCost float64
	// DestRegion is the region of the dropoff point.
	DestRegion geo.RegionID
	// PickedAt is when the assigned driver reaches the pickup point
	// (realized time: under travel noise it may differ from the
	// estimate the dispatch decision was planned with).
	PickedAt float64
	// Driver is the assigned driver, valid when Status == AssignedStatus.
	Driver DriverID
	// CancelAt, when positive, is the time this rider will abandon the
	// order if still waiting — drawn at admission from the scenario's
	// patience model. 0 means the rider waits to the deadline.
	CancelAt float64
	// Shared marks a rider committed through a pooled insertion into an
	// already-active route plan (as opposed to starting a trip of their
	// own). Always false when pooling is disabled.
	Shared bool
}

// Pair is one valid rider-and-driver dispatching pair of Definition 3,
// precomputed per batch. R and D index Context.Riders and
// Context.Drivers.
type Pair struct {
	R, D       int32
	PickupCost float64 // seconds for the driver to reach the pickup
	TripCost   float64 // seconds from pickup to dropoff: the pair's revenue at alpha=1
	DestRegion geo.RegionID
}

// Assignment is a dispatcher's decision: serve rider R with driver D
// (indices into the batch Context). IgnorePickup is reserved for the
// UPPER bound pseudo-dispatcher, which the paper defines as serving the
// most expensive orders while ignoring pickup distances.
//
// When Pool is set the assignment is a shared-ride insertion instead:
// Option indexes Context.PoolOptions, R must match the option's rider,
// and D is ignored — the serving driver is the option's (busy) plan
// holder, not an available driver slot.
type Assignment struct {
	R, D         int32
	IgnorePickup bool
	Pool         bool
	Option       int32
}

// TravelRecord pairs one noisy assignment's estimated travel durations
// with the realized ones — the estimate-vs-realized error ledger of the
// stochastic-travel-time scenario. Records are only appended while
// ScenarioConfig.TravelNoise is active.
type TravelRecord struct {
	Order  trace.OrderID
	Driver DriverID
	// At is the batch time of the assignment.
	At float64
	// PickupEstimate/TripEstimate are the coster's planned durations;
	// PickupRealized/TripRealized are what the trip actually took.
	PickupEstimate float64
	PickupRealized float64
	TripEstimate   float64
	TripRealized   float64
}

// AbsError returns the total absolute estimate error of the record in
// seconds (pickup plus trip).
func (r TravelRecord) AbsError() float64 {
	return math.Abs(r.PickupRealized-r.PickupEstimate) + math.Abs(r.TripRealized-r.TripEstimate)
}

// IdleRecord pairs the model-estimated idle time at a driver's rejoin
// with the idle time that actually elapsed before its next assignment —
// one observation of Table 3.
type IdleRecord struct {
	Driver   DriverID
	Region   geo.RegionID
	RejoinAt float64
	Estimate float64 // queueing-model estimate captured at rejoin; NaN when no estimator installed
	Realized float64
}

// Metrics aggregates one simulation run.
type Metrics struct {
	// Revenue is the platform total: alpha * sum of served trip costs
	// (alpha = 1, Section 6.3, so revenue equals total serving seconds).
	Revenue float64
	// Served, Reneged and Canceled count terminal rider outcomes:
	// assigned a driver, expired past the deadline, or canceled by the
	// rider before assignment (scenario hazard or explicit cancel).
	Served   int
	Reneged  int
	Canceled int
	// Declines counts driver-declined assignments (non-terminal: the
	// rider returns to the waiting pool and may still be served).
	Declines int
	// TotalOrders is the trace size.
	TotalOrders int
	// Batches is how many batch rounds ran.
	Batches int
	// BatchSeconds aggregates wall-clock dispatcher time per batch.
	BatchSeconds []float64
	// IdleRecords is the per-rejoin idle ledger (estimate vs realized).
	IdleRecords []IdleRecord
	// TravelRecords is the estimate-vs-realized travel-time ledger,
	// one record per assignment committed under travel noise.
	TravelRecords []TravelRecord
	// PickupSeconds sums driver travel to pickups (deadhead time,
	// realized under travel noise). For pooled insertions the
	// contribution is the rider's wait until pickup, which may include
	// serving another rider's stop on the way.
	PickupSeconds float64
	// SharedServed counts shared riders whose pooled trip completed
	// (dropoff reached); DetourSeconds sums their realized detours —
	// seconds between pickup and dropoff beyond the direct-trip
	// estimate. Both stay zero with pooling disabled.
	SharedServed  int
	DetourSeconds float64
}

// Summary is the deterministic projection of Metrics: every field a
// repeated run with the same instance and dispatcher reproduces exactly,
// excluding wall-clock timings. Two runs of the same point — sequential
// or parallel, in any order — must produce identical Summaries, which is
// what Sweep's determinism contract is checked against.
type Summary struct {
	Revenue       float64
	Served        int
	Reneged       int
	Canceled      int
	Declines      int
	TotalOrders   int
	Batches       int
	PickupSeconds float64
	// IdleClosed counts closed idle-ledger entries; IdleSeconds sums
	// their realized idle times.
	IdleClosed  int
	IdleSeconds float64
	// TravelSamples counts estimate-vs-realized travel records;
	// TravelAbsErrSeconds sums their absolute errors.
	TravelSamples       int
	TravelAbsErrSeconds float64
	// SharedServed counts completed shared (pooled) trips and
	// DetourSeconds sums their realized detours; zero without pooling.
	SharedServed  int
	DetourSeconds float64
}

// Summary projects the run's deterministic outcomes.
func (m *Metrics) Summary() Summary {
	s := Summary{
		Revenue:       m.Revenue,
		Served:        m.Served,
		Reneged:       m.Reneged,
		Canceled:      m.Canceled,
		Declines:      m.Declines,
		TotalOrders:   m.TotalOrders,
		Batches:       m.Batches,
		PickupSeconds: m.PickupSeconds,
		SharedServed:  m.SharedServed,
		DetourSeconds: m.DetourSeconds,
	}
	for _, rec := range m.IdleRecords {
		s.IdleClosed++
		s.IdleSeconds += rec.Realized
	}
	for _, rec := range m.TravelRecords {
		s.TravelSamples++
		s.TravelAbsErrSeconds += rec.AbsError()
	}
	return s
}

// MeanAbsTravelErrorSeconds returns the mean absolute
// estimate-vs-realized travel error over the noise ledger, 0 without
// samples.
func (s Summary) MeanAbsTravelErrorSeconds() float64 {
	if s.TravelSamples == 0 {
		return 0
	}
	return s.TravelAbsErrSeconds / float64(s.TravelSamples)
}

// MeanIdleSeconds returns the mean realized idle time over closed
// ledger entries, 0 when none closed.
func (s Summary) MeanIdleSeconds() float64 {
	if s.IdleClosed == 0 {
		return 0
	}
	return s.IdleSeconds / float64(s.IdleClosed)
}

// AvgBatchSeconds returns the mean dispatcher wall time per batch.
func (m *Metrics) AvgBatchSeconds() float64 {
	if len(m.BatchSeconds) == 0 {
		return 0
	}
	s := 0.0
	for _, b := range m.BatchSeconds {
		s += b
	}
	return s / float64(len(m.BatchSeconds))
}

// BatchSecondsQuantile returns the nearest-rank p-quantile (0 < p <=
// 1) of the per-batch dispatcher wall times, 0 without batches. It
// sorts a copy, so BatchSeconds keeps its batch order.
func (m *Metrics) BatchSecondsQuantile(p float64) float64 {
	n := len(m.BatchSeconds)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), m.BatchSeconds...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return s[i]
}

// MaxBatchSeconds returns the worst-case dispatcher wall time.
func (m *Metrics) MaxBatchSeconds() float64 {
	max := 0.0
	for _, b := range m.BatchSeconds {
		if b > max {
			max = b
		}
	}
	return max
}

// ServiceRate returns the fraction of orders served.
func (m *Metrics) ServiceRate() float64 {
	if m.TotalOrders == 0 {
		return 0
	}
	return float64(m.Served) / float64(m.TotalOrders)
}
