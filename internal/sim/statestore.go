package sim

import (
	"math"
	"sort"
	"sync"
	"time"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// OrderState is an order's lifecycle phase as seen by a StateStore.
type OrderState string

// Order states. An order is pending from submission until the engine
// commits a terminal event for it.
const (
	OrderPending  OrderState = "pending"
	OrderAssigned OrderState = "assigned"
	OrderExpired  OrderState = "expired"
	// OrderCanceled marks a rider-initiated cancellation (patience
	// hazard or explicit DELETE); the string matches the serve layer's
	// OutcomeCanceledByRider so long-polls and reads agree.
	OrderCanceled OrderState = "canceled_by_rider"
)

// OrderView is the queryable per-order state a StateStore folds out of
// engine events — what GET /v1/orders/{id} serves.
type OrderView struct {
	ID       trace.OrderID `json:"id"`
	State    OrderState    `json:"state"`
	PostTime float64       `json:"post_time"`
	Deadline float64       `json:"deadline"`
	Pickup   geo.Point     `json:"pickup"`
	Dropoff  geo.Point     `json:"dropoff"`
	// Assigned-only fields.
	Driver     DriverID `json:"driver,omitempty"`
	AssignedAt float64  `json:"assigned_at,omitempty"`
	PickedAt   float64  `json:"picked_at,omitempty"`
	FreeAt     float64  `json:"free_at,omitempty"`
	PickupCost float64  `json:"pickup_cost,omitempty"`
	Revenue    float64  `json:"revenue,omitempty"`
	// ExpiredAt is the batch time the rider reneged (expired-only).
	ExpiredAt float64 `json:"expired_at,omitempty"`
	// CanceledAt is the batch time the rider canceled (canceled-only).
	CanceledAt float64 `json:"canceled_at,omitempty"`
	// Declines counts driver declines this order survived before its
	// terminal state.
	Declines int `json:"declines,omitempty"`
	// Shared marks an order served by a pooled insertion into an active
	// route plan; DetourSeconds is the rider's detour versus the direct
	// trip (planned at assignment, realized once dropped off). Both stay
	// zero without pooling.
	Shared        bool    `json:"shared,omitempty"`
	DetourSeconds float64 `json:"detour_seconds,omitempty"`
}

// DriverView is the queryable per-driver state: assignment counts and
// the driver's last known movement, folded from Assigned and
// Repositioned events.
type DriverView struct {
	ID          DriverID  `json:"id"`
	Served      int       `json:"served"`
	Declines    int       `json:"declines"`
	Repositions int       `json:"repositions"`
	Busy        bool      `json:"busy"` // heading to a pickup, trip, or cruise
	Pos         geo.Point `json:"pos"`  // last known (destination while busy)
	FreeAt      float64   `json:"free_at"`
	LastEventAt float64   `json:"last_event_at"`
	// Onboard and RemainingStops mirror a pooled driver's route plan:
	// riders currently in the car and stops still to serve. Both stay
	// zero without pooling.
	Onboard        int `json:"onboard"`
	RemainingStops int `json:"remaining_stops"`
}

// StoreStats snapshots the store's engine counters — what GET /v1/stats
// serves.
type StoreStats struct {
	// Clock and Batch track the latest batch boundary.
	Clock float64 `json:"clock"`
	Batch int     `json:"batch"`
	// Waiting and Available are the latest batch's queue depths.
	Waiting   int `json:"waiting"`
	Available int `json:"available"`
	// Terminal-outcome counters. Canceled counts rider-initiated
	// cancellations; Declined counts driver-declined assignments
	// (non-terminal — the order may still end assigned).
	Submitted    int `json:"submitted"`
	Assigned     int `json:"assigned"`
	Expired      int `json:"expired"`
	Canceled     int `json:"canceled"`
	Declined     int `json:"declined"`
	Repositioned int `json:"repositioned"`
	// Batch cycle wall-clock timings (milliseconds): the gap between
	// consecutive batch starts, i.e. dispatch work plus pacing sleep.
	// The percentiles are nearest-rank over every gap seen so far.
	AvgBatchGapMS float64 `json:"avg_batch_gap_ms"`
	MaxBatchGapMS float64 `json:"max_batch_gap_ms"`
	BatchGapP50MS float64 `json:"batch_gap_p50_ms"`
	BatchGapP95MS float64 `json:"batch_gap_p95_ms"`
	BatchGapP99MS float64 `json:"batch_gap_p99_ms"`
	// Revenue and PickupSeconds accumulate over assignments.
	Revenue       float64 `json:"revenue"`
	PickupSeconds float64 `json:"pickup_seconds"`
	// Pooled-trip counters: shared insertions committed, pickup and
	// dropoff stops completed, and the realized detour seconds of
	// completed shared trips. All stay zero without pooling.
	SharedAssigned int     `json:"shared_assigned"`
	PickedUp       int     `json:"picked_up"`
	DroppedOff     int     `json:"dropped_off"`
	DetourSeconds  float64 `json:"detour_seconds"`
}

// StateStore is an Observer that folds engine events into queryable
// per-order and per-driver views — the live state behind the HTTP
// gateway's read endpoints. Event callbacks run inline on the engine
// goroutine and only copy scalars under a short critical section;
// readers get snapshot copies and never see engine-owned pointers.
//
// Orders enter the store either through TrackSubmitted (the gateway
// registers each accepted submission so it is queryable while still
// pending) or lazily at their first terminal event; the two paths merge,
// so event/track ordering races are harmless.
type StateStore struct {
	mu      sync.RWMutex
	orders  map[trace.OrderID]*OrderView
	drivers map[DriverID]*DriverView
	stats   StoreStats

	gapCount      int
	gapSumMS      float64
	gapsMS        []float64
	lastBatchWall time.Time

	// now supplies the wall clock for batch-gap timings. It defaults
	// to time.Now; SetClock injects a fake so store-view tests don't
	// depend on real time.
	now func() time.Time
}

// NewStateStore returns an empty store. fleet pre-populates that many
// driver views (ids 0..fleet-1) so GET /v1/drivers lists the whole
// fleet before any event mentions it; 0 learns drivers from events.
func NewStateStore(fleet int) *StateStore {
	s := &StateStore{
		orders:  make(map[trace.OrderID]*OrderView),
		drivers: make(map[DriverID]*DriverView),
		now:     time.Now, //mrvdlint:ignore wallclock injectable default; batch-gap timings measure real gateway pacing, not simulated time
	}
	for i := 0; i < fleet; i++ {
		s.drivers[DriverID(i)] = &DriverView{ID: DriverID(i)}
	}
	return s
}

// SetClock overrides the wall-clock source behind the batch-gap
// timings (AvgBatchGapMS and friends). Tests inject a deterministic
// clock; production code keeps the default. Call it before the engine
// starts delivering events.
func (s *StateStore) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// TrackSubmitted registers a submitted order so it is queryable while
// pending. It merges rather than overwrites: an order whose terminal
// event already arrived keeps its terminal state.
func (s *StateStore) TrackSubmitted(o trace.Order) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.order(o.ID)
	v.PostTime, v.Deadline = o.PostTime, o.Deadline
	v.Pickup, v.Dropoff = o.Pickup, o.Dropoff
	s.stats.Submitted++
}

// order returns the view for id, creating a pending one if needed.
// Callers hold s.mu.
func (s *StateStore) order(id trace.OrderID) *OrderView {
	v, ok := s.orders[id]
	if !ok {
		v = &OrderView{ID: id, State: OrderPending}
		s.orders[id] = v
	}
	return v
}

// driver returns the view for id, creating one if needed. Callers hold
// s.mu.
func (s *StateStore) driver(id DriverID) *DriverView {
	v, ok := s.drivers[id]
	if !ok {
		v = &DriverView{ID: id}
		s.drivers[id] = v
	}
	return v
}

// OnBatchStart implements Observer.
func (s *StateStore) OnBatchStart(e BatchStartEvent) {
	s.mu.Lock()
	now := s.now()
	defer s.mu.Unlock()
	s.stats.Clock = e.Now
	s.stats.Batch = e.Batch
	s.stats.Waiting = e.Waiting
	s.stats.Available = e.Available
	if !s.lastBatchWall.IsZero() {
		gap := now.Sub(s.lastBatchWall).Seconds() * 1000
		s.gapCount++
		s.gapSumMS += gap
		s.gapsMS = append(s.gapsMS, gap)
		s.stats.AvgBatchGapMS = s.gapSumMS / float64(s.gapCount)
		if gap > s.stats.MaxBatchGapMS {
			s.stats.MaxBatchGapMS = gap
		}
	}
	s.lastBatchWall = now
	// Drivers whose trips completed are available again.
	//mrvdlint:ignore maporder disjoint per-driver flag clear; no cross-driver state, so visit order cannot matter
	for _, d := range s.drivers {
		if d.Busy && d.FreeAt <= e.Now {
			d.Busy = false
		}
	}
}

// OnAssigned implements Observer.
func (s *StateStore) OnAssigned(e AssignedEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.order(e.Rider.Order.ID)
	if v.State == OrderPending { // events are authoritative; never downgrade
		v.State = OrderAssigned
		v.PostTime, v.Deadline = e.Rider.Order.PostTime, e.Rider.Order.Deadline
		v.Pickup, v.Dropoff = e.Rider.Order.Pickup, e.Rider.Order.Dropoff
		v.Driver = e.Driver
		v.AssignedAt = e.Now
		v.PickedAt = e.Rider.PickedAt
		v.FreeAt = e.FreeAt
		v.PickupCost = e.PickupCost
		v.Revenue = e.Revenue
		v.Shared = e.Shared
		v.DetourSeconds = e.DetourSeconds
		s.stats.Assigned++
		s.stats.Revenue += e.Revenue
		s.stats.PickupSeconds += e.PickupCost
		if e.Shared {
			s.stats.SharedAssigned++
		}
	}
	d := s.driver(e.Driver)
	d.Served++
	d.Busy = true
	d.Pos = e.Dest
	d.FreeAt = e.DriverFreeAt
	d.RemainingStops = e.Stops
	d.LastEventAt = e.Now
}

// OnExpired implements Observer.
func (s *StateStore) OnExpired(e ExpiredEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.order(e.Rider.Order.ID)
	if v.State == OrderPending {
		v.State = OrderExpired
		v.PostTime, v.Deadline = e.Rider.Order.PostTime, e.Rider.Order.Deadline
		v.Pickup, v.Dropoff = e.Rider.Order.Pickup, e.Rider.Order.Dropoff
		v.ExpiredAt = e.Now
		s.stats.Expired++
	}
}

// OnCanceled implements Observer.
func (s *StateStore) OnCanceled(e CanceledEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.order(e.Rider.Order.ID)
	switch v.State {
	case OrderPending:
		v.State = OrderCanceled
		v.PostTime, v.Deadline = e.Rider.Order.PostTime, e.Rider.Order.Deadline
		v.Pickup, v.Dropoff = e.Rider.Order.Pickup, e.Rider.Order.Dropoff
		v.CanceledAt = e.Now
		s.stats.Canceled++
	case OrderAssigned:
		// Pooling lets an assigned rider cancel off an active plan
		// before pickup; the assignment's accounting unwinds with it.
		v.State = OrderCanceled
		v.CanceledAt = e.Now
		s.stats.Canceled++
		s.stats.Assigned--
		s.stats.Revenue -= v.Revenue
		s.stats.PickupSeconds -= v.PickupCost
		if v.Shared {
			s.stats.SharedAssigned--
		}
		d := s.driver(v.Driver)
		d.Served--
		d.LastEventAt = e.Now
	}
}

// OnDeclined implements Observer.
func (s *StateStore) OnDeclined(e DeclinedEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.order(e.Rider.Order.ID)
	v.Declines++
	d := s.driver(e.Driver)
	d.Declines++
	d.Busy = true
	// A pooled driver declining an insertion keeps executing its plan;
	// never pull its completion earlier than the plan's end.
	if e.RetryAt > d.FreeAt {
		d.FreeAt = e.RetryAt
	}
	d.LastEventAt = e.Now
	s.stats.Declined++
}

// OnRepositioned implements Observer.
func (s *StateStore) OnRepositioned(e RepositionedEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.driver(e.Driver)
	d.Repositions++
	d.Busy = true
	d.Pos = e.To
	d.FreeAt = e.ArriveAt
	d.LastEventAt = e.Now
	s.stats.Repositioned++
}

// OnPickedUp implements Observer.
func (s *StateStore) OnPickedUp(e PickedUpEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.driver(e.Driver)
	d.Onboard = e.Onboard
	d.RemainingStops = e.Remaining
	d.LastEventAt = e.Now
	s.stats.PickedUp++
}

// OnDroppedOff implements Observer.
func (s *StateStore) OnDroppedOff(e DroppedOffEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.order(e.Order)
	if v.State == OrderAssigned {
		v.DetourSeconds = e.DetourSeconds
	}
	d := s.driver(e.Driver)
	d.Onboard = e.Onboard
	d.RemainingStops = e.Remaining
	d.LastEventAt = e.Now
	s.stats.DroppedOff++
	if e.Shared {
		s.stats.DetourSeconds += e.DetourSeconds
	}
}

// Order returns a snapshot of one order's view.
func (s *StateStore) Order(id trace.OrderID) (OrderView, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.orders[id]
	if !ok {
		return OrderView{}, false
	}
	return *v, true
}

// Orders returns snapshots of every known order, sorted by id.
func (s *StateStore) Orders() []OrderView {
	s.mu.RLock()
	out := make([]OrderView, 0, len(s.orders))
	for _, v := range s.orders {
		out = append(out, *v)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Drivers returns snapshots of every known driver, sorted by id.
func (s *StateStore) Drivers() []DriverView {
	s.mu.RLock()
	out := make([]DriverView, 0, len(s.drivers))
	for _, v := range s.drivers {
		out = append(out, *v)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns a snapshot of the engine counters, with nearest-rank
// batch-gap percentiles computed over the gaps seen so far.
func (s *StateStore) Stats() StoreStats {
	s.mu.RLock()
	st := s.stats
	gaps := append([]float64(nil), s.gapsMS...)
	s.mu.RUnlock()
	if len(gaps) > 0 {
		sort.Float64s(gaps)
		q := func(p float64) float64 {
			i := int(math.Ceil(p*float64(len(gaps)))) - 1
			if i < 0 {
				i = 0
			}
			return gaps[i]
		}
		st.BatchGapP50MS = q(0.50)
		st.BatchGapP95MS = q(0.95)
		st.BatchGapP99MS = q(0.99)
	}
	return st
}
