package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/roadnet"
	"mrvd/internal/trace"
)

// Config parameterizes one simulation run.
type Config struct {
	// Grid partitions the city; nil defaults to the paper's 16x16 NYC grid.
	Grid *geo.Grid
	// Coster prices travel; nil defaults to roadnet.NewDefaultCoster().
	// Costers that implement roadnet.BatchCoster are priced one
	// many-to-many matrix per batch unless they opt out through
	// roadnet.PerSourceAmortized; plain Costers keep working through a
	// per-pair compatibility loop. See buildContext for the exact
	// dense-versus-lazy pricing rules.
	Coster roadnet.Coster
	// Delta is the batch interval in seconds (default 3, Table 2).
	Delta float64
	// TC is the scheduling window t_c in seconds (default 1200 = 20 min).
	TC float64
	// Horizon is the simulated span in seconds (default one day).
	Horizon float64
	// MaxCandidatesPerRider caps valid pairs per rider to the nearest
	// feasible drivers (default 12). It bounds batch cost at scale.
	MaxCandidatesPerRider int
	// CandidateCap, when positive, prices only the CandidateCap nearest
	// drivers per rider — a k-nearest pre-filter on the spatial index
	// applied before the deadline-feasibility check. The default 0
	// prices every driver within the rider's patience radius, which
	// keeps exact parity with per-pair costing; a cap bounds pricing
	// work per order for very large fleets at the cost of occasionally
	// missing a feasible far driver when nearer ones are
	// deadline-infeasible.
	CandidateCap int
	// RadiusSpeedMPS converts a rider's remaining patience into the
	// search radius for feasible drivers. It must upper-bound the real
	// travel speed or feasible pairs are missed (default 12).
	RadiusSpeedMPS float64
	// PredictRiders returns |^R_k| per region for [now, now+tc]; nil
	// predicts zeros everywhere.
	PredictRiders func(now, tc float64) []int
	// Shifts optionally bounds each driver's working period; when set it
	// must be parallel to the driver starts. Empty means every driver
	// works the whole horizon.
	Shifts []Shift
	// Repositioner optionally relocates long-idle drivers between
	// batches; nil disables repositioning (drivers wait where they
	// dropped off, the paper's base behaviour).
	Repositioner Repositioner
	// RepositionAfter is the idle time in seconds before a driver is
	// offered to the Repositioner (default 300 when one is set).
	RepositionAfter float64
	// Observer, when set, receives lifecycle events (batch boundaries,
	// assignments, reneges, repositions) as they happen.
	Observer Observer
	// StopWhenDrained ends the run before the horizon once the order
	// source is exhausted, no rider is waiting and no driver is busy —
	// the natural exit for live ChannelSource serving. The default keeps
	// the paper's fixed-horizon batch count.
	StopWhenDrained bool
	// Scenario gates the disruption layer: stochastic rider
	// cancellations, driver declines and travel-time noise. The zero
	// value disables all three and keeps the engine byte-identical to a
	// scenario-free run; see ScenarioConfig. Explicit cancels are
	// independent of the scenario: they flow in whenever the order
	// source implements CancelableSource.
	Scenario ScenarioConfig
	// Pooling enables multi-rider trips: a busy driver carries an
	// ordered route plan of pickup/dropoff stops, and new orders may be
	// inserted into active plans under the config's capacity and
	// per-rider detour bounds (see internal/pool). The zero value — or
	// any Capacity <= 1 — disables pooling and keeps the engine
	// byte-identical to a single-trip run: same Summary, same idle
	// ledger, same event stream.
	Pooling pool.Config
	// Obs wires the optional observability layer: a metrics registry
	// receiving phase timings and lifecycle counters, and/or a tracer
	// emitting one span per terminal order. The zero value disables
	// both; enabled, only wall-clock data outside Summary is touched,
	// so determinism contracts hold either way.
	Obs ObsConfig
	// PaceFactor paces the batch loop against the wall clock: the
	// simulation advances at most PaceFactor simulated seconds per wall
	// second (1 = real time). This is what lets wall-clock producers
	// drive a live ChannelSource — without pacing the engine free-runs
	// thousands of times faster than real time, so concurrently
	// submitted orders would arrive with their deadlines already in the
	// engine's past. 0 (the default) free-runs.
	PaceFactor float64
}

// Repositioner proposes cruise targets for idle drivers. Returning
// ok=false leaves the driver in place. The driver travels to the target
// (unassignable while cruising) and its open idle-ledger entry keeps
// running — repositioning is not service.
type Repositioner interface {
	Target(ctx *Context, driver *Driver, region geo.RegionID) (geo.Point, bool)
}

// WithDefaults returns a copy of the config with every unset field
// replaced by its documented default — what New and NewWithSource apply
// at construction. Coordinators that run their own batch loop over the
// config's timing (internal/shard) resolve it once up front.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Grid == nil {
		c.Grid = geo.NewNYCGrid()
	}
	if c.Coster == nil {
		c.Coster = roadnet.NewDefaultCoster()
	}
	if c.Delta <= 0 {
		c.Delta = 3
	}
	if c.TC <= 0 {
		c.TC = 1200
	}
	if c.Horizon <= 0 {
		c.Horizon = 24 * 3600
	}
	if c.MaxCandidatesPerRider <= 0 {
		c.MaxCandidatesPerRider = 12
	}
	if c.RadiusSpeedMPS <= 0 {
		c.RadiusSpeedMPS = 12
	}
	return c
}

// IdleEstimating is an optional Dispatcher extension: dispatchers that
// maintain a queueing model report their per-region idle-time estimate,
// which the engine pairs with realized idle times in the ledger
// (Table 3's data).
type IdleEstimating interface {
	EstimateIdle(ctx *Context, region geo.RegionID) float64
}

// completionHeap orders busy drivers by completion time.
type completionHeap []completion

type completion struct {
	freeAt float64
	driver DriverID
}

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].freeAt < h[j].freeAt }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine runs one simulation. Build with New (fixed trace) or
// NewWithSource (streaming orders); Run executes once.
type Engine struct {
	cfg     Config
	src     OrderSource
	srcDone bool
	// batch is the many-to-many view of cfg.Coster: native when the
	// coster implements roadnet.BatchCoster, a per-pair compatibility
	// loop otherwise. denseBatch records the construction-time pricing
	// policy: one dense Costs call per batch for native BatchCosters
	// (unless they opt out via roadnet.PerSourceAmortized), lazy
	// cell-by-cell pricing otherwise.
	batch      roadnet.BatchCoster
	denseBatch bool
	drivers    []Driver

	idx     *geo.Index // available drivers
	busy    completionHeap
	waiting []*Rider
	riders  []*Rider

	// futureRejoin[k] holds sorted completion times of busy drivers whose
	// destination is region k; pruned as time advances.
	futureRejoin [][]float64

	// openIdle maps a rejoined driver to its pending ledger entry.
	openIdle map[DriverID]int

	// scen is the disruption machinery, nil when Config.Scenario is
	// zero-valued — the scenario-free path pays no draws and no checks
	// beyond a nil test.
	scen *scenarioState
	// ps is the pooling machinery, nil unless Config.Pooling enables
	// multi-rider trips — the single-trip path pays nothing beyond a
	// nil test.
	ps *poolState
	// obs is the observability machinery, nil unless Config.Obs wires
	// a registry or tracer — the uninstrumented path pays one nil
	// check per hook site.
	obs *obsState
	// cancelSrc is the order source's cancellation feed when it has one
	// (ChannelSource, the shard runtime's feedSource); nil otherwise.
	cancelSrc CancelableSource
	// byID indexes admitted riders by order id for explicit-cancel
	// lookup; nil unless cancelSrc is set.
	byID map[trace.OrderID]*Rider
	// pendingCancels holds explicit cancel requests whose order the
	// engine has not admitted yet (still buffered in the source); they
	// are retried in FIFO order every batch.
	pendingCancels []trace.OrderID

	// shifts is parallel to drivers when configured.
	shifts []Shift

	metrics Metrics
	// sized records whether TotalOrders was fixed upfront by a
	// SizedSource or is counted per admission.
	sized bool
	ran   bool
}

// New builds a fresh engine over a fixed trace and initial driver
// positions — a convenience for NewWithSource with a SliceSource.
// Orders are copied, validated and sorted by post time.
func New(cfg Config, orders []trace.Order, driverStarts []geo.Point) *Engine {
	return NewWithSource(cfg, NewSliceSource(orders), driverStarts)
}

// NewWithSource builds a fresh engine that pulls orders from src each
// batch. Sources implementing SizedSource fix Metrics.TotalOrders to the
// full trace size upfront; otherwise TotalOrders counts admissions.
func NewWithSource(cfg Config, src OrderSource, driverStarts []geo.Point) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:          cfg,
		src:          src,
		batch:        roadnet.AsBatchCoster(cfg.Coster),
		idx:          geo.NewIndex(cfg.Grid),
		futureRejoin: make([][]float64, cfg.Grid.NumRegions()),
		openIdle:     make(map[DriverID]int),
	}
	if _, native := cfg.Coster.(roadnet.BatchCoster); native {
		e.denseBatch = true
		if a, ok := cfg.Coster.(roadnet.PerSourceAmortized); ok {
			e.denseBatch = a.AmortizesPerSource()
		}
	}
	if cfg.Scenario.Enabled() {
		e.scen = newScenarioState(cfg.Scenario)
	}
	if cfg.Pooling.Enabled() {
		e.ps = newPoolState(cfg.Pooling)
	}
	if cfg.Obs.Enabled() {
		e.obs = newObsState(cfg.Obs)
	}
	if cs, ok := src.(CancelableSource); ok {
		e.cancelSrc = cs
		e.byID = make(map[trace.OrderID]*Rider)
	}
	if len(cfg.Shifts) > 0 {
		if len(cfg.Shifts) != len(driverStarts) {
			panic(fmt.Sprintf("sim: %d shifts for %d drivers", len(cfg.Shifts), len(driverStarts)))
		}
		e.shifts = cfg.Shifts
	}
	e.drivers = make([]Driver, len(driverStarts))
	for i, p := range driverStarts {
		e.drivers[i] = Driver{ID: DriverID(i), State: Available, Pos: cfg.Grid.Bounds().Clamp(p), FreeAt: 0}
		if e.shifts != nil && e.shifts[i].JoinAt > 0 {
			e.drivers[i].State = Offline
			continue
		}
		e.idx.Insert(int32(i), p)
	}
	if sized, ok := src.(SizedSource); ok {
		e.metrics.TotalOrders = sized.TotalOrders()
		e.sized = true
	}
	return e
}

// Run executes the batch loop with the given dispatcher and returns the
// collected metrics. The context cancels the run between batches: a
// canceled or deadline-exceeded run returns the context's error (wrapped
// — test with errors.Is) and no metrics. An engine is single-use.
//
// Run is the self-driving composition of the stepping API below: Begin,
// then per batch StepAdmit + StepDispatch, then Finish. Callers that
// need to interleave several engines in lockstep — the sharded runtime
// in internal/shard — drive the steps directly instead.
func (e *Engine) Run(ctx context.Context, d Dispatcher) (*Metrics, error) {
	if err := e.Begin(); err != nil {
		return nil, err
	}
	wallStart := time.Now() //mrvdlint:ignore wallclock PaceFactor paces simulated time against the real wall clock by design
	for now := 0.0; now < e.cfg.Horizon; now += e.cfg.Delta {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run stopped at t=%.0fs: %w", now, err)
		}
		if e.cfg.PaceFactor > 0 {
			target := wallStart.Add(time.Duration(now / e.cfg.PaceFactor * float64(time.Second)))
			if wait := time.Until(target); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, fmt.Errorf("sim: run stopped at t=%.0fs: %w", now, ctx.Err())
				case <-t.C:
				}
			}
		} else {
			// A free-running engine is a tight CPU loop. Yield between
			// batches so concurrent producers — ChannelSource submitters,
			// the HTTP gateway's handlers — get scheduled promptly even
			// at GOMAXPROCS=1, where they would otherwise only run on
			// ~20ms preemptions.
			runtime.Gosched()
		}
		e.StepAdmit(now)
		if e.cfg.StopWhenDrained && e.Drained() {
			break
		}
		if err := e.StepDispatch(now, d); err != nil {
			return nil, err
		}
	}
	return e.Finish(), nil
}

// Begin arms the engine for stepping: it claims the single run and seeds
// the idle ledger with the starting fleet. Run calls it implicitly;
// lockstep coordinators call it once before the first StepAdmit.
func (e *Engine) Begin() error {
	if e.ran {
		return errors.New("sim: engine already ran; build a new one")
	}
	e.ran = true

	// The starting fleet's idle-before-first-rider (the paper's psi_0j)
	// is part of the ledger too.
	for i := range e.drivers {
		if e.drivers[i].State != Available {
			continue
		}
		region, _ := e.idx.RegionOf(int32(i))
		e.metrics.IdleRecords = append(e.metrics.IdleRecords, IdleRecord{
			Driver:   DriverID(i),
			Region:   region,
			RejoinAt: 0,
			Estimate: math.NaN(),
			Realized: math.NaN(),
		})
		e.openIdle[DriverID(i)] = len(e.metrics.IdleRecords) - 1
	}
	return nil
}

// StepAdmit runs the pre-dispatch phase of the batch at time now: order
// admission from the source, trip completions, shift changes, rider
// cancellations (which fire OnCanceled) and rider reneging (which fires
// OnExpired). Cancellations are processed before reneges: a drawn
// cancellation time always precedes the deadline, so in model time the
// rider left first. It must be preceded by Begin and followed — on the
// same engine goroutine — by StepDispatch for the same now, unless the
// run is ending.
func (e *Engine) StepAdmit(now float64) {
	var t0 time.Time
	if e.obs != nil {
		t0 = time.Now() //mrvdlint:ignore wallclock obs phase histogram measures real admit cost, not simulated time
	}
	e.admitOrders(now)
	e.rejoinDrivers(now)
	e.processShifts(now)
	e.processCancels(now)
	e.renegeExpired(now)
	if e.obs != nil {
		e.obs.phase("admit", time.Since(t0).Seconds()) //mrvdlint:ignore wallclock obs phase histogram measures real admit cost, not simulated time
	}
}

// StepDispatch runs the dispatch phase of the batch at time now: batch
// context construction, the OnBatchStart hook, idle-estimate capture,
// the dispatcher's assignment and its commitment, and repositioning.
func (e *Engine) StepDispatch(now float64, d Dispatcher) error {
	var t0 time.Time
	if e.obs != nil {
		t0 = time.Now() //mrvdlint:ignore wallclock obs phase histogram measures real context-build cost, not simulated time
	}
	bctx := e.buildContext(now)
	if e.obs != nil {
		e.obs.phase("build", time.Since(t0).Seconds()) //mrvdlint:ignore wallclock obs phase histogram measures real context-build cost, not simulated time
		e.obs.round(len(bctx.Riders), len(bctx.Drivers))
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnBatchStart(BatchStartEvent{
			Now:       now,
			Batch:     e.metrics.Batches,
			Waiting:   len(bctx.Riders),
			Available: len(bctx.Drivers),
		})
	}
	// Capture idle estimates for drivers that rejoined since the
	// last batch (their ledger entries are still estimate-free).
	if estimator, ok := d.(IdleEstimating); ok {
		//mrvdlint:ignore maporder disjoint per-record writes and EstimateIdle is pure in (bctx, region), so visit order cannot matter
		for id, rec := range e.openIdle {
			if math.IsNaN(e.metrics.IdleRecords[rec].Estimate) {
				region, _ := e.idx.RegionOf(int32(id))
				e.metrics.IdleRecords[rec].Estimate = estimator.EstimateIdle(bctx, region)
			}
		}
	}

	start := time.Now() //mrvdlint:ignore wallclock Metrics.BatchSeconds is the dispatcher's real critical-path wall time by design
	assignments := d.Assign(bctx)
	dispatchSeconds := time.Since(start).Seconds() //mrvdlint:ignore wallclock Metrics.BatchSeconds is the dispatcher's real critical-path wall time by design
	e.metrics.BatchSeconds = append(e.metrics.BatchSeconds, dispatchSeconds)
	e.metrics.Batches++
	if e.obs != nil {
		e.obs.phase("dispatch", dispatchSeconds)
		t0 = time.Now() //mrvdlint:ignore wallclock obs phase histogram measures real apply cost, not simulated time
	}

	if err := e.apply(now, bctx, assignments); err != nil {
		return err
	}
	e.reposition(now, bctx)
	if e.obs != nil {
		e.obs.phase("apply", time.Since(t0).Seconds()) //mrvdlint:ignore wallclock obs phase histogram measures real apply cost, not simulated time
	}
	return nil
}

// Drained reports whether the run has nothing left to do: the source is
// exhausted, no rider waits and no driver is busy. It is meaningful
// after a StepAdmit.
func (e *Engine) Drained() bool {
	return e.srcDone && len(e.waiting) == 0 && len(e.busy) == 0
}

// Finish censors ledger entries that never closed and returns the
// collected metrics. The engine must not be stepped afterwards.
func (e *Engine) Finish() *Metrics {
	e.closeLedger()
	return &e.metrics
}

// Counts reports the current waiting-rider and available-driver counts —
// what the next batch's BatchStartEvent would carry. Lockstep
// coordinators read it between steps to synthesize one city-wide batch
// event across shards.
func (e *Engine) Counts() (waiting, available int) {
	return len(e.waiting), e.idx.Len()
}

// AvailableWithin counts available drivers within radiusMeters of p — a
// supply probe for cross-shard routing decisions. It must not be called
// concurrently with stepping.
func (e *Engine) AvailableWithin(p geo.Point, radiusMeters float64) int {
	return e.idx.CountWithin(p, radiusMeters)
}

// EachAvailable visits every available driver in ascending id order —
// the deterministic enumeration a sharded runtime's fleet re-homing
// scans between rounds. It must not be called concurrently with
// stepping.
func (e *Engine) EachAvailable(f func(id DriverID, pos geo.Point)) {
	for i := range e.drivers {
		if e.drivers[i].State == Available {
			f(DriverID(i), e.drivers[i].Pos)
		}
	}
}

// RemoveDriver withdraws an available driver from this engine — the
// donor half of cross-engine fleet re-homing. The driver's slot stays
// allocated but permanently inert (Departed), its open idle-ledger
// entry is censored like a shift departure, and its position, idle
// anchor and shift are returned so the receiving engine can re-create
// it faithfully. Only available drivers can be withdrawn.
func (e *Engine) RemoveDriver(id DriverID) (pos geo.Point, freeAt float64, shift Shift, ok bool) {
	if int(id) >= len(e.drivers) || e.drivers[id].State != Available {
		return geo.Point{}, 0, Shift{}, false
	}
	d := &e.drivers[id]
	pos, freeAt = d.Pos, d.FreeAt
	if e.shifts != nil {
		shift = e.shifts[id]
	}
	d.State = Departed
	e.idx.Remove(int32(id))
	delete(e.openIdle, id) // censored idle entry, like a shift leave
	return pos, freeAt, shift, true
}

// AddDriver admits a driver handed off by another engine: it joins
// available at p with its idle anchor (freeAt, the time it last became
// available) preserved, opening a fresh idle-ledger entry, and keeps
// its shift bounds. The new local id is returned; the caller maintains
// any mapping to a global fleet numbering.
func (e *Engine) AddDriver(p geo.Point, freeAt float64, shift Shift) DriverID {
	id := DriverID(len(e.drivers))
	p = e.cfg.Grid.Bounds().Clamp(p)
	e.drivers = append(e.drivers, Driver{ID: id, State: Available, Pos: p, FreeAt: freeAt})
	if e.shifts == nil && shift != (Shift{}) {
		e.shifts = make([]Shift, len(e.drivers)-1)
	}
	if e.shifts != nil {
		e.shifts = append(e.shifts, shift)
	}
	e.idx.Insert(int32(id), p)
	region, _ := e.idx.RegionOf(int32(id))
	e.metrics.IdleRecords = append(e.metrics.IdleRecords, IdleRecord{
		Driver:   id,
		Region:   region,
		RejoinAt: freeAt,
		Estimate: math.NaN(),
		Realized: math.NaN(),
	})
	e.openIdle[id] = len(e.metrics.IdleRecords) - 1
	return id
}

// admitOrders pulls newly posted orders from the source into the waiting
// set. Orders from non-validating custom sources are checked here: a
// structurally broken order is a programming error and panics, matching
// New's construction-time check.
//
// Trip costs (pickup→dropoff) for the whole admission wave are priced
// through one BatchCoster.Costs call when the coster batches natively —
// the same dense-versus-lazy policy buildContext applies to pickup
// costs. A graph coster then runs one truncated Dijkstra per unique
// pickup instead of a full tree per order, with values bitwise-identical
// to per-pair Cost queries (the BatchCoster contract).
func (e *Engine) admitOrders(now float64) {
	ready, done := e.src.Poll(now)
	e.srcDone = done
	if len(ready) == 0 {
		return
	}
	for _, o := range ready {
		if err := o.Valid(); err != nil {
			panic(fmt.Sprintf("sim: %v", err))
		}
	}
	var trips []float64
	if e.denseBatch {
		// Only the matrix diagonal is read, so the wave is chunked:
		// Costs is dense, and one call over a huge backlog wave (a
		// replay's first batch can admit the whole queue) would build
		// an n×n slab to read n cells. Within a chunk the graph coster
		// still dedups sources and truncates each expansion at the
		// chunk's dropoffs; across chunks its tree cache carries the
		// reuse.
		const chunk = 256
		trips = make([]float64, len(ready))
		pickups := make([]geo.Point, 0, chunk)
		dropoffs := make([]geo.Point, 0, chunk)
		for lo := 0; lo < len(ready); lo += chunk {
			hi := lo + chunk
			if hi > len(ready) {
				hi = len(ready)
			}
			pickups, dropoffs = pickups[:0], dropoffs[:0]
			for _, o := range ready[lo:hi] {
				pickups = append(pickups, o.Pickup)
				dropoffs = append(dropoffs, o.Dropoff)
			}
			matrix := e.batch.Costs(pickups, dropoffs)
			for i := range matrix {
				trips[lo+i] = matrix[i][i]
			}
		}
	}
	for i, o := range ready {
		trip := 0.0
		if trips != nil {
			trip = trips[i]
		} else {
			trip = e.cfg.Coster.Cost(o.Pickup, o.Dropoff)
		}
		r := &Rider{
			Order:      o,
			Status:     WaitingStatus,
			TripCost:   trip,
			DestRegion: e.cfg.Grid.Region(e.cfg.Grid.Bounds().Clamp(o.Dropoff)),
		}
		if e.scen != nil && e.scen.cancel != nil {
			if at, ok := e.scen.cancel.CancelTime(e.scen.rng.Float64(), o.PostTime, o.Deadline); ok {
				r.CancelAt = at
			}
		}
		e.riders = append(e.riders, r)
		e.waiting = append(e.waiting, r)
		if e.byID != nil {
			e.byID[o.ID] = r
		}
		if e.obs != nil {
			e.obs.admit(o, now)
		}
		if !e.sized {
			e.metrics.TotalOrders++
		}
	}
}

// processCancels applies rider-initiated cancellations at time now:
// explicit requests from the source's cancellation feed first (in
// request order), then the scenario's stochastic abandonments (in
// waiting order). Canceled riders leave the waiting set in one
// compaction pass. Explicit cancels for orders the engine has not
// admitted yet are retried each batch until the order arrives; cancels
// for already-terminal orders are dropped.
func (e *Engine) processCancels(now float64) {
	canceled := false
	if e.cancelSrc != nil {
		ids := e.cancelSrc.PollCancels()
		if len(e.pendingCancels) > 0 {
			ids = append(e.pendingCancels, ids...)
			e.pendingCancels = nil
		}
		for _, id := range ids {
			r, ok := e.byID[id]
			if !ok {
				// Not admitted yet: the order is still buffered in the
				// source, so retry once it lands — unless the source is
				// done, in which case the id can never arrive (a caller
				// typo) and the request is dropped instead of being
				// retried every batch forever.
				if !e.srcDone {
					e.pendingCancels = append(e.pendingCancels, id)
				}
				continue
			}
			if r.Status != WaitingStatus {
				// Already assigned, expired or canceled — except that in
				// pooling mode an assigned rider may still cancel off an
				// active plan, as long as they are not yet onboard.
				if e.ps != nil && r.Status == AssignedStatus {
					e.cancelPooled(now, r)
				}
				continue
			}
			e.cancelRider(now, r, true)
			canceled = true
		}
	}
	if e.scen != nil && e.scen.cancel != nil {
		for _, r := range e.waiting {
			if r.Status == WaitingStatus && r.CancelAt > 0 && r.CancelAt <= now {
				e.cancelRider(now, r, false)
				canceled = true
			}
		}
	}
	if canceled {
		e.compactWaiting()
	}
}

// compactWaiting removes every no-longer-waiting rider from the waiting
// set in one stable pass, preserving admission order.
func (e *Engine) compactWaiting() {
	kept := e.waiting[:0]
	for _, r := range e.waiting {
		if r.Status == WaitingStatus {
			kept = append(kept, r)
		}
	}
	e.waiting = kept
}

// cancelRider commits one rider-initiated cancellation; the caller
// compacts the waiting set.
func (e *Engine) cancelRider(now float64, r *Rider, explicit bool) {
	r.Status = CanceledStatus
	e.metrics.Canceled++
	if e.obs != nil {
		e.obs.canceled(r.Order.ID, now)
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnCanceled(CanceledEvent{Now: now, Rider: r, Explicit: explicit})
	}
}

// rejoinDrivers makes busy drivers whose trips completed available,
// opening their idle-ledger entries. In pooling mode a busy driver's
// heap entry is its plan's front-stop arrival, so completions advance
// the plan stop by stop instead of freeing the driver in one jump.
func (e *Engine) rejoinDrivers(now float64) {
	for len(e.busy) > 0 && e.busy[0].freeAt <= now {
		c := heap.Pop(&e.busy).(completion)
		if e.ps != nil {
			if p, ok := e.ps.plans[c.driver]; ok {
				e.advancePlan(now, c.driver, p)
				continue
			}
		}
		drv := &e.drivers[c.driver]
		if e.shifts != nil {
			if la := e.shifts[c.driver].LeaveAt; la > 0 && c.freeAt >= la {
				drv.State = Offline
				continue
			}
		}
		drv.State = Available
		e.idx.Insert(int32(c.driver), drv.Pos)
		region, _ := e.idx.RegionOf(int32(c.driver))
		e.metrics.IdleRecords = append(e.metrics.IdleRecords, IdleRecord{
			Driver:   c.driver,
			Region:   region,
			RejoinAt: c.freeAt,
			Estimate: math.NaN(),
			Realized: math.NaN(),
		})
		e.openIdle[c.driver] = len(e.metrics.IdleRecords) - 1
	}
}

// renegeExpired drops waiting riders whose deadline has passed: no
// assignment made at or after now can reach them in time.
func (e *Engine) renegeExpired(now float64) {
	kept := e.waiting[:0]
	for _, r := range e.waiting {
		if r.Order.Deadline < now {
			r.Status = RenegedStatus
			e.metrics.Reneged++
			if e.obs != nil {
				e.obs.reneged(r.Order.ID, now)
			}
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnExpired(ExpiredEvent{Now: now, Rider: r})
			}
			continue
		}
		kept = append(kept, r)
	}
	e.waiting = kept
}

// buildContext snapshots the batch state, prices the batch's
// driver-to-pickup cost matrix in one BatchCoster call, and precomputes
// valid pairs as matrix lookups.
func (e *Engine) buildContext(now float64) *Context {
	grid := e.cfg.Grid
	n := grid.NumRegions()
	ctx := &Context{
		Now:                now,
		TC:                 e.cfg.TC,
		Grid:               grid,
		Coster:             e.cfg.Coster,
		WaitingPerRegion:   make([]int, n),
		AvailablePerRegion: make([]int, n),
		PredictedDrivers:   e.countFutureRejoins(now),
	}
	if e.cfg.PredictRiders != nil {
		ctx.PredictedRiders = e.cfg.PredictRiders(now, e.cfg.TC)
	} else {
		ctx.PredictedRiders = make([]int, n)
	}

	// Available drivers, in id order for determinism.
	driverSlot := make(map[int32]int32)
	for id := range e.drivers {
		if e.drivers[id].State == Available {
			d := &e.drivers[id]
			driverSlot[int32(id)] = int32(len(ctx.Drivers))
			ctx.Drivers = append(ctx.Drivers, d)
			region, _ := e.idx.RegionOf(int32(id))
			ctx.DriverRegion = append(ctx.DriverRegion, region)
			ctx.AvailablePerRegion[region]++
		}
	}

	// Waiting riders and their candidate drivers. Candidates come from
	// the spatial index — every available driver within the radius the
	// rider's remaining patience allows, optionally pre-filtered to the
	// CandidateCap nearest — and are priced below in one many-to-many
	// batch instead of per-pair Coster calls.
	cand := make([][]geo.Neighbor, len(e.waiting))
	targets := make([]geo.Point, len(e.waiting))
	for wi, r := range e.waiting {
		ctx.Riders = append(ctx.Riders, r)
		pickupRegion := grid.Region(grid.Bounds().Clamp(r.Order.Pickup))
		ctx.RiderRegion = append(ctx.RiderRegion, pickupRegion)
		ctx.WaitingPerRegion[pickupRegion]++

		slack := r.Order.Deadline - now
		radius := slack * e.cfg.RadiusSpeedMPS
		if e.cfg.CandidateCap > 0 {
			cand[wi] = e.idx.Nearest(r.Order.Pickup, e.cfg.CandidateCap, radius)
		} else {
			cand[wi] = e.idx.Within(r.Order.Pickup, radius)
		}
		targets[wi] = r.Order.Pickup
	}

	// The batch's unique candidate drivers, in first-appearance order,
	// form the cost matrix's source rows.
	driverRow := make([]int32, len(ctx.Drivers))
	for i := range driverRow {
		driverRow[i] = -1
	}
	var sources []geo.Point
	for _, ns := range cand {
		for _, nb := range ns {
			if slot := driverSlot[nb.ID]; driverRow[slot] == -1 {
				driverRow[slot] = int32(len(sources))
				sources = append(sources, ctx.Drivers[slot].Pos)
			}
		}
	}

	// Price the matrix. Dense mode (see denseBatch) issues the one
	// Costs call per batch the API documents — that is what lets a
	// graph coster amortize one truncated Dijkstra per unique source,
	// or a remote coster batch its round-trips. Lazy mode (closed
	// forms, per-pair shims: O(1) per cell, nothing to amortize) prices
	// in the pair loop below exactly the cells it reads, with rows
	// allocated on first touch; CostMatrix reports unpriced cells as
	// uncovered. Either way the priced values are bitwise-identical to
	// per-pair Coster queries.
	var costs [][]float64
	if e.denseBatch {
		costs = e.batch.Costs(sources, targets)
	} else {
		costs = make([][]float64, len(sources))
	}
	ctx.PickupCosts = &CostMatrix{rows: costs, driverRow: driverRow}

	// Valid pairs (Definition 3) become matrix lookups: a candidate is
	// kept while the driver can reach the pickup before the deadline,
	// up to MaxCandidatesPerRider feasible pairs per rider. Lazily
	// priced cells preserve the per-pair path's work profile — pricing
	// stops with the cap, not at the radius.
	for wi, r := range e.waiting {
		found := 0
		for _, nb := range cand[wi] {
			if found >= e.cfg.MaxCandidatesPerRider {
				break
			}
			slot := driverSlot[nb.ID]
			row := costs[driverRow[slot]]
			if row == nil {
				row = make([]float64, len(targets))
				for j := range row {
					row[j] = math.NaN()
				}
				costs[driverRow[slot]] = row
			}
			pc := row[wi]
			if math.IsNaN(pc) {
				pc = e.cfg.Coster.Cost(e.drivers[nb.ID].Pos, targets[wi])
				row[wi] = pc
			}
			if now+pc > r.Order.Deadline {
				continue
			}
			ctx.Pairs = append(ctx.Pairs, Pair{
				R:          int32(wi),
				D:          slot,
				PickupCost: pc,
				TripCost:   r.TripCost,
				DestRegion: r.DestRegion,
			})
			found++
		}
	}
	// Pairs are naturally grouped by rider; sort each rider's group by
	// pickup cost (Within already yields distance order, but the coster
	// may disagree with straight-line distance).
	sort.SliceStable(ctx.Pairs, func(i, j int) bool {
		if ctx.Pairs[i].R != ctx.Pairs[j].R {
			return ctx.Pairs[i].R < ctx.Pairs[j].R
		}
		return ctx.Pairs[i].PickupCost < ctx.Pairs[j].PickupCost
	})
	if e.ps != nil {
		e.buildPoolOptions(now, ctx)
	}
	return ctx
}

// countFutureRejoins returns, per region, how many busy drivers will
// complete there within (now, now+tc].
func (e *Engine) countFutureRejoins(now float64) []int {
	out := make([]int, len(e.futureRejoin))
	for k, times := range e.futureRejoin {
		// Prune completions already in the past.
		i := sort.SearchFloat64s(times, now)
		if i > 0 {
			times = times[i:]
			e.futureRejoin[k] = times
		}
		out[k] = sort.SearchFloat64s(times, now+e.cfg.TC)
	}
	return out
}

// apply validates and commits a batch's assignments.
func (e *Engine) apply(now float64, ctx *Context, assignments []Assignment) error {
	usedR := make(map[int32]bool, len(assignments))
	usedD := make(map[int32]bool, len(assignments))
	var usedPool map[DriverID]bool
	changed := false
	for _, a := range assignments {
		if a.Pool {
			if usedPool == nil {
				usedPool = make(map[DriverID]bool)
			}
			didChange, err := e.applyPooled(now, ctx, a, usedR, usedPool)
			if err != nil {
				return err
			}
			changed = changed || didChange
			continue
		}
		if a.R < 0 || int(a.R) >= len(ctx.Riders) || a.D < 0 || int(a.D) >= len(ctx.Drivers) {
			return fmt.Errorf("sim: assignment (%d,%d) out of range", a.R, a.D)
		}
		if usedR[a.R] {
			return fmt.Errorf("sim: rider %d assigned twice", a.R)
		}
		if usedD[a.D] {
			return fmt.Errorf("sim: driver %d assigned twice", a.D)
		}
		usedR[a.R] = true
		usedD[a.D] = true

		rider := ctx.Riders[a.R]
		drv := ctx.Drivers[a.D]
		if rider.Status != WaitingStatus {
			return fmt.Errorf("sim: rider %d not waiting", rider.Order.ID)
		}
		if drv.State != Available {
			return fmt.Errorf("sim: driver %d not available", drv.ID)
		}

		pickupCost := 0.0
		if !a.IgnorePickup {
			// The batch matrix already priced every candidate pair; only
			// assignments outside it (custom dispatchers straying from
			// ctx.Pairs) fall back to a fresh Coster query.
			pickupCost = ctx.PickupCost(a.D, a.R)
			if now+pickupCost > rider.Order.Deadline {
				return fmt.Errorf("sim: driver %d cannot reach rider %d before deadline (%.1f > %.1f)",
					drv.ID, rider.Order.ID, now+pickupCost, rider.Order.Deadline)
			}
		}
		trip := rider.TripCost

		// Driver decline: the scenario may reject the commitment. The
		// rider stays waiting with its deadline unchanged (re-dispatched
		// next batch); the driver cools down unassignable.
		if e.scen != nil && e.scen.declines() {
			e.declineAssignment(now, rider, drv.ID)
			continue
		}

		// Travel noise: dispatch planned on the estimates above; the
		// committed trip realizes perturbed durations, and the
		// estimate-vs-realized gap goes to the error ledger.
		realPickup, realTrip := pickupCost, trip
		if e.scen != nil && e.scen.cfg.TravelNoise > 0 {
			if !a.IgnorePickup {
				realPickup = e.scen.perturb(pickupCost)
			}
			realTrip = e.scen.perturb(trip)
			e.metrics.TravelRecords = append(e.metrics.TravelRecords, TravelRecord{
				Order:          rider.Order.ID,
				Driver:         drv.ID,
				At:             now,
				PickupEstimate: pickupCost,
				PickupRealized: realPickup,
				TripEstimate:   trip,
				TripRealized:   realTrip,
			})
		}

		// Close the driver's idle ledger entry.
		if rec, ok := e.openIdle[drv.ID]; ok {
			e.metrics.IdleRecords[rec].Realized = now - e.drivers[drv.ID].FreeAt
			delete(e.openIdle, drv.ID)
		}

		// Commit.
		rider.Status = AssignedStatus
		rider.Driver = drv.ID
		rider.PickedAt = now + realPickup
		freeAt := now + realPickup + realTrip
		d := &e.drivers[drv.ID]
		d.State = Busy
		d.Pos = rider.Order.Dropoff
		d.FreeAt = freeAt
		d.Served++
		e.idx.Remove(int32(drv.ID))
		stops := 0
		if e.ps != nil {
			// Pooling: the trip becomes a two-stop route plan, and the
			// completion heap tracks its front stop (the pickup) instead
			// of the whole-trip completion.
			e.startPlan(rider, drv.ID, now+realPickup, freeAt, realTrip, realPickup)
			stops = 2
			if e.obs != nil {
				// The span stays open: pickup and dropoff realize as the
				// plan's stops complete.
				e.obs.commit(rider.Order.ID, now, drv.ID, false)
			}
		} else {
			heap.Push(&e.busy, completion{freeAt: freeAt, driver: drv.ID})
			if e.obs != nil {
				// A solo commit realizes its whole trip now.
				e.obs.servedSolo(now, rider.Order.ID, drv.ID, rider.PickedAt, freeAt)
			}
		}

		e.insertFutureRejoin(rider.DestRegion, freeAt)

		e.metrics.Revenue += realTrip
		e.metrics.PickupSeconds += realPickup
		e.metrics.Served++
		changed = true

		if e.cfg.Observer != nil {
			e.cfg.Observer.OnAssigned(AssignedEvent{
				Now:          now,
				Rider:        rider,
				Driver:       drv.ID,
				PickupCost:   realPickup,
				Revenue:      realTrip,
				FreeAt:       freeAt,
				Stops:        stops,
				Dest:         rider.Order.Dropoff,
				DriverFreeAt: freeAt,
			})
		}
	}
	// One mark-and-compact pass removes every assigned rider from the
	// waiting set: the loop above marked them AssignedStatus, so a
	// single stable sweep replaces the per-assignment O(n) deletion
	// that made large-backlog batches quadratic.
	if changed {
		e.compactWaiting()
	}
	return nil
}

// declineAssignment commits one driver decline: the rider keeps
// waiting, the driver goes on cooldown — busy in place, rejoining
// through the normal completion path (which opens a fresh idle-ledger
// entry). The driver's running idle entry is censored like a
// reposition cruise: cooldown is not service and not idle-for-ledger
// time.
func (e *Engine) declineAssignment(now float64, rider *Rider, id DriverID) {
	d := &e.drivers[id]
	delete(e.openIdle, id)
	retryAt := now + e.scen.cooldown()
	d.State = Busy
	d.FreeAt = retryAt
	e.idx.Remove(int32(id))
	heap.Push(&e.busy, completion{freeAt: retryAt, driver: id})
	e.insertFutureRejoin(e.cfg.Grid.Region(e.cfg.Grid.Bounds().Clamp(d.Pos)), retryAt)
	e.metrics.Declines++
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnDeclined(DeclinedEvent{Now: now, Rider: rider, Driver: id, RetryAt: retryAt})
	}
}

func (e *Engine) insertFutureRejoin(region geo.RegionID, at float64) {
	times := e.futureRejoin[region]
	i := sort.SearchFloat64s(times, at)
	times = append(times, 0)
	copy(times[i+1:], times[i:])
	times[i] = at
	e.futureRejoin[region] = times
}

// removeFutureRejoin drops one scheduled completion — used when pooling
// moves a driver's plan end (insertion extends it, cancellation pulls
// it in). Times are stored exactly as inserted, so the lookup is an
// exact float match.
func (e *Engine) removeFutureRejoin(region geo.RegionID, at float64) {
	times := e.futureRejoin[region]
	i := sort.SearchFloat64s(times, at)
	if i < len(times) && times[i] == at {
		e.futureRejoin[region] = append(times[:i], times[i+1:]...)
	}
}

// closeLedger discards idle records that never closed (drivers still
// waiting at the horizon) and any that never got an estimate.
func (e *Engine) closeLedger() {
	kept := e.metrics.IdleRecords[:0]
	for _, rec := range e.metrics.IdleRecords {
		if !math.IsNaN(rec.Realized) {
			kept = append(kept, rec)
		}
	}
	e.metrics.IdleRecords = kept
}

// Drivers exposes final driver states for post-run inspection.
func (e *Engine) Drivers() []Driver { return e.drivers }

// Riders exposes final rider states for post-run inspection, in
// admission order.
func (e *Engine) Riders() []*Rider { return e.riders }

// processShifts joins drivers whose shift has started and retires
// available drivers whose shift has ended. Busy drivers finish their
// current trip first (handled in rejoinDrivers).
func (e *Engine) processShifts(now float64) {
	if e.shifts == nil {
		return
	}
	for i := range e.drivers {
		d := &e.drivers[i]
		sh := e.shifts[i]
		switch d.State {
		case Offline:
			// Join once the shift opens, unless it has already closed.
			if sh.JoinAt <= now && d.Served == 0 && d.FreeAt == 0 &&
				(sh.LeaveAt == 0 || now < sh.LeaveAt) {
				d.State = Available
				d.FreeAt = now
				e.idx.Insert(int32(i), d.Pos)
				region, _ := e.idx.RegionOf(int32(i))
				e.metrics.IdleRecords = append(e.metrics.IdleRecords, IdleRecord{
					Driver:   DriverID(i),
					Region:   region,
					RejoinAt: now,
					Estimate: math.NaN(),
					Realized: math.NaN(),
				})
				e.openIdle[DriverID(i)] = len(e.metrics.IdleRecords) - 1
			}
		case Available:
			if sh.LeaveAt > 0 && now >= sh.LeaveAt {
				d.State = Offline
				e.idx.Remove(int32(i))
				delete(e.openIdle, DriverID(i)) // censored idle entry
			}
		}
	}
}

// reposition offers long-idle available drivers to the configured
// Repositioner and commits the proposed cruises.
func (e *Engine) reposition(now float64, ctx *Context) {
	if e.cfg.Repositioner == nil {
		return
	}
	after := e.cfg.RepositionAfter
	if after <= 0 {
		after = 300
	}
	for i := range e.drivers {
		d := &e.drivers[i]
		if d.State != Available || now-d.FreeAt < after {
			continue
		}
		region, _ := e.idx.RegionOf(int32(i))
		target, ok := e.cfg.Repositioner.Target(ctx, d, region)
		if !ok {
			continue
		}
		target = e.cfg.Grid.Bounds().Clamp(target)
		cost := e.cfg.Coster.Cost(d.Pos, target)
		if cost <= 0 || math.IsInf(cost, 1) {
			continue
		}
		// The cruise censors the driver's running idle entry; arrival
		// opens a fresh one through the normal rejoin path.
		delete(e.openIdle, DriverID(i))
		from := d.Pos
		d.State = Busy
		d.Pos = target
		d.FreeAt = now + cost
		e.idx.Remove(int32(i))
		heap.Push(&e.busy, completion{freeAt: d.FreeAt, driver: DriverID(i)})
		e.insertFutureRejoin(e.cfg.Grid.Region(target), d.FreeAt)
		if e.cfg.Observer != nil {
			e.cfg.Observer.OnRepositioned(RepositionedEvent{
				Now: now, Driver: DriverID(i), From: from, To: target,
				Cost: cost, ArriveAt: d.FreeAt,
			})
		}
	}
}
