package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// simEventLog records a scalar projection of every observer event so two
// runs can be compared stream-for-stream.
type simEventLog struct {
	entries []string
}

func (l *simEventLog) OnBatchStart(e BatchStartEvent) {
	l.entries = append(l.entries, fmt.Sprintf("batch %d t=%.0f w=%d a=%d", e.Batch, e.Now, e.Waiting, e.Available))
}
func (l *simEventLog) OnAssigned(e AssignedEvent) {
	l.entries = append(l.entries, fmt.Sprintf("assign o=%d d=%d t=%.0f pc=%.6f rev=%.6f free=%.6f",
		e.Rider.Order.ID, e.Driver, e.Now, e.PickupCost, e.Revenue, e.FreeAt))
}
func (l *simEventLog) OnExpired(e ExpiredEvent) {
	l.entries = append(l.entries, fmt.Sprintf("expire o=%d t=%.0f", e.Rider.Order.ID, e.Now))
}
func (l *simEventLog) OnCanceled(e CanceledEvent) {
	l.entries = append(l.entries, fmt.Sprintf("cancel o=%d t=%.0f explicit=%v", e.Rider.Order.ID, e.Now, e.Explicit))
}
func (l *simEventLog) OnDeclined(e DeclinedEvent) {
	l.entries = append(l.entries, fmt.Sprintf("decline o=%d d=%d t=%.0f retry=%.0f", e.Rider.Order.ID, e.Driver, e.Now, e.RetryAt))
}
func (l *simEventLog) OnRepositioned(e RepositionedEvent) {
	l.entries = append(l.entries, fmt.Sprintf("repos d=%d t=%.0f", e.Driver, e.Now))
}
func (l *simEventLog) OnPickedUp(e PickedUpEvent) {
	l.entries = append(l.entries, fmt.Sprintf("pickup o=%d d=%d t=%.0f", e.Order, e.Driver, e.Now))
}
func (l *simEventLog) OnDroppedOff(e DroppedOffEvent) {
	l.entries = append(l.entries, fmt.Sprintf("dropoff o=%d d=%d t=%.0f shared=%v", e.Order, e.Driver, e.Now, e.Shared))
}

func diffLogs(t *testing.T, a, b *simEventLog) {
	t.Helper()
	for i := range a.entries {
		if i >= len(b.entries) || a.entries[i] != b.entries[i] {
			t.Fatalf("event streams diverge at %d:\n  a: %s\n  b: %s", i, a.entries[i], b.entries[i])
		}
	}
	if len(a.entries) != len(b.entries) {
		t.Fatalf("event stream lengths differ: %d vs %d", len(a.entries), len(b.entries))
	}
}

// TestScenarioZeroValueByteIdentical is the parity contract of the
// disruption layer: a config whose ScenarioConfig is zero-valued (even
// with a seed set — only the disruption knobs count) must reproduce the
// scenario-free engine exactly: same Summary, same idle ledger, same
// event stream, and no disruption counters.
func TestScenarioZeroValueByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3; trial++ {
		orders, drivers := randomScenario(rng)

		baseLog := &simEventLog{}
		baseCfg := simpleConfig()
		baseCfg.Horizon = 4000
		baseCfg.Observer = baseLog
		base, err := New(baseCfg, orders, drivers).Run(context.Background(), takeAll{})
		if err != nil {
			t.Fatal(err)
		}

		zeroLog := &simEventLog{}
		zeroCfg := simpleConfig()
		zeroCfg.Horizon = 4000
		zeroCfg.Observer = zeroLog
		zeroCfg.Scenario = ScenarioConfig{Seed: 12345} // zero knobs, non-zero seed
		zero, err := New(zeroCfg, orders, drivers).Run(context.Background(), takeAll{})
		if err != nil {
			t.Fatal(err)
		}

		if base.Summary() != zero.Summary() {
			t.Fatalf("trial %d: zero-valued scenario changed the summary:\n  base: %+v\n  zero: %+v",
				trial, base.Summary(), zero.Summary())
		}
		diffLogs(t, baseLog, zeroLog)
		if zero.Canceled != 0 || zero.Declines != 0 || len(zero.TravelRecords) != 0 {
			t.Fatalf("zero-valued scenario produced disruptions: %+v", zero.Summary())
		}
	}
}

// TestScenarioRiderCancellations: with CancelRate 1 every order with
// positive slack abandons strictly before its deadline, so under a noop
// dispatcher the whole trace cancels and nothing ever expires.
func TestScenarioRiderCancellations(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orders, drivers := randomScenario(rng)
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Horizon = 4000
	cfg.Observer = rec
	cfg.Scenario = ScenarioConfig{CancelRate: 1, Seed: 5}
	e := New(cfg, orders, drivers)
	m, err := e.Run(context.Background(), noop{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Canceled != m.TotalOrders || m.Reneged != 0 || m.Served != 0 {
		t.Fatalf("CancelRate=1 under noop: canceled=%d reneged=%d served=%d total=%d",
			m.Canceled, m.Reneged, m.Served, m.TotalOrders)
	}
	if rec.canceled != m.Canceled {
		t.Fatalf("observer saw %d cancels, metrics say %d", rec.canceled, m.Canceled)
	}
	for _, r := range e.Riders() {
		if r.Status != CanceledStatus {
			t.Fatalf("rider %d status %d, want canceled", r.Order.ID, r.Status)
		}
		if r.CancelAt <= 0 || r.CancelAt >= r.Order.Deadline {
			t.Fatalf("rider %d cancel time %v outside [post, deadline) of (%v, %v)",
				r.Order.ID, r.CancelAt, r.Order.PostTime, r.Order.Deadline)
		}
	}
	checkRunInvariants(t, e, m)
}

// TestScenarioCancellationsAreSeeded: equal seeds disrupt identically,
// different seeds differently.
func TestScenarioCancellationsAreSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	orders, drivers := randomScenario(rng)
	run := func(seed int64) Summary {
		cfg := simpleConfig()
		cfg.Horizon = 4000
		cfg.Scenario = ScenarioConfig{CancelRate: 0.5, Seed: seed}
		m, err := New(cfg, orders, drivers).Run(context.Background(), takeAll{})
		if err != nil {
			t.Fatal(err)
		}
		return m.Summary()
	}
	a, b := run(1), run(1)
	if a != b {
		t.Fatalf("same scenario seed produced different runs:\n  %+v\n  %+v", a, b)
	}
	if c := run(2); c == a && c.Canceled == a.Canceled {
		t.Logf("warning: different scenario seeds coincided: %+v", c)
	}
	if a.Canceled == 0 {
		t.Fatal("CancelRate=0.5 canceled nothing")
	}
}

// stepEngine drives one engine batch-by-batch so tests can interleave
// source operations with the batch loop deterministically.
func stepEngine(t *testing.T, e *Engine, d Dispatcher, from, to, delta float64) {
	t.Helper()
	for now := from; now < to; now += delta {
		e.StepAdmit(now)
		if err := e.StepDispatch(now, d); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScenarioExplicitCancelLifecycle covers the CancelableSource path:
// a cancel for a waiting rider applies at the next batch; a cancel
// submitted before the order is released is held and applied on
// admission; a cancel after assignment is dropped.
func TestScenarioExplicitCancelLifecycle(t *testing.T) {
	pickup := center()
	src := NewChannelSource()
	cfg := simpleConfig()
	rec := &recordingObserver{}
	cfg.Observer = rec
	// Driver 10km away: nobody can serve within 200s, so the rider
	// stays waiting until we cancel.
	e := NewWithSource(cfg, src, []geo.Point{offset(pickup, 10000)})
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}

	waiting := trace.Order{ID: 1, PostTime: 0, Pickup: pickup, Dropoff: offset(pickup, 2000), Deadline: 3000}
	if err := src.Submit(waiting); err != nil {
		t.Fatal(err)
	}
	stepEngine(t, e, noop{}, 0, 30, 3)

	// (1) Cancel the waiting rider: applied at the next StepAdmit.
	src.Cancel(1)
	stepEngine(t, e, noop{}, 30, 36, 3)
	if e.Riders()[0].Status != CanceledStatus {
		t.Fatalf("waiting rider not canceled: status %d", e.Riders()[0].Status)
	}
	if rec.canceled != 1 {
		t.Fatalf("observer saw %d cancels, want 1", rec.canceled)
	}

	// (2) Cancel an order the engine has not admitted yet (posted in
	// the future): held, then applied the batch the order arrives.
	future := trace.Order{ID: 2, PostTime: 60, Pickup: pickup, Dropoff: offset(pickup, 2000), Deadline: 3000}
	if err := src.Submit(future); err != nil {
		t.Fatal(err)
	}
	src.Cancel(2)
	stepEngine(t, e, noop{}, 36, 48, 3) // order not yet released
	if got := len(e.Riders()); got != 1 {
		t.Fatalf("future order admitted early: %d riders", got)
	}
	stepEngine(t, e, noop{}, 48, 72, 3) // releases at t=60, cancel applies
	if got := len(e.Riders()); got != 2 {
		t.Fatalf("future order never admitted: %d riders", got)
	}
	if e.Riders()[1].Status != CanceledStatus {
		t.Fatalf("held cancel not applied on admission: status %d", e.Riders()[1].Status)
	}

	// (3) A cancel racing an assignment loses: the order completes.
	served := trace.Order{ID: 3, PostTime: 80, Pickup: offset(pickup, 9990), Dropoff: offset(pickup, 8000), Deadline: 3000}
	if err := src.Submit(served); err != nil {
		t.Fatal(err)
	}
	stepEngine(t, e, takeAll{}, 72, 90, 3) // driver is ~10m away: assigned
	if e.Riders()[2].Status != AssignedStatus {
		t.Fatalf("setup: rider 3 not assigned (status %d)", e.Riders()[2].Status)
	}
	src.Cancel(3)
	stepEngine(t, e, noop{}, 90, 99, 3)
	if e.Riders()[2].Status != AssignedStatus {
		t.Fatalf("cancel overrode an assignment: status %d", e.Riders()[2].Status)
	}

	// (4) A cancel for an id that can never arrive is dropped once the
	// source is done, not retried forever.
	src.Cancel(99)
	src.Close()
	stepEngine(t, e, noop{}, 99, 108, 3)
	if len(e.pendingCancels) != 0 {
		t.Fatalf("bogus cancel still pending after source done: %v", e.pendingCancels)
	}
	m := e.Finish()
	if m.Canceled != 2 || rec.canceled != 2 {
		t.Fatalf("canceled=%d observer=%d, want 2", m.Canceled, rec.canceled)
	}
}

// TestScenarioDriverDeclinesEveryTime: with DeclineProb 1 a feasible
// rider is declined batch after batch — the driver cools down between
// attempts — until the deadline passes. The rider's deadline never
// moves and the driver never serves.
func TestScenarioDriverDeclinesEveryTime(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 1, Pickup: pickup,
		Dropoff: offset(pickup, 2000), Deadline: 200,
	}}
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Observer = rec
	cfg.Scenario = ScenarioConfig{DeclineProb: 1, DeclineCooldown: 30, Seed: 3}
	e := New(cfg, orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Reneged != 1 {
		t.Fatalf("DeclineProb=1: served=%d reneged=%d, want 0/1", m.Served, m.Reneged)
	}
	// ~200s of patience at a 30s cooldown: several decline rounds.
	if m.Declines < 2 {
		t.Fatalf("declines = %d, want >= 2 (cooldown then retry)", m.Declines)
	}
	if rec.declined != m.Declines {
		t.Fatalf("observer saw %d declines, metrics say %d", rec.declined, m.Declines)
	}
	if e.Drivers()[0].Served != 0 {
		t.Fatal("declining driver recorded a served trip")
	}
	checkRunInvariants(t, e, m)
}

// TestScenarioDeclineThenServe: a decline returns the rider to the pool
// and a later batch serves it — the re-dispatch path. The seed is
// chosen at runtime so the first decline draw rejects and the second
// accepts, keeping the test deterministic without pinning Go's RNG
// internals.
func TestScenarioDeclineThenServe(t *testing.T) {
	const p = 0.5
	seed := int64(-1)
	for s := int64(0); s < 1000; s++ {
		r := rand.New(rand.NewSource(s))
		if r.Float64() < p && r.Float64() >= p {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed with decline-then-accept draws in 1000 tries")
	}
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 1, Pickup: pickup,
		Dropoff: offset(pickup, 2000), Deadline: 400,
	}}
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Observer = rec
	cfg.Scenario = ScenarioConfig{DeclineProb: p, DeclineCooldown: 30, Seed: seed}
	e := New(cfg, orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Declines != 1 || m.Served != 1 {
		t.Fatalf("declines=%d served=%d, want 1/1 (decline, cooldown, re-dispatch)", m.Declines, m.Served)
	}
	// The retry had to wait out the cooldown: assignment at least 30s
	// after the decline.
	r := e.Riders()[0]
	if r.Status != AssignedStatus {
		t.Fatalf("rider status %d, want assigned", r.Status)
	}
	if r.Order.Deadline != 400 {
		t.Fatalf("decline moved the deadline: %v", r.Order.Deadline)
	}
	checkRunInvariants(t, e, m)
}

// TestScenarioTravelNoise: dispatch plans on estimates, commits realize
// noisy durations, and the error ledger reconciles the two exactly.
func TestScenarioTravelNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	orders, drivers := randomScenario(rng)
	cfg := simpleConfig()
	cfg.Horizon = 4000
	cfg.Scenario = ScenarioConfig{TravelNoise: 0.3, Seed: 9}
	e := New(cfg, orders, drivers)
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 {
		t.Fatal("nothing served")
	}
	if len(m.TravelRecords) != m.Served {
		t.Fatalf("%d travel records for %d served", len(m.TravelRecords), m.Served)
	}
	revenue, pickups, perturbed := 0.0, 0.0, false
	byOrder := make(map[trace.OrderID]TravelRecord)
	for _, rec := range m.TravelRecords {
		revenue += rec.TripRealized
		pickups += rec.PickupRealized
		if rec.TripRealized != rec.TripEstimate {
			perturbed = true
		}
		if rec.PickupRealized <= 0 || rec.TripRealized <= 0 {
			t.Fatalf("non-positive realized duration: %+v", rec)
		}
		byOrder[rec.Order] = rec
	}
	if !perturbed {
		t.Fatal("TravelNoise=0.3 perturbed nothing")
	}
	if math.Abs(revenue-m.Revenue) > 1e-6 {
		t.Fatalf("revenue %v != sum of realized trips %v", m.Revenue, revenue)
	}
	if math.Abs(pickups-m.PickupSeconds) > 1e-6 {
		t.Fatalf("pickup seconds %v != sum of realized pickups %v", m.PickupSeconds, pickups)
	}
	// Rider and driver state reflect realized times, and the estimates
	// in the ledger are the planner's (the rider's precomputed trip
	// cost).
	for _, r := range e.Riders() {
		if r.Status != AssignedStatus {
			continue
		}
		rec, ok := byOrder[r.Order.ID]
		if !ok {
			t.Fatalf("served order %d missing from the travel ledger", r.Order.ID)
		}
		if rec.TripEstimate != r.TripCost {
			t.Fatalf("order %d: ledger estimate %v != planned trip cost %v", r.Order.ID, rec.TripEstimate, r.TripCost)
		}
		if got := rec.At + rec.PickupRealized; math.Abs(got-r.PickedAt) > 1e-9 {
			t.Fatalf("order %d: PickedAt %v != assignment time + realized pickup %v", r.Order.ID, r.PickedAt, got)
		}
	}
	if s := m.Summary(); s.TravelSamples != m.Served || s.MeanAbsTravelErrorSeconds() <= 0 {
		t.Fatalf("summary travel stats inconsistent: %+v", s)
	}
}

// TestScenarioTravelNoisePlansOnEstimates pins that noise never changes
// what the first batch decides — only what the commit realizes.
func TestScenarioTravelNoisePlansOnEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	orders, drivers := randomScenario(rng)
	firstAssign := func(noise float64) string {
		log := &simEventLog{}
		cfg := simpleConfig()
		cfg.Horizon = 4000
		cfg.Observer = log
		cfg.Scenario = ScenarioConfig{TravelNoise: noise, Seed: 9}
		if _, err := New(cfg, orders, drivers).Run(context.Background(), takeAll{}); err != nil {
			t.Fatal(err)
		}
		for _, e := range log.entries {
			if len(e) > 6 && e[:6] == "assign" {
				return e[:20] // order + driver prefix; costs differ under noise
			}
		}
		return ""
	}
	clean := firstAssign(0)
	noisy := firstAssign(0.3)
	if clean == "" || clean[:14] != noisy[:14] {
		t.Fatalf("first assignment differs under noise: %q vs %q", clean, noisy)
	}
}

// TestApplyCompactionPreservesWaitingOrder pins the mark-and-compact
// rewrite of apply(): removing assigned riders must keep the remaining
// waiting set in admission order, since batch construction (and hence
// every downstream decision) iterates it.
func TestApplyCompactionPreservesWaitingOrder(t *testing.T) {
	pickup := center()
	var orders []trace.Order
	for i := 0; i < 8; i++ {
		orders = append(orders, trace.Order{
			ID: trace.OrderID(i), PostTime: 1,
			Pickup:  offset(pickup, float64(i*100)),
			Dropoff: offset(pickup, 3000), Deadline: 3000,
		})
	}
	// Two drivers: the dispatcher assigns riders 2 and 5, so waiting
	// must become [0 1 3 4 6 7] in that order.
	e := New(simpleConfig(), orders, []geo.Point{pickup, offset(pickup, 200)})
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	e.StepAdmit(3)
	err := e.StepDispatch(3, funcDispatcher(func(ctx *Context) []Assignment {
		var out []Assignment
		for _, p := range ctx.Pairs {
			if (p.R == 2 && p.D == 0) || (p.R == 5 && p.D == 1) {
				out = append(out, Assignment{R: p.R, D: p.D})
			}
		}
		return out
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.OrderID{0, 1, 3, 4, 6, 7}
	if len(e.waiting) != len(want) {
		t.Fatalf("waiting has %d riders, want %d", len(e.waiting), len(want))
	}
	for i, r := range e.waiting {
		if r.Order.ID != want[i] {
			t.Fatalf("waiting[%d] = order %d, want %d (order not preserved)", i, r.Order.ID, want[i])
		}
	}
}
