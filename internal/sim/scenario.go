package sim

import (
	"math/rand"

	"mrvd/internal/workload"
)

// CancelModel decides when a waiting rider abandons its order. The
// engine draws one uniform per admitted order and hands it to the model,
// so the model itself stays deterministic and side-effect free — the
// scenario RNG is the only source of randomness.
// workload.Patience is the default implementation.
type CancelModel interface {
	// CancelTime maps a uniform draw u in [0,1) to the rider's
	// abandonment time for an order posted at post with the given
	// deadline; ok=false means the rider waits until the deadline.
	CancelTime(u, post, deadline float64) (float64, bool)
}

// ScenarioConfig gates the engine's disruption layer: rider
// cancellations, driver declines and stochastic travel times. The zero
// value disables all three and leaves the engine byte-identical to a
// scenario-free run — same Summary, same idle ledger, same event
// stream. All stochastic draws come from one RNG seeded with Seed, so
// scenario runs are exactly reproducible, and a 1-shard sharded run
// reproduces the unsharded engine event for event.
type ScenarioConfig struct {
	// CancelRate is the probability a waiting rider abandons its order
	// before the deadline (rider-initiated cancellation). Cancellation
	// times are drawn at admission from the order's deadline slack via
	// workload.Patience's constant-hazard model. 0 disables stochastic
	// cancellations; explicit cancels (ServeHandle.Cancel, DELETE
	// /v1/orders/{id}) are caller-initiated and always honored.
	CancelRate float64
	// CancelModel overrides the hazard model used with CancelRate; nil
	// uses workload.Patience{AbandonRate: CancelRate}.
	CancelModel CancelModel
	// DeclineProb is the probability a committed assignment is declined
	// by the driver (decline / no-show). The rider returns to the
	// waiting pool with its deadline unchanged and is re-dispatched in a
	// later batch; the driver takes DeclineCooldown seconds of cooldown
	// before rejoining the available pool. 0 disables declines.
	DeclineProb float64
	// DeclineCooldown is how long a declining driver is unassignable, in
	// engine seconds (default 60 when DeclineProb > 0).
	DeclineCooldown float64
	// TravelNoise perturbs realized pickup and trip durations around the
	// coster's estimate with multiplicative Gaussian noise of this
	// relative standard deviation (0.2 = 20%). Dispatch still plans on
	// estimates — candidate feasibility, deadline checks and assignment
	// scoring are untouched — but the committed trip's PickedAt, freeAt,
	// the idle ledger and revenue all reflect the realized durations,
	// and every noisy assignment appends an estimate-vs-realized
	// TravelRecord to the metrics. A realized pickup may therefore land
	// past the rider's deadline: the rider was already committed, which
	// is exactly the late-pickup risk a real platform carries. 0
	// disables noise.
	TravelNoise float64
	// Seed seeds the scenario RNG (hazard draws, decline draws, travel
	// noise). Runs with equal seeds and equal order streams disrupt
	// identically.
	Seed int64
}

// Enabled reports whether any disruption is configured. A config that
// only sets Seed is still disabled — the engine creates no RNG and
// stays byte-identical to a scenario-free run.
func (c ScenarioConfig) Enabled() bool {
	return c.CancelRate > 0 || c.CancelModel != nil || c.DeclineProb > 0 || c.TravelNoise > 0
}

// scenarioState is the engine's per-run disruption machinery, nil when
// the config is zero-valued so the scenario-free hot path pays nothing.
type scenarioState struct {
	cfg    ScenarioConfig
	rng    *rand.Rand
	cancel CancelModel
}

func newScenarioState(cfg ScenarioConfig) *scenarioState {
	s := &scenarioState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	switch {
	case cfg.CancelModel != nil:
		s.cancel = cfg.CancelModel
	case cfg.CancelRate > 0:
		s.cancel = workload.Patience{AbandonRate: cfg.CancelRate}
	}
	return s
}

// cooldown returns the decline cooldown with its default applied.
func (s *scenarioState) cooldown() float64 {
	if s.cfg.DeclineCooldown > 0 {
		return s.cfg.DeclineCooldown
	}
	return 60
}

// declines draws whether the next committed assignment is declined.
func (s *scenarioState) declines() bool {
	return s.cfg.DeclineProb > 0 && s.rng.Float64() < s.cfg.DeclineProb
}

// perturb maps an estimated duration to its realized value under the
// configured travel noise. The multiplicative factor is clamped at 0.05
// so realized durations stay positive.
func (s *scenarioState) perturb(estimate float64) float64 {
	f := 1 + s.cfg.TravelNoise*s.rng.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return estimate * f
}
